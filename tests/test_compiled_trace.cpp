// CompiledTrace must be an exact run-length mirror of its LoadTrace:
// identical values, identical next-change semantics (including the
// implicit-zero tail rule), and a cursor walk that agrees with point
// queries whether it moves forward second-by-second, jumps across runs,
// or is re-seated backwards.
#include "sim/compiled_trace.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace bml {
namespace {

constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

void expect_mirrors(const LoadTrace& trace) {
  const CompiledTrace compiled(trace);
  ASSERT_EQ(compiled.size(), static_cast<TimePoint>(trace.size()));
  CompiledTrace::Cursor cursor;
  for (TimePoint t = 0; t < compiled.size() + 3; ++t) {
    EXPECT_EQ(compiled.value_at(t), trace.at(t)) << "t=" << t;
    EXPECT_EQ(compiled.next_change(t), trace.next_change(t)) << "t=" << t;
    const CompiledTrace::Run run = compiled.run_at(cursor, t);
    EXPECT_EQ(run.value, trace.at(t)) << "t=" << t;
    EXPECT_EQ(run.end, trace.next_change(t)) << "t=" << t;
  }
}

TEST(CompiledTrace, MirrorsStepTrace) {
  expect_mirrors(step_trace({{100.0, 5.0}, {250.0, 3.0}, {100.0, 4.0}}));
}

TEST(CompiledTrace, MirrorsNoisyTrace) {
  DiurnalOptions options;
  options.peak = 900.0;
  options.noise = 0.3;  // changes (nearly) every second
  options.seed = 5;
  expect_mirrors(diurnal_trace(options, 1));
}

TEST(CompiledTrace, MirrorsConstantTrace) {
  expect_mirrors(constant_trace(42.0, 10.0));
}

TEST(CompiledTrace, ZeroTailNeverChanges) {
  const LoadTrace trace = step_trace({{10.0, 4.0}, {0.0, 4.0}});
  const CompiledTrace compiled(trace);
  // Inside the zero tail the implicit 0 beyond the end is not a change.
  EXPECT_EQ(compiled.next_change(5), kNever);
  CompiledTrace::Cursor cursor;
  EXPECT_EQ(compiled.run_at(cursor, 5).end, kNever);
}

TEST(CompiledTrace, NonZeroTailChangesAtEnd) {
  const LoadTrace trace = constant_trace(7.0, 6.0);
  const CompiledTrace compiled(trace);
  EXPECT_EQ(compiled.next_change(2), static_cast<TimePoint>(trace.size()));
}

TEST(CompiledTrace, EmptyTrace) {
  const CompiledTrace compiled((LoadTrace()));
  EXPECT_TRUE(compiled.empty());
  EXPECT_EQ(compiled.segment_count(), 0u);
  EXPECT_EQ(compiled.value_at(0), 0.0);
  EXPECT_EQ(compiled.next_change(0), kNever);
  CompiledTrace::Cursor cursor;
  EXPECT_EQ(compiled.run_at(cursor, 0).value, 0.0);
}

TEST(CompiledTrace, CursorJumpsAndBackwardsReseat) {
  const LoadTrace trace = step_trace(
      {{10.0, 100.0}, {20.0, 100.0}, {30.0, 100.0}, {40.0, 100.0}});
  const CompiledTrace compiled(trace);
  CompiledTrace::Cursor cursor;
  EXPECT_EQ(compiled.run_at(cursor, 350).value, 40.0);  // long forward jump
  EXPECT_EQ(compiled.run_at(cursor, 50).value, 10.0);   // backwards re-seat
  EXPECT_EQ(compiled.run_at(cursor, 150).value, 20.0);
  EXPECT_EQ(compiled.run_at(cursor, 150).end, 200);
}

TEST(CompiledTrace, SegmentCountMatchesChangePoints) {
  const LoadTrace trace = step_trace({{5.0, 2.0}, {6.0, 2.0}, {5.0, 2.0}});
  const CompiledTrace compiled(trace);
  EXPECT_EQ(compiled.segment_count(), trace.change_points().size() + 1);
  EXPECT_EQ(compiled.ends().size(), compiled.segment_count());
  EXPECT_EQ(compiled.values().size(), compiled.segment_count());
  EXPECT_EQ(compiled.segment_start(0), 0);
  EXPECT_EQ(compiled.values().front(), 5.0);
  // Packed tail rule: the step trace ends on a non-zero value, so the last
  // run ends at size(); a zero tail would pack the never-changes sentinel.
  EXPECT_EQ(compiled.ends().back(),
            static_cast<std::uint32_t>(compiled.size()));
  const CompiledTrace zero_tail(step_trace({{5.0, 2.0}, {0.0, 2.0}}));
  EXPECT_EQ(zero_tail.ends().back(), CompiledTrace::kEndSentinel);
}

TEST(CompiledTrace, NegativeTimeThrows) {
  const CompiledTrace compiled(constant_trace(1.0, 5.0));
  CompiledTrace::Cursor cursor;
  EXPECT_THROW((void)compiled.value_at(-1), std::invalid_argument);
  EXPECT_THROW((void)compiled.next_change(-1), std::invalid_argument);
  EXPECT_THROW((void)compiled.run_at(cursor, -1), std::invalid_argument);
}

}  // namespace
}  // namespace bml
