// Cross-module integration tests: application model + schedulers +
// simulator + load balancer working together as a deployment would.
#include <gtest/gtest.h>

#include <memory>

#include "app/load_balancer.hpp"
#include "app/migration.hpp"
#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/cost_aware.hpp"
#include "sched/lower_bound.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "trace/transforms.hpp"
#include "trace/wc98.hpp"

namespace bml {
namespace {

std::shared_ptr<BmlDesign> design() {
  static auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  return d;
}

TEST(Integration, CriticalQosBuysHeadroomForEnergy) {
  WorldCupOptions options;
  options.days = 2;
  options.peak = 3000.0;
  options.seed = 31;
  const LoadTrace trace = worldcup_like_trace(options);
  const Simulator simulator(design()->candidates());

  BmlScheduler tolerant(design(), std::make_shared<OracleMaxPredictor>(),
                        0.0, QosClass::kTolerant);
  BmlScheduler critical(design(), std::make_shared<OracleMaxPredictor>(),
                        0.0, QosClass::kCritical);
  const SimulationResult t = simulator.run(tolerant, trace);
  const SimulationResult c = simulator.run(critical, trace);

  // The critical class runs with 10 % capacity headroom: more energy,
  // never worse QoS.
  EXPECT_GT(c.total_energy(), t.total_energy());
  EXPECT_GE(c.qos.served_fraction(), t.qos.served_fraction());
  EXPECT_EQ(c.qos.violation_seconds, 0);
}

TEST(Integration, HeadroomProtectsAgainstUnderPrediction) {
  // Inject a systematic -15 % prediction bias. The tolerant scheduler
  // under-provisions; the critical class's +10 % headroom recovers most of
  // the shortfall.
  WorldCupOptions options;
  options.days = 2;
  options.peak = 3000.0;
  options.seed = 33;
  const LoadTrace trace = worldcup_like_trace(options);
  const Simulator simulator(design()->candidates());

  auto biased = [] {
    return std::make_shared<ErrorInjectingPredictor>(
        std::make_unique<OracleMaxPredictor>(), /*sigma=*/0.0,
        /*bias=*/-0.15, /*seed=*/1);
  };
  BmlScheduler tolerant(design(), biased(), 0.0, QosClass::kTolerant);
  BmlScheduler critical(design(), biased(), 0.0, QosClass::kCritical);
  const SimulationResult t = simulator.run(tolerant, trace);
  const SimulationResult c = simulator.run(critical, trace);

  EXPECT_LT(t.qos.served_fraction(), 1.0);
  EXPECT_GT(c.qos.served_fraction(), t.qos.served_fraction());
}

TEST(Integration, LoadBalancerFollowsSchedulerDecisions) {
  // Drive a load balancer from the scheduler's targets over a step trace
  // and verify it always has the capacity the cluster promises.
  const LoadTrace trace = step_trace({{5.0, 500.0}, {600.0, 500.0}});
  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  LoadBalancer balancer(design()->candidates());
  (void)balancer.reconfigure(scheduler.initial_combination(trace));

  int instance_actions = 0;
  for (TimePoint t = 0; t < static_cast<TimePoint>(trace.size()); t += 50) {
    const auto target = scheduler.decide(t, trace, ClusterSnapshot{});
    ASSERT_TRUE(target.has_value());
    if (!(*target == balancer.combination()))
      instance_actions +=
          static_cast<int>(balancer.reconfigure(*target).size());
    const ReqRate load = trace.at(t);
    if (capacity(design()->candidates(), *target) >= load)
      EXPECT_DOUBLE_EQ(balancer.route(load), load) << "t=" << t;
  }
  EXPECT_GT(instance_actions, 0);
}

TEST(Integration, MigrationDowntimeIsSmallForStatelessApp) {
  // Reconfigurations over a full synthetic day: total migration downtime
  // of the stateless web server stays negligible next to the day length.
  WorldCupOptions options;
  options.days = 1;
  options.peak = 2000.0;
  const LoadTrace trace = worldcup_like_trace(options);

  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  const MigrationModel migration;
  const ApplicationModel app;

  Combination current = scheduler.initial_combination(trace);
  MigrationCost total;
  for (TimePoint t = 0; t < static_cast<TimePoint>(trace.size()); t += 60) {
    const auto target = scheduler.decide(t, trace, ClusterSnapshot{});
    if (target.has_value() && !(*target == current)) {
      total += migration.reconfiguration_cost(app, current, *target);
      current = *target;
    }
  }
  EXPECT_LT(total.downtime, 0.01 * static_cast<double>(kSecondsPerDay));
}

TEST(Integration, Wc98RoundTripPreservesSimulationResult) {
  // Serialise a synthetic trace to the WC98 interchange format, reload it,
  // and verify the simulation is bit-identical — the guarantee behind
  // examples/replay_trace.
  WorldCupOptions options;
  options.days = 1;
  options.peak = 1500.0;
  const LoadTrace original = worldcup_like_trace(options);
  const LoadTrace reloaded = parse_wc98(format_wc98(original));
  ASSERT_EQ(reloaded.size(), original.size());

  const Simulator simulator(design()->candidates());
  BmlScheduler s1(design(), std::make_shared<OracleMaxPredictor>());
  BmlScheduler s2(design(), std::make_shared<OracleMaxPredictor>());
  const SimulationResult a = simulator.run(s1, original);
  const SimulationResult b = simulator.run(s2, reloaded);
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
}

TEST(Integration, ScaledTraceScalesMachinesNotQos) {
  // Doubling the workload must roughly double the fleet's energy while
  // QoS stays intact — the proportionality promise end to end.
  WorldCupOptions options;
  options.days = 1;
  options.peak = 1500.0;
  const LoadTrace base = worldcup_like_trace(options);
  const LoadTrace doubled = scale(base, 2.0);

  const Simulator simulator(design()->candidates());
  BmlScheduler s1(design(), std::make_shared<OracleMaxPredictor>());
  BmlScheduler s2(design(), std::make_shared<OracleMaxPredictor>());
  const SimulationResult small = simulator.run(s1, base);
  const SimulationResult large = simulator.run(s2, doubled);

  EXPECT_EQ(small.qos.violation_seconds, 0);
  EXPECT_EQ(large.qos.violation_seconds, 0);
  const double ratio = large.total_energy() / small.total_energy();
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 2.5);
}

TEST(Integration, CostAwareNeverWorseQosThanPlain) {
  WorldCupOptions options;
  options.days = 2;
  options.peak = 4000.0;
  options.seed = 37;
  const LoadTrace trace = worldcup_like_trace(options);
  const Simulator simulator(design()->candidates());

  BmlScheduler plain(design(), std::make_shared<OracleMaxPredictor>());
  CostAwareScheduler aware(design(), std::make_shared<OracleMaxPredictor>());
  const SimulationResult p = simulator.run(plain, trace);
  const SimulationResult a = simulator.run(aware, trace);
  EXPECT_GE(a.qos.served_fraction(), p.qos.served_fraction());
  // And the lower bound bounds both.
  const Joules lb = theoretical_lower_bound_total(*design(), trace);
  EXPECT_LE(lb, p.total_energy());
  EXPECT_LE(lb, a.total_energy());
}

}  // namespace
}  // namespace bml
