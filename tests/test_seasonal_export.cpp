// Tests for the seasonal predictor and the experiment CSV exporters.
#include <gtest/gtest.h>

#include "experiments/export.hpp"
#include "predict/predictor.hpp"
#include "trace/synthetic.hpp"
#include "util/csv.hpp"

namespace bml {
namespace {

TEST(SeasonalPredictor, FallsBackToTrailingMaxEarly) {
  SeasonalPredictor p(86'400.0, /*headroom=*/1.0);
  const LoadTrace trace = constant_trace(50.0, 2.0 * 86'400.0);
  // Within the first day there is no seasonal history.
  EXPECT_NEAR(p.predict(trace, 1000, 378.0), 50.0, 1e-9);
}

TEST(SeasonalPredictor, UsesSameWindowYesterday) {
  DiurnalOptions options;
  options.peak = 1000.0;
  options.noise = 0.0;
  const LoadTrace trace = diurnal_trace(options, 2);
  SeasonalPredictor p(86'400.0, /*headroom=*/1.0);
  // Day 2 at 18:00: yesterday's same window peaked at ~1000.
  const TimePoint now = kSecondsPerDay + 18 * 3600;
  EXPECT_NEAR(p.predict(trace, now, 378.0), 1000.0, 15.0);
  // Day 2 at 06:00 (trough): prediction follows the trough, not the peak.
  const TimePoint trough = kSecondsPerDay + 6 * 3600;
  EXPECT_LT(p.predict(trace, trough, 378.0), 350.0);
}

TEST(SeasonalPredictor, GrowthScalingTracksRisingDays) {
  // Day 2 is exactly twice day 1: the growth factor must scale the
  // forecast up.
  std::vector<double> rates;
  for (int d = 1; d <= 2; ++d)
    for (TimePoint s = 0; s < kSecondsPerDay; ++s)
      rates.push_back(100.0 * d);
  const LoadTrace trace(std::move(rates));
  SeasonalPredictor p(86'400.0, 1.0);
  const ReqRate predicted =
      p.predict(trace, kSecondsPerDay + 7200, 378.0);
  EXPECT_NEAR(predicted, 200.0, 1.0);  // 100 seasonal x2 growth
}

TEST(SeasonalPredictor, CoversDiurnalLoadWithHeadroom) {
  DiurnalOptions options;
  options.noise = 0.05;
  options.seed = 21;
  const LoadTrace trace = diurnal_trace(options, 3);
  SeasonalPredictor p;  // 10 % headroom
  std::size_t covered = 0, total = 0;
  for (TimePoint t = kSecondsPerDay; t + 378 < 3 * kSecondsPerDay;
       t += 977) {
    const ReqRate predicted = p.predict(trace, t, 378.0);
    const ReqRate actual = trace.max_over(t, t + 378);
    ++total;
    if (predicted >= actual) ++covered;
  }
  // Headroom + seasonality covers the vast majority of windows.
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total), 0.95);
}

TEST(SeasonalPredictor, Validation) {
  EXPECT_THROW(SeasonalPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(SeasonalPredictor(86'400.0, 0.0), std::invalid_argument);
  SeasonalPredictor p;
  const LoadTrace trace = constant_trace(1.0, 10.0);
  EXPECT_THROW((void)p.predict(trace, 0, 0.0), std::invalid_argument);
  EXPECT_EQ(p.name(), "seasonal");
}

TEST(Export, WritesEveryFigureCsv) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bml_export_test";
  std::filesystem::remove_all(dir);

  export_fig2(run_fig2(), dir);
  export_fig3(run_fig3(), dir);
  export_fig4(run_fig4(50.0), dir);
  ASSERT_TRUE(std::filesystem::exists(dir / "fig2_thresholds.csv"));
  ASSERT_TRUE(std::filesystem::exists(dir / "fig3_profiles.csv"));
  ASSERT_TRUE(std::filesystem::exists(dir / "fig4_curves.csv"));

  const CsvTable fig2 = read_csv_file(dir / "fig2_thresholds.csv", true);
  EXPECT_EQ(fig2.rows.size(), 3u);  // A, B, C
  const CsvTable fig4 = read_csv_file(dir / "fig4_curves.csv", true);
  EXPECT_EQ(fig4.header.size(), 4u);
  EXPECT_GT(fig4.rows.size(), 20u);
  // Every row respects bml <= big_only for rates >= 1.
  const std::size_t rate_col = fig4.column("rate");
  const std::size_t bml_col = fig4.column("bml");
  const std::size_t big_col = fig4.column("big_only");
  for (const auto& row : fig4.rows) {
    if (parse_double(row[rate_col]) < 1.0) continue;
    EXPECT_LE(parse_double(row[bml_col]),
              parse_double(row[big_col]) + 1e-6);
  }
  std::filesystem::remove_all(dir);
}

TEST(Export, Fig1AndFig5QuickRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bml_export_test2";
  std::filesystem::remove_all(dir);

  export_fig1(run_fig1(), dir);
  Fig5Options options;
  options.trace.days = 1;
  options.trace.peak = 2000.0;
  export_fig5(run_fig5(options), dir);

  const CsvTable fig1 = read_csv_file(dir / "fig1_profiles.csv", true);
  EXPECT_EQ(fig1.header.size(), 5u);  // rate + 4 architectures
  const CsvTable fig5 = read_csv_file(dir / "fig5_per_day.csv", true);
  ASSERT_EQ(fig5.rows.size(), 1u);
  const double lb = parse_double(fig5.rows[0][fig5.column("lower_bound_j")]);
  const double bml = parse_double(fig5.rows[0][fig5.column("bml_j")]);
  EXPECT_LE(lb, bml);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bml
