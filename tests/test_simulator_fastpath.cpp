// Event-driven fast path vs per-second reference: the two execution
// strategies must agree on every reported quantity — energy (total and per
// day), QoS statistics, reconfiguration counts and durations, peak machine
// counts, and the downsampled power series — within floating-point
// summation order (1e-9 relative) on synthetic and WC98-style traces,
// including graceful-off and boot-fault scenarios.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/cost_aware.hpp"
#include "trace/synthetic.hpp"
#include "trace/wc98.hpp"

namespace bml {
namespace {

std::shared_ptr<BmlDesign> design() {
  static auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  return d;
}

void expect_close(double fast, double reference, const char* what) {
  const double tolerance = 1e-9 * std::max(1.0, std::abs(reference));
  EXPECT_NEAR(fast, reference, tolerance) << what;
}

/// Runs the same scenario through both paths (fresh scheduler instances —
/// schedulers are stateful) and asserts the results are equivalent.
void expect_equivalent(
    const std::function<std::unique_ptr<Scheduler>()>& make_scheduler,
    const LoadTrace& trace, SimulatorOptions options = {}) {
  options.event_driven = true;
  const Simulator fast_sim(design()->candidates(), options);
  options.event_driven = false;
  const Simulator reference_sim(design()->candidates(), options);

  auto fast_scheduler = make_scheduler();
  auto reference_scheduler = make_scheduler();
  const SimulationResult fast = fast_sim.run(*fast_scheduler, trace);
  const SimulationResult reference =
      reference_sim.run(*reference_scheduler, trace);

  expect_close(fast.compute_energy, reference.compute_energy,
               "compute_energy");
  expect_close(fast.reconfiguration_energy, reference.reconfiguration_energy,
               "reconfiguration_energy");
  EXPECT_EQ(fast.reconfigurations, reference.reconfigurations);
  EXPECT_EQ(fast.reconfiguring_seconds, reference.reconfiguring_seconds);
  EXPECT_EQ(fast.peak_machines, reference.peak_machines);
  EXPECT_EQ(fast.machine_failures, reference.machine_failures);
  EXPECT_EQ(fast.unavailable_seconds, reference.unavailable_seconds);
  EXPECT_EQ(fast.availability, reference.availability);
  expect_close(fast.lost_capacity, reference.lost_capacity, "lost_capacity");
  EXPECT_EQ(fast.group_strikes, reference.group_strikes);
  EXPECT_EQ(fast.spare_seconds, reference.spare_seconds);
  expect_close(fast.spare_energy, reference.spare_energy, "spare_energy");
  EXPECT_EQ(fast.overload_seconds, reference.overload_seconds);
  expect_close(fast.penalty_lost_capacity, reference.penalty_lost_capacity,
               "penalty_lost_capacity");
  EXPECT_EQ(fast.preemptions, reference.preemptions);

  EXPECT_EQ(fast.qos.total_seconds, reference.qos.total_seconds);
  EXPECT_EQ(fast.qos.violation_seconds, reference.qos.violation_seconds);
  expect_close(fast.qos.unserved_requests, reference.qos.unserved_requests,
               "unserved_requests");
  expect_close(fast.qos.offered_requests, reference.qos.offered_requests,
               "offered_requests");
  expect_close(fast.qos.worst_shortfall, reference.qos.worst_shortfall,
               "worst_shortfall");

  ASSERT_EQ(fast.per_day_compute.size(), reference.per_day_compute.size());
  for (std::size_t d = 0; d < reference.per_day_compute.size(); ++d) {
    expect_close(fast.per_day_compute[d], reference.per_day_compute[d],
                 "per_day_compute");
    expect_close(fast.per_day_reconfiguration[d],
                 reference.per_day_reconfiguration[d],
                 "per_day_reconfiguration");
  }

  ASSERT_EQ(fast.power_series.size(), reference.power_series.size());
  for (std::size_t i = 0; i < reference.power_series.size(); ++i)
    expect_close(fast.power_series[i], reference.power_series[i],
                 "power_series");
}

std::unique_ptr<Scheduler> oracle_bml() {
  return std::make_unique<BmlScheduler>(design(),
                                        std::make_shared<OracleMaxPredictor>());
}

TEST(SimulatorFastPath, ConstantTraceBmlOracle) {
  expect_equivalent(oracle_bml, constant_trace(800.0, 7200.0));
}

TEST(SimulatorFastPath, StepTraceGracefulOff) {
  const LoadTrace trace = step_trace({{200.0, 1800.0},
                                      {2500.0, 1800.0},
                                      {60.0, 1800.0},
                                      {1400.0, 1800.0}});
  SimulatorOptions options;
  options.graceful_off = true;
  expect_equivalent(oracle_bml, trace, options);
}

TEST(SimulatorFastPath, StepTraceImmediateOff) {
  const LoadTrace trace = step_trace({{200.0, 1800.0},
                                      {2500.0, 1800.0},
                                      {60.0, 1800.0},
                                      {1400.0, 1800.0}});
  SimulatorOptions options;
  options.graceful_off = false;
  expect_equivalent(oracle_bml, trace, options);
}

TEST(SimulatorFastPath, RapidStepsInterleaveWithTransitions) {
  // Segments much shorter than the boot durations (~189 s for the real
  // catalog), so trace changes land in the middle of reconfigurations and
  // the batcher has to break spans on both event kinds.
  std::vector<StepSegment> segments;
  for (int i = 0; i < 120; ++i)
    segments.push_back({100.0 + 450.0 * (i % 7), 30.0});
  expect_equivalent(oracle_bml, step_trace(segments));
}

TEST(SimulatorFastPath, NoisyDiurnalBmlOracle) {
  DiurnalOptions options;
  options.peak = 2000.0;
  options.noise = 0.05;
  options.seed = 7;
  expect_equivalent(oracle_bml, diurnal_trace(options, 2));
}

TEST(SimulatorFastPath, WorldCupStyleTrace) {
  WorldCupOptions options;
  options.days = 3;
  options.peak = 3000.0;
  expect_equivalent(oracle_bml, worldcup_like_trace(options));
}

/// Two days of per-second-varying WC98-style replay (Poisson arrivals, a
/// tournament day included): the regime where decision-granular batching
/// must stay exact while the trace changes every second.
LoadTrace noisy_worldcup_trace() {
  WorldCupOptions options;
  options.days = 2;
  options.peak = 3000.0;
  options.tournament_start_day = 1;
  options.tournament_end_day = 2;
  return worldcup_like_trace(options);
}

TEST(SimulatorFastPath, NoisyWorldCupReplay) {
  expect_equivalent(oracle_bml, noisy_worldcup_trace());
}

TEST(SimulatorFastPath, NoisyWorldCupImmediateOff) {
  SimulatorOptions options;
  options.graceful_off = false;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, NoisyWorldCupWithBootFaults) {
  SimulatorOptions options;
  options.faults.boot_time_jitter = 0.3;
  options.faults.boot_failure_prob = 0.2;
  options.faults.seed = 17;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, NoisyWorldCupPowerSeriesRecording) {
  SimulatorOptions options;
  options.record_power_every = 60;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, NoisyWorldCupReactiveScheduler) {
  expect_equivalent(
      [] { return std::make_unique<ReactiveScheduler>(design()); },
      noisy_worldcup_trace());
}

TEST(SimulatorFastPath, NoisyWorldCupMovingMaxPredictor) {
  expect_equivalent(
      [] {
        return std::make_unique<BmlScheduler>(
            design(), std::make_shared<MovingMaxPredictor>(378.0));
      },
      noisy_worldcup_trace());
}

TEST(SimulatorFastPath, NoisyDiurnalSeasonalPredictor) {
  DiurnalOptions diurnal;
  diurnal.peak = 2000.0;
  diurnal.noise = 0.15;
  diurnal.seed = 23;
  expect_equivalent(
      [] {
        return std::make_unique<BmlScheduler>(
            design(), std::make_shared<SeasonalPredictor>());
      },
      diurnal_trace(diurnal, 2));
}

TEST(SimulatorFastPath, NoisyDiurnalLastValuePredictor) {
  DiurnalOptions diurnal;
  diurnal.peak = 1800.0;
  diurnal.noise = 0.1;
  diurnal.seed = 29;
  expect_equivalent(
      [] {
        return std::make_unique<BmlScheduler>(
            design(), std::make_shared<LastValuePredictor>());
      },
      diurnal_trace(diurnal, 1));
}

TEST(SimulatorFastPath, MultiAppNoisyTraces) {
  // Three per-second-noisy workloads against one shared cluster: the span
  // walk must intersect per-app runs exactly.
  DiurnalOptions web;
  web.peak = 1200.0;
  web.noise = 0.2;
  web.seed = 3;
  DiurnalOptions api;
  api.peak = 900.0;
  api.noise = 0.25;
  api.peak_hour = 6.0;
  api.seed = 4;
  const LoadTrace traces[] = {diurnal_trace(web, 1), diurnal_trace(api, 1),
                              noisy_worldcup_trace()};
  const std::string names[] = {"web", "api", "worldcup"};

  const auto run_with = [&](bool event_driven) {
    SimulatorOptions options;
    options.event_driven = event_driven;
    const Simulator sim(design()->candidates(), options);
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<Simulator::WorkloadView> views;
    for (std::size_t i = 0; i < 3; ++i) {
      schedulers.push_back(std::make_unique<BmlScheduler>(
          design(), std::make_shared<OracleMaxPredictor>()));
      views.push_back(Simulator::WorkloadView{&names[i], &traces[i],
                                              schedulers[i].get(),
                                              QosClass::kTolerant, 1.0});
    }
    return sim.run(views);
  };

  const MultiSimulationResult fast = run_with(true);
  const MultiSimulationResult reference = run_with(false);
  expect_close(fast.total.compute_energy, reference.total.compute_energy,
               "compute_energy");
  expect_close(fast.total.reconfiguration_energy,
               reference.total.reconfiguration_energy,
               "reconfiguration_energy");
  EXPECT_EQ(fast.total.reconfigurations, reference.total.reconfigurations);
  EXPECT_EQ(fast.total.qos.violation_seconds,
            reference.total.qos.violation_seconds);
  EXPECT_EQ(fast.total.qos.total_seconds, reference.total.qos.total_seconds);
  expect_close(fast.total.qos.unserved_requests,
               reference.total.qos.unserved_requests, "unserved_requests");
  ASSERT_EQ(fast.apps.size(), reference.apps.size());
  for (std::size_t i = 0; i < reference.apps.size(); ++i) {
    EXPECT_EQ(fast.apps[i].qos_stats.violation_seconds,
              reference.apps[i].qos_stats.violation_seconds)
        << names[i];
    expect_close(fast.apps[i].compute_energy,
                 reference.apps[i].compute_energy, names[i].c_str());
    expect_close(fast.apps[i].reconfiguration_energy,
                 reference.apps[i].reconfiguration_energy, names[i].c_str());
  }
}

// Runtime crash/repair faults are first-class fast-path events: the next
// scheduled failure or repair bounds a span exactly like a machine
// transition, so the equivalence contract (bit-exact integer counters,
// 1e-9 on the integrals) must hold with an active runtime FaultModel too.
SimulatorOptions runtime_fault_options(std::uint64_t seed) {
  SimulatorOptions options;
  options.faults.mtbf = 2400.0;
  options.faults.mttr = 700.0;
  options.faults.seed = seed;
  return options;
}

void expect_fault_accounting_equivalent(const SimulationResult& fast,
                                        const SimulationResult& reference) {
  EXPECT_EQ(fast.machine_failures, reference.machine_failures);
  EXPECT_EQ(fast.unavailable_seconds, reference.unavailable_seconds);
  EXPECT_EQ(fast.availability, reference.availability);  // integer-derived
  expect_close(fast.lost_capacity, reference.lost_capacity, "lost_capacity");
}

TEST(SimulatorFastPath, RuntimeFaultsSteadyTrace) {
  const LoadTrace trace = constant_trace(2100.0, 86'400.0);
  const SimulatorOptions options = runtime_fault_options(5);

  SimulatorOptions fast_options = options;
  fast_options.event_driven = true;
  SimulatorOptions reference_options = options;
  reference_options.event_driven = false;
  const Simulator fast_sim(design()->candidates(), fast_options);
  const Simulator reference_sim(design()->candidates(), reference_options);
  auto fast_scheduler = oracle_bml();
  auto reference_scheduler = oracle_bml();
  const SimulationResult fast = fast_sim.run(*fast_scheduler, trace);
  const SimulationResult reference =
      reference_sim.run(*reference_scheduler, trace);

  ASSERT_GT(reference.machine_failures, 0);
  expect_fault_accounting_equivalent(fast, reference);
  expect_equivalent(oracle_bml, trace, options);
}

TEST(SimulatorFastPath, RuntimeFaultsNoisyWorldCup) {
  expect_equivalent(oracle_bml, noisy_worldcup_trace(),
                    runtime_fault_options(13));
}

TEST(SimulatorFastPath, RuntimeFaultsWithBootFaultsAndImmediateOff) {
  SimulatorOptions options = runtime_fault_options(17);
  options.faults.boot_time_jitter = 0.3;
  options.faults.boot_failure_prob = 0.2;
  options.graceful_off = false;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, RuntimeFaultsReactiveScheduler) {
  const LoadTrace trace = step_trace(
      {{150.0, 7200.0}, {2400.0, 14400.0}, {300.0, 7200.0}});
  expect_equivalent(
      [] { return std::make_unique<ReactiveScheduler>(design()); }, trace,
      runtime_fault_options(23));
}

TEST(SimulatorFastPath, RuntimeFaultsMultiAppDomains) {
  // Three noisy apps, two sharing a fault domain: per-app counters and
  // integrals must match the per-second reference exactly / within 1e-9.
  DiurnalOptions web;
  web.peak = 1200.0;
  web.noise = 0.2;
  web.seed = 3;
  DiurnalOptions api;
  api.peak = 900.0;
  api.noise = 0.25;
  api.peak_hour = 6.0;
  api.seed = 4;
  const LoadTrace traces[] = {diurnal_trace(web, 1), diurnal_trace(api, 1),
                              constant_trace(500.0, 86'400.0)};
  const std::string names[] = {"web", "api", "batch"};
  const std::string domains[] = {"pool-a", "pool-a", ""};

  const auto run_with = [&](bool event_driven) {
    SimulatorOptions options = runtime_fault_options(29);
    options.event_driven = event_driven;
    const Simulator sim(design()->candidates(), options);
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<Simulator::WorkloadView> views;
    for (std::size_t i = 0; i < 3; ++i) {
      schedulers.push_back(std::make_unique<BmlScheduler>(
          design(), std::make_shared<OracleMaxPredictor>()));
      views.push_back(Simulator::WorkloadView{
          &names[i], &traces[i], schedulers[i].get(), QosClass::kTolerant,
          1.0, nullptr, &domains[i]});
    }
    return sim.run(views);
  };

  const MultiSimulationResult fast = run_with(true);
  const MultiSimulationResult reference = run_with(false);
  ASSERT_GT(reference.total.machine_failures, 0);
  expect_fault_accounting_equivalent(fast.total, reference.total);
  expect_close(fast.total.compute_energy, reference.total.compute_energy,
               "compute_energy");
  expect_close(fast.total.reconfiguration_energy,
               reference.total.reconfiguration_energy,
               "reconfiguration_energy");
  EXPECT_EQ(fast.total.reconfigurations, reference.total.reconfigurations);
  EXPECT_EQ(fast.total.qos.violation_seconds,
            reference.total.qos.violation_seconds);
  ASSERT_EQ(fast.apps.size(), reference.apps.size());
  for (std::size_t i = 0; i < reference.apps.size(); ++i) {
    EXPECT_EQ(fast.apps[i].failures, reference.apps[i].failures) << names[i];
    EXPECT_EQ(fast.apps[i].unavailable_seconds,
              reference.apps[i].unavailable_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].availability, reference.apps[i].availability)
        << names[i];
    expect_close(fast.apps[i].lost_capacity, reference.apps[i].lost_capacity,
                 names[i].c_str());
    expect_close(fast.apps[i].compute_energy, reference.apps[i].compute_energy,
                 names[i].c_str());
    EXPECT_EQ(fast.apps[i].qos_stats.violation_seconds,
              reference.apps[i].qos_stats.violation_seconds)
        << names[i];
  }
  // Apps sharing a domain report the same domain slice; the private
  // domain's numbers are its own.
  EXPECT_EQ(reference.apps[0].failures, reference.apps[1].failures);
  EXPECT_EQ(reference.apps[0].unavailable_seconds,
            reference.apps[1].unavailable_seconds);
}

TEST(SimulatorFastPath, CorrelatedGroupStrikes) {
  // Rack-level strikes fell whole stripes of the fleet in one event; the
  // fast path must stay exact while group events bound its spans.
  SimulatorOptions options;
  options.faults.groups = 3;
  options.faults.group_mtbf = 4.0 * 3600.0;
  options.faults.group_mttr = 1200.0;
  options.faults.seed = 31;

  SimulatorOptions reference_options = options;
  reference_options.event_driven = false;
  const Simulator reference_sim(design()->candidates(), reference_options);
  auto reference_scheduler = oracle_bml();
  const SimulationResult reference =
      reference_sim.run(*reference_scheduler, noisy_worldcup_trace());
  ASSERT_GT(reference.group_strikes, 0);
  ASSERT_GT(reference.machine_failures, reference.group_strikes);

  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, CrewLimitedRepairs) {
  // With one repair crew, MTTR becomes queueing-dependent: repairs start
  // only when the crew frees up. The queue is part of the timeline, so
  // both strategies must drain it identically.
  SimulatorOptions options = runtime_fault_options(37);
  options.faults.mtbf = 1800.0;
  options.faults.mttr = 900.0;
  options.faults.crews = 1;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, GroupStrikesWithCrewsAndMachineFaults) {
  SimulatorOptions options = runtime_fault_options(41);
  options.faults.groups = 2;
  options.faults.group_mtbf = 6.0 * 3600.0;
  options.faults.group_mttr = 1800.0;
  options.faults.crews = 2;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, SloFeedbackProvisionsSpares) {
  // Two apps sharing a struck fault domain, one with an availability SLO:
  // the feedback loop must provision/release spares at the same instants
  // on both strategies, and the spare accounting must agree exactly.
  DiurnalOptions web;
  web.peak = 1400.0;
  web.noise = 0.15;
  web.seed = 9;
  const LoadTrace traces[] = {diurnal_trace(web, 1),
                              constant_trace(600.0, 86'400.0)};
  const std::string names[] = {"web", "batch"};
  const std::string domain = "rack-pool";

  const auto run_with = [&](bool event_driven) {
    SimulatorOptions options;
    options.event_driven = event_driven;
    options.faults.groups = 2;
    options.faults.group_mtbf = 3.0 * 3600.0;
    options.faults.group_mttr = 1500.0;
    options.faults.crews = 1;
    options.faults.seed = 43;
    options.slo_window = 7200.0;
    const Simulator sim(design()->candidates(), options);
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<Simulator::WorkloadView> views;
    for (std::size_t i = 0; i < 2; ++i) {
      schedulers.push_back(std::make_unique<BmlScheduler>(
          design(), std::make_shared<OracleMaxPredictor>()));
      Simulator::WorkloadView view{&names[i], &traces[i], schedulers[i].get(),
                                   QosClass::kTolerant, 1.0, nullptr, &domain};
      if (i == 0) {
        view.slo_availability = 0.999;
        view.slo_spare = 0.5;
      }
      views.push_back(view);
    }
    return sim.run(views);
  };

  const MultiSimulationResult fast = run_with(true);
  const MultiSimulationResult reference = run_with(false);
  ASSERT_GT(reference.total.group_strikes, 0);
  ASSERT_GT(reference.total.spare_seconds, 0);
  ASSERT_GT(reference.total.spare_energy, 0.0);
  EXPECT_EQ(fast.total.group_strikes, reference.total.group_strikes);
  EXPECT_EQ(fast.total.spare_seconds, reference.total.spare_seconds);
  expect_close(fast.total.spare_energy, reference.total.spare_energy,
               "spare_energy");
  expect_fault_accounting_equivalent(fast.total, reference.total);
  expect_close(fast.total.compute_energy, reference.total.compute_energy,
               "compute_energy");
  expect_close(fast.total.reconfiguration_energy,
               reference.total.reconfiguration_energy,
               "reconfiguration_energy");
  EXPECT_EQ(fast.total.reconfigurations, reference.total.reconfigurations);
  EXPECT_EQ(fast.total.qos.violation_seconds,
            reference.total.qos.violation_seconds);
  ASSERT_EQ(fast.apps.size(), reference.apps.size());
  for (std::size_t i = 0; i < reference.apps.size(); ++i) {
    EXPECT_EQ(fast.apps[i].spare_seconds, reference.apps[i].spare_seconds)
        << names[i];
    expect_close(fast.apps[i].spare_energy, reference.apps[i].spare_energy,
                 names[i].c_str());
    expect_close(fast.apps[i].compute_energy, reference.apps[i].compute_energy,
                 names[i].c_str());
    EXPECT_EQ(fast.apps[i].failures, reference.apps[i].failures) << names[i];
  }
  // Only the SLO app accrues spare time; its slice carries the whole
  // cluster total.
  EXPECT_EQ(reference.apps[1].spare_seconds, 0);
  EXPECT_EQ(reference.apps[0].spare_seconds, reference.total.spare_seconds);
}

TEST(SimulatorFastPath, DegradedServingBoundsOverloadCrossings) {
  // A step trace against the reactive scheduler's boot lag drives offered
  // load above provisioned capacity with no fault anywhere: overload
  // entry/exit crossings alone must bound the fast-path spans, and the
  // degraded-mode accounting must match the reference exactly.
  SimulatorOptions options;
  options.degrade.overload_factor = 0.4;
  options.degrade.penalty = 0.3;
  const LoadTrace trace = step_trace({{90.0, 1500.0},
                                      {1700.0, 1500.0},
                                      {400.0, 1500.0},
                                      {2300.0, 1200.0},
                                      {150.0, 1800.0}});

  SimulatorOptions reference_options = options;
  reference_options.event_driven = false;
  const Simulator reference_sim(design()->candidates(), reference_options);
  ReactiveScheduler reference_scheduler(design());
  const SimulationResult reference =
      reference_sim.run(reference_scheduler, trace);
  ASSERT_GT(reference.overload_seconds, 0);
  ASSERT_GT(reference.penalty_lost_capacity, 0.0);

  expect_equivalent(
      [] { return std::make_unique<ReactiveScheduler>(design()); }, trace,
      options);
}

TEST(SimulatorFastPath, DegradedServingUnderRuntimeFaults) {
  // Strikes shrink the fleet under a noisy trace while the degrade model
  // absorbs the spill-over: fault spans and overload crossings bound the
  // same fast-path spans.
  SimulatorOptions options = runtime_fault_options(53);
  options.degrade.overload_factor = 0.5;
  options.degrade.penalty = 0.6;
  expect_equivalent(oracle_bml, noisy_worldcup_trace(), options);
}

TEST(SimulatorFastPath, FleetModeGracefulDegradationEverythingOn) {
  // The acceptance case of the graceful-degradation layer: four apps (the
  // fused k-way merge regime) with machine faults, rack strikes, a repair
  // crew, an availability SLO, the degrade model, and three priority
  // classes all active at once under the partitioned coordinator. Both
  // strategies must agree on every counter exactly and every integral
  // within 1e-9.
  DiurnalOptions web;
  web.peak = 1100.0;
  web.noise = 0.2;
  web.seed = 11;
  DiurnalOptions api;
  api.peak = 800.0;
  api.noise = 0.25;
  api.peak_hour = 7.0;
  api.seed = 12;
  const LoadTrace traces[] = {diurnal_trace(web, 1), diurnal_trace(api, 1),
                              constant_trace(450.0, 86'400.0),
                              constant_trace(350.0, 86'400.0)};
  const std::string names[] = {"web", "api", "batch", "scavenger"};
  const std::string domains[] = {"pool-a", "pool-a", "pool-a", "pool-b"};
  const int priorities[] = {2, 1, 0, 0};

  const auto run_with = [&](bool event_driven) {
    SimulatorOptions options;
    options.event_driven = event_driven;
    options.coordinator = CoordinatorMode::kPartitioned;
    options.coordinator_budget = design()->max_rate();
    options.faults.mtbf = 14'400.0;
    options.faults.mttr = 1200.0;
    options.faults.groups = 2;
    options.faults.group_mtbf = 4.0 * 3600.0;
    options.faults.group_mttr = 1500.0;
    options.faults.crews = 1;
    options.faults.seed = 47;
    options.slo_window = 7200.0;
    options.degrade.overload_factor = 0.5;
    options.degrade.penalty = 0.4;
    const Simulator sim(design()->candidates(), options);
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<Simulator::WorkloadView> views;
    for (std::size_t i = 0; i < 4; ++i) {
      schedulers.push_back(std::make_unique<BmlScheduler>(
          design(), std::make_shared<OracleMaxPredictor>()));
      Simulator::WorkloadView view{&names[i], &traces[i], schedulers[i].get(),
                                   QosClass::kTolerant, 1.0, nullptr,
                                   &domains[i]};
      if (i == 0) {
        view.slo_availability = 0.999;
        view.slo_spare = 0.5;
      }
      view.priority = priorities[i];
      views.push_back(view);
    }
    return sim.run(views);
  };

  const MultiSimulationResult fast = run_with(true);
  const MultiSimulationResult reference = run_with(false);
  // Every channel actually engaged.
  ASSERT_GT(reference.total.machine_failures, 0);
  ASSERT_GT(reference.total.group_strikes, 0);
  ASSERT_GT(reference.total.spare_seconds, 0);
  ASSERT_GT(reference.total.overload_seconds, 0);
  ASSERT_GT(reference.total.preemptions, 0);

  expect_fault_accounting_equivalent(fast.total, reference.total);
  EXPECT_EQ(fast.total.group_strikes, reference.total.group_strikes);
  EXPECT_EQ(fast.total.spare_seconds, reference.total.spare_seconds);
  EXPECT_EQ(fast.total.overload_seconds, reference.total.overload_seconds);
  EXPECT_EQ(fast.total.preemptions, reference.total.preemptions);
  EXPECT_EQ(fast.total.reconfigurations, reference.total.reconfigurations);
  EXPECT_EQ(fast.total.qos.violation_seconds,
            reference.total.qos.violation_seconds);
  expect_close(fast.total.compute_energy, reference.total.compute_energy,
               "compute_energy");
  expect_close(fast.total.reconfiguration_energy,
               reference.total.reconfiguration_energy,
               "reconfiguration_energy");
  expect_close(fast.total.penalty_lost_capacity,
               reference.total.penalty_lost_capacity,
               "penalty_lost_capacity");
  expect_close(fast.total.spare_energy, reference.total.spare_energy,
               "spare_energy");
  expect_close(fast.total.lost_capacity, reference.total.lost_capacity,
               "lost_capacity");

  ASSERT_EQ(fast.apps.size(), reference.apps.size());
  for (std::size_t i = 0; i < reference.apps.size(); ++i) {
    EXPECT_EQ(fast.apps[i].overload_seconds,
              reference.apps[i].overload_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].domain_overload_seconds,
              reference.apps[i].domain_overload_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].preempted_seconds,
              reference.apps[i].preempted_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].spare_seconds, reference.apps[i].spare_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].qos_stats.violation_seconds,
              reference.apps[i].qos_stats.violation_seconds)
        << names[i];
    expect_close(fast.apps[i].penalty_lost_capacity,
                 reference.apps[i].penalty_lost_capacity, names[i].c_str());
    expect_close(fast.apps[i].domain_penalty_lost,
                 reference.apps[i].domain_penalty_lost, names[i].c_str());
    expect_close(fast.apps[i].compute_energy,
                 reference.apps[i].compute_energy, names[i].c_str());
  }
  // Priority semantics: the top class is never preempted, lower classes
  // bear the backfill; apps sharing pool-a report one domain slice.
  EXPECT_EQ(reference.apps[0].preempted_seconds, 0);
  EXPECT_GT(reference.apps[2].preempted_seconds +
                reference.apps[3].preempted_seconds,
            0);
  EXPECT_EQ(reference.apps[0].domain_overload_seconds,
            reference.apps[1].domain_overload_seconds);
  EXPECT_EQ(reference.apps[0].domain_overload_seconds,
            reference.apps[2].domain_overload_seconds);
}

TEST(SimulatorFastPath, FleetModeTenantChurnEverythingOn) {
  // The acceptance case of the tenant-lifecycle layer: six apps in the
  // fused k-way merge regime where two tenants arrive mid-run, one
  // departs early, and one both arrives and departs — on top of machine
  // faults, rack strikes, a repair crew, an availability SLO, the degrade
  // model, and priority classes, all under the partitioned coordinator.
  // Both strategies must agree on every counter exactly and every
  // integral within 1e-9; churn-free tenants keep their full-horizon
  // active window.
  DiurnalOptions web;
  web.peak = 1100.0;
  web.noise = 0.2;
  web.seed = 11;
  DiurnalOptions api;
  api.peak = 800.0;
  api.noise = 0.25;
  api.peak_hour = 7.0;
  api.seed = 12;
  const LoadTrace traces[] = {diurnal_trace(web, 1), diurnal_trace(api, 1),
                              constant_trace(450.0, 86'400.0),
                              constant_trace(350.0, 86'400.0),
                              constant_trace(500.0, 86'400.0),
                              constant_trace(280.0, 86'400.0)};
  const std::string names[] = {"web", "api",   "batch",
                               "scavenger", "burst", "visitor"};
  const std::string domains[] = {"pool-a", "pool-a", "pool-a",
                                 "pool-b", "pool-b", "pool-a"};
  const int priorities[] = {2, 1, 0, 0, 1, 0};
  const TimePoint arrives[] = {0, 0, 0, 0, 21'600, 28'800};
  const TimePoint departs[] = {-1, -1, 64'800, -1, -1, 57'600};

  const auto run_with = [&](bool event_driven) {
    SimulatorOptions options;
    options.event_driven = event_driven;
    options.coordinator = CoordinatorMode::kPartitioned;
    options.coordinator_budget = design()->max_rate();
    options.faults.mtbf = 14'400.0;
    options.faults.mttr = 1200.0;
    options.faults.groups = 2;
    options.faults.group_mtbf = 4.0 * 3600.0;
    options.faults.group_mttr = 1500.0;
    options.faults.crews = 1;
    options.faults.seed = 47;
    options.slo_window = 7200.0;
    options.degrade.overload_factor = 0.5;
    options.degrade.penalty = 0.4;
    const Simulator sim(design()->candidates(), options);
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<Simulator::WorkloadView> views;
    for (std::size_t i = 0; i < 6; ++i) {
      schedulers.push_back(std::make_unique<BmlScheduler>(
          design(), std::make_shared<OracleMaxPredictor>()));
      Simulator::WorkloadView view{&names[i], &traces[i], schedulers[i].get(),
                                   QosClass::kTolerant, 1.0, nullptr,
                                   &domains[i]};
      if (i == 0) {
        view.slo_availability = 0.999;
        view.slo_spare = 0.5;
      }
      view.priority = priorities[i];
      view.arrive = arrives[i];
      view.depart = departs[i];
      views.push_back(view);
    }
    return sim.run(views);
  };

  const MultiSimulationResult fast = run_with(true);
  const MultiSimulationResult reference = run_with(false);
  // Every channel actually engaged, including the lifecycle one.
  ASSERT_GT(reference.total.machine_failures, 0);
  ASSERT_GT(reference.total.group_strikes, 0);
  ASSERT_GT(reference.total.spare_seconds, 0);
  ASSERT_GT(reference.total.overload_seconds, 0);
  ASSERT_EQ(reference.total.arrivals, 2);
  ASSERT_EQ(reference.total.departures, 2);

  expect_fault_accounting_equivalent(fast.total, reference.total);
  EXPECT_EQ(fast.total.group_strikes, reference.total.group_strikes);
  EXPECT_EQ(fast.total.spare_seconds, reference.total.spare_seconds);
  EXPECT_EQ(fast.total.overload_seconds, reference.total.overload_seconds);
  EXPECT_EQ(fast.total.preemptions, reference.total.preemptions);
  EXPECT_EQ(fast.total.arrivals, reference.total.arrivals);
  EXPECT_EQ(fast.total.departures, reference.total.departures);
  EXPECT_EQ(fast.total.reconfigurations, reference.total.reconfigurations);
  EXPECT_EQ(fast.total.qos.total_seconds, reference.total.qos.total_seconds);
  EXPECT_EQ(fast.total.qos.violation_seconds,
            reference.total.qos.violation_seconds);
  expect_close(fast.total.compute_energy, reference.total.compute_energy,
               "compute_energy");
  expect_close(fast.total.reconfiguration_energy,
               reference.total.reconfiguration_energy,
               "reconfiguration_energy");
  expect_close(fast.total.penalty_lost_capacity,
               reference.total.penalty_lost_capacity,
               "penalty_lost_capacity");
  expect_close(fast.total.spare_energy, reference.total.spare_energy,
               "spare_energy");
  expect_close(fast.total.lost_capacity, reference.total.lost_capacity,
               "lost_capacity");

  ASSERT_EQ(fast.apps.size(), reference.apps.size());
  for (std::size_t i = 0; i < reference.apps.size(); ++i) {
    EXPECT_EQ(fast.apps[i].active_seconds, reference.apps[i].active_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].overload_seconds,
              reference.apps[i].overload_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].domain_overload_seconds,
              reference.apps[i].domain_overload_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].preempted_seconds,
              reference.apps[i].preempted_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].spare_seconds, reference.apps[i].spare_seconds)
        << names[i];
    EXPECT_EQ(fast.apps[i].qos_stats.violation_seconds,
              reference.apps[i].qos_stats.violation_seconds)
        << names[i];
    expect_close(fast.apps[i].penalty_lost_capacity,
                 reference.apps[i].penalty_lost_capacity, names[i].c_str());
    expect_close(fast.apps[i].compute_energy,
                 reference.apps[i].compute_energy, names[i].c_str());
  }
  // Lifecycle attribution: always-on tenants cover the whole horizon,
  // bounded tenants exactly their window.
  EXPECT_EQ(reference.apps[0].active_seconds, 86'400);
  EXPECT_EQ(reference.apps[2].active_seconds, 64'800);
  EXPECT_EQ(reference.apps[4].active_seconds, 86'400 - 21'600);
  EXPECT_EQ(reference.apps[5].active_seconds, 57'600 - 28'800);
}

TEST(SimulatorFastPath, BootFaultScenario) {
  const LoadTrace trace = step_trace(
      {{100.0, 1200.0}, {2600.0, 1200.0}, {80.0, 1200.0}, {1900.0, 1200.0}});
  SimulatorOptions options;
  options.faults.boot_time_jitter = 0.3;   // fractional boot durations
  options.faults.boot_failure_prob = 0.2;  // retried boots
  options.faults.seed = 11;
  expect_equivalent(oracle_bml, trace, options);
}

TEST(SimulatorFastPath, PowerSeriesRecording) {
  const LoadTrace trace =
      step_trace({{150.0, 900.0}, {2100.0, 900.0}, {500.0, 900.0}});
  SimulatorOptions options;
  options.record_power_every = 60;
  expect_equivalent(oracle_bml, trace, options);
}

TEST(SimulatorFastPath, StaticAndPerDayBaselines) {
  DiurnalOptions diurnal;
  diurnal.peak = 2400.0;
  diurnal.noise = 0.0;
  const LoadTrace trace = diurnal_trace(diurnal, 2);
  expect_equivalent(
      [] {
        return std::make_unique<StaticMaxScheduler>(design()->big(), 0);
      },
      trace);
  expect_equivalent(
      [] { return std::make_unique<PerDayScheduler>(design()->big(), 0); },
      trace);
}

TEST(SimulatorFastPath, ReactiveSchedulerOnStepTrace) {
  const LoadTrace trace =
      step_trace({{90.0, 1500.0}, {1700.0, 1500.0}, {400.0, 1500.0}});
  expect_equivalent(
      [] { return std::make_unique<ReactiveScheduler>(design()); }, trace);
}

TEST(SimulatorFastPath, MovingMaxPredictorBatches) {
  // Reactive moving-max now advertises real stability (pure function of
  // the trace); the fast path must stay exact while batching on it.
  const LoadTrace trace = step_trace({{150.0, 1500.0},
                                      {2400.0, 1200.0},
                                      {2300.0, 600.0},
                                      {90.0, 1800.0},
                                      {1200.0, 900.0}});
  expect_equivalent(
      [] {
        return std::make_unique<BmlScheduler>(
            design(), std::make_shared<MovingMaxPredictor>(378.0));
      },
      trace);
}

TEST(SimulatorFastPath, SeasonalPredictorBatches) {
  DiurnalOptions diurnal;
  diurnal.peak = 2000.0;
  diurnal.noise = 0.0;
  const LoadTrace trace = diurnal_trace(diurnal, 2);
  expect_equivalent(
      [] {
        return std::make_unique<BmlScheduler>(
            design(), std::make_shared<SeasonalPredictor>());
      },
      trace);
}

TEST(SimulatorFastPath, DecisionLevelStabilityStaysExact) {
  // Wiggles small enough that consecutive window maxima map to the same
  // combination: the decision-level bound merges those spans; results must
  // match the per-second reference regardless.
  std::vector<StepSegment> segments;
  for (int i = 0; i < 60; ++i)
    segments.push_back({1000.0 + 7.0 * (i % 5), 120.0});
  segments.push_back({2600.0, 1200.0});
  for (int i = 0; i < 30; ++i)
    segments.push_back({140.0 + 3.0 * (i % 4), 90.0});
  expect_equivalent(oracle_bml, step_trace(segments));
}

TEST(SimulatorFastPath, StatefulPredictorFallsBackToPerSecondConsults) {
  // The EWMA predictor updates internal state on every call, so its
  // stability bound stays at one second; the fast path must remain exact.
  DiurnalOptions diurnal;
  diurnal.peak = 1500.0;
  diurnal.noise = 0.03;
  diurnal.seed = 3;
  const LoadTrace trace = diurnal_trace(diurnal, 1);
  expect_equivalent(
      [] {
        return std::make_unique<BmlScheduler>(
            design(), std::make_shared<EwmaPredictor>(0.2, 1.3));
      },
      trace);
}

TEST(SimulatorFastPath, CostAwareScheduler) {
  const LoadTrace trace =
      step_trace({{250.0, 1400.0}, {2200.0, 1400.0}, {120.0, 1400.0}});
  expect_equivalent(
      [] {
        return std::make_unique<CostAwareScheduler>(
            design(), std::make_shared<OracleMaxPredictor>());
      },
      trace);
}

TEST(SimulatorFastPath, EventLoggingUsesReferencePath) {
  // record_events forces the per-second loop even when event_driven is on;
  // the event log must be populated as before.
  SimulatorOptions options;
  options.record_events = true;
  options.event_driven = true;
  const Simulator sim(design()->candidates(), options);
  auto scheduler = oracle_bml();
  const SimulationResult r =
      sim.run(*scheduler, step_trace({{100.0, 600.0}, {2000.0, 600.0}}));
  EXPECT_GT(r.events.total(), 0u);
}

}  // namespace
}  // namespace bml
