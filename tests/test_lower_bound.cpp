// Tests for sched/lower_bound — the theoretical per-second yardstick.
#include "sched/lower_bound.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

TEST(LowerBound, ConstantLoadIsClosedForm) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  const LoadTrace trace = constant_trace(100.0, 500.0);
  const Joules total = theoretical_lower_bound_total(design, trace);
  EXPECT_NEAR(total, design.ideal_power(100.0) * 500.0, 1e-6);
}

TEST(LowerBound, PerDaySplitsCorrectly) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  const LoadTrace trace =
      constant_trace(50.0, static_cast<double>(kSecondsPerDay) + 3600.0);
  const auto days = theoretical_lower_bound_per_day(design, trace);
  ASSERT_EQ(days.size(), 2u);
  EXPECT_NEAR(days[0], design.ideal_power(50.0) * kSecondsPerDay, 1e-4);
  EXPECT_NEAR(days[1], design.ideal_power(50.0) * 3600.0, 1e-4);
}

TEST(LowerBound, EmptyTrace) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  EXPECT_TRUE(theoretical_lower_bound_per_day(design, LoadTrace{}).empty());
  EXPECT_DOUBLE_EQ(theoretical_lower_bound_total(design, LoadTrace{}), 0.0);
}

TEST(LowerBound, NeverExceedsSimulatedBml) {
  // The defining property: no simulated policy with On/Off costs can beat
  // the per-second ideal re-dimensioning without costs.
  auto design = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  WorldCupOptions options;
  options.days = 2;
  options.peak = 3000.0;
  options.seed = 17;
  const LoadTrace trace = worldcup_like_trace(options);

  const Joules lb = theoretical_lower_bound_total(*design, trace);
  Simulator sim(design->candidates());
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r = sim.run(scheduler, trace);
  EXPECT_LE(lb, r.total_energy());
}

TEST(LowerBound, ClampsLoadsAboveDesignRange) {
  BmlDesignOptions options;
  options.max_rate = 100.0;
  const BmlDesign design = BmlDesign::build(real_catalog(), options);
  const LoadTrace trace = constant_trace(500.0, 10.0);  // beyond max_rate
  const Joules total = theoretical_lower_bound_total(design, trace);
  EXPECT_NEAR(total, design.ideal_power(100.0) * 10.0, 1e-6);
}

}  // namespace
}  // namespace bml
