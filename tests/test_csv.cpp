// Tests for util/csv: parsing, strict numeric conversion, writer round-trip.
#include "util/csv.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(SplitCsvLine, TrimsAndSplits) {
  const auto cells = split_csv_line(" a , b,c ,, d ");
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b");
  EXPECT_EQ(cells[2], "c");
  EXPECT_EQ(cells[3], "");
  EXPECT_EQ(cells[4], "d");
}

TEST(ParseCsv, HeaderAndRows) {
  const CsvTable t = parse_csv("x,y\n1,2\n3,4\n", true);
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_EQ(t.rows[1][0], "3");
}

TEST(ParseCsv, SkipsCommentsAndBlankLines) {
  const CsvTable t = parse_csv("# comment\n\nx\n# another\n5\n", true);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "5");
}

TEST(ParseCsv, NoHeaderMode) {
  const CsvTable t = parse_csv("1,2\n3,4\n", false);
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.rows.size(), 2u);
}

TEST(CsvTable, MissingColumnThrows) {
  const CsvTable t = parse_csv("x\n1\n", true);
  EXPECT_THROW((void)t.column("nope"), std::out_of_range);
}

TEST(ParseDouble, AcceptsNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW((void)parse_double("abc"), std::runtime_error);
  EXPECT_THROW((void)parse_double("1.5x"), std::runtime_error);
  EXPECT_THROW((void)parse_double(""), std::runtime_error);
  EXPECT_THROW((void)parse_double("nan"), std::runtime_error);
  EXPECT_THROW((void)parse_double("inf"), std::runtime_error);
}

TEST(ParseInt, Strict) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW((void)parse_int("4.2"), std::runtime_error);
  EXPECT_THROW((void)parse_int(""), std::runtime_error);
}

TEST(CsvWriter, RoundTripsThroughParser) {
  CsvWriter w;
  w.set_header({"name", "value"});
  w.add_row(std::vector<std::string>{"alpha", "1"});
  w.add_row(std::vector<double>{2.5, 3.5});
  const CsvTable t = parse_csv(w.to_string(), true);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "alpha");
  EXPECT_DOUBLE_EQ(parse_double(t.rows[1][1]), 3.5);
}

TEST(CsvWriter, FileRoundTrip) {
  CsvWriter w;
  w.set_header({"rate"});
  w.add_row(std::vector<double>{123.456789});
  const auto path = std::filesystem::temp_directory_path() / "bml_csv_test.csv";
  w.write_file(path);
  const CsvTable t = read_csv_file(path, true);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_NEAR(parse_double(t.rows[0][0]), 123.456789, 1e-9);
  std::filesystem::remove(path);
}

TEST(ReadCsvFile, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/bml.csv", true),
               std::runtime_error);
}

}  // namespace
}  // namespace bml
