// Tests for util/stats: running moments, percentiles, summaries.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bml {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i * 0.1;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, ResetClearsState) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW((void)summarize({}), std::invalid_argument);
}

TEST(MeanOf, Basic) {
  const std::vector<double> v{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
  EXPECT_THROW((void)mean_of({}), std::invalid_argument);
}

// Percentile must be monotone in p for any sample.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  std::vector<double> v;
  // Deterministic pseudo-random sample derived from the parameter.
  unsigned seed = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  for (int i = 0; i < 50; ++i) {
    seed = seed * 1664525u + 1013904223u;
    v.push_back(static_cast<double>(seed % 1000) / 7.0);
  }
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev - 1e-12) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, PercentileMonotone,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace bml
