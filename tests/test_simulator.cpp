// Integration tests for sim/simulator with the real schedulers: energy
// accounting, reconfiguration semantics, QoS under the pro-active window.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

std::shared_ptr<BmlDesign> design() {
  static auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  return d;
}

TEST(Simulator, ConstantLoadStaticFleetEnergyIsExact) {
  const auto d = design();
  Simulator sim(d->candidates());
  StaticMaxScheduler scheduler(d->big(), 0);
  const LoadTrace trace = constant_trace(100.0, 1000.0);
  const SimulationResult r = sim.run(scheduler, trace);

  // One paravance (peak 100 <= 1331), pre-warmed, serving 100 req/s for
  // 1000 s. No transitions at all.
  const double power = 69.9 + (200.5 - 69.9) / 1331.0 * 100.0;
  EXPECT_NEAR(r.compute_energy, power * 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.reconfiguration_energy, 0.0);
  EXPECT_EQ(r.reconfigurations, 0);
  EXPECT_EQ(r.qos.violation_seconds, 0);
  EXPECT_EQ(r.scheduler_name, "upper-bound-global");
  ASSERT_EQ(r.per_day_compute.size(), 1u);
  EXPECT_NEAR(r.per_day_compute[0], r.compute_energy, 1e-9);
}

TEST(Simulator, ProactiveScaleUpAvoidsViolations) {
  const auto d = design();
  Simulator sim(d->candidates());
  BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
  // 5 req/s for 600 s, then 600 req/s for 600 s: the oracle window (378 s)
  // sees the step early enough for the Big machine's 189 s boot.
  const LoadTrace trace = step_trace({{5.0, 600.0}, {600.0, 600.0}});
  const SimulationResult r = sim.run(scheduler, trace);

  EXPECT_EQ(r.qos.violation_seconds, 0);
  EXPECT_DOUBLE_EQ(r.qos.served_fraction(), 1.0);
  EXPECT_EQ(r.reconfigurations, 1);
  // Reconfiguration energy: one paravance boot + one raspberry shutdown.
  EXPECT_NEAR(r.reconfiguration_energy, 21341.0 + 36.2, 1.0);
  EXPECT_GT(r.reconfiguring_seconds, 189);
}

TEST(Simulator, ReactiveScaleUpPaysQosViolations) {
  const auto d = design();
  Simulator sim(d->candidates());
  ReactiveScheduler scheduler(d);
  const LoadTrace trace = step_trace({{5.0, 600.0}, {600.0, 600.0}});
  const SimulationResult r = sim.run(scheduler, trace);

  // No look-ahead: the Big boot (189 s) happens after the step hits.
  EXPECT_GE(r.qos.violation_seconds, 180);
  EXPECT_LE(r.qos.violation_seconds, 200);
  EXPECT_LT(r.qos.served_fraction(), 1.0);
  EXPECT_GT(r.qos.worst_shortfall, 500.0);
}

TEST(Simulator, GracefulOffKeepsCapacityImmediateOffDoesNot) {
  const auto d = design();
  const LoadTrace trace = step_trace({{5.0, 600.0}, {600.0, 600.0}});

  SimulatorOptions graceful;
  graceful.graceful_off = true;
  SimulatorOptions immediate;
  immediate.graceful_off = false;

  BmlScheduler s1(d, std::make_shared<OracleMaxPredictor>());
  const SimulationResult with_grace =
      Simulator(d->candidates(), graceful).run(s1, trace);
  BmlScheduler s2(d, std::make_shared<OracleMaxPredictor>());
  const SimulationResult without =
      Simulator(d->candidates(), immediate).run(s2, trace);

  EXPECT_EQ(with_grace.qos.violation_seconds, 0);
  // Immediate off drops the raspberry while the Big machine still boots:
  // the 5 req/s trickle goes unserved for most of the boot.
  EXPECT_GT(without.qos.violation_seconds, 100);
  // But immediate off burns less energy (no double-running).
  EXPECT_LT(without.total_energy(), with_grace.total_energy());
}

TEST(Simulator, ScaleDownReleasesMachines) {
  const auto d = design();
  Simulator sim(d->candidates());
  BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
  // High plateau then quiet: machines must come back down.
  const LoadTrace trace = step_trace({{600.0, 800.0}, {5.0, 2000.0}});
  const SimulationResult r = sim.run(scheduler, trace);
  EXPECT_EQ(r.qos.violation_seconds, 0);
  EXPECT_GE(r.reconfigurations, 1);
  // Average power over the quiet tail must approach Little levels, far
  // below the Big machine's idle draw: check via total energy budget.
  const double avg_power = r.total_energy() / trace.duration();
  EXPECT_LT(avg_power, 69.9);
}

TEST(Simulator, PerDayTotalsSumToTotal) {
  const auto d = design();
  Simulator sim(d->candidates());
  BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
  WorldCupOptions options;
  options.days = 2;
  options.peak = 2000.0;
  const LoadTrace trace = worldcup_like_trace(options);
  const SimulationResult r = sim.run(scheduler, trace);
  ASSERT_EQ(r.per_day_compute.size(), 2u);
  double sum = 0.0;
  for (double day : r.per_day_total()) sum += day;
  EXPECT_NEAR(sum, r.total_energy(), 1e-6);
}

TEST(Simulator, PowerSeriesRecording) {
  const auto d = design();
  SimulatorOptions options;
  options.record_power_every = 60;
  Simulator sim(d->candidates(), options);
  StaticMaxScheduler scheduler(d->big(), 0);
  const LoadTrace trace = constant_trace(50.0, 150.0);
  const SimulationResult r = sim.run(scheduler, trace);
  ASSERT_EQ(r.power_series.size(), 3u);  // 60 + 60 + 30
  for (std::size_t i = 0; i < r.power_series.size(); ++i)
    EXPECT_GT(r.power_series[i], 69.9);
  EXPECT_DOUBLE_EQ(r.power_series.step(), 60.0);
}

TEST(Simulator, LockoutBlocksDecisionsDuringReconfiguration) {
  const auto d = design();
  Simulator sim(d->candidates());
  BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
  // Load oscillates every 30 s between two combination classes, far faster
  // than the paravance boot; the lockout must keep reconfigurations far
  // below the number of oscillations.
  std::vector<StepSegment> segments;
  for (int i = 0; i < 40; ++i) {
    segments.push_back({5.0, 30.0});
    segments.push_back({600.0, 30.0});
  }
  const LoadTrace trace = step_trace(segments);
  const SimulationResult r = sim.run(scheduler, trace);
  // The oracle window (378 s) always contains a 600-peak, so after the
  // first scale-up the target is stable: very few reconfigurations.
  EXPECT_LE(r.reconfigurations, 3);
  EXPECT_EQ(r.qos.violation_seconds, 0);
}

TEST(Simulator, EmptyTraceProducesEmptyResult) {
  const auto d = design();
  Simulator sim(d->candidates());
  StaticMaxScheduler scheduler(d->big(), 0);
  const SimulationResult r = sim.run(scheduler, LoadTrace{});
  EXPECT_DOUBLE_EQ(r.total_energy(), 0.0);
  EXPECT_EQ(r.qos.total_seconds, 0);
}

TEST(Simulator, PeakMachinesTracksProvisioning) {
  const auto d = design();
  Simulator sim(d->candidates());
  BmlScheduler scheduler(d, std::make_shared<OracleMaxPredictor>());
  const LoadTrace trace = step_trace({{100.0, 500.0}, {2500.0, 500.0}});
  const SimulationResult r = sim.run(scheduler, trace);
  EXPECT_GE(r.peak_machines, 2u);  // at least two Bigs at the plateau
}

}  // namespace
}  // namespace bml
