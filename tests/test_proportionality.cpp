// Tests for power/proportionality: IPR, LDR, composite score.
#include "power/proportionality.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bml {
namespace {

TEST(Ipr, KnownValues) {
  EXPECT_DOUBLE_EQ(ideal_to_peak_ratio(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(ideal_to_peak_ratio(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(ideal_to_peak_ratio(100.0, 100.0), 1.0);
}

TEST(Ipr, Validation) {
  EXPECT_THROW((void)ideal_to_peak_ratio(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ideal_to_peak_ratio(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)ideal_to_peak_ratio(20.0, 10.0), std::invalid_argument);
}

TEST(Ldr, LinearCurveIsZero) {
  const PowerCurve linear = [](double u) { return 10.0 + 90.0 * u; };
  EXPECT_NEAR(linear_deviation_ratio(linear), 0.0, 1e-12);
}

TEST(Ldr, ConvexCurveNegative) {
  // Power below the chord: super-linear efficiency at low load.
  const PowerCurve convex = [](double u) { return 100.0 * u * u; };
  EXPECT_LT(linear_deviation_ratio(convex), 0.0);
}

TEST(Ldr, ConcaveCurvePositive) {
  const PowerCurve concave = [](double u) { return 100.0 * std::sqrt(u); };
  EXPECT_GT(linear_deviation_ratio(concave), 0.0);
}

TEST(Ldr, Validation) {
  const PowerCurve linear = [](double u) { return u; };
  EXPECT_THROW((void)linear_deviation_ratio(linear, 1), std::invalid_argument);
  const PowerCurve zero_peak = [](double) { return 0.0; };
  EXPECT_THROW((void)linear_deviation_ratio(zero_peak), std::invalid_argument);
}

TEST(Score, IdealCurveScoresOne) {
  const PowerCurve ideal = [](double u) { return 100.0 * u; };
  EXPECT_NEAR(proportionality_score(ideal), 1.0, 1e-6);
}

TEST(Score, FlatConsumerScoresNearZero) {
  const PowerCurve flat = [](double) { return 100.0; };
  EXPECT_NEAR(proportionality_score(flat), 0.0, 2e-3);
}

TEST(Score, HalfIdleScoresHalf) {
  // idle = 50% of peak, linear: area = 0.75, score = 1 - 0.25/0.5 = 0.5.
  const PowerCurve half = [](double u) { return 50.0 + 50.0 * u; };
  EXPECT_NEAR(proportionality_score(half), 0.5, 2e-3);
}

TEST(Score, OrdersMachinesByIdleFraction) {
  // A lower idle fraction must score strictly better for linear curves.
  const PowerCurve low_idle = [](double u) { return 10.0 + 90.0 * u; };
  const PowerCurve high_idle = [](double u) { return 60.0 + 40.0 * u; };
  EXPECT_GT(proportionality_score(low_idle),
            proportionality_score(high_idle));
}

// IPR and score must agree on the ordering of linear curves.
class IprScoreAgreement : public ::testing::TestWithParam<double> {};

TEST_P(IprScoreAgreement, LinearCurveScoreIsOneMinusHalfIpr) {
  const double idle_fraction = GetParam();
  const PowerCurve curve = [idle_fraction](double u) {
    return 100.0 * (idle_fraction + (1.0 - idle_fraction) * u);
  };
  // For linear curves: area = idle + (1-idle)/2, score = 1 - idle.
  EXPECT_NEAR(proportionality_score(curve), 1.0 - idle_fraction, 2e-3);
  EXPECT_NEAR(ideal_to_peak_ratio(100.0 * idle_fraction, 100.0),
              idle_fraction, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(IdleFractions, IprScoreAgreement,
                         ::testing::Values(0.0, 0.1, 0.35, 0.5, 0.84, 1.0));

}  // namespace
}  // namespace bml
