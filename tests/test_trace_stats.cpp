// Tests for trace/trace_stats.
#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace bml {
namespace {

TEST(TraceStats, ConstantTraceBaselines) {
  const TraceStats s = analyze_trace(constant_trace(100.0, 3600.0));
  EXPECT_EQ(s.seconds, 3600u);
  EXPECT_DOUBLE_EQ(s.mean, 100.0);
  EXPECT_DOUBLE_EQ(s.peak, 100.0);
  EXPECT_DOUBLE_EQ(s.peak_to_mean, 1.0);
  EXPECT_DOUBLE_EQ(s.index_of_dispersion, 0.0);
  EXPECT_DOUBLE_EQ(s.normalized_jitter, 0.0);
}

TEST(TraceStats, RejectsEmptyTrace) {
  EXPECT_THROW((void)analyze_trace(LoadTrace{}), std::invalid_argument);
}

TEST(TraceStats, PoissonLikeDispersionNearOne) {
  // The World-Cup generator emits Poisson counts around the intensity; on
  // a short, nearly stationary stretch the index of dispersion should be
  // of order 1 (Poisson), far from 0 (smooth).
  WorldCupOptions options;
  options.days = 1;
  options.peak = 500.0;
  options.noise = 0.0;
  options.micro_bursts_per_day = 0.0;
  options.news_burst_prob_per_day = 0.0;
  const LoadTrace trace = worldcup_like_trace(options);
  // Analyze only a 30-minute slice to minimise the diurnal contribution.
  std::vector<double> slice;
  for (TimePoint t = 12 * 3600; t < 12 * 3600 + 1800; ++t)
    slice.push_back(trace.at(t));
  const TraceStats s = analyze_trace(LoadTrace(slice));
  EXPECT_GT(s.index_of_dispersion, 0.4);
  EXPECT_LT(s.index_of_dispersion, 5.0);
}

TEST(TraceStats, DiurnalAutocorrelationHighForCyclicLoad) {
  DiurnalOptions options;
  options.noise = 0.02;
  const LoadTrace cyclic = diurnal_trace(options, 3);
  const TraceStats s = analyze_trace(cyclic);
  EXPECT_GT(s.diurnal_autocorrelation, 0.9);
}

TEST(TraceStats, DayPeakDynamicRange) {
  // Two days: peaks 100 and 400 -> range 0.25.
  std::vector<double> rates(static_cast<std::size_t>(kSecondsPerDay) * 2,
                            10.0);
  rates[100] = 100.0;
  rates[static_cast<std::size_t>(kSecondsPerDay) + 100] = 400.0;
  const TraceStats s = analyze_trace(LoadTrace(std::move(rates)));
  EXPECT_NEAR(s.day_peak_dynamic_range, 0.25, 1e-9);
}

TEST(TraceStats, WorldCupTraceHasPaperCharacter) {
  WorldCupOptions options;
  options.days = 14;
  options.tournament_start_day = 7;
  options.tournament_end_day = 13;
  const TraceStats s = analyze_trace(worldcup_like_trace(options));
  // Strong over-provisioning pressure and wide day-level dynamic range —
  // the properties Fig. 5 exploits.
  EXPECT_GT(s.peak_to_mean, 3.0);
  EXPECT_LT(s.day_peak_dynamic_range, 0.3);
  EXPECT_GT(s.diurnal_autocorrelation, 0.3);
}

TEST(TraceStats, ToStringContainsKeys) {
  const TraceStats s = analyze_trace(constant_trace(5.0, 100.0));
  const std::string text = to_string(s);
  EXPECT_NE(text.find("peak/mean"), std::string::npos);
  EXPECT_NE(text.find("index of dispersion"), std::string::npos);
}

}  // namespace
}  // namespace bml
