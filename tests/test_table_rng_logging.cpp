// Tests for util/table (ASCII rendering), util/rng (determinism), and
// util/logging (threshold behaviour).
#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace bml {
namespace {

TEST(AsciiTable, RendersAlignedRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "23"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   |"), std::string::npos);
  EXPECT_NE(out.find("| longer |    23 |"), std::string::npos);
}

TEST(AsciiTable, RejectsBadShapes) {
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.set_alignments({Align::kLeft}), std::invalid_argument);
}

TEST(AsciiTable, NumFormatsFixedDigits) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i)
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const auto n = rng.uniform_int(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

TEST(Rng, PoissonAndChanceEdgeCases) {
  Rng rng(9);
  EXPECT_EQ(rng.poisson(-1.0), 0);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child stream should not replay the parent's next values.
  Rng b(5);
  (void)b.engine()();  // consume what split() consumed
  EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  (void)child;
}

TEST(Logging, ThresholdFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_info() << "should not appear";
  log_error() << "should appear";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  set_log_level(before);
}

}  // namespace
}  // namespace bml
