// Tests for core/crossing — Steps 3 and 4: minimum utilization thresholds.
//
// The key acceptance numbers come straight from the paper: on the Table I
// catalog the thresholds are 1 (Raspberry), 10 (Chromebook) and
// 529 (Paravance) requests per second, and Graphene's profile "never
// crosses any other architecture's profile".
#include "core/crossing.hpp"

#include <gtest/gtest.h>

#include "core/candidate_filter.hpp"

namespace bml {
namespace {

Catalog real_candidates() {
  return filter_candidates(real_catalog()).candidates;
}

TEST(HomogeneousCost, SingleAndMultipleMachines) {
  const ArchitectureProfile rasp("raspberry", 9.0, 3.1, 3.7, {}, {});
  EXPECT_DOUBLE_EQ(homogeneous_cost(rasp, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(homogeneous_cost(rasp, 9.0), 3.7);
  // 10 req/s: one full + one at 1 req/s.
  EXPECT_NEAR(homogeneous_cost(rasp, 10.0), 3.7 + 3.1 + 0.6 / 9.0, 1e-9);
  // 18: two full machines.
  EXPECT_DOUBLE_EQ(homogeneous_cost(rasp, 18.0), 7.4);
  EXPECT_THROW((void)homogeneous_cost(rasp, -1.0), std::invalid_argument);
}

TEST(MinCostCurve, MatchesHandComputedValues) {
  const Catalog cand = real_candidates();
  const MinCostCurve curve(cand, 100.0);
  // 5 req/s: one raspberry partially loaded.
  EXPECT_NEAR(curve.cost(5.0), 3.1 + (0.6 / 9.0) * 5.0, 1e-9);
  // 9 req/s: one full raspberry beats a chromebook at 9 (4.98 W).
  EXPECT_DOUBLE_EQ(curve.cost(9.0), 3.7);
  // 10 req/s: one chromebook at 10 beats two raspberries (6.87 W).
  EXPECT_NEAR(curve.cost(10.0), 4.0 + (3.6 / 33.0) * 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(curve.cost(0.0), 0.0);
}

TEST(MinCostCurve, ReconstructionMatchesCost) {
  const Catalog cand = real_candidates();
  const MinCostCurve curve(cand, 600.0);
  for (double r : {1.0, 9.0, 10.0, 42.0, 100.0, 333.0, 529.0, 600.0}) {
    const Combination combo = curve.combination(r);
    EXPECT_GE(capacity(cand, combo), r) << "rate " << r;
    EXPECT_NEAR(dispatch(cand, combo, r).power, curve.cost(r), 1e-6)
        << "rate " << r;
  }
}

TEST(MinCostCurve, CostIsMonotone) {
  const Catalog cand = real_candidates();
  const MinCostCurve curve(cand, 1500.0);
  double prev = 0.0;
  for (double r = 0.0; r <= 1500.0; r += 1.0) {
    const double c = curve.cost(r);
    EXPECT_GE(c, prev - 1e-9) << "rate " << r;
    prev = c;
  }
}

TEST(MinCostCurve, Validation) {
  const Catalog cand = real_candidates();
  EXPECT_THROW(MinCostCurve({}, 10.0), std::invalid_argument);
  EXPECT_THROW(MinCostCurve(cand, -1.0), std::invalid_argument);
  const MinCostCurve curve(cand, 10.0);
  EXPECT_THROW((void)curve.cost(11.0), std::out_of_range);
  EXPECT_THROW((void)curve.cost(-1.0), std::invalid_argument);
}

TEST(CrossingPoint, FindsChromebookThreshold) {
  const Catalog c = real_catalog();
  const auto chromebook = find_profile(c, "chromebook").value();
  const auto raspberry = find_profile(c, "raspberry").value();
  const auto threshold = crossing_point(
      chromebook,
      [&raspberry](ReqRate r) { return homogeneous_cost(raspberry, r); });
  ASSERT_TRUE(threshold.has_value());
  EXPECT_DOUBLE_EQ(*threshold, 10.0);
}

TEST(CrossingPoint, GrapheneNeverCrosses) {
  const Catalog c = real_catalog();
  const auto graphene = find_profile(c, "graphene").value();
  const auto chromebook = find_profile(c, "chromebook").value();
  const auto threshold = crossing_point(
      graphene,
      [&chromebook](ReqRate r) { return homogeneous_cost(chromebook, r); });
  EXPECT_FALSE(threshold.has_value());
}

TEST(Step3Thresholds, RealCatalogMatchesPaper) {
  const Catalog cand = real_candidates();  // paravance graphene chromebook rasp
  const ThresholdResult r = step3_thresholds(cand);
  ASSERT_EQ(r.thresholds.size(), 4u);
  ASSERT_TRUE(r.thresholds[0].has_value());   // paravance
  EXPECT_FALSE(r.thresholds[1].has_value());  // graphene: never preferable
  ASSERT_TRUE(r.thresholds[2].has_value());   // chromebook
  ASSERT_TRUE(r.thresholds[3].has_value());   // raspberry
  EXPECT_DOUBLE_EQ(*r.thresholds[3], 1.0);
  EXPECT_DOUBLE_EQ(*r.thresholds[2], 10.0);
  EXPECT_DOUBLE_EQ(*r.thresholds[0], 529.0);
}

TEST(Step4Thresholds, RealCatalogMatchesPaper) {
  // After removing graphene (its Step 3 fate), Step 4 on the survivors
  // reproduces the published thresholds 1 / 10 / 529.
  Catalog cand = real_candidates();
  cand.erase(cand.begin() + 1);  // drop graphene
  const ThresholdResult r = step4_thresholds(cand);
  ASSERT_EQ(r.thresholds.size(), 3u);
  EXPECT_DOUBLE_EQ(r.thresholds[0].value(), 529.0);  // paravance
  EXPECT_DOUBLE_EQ(r.thresholds[1].value(), 10.0);   // chromebook
  EXPECT_DOUBLE_EQ(r.thresholds[2].value(), 1.0);    // raspberry
}

TEST(Step3VsStep4, IllustrativeBigThresholdIncreases) {
  // The Fig. 2 narrative: Step 3 puts Big's threshold right at Medium's
  // maximum performance; Step 4 (Medium+Little mixes) raises it.
  const Catalog cand = filter_candidates(illustrative_catalog()).candidates;
  const ThresholdResult s3 = step3_thresholds(cand);
  const ThresholdResult s4 = step4_thresholds(cand);
  ASSERT_TRUE(s3.thresholds[0].has_value());
  ASSERT_TRUE(s4.thresholds[0].has_value());
  const auto medium_max = cand[1].max_perf();  // arch-B: 400
  EXPECT_NEAR(*s3.thresholds[0], medium_max + 1.0, 1.0);
  EXPECT_GT(*s4.thresholds[0], *s3.thresholds[0]);
  // Medium's threshold ("around 150") is identical in both steps here.
  EXPECT_NEAR(*s3.thresholds[1], 151.0, 1.0);
  EXPECT_DOUBLE_EQ(*s4.thresholds[1], *s3.thresholds[1]);
}

TEST(Thresholds, LittleIsAlwaysOne) {
  for (const Catalog& input : {real_catalog(), illustrative_catalog()}) {
    const Catalog cand = filter_candidates(input).candidates;
    const ThresholdResult r = step3_thresholds(cand);
    EXPECT_DOUBLE_EQ(r.thresholds.back().value(), 1.0);
  }
}

TEST(Thresholds, EmptyCatalogThrows) {
  EXPECT_THROW((void)step3_thresholds({}), std::invalid_argument);
  EXPECT_THROW((void)step4_thresholds({}), std::invalid_argument);
}

// Property: at its Step 4 threshold, a single machine of the architecture
// really is no worse than the best mix of smaller ones, and one rate below
// it is strictly worse (minimality of the threshold).
TEST(Thresholds, Step4Minimality) {
  Catalog cand = real_candidates();
  cand.erase(cand.begin() + 1);  // paravance chromebook raspberry
  const ThresholdResult r = step4_thresholds(cand);
  for (std::size_t i = 0; i + 1 < cand.size(); ++i) {
    const double threshold = r.thresholds[i].value();
    Catalog smaller(cand.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    cand.end());
    const MinCostCurve curve(smaller, cand[i].max_perf());
    EXPECT_LE(cand[i].power_at(threshold), curve.cost(threshold) + 1e-9);
    if (threshold > 1.0)
      EXPECT_GT(cand[i].power_at(threshold - 1.0),
                curve.cost(threshold - 1.0));
  }
}

}  // namespace
}  // namespace bml
