// Tests for experiments/ablations: prediction error, window length,
// policy comparison, proportionality metrics.
#include "experiments/ablations.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

AblationOptions quick() {
  AblationOptions o;
  o.days = 2;
  o.peak = 3000.0;
  o.seed = 77;
  return o;
}

TEST(PredictionErrorSweep, ZeroErrorIsBaselineAndErrorCostsEnergyOrQos) {
  const auto rows = run_prediction_error_sweep({0.0, 0.3}, quick());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].served_fraction, 1.0);
  // Symmetric multiplicative error inflates the combination half the time
  // (more energy) and deflates it the other half (QoS loss): at least one
  // of the two must degrade.
  const bool more_energy = rows[1].total_energy > rows[0].total_energy;
  const bool worse_qos = rows[1].served_fraction < rows[0].served_fraction;
  EXPECT_TRUE(more_energy || worse_qos);
}

TEST(WindowSweep, ShortWindowRisksQosLongWindowCostsEnergy) {
  const auto rows = run_window_sweep({0.1, 2.0, 8.0}, quick());
  ASSERT_EQ(rows.size(), 3u);
  // A window shorter than the Big boot cannot always hide boot latency.
  EXPECT_LE(rows[0].served_fraction, 1.0);
  // The paper's 2x window satisfies QoS.
  EXPECT_DOUBLE_EQ(rows[1].served_fraction, 1.0);
  // A much longer window over-provisions: energy grows monotonically.
  EXPECT_GT(rows[2].total_energy, rows[1].total_energy);
}

TEST(PolicyComparison, ProactiveOracleSatisfiesQos) {
  const auto rows = run_policy_comparison(quick());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].label, "pro-active oracle (paper)");
  EXPECT_DOUBLE_EQ(rows[0].served_fraction, 1.0);
  // The seasonal predictor is reactive but diurnal-aware: it must serve
  // the vast majority of requests.
  EXPECT_GT(rows[2].served_fraction, 0.95);
  // The plain reactive policy must lose requests (boot latency).
  EXPECT_LT(rows[3].served_fraction, 1.0);
  // Hysteresis reduces reconfigurations versus plain reactive.
  EXPECT_LT(rows[4].reconfigurations, rows[3].reconfigurations);
}

TEST(ProportionalityMetrics, BmlBeatsEveryRealMachine) {
  const auto rows = run_proportionality_metrics();
  // 5 machines + BML combination + BML linear reference.
  ASSERT_EQ(rows.size(), 7u);
  double best_machine_score = 0.0;
  double bml_score = 0.0;
  for (const auto& row : rows) {
    EXPECT_GE(row.ipr, 0.0);
    EXPECT_LE(row.ipr, 1.0);
    if (row.name == "BML combination")
      bml_score = row.score;
    else if (row.name != "BML linear (ref)")
      best_machine_score = std::max(best_machine_score, row.score);
  }
  // The composed heterogeneous curve is more energy proportional than any
  // single machine — the paper's core claim, in metric form.
  EXPECT_GT(bml_score, best_machine_score);
}

TEST(ProportionalityMetrics, KnownIprValues) {
  const auto rows = run_proportionality_metrics();
  for (const auto& row : rows) {
    if (row.name == "paravance")
      EXPECT_NEAR(row.ipr, 69.9 / 200.5, 1e-9);
    if (row.name == "raspberry")
      EXPECT_NEAR(row.ipr, 3.1 / 3.7, 1e-9);
  }
}

}  // namespace
}  // namespace bml
