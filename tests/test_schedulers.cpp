// Tests for sched/: BmlScheduler decisions, baselines, hysteresis.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

std::shared_ptr<BmlDesign> design() {
  static auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  return d;
}

ClusterSnapshot empty_snapshot() { return ClusterSnapshot{}; }

TEST(BmlScheduler, DefaultWindowIsTwiceLongestOn) {
  // Paravance has the longest On duration (189 s): window = 378 s, the
  // paper's value.
  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  EXPECT_DOUBLE_EQ(scheduler.window(), 378.0);
  EXPECT_DOUBLE_EQ(BmlScheduler::default_window(*design()), 378.0);
}

TEST(BmlScheduler, DecidesIdealCombinationForWindowMax) {
  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  const LoadTrace trace = step_trace({{5.0, 100.0}, {600.0, 400.0}});
  // At t=0 the window [0,378) already contains the 600 step.
  const auto target = scheduler.decide(0, trace, empty_snapshot());
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, design()->ideal_combination(600.0));
}

TEST(BmlScheduler, InitialCombinationCoversFirstSecond) {
  BmlScheduler scheduler(design(), std::make_shared<LastValuePredictor>());
  // Reactive predictor knows nothing at t=0; the initial sizing must still
  // cover the first second's load.
  const LoadTrace trace = constant_trace(500.0, 100.0);
  const Combination initial = scheduler.initial_combination(trace);
  EXPECT_GE(capacity(design()->candidates(), initial), 500.0);
}

TEST(BmlScheduler, CriticalQosAddsHeadroom) {
  BmlScheduler tolerant(design(), std::make_shared<OracleMaxPredictor>(),
                        0.0, QosClass::kTolerant);
  BmlScheduler critical(design(), std::make_shared<OracleMaxPredictor>(),
                        0.0, QosClass::kCritical);
  const LoadTrace trace = constant_trace(500.0, 1000.0);
  const auto t = tolerant.decide(0, trace, empty_snapshot());
  const auto c = critical.decide(0, trace, empty_snapshot());
  EXPECT_GE(capacity(design()->candidates(), *c),
            capacity(design()->candidates(), *t));
  EXPECT_GE(capacity(design()->candidates(), *c), 550.0);  // 1.1 headroom
}

TEST(BmlScheduler, NameIncludesPredictor) {
  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  EXPECT_EQ(scheduler.name(), "bml(oracle-max)");
}

TEST(BmlScheduler, DecisionStableUntilMergesSameCombinationSpans) {
  // A falling staircase whose steps stay inside one combination-table
  // band: the window-max prediction changes at every plateau, the decision
  // does not, so the stability bound must jump several plateaus at once.
  // Find a band wide enough for the 6 req/s wiggle first (the littlest
  // machine serves 9 req/s, so such bands exist).
  double base = 500.0;
  while (design()->ideal_combination(base) !=
         design()->ideal_combination(base + 6.0))
    base += 1.0;
  std::vector<StepSegment> segments;
  for (int i = 0; i < 4; ++i)
    segments.push_back({base + 6.0 - 2.0 * i, 400.0});
  segments.push_back({2800.0, 600.0});
  const LoadTrace trace = step_trace(segments);

  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  const ClusterSnapshot snapshot;

  // Soundness: decide() is constant over every claimed span.
  for (TimePoint now = 0; now < static_cast<TimePoint>(trace.size());) {
    const TimePoint stable = scheduler.decision_stable_until(now, trace);
    ASSERT_GT(stable, now);
    const auto decision = scheduler.decide(now, trace, snapshot);
    const TimePoint end =
        std::min(stable, static_cast<TimePoint>(trace.size()));
    for (TimePoint t = now + 1; t < end; ++t)
      ASSERT_EQ(scheduler.decide(t, trace, snapshot), decision)
          << "span [" << now << ", " << stable << ") broke at t=" << t;
    now = end;
  }

  // Strength: from t = 0 the prediction drops at every plateau start, but
  // the decision only changes when the 2800 req/s step enters the oracle
  // window — the bound must clear several plateaus at once.
  const TimePoint bound = scheduler.decision_stable_until(0, trace);
  OracleMaxPredictor oracle;
  const TimePoint prediction_bound =
      oracle.stable_until(trace, 0, scheduler.window());
  EXPECT_GT(bound, prediction_bound);
  EXPECT_GE(bound, 800);
}

TEST(BmlScheduler, Validation) {
  EXPECT_THROW(
      BmlScheduler(nullptr, std::make_shared<OracleMaxPredictor>()),
      std::invalid_argument);
  EXPECT_THROW(BmlScheduler(design(), nullptr), std::invalid_argument);
}

TEST(StaticMaxScheduler, SizesForGlobalPeak) {
  StaticMaxScheduler scheduler(design()->big(), 0);
  // The paper: peak needing 4 Bigs -> 4 always-on machines.
  EXPECT_EQ(scheduler.machines_for(5200.0), 4);
  EXPECT_EQ(scheduler.machines_for(1331.0), 1);
  EXPECT_EQ(scheduler.machines_for(1332.0), 2);
  EXPECT_EQ(scheduler.machines_for(0.0), 1);  // never zero machines
  EXPECT_THROW((void)scheduler.machines_for(-1.0), std::invalid_argument);

  const LoadTrace trace = constant_trace(5200.0, 10.0);
  const auto combo = scheduler.decide(0, trace, ClusterSnapshot{});
  ASSERT_TRUE(combo.has_value());
  EXPECT_EQ(combo->count(0), 4);
}

TEST(StaticMaxScheduler, ConstantAcrossTime) {
  StaticMaxScheduler scheduler(design()->big(), 0);
  const LoadTrace trace = step_trace({{5000.0, 10.0}, {5.0, 100.0}});
  const auto early = scheduler.decide(0, trace, ClusterSnapshot{});
  const auto late = scheduler.decide(50, trace, ClusterSnapshot{});
  EXPECT_EQ(*early, *late);
}

TEST(PerDayScheduler, ResizesAtMidnight) {
  PerDayScheduler scheduler(design()->big(), 0);
  std::vector<double> rates(static_cast<std::size_t>(kSecondsPerDay) * 2,
                            100.0);
  rates[100] = 2000.0;  // day 0 needs 2 bigs
  // day 1 peak stays 100 -> 1 big
  const LoadTrace trace(std::move(rates));
  const auto day0 = scheduler.decide(0, trace, ClusterSnapshot{});
  const auto day1 = scheduler.decide(kSecondsPerDay + 5, trace,
                                     ClusterSnapshot{});
  EXPECT_EQ(day0->count(0), 2);
  EXPECT_EQ(day1->count(0), 1);
  EXPECT_EQ(scheduler.initial_combination(trace).count(0), 2);
  // Beyond the trace: no opinion.
  EXPECT_FALSE(
      scheduler.decide(kSecondsPerDay * 5, trace, ClusterSnapshot{})
          .has_value());
}

TEST(ReactiveScheduler, FollowsInstantaneousLoad) {
  ReactiveScheduler scheduler(design());
  const LoadTrace trace = step_trace({{5.0, 10.0}, {600.0, 10.0}});
  EXPECT_EQ(*scheduler.decide(0, trace, ClusterSnapshot{}),
            design()->ideal_combination(5.0));
  EXPECT_EQ(*scheduler.decide(15, trace, ClusterSnapshot{}),
            design()->ideal_combination(600.0));
  EXPECT_THROW(ReactiveScheduler(design(), 0.5), std::invalid_argument);
  EXPECT_THROW(ReactiveScheduler(nullptr), std::invalid_argument);
}

TEST(HysteresisScheduler, ScaleUpImmediateScaleDownDelayed) {
  auto inner = std::make_shared<ReactiveScheduler>(design());
  HysteresisScheduler scheduler(inner, design(), /*hold=*/100.0);
  // 600 -> 5 -> (held) -> eventually follows.
  const LoadTrace trace =
      step_trace({{600.0, 10.0}, {5.0, 300.0}});
  const Combination big = design()->ideal_combination(600.0);
  const Combination little = design()->ideal_combination(5.0);

  EXPECT_EQ(*scheduler.decide(0, trace, ClusterSnapshot{}), big);
  // Scale-down requested at t=15 but held.
  EXPECT_EQ(*scheduler.decide(15, trace, ClusterSnapshot{}), big);
  EXPECT_EQ(*scheduler.decide(60, trace, ClusterSnapshot{}), big);
  // After the hold expires the scale-down goes through.
  EXPECT_EQ(*scheduler.decide(130, trace, ClusterSnapshot{}), little);
}

TEST(HysteresisScheduler, ScaleUpPassesThrough) {
  auto inner = std::make_shared<ReactiveScheduler>(design());
  HysteresisScheduler scheduler(inner, design(), 100.0);
  const LoadTrace trace = step_trace({{5.0, 10.0}, {600.0, 100.0}});
  EXPECT_EQ(*scheduler.decide(0, trace, ClusterSnapshot{}),
            design()->ideal_combination(5.0));
  EXPECT_EQ(*scheduler.decide(20, trace, ClusterSnapshot{}),
            design()->ideal_combination(600.0));
  EXPECT_EQ(scheduler.name(), "reactive+hysteresis");
}

TEST(HysteresisScheduler, AbortedScaleDownResetsHold) {
  auto inner = std::make_shared<ReactiveScheduler>(design());
  HysteresisScheduler scheduler(inner, design(), 100.0);
  const LoadTrace trace =
      step_trace({{600.0, 10.0}, {5.0, 50.0}, {600.0, 60.0}, {5.0, 60.0}});
  const Combination big = design()->ideal_combination(600.0);
  EXPECT_EQ(*scheduler.decide(0, trace, ClusterSnapshot{}), big);
  EXPECT_EQ(*scheduler.decide(15, trace, ClusterSnapshot{}), big);   // held
  EXPECT_EQ(*scheduler.decide(70, trace, ClusterSnapshot{}), big);   // back up
  // New scale-down attempt restarts the clock: at t=130 only 10 s elapsed.
  EXPECT_EQ(*scheduler.decide(125, trace, ClusterSnapshot{}), big);
  EXPECT_EQ(*scheduler.decide(130, trace, ClusterSnapshot{}), big);
}

TEST(HysteresisScheduler, Validation) {
  auto inner = std::make_shared<ReactiveScheduler>(design());
  EXPECT_THROW(HysteresisScheduler(nullptr, design(), 10.0),
               std::invalid_argument);
  EXPECT_THROW(HysteresisScheduler(inner, nullptr, 10.0),
               std::invalid_argument);
  EXPECT_THROW(HysteresisScheduler(inner, design(), -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bml
