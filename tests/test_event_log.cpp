// Tests for sim/event_log and its simulator integration.
#include "sim/event_log.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

TEST(EventLog, RecordsAndCounts) {
  EventLog log(10);
  log.record(5, EventKind::kReconfigurationStart, "1xparavance");
  log.record(6, EventKind::kQosViolation, "12.5");
  log.record(7, EventKind::kQosViolation, "3.0");
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.count(EventKind::kQosViolation), 2u);
  EXPECT_EQ(log.count(EventKind::kBootComplete), 0u);
  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events().front().time, 5);
}

TEST(EventLog, RingDropsOldestButKeepsCounters) {
  EventLog log(2);
  for (int i = 0; i < 5; ++i)
    log.record(i, EventKind::kBootComplete, std::to_string(i));
  EXPECT_EQ(log.total(), 5u);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events().front().detail, "3");
  EXPECT_EQ(log.events().back().detail, "4");
}

TEST(EventLog, CsvFormat) {
  EventLog log(4);
  log.record(1, EventKind::kReconfigurationComplete, "199 s");
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("time,kind,detail"), std::string::npos);
  EXPECT_NE(csv.find("1,reconfiguration-complete,199 s"), std::string::npos);
}

TEST(EventLog, Validation) {
  EXPECT_THROW(EventLog(0), std::invalid_argument);
}

TEST(EventLog, SimulatorIntegrationRecordsReconfigurations) {
  auto design = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  SimulatorOptions options;
  options.record_events = true;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const LoadTrace trace = step_trace({{5.0, 600.0}, {600.0, 600.0}});
  const SimulationResult r = simulator.run(scheduler, trace);

  EXPECT_EQ(r.events.count(EventKind::kReconfigurationStart),
            static_cast<std::size_t>(r.reconfigurations));
  EXPECT_EQ(r.events.count(EventKind::kReconfigurationComplete),
            static_cast<std::size_t>(r.reconfigurations));
  EXPECT_EQ(r.events.count(EventKind::kQosViolation), 0u);
  EXPECT_GT(r.events.count(EventKind::kBootComplete), 0u);
  // The reconfiguration-start event carries the target combination.
  bool found_target = false;
  for (const SimEvent& e : r.events.events())
    if (e.kind == EventKind::kReconfigurationStart &&
        e.detail.find("paravance") != std::string::npos)
      found_target = true;
  EXPECT_TRUE(found_target);
}

TEST(EventLog, DisabledByDefault) {
  auto design = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  const Simulator simulator(design->candidates());
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r =
      simulator.run(scheduler, constant_trace(100.0, 100.0));
  EXPECT_EQ(r.events.total(), 0u);
}

TEST(EventKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(EventKind::kQosViolation), "qos-violation");
  EXPECT_STREQ(to_string(EventKind::kShutdownComplete), "shutdown-complete");
}

}  // namespace
}  // namespace bml
