// Tests for experiments/: every table/figure runner reproduces the paper's
// qualitative claims on reduced-size configurations.
#include "experiments/experiments.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(Table1, ProfilesAllFiveMachinesWithinNoise) {
  const Table1Result r = run_table1(/*seed=*/7);
  ASSERT_EQ(r.rows.size(), 5u);
  for (const ProfiledArch& row : r.rows) {
    EXPECT_EQ(row.measured.name(), row.truth.name());
    EXPECT_LT(row.worst_relative_error(), 0.10)
        << row.truth.name() << " profiled too far from Table I";
    // Transition durations are deterministic in the testbed.
    EXPECT_DOUBLE_EQ(row.measured.on_cost().duration,
                     row.truth.on_cost().duration);
    EXPECT_DOUBLE_EQ(row.measured.off_cost().duration,
                     row.truth.off_cost().duration);
  }
}

TEST(Fig1, RemovesDAndKeepsABC) {
  const Fig1Result r = run_fig1();
  ASSERT_EQ(r.input.size(), 4u);
  ASSERT_EQ(r.kept.size(), 3u);
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0].name, "arch-D");
  ASSERT_EQ(r.homogeneous_series.size(), 4u);
  // Series are sampled on the same grid, non-decreasing in rate.
  for (const auto& series : r.homogeneous_series) {
    ASSERT_EQ(series.size(),
              static_cast<std::size_t>(r.max_rate / r.rate_step) + 1);
    for (std::size_t i = 1; i < series.size(); ++i)
      EXPECT_GE(series[i], series[i - 1] - 1e-9);
  }
}

TEST(Fig2, Step4RaisesBigThreshold) {
  const Fig2Result r = run_fig2();
  ASSERT_EQ(r.names.size(), 3u);
  EXPECT_EQ(r.names[0], "arch-A");
  // Step 3's Big threshold sits at Medium's max perf (401); Step 4 raises it.
  EXPECT_NEAR(r.step3[0], 401.0, 1.0);
  EXPECT_GT(r.step4[0], r.step3[0]);
  // Little's threshold is 1 in both steps.
  EXPECT_DOUBLE_EQ(r.step3[2], 1.0);
  EXPECT_DOUBLE_EQ(r.step4[2], 1.0);
}

TEST(Fig3, FiveSeriesSpanIdleToPeak) {
  const Fig3Result r = run_fig3(11);
  ASSERT_EQ(r.series.size(), 5u);
  for (const Fig3Series& s : r.series) {
    ASSERT_EQ(s.rates.size(), 11u);
    EXPECT_DOUBLE_EQ(s.rates.front(), 0.0);
    const auto profile = find_profile(real_catalog(), s.name).value();
    EXPECT_DOUBLE_EQ(s.rates.back(), profile.max_perf());
    EXPECT_DOUBLE_EQ(s.powers.front(), profile.idle_power());
    EXPECT_DOUBLE_EQ(s.powers.back(), profile.max_power());
  }
  EXPECT_THROW((void)run_fig3(1), std::invalid_argument);
}

TEST(Fig4, BmlCurveDominatesBigOnlyAndTracksLinear) {
  const Fig4Result r = run_fig4(7.0);
  ASSERT_FALSE(r.rates.empty());
  double worst_gap_to_linear = 0.0;
  for (std::size_t i = 0; i < r.rates.size(); ++i) {
    if (r.rates[i] >= 1.0) {
      EXPECT_LE(r.bml[i], r.big_only[i] + 1e-9) << "rate " << r.rates[i];
    }
    worst_gap_to_linear =
        std::max(worst_gap_to_linear, r.bml[i] - r.linear[i]);
  }
  // "It represents an achievable goal, and how our solution approaches it":
  // the combination bulges above the straight line just below Big's
  // threshold (many Mediums vs the hypothetical machine), as in the
  // paper's figure, but stays within ~a quarter of Big's peak power.
  EXPECT_LT(worst_gap_to_linear, 0.25 * r.design.big().max_power());
}

TEST(Fig5, QuickRunReproducesOrderingAndQos) {
  Fig5Options options;
  options.trace.days = 3;
  options.trace.tournament_start_day = 1;
  options.trace.tournament_end_day = 2;
  options.trace.peak = 4000.0;
  options.trace.seed = 23;
  const Fig5Result r = run_fig5(options);

  ASSERT_EQ(r.lower_bound.size(), 3u);
  ASSERT_EQ(r.bml.size(), 3u);
  double per_day_total = 0.0, global_total = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    // LowerBound <= BML <= UpperBound PerDay per day.
    EXPECT_LE(r.lower_bound[d], r.bml[d] + 1e-6) << "day " << d;
    EXPECT_LE(r.bml[d], r.per_day_bound[d]) << "day " << d;
    per_day_total += r.per_day_bound[d];
    global_total += r.global_bound[d];
  }
  // PerDay may briefly exceed Global on a scale-up morning (it pays boot
  // energy that the constant fleet never does); over the whole trace the
  // coarse planning still wins.
  EXPECT_LE(per_day_total, global_total + 1e-6);
  // BML satisfies QoS (the paper's headline constraint).
  EXPECT_DOUBLE_EQ(r.bml_sim.qos.served_fraction(), 1.0);
  EXPECT_EQ(r.bml_sim.qos.violation_seconds, 0);
  // Overheads are positive and in a sane band.
  EXPECT_GT(r.mean_overhead_pct(), 0.0);
  EXPECT_LT(r.mean_overhead_pct(), 200.0);
  EXPECT_LE(r.min_overhead_pct(), r.mean_overhead_pct());
  EXPECT_GE(r.max_overhead_pct(), r.mean_overhead_pct());
}

TEST(Colocation, SharedPoolAttributesBothAppsAndSavesEnergy) {
  const ColocationResult r = run_colocation(1, 7);
  ASSERT_EQ(r.colocated.apps.size(), 2u);
  ASSERT_EQ(r.isolated.size(), 2u);
  EXPECT_EQ(r.colocated.apps[0].name, "frontend");
  EXPECT_EQ(r.colocated.apps[1].name, "batch");
  EXPECT_GT(r.colocated.apps[0].compute_energy, 0.0);
  EXPECT_GT(r.colocated.apps[1].compute_energy, 0.0);
  EXPECT_GT(r.colocated_total(), 0.0);
  EXPECT_GT(r.isolated_total(), 0.0);
  // Per-app shares sum back to the shared cluster's totals.
  EXPECT_NEAR(
      r.colocated.apps[0].compute_energy + r.colocated.apps[1].compute_energy,
      r.colocated.total.compute_energy,
      1e-9 * r.colocated.total.compute_energy);
  // Pooling the fleet cannot do much worse than dedicated clusters (the
  // dispatcher fills the shared machines' cheapest slopes with both apps'
  // traffic); allow a small tolerance for reconfiguration timing.
  EXPECT_LT(r.colocated_total(), 1.10 * r.isolated_total());
}

TEST(SloRackStrikes, FeedbackRecoversServiceAtQuantifiedEnergyCost) {
  const SloRackStrikeResult r = run_slo_rackstrikes(1, 7);
  ASSERT_EQ(r.aware.apps.size(), 2u);
  ASSERT_EQ(r.baseline.apps.size(), 2u);
  // Rack strikes landed, and the aware run actually provisioned spares.
  EXPECT_GT(r.baseline.total.group_strikes, 0);
  EXPECT_GT(r.aware.total.spare_seconds, 0);
  EXPECT_GT(r.aware.total.spare_energy, 0.0);
  EXPECT_EQ(r.baseline.total.spare_seconds, 0);
  EXPECT_DOUBLE_EQ(r.baseline.total.spare_energy, 0.0);
  // The feedback loop bridges replacement-boot windows: the SLO app loses
  // fewer seconds of service than under the non-aware coordinator.
  EXPECT_GT(r.violation_recovered_s(), 0);
  EXPECT_GE(r.aware.apps[0].qos_stats.served_fraction(),
            r.baseline.apps[0].qos_stats.served_fraction());
  // ...at a real, quantified energy cost (the spares idle).
  EXPECT_GT(r.energy_cost(), 0.0);
  // The spare overlay is attribution, not double counting.
  EXPECT_LT(r.aware.total.spare_energy, r.aware.total.compute_energy);
  EXPECT_EQ(r.aware.apps[0].spare_seconds, r.aware.total.spare_seconds);
  // Determinism: same seed, same deltas.
  const SloRackStrikeResult again = run_slo_rackstrikes(1, 7);
  EXPECT_EQ(again.violation_recovered_s(), r.violation_recovered_s());
  EXPECT_EQ(again.energy_cost(), r.energy_cost());
}

TEST(DegradedPriority, LeanFleetTradesContentionForBootStorms) {
  const DegradedPriorityResult r = run_degraded_priority(1, 7);
  ASSERT_EQ(r.aware.apps.size(), 2u);
  ASSERT_EQ(r.baseline.apps.size(), 2u);
  // Identical strike timeline in both runs.
  EXPECT_GT(r.aware.total.group_strikes, 0);
  EXPECT_EQ(r.aware.total.group_strikes, r.baseline.total.group_strikes);
  // Strikes preempted low-priority capacity, and only the batch service
  // (priority 0) bears the preempted seconds.
  EXPECT_GT(r.aware.total.preemptions, 0);
  EXPECT_EQ(r.baseline.total.preemptions, 0);
  EXPECT_GT(r.aware.apps[1].preempted_seconds, 0);
  EXPECT_EQ(r.aware.apps[0].preempted_seconds, 0);
  // The lean fleet runs overloaded while repairs queue; the degrade model
  // accounts every contended second and the capacity the penalty burned.
  EXPECT_GT(r.aware.total.overload_seconds, 0);
  EXPECT_GT(r.aware.total.penalty_lost_capacity, 0.0);
  EXPECT_EQ(r.baseline.total.overload_seconds, 0);
  EXPECT_DOUBLE_EQ(r.baseline.total.penalty_lost_capacity, 0.0);
  // Per-app penalty shares are an exact decomposition of the cluster loss.
  EXPECT_NEAR(r.aware.apps[0].penalty_lost_capacity +
                  r.aware.apps[1].penalty_lost_capacity,
              r.aware.total.penalty_lost_capacity,
              1e-9 * r.aware.total.penalty_lost_capacity);
  // The frugal direction of the robustness trade: replacement boot-storms
  // skipped (energy saved) while spill-over absorption holds the web
  // app's service nearly flat.
  EXPECT_GT(r.energy_saved(), 0.0);
  EXPECT_GT(r.served_delta(), -0.002);
  // Determinism: same seed, same deltas.
  const DegradedPriorityResult again = run_degraded_priority(1, 7);
  EXPECT_EQ(again.energy_saved(), r.energy_saved());
  EXPECT_EQ(again.aware.total.preemptions, r.aware.total.preemptions);
  EXPECT_EQ(again.aware.total.overload_seconds,
            r.aware.total.overload_seconds);
}

TEST(TenantChurn, AwareCoordinatorBeatsStaticOverProvisioning) {
  const TenantChurnResult r = run_tenant_churn(1, 7);
  ASSERT_EQ(r.aware.apps.size(), 2u);
  ASSERT_EQ(r.baseline.apps.size(), 2u);
  // The aware run logs the visitor's residency; the static run has no
  // lifecycle at all.
  EXPECT_EQ(r.aware.total.arrivals, 1);
  EXPECT_EQ(r.aware.total.departures, 1);
  EXPECT_EQ(r.baseline.total.arrivals, 0);
  EXPECT_EQ(r.baseline.total.departures, 0);
  // Attribution integrates over the residency window only.
  EXPECT_EQ(r.aware.apps[1].active_seconds, r.depart - r.arrive);
  EXPECT_EQ(r.aware.apps[0].active_seconds, 86'400);
  EXPECT_EQ(r.baseline.apps[1].active_seconds, 86'400);
  // Draining the absent tenant's machines beats holding them all day,
  // without degrading the always-on frontend.
  EXPECT_GT(r.energy_saved(), 0.0);
  EXPECT_GT(r.frontend_served_delta(), -0.002);
  EXPECT_LT(r.aware.apps[1].compute_energy, r.baseline.apps[1].compute_energy);
  // Determinism: same seed, same deltas.
  const TenantChurnResult again = run_tenant_churn(1, 7);
  EXPECT_EQ(again.energy_saved(), r.energy_saved());
  EXPECT_EQ(again.aware.total.reconfigurations,
            r.aware.total.reconfigurations);
}

TEST(Fig5, StaticFleetNeverReconfigures) {
  Fig5Options options;
  options.trace.days = 1;
  options.trace.peak = 3000.0;
  const Fig5Result r = run_fig5(options);
  EXPECT_EQ(r.global_sim.reconfigurations, 0);
  EXPECT_DOUBLE_EQ(r.global_sim.reconfiguration_energy, 0.0);
  // Global bound: 3 bigs always on for a 3000 req/s peak.
  EXPECT_GE(r.global_bound[0], 3 * 69.9 * kSecondsPerDay * 0.99);
}

}  // namespace
}  // namespace bml
