// Tests for util/parallel.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bml {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroItemsIsNoOp) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 42)
                                throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ResultsMatchSequential) {
  std::vector<double> parallel_out(500), serial_out(500);
  auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.000001 + 0.5;
    return x;
  };
  parallel_for(parallel_out.size(),
               [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < serial_out.size(); ++i) serial_out[i] = work(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelInvoke, RunsEveryTask) {
  std::atomic<int> sum{0};
  parallel_invoke({[&] { sum += 1; }, [&] { sum += 10; }, [&] { sum += 100; }});
  EXPECT_EQ(sum.load(), 111);
}

TEST(DefaultParallelism, AtLeastOne) {
  EXPECT_GE(default_parallelism(), 1u);
}

}  // namespace
}  // namespace bml
