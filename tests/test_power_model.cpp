// Tests for power/power_model: linear and piecewise curves, validation.
#include "power/power_model.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(LinearPowerModel, EndpointsAndSlope) {
  // Paravance's Table I numbers.
  const LinearPowerModel m(69.9, 200.5, 1331.0);
  EXPECT_DOUBLE_EQ(m.idle_power(), 69.9);
  EXPECT_DOUBLE_EQ(m.max_power(), 200.5);
  EXPECT_DOUBLE_EQ(m.max_perf(), 1331.0);
  EXPECT_DOUBLE_EQ(m.power_at(0.0), 69.9);
  EXPECT_DOUBLE_EQ(m.power_at(1331.0), 200.5);
  EXPECT_NEAR(m.slope(), (200.5 - 69.9) / 1331.0, 1e-12);
  EXPECT_NEAR(m.power_at(665.5), (69.9 + 200.5) / 2.0, 1e-9);
}

TEST(LinearPowerModel, ClampsOutOfRangeRates) {
  const LinearPowerModel m(10.0, 20.0, 100.0);
  EXPECT_DOUBLE_EQ(m.power_at(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(m.power_at(1000.0), 20.0);
}

TEST(LinearPowerModel, RejectsNonPhysicalInputs) {
  EXPECT_THROW(LinearPowerModel(10.0, 20.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearPowerModel(10.0, 20.0, -1.0), std::invalid_argument);
  EXPECT_THROW(LinearPowerModel(-1.0, 20.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LinearPowerModel(30.0, 20.0, 10.0), std::invalid_argument);
}

TEST(LinearPowerModel, CloneIsIndependentEqual) {
  const LinearPowerModel m(5.0, 10.0, 50.0);
  const auto c = m.clone();
  EXPECT_DOUBLE_EQ(c->power_at(25.0), m.power_at(25.0));
  EXPECT_DOUBLE_EQ(c->idle_power(), 5.0);
}

TEST(PiecewiseLinearPowerModel, InterpolatesBetweenSamples) {
  const PiecewiseLinearPowerModel m(
      {{0.0, 10.0}, {50.0, 30.0}, {100.0, 35.0}});
  EXPECT_DOUBLE_EQ(m.idle_power(), 10.0);
  EXPECT_DOUBLE_EQ(m.max_perf(), 100.0);
  EXPECT_DOUBLE_EQ(m.max_power(), 35.0);
  EXPECT_DOUBLE_EQ(m.power_at(25.0), 20.0);
  EXPECT_DOUBLE_EQ(m.power_at(75.0), 32.5);
  EXPECT_DOUBLE_EQ(m.power_at(50.0), 30.0);  // exact sample point
}

TEST(PiecewiseLinearPowerModel, ClampsOutOfRange) {
  const PiecewiseLinearPowerModel m({{0.0, 10.0}, {100.0, 35.0}});
  EXPECT_DOUBLE_EQ(m.power_at(-1.0), 10.0);
  EXPECT_DOUBLE_EQ(m.power_at(200.0), 35.0);
}

TEST(PiecewiseLinearPowerModel, ValidatesSamples) {
  EXPECT_THROW(PiecewiseLinearPowerModel({{0.0, 10.0}}),
               std::invalid_argument);
  // Must start at the idle point.
  EXPECT_THROW(PiecewiseLinearPowerModel({{1.0, 10.0}, {2.0, 11.0}}),
               std::invalid_argument);
  // Strictly increasing rates.
  EXPECT_THROW(
      PiecewiseLinearPowerModel({{0.0, 10.0}, {5.0, 12.0}, {5.0, 13.0}}),
      std::invalid_argument);
  // Non-negative power.
  EXPECT_THROW(PiecewiseLinearPowerModel({{0.0, -1.0}, {5.0, 12.0}}),
               std::invalid_argument);
}

TEST(PiecewiseLinearPowerModel, TwoPointsMatchLinearModel) {
  const PiecewiseLinearPowerModel pw({{0.0, 69.9}, {1331.0, 200.5}});
  const LinearPowerModel lin(69.9, 200.5, 1331.0);
  for (double r = 0.0; r <= 1331.0; r += 133.1)
    EXPECT_NEAR(pw.power_at(r), lin.power_at(r), 1e-9) << "rate " << r;
}

TEST(PowerModel, MeanSlopeConsistent) {
  const LinearPowerModel m(4.0, 7.6, 33.0);
  EXPECT_NEAR(m.mean_slope(), (7.6 - 4.0) / 33.0, 1e-12);
}

// Monotone non-decreasing power over rate must hold for any valid model.
class LinearMonotonicity
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(LinearMonotonicity, PowerNonDecreasingInRate) {
  const auto [idle, peak, perf] = GetParam();
  const LinearPowerModel m(idle, peak, perf);
  double prev = m.power_at(0.0);
  for (double r = 0.0; r <= perf; r += perf / 50.0) {
    const double cur = m.power_at(r);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableOneMachines, LinearMonotonicity,
    ::testing::Values(std::make_tuple(69.9, 200.5, 1331.0),
                      std::make_tuple(95.8, 223.7, 860.0),
                      std::make_tuple(47.7, 123.8, 272.0),
                      std::make_tuple(4.0, 7.6, 33.0),
                      std::make_tuple(3.1, 3.7, 9.0)));

}  // namespace
}  // namespace bml
