// DispatchPlan must reproduce dispatch() bit-for-bit: the simulator fast
// path, the solvers and the combination table all rely on the compiled
// plan being a drop-in replacement for the reference implementation.
#include "core/dispatch_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "core/combination.hpp"

namespace bml {
namespace {

TEST(DispatchPlan, PowerMatchesDispatchBitForBit) {
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);
  const BmlDesign design = BmlDesign::build(catalog);

  for (double rate = 0.0; rate <= 5000.0; rate += 7.3) {
    Combination combo = design.ideal_combination(rate);
    combo.resize(catalog.size());
    for (double load = 0.0; load <= rate + 50.0; load += 101.7) {
      const Watts reference = dispatch(catalog, combo, load).power;
      EXPECT_EQ(plan.power_at(combo.counts(), load), reference)
          << "rate=" << rate << " load=" << load;
    }
  }
}

TEST(DispatchPlan, DispatchIntoMatchesDispatch) {
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);

  Combination combo;
  combo.resize(catalog.size());
  combo.set_count(0, 2);
  combo.set_count(catalog.size() - 1, 5);

  DispatchResult scratch;
  for (double load : {0.0, 10.0, 500.0, 2700.0, 1e6}) {
    const DispatchResult reference = dispatch(catalog, combo, load);
    plan.dispatch_into(combo.counts(), load, scratch);
    EXPECT_EQ(scratch.power, reference.power);
    EXPECT_EQ(scratch.served, reference.served);
    EXPECT_EQ(scratch.feasible, reference.feasible);
    EXPECT_EQ(scratch.load_per_arch, reference.load_per_arch);
  }
}

TEST(DispatchPlan, HandlesNarrowCountSpans) {
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);

  // A combination narrower than the catalog means zero machines of the
  // trailing architectures — dispatch() accepts that, so must the plan.
  const Combination narrow{std::vector<int>{1, 1}};
  EXPECT_EQ(plan.power_at(narrow.counts(), 100.0),
            dispatch(catalog, narrow, 100.0).power);
}

TEST(DispatchPlan, MatchesPiecewiseProfiles) {
  // A piecewise profile with a pronounced knee: the plan must fall back to
  // the cloned model for the partially loaded machine.
  const ArchitectureProfile bent(
      "bent",
      std::vector<PowerSample>{{0.0, 10.0}, {50.0, 90.0}, {100.0, 100.0}},
      TransitionCost{5.0, 50.0}, TransitionCost{2.0, 10.0});
  const ArchitectureProfile linear("lin", 200.0, 20.0, 120.0,
                                   TransitionCost{5.0, 50.0},
                                   TransitionCost{2.0, 10.0});
  const Catalog catalog{linear, bent};
  const DispatchPlan plan(catalog);
  const Combination combo{std::vector<int>{2, 3}};

  for (double load = 0.0; load <= 800.0; load += 13.7)
    EXPECT_EQ(plan.power_at(combo.counts(), load),
              dispatch(catalog, combo, load).power)
        << "load=" << load;
}

TEST(FleetPowerCurve, MatchesPowerAtWithinReassociation) {
  // The compiled fleet curve may refactor each affine piece's sum, so the
  // contract is 1e-12 relative (far inside the simulator's 1e-9), across
  // fleets, loads, and exact machine boundaries.
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);
  const BmlDesign design = BmlDesign::build(catalog);

  FleetPowerCurve curve;
  for (double rate : {0.0, 9.0, 140.0, 800.0, 2500.0, 4800.0}) {
    Combination combo = design.ideal_combination(rate);
    combo.resize(catalog.size());
    plan.compile_fleet(combo.counts(), curve);
    const auto expect_matches = [&](double load) {
      const Watts reference = plan.power_at(combo.counts(), load);
      const double tolerance = 1e-12 * std::max(1.0, std::abs(reference));
      EXPECT_NEAR(curve.power_at(load), reference, tolerance)
          << "rate=" << rate << " load=" << load;
    };
    for (double load = 0.0; load <= rate + 100.0; load += 3.7)
      expect_matches(load);
    // Exact machine boundaries of every architecture.
    for (std::size_t a = 0; a < catalog.size(); ++a)
      for (int j = 1; j <= combo.counts()[a]; ++j)
        expect_matches(j * catalog[a].max_perf());
    expect_matches(capacity(catalog, combo));
    expect_matches(capacity(catalog, combo) + 500.0);  // beyond capacity
  }
}

TEST(FleetPowerCurve, MatchesPowerAtWithPiecewiseProfiles) {
  // Non-linear (piecewise-model) architectures end the affine table; the
  // general loop must take over and agree with the plan.
  const ArchitectureProfile bent(
      "bent",
      std::vector<PowerSample>{{0.0, 10.0}, {50.0, 90.0}, {100.0, 100.0}},
      TransitionCost{5.0, 50.0}, TransitionCost{2.0, 10.0});
  const ArchitectureProfile linear("lin", 200.0, 20.0, 120.0,
                                   TransitionCost{5.0, 50.0},
                                   TransitionCost{2.0, 10.0});
  const Catalog catalog{linear, bent};
  const DispatchPlan plan(catalog);
  const Combination combo{std::vector<int>{2, 3}};
  FleetPowerCurve curve;
  plan.compile_fleet(combo.counts(), curve);
  for (double load = 0.0; load <= 800.0; load += 13.7) {
    const Watts reference = plan.power_at(combo.counts(), load);
    const double tolerance = 1e-12 * std::max(1.0, std::abs(reference));
    EXPECT_NEAR(curve.power_at(load), reference, tolerance) << load;
  }
}

TEST(FleetPowerCurve, EmptyFleetIsAllZero) {
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);
  const std::vector<int> none(catalog.size(), 0);
  FleetPowerCurve curve;
  plan.compile_fleet(none, curve);
  EXPECT_EQ(curve.power_at(0.0), 0.0);
  EXPECT_EQ(curve.power_at(1234.5), 0.0);
}

TEST(DispatchPlan, CapacityMatches) {
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);
  const Combination combo{std::vector<int>{1, 2, 0, 3, 4}};
  EXPECT_EQ(plan.capacity_of(combo.counts()), capacity(catalog, combo));
}

TEST(CombinationTablePower, FractionalRatesEvaluateTheActualRate) {
  // power(rate) means "the grid combination serving exactly rate": the
  // cache only short-circuits on-grid queries, so off-grid rates (the
  // lower-bound and ablation paths query fractional trace loads) must
  // still match the reference dispatch at the queried rate.
  const BmlDesign design = BmlDesign::build(real_catalog());
  const CombinationTable* table = design.table();
  ASSERT_NE(table, nullptr);
  for (double rate : {0.5, 664.5, 1330.9, 2500.25, 4999.999}) {
    Combination combo = table->combination(rate);
    combo.resize(design.candidates().size());
    EXPECT_EQ(table->power(rate),
              dispatch(design.candidates(), combo, rate).power)
        << "rate=" << rate;
    EXPECT_LT(table->power(rate), table->power(std::ceil(rate)));
  }
  // On-grid queries hit the cache and agree with the reference too.
  EXPECT_EQ(table->power(665.0),
            dispatch(design.candidates(), table->combination(665.0), 665.0)
                .power);
}

TEST(DispatchPlan, RejectsBadInput) {
  const Catalog catalog = real_catalog();
  const DispatchPlan plan(catalog);
  const std::vector<int> too_wide(catalog.size() + 1, 1);
  const std::vector<int> ok(catalog.size(), 1);
  EXPECT_THROW((void)plan.power_at(too_wide, 1.0), std::invalid_argument);
  EXPECT_THROW((void)plan.power_at(ok, -1.0), std::invalid_argument);
  EXPECT_THROW(DispatchPlan{Catalog{}}, std::invalid_argument);
}

}  // namespace
}  // namespace bml
