// Scenario fuzzer: randomised `.scn` specs over the cartesian space of
// traces x schedulers x predictors x fault channels x SLO targets x
// degrade models x priority classes x tenant lifecycles (arrive/depart
// intervals and stochastic churn) x app counts, each replayed through
// both execution strategies. The property
// under test is the engine-wide equivalence contract: integer counters
// bit-exact, floating-point integrals within 1e-9, for *any* valid spec —
// not just the hand-picked ones in test_simulator_fastpath.cpp. The run
// is seeded and bounded (fixed iteration count, short traces) so it is a
// deterministic part of the normal test suite, not a soak job; bump
// kIterations locally to fuzz harder. Half the specs are biased into
// fleet mode (8-32 effective apps via `replicas`, fault domains shared
// across apps) so the k >= 4 fused-merge + consult-cache fast path gets
// fuzzed as hard as the small-k byte-identical one.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario_spec.hpp"
#include "scenario/sweep.hpp"
#include "util/rng.hpp"

namespace bml {
namespace {

constexpr int kIterations = 40;

template <typename T>
const T& pick(Rng& rng, const std::vector<T>& options) {
  return options[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
}

/// One random `[app]` section (or the top-level workload block when
/// `top_level`). Trace durations stay short: the per-second reference
/// loop replays every generated spec too.
std::string random_workload(Rng& rng, bool top_level, int shared_domains = 0,
                            bool allow_priority = false) {
  std::ostringstream os;
  const int duration = static_cast<int>(rng.uniform_int(1800, 7200));
  const std::string trace =
      pick(rng, std::vector<std::string>{"constant", "step", "flash_crowd"});
  os << "trace = " << trace << '\n';
  if (trace == "constant") {
    os << "trace.rate = " << rng.uniform_int(100, 2500) << '\n';
    os << "trace.duration = " << duration << '\n';
  } else if (trace == "step") {
    const int segments = static_cast<int>(rng.uniform_int(2, 5));
    os << "trace.segments = ";
    for (int s = 0; s < segments; ++s)
      os << (s ? ";" : "") << rng.uniform_int(50, 2600) << ':'
         << duration / segments;
    os << '\n';
  } else {
    const int base = static_cast<int>(rng.uniform_int(50, 600));
    os << "trace.base = " << base << '\n';
    os << "trace.burst_peak = " << base + rng.uniform_int(400, 2000) << '\n';
    os << "trace.duration = " << duration << '\n';
    os << "trace.burst_start = " << rng.uniform_int(0, duration / 2) << '\n';
  }
  os << "scheduler = "
     << pick(rng, std::vector<std::string>{"bml", "reactive", "hysteresis"})
     << '\n';
  os << "predictor = "
     << pick(rng, std::vector<std::string>{"oracle-max", "last-value",
                                           "moving-max"})
     << '\n';
  os << "qos = " << (rng.chance(0.5) ? "tolerant" : "critical") << '\n';
  if (!top_level) {
    if (shared_domains > 0) {
      // Fleet sections almost always join one of a few shared domains,
      // so correlated strikes and crew-limited repairs span many apps
      // in one event.
      if (rng.chance(0.8))
        os << "fault_domain = dom" << rng.uniform_int(0, shared_domains - 1)
           << '\n';
    } else if (rng.chance(0.5)) {
      os << "fault_domain = pool\n";
    }
    if (rng.chance(0.5)) {
      os << "slo.availability = " << (rng.chance(0.5) ? "0.999" : "0.99")
         << '\n';
      os << "slo.spare = 0." << rng.uniform_int(2, 7) << "5\n";
    }
    // Priority classes mix ranked and default-class sections, so specs
    // cover all-equal (byte-identical to priority-unaware), two-class,
    // and many-class preemption orders. Single-[app] specs skip the key:
    // the sweep layer rejects a class that cannot rank anything.
    if (allow_priority && rng.chance(0.5))
      os << "priority = " << rng.uniform_int(0, 3) << '\n';
    // Tenant lifecycle: some sections arrive late and/or depart early, so
    // churn events cut fast-path spans in every regime the fuzzer visits.
    if (rng.chance(0.3))
      os << "arrive = " << rng.uniform_int(1, duration / 2) << '\n';
    if (rng.chance(0.3))
      os << "depart = " << rng.uniform_int(duration / 2 + 1, duration) << '\n';
  }
  return os.str();
}

/// Top-level stochastic churn block: seed-deterministic clone arrivals on
/// top of the declared sections, exercised in both the small-k and the
/// fleet regime.
std::string random_churn(Rng& rng, int sections) {
  std::ostringstream os;
  os << "churn.interarrival = " << rng.uniform_int(600, 2400) << '\n';
  os << "churn.lifetime = " << rng.uniform_int(600, 3600) << '\n';
  os << "churn.max = " << rng.uniform_int(1, 4) << '\n';
  if (sections > 1 && rng.chance(0.5))
    os << "churn.template = " << rng.uniform_int(0, sections - 1) << '\n';
  if (rng.chance(0.5))
    os << "churn.seed = " << rng.uniform_int(1, 1'000'000) << '\n';
  return os.str();
}

std::string random_spec_text(Rng& rng, int iteration) {
  std::ostringstream os;
  os << "name = fuzz" << iteration << '\n';
  os << "seed = " << rng.uniform_int(1, 1'000'000) << '\n';
  os << "graceful_off = " << (rng.chance(0.75) ? "true" : "false") << '\n';
  // Fault channels, independently togglable so the fuzzer covers machine
  // strikes alone, rack strikes alone, both, and neither.
  if (rng.chance(0.6)) {
    os << "faults.mtbf = " << rng.uniform_int(900, 3600) << '\n';
    os << "faults.mttr = " << rng.uniform_int(120, 900) << '\n';
  }
  if (rng.chance(0.6)) {
    os << "faults.groups = " << rng.uniform_int(1, 3) << '\n';
    os << "faults.group_mtbf = " << rng.uniform_int(1800, 7200) << '\n';
    os << "faults.group_mttr = " << rng.uniform_int(300, 1500) << '\n';
  }
  if (rng.chance(0.5)) os << "faults.crews = " << rng.uniform_int(1, 2) << '\n';
  if (rng.chance(0.3))
    os << "faults.boot_failure_prob = 0." << rng.uniform_int(1, 3) << '\n';
  os << "faults.seed = " << rng.uniform_int(1, 1'000'000) << '\n';
  os << "slo.window = " << rng.uniform_int(1800, 7200) << '\n';
  // Degraded-mode serving, togglable independently of faults so the
  // fuzzer covers overload crossings driven by demand spikes alone as
  // well as by strikes; penalty spans the no-loss and total-loss edges.
  if (rng.chance(0.5)) {
    os << "degrade.overload_factor = 0." << rng.uniform_int(1, 9) << '\n';
    os << "degrade.penalty = " << pick(rng, std::vector<std::string>{
                                                "0", "0.25", "0.5", "1"})
       << '\n';
  }
  // Half the specs stay in the small-k regime (<= 3 apps) whose fast
  // path the byte-identity contract pins; the other half are stamped
  // into fleet mode (8-32 effective apps via `replicas`, k >= 4) where
  // the fused k-way merge and the consult cache engage — the regime
  // where the fast path diverges most from the reference loop.
  if (rng.chance(0.5)) {
    const int sections = static_cast<int>(rng.uniform_int(4, 8));
    const int domains = static_cast<int>(rng.uniform_int(2, 3));
    if (rng.chance(0.5)) {
      os << "coordinator = partitioned\n";
      os << "coordinator.budget = design-max\n";
    }
    if (rng.chance(0.4)) os << random_churn(rng, sections);
    for (int a = 0; a < sections; ++a) {
      os << "[app]\nname = app" << a << '\n';
      os << "replicas = " << rng.uniform_int(2, 4) << '\n';
      os << random_workload(rng, /*top_level=*/false, domains,
                            /*allow_priority=*/true);
    }
    return os.str();
  }
  const int apps = static_cast<int>(rng.uniform_int(0, 3));
  if (apps == 0) {
    if (rng.chance(0.3)) os << random_churn(rng, 1);
    os << random_workload(rng, /*top_level=*/true);
    if (rng.chance(0.4)) os << "slo.availability = 0.999\n";
  } else {
    if (rng.chance(0.4)) {
      os << "coordinator = partitioned\n";
      os << "coordinator.budget = design-max\n";
    }
    if (rng.chance(0.4)) os << random_churn(rng, apps);
    for (int a = 0; a < apps; ++a) {
      os << "[app]\nname = app" << a << '\n';
      os << random_workload(rng, /*top_level=*/false, /*shared_domains=*/0,
                            /*allow_priority=*/apps >= 2);
    }
  }
  return os.str();
}

void expect_close(double fast, double reference, const char* what) {
  const double tolerance = 1e-9 * std::max(1.0, std::abs(reference));
  EXPECT_NEAR(fast, reference, tolerance) << what;
}

TEST(FuzzScenarios, EveryRandomSpecHoldsTheEquivalenceContract) {
  Rng rng(20260807);
  for (int i = 0; i < kIterations; ++i) {
    const std::string text = random_spec_text(rng, i);
    SCOPED_TRACE("spec:\n" + text);
    ScenarioSpec spec = parse_scenario(text);
    spec.event_driven = true;
    const ScenarioResult fast = run_scenario(spec);
    spec.event_driven = false;
    const ScenarioResult reference = run_scenario(spec);

    EXPECT_EQ(fast.sim.reconfigurations, reference.sim.reconfigurations);
    EXPECT_EQ(fast.sim.reconfiguring_seconds,
              reference.sim.reconfiguring_seconds);
    EXPECT_EQ(fast.sim.peak_machines, reference.sim.peak_machines);
    EXPECT_EQ(fast.sim.machine_failures, reference.sim.machine_failures);
    EXPECT_EQ(fast.sim.unavailable_seconds,
              reference.sim.unavailable_seconds);
    EXPECT_EQ(fast.sim.group_strikes, reference.sim.group_strikes);
    EXPECT_EQ(fast.sim.spare_seconds, reference.sim.spare_seconds);
    EXPECT_EQ(fast.sim.overload_seconds, reference.sim.overload_seconds);
    EXPECT_EQ(fast.sim.preemptions, reference.sim.preemptions);
    EXPECT_EQ(fast.sim.arrivals, reference.sim.arrivals);
    EXPECT_EQ(fast.sim.departures, reference.sim.departures);
    EXPECT_EQ(fast.sim.qos.total_seconds, reference.sim.qos.total_seconds);
    EXPECT_EQ(fast.sim.qos.violation_seconds,
              reference.sim.qos.violation_seconds);
    expect_close(fast.sim.compute_energy, reference.sim.compute_energy,
                 "compute_energy");
    expect_close(fast.sim.reconfiguration_energy,
                 reference.sim.reconfiguration_energy,
                 "reconfiguration_energy");
    expect_close(fast.sim.lost_capacity, reference.sim.lost_capacity,
                 "lost_capacity");
    expect_close(fast.sim.spare_energy, reference.sim.spare_energy,
                 "spare_energy");
    expect_close(fast.sim.penalty_lost_capacity,
                 reference.sim.penalty_lost_capacity,
                 "penalty_lost_capacity");
    expect_close(fast.sim.qos.unserved_requests,
                 reference.sim.qos.unserved_requests, "unserved_requests");

    ASSERT_EQ(fast.apps.size(), reference.apps.size());
    for (std::size_t a = 0; a < reference.apps.size(); ++a) {
      EXPECT_EQ(fast.apps[a].failures, reference.apps[a].failures);
      EXPECT_EQ(fast.apps[a].unavailable_seconds,
                reference.apps[a].unavailable_seconds);
      EXPECT_EQ(fast.apps[a].spare_seconds, reference.apps[a].spare_seconds);
      EXPECT_EQ(fast.apps[a].overload_seconds,
                reference.apps[a].overload_seconds);
      EXPECT_EQ(fast.apps[a].domain_overload_seconds,
                reference.apps[a].domain_overload_seconds);
      EXPECT_EQ(fast.apps[a].preempted_seconds,
                reference.apps[a].preempted_seconds);
      EXPECT_EQ(fast.apps[a].active_seconds, reference.apps[a].active_seconds);
      EXPECT_EQ(fast.apps[a].qos_stats.violation_seconds,
                reference.apps[a].qos_stats.violation_seconds);
      expect_close(fast.apps[a].compute_energy,
                   reference.apps[a].compute_energy, "app compute_energy");
      expect_close(fast.apps[a].spare_energy, reference.apps[a].spare_energy,
                   "app spare_energy");
      expect_close(fast.apps[a].lost_capacity,
                   reference.apps[a].lost_capacity, "app lost_capacity");
      expect_close(fast.apps[a].penalty_lost_capacity,
                   reference.apps[a].penalty_lost_capacity,
                   "app penalty_lost_capacity");
      expect_close(fast.apps[a].domain_penalty_lost,
                   reference.apps[a].domain_penalty_lost,
                   "app domain_penalty_lost");
    }
  }
}

}  // namespace
}  // namespace bml
