// Tests for sim/qos.
#include "sim/qos.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bml {
namespace {

TEST(HeadroomFactor, ClassValues) {
  EXPECT_GT(headroom_factor(QosClass::kCritical), 1.0);
  EXPECT_DOUBLE_EQ(headroom_factor(QosClass::kTolerant), 1.0);
}

TEST(QosTracker, NoViolationsWhenCapacityCovers) {
  QosTracker tracker;
  for (int i = 0; i < 10; ++i) tracker.record(50.0, 100.0);
  const QosStats& s = tracker.stats();
  EXPECT_EQ(s.violation_seconds, 0);
  EXPECT_DOUBLE_EQ(s.unserved_requests, 0.0);
  EXPECT_DOUBLE_EQ(s.served_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
  EXPECT_EQ(s.total_seconds, 10);
  EXPECT_DOUBLE_EQ(s.offered_requests, 500.0);
}

TEST(QosTracker, AccountsShortfalls) {
  QosTracker tracker;
  tracker.record(100.0, 60.0);  // 40 dropped
  tracker.record(100.0, 100.0);
  tracker.record(30.0, 0.0);    // all dropped
  const QosStats& s = tracker.stats();
  EXPECT_EQ(s.violation_seconds, 2);
  EXPECT_DOUBLE_EQ(s.unserved_requests, 70.0);
  EXPECT_DOUBLE_EQ(s.worst_shortfall, 40.0);
  EXPECT_NEAR(s.served_fraction(), 1.0 - 70.0 / 230.0, 1e-12);
  EXPECT_NEAR(s.availability(), 1.0 / 3.0, 1e-12);
}

TEST(QosTracker, EmptyStatsAreClean) {
  const QosStats s;
  EXPECT_DOUBLE_EQ(s.served_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
}

TEST(QosTracker, RejectsNegativeInputs) {
  QosTracker tracker;
  EXPECT_THROW((void)tracker.record(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW((void)tracker.record(1.0, -5.0), std::invalid_argument);
}

TEST(QosTracker, RecordRunsMatchesPerRunRecordSpan) {
  const std::vector<LoadRun> runs{
      {500.0, 120}, {900.0, 37}, {0.0, 60}, {810.5, 1}, {799.99, 9}};
  const ReqRate capacity = 800.0;
  QosTracker kernel;
  QosTracker reference;
  kernel.record_runs(runs, capacity);
  for (const LoadRun& run : runs)
    reference.record_span(run.load, capacity, run.seconds);

  EXPECT_EQ(kernel.stats().total_seconds, reference.stats().total_seconds);
  EXPECT_EQ(kernel.stats().violation_seconds,
            reference.stats().violation_seconds);
  EXPECT_DOUBLE_EQ(kernel.stats().worst_shortfall,
                   reference.stats().worst_shortfall);
  EXPECT_NEAR(kernel.stats().offered_requests,
              reference.stats().offered_requests, 1e-9);
  EXPECT_NEAR(kernel.stats().unserved_requests,
              reference.stats().unserved_requests, 1e-9);
}

TEST(QosTracker, RecordRunsValidatesInputs) {
  QosTracker tracker;
  EXPECT_THROW(tracker.record_runs(std::vector<LoadRun>{{-1.0, 5}}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(tracker.record_runs(std::vector<LoadRun>{{1.0, -5}}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(tracker.record_runs(std::vector<LoadRun>{{1.0, 5}}, -1.0),
               std::invalid_argument);
  // A zero-length run must not touch worst_shortfall.
  tracker.record_runs(std::vector<LoadRun>{{500.0, 0}}, 10.0);
  EXPECT_EQ(tracker.stats().worst_shortfall, 0.0);
  EXPECT_EQ(tracker.stats().total_seconds, 0);
}

TEST(QosTracker, RecordTotalsFoldsAggregates) {
  QosTracker via_totals;
  QosTracker reference;
  QosSpanTotals totals;
  const struct {
    ReqRate load;
    std::int64_t seconds;
  } runs[] = {{500.0, 100}, {900.0, 10}, {850.0, 3}};
  const ReqRate capacity = 800.0;
  for (const auto& r : runs) {
    reference.record_span(r.load, capacity, r.seconds);
    totals.seconds += r.seconds;
    totals.offered += r.load * static_cast<double>(r.seconds);
    if (r.load > capacity) {
      const double shortfall = r.load - capacity;
      totals.violation_seconds += r.seconds;
      totals.unserved += shortfall * static_cast<double>(r.seconds);
      if (shortfall > totals.worst_shortfall)
        totals.worst_shortfall = shortfall;
    }
  }
  via_totals.record_totals(totals);
  EXPECT_EQ(via_totals.stats().total_seconds,
            reference.stats().total_seconds);
  EXPECT_EQ(via_totals.stats().violation_seconds,
            reference.stats().violation_seconds);
  EXPECT_DOUBLE_EQ(via_totals.stats().worst_shortfall,
                   reference.stats().worst_shortfall);
  EXPECT_NEAR(via_totals.stats().offered_requests,
              reference.stats().offered_requests, 1e-9);
  EXPECT_NEAR(via_totals.stats().unserved_requests,
              reference.stats().unserved_requests, 1e-9);
}

TEST(QosTracker, SpanAccountingMatchesPerSecondAcrossCapacityBoundary) {
  // The event-driven simulator batches whole violation (and recovery)
  // phases into single record_span calls; the sequence below crosses the
  // load > capacity boundary in both directions. Integer counters must
  // match the per-second tracker exactly, the integrals bit-for-bit here
  // (identical multiplication-free-vs-repeated-add is not required by the
  // contract, but each span is one multiply so totals stay within 1e-9).
  const struct {
    ReqRate load, capacity;
    std::int64_t seconds;
  } phases[] = {
      {500.0, 800.0, 120},  // healthy
      {900.0, 800.0, 37},   // violation span (boot in flight)
      {900.0, 1200.0, 60},  // boot completed mid-demand: healthy again
      {50.0, 0.0, 5},       // everything off: total shortfall
  };

  QosTracker span_tracker;
  QosTracker per_second;
  for (const auto& p : phases) {
    span_tracker.record_span(p.load, p.capacity, p.seconds);
    for (std::int64_t s = 0; s < p.seconds; ++s)
      per_second.record(p.load, p.capacity);
  }

  const QosStats& a = span_tracker.stats();
  const QosStats& b = per_second.stats();
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.violation_seconds, b.violation_seconds);
  EXPECT_EQ(a.violation_seconds, 42);
  EXPECT_DOUBLE_EQ(a.worst_shortfall, b.worst_shortfall);
  EXPECT_NEAR(a.unserved_requests, b.unserved_requests,
              1e-9 * b.unserved_requests);
  EXPECT_NEAR(a.offered_requests, b.offered_requests,
              1e-9 * b.offered_requests);
}

}  // namespace
}  // namespace bml
