// Tests for sim/qos.
#include "sim/qos.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(HeadroomFactor, ClassValues) {
  EXPECT_GT(headroom_factor(QosClass::kCritical), 1.0);
  EXPECT_DOUBLE_EQ(headroom_factor(QosClass::kTolerant), 1.0);
}

TEST(QosTracker, NoViolationsWhenCapacityCovers) {
  QosTracker tracker;
  for (int i = 0; i < 10; ++i) tracker.record(50.0, 100.0);
  const QosStats& s = tracker.stats();
  EXPECT_EQ(s.violation_seconds, 0);
  EXPECT_DOUBLE_EQ(s.unserved_requests, 0.0);
  EXPECT_DOUBLE_EQ(s.served_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
  EXPECT_EQ(s.total_seconds, 10);
  EXPECT_DOUBLE_EQ(s.offered_requests, 500.0);
}

TEST(QosTracker, AccountsShortfalls) {
  QosTracker tracker;
  tracker.record(100.0, 60.0);  // 40 dropped
  tracker.record(100.0, 100.0);
  tracker.record(30.0, 0.0);    // all dropped
  const QosStats& s = tracker.stats();
  EXPECT_EQ(s.violation_seconds, 2);
  EXPECT_DOUBLE_EQ(s.unserved_requests, 70.0);
  EXPECT_DOUBLE_EQ(s.worst_shortfall, 40.0);
  EXPECT_NEAR(s.served_fraction(), 1.0 - 70.0 / 230.0, 1e-12);
  EXPECT_NEAR(s.availability(), 1.0 / 3.0, 1e-12);
}

TEST(QosTracker, EmptyStatsAreClean) {
  const QosStats s;
  EXPECT_DOUBLE_EQ(s.served_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.availability(), 1.0);
}

TEST(QosTracker, RejectsNegativeInputs) {
  QosTracker tracker;
  EXPECT_THROW((void)tracker.record(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW((void)tracker.record(1.0, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace bml
