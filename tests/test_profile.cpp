// Tests for arch/profile: construction, validation, copy semantics.
#include "arch/profile.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

ArchitectureProfile paravance() {
  return ArchitectureProfile("paravance", 1331.0, 69.9, 200.5,
                             TransitionCost{189.0, 21341.0},
                             TransitionCost{10.0, 657.0});
}

TEST(TransitionCost, AveragePower) {
  const TransitionCost on{189.0, 21341.0};
  EXPECT_NEAR(on.average_power(), 21341.0 / 189.0, 1e-9);
  const TransitionCost instant{0.0, 0.0};
  EXPECT_DOUBLE_EQ(instant.average_power(), 0.0);
}

TEST(ArchitectureProfile, TableOneAccessors) {
  const ArchitectureProfile p = paravance();
  EXPECT_EQ(p.name(), "paravance");
  EXPECT_DOUBLE_EQ(p.max_perf(), 1331.0);
  EXPECT_DOUBLE_EQ(p.idle_power(), 69.9);
  EXPECT_DOUBLE_EQ(p.max_power(), 200.5);
  EXPECT_DOUBLE_EQ(p.on_cost().duration, 189.0);
  EXPECT_DOUBLE_EQ(p.off_cost().energy, 657.0);
  EXPECT_NEAR(p.slope(), (200.5 - 69.9) / 1331.0, 1e-12);
  EXPECT_NEAR(p.full_load_efficiency(), 200.5 / 1331.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.round_trip_energy(), 21341.0 + 657.0);
}

TEST(ArchitectureProfile, PowerCurveIsLinear) {
  const ArchitectureProfile p = paravance();
  const double mid = p.power_at(1331.0 / 2.0);
  EXPECT_NEAR(mid, (69.9 + 200.5) / 2.0, 1e-9);
}

TEST(ArchitectureProfile, PiecewiseConstruction) {
  const ArchitectureProfile p("custom",
                              {{0.0, 5.0}, {50.0, 20.0}, {100.0, 25.0}},
                              TransitionCost{1.0, 10.0},
                              TransitionCost{1.0, 5.0});
  EXPECT_DOUBLE_EQ(p.max_perf(), 100.0);
  EXPECT_DOUBLE_EQ(p.idle_power(), 5.0);
  EXPECT_DOUBLE_EQ(p.power_at(25.0), 12.5);
}

TEST(ArchitectureProfile, Validation) {
  EXPECT_THROW(ArchitectureProfile("", 10.0, 1.0, 2.0, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(ArchitectureProfile("x", 10.0, 1.0, 2.0,
                                   TransitionCost{-1.0, 0.0}, {}),
               std::invalid_argument);
  EXPECT_THROW(ArchitectureProfile("x", 10.0, 1.0, 2.0, {},
                                   TransitionCost{1.0, -5.0}),
               std::invalid_argument);
  // Non-physical power curve delegated to the model.
  EXPECT_THROW(ArchitectureProfile("x", 10.0, 5.0, 2.0, {}, {}),
               std::invalid_argument);
}

TEST(ArchitectureProfile, CopyIsDeep) {
  const ArchitectureProfile original = paravance();
  ArchitectureProfile copy = original;
  EXPECT_EQ(copy, original);  // equality is by name
  EXPECT_DOUBLE_EQ(copy.power_at(100.0), original.power_at(100.0));
  ArchitectureProfile assigned("other", 1.0, 0.5, 0.9, {}, {});
  assigned = original;
  EXPECT_DOUBLE_EQ(assigned.max_perf(), 1331.0);
}

TEST(Role, ToString) {
  EXPECT_EQ(to_string(Role::kBig), "Big");
  EXPECT_EQ(to_string(Role::kMedium), "Medium");
  EXPECT_EQ(to_string(Role::kLittle), "Little");
  EXPECT_EQ(to_string(Role::kUnassigned), "Unassigned");
}

}  // namespace
}  // namespace bml
