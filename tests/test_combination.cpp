// Tests for core/combination: counts, capacity, optimal dispatch.
#include "core/combination.hpp"

#include <gtest/gtest.h>

#include "core/candidate_filter.hpp"

namespace bml {
namespace {

// Sorted real candidates: paravance, graphene, chromebook, raspberry.
Catalog candidates() { return filter_candidates(real_catalog()).candidates; }

TEST(Combination, CountManipulation) {
  Combination c;
  EXPECT_TRUE(c.empty());
  c.set_count(2, 3);
  EXPECT_EQ(c.count(2), 3);
  EXPECT_EQ(c.count(0), 0);
  c.add(2);
  c.add(0, 2);
  EXPECT_EQ(c.total_machines(), 6);
  EXPECT_THROW((void)c.set_count(0, -1), std::invalid_argument);
  EXPECT_THROW((void)c.add(0, -5), std::invalid_argument);
  EXPECT_THROW(Combination({1, -1}), std::invalid_argument);
  EXPECT_THROW((void)c.count(99), std::out_of_range);
}

TEST(Combination, ResizeOnlyGrows) {
  Combination c({1, 2});
  c.resize(4);
  EXPECT_EQ(c.counts().size(), 4u);
  EXPECT_EQ(c.count(3), 0);
  EXPECT_THROW((void)c.resize(1), std::invalid_argument);
}

TEST(Combination, EqualityIsStructural) {
  EXPECT_EQ(Combination({1, 0}), Combination({1, 0}));
  EXPECT_NE(Combination({1, 0}), Combination({0, 1}));
}

TEST(CombinationAggregates, CapacityAndPowers) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(0, 1);  // 1 paravance
  c.set_count(3, 2);  // 2 raspberries
  EXPECT_DOUBLE_EQ(capacity(cand, c), 1331.0 + 18.0);
  EXPECT_DOUBLE_EQ(idle_power(cand, c), 69.9 + 6.2);
  EXPECT_DOUBLE_EQ(peak_power(cand, c), 200.5 + 7.4);
}

TEST(Dispatch, EmptyCombinationServesNothing) {
  const Catalog cand = candidates();
  const DispatchResult r = dispatch(cand, Combination{}, 100.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 0.0);
  EXPECT_DOUBLE_EQ(r.served, 0.0);
}

TEST(Dispatch, ZeroLoadPaysIdleOnly) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(0, 2);
  const DispatchResult r = dispatch(cand, c, 0.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2 * 69.9);
}

TEST(Dispatch, LoadsLowestSlopeFirst) {
  const Catalog cand = candidates();
  // Raspberry slope (0.0667) < paravance slope (0.0981): the raspberry
  // must absorb the first requests.
  Combination c;
  c.set_count(0, 1);  // paravance
  c.set_count(3, 1);  // raspberry
  const DispatchResult r = dispatch(cand, c, 5.0);
  EXPECT_DOUBLE_EQ(r.load_per_arch[3], 5.0);
  EXPECT_DOUBLE_EQ(r.load_per_arch[0], 0.0);
  // Power: raspberry at 5 + paravance idle.
  const double expected = (3.1 + (3.7 - 3.1) / 9.0 * 5.0) + 69.9;
  EXPECT_NEAR(r.power, expected, 1e-9);
}

TEST(Dispatch, OverflowsToNextSlope) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(0, 1);
  c.set_count(3, 1);
  const DispatchResult r = dispatch(cand, c, 100.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.load_per_arch[3], 9.0);   // raspberry full
  EXPECT_DOUBLE_EQ(r.load_per_arch[0], 91.0);  // remainder on paravance
}

TEST(Dispatch, InfeasibleLoadIsTruncated) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(3, 1);  // 9 req/s capacity
  const DispatchResult r = dispatch(cand, c, 50.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.served, 9.0);
  EXPECT_DOUBLE_EQ(r.power, 3.7);  // fully loaded
}

TEST(Dispatch, PartialMachineWithinArch) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(2, 3);  // 3 chromebooks, 99 req/s capacity
  const DispatchResult r = dispatch(cand, c, 50.0);
  // 1 full (33) + 1 partial (17) + 1 idle.
  const double expected = 7.6 + (4.0 + (7.6 - 4.0) / 33.0 * 17.0) + 4.0;
  EXPECT_NEAR(r.power, expected, 1e-9);
}

TEST(Dispatch, Validation) {
  const Catalog cand = candidates();
  EXPECT_THROW((void)dispatch(cand, Combination{}, -1.0), std::invalid_argument);
  Combination too_wide({1, 1, 1, 1, 1});
  EXPECT_THROW((void)dispatch(cand, too_wide, 1.0), std::invalid_argument);
}

TEST(CombinationToString, HumanReadable) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(0, 2);
  c.set_count(3, 1);
  EXPECT_EQ(to_string(cand, c), "2xparavance + 1xraspberry");
  EXPECT_EQ(to_string(cand, Combination{}), "(empty)");
}

TEST(Delta, OnAndOffActions) {
  const auto d = delta(Combination({2, 0, 3}), Combination({1, 1, 3}));
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], -1);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 0);
}

TEST(Delta, DifferentWidths) {
  const auto d = delta(Combination({1}), Combination({1, 2}));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 2);
}

// Property: dispatch power is monotone in load for any fixed combination.
class DispatchMonotone : public ::testing::TestWithParam<int> {};

TEST_P(DispatchMonotone, PowerNonDecreasingInLoad) {
  const Catalog cand = candidates();
  Combination c;
  c.set_count(0, GetParam() % 3);
  c.set_count(2, (GetParam() * 7) % 5);
  c.set_count(3, 1 + GetParam() % 4);
  const double cap = capacity(cand, c);
  double prev = -1.0;
  for (double load = 0.0; load <= cap * 1.2; load += cap / 23.0 + 1.0) {
    const double p = dispatch(cand, c, load).power;
    EXPECT_GE(p, prev - 1e-9) << "load " << load;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Combos, DispatchMonotone, ::testing::Range(0, 12));

}  // namespace
}  // namespace bml
