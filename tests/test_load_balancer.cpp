// Tests for app/load_balancer.
#include "app/load_balancer.hpp"

#include <gtest/gtest.h>

#include "core/candidate_filter.hpp"

namespace bml {
namespace {

Catalog candidates() {
  Catalog c = filter_candidates(real_catalog()).candidates;
  c.erase(c.begin() + 1);  // paravance, chromebook, raspberry
  return c;
}

TEST(LoadBalancer, StartsEmpty) {
  const LoadBalancer lb(candidates());
  EXPECT_TRUE(lb.backends().empty());
  EXPECT_DOUBLE_EQ(lb.capacity(), 0.0);
  EXPECT_THROW(LoadBalancer({}), std::invalid_argument);
}

TEST(LoadBalancer, ReconfigureCreatesBackends) {
  LoadBalancer lb(candidates());
  const auto actions = lb.reconfigure(Combination({1, 2, 0}));
  ASSERT_EQ(actions.size(), 3u);
  for (const InstanceAction& a : actions)
    EXPECT_EQ(a.kind, InstanceAction::Kind::kStart);
  EXPECT_EQ(lb.backends().size(), 3u);
  EXPECT_DOUBLE_EQ(lb.capacity(), 1331.0 + 66.0);
}

TEST(LoadBalancer, ReconfigurePrefersMoves) {
  LoadBalancer lb(candidates());
  (void)lb.reconfigure(Combination({0, 16, 0}));
  const auto actions = lb.reconfigure(Combination({1, 0, 0}));
  // 16 chromebooks -> 1 paravance: 1 move + 15 stops.
  int moves = 0, stops = 0, starts = 0;
  for (const InstanceAction& a : actions) {
    if (a.kind == InstanceAction::Kind::kMove) ++moves;
    if (a.kind == InstanceAction::Kind::kStop) ++stops;
    if (a.kind == InstanceAction::Kind::kStart) ++starts;
  }
  EXPECT_EQ(moves, 1);
  EXPECT_EQ(stops, 15);
  EXPECT_EQ(starts, 0);
  EXPECT_EQ(lb.backends().size(), 1u);
}

TEST(LoadBalancer, RouteSplitsAlongOptimalDispatch) {
  LoadBalancer lb(candidates());
  (void)lb.reconfigure(Combination({1, 0, 1}));  // paravance + raspberry
  const ReqRate served = lb.route(100.0);
  EXPECT_DOUBLE_EQ(served, 100.0);
  // Raspberry (lower slope) takes its full 9 req/s; paravance the rest.
  double rasp_assigned = 0.0, big_assigned = 0.0;
  for (const Backend& b : lb.backends()) {
    if (b.arch == 2) rasp_assigned += b.assigned;
    if (b.arch == 0) big_assigned += b.assigned;
  }
  EXPECT_DOUBLE_EQ(rasp_assigned, 9.0);
  EXPECT_DOUBLE_EQ(big_assigned, 91.0);
}

TEST(LoadBalancer, WeightsSumToOneUnderLoad) {
  LoadBalancer lb(candidates());
  (void)lb.reconfigure(Combination({1, 3, 2}));
  (void)lb.route(500.0);
  double total_weight = 0.0;
  for (const Backend& b : lb.backends()) total_weight += b.weight;
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
}

TEST(LoadBalancer, EvenSplitWithinArchitecture) {
  LoadBalancer lb(candidates());
  (void)lb.reconfigure(Combination({0, 4, 0}));
  (void)lb.route(66.0);
  for (const Backend& b : lb.backends())
    EXPECT_DOUBLE_EQ(b.assigned, 16.5);  // 66 / 4 chromebooks
}

TEST(LoadBalancer, OverloadTruncates) {
  LoadBalancer lb(candidates());
  (void)lb.reconfigure(Combination({0, 0, 1}));
  EXPECT_DOUBLE_EQ(lb.route(50.0), 9.0);
  EXPECT_THROW((void)lb.route(-1.0), std::invalid_argument);
}

TEST(LoadBalancer, ActionToString) {
  const Catalog c = candidates();
  EXPECT_EQ(to_string({InstanceAction::Kind::kMove, 1, 0}, c),
            "move chromebook -> paravance");
  EXPECT_EQ(to_string({InstanceAction::Kind::kStart, 0, 2}, c),
            "start on raspberry");
  EXPECT_EQ(to_string({InstanceAction::Kind::kStop, 1, 0}, c),
            "stop on chromebook");
}

}  // namespace
}  // namespace bml
