// Tests for core/sensitivity — robustness of the design to profiling error.
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(PerturbCatalog, ScalesOneParameter) {
  const Catalog perturbed = perturb_catalog(
      real_catalog(), "paravance", ProfileParameter::kIdlePower, 0.10);
  const auto p = find_profile(perturbed, "paravance").value();
  EXPECT_NEAR(p.idle_power(), 69.9 * 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(p.max_power(), 200.5);  // others untouched
  EXPECT_DOUBLE_EQ(p.max_perf(), 1331.0);
  const auto other = find_profile(perturbed, "raspberry").value();
  EXPECT_DOUBLE_EQ(other.idle_power(), 3.1);
}

TEST(PerturbCatalog, UnknownMachineThrows) {
  EXPECT_THROW((void)perturb_catalog(real_catalog(), "cray-1",
                                     ProfileParameter::kMaxPower, 0.1),
               std::out_of_range);
}

TEST(PerturbCatalog, NonPhysicalPerturbationThrows) {
  // Raspberry: idle 3.1, max 3.7 — +30 % idle exceeds max power.
  EXPECT_THROW((void)perturb_catalog(real_catalog(), "raspberry",
                                     ProfileParameter::kIdlePower, 0.30),
               std::invalid_argument);
}

TEST(Sensitivity, RealCatalogRobustToMeasurementNoise) {
  // Table I was profiled within ~2 % noise; the design must not change its
  // candidate set under that perturbation, and thresholds must move only
  // marginally.
  const auto rows = sensitivity_analysis(real_catalog(), 0.02);
  ASSERT_EQ(rows.size(), 15u);  // 5 machines x 3 parameters
  for (const SensitivityRow& row : rows) {
    EXPECT_TRUE(row.same_candidates)
        << row.machine << " " << to_string(row.parameter);
    EXPECT_LT(row.mean_power_drift, 0.05)
        << row.machine << " " << to_string(row.parameter);
    for (ReqRate shift : row.threshold_shift)
      EXPECT_LT(std::abs(shift), 40.0)
          << row.machine << " " << to_string(row.parameter);
  }
}

TEST(Sensitivity, LargePerturbationCanFlipCandidateSet) {
  // Halving a parameter is far outside instrument noise; dropping
  // Paravance's max performance below Taurus's promotes Taurus to Big and
  // the candidate set changes. Non-physical perturbations (e.g. raspberry
  // max power below idle) are skipped, so fewer than 15 rows return.
  const auto rows = sensitivity_analysis(real_catalog(), -0.5);
  EXPECT_LT(rows.size(), 15u);
  bool any_flip = false;
  for (const SensitivityRow& row : rows)
    if (!row.same_candidates) any_flip = true;
  EXPECT_TRUE(any_flip);
}

TEST(Sensitivity, UnperturbedDeltaIsZeroDrift) {
  const auto rows = sensitivity_analysis(real_catalog(), 0.0);
  for (const SensitivityRow& row : rows) {
    EXPECT_TRUE(row.same_candidates);
    EXPECT_NEAR(row.mean_power_drift, 0.0, 1e-12);
    for (ReqRate shift : row.threshold_shift)
      EXPECT_DOUBLE_EQ(shift, 0.0);
  }
}

TEST(Sensitivity, Validation) {
  EXPECT_THROW((void)sensitivity_analysis(real_catalog(), 0.02, 1),
               std::invalid_argument);
}

TEST(ProfileParameter, Names) {
  EXPECT_EQ(to_string(ProfileParameter::kIdlePower), "idle-power");
  EXPECT_EQ(to_string(ProfileParameter::kMaxPower), "max-power");
  EXPECT_EQ(to_string(ProfileParameter::kMaxPerf), "max-perf");
}

}  // namespace
}  // namespace bml
