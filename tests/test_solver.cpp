// Tests for core/solver: the paper's greedy-threshold algorithm against the
// exact DP oracle, plus the limited-inventory extension.
#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>

#include "core/bml_design.hpp"
#include "core/candidate_filter.hpp"
#include "util/rng.hpp"

namespace bml {
namespace {

struct SolverFixture {
  Catalog candidates;                 // paravance, chromebook, raspberry
  std::vector<ReqRate> thresholds{529.0, 10.0, 1.0};

  SolverFixture() {
    candidates = filter_candidates(real_catalog()).candidates;
    candidates.erase(candidates.begin() + 1);  // graphene (Step 3 removal)
  }
};

TEST(GreedyThresholdSolver, KnownCombinations) {
  const SolverFixture f;
  const GreedyThresholdSolver solver(f.candidates, f.thresholds);
  EXPECT_EQ(solver.solve(0.0), Combination({0, 0, 0}));
  EXPECT_EQ(solver.solve(5.0), Combination({0, 0, 1}));    // 1 raspberry
  EXPECT_EQ(solver.solve(9.0), Combination({0, 0, 1}));
  EXPECT_EQ(solver.solve(10.0), Combination({0, 1, 0}));   // 1 chromebook
  EXPECT_EQ(solver.solve(529.0), Combination({1, 0, 0}));  // 1 paravance
  EXPECT_EQ(solver.solve(1331.0), Combination({1, 0, 0}));
  EXPECT_EQ(solver.solve(2662.0), Combination({2, 0, 0}));
  // 42 = 1 full chromebook + 9 on a raspberry.
  EXPECT_EQ(solver.solve(42.0), Combination({0, 1, 1}));
  // 1331 + 529: one full Big plus a second Big for the remainder.
  EXPECT_EQ(solver.solve(1860.0), Combination({2, 0, 0}));
}

TEST(GreedyThresholdSolver, SubThresholdRemainderUsesLittle) {
  const SolverFixture f;
  const GreedyThresholdSolver solver(f.candidates, f.thresholds);
  // Remainder below 1 req/s still needs a machine.
  EXPECT_EQ(solver.solve(0.5), Combination({0, 0, 1}));
  // 33 + 0.5: one full chromebook plus a raspberry sliver.
  const Combination c = solver.solve(33.5);
  EXPECT_EQ(c, Combination({0, 1, 1}));
}

TEST(GreedyThresholdSolver, CapacityAlwaysCoversRate) {
  const SolverFixture f;
  const GreedyThresholdSolver solver(f.candidates, f.thresholds);
  for (double r = 0.0; r <= 3000.0; r += 13.7) {
    const Combination combo = solver.solve(r);
    EXPECT_GE(capacity(f.candidates, combo), r - 1e-9) << "rate " << r;
  }
}

TEST(GreedyThresholdSolver, Validation) {
  const SolverFixture f;
  EXPECT_THROW(GreedyThresholdSolver({}, {}), std::invalid_argument);
  EXPECT_THROW(GreedyThresholdSolver(f.candidates, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(GreedyThresholdSolver(f.candidates, {529.0, 10.0, -1.0}),
               std::invalid_argument);
  Catalog unsorted = f.candidates;
  std::swap(unsorted[0], unsorted[2]);
  EXPECT_THROW(GreedyThresholdSolver(unsorted, f.thresholds),
               std::invalid_argument);
  const GreedyThresholdSolver solver(f.candidates, f.thresholds);
  EXPECT_THROW((void)solver.solve(-1.0), std::invalid_argument);
}

TEST(ExactDpSolver, MatchesMinCostCurveSemantics) {
  const SolverFixture f;
  const ExactDpSolver solver(f.candidates, 2000.0);
  for (double r : {0.0, 1.0, 9.0, 10.0, 529.0, 1331.0, 1999.0}) {
    const Combination combo = solver.solve(r);
    EXPECT_GE(capacity(f.candidates, combo), r) << "rate " << r;
  }
  EXPECT_THROW((void)solver.solve(2001.0), std::out_of_range);
}

// The paper's central algorithmic claim: the greedy threshold construction
// produces the *ideal* (minimum power) combination. Verified against the
// exact DP at every integer rate across four Big machines of capacity.
TEST(GreedyVsExactDp, IdenticalPowerOnIntegerGrid) {
  const SolverFixture f;
  const GreedyThresholdSolver greedy(f.candidates, f.thresholds);
  const ExactDpSolver exact(f.candidates, 5324.0);
  for (int r = 0; r <= 5324; ++r) {
    const double g = greedy.power(static_cast<double>(r));
    const double e = exact.power(static_cast<double>(r));
    ASSERT_NEAR(g, e, 1e-6) << "rate " << r;
  }
}

TEST(GreedyVsExactDp, IllustrativeCatalogCloseToOptimal) {
  const Catalog cand = filter_candidates(illustrative_catalog()).candidates;
  const ThresholdResult s4 = step4_thresholds(cand);
  std::vector<ReqRate> thresholds;
  for (const auto& t : s4.thresholds) thresholds.push_back(t.value());
  const GreedyThresholdSolver greedy(cand, thresholds);
  const ExactDpSolver exact(cand, 1200.0);
  for (int r = 0; r <= 1200; ++r) {
    const double g = greedy.power(static_cast<double>(r));
    const double e = exact.power(static_cast<double>(r));
    ASSERT_LE(g, e * 1.02 + 1e-6) << "rate " << r;  // within 2 % of optimal
    ASSERT_GE(g, e - 1e-6) << "rate " << r;         // DP is a true bound
  }
}

TEST(InventoryCaps, GreedyFallsBackToSmallerArchs) {
  const SolverFixture f;
  // Only one paravance available: 2000 req/s needs chromebooks on top.
  const GreedyThresholdSolver solver(f.candidates, f.thresholds,
                                     InventoryCaps{1, 1000, 1000});
  const Combination combo = solver.solve(2000.0);
  EXPECT_EQ(combo.count(0), 1);
  EXPECT_GE(capacity(f.candidates, combo), 2000.0);
}

TEST(InventoryCaps, GreedyThrowsWhenExhausted) {
  const SolverFixture f;
  const GreedyThresholdSolver solver(f.candidates, f.thresholds,
                                     InventoryCaps{1, 2, 2});
  EXPECT_THROW((void)solver.solve(5000.0), std::runtime_error);
}

TEST(InventoryCaps, ExactSearchRespectsCaps) {
  const SolverFixture f;
  const ExactDpSolver solver(f.candidates, 3000.0, InventoryCaps{2, 5, 5});
  const Combination combo = solver.solve(2700.0);
  EXPECT_LE(combo.count(0), 2);
  EXPECT_LE(combo.count(1), 5);
  EXPECT_LE(combo.count(2), 5);
  EXPECT_GE(capacity(f.candidates, combo), 2700.0);
  EXPECT_THROW((void)solver.solve(2999.0), std::runtime_error);
}

TEST(InventoryCaps, CappedAndUncappedAgreeWhenCapsLoose) {
  const SolverFixture f;
  const ExactDpSolver capped(f.candidates, 1500.0,
                             InventoryCaps{10, 100, 100});
  const ExactDpSolver uncapped(f.candidates, 1500.0);
  for (double r : {5.0, 42.0, 529.0, 1000.0, 1499.0})
    EXPECT_NEAR(capped.power(r), uncapped.power(r), 1e-9) << "rate " << r;
}

// Property sweep: on the integer rate grid (the paper's application metric
// is whole requests per second, and thresholds are computed on that grid)
// the solver's power must be monotone — more load never costs less.
// Fractional rates between a Little's capacity and the next threshold can
// break monotonicity by design (the thresholds are integer crossings), so
// the property is stated on integers.
class SolverMonotone : public ::testing::TestWithParam<int> {};

TEST_P(SolverMonotone, PowerMonotoneInRateOnIntegerGrid) {
  const SolverFixture f;
  const GreedyThresholdSolver solver(f.candidates, f.thresholds);
  const int step = 1 + GetParam() * 3;
  double prev = -1.0;
  for (int r = 0; r <= 4000; r += step) {
    const double p = solver.power(static_cast<double>(r));
    EXPECT_GE(p, prev - 1e-9) << "rate " << r;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, SolverMonotone, ::testing::Range(0, 8));


// Property: on randomly generated catalogs (construction guarantees the
// paper's premise that bigger machines are more efficient at full load),
// the greedy threshold solver stays within a few percent of the exact DP
// optimum across the integer rate grid, and never beats it.
class GreedyVsDpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyVsDpRandom, NearOptimalOnRandomCatalogs) {
  Rng rng(GetParam());
  // Build 3-5 architectures with decreasing max perf, increasing idle
  // share, and full-load efficiency improving with size.
  const int kinds = static_cast<int>(rng.uniform_int(3, 5));
  Catalog catalog;
  double perf = rng.uniform(800.0, 2000.0);
  double efficiency = rng.uniform(0.10, 0.20);  // W per req/s at full load
  for (int i = 0; i < kinds; ++i) {
    const double max_power = efficiency * perf;
    const double idle = max_power * rng.uniform(0.2, 0.7);
    catalog.emplace_back("rand" + std::to_string(i), std::round(perf),
                         idle, max_power, TransitionCost{},
                         TransitionCost{});
    perf *= rng.uniform(0.05, 0.35);          // next machine much smaller
    if (perf < 4.0) perf = 4.0;
    efficiency *= rng.uniform(1.1, 1.8);      // ...and less efficient
  }

  BmlDesignOptions options;
  options.build_table = false;
  std::optional<BmlDesign> design;
  try {
    design = BmlDesign::build(catalog, options);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "random catalog degenerated to no candidates";
  }

  // On arbitrary catalogs the paper's greedy is a heuristic: it can sit a
  // few percent above the DP optimum at isolated rates (unlike the real
  // Table I catalog, where it is exact — see IdenticalPowerOnIntegerGrid).
  // Bound the worst case at 10 % and the mean gap at 2 %.
  const double sweep = design->big().max_perf() * 1.5;
  const ExactDpSolver exact(design->candidates(), sweep);
  double ratio_sum = 0.0;
  int samples = 0;
  for (int r = 7; r <= static_cast<int>(sweep); r += 7) {
    const double g = design->ideal_power(static_cast<double>(r));
    const double e = exact.power(static_cast<double>(r));
    ASSERT_GE(g, e - 1e-6) << "rate " << r << " (DP must lower-bound)";
    ASSERT_LE(g, e * 1.10 + 1e-6) << "rate " << r;
    if (e > 0.0) {
      ratio_sum += g / e;
      ++samples;
    }
  }
  ASSERT_GT(samples, 0);
  EXPECT_LE(ratio_sum / samples, 1.02);
}

INSTANTIATE_TEST_SUITE_P(RandomCatalogs, GreedyVsDpRandom,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace bml
