// Tests for trace/transforms.
#include "trace/transforms.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

const LoadTrace kBase({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});

TEST(Scale, MultipliesRates) {
  const LoadTrace t = scale(kBase, 2.0);
  EXPECT_DOUBLE_EQ(t.at(2), 6.0);
  EXPECT_DOUBLE_EQ(t.peak(), 12.0);
  EXPECT_THROW((void)scale(kBase, -1.0), std::invalid_argument);
}

TEST(Clip, ClampsIntoRange) {
  const LoadTrace t = clip(kBase, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(5), 4.0);
  EXPECT_DOUBLE_EQ(t.at(2), 3.0);
  EXPECT_THROW((void)clip(kBase, -1.0, 4.0), std::invalid_argument);
  EXPECT_THROW((void)clip(kBase, 4.0, 2.0), std::invalid_argument);
}

TEST(Smooth, WindowOnePreservesTrace) {
  const LoadTrace t = smooth(kBase, 1);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_DOUBLE_EQ(t.at(static_cast<TimePoint>(i)),
                     kBase.at(static_cast<TimePoint>(i)));
}

TEST(Smooth, AveragesNeighbourhood) {
  const LoadTrace t = smooth(kBase, 3);
  EXPECT_DOUBLE_EQ(t.at(2), 3.0);                 // (2+3+4)/3
  EXPECT_DOUBLE_EQ(t.at(0), 1.5);                 // truncated: (1+2)/2
  EXPECT_DOUBLE_EQ(t.at(5), 5.5);                 // truncated: (5+6)/2
  EXPECT_THROW((void)smooth(kBase, 0), std::invalid_argument);
}

TEST(Smooth, PreservesMeanApproximately) {
  const LoadTrace t = smooth(kBase, 3);
  EXPECT_NEAR(t.mean(), kBase.mean(), 0.2);
}

TEST(Slice, ExtractsRange) {
  const LoadTrace t = slice(kBase, 1, 4);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(2), 4.0);
  EXPECT_EQ(slice(kBase, 4, 100).size(), 2u);  // clamped end
  EXPECT_THROW((void)slice(kBase, 3, 1), std::invalid_argument);
}

TEST(Concat, Appends) {
  const LoadTrace t = concat(kBase, LoadTrace({7.0}));
  ASSERT_EQ(t.size(), 7u);
  EXPECT_DOUBLE_EQ(t.at(6), 7.0);
}

TEST(DownsampleMax, TakesBucketMaxima) {
  const LoadTrace t = downsample_max(kBase, 2);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(1), 4.0);
  EXPECT_DOUBLE_EQ(t.at(2), 6.0);
  // Peak is always preserved by max-downsampling.
  EXPECT_DOUBLE_EQ(t.peak(), kBase.peak());
  EXPECT_THROW((void)downsample_max(kBase, 0), std::invalid_argument);
}

TEST(Quantize, RoundsToIntegers) {
  const LoadTrace t = quantize(LoadTrace({1.4, 2.6, 3.5}));
  EXPECT_DOUBLE_EQ(t.at(0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1), 3.0);
  EXPECT_DOUBLE_EQ(t.at(2), 4.0);
}

}  // namespace
}  // namespace bml
