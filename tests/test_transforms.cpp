// Tests for trace/transforms.
#include "trace/transforms.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

const LoadTrace kBase({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});

TEST(Scale, MultipliesRates) {
  const LoadTrace t = scale(kBase, 2.0);
  EXPECT_DOUBLE_EQ(t.at(2), 6.0);
  EXPECT_DOUBLE_EQ(t.peak(), 12.0);
  EXPECT_THROW((void)scale(kBase, -1.0), std::invalid_argument);
}

TEST(Clip, ClampsIntoRange) {
  const LoadTrace t = clip(kBase, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(5), 4.0);
  EXPECT_DOUBLE_EQ(t.at(2), 3.0);
  EXPECT_THROW((void)clip(kBase, -1.0, 4.0), std::invalid_argument);
  EXPECT_THROW((void)clip(kBase, 4.0, 2.0), std::invalid_argument);
}

TEST(Smooth, WindowOnePreservesTrace) {
  const LoadTrace t = smooth(kBase, 1);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_DOUBLE_EQ(t.at(static_cast<TimePoint>(i)),
                     kBase.at(static_cast<TimePoint>(i)));
}

TEST(Smooth, AveragesNeighbourhood) {
  const LoadTrace t = smooth(kBase, 3);
  EXPECT_DOUBLE_EQ(t.at(2), 3.0);                 // (2+3+4)/3
  EXPECT_DOUBLE_EQ(t.at(0), 1.5);                 // truncated: (1+2)/2
  EXPECT_DOUBLE_EQ(t.at(5), 5.5);                 // truncated: (5+6)/2
  EXPECT_THROW((void)smooth(kBase, 0), std::invalid_argument);
}

TEST(Smooth, PreservesMeanApproximately) {
  const LoadTrace t = smooth(kBase, 3);
  EXPECT_NEAR(t.mean(), kBase.mean(), 0.2);
}

TEST(Slice, ExtractsRange) {
  const LoadTrace t = slice(kBase, 1, 4);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(2), 4.0);
  EXPECT_EQ(slice(kBase, 4, 100).size(), 2u);  // clamped end
  EXPECT_THROW((void)slice(kBase, 3, 1), std::invalid_argument);
}

TEST(Concat, Appends) {
  const LoadTrace t = concat(kBase, LoadTrace({7.0}));
  ASSERT_EQ(t.size(), 7u);
  EXPECT_DOUBLE_EQ(t.at(6), 7.0);
}

TEST(DownsampleMax, TakesBucketMaxima) {
  const LoadTrace t = downsample_max(kBase, 2);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(1), 4.0);
  EXPECT_DOUBLE_EQ(t.at(2), 6.0);
  // Peak is always preserved by max-downsampling.
  EXPECT_DOUBLE_EQ(t.peak(), kBase.peak());
  EXPECT_THROW((void)downsample_max(kBase, 0), std::invalid_argument);
}

TEST(Quantize, RoundsToIntegers) {
  const LoadTrace t = quantize(LoadTrace({1.4, 2.6, 3.5}));
  EXPECT_DOUBLE_EQ(t.at(0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1), 3.0);
  EXPECT_DOUBLE_EQ(t.at(2), 4.0);
}

TEST(ComposeSeasonality, DiurnalEnvelopePeaksAtPeakHour) {
  // Constant trace over half a day; with peak_hour = 0 the diurnal cosine
  // is +1 at t = 0, 0 a quarter-day in, and -1 at the half-day trough.
  const LoadTrace flat(std::vector<double>(43'201, 100.0));
  const LoadTrace t = compose_seasonality(flat, 0.5, 0.0, 0.0);
  ASSERT_EQ(t.size(), flat.size());
  EXPECT_NEAR(t.at(0), 150.0, 1e-9);
  EXPECT_NEAR(t.at(21'600), 100.0, 1e-9);
  EXPECT_NEAR(t.at(43'200), 50.0, 1e-9);
}

TEST(ComposeSeasonality, WeeklyAndDiurnalEnvelopesMultiply) {
  const LoadTrace flat(std::vector<double>(10, 100.0));
  const LoadTrace t = compose_seasonality(flat, 0.5, 0.2, 0.0);
  // Both cosines are ~1 right at the shared peak.
  EXPECT_NEAR(t.at(0), 100.0 * 1.5 * 1.2, 1e-9);
}

TEST(ComposeSeasonality, ZeroAmplitudesAreIdentity) {
  const LoadTrace t = compose_seasonality(kBase, 0.0, 0.0, 18.0);
  ASSERT_EQ(t.size(), kBase.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_DOUBLE_EQ(t.at(i), kBase.at(i));
}

TEST(ComposeSeasonality, RejectsAmplitudesOutsideUnitRange) {
  EXPECT_THROW((void)compose_seasonality(kBase, 1.5, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)compose_seasonality(kBase, 0.0, -0.1, 0.0),
               std::invalid_argument);
}

TEST(AddSpikes, IsSeedDeterministicAndOnlyAddsLoad) {
  const LoadTrace flat(std::vector<double>(600, 10.0));
  const LoadTrace a = add_spikes(flat, 30.0, 50.0, 1.5, 5, 42);
  const LoadTrace b = add_spikes(flat, 30.0, 50.0, 1.5, 5, 42);
  ASSERT_EQ(a.size(), flat.size());
  bool spiked = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.at(i), b.at(i));  // same seed, same trace
    EXPECT_GE(a.at(i), flat.at(i));      // spikes never remove load
    spiked |= a.at(i) > flat.at(i);
  }
  EXPECT_TRUE(spiked);  // a 600 s trace at 30 s mean gaps gets spikes
  const LoadTrace c = add_spikes(flat, 30.0, 50.0, 1.5, 5, 43);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) differs |= c.at(i) != a.at(i);
  EXPECT_TRUE(differs);
}

TEST(AddSpikes, CapsHeightsAndZeroMagnitudeIsIdentity) {
  const LoadTrace flat(std::vector<double>(600, 10.0));
  // duration = 1 means spikes cannot stack (gaps have a 1 s floor), so the
  // Pareto cap bounds every sample even with a heavy tail (small alpha).
  const LoadTrace t = add_spikes(flat, 20.0, 5.0, 0.1, 1, 7);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_LE(t.at(i), 10.0 + 100.0 * 5.0);
  const LoadTrace z = add_spikes(flat, 20.0, 0.0, 1.5, 60, 7);
  for (std::size_t i = 0; i < z.size(); ++i)
    EXPECT_DOUBLE_EQ(z.at(i), flat.at(i));
}

TEST(AddSpikes, RejectsInvalidParameters) {
  EXPECT_THROW((void)add_spikes(kBase, 0.0, 50.0, 1.5, 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)add_spikes(kBase, 30.0, -1.0, 1.5, 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)add_spikes(kBase, 30.0, 50.0, 0.0, 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)add_spikes(kBase, 30.0, 50.0, 1.5, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace bml
