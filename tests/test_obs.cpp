// Tests for obs/: histogram bucket edges, deterministic registry
// rendering, the simulator's span-cause accounting, thread-count
// independence of sweep metrics, CSV byte-identity with observability on
// or off, and the pinned golden Chrome trace-event export.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>

#include "obs/trace_export.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep.hpp"

namespace bml {
namespace {

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // exactly on a bound lands in that bound's bucket
  h.observe(1.0000001);  // just past a bound falls to the next bucket
  h.observe(2.0);   // <= 2
  h.observe(4.0);   // <= 4 (last finite bucket, inclusive)
  h.observe(4.0000001);  // overflow
  h.observe(-3.0);  // below everything still lands in the first bucket

  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 3u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total_count(), 7u);
}

TEST(Histogram, RejectsEmptyOrNonIncreasingBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}),
               std::invalid_argument);
}

TEST(Histogram, UnconfiguredDropsObservations) {
  Histogram h;
  EXPECT_FALSE(h.configured());
  h.observe(1.0);
  EXPECT_EQ(h.total_count(), 0u);
}

TEST(Histogram, MergeAddsAdoptsAndRejectsMismatches) {
  Histogram a(std::vector<double>{1.0, 2.0});
  a.observe(0.5);
  Histogram b(std::vector<double>{1.0, 2.0});
  b.observe(1.5);
  b.observe(5.0);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 3u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);

  // Merging into an unconfigured histogram adopts the source's bounds;
  // merging an unconfigured source is a no-op.
  Histogram empty;
  empty.merge(a);
  EXPECT_EQ(empty.upper_bounds(), a.upper_bounds());
  EXPECT_EQ(empty.total_count(), 3u);
  a.merge(Histogram{});
  EXPECT_EQ(a.total_count(), 3u);

  Histogram other(std::vector<double>{1.0, 3.0});
  EXPECT_THROW(a.merge(other), std::invalid_argument);
}

TEST(Histogram, ExponentialLadderCoversADayOfSpanSeconds) {
  const Histogram h = Histogram::exponential(1.0, 2.0, 18);
  ASSERT_EQ(h.upper_bounds().size(), 18u);
  EXPECT_DOUBLE_EQ(h.upper_bounds().front(), 1.0);
  // The span-length ladder must reach past 86400 s so a whole quiet day
  // never lands in the overflow bucket.
  EXPECT_GT(h.upper_bounds().back(), 86400.0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, RendersSortedDeterministicText) {
  MetricsRegistry r;
  r.add_counter("zeta", 2);
  r.add_counter("alpha", 1);
  r.add_counter("alpha", 4);
  r.max_gauge("gauge", 1.5);
  r.max_gauge("gauge", 0.5);  // max keeps 1.5
  Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(1.0);
  r.merge_histogram("hist", h);

  EXPECT_EQ(r.counter("alpha"), 5u);
  EXPECT_EQ(r.counter("absent"), 0u);
  const std::string text = r.to_text();
  EXPECT_EQ(text,
            "alpha 5\n"
            "zeta 2\n"
            "gauge 1.5\n"
            "hist count=1 mean=1 le1:1\n");

  // Merging the same shards in the same order is associative on the text.
  MetricsRegistry copy;
  copy.merge(r);
  EXPECT_EQ(copy.to_text(), text);
}

TEST(SpanEndCause, NamesAreStable) {
  EXPECT_STREQ(to_string(SpanEndCause::kSchedulerStable), "scheduler-stable");
  EXPECT_STREQ(to_string(SpanEndCause::kTraceChange), "trace-change");
  EXPECT_STREQ(to_string(SpanEndCause::kTransitionComplete),
               "transition-complete");
  EXPECT_STREQ(to_string(SpanEndCause::kFault), "fault");
  EXPECT_STREQ(to_string(SpanEndCause::kCrewCompletion), "crew-completion");
  EXPECT_STREQ(to_string(SpanEndCause::kSloCrossing), "slo-crossing");
  EXPECT_STREQ(to_string(SpanEndCause::kDayBoundary), "day-boundary");
  EXPECT_STREQ(to_string(SpanEndCause::kTraceEnd), "trace-end");
}

// ---------------------------------------------------------------------------
// Simulator instrumentation through the scenario engine

constexpr const char* kTinySpec = R"(name = tiny
catalog = illustrative
trace = step
trace.segments = 120:300;4000:300
scheduler = bml
predictor = oracle-max
seed = 7
)";

TEST(SimMetrics, SpanEndCausesSumToSpans) {
  ScenarioSpec spec = parse_scenario(kTinySpec);
  spec.obs_metrics = true;
  const ScenarioResult result = run_scenario(spec);
  const SimMetrics& m = result.sim.metrics;
  ASSERT_TRUE(m.enabled);
  EXPECT_GT(m.spans, 0u);
  EXPECT_EQ(m.ticks, 0u);  // event-driven path
  const std::uint64_t cause_sum = std::accumulate(
      m.span_end_causes.begin(), m.span_end_causes.end(), std::uint64_t{0});
  EXPECT_EQ(cause_sum, m.spans);
  EXPECT_EQ(m.span_seconds.total_count(), m.spans);
  EXPECT_GT(m.scheduler_consults, 0u);
  // The tiny step forces exactly one reconfiguration.
  EXPECT_EQ(m.decisions_applied, 1u);
  EXPECT_EQ(m.span_end_causes[static_cast<std::size_t>(
                SpanEndCause::kTraceEnd)],
            1u);
}

TEST(SimMetrics, MetricsCollectionDoesNotChangeResults) {
  const ScenarioSpec off = parse_scenario(kTinySpec);
  ScenarioSpec on = off;
  on.obs_metrics = true;
  const ScenarioResult a = run_scenario(off);
  const ScenarioResult b = run_scenario(on);
  EXPECT_EQ(a.sim.compute_energy, b.sim.compute_energy);
  EXPECT_EQ(a.sim.reconfiguration_energy, b.sim.reconfiguration_energy);
  EXPECT_EQ(a.sim.reconfigurations, b.sim.reconfigurations);
  EXPECT_FALSE(a.sim.metrics.enabled);
}

// Four effective apps (3 replicas + 1) put the event-driven path in
// fleet mode: the fused k-way merge and the consult cache are active.
constexpr const char* kFleetSpec = R"(name = fleet
catalog = illustrative
seed = 7
[app]
name = a
replicas = 3
trace = step
trace.segments = 120:300;2000:300
scheduler = bml
predictor = oracle-max
[app]
name = b
trace = constant
trace.rate = 400
trace.duration = 600
scheduler = reactive
)";

TEST(SimMetrics, FleetModeKeepsCauseSumAndCountsMergeWork) {
  ScenarioSpec spec = parse_scenario(kFleetSpec);
  spec.obs_metrics = true;
  const ScenarioResult result = run_scenario(spec);
  const SimMetrics& m = result.sim.metrics;
  ASSERT_TRUE(m.enabled);
  EXPECT_GT(m.spans, 0u);
  EXPECT_EQ(m.ticks, 0u);
  // The span-cause ledger must stay exact through the fused merge: every
  // span names exactly one ending cause.
  const std::uint64_t cause_sum = std::accumulate(
      m.span_end_causes.begin(), m.span_end_causes.end(), std::uint64_t{0});
  EXPECT_EQ(cause_sum, m.spans);
  EXPECT_EQ(m.span_seconds.total_count(), m.spans);
  EXPECT_EQ(m.merge_apps_max, 4u);
  // Every span seeds one frontier cursor per app before consuming runs.
  EXPECT_GE(m.merge_frontier_advances, m.spans * 4);
}

TEST(SimMetrics, MergeCountersExportUnderSimMergeNames) {
  ScenarioSpec spec = parse_scenario(kFleetSpec);
  spec.obs_metrics = true;
  const ScenarioResult result = run_scenario(spec);
  MetricsRegistry registry;
  result.sim.metrics.export_to(registry);
  EXPECT_EQ(registry.counter("sim.merge.frontier_advances"),
            result.sim.metrics.merge_frontier_advances);
  EXPECT_NE(registry.to_text().find("sim.merge.apps_max 4"),
            std::string::npos);
}

constexpr const char* kSweepSpec = R"(name = grid
catalog = illustrative
trace = step
trace.segments = 120:300;4000:300
scheduler = bml
predictor = oracle-max
seed = 7
sweep scheduler.window = 400,800
sweep predictor = oracle-max,moving-max
)";

TEST(SweepMetrics, TextIsIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = parse_scenario(kSweepSpec);
  spec.obs_metrics = true;
  SweepOptions one;
  one.threads = 1;
  SweepOptions four;
  four.threads = 4;
  const SweepReport a = run_sweep(spec, one);
  const SweepReport b = run_sweep(spec, four);
  EXPECT_FALSE(a.metrics.empty());
  EXPECT_EQ(a.metrics.to_text(), b.metrics.to_text());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.metrics.counter("sweep.scenarios"), 4u);
  // scheduler.window / predictor axes are runtime components — the build
  // stays shared, so the cache takes every grid point but the first.
  EXPECT_EQ(a.metrics.counter("sweep.build_cache.hits"), 3u);
  EXPECT_EQ(a.metrics.counter("sweep.build_cache.misses"), 1u);
}

TEST(SweepMetrics, CsvIsByteIdenticalWithObservabilityOnOrOff) {
  const ScenarioSpec off = parse_scenario(kSweepSpec);
  ScenarioSpec on = off;
  on.obs_metrics = true;
  const SweepReport a = run_sweep(off, {});
  const SweepReport b = run_sweep(on, {});
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_TRUE(a.metrics.empty());
  EXPECT_FALSE(b.metrics.empty());
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

TEST(TraceExport, GoldenTimelineJson) {
  ScenarioSpec spec = parse_scenario(kTinySpec);
  spec.obs_trace = true;
  spec.obs_sample = 120;
  const ScenarioResult result = run_scenario(spec);
  // Pinned output of this exact scenario: 5 counter samples at 120 s, one
  // reconfiguration rendered as a ph:"X" duration, three boot-complete
  // instants. Regenerate with
  //   bmlsim run <tiny.scn> --trace-out out.json --trace-sample 120
  // if the exporter's format deliberately changes.
  const std::string golden = R"({"displayTimeUnit":"ms",
"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"bmlsim"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"events"}},
{"name":"machines on","ph":"C","ts":0,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":4}},
{"name":"machines booting","ph":"C","ts":0,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines shutting down","ph":"C","ts":0,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines failed","ph":"C","ts":0,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"load","ph":"C","ts":0,"pid":1,"args":{"offered":120,"served":120}},
{"name":"slo spares","ph":"C","ts":0,"pid":1,"args":{"machines":0}},
{"name":"machines on","ph":"C","ts":120000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":4}},
{"name":"machines booting","ph":"C","ts":120000000,"pid":1,"args":{"arch-A":6,"arch-B":1,"arch-C":0}},
{"name":"machines shutting down","ph":"C","ts":120000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines failed","ph":"C","ts":120000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"load","ph":"C","ts":120000000,"pid":1,"args":{"offered":120,"served":120}},
{"name":"slo spares","ph":"C","ts":120000000,"pid":1,"args":{"machines":0}},
{"name":"machines on","ph":"C","ts":240000000,"pid":1,"args":{"arch-A":6,"arch-B":1,"arch-C":0}},
{"name":"machines booting","ph":"C","ts":240000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines shutting down","ph":"C","ts":240000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines failed","ph":"C","ts":240000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"load","ph":"C","ts":240000000,"pid":1,"args":{"offered":120,"served":120}},
{"name":"slo spares","ph":"C","ts":240000000,"pid":1,"args":{"machines":0}},
{"name":"machines on","ph":"C","ts":360000000,"pid":1,"args":{"arch-A":6,"arch-B":1,"arch-C":0}},
{"name":"machines booting","ph":"C","ts":360000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines shutting down","ph":"C","ts":360000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines failed","ph":"C","ts":360000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"load","ph":"C","ts":360000000,"pid":1,"args":{"offered":4000,"served":4000}},
{"name":"slo spares","ph":"C","ts":360000000,"pid":1,"args":{"machines":0}},
{"name":"machines on","ph":"C","ts":480000000,"pid":1,"args":{"arch-A":6,"arch-B":1,"arch-C":0}},
{"name":"machines booting","ph":"C","ts":480000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines shutting down","ph":"C","ts":480000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"machines failed","ph":"C","ts":480000000,"pid":1,"args":{"arch-A":0,"arch-B":0,"arch-C":0}},
{"name":"load","ph":"C","ts":480000000,"pid":1,"args":{"offered":4000,"served":4000}},
{"name":"slo spares","ph":"C","ts":480000000,"pid":1,"args":{"machines":0}},
{"name":"boot-complete","ph":"i","ts":120000000,"pid":1,"tid":1,"s":"g","args":{"detail":"1 transitions"}},
{"name":"boot-complete","ph":"i","ts":180000000,"pid":1,"tid":1,"s":"g","args":{"detail":"6 transitions"}},
{"name":"boot-complete","ph":"i","ts":195000000,"pid":1,"tid":1,"s":"g","args":{"detail":"4 transitions"}},
{"name":"reconfiguration","ph":"X","ts":61000000,"dur":135000000,"pid":1,"tid":1,"args":{"target":"6xarch-A + 1xarch-B"}}
]}
)";
  EXPECT_EQ(chrome_trace_json(result.sim.timeline), golden);
}

TEST(TraceExport, EventCountsExportOnlyRecordedKinds) {
  ScenarioSpec spec = parse_scenario(kTinySpec);
  spec.obs_trace = true;
  const ScenarioResult result = run_scenario(spec);
  MetricsRegistry registry;
  export_event_counts(result.sim.events, registry);
  EXPECT_EQ(registry.counter("events.total"), result.sim.events.total());
  EXPECT_GT(registry.counter("events.boot-complete"), 0u);
  EXPECT_EQ(registry.counter("events.qos-violation"), 0u);
}

TEST(TraceExport, TimelineRecordingPreservesSimulationResults) {
  const ScenarioSpec off = parse_scenario(kTinySpec);
  ScenarioSpec on = off;
  on.obs_trace = true;
  const ScenarioResult a = run_scenario(off);
  const ScenarioResult b = run_scenario(on);
  // Recording replays on the per-second reference path; the equivalence
  // contract keeps integer counters exact and energies within 1e-9.
  EXPECT_EQ(a.sim.reconfigurations, b.sim.reconfigurations);
  EXPECT_EQ(a.sim.qos.violation_seconds, b.sim.qos.violation_seconds);
  EXPECT_NEAR(a.sim.compute_energy, b.sim.compute_energy, 1e-9);
}

TEST(TraceExport, RejectsZeroSamplePeriod) {
  EXPECT_THROW(parse_scenario(std::string(kTinySpec) + "obs.sample = 0\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace bml
