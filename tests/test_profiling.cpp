// Tests for profiling/: the simulated testbed and the Step 1 profiler.
#include "profiling/profiler.hpp"

#include <gtest/gtest.h>

#include "arch/catalog.hpp"

namespace bml {
namespace {

MachineSpec chromebook_spec() {
  return MachineSpec(
      find_profile(real_catalog(), "chromebook").value());
}

TEST(SimulatedMachine, OffMachineDrawsNothingServesNothing) {
  SimulatedMachine m(chromebook_spec(), 1);
  EXPECT_EQ(m.state(), MachineState::kOff);
  EXPECT_DOUBLE_EQ(m.observe_power(), 0.0);
  m.set_clients(10);
  EXPECT_DOUBLE_EQ(m.observe_throughput(), 0.0);
}

TEST(SimulatedMachine, BootReachesOnAfterTableDuration) {
  SimulatedMachine m(chromebook_spec(), 1);
  m.power_on();
  EXPECT_EQ(m.state(), MachineState::kBooting);
  for (int s = 0; s < 12; ++s) {
    EXPECT_GT(m.observe_power(), 0.0);  // boot draw is visible
    m.tick();
  }
  EXPECT_EQ(m.state(), MachineState::kOn);
}

TEST(SimulatedMachine, ThroughputSaturatesNearTruth) {
  MachineSpec spec = chromebook_spec();
  spec.throughput_noise = 0.0;
  SimulatedMachine m(spec, 1);
  m.power_on();
  while (m.state() != MachineState::kOn) m.tick();
  m.set_clients(1000);  // deep saturation
  EXPECT_NEAR(m.observe_throughput(), 33.0, 0.5);
  m.set_clients(4);  // half of saturation scale (4 clients, k=4)
  EXPECT_NEAR(m.observe_throughput(), 33.0 * 0.5, 0.5);
}

TEST(SimulatedMachine, PowerTracksLoad) {
  MachineSpec spec = chromebook_spec();
  spec.power_noise = 0.0;
  SimulatedMachine m(spec, 1);
  m.power_on();
  while (m.state() != MachineState::kOn) m.tick();
  m.set_clients(0);
  EXPECT_NEAR(m.observe_power(), 4.0, 1e-9);  // idle
  m.set_clients(1000);
  EXPECT_NEAR(m.observe_power(), 7.6, 0.05);  // near peak
}

TEST(SimulatedMachine, IllegalTransitionsThrow) {
  SimulatedMachine m(chromebook_spec(), 1);
  EXPECT_THROW(m.power_off(), std::logic_error);
  m.power_on();
  EXPECT_THROW(m.power_on(), std::logic_error);
  EXPECT_THROW(m.set_clients(-1), std::invalid_argument);
}

TEST(Wattmeter, AveragesOverWindow) {
  MachineSpec spec = chromebook_spec();
  spec.power_noise = 0.0;
  SimulatedMachine m(spec, 1);
  m.power_on();
  while (m.state() != MachineState::kOn) m.tick();
  EXPECT_NEAR(Wattmeter::average_power(m, 10.0), 4.0, 1e-9);
  EXPECT_NEAR(Wattmeter::energy(m, 10.0), 40.0, 1e-9);
  EXPECT_THROW((void)Wattmeter::average_power(m, 0.0), std::invalid_argument);
}

TEST(Profiler, MeasuresTransitionCosts) {
  Profiler profiler;
  SimulatedMachine m(chromebook_spec(), 2);
  const TransitionCost on = profiler.measure_on_cost(m);
  EXPECT_DOUBLE_EQ(on.duration, 12.0);
  EXPECT_NEAR(on.energy, 49.3, 49.3 * 0.1);  // within noise
  const TransitionCost off = profiler.measure_off_cost(m);
  EXPECT_DOUBLE_EQ(off.duration, 21.0);
  EXPECT_NEAR(off.energy, 77.6, 77.6 * 0.1);
}

TEST(Profiler, RampStopsAtSaturation) {
  Profiler profiler;
  SimulatedMachine m(chromebook_spec(), 3);
  m.power_on();
  while (m.state() != MachineState::kOn) m.tick();
  const auto steps = profiler.ramp(m);
  ASSERT_GE(steps.size(), 2u);
  // The last two steps differ by less than the saturation tolerance.
  const double prev = steps[steps.size() - 2].throughput;
  const double last = steps.back().throughput;
  EXPECT_LT((last - prev) / prev, profiler.options().saturation_tolerance);
}

TEST(Profiler, RecoverselTableOneWithinNoise) {
  Profiler profiler;
  const ArchitectureProfile truth =
      find_profile(real_catalog(), "chromebook").value();
  SimulatedMachine m(MachineSpec(truth), 4);
  const ArchitectureProfile measured = profiler.profile(m);
  EXPECT_EQ(m.state(), MachineState::kOff);  // left powered down
  EXPECT_NEAR(measured.max_perf(), truth.max_perf(),
              truth.max_perf() * 0.08);
  EXPECT_NEAR(measured.idle_power(), truth.idle_power(),
              truth.idle_power() * 0.08);
  EXPECT_NEAR(measured.max_power(), truth.max_power(),
              truth.max_power() * 0.08);
  EXPECT_DOUBLE_EQ(measured.on_cost().duration, truth.on_cost().duration);
}

TEST(Profiler, IntermediatePointsBuildPiecewiseProfile) {
  ProfilerOptions options;
  options.intermediate_points = 3;
  Profiler profiler(options);
  SimulatedMachine m(chromebook_spec(), 5);
  const ArchitectureProfile measured = profiler.profile(m);
  // The piecewise curve still spans idle to peak.
  EXPECT_NEAR(measured.idle_power(), 4.0, 0.5);
  EXPECT_NEAR(measured.max_perf(), 33.0, 3.0);
}

TEST(Profiler, OptionValidation) {
  ProfilerOptions bad;
  bad.test_duration = 0.0;
  EXPECT_THROW(Profiler{bad}, std::invalid_argument);
  ProfilerOptions bad2;
  bad2.repetitions = 0;
  EXPECT_THROW(Profiler{bad2}, std::invalid_argument);
  ProfilerOptions bad3;
  bad3.client_growth = 1.0;
  EXPECT_THROW(Profiler{bad3}, std::invalid_argument);
}

TEST(Profiler, LoadTestRequiresOnMachine) {
  Profiler profiler;
  SimulatedMachine m(chromebook_spec(), 6);
  EXPECT_THROW((void)profiler.run_load_test(m, 4), std::logic_error);
  EXPECT_THROW((void)profiler.measure_off_cost(m), std::logic_error);
}

}  // namespace
}  // namespace bml
