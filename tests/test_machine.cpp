// Tests for sim/machine: the Off/Booting/On/ShuttingDown FSM.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

ArchitectureProfile chromebook() {
  return ArchitectureProfile("chromebook", 33.0, 4.0, 7.6,
                             TransitionCost{12.0, 49.3},
                             TransitionCost{21.0, 77.6});
}

TEST(SimMachine, InitialStates) {
  SimMachine off(0);
  EXPECT_EQ(off.state(), MachineState::kOff);
  SimMachine on(0, MachineState::kOn);
  EXPECT_EQ(on.state(), MachineState::kOn);
  EXPECT_TRUE(on.serving());
  EXPECT_FALSE(off.serving());
  EXPECT_THROW(SimMachine(0, MachineState::kBooting), std::invalid_argument);
}

TEST(SimMachine, BootTakesOnDuration) {
  const ArchitectureProfile p = chromebook();
  SimMachine m(0);
  m.request_on(p);
  EXPECT_EQ(m.state(), MachineState::kBooting);
  EXPECT_FALSE(m.serving());
  int steps = 0;
  while (m.state() == MachineState::kBooting) {
    m.step();
    ++steps;
    ASSERT_LE(steps, 13);
  }
  EXPECT_EQ(steps, 12);  // Table I: Chromebook On duration 12 s
  EXPECT_EQ(m.state(), MachineState::kOn);
}

TEST(SimMachine, ShutdownTakesOffDuration) {
  const ArchitectureProfile p = chromebook();
  SimMachine m(0, MachineState::kOn);
  m.request_off(p);
  EXPECT_EQ(m.state(), MachineState::kShuttingDown);
  int steps = 0;
  while (m.state() == MachineState::kShuttingDown) {
    m.step();
    ++steps;
  }
  EXPECT_EQ(steps, 21);  // Table I: Chromebook Off duration 21 s
  EXPECT_EQ(m.state(), MachineState::kOff);
}

TEST(SimMachine, TransitionPowerIntegratesToTableEnergy) {
  const ArchitectureProfile p = chromebook();
  SimMachine m(0);
  m.request_on(p);
  double energy = 0.0;
  while (m.state() == MachineState::kBooting) {
    energy += m.transition_power(p) * 1.0;
    m.step();
  }
  EXPECT_NEAR(energy, 49.3, 1e-9);  // Table I OnE

  m.request_off(p);
  energy = 0.0;
  while (m.state() == MachineState::kShuttingDown) {
    energy += m.transition_power(p) * 1.0;
    m.step();
  }
  EXPECT_NEAR(energy, 77.6, 1e-9);  // Table I OffE
}

TEST(SimMachine, IllegalTransitionsThrow) {
  const ArchitectureProfile p = chromebook();
  SimMachine m(0);
  EXPECT_THROW(m.request_off(p), std::logic_error);
  m.request_on(p);
  EXPECT_THROW(m.request_on(p), std::logic_error);
  EXPECT_THROW(m.request_off(p), std::logic_error);  // still booting
}

TEST(SimMachine, ZeroDurationTransitionsAreInstant) {
  const ArchitectureProfile p("instant", 10.0, 1.0, 2.0, TransitionCost{},
                              TransitionCost{});
  SimMachine m(0);
  m.request_on(p);
  EXPECT_EQ(m.state(), MachineState::kOn);
  m.request_off(p);
  EXPECT_EQ(m.state(), MachineState::kOff);
}

TEST(SimMachine, StepReportsCompletion) {
  const ArchitectureProfile p("fast", 10.0, 1.0, 2.0, TransitionCost{2.0, 8.0},
                              TransitionCost{1.0, 1.0});
  SimMachine m(0);
  m.request_on(p);
  EXPECT_FALSE(m.step());  // 1 s remaining
  EXPECT_TRUE(m.step());   // completes now
  EXPECT_EQ(m.state(), MachineState::kOn);
  EXPECT_FALSE(m.step());  // steady state: no completion events
  EXPECT_THROW((void)m.step(0.0), std::invalid_argument);
}

TEST(SimMachine, StatesHaveNames) {
  EXPECT_STREQ(to_string(MachineState::kOff), "Off");
  EXPECT_STREQ(to_string(MachineState::kBooting), "Booting");
  EXPECT_STREQ(to_string(MachineState::kOn), "On");
  EXPECT_STREQ(to_string(MachineState::kShuttingDown), "ShuttingDown");
}

}  // namespace
}  // namespace bml
