// Tests for trace/synthetic: generators and their statistical shape.
#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(ConstantTrace, FlatAtRate) {
  const LoadTrace t = constant_trace(50.0, 100.0);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_DOUBLE_EQ(t.peak(), 50.0);
  EXPECT_DOUBLE_EQ(t.mean(), 50.0);
  EXPECT_THROW((void)constant_trace(-1.0, 10.0), std::invalid_argument);
}

TEST(StepTrace, SegmentsInOrder) {
  const LoadTrace t = step_trace({{10.0, 5.0}, {20.0, 3.0}});
  ASSERT_EQ(t.size(), 8u);
  EXPECT_DOUBLE_EQ(t.at(4), 10.0);
  EXPECT_DOUBLE_EQ(t.at(5), 20.0);
  EXPECT_THROW((void)step_trace({{-1.0, 5.0}}), std::invalid_argument);
}

TEST(DiurnalTrace, PeaksNearPeakHourTroughsOpposite) {
  DiurnalOptions options;
  options.peak = 1000.0;
  options.trough_fraction = 0.2;
  options.peak_hour = 18.0;
  options.noise = 0.0;
  const LoadTrace t = diurnal_trace(options, 1);
  const auto at_hour = [&t](double h) {
    return t.at(static_cast<TimePoint>(h * 3600.0));
  };
  EXPECT_NEAR(at_hour(18.0), 1000.0, 1.0);
  EXPECT_NEAR(at_hour(6.0), 200.0, 1.0);
  EXPECT_GT(at_hour(15.0), at_hour(9.0));
}

TEST(DiurnalTrace, DeterministicPerSeed) {
  DiurnalOptions options;
  options.noise = 0.05;
  options.seed = 11;
  const LoadTrace a = diurnal_trace(options, 1);
  const LoadTrace b = diurnal_trace(options, 1);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.at(static_cast<TimePoint>(i * 777)),
                     b.at(static_cast<TimePoint>(i * 777)));
}

TEST(DiurnalTrace, Validation) {
  DiurnalOptions bad;
  bad.peak = 0.0;
  EXPECT_THROW((void)diurnal_trace(bad, 1), std::invalid_argument);
  DiurnalOptions bad2;
  bad2.trough_fraction = 1.5;
  EXPECT_THROW((void)diurnal_trace(bad2, 1), std::invalid_argument);
}

TEST(FlashCrowdTrace, RampHoldDecay) {
  FlashCrowdOptions options;
  options.base = 10.0;
  options.burst_peak = 100.0;
  options.duration = 1000.0;
  options.burst_start = 200.0;
  options.ramp = 100.0;
  options.hold = 200.0;
  const LoadTrace t = flash_crowd_trace(options);
  EXPECT_DOUBLE_EQ(t.at(100), 10.0);            // before burst
  EXPECT_NEAR(t.at(250), 55.0, 1.0);            // mid ramp
  EXPECT_DOUBLE_EQ(t.at(400), 100.0);           // hold
  EXPECT_DOUBLE_EQ(t.at(900), 10.0);            // after decay
  EXPECT_DOUBLE_EQ(t.peak(), 100.0);
}

TEST(WorldCupTrace, ShapeInvariants) {
  WorldCupOptions options;
  options.days = 10;
  options.peak = 2000.0;
  options.tournament_start_day = 4;
  options.tournament_end_day = 9;
  options.seed = 3;
  const LoadTrace t = worldcup_like_trace(options);
  EXPECT_EQ(t.days(), 10u);
  // The realised maximum is pinned exactly to the requested peak.
  EXPECT_NEAR(t.peak(), 2000.0, 1e-6);
  // Pre-tournament days are far quieter than the finals.
  EXPECT_LT(t.day_peak(0), 0.35 * t.day_peak(9));
  // Tournament growth: late days beat early tournament days.
  EXPECT_GT(t.day_peak(9), t.day_peak(4));
}

TEST(WorldCupTrace, DeterministicPerSeed) {
  WorldCupOptions options;
  options.days = 2;
  options.seed = 5;
  const LoadTrace a = worldcup_like_trace(options);
  const LoadTrace b = worldcup_like_trace(options);
  for (std::size_t i = 0; i < a.size(); i += 9973)
    EXPECT_DOUBLE_EQ(a.at(static_cast<TimePoint>(i)),
                     b.at(static_cast<TimePoint>(i)));
  WorldCupOptions other = options;
  other.seed = 6;
  const LoadTrace c = worldcup_like_trace(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); i += 9973)
    if (a.at(static_cast<TimePoint>(i)) != c.at(static_cast<TimePoint>(i)))
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(WorldCupTrace, PoissonArrivalsRaiseShortTermVariance) {
  WorldCupOptions smooth;
  smooth.days = 1;
  smooth.poisson_arrivals = false;
  smooth.noise = 0.0;
  WorldCupOptions bursty = smooth;
  bursty.poisson_arrivals = true;
  const LoadTrace a = worldcup_like_trace(smooth);
  const LoadTrace b = worldcup_like_trace(bursty);
  // Compare second-to-second jitter around noon.
  auto jitter = [](const LoadTrace& t) {
    double sum = 0.0;
    const TimePoint base = 12 * 3600;
    for (TimePoint s = 0; s < 600; ++s)
      sum += std::abs(t.at(base + s + 1) - t.at(base + s));
    return sum;
  };
  EXPECT_GT(jitter(b), jitter(a) * 5.0);
}

TEST(WorldCupTrace, Validation) {
  WorldCupOptions bad;
  bad.days = 0;
  EXPECT_THROW((void)worldcup_like_trace(bad), std::invalid_argument);
  WorldCupOptions bad2;
  bad2.tournament_start_day = 5;
  bad2.tournament_end_day = 2;
  EXPECT_THROW((void)worldcup_like_trace(bad2), std::invalid_argument);
}

TEST(WorldCupTrace, MatchDaysShowEveningSurges) {
  WorldCupOptions options;
  options.days = 12;
  options.tournament_start_day = 8;
  options.tournament_end_day = 11;
  options.noise = 0.0;
  options.poisson_arrivals = false;
  const LoadTrace t = worldcup_like_trace(options);
  // On a tournament day, the 21:00 kick-off hour beats the 10:00 hour by
  // more than the diurnal shape alone explains on a pre-tournament day.
  const auto at = [&t](std::size_t day, double hour) {
    return t.at(static_cast<TimePoint>(day) * kSecondsPerDay +
                static_cast<TimePoint>(hour * 3600.0));
  };
  const double match_ratio = at(10, 21.5) / at(10, 10.0);
  const double quiet_ratio = at(2, 21.5) / at(2, 10.0);
  EXPECT_GT(match_ratio, quiet_ratio * 1.3);
}

}  // namespace
}  // namespace bml
