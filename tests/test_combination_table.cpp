// Tests for core/combination_table and the BML-linear reference.
#include "core/combination_table.hpp"

#include <gtest/gtest.h>

#include "core/candidate_filter.hpp"
#include "core/crossing.hpp"

namespace bml {
namespace {

struct TableFixture {
  Catalog candidates;
  GreedyThresholdSolver solver;

  TableFixture()
      : candidates([] {
          Catalog c = filter_candidates(real_catalog()).candidates;
          c.erase(c.begin() + 1);  // graphene
          return c;
        }()),
        solver(candidates, {529.0, 10.0, 1.0}) {}
};

TEST(CombinationTable, MatchesSolverOnGridPoints) {
  const TableFixture f;
  const CombinationTable table(f.solver, 300.0);
  for (double r : {0.0, 1.0, 9.0, 10.0, 100.0, 299.0, 300.0}) {
    EXPECT_EQ(table.combination(r), f.solver.solve(r)) << "rate " << r;
    EXPECT_NEAR(table.power(r), f.solver.power(r), 1e-9) << "rate " << r;
  }
}

TEST(CombinationTable, RoundsUpFractionalRates) {
  const TableFixture f;
  const CombinationTable table(f.solver, 20.0);
  // 9.5 rounds up to the 10 req/s entry (one chromebook), guaranteeing
  // capacity for the query rate.
  EXPECT_EQ(table.combination(9.5), f.solver.solve(10.0));
  EXPECT_GE(capacity(f.candidates, table.combination(9.5)), 9.5);
}

TEST(CombinationTable, RangeChecks) {
  const TableFixture f;
  const CombinationTable table(f.solver, 50.0);
  EXPECT_DOUBLE_EQ(table.max_rate(), 50.0);
  EXPECT_THROW((void)table.combination(50.5), std::out_of_range);
  EXPECT_THROW((void)table.combination(-1.0), std::invalid_argument);
}

TEST(CombinationTable, DistinctCombinationsBounded) {
  const TableFixture f;
  const CombinationTable table(f.solver, 200.0);
  const std::size_t distinct = table.distinct_combinations();
  EXPECT_GT(distinct, 1u);
  EXPECT_LE(distinct, 202u);
  // Far fewer distinct combinations than grid points: combinations repeat
  // across rate intervals (the reconfiguration state space is small).
  EXPECT_LT(distinct, 50u);
}

TEST(BmlLinearReference, EndpointsAndMidpoint) {
  // Little's idle (3.1 W) to Big's peak (200.5 W @ 1331 req/s).
  const BmlLinearReference ref(3.1, 200.5, 1331.0);
  EXPECT_DOUBLE_EQ(ref.power(0.0), 3.1);
  EXPECT_DOUBLE_EQ(ref.power(1331.0), 200.5);
  EXPECT_NEAR(ref.power(1331.0 / 2.0), (3.1 + 200.5) / 2.0, 1e-9);
  // Clamped outside the range.
  EXPECT_DOUBLE_EQ(ref.power(-10.0), 3.1);
  EXPECT_DOUBLE_EQ(ref.power(5000.0), 200.5);
}

TEST(BmlLinearReference, Validation) {
  EXPECT_THROW(BmlLinearReference(1.0, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BmlLinearReference(-1.0, 10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(BmlLinearReference(20.0, 10.0, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace bml
