// Tests for predict/predictor: the oracle window, reactive predictors, and
// error injection.
#include "predict/predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "trace/synthetic.hpp"

namespace bml {
namespace {

TEST(OracleMaxPredictor, MatchesNaiveWindowMax) {
  const LoadTrace trace({5.0, 1.0, 9.0, 2.0, 7.0, 3.0, 8.0, 0.0});
  OracleMaxPredictor oracle;
  for (TimePoint now = 0; now < 8; ++now) {
    const double naive = trace.max_over(now, now + 3);
    EXPECT_DOUBLE_EQ(oracle.predict(trace, now, 3.0), naive) << "t=" << now;
  }
}

TEST(OracleMaxPredictor, LargeTraceConsistency) {
  DiurnalOptions options;
  options.noise = 0.05;
  const LoadTrace trace = diurnal_trace(options, 1);
  OracleMaxPredictor oracle;
  for (TimePoint now : {0L, 100L, 5000L, 40000L, 86000L, 86399L}) {
    EXPECT_DOUBLE_EQ(oracle.predict(trace, now, 378.0),
                     trace.max_over(now, now + 378))
        << "t=" << now;
  }
}

TEST(OracleMaxPredictor, BeyondEndIsZero) {
  const LoadTrace trace({5.0});
  OracleMaxPredictor oracle;
  EXPECT_DOUBLE_EQ(oracle.predict(trace, 10, 5.0), 0.0);
}

TEST(OracleMaxPredictor, CacheInvalidatesOnHorizonChange) {
  const LoadTrace trace({1.0, 10.0, 2.0, 3.0});
  OracleMaxPredictor oracle;
  EXPECT_DOUBLE_EQ(oracle.predict(trace, 2, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(oracle.predict(trace, 2, 2.0), 3.0);
}

TEST(OracleMaxPredictor, Validation) {
  const LoadTrace trace({1.0});
  OracleMaxPredictor oracle;
  EXPECT_THROW((void)oracle.predict(trace, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)oracle.predict(trace, -1, 1.0), std::invalid_argument);
}

TEST(LastValuePredictor, ReadsOnlyHistory) {
  const LoadTrace trace({5.0, 7.0, 100.0});
  LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(trace, 0, 60.0), 0.0);  // no history yet
  EXPECT_DOUBLE_EQ(p.predict(trace, 1, 60.0), 5.0);
  EXPECT_DOUBLE_EQ(p.predict(trace, 2, 60.0), 7.0);  // blind to the spike
}

TEST(MovingMaxPredictor, TrailingWindow) {
  const LoadTrace trace({9.0, 1.0, 2.0, 3.0});
  MovingMaxPredictor p(2.0);
  EXPECT_DOUBLE_EQ(p.predict(trace, 0, 60.0), 0.0);
  EXPECT_DOUBLE_EQ(p.predict(trace, 1, 60.0), 9.0);
  EXPECT_DOUBLE_EQ(p.predict(trace, 3, 60.0), 2.0);  // window {1,2}
  EXPECT_THROW(MovingMaxPredictor(0.0), std::invalid_argument);
}

TEST(EwmaPredictor, ConvergesToConstantLoad) {
  const LoadTrace trace(std::vector<double>(100, 50.0));
  EwmaPredictor p(0.2, /*headroom=*/1.0);
  double last = 0.0;
  for (TimePoint t = 1; t <= 100; ++t) last = p.predict(trace, t, 60.0);
  EXPECT_NEAR(last, 50.0, 1e-6);
}

TEST(EwmaPredictor, HeadroomScalesOutput) {
  const LoadTrace trace(std::vector<double>(10, 100.0));
  EwmaPredictor p(1.0, 1.2);
  EXPECT_NEAR(p.predict(trace, 5, 60.0), 120.0, 1e-9);
}

TEST(EwmaPredictor, Validation) {
  EXPECT_THROW(EwmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(1.5), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(0.5, 0.0), std::invalid_argument);
}

TEST(LinearTrendPredictor, ExtrapolatesRisingLoad) {
  // Load rises 1 req/s every second; the horizon-end prediction must
  // exceed the last observation.
  std::vector<double> rates;
  for (int i = 0; i < 100; ++i) rates.push_back(static_cast<double>(i));
  const LoadTrace trace(rates);
  LinearTrendPredictor p(50.0);
  const double predicted = p.predict(trace, 100, 60.0);
  EXPECT_NEAR(predicted, 159.0, 2.0);  // 99 + 60 extrapolated
}

TEST(LinearTrendPredictor, FallingLoadNeverBelowLastValue) {
  std::vector<double> rates;
  for (int i = 0; i < 100; ++i) rates.push_back(100.0 - i);
  const LoadTrace trace(rates);
  LinearTrendPredictor p(50.0);
  EXPECT_GE(p.predict(trace, 100, 60.0), 1.0);
  EXPECT_THROW(LinearTrendPredictor(1.0), std::invalid_argument);
}

TEST(ErrorInjectingPredictor, ZeroSigmaZeroBiasIsIdentity) {
  const LoadTrace trace({5.0, 6.0, 7.0});
  ErrorInjectingPredictor p(std::make_unique<OracleMaxPredictor>(), 0.0, 0.0,
                            1);
  EXPECT_DOUBLE_EQ(p.predict(trace, 0, 3.0), 7.0);
  EXPECT_EQ(p.name(), "oracle-max+error");
}

TEST(ErrorInjectingPredictor, BiasShiftsPrediction) {
  const LoadTrace trace({100.0});
  ErrorInjectingPredictor p(std::make_unique<OracleMaxPredictor>(), 0.0, 0.2,
                            1);
  EXPECT_NEAR(p.predict(trace, 0, 1.0), 120.0, 1e-9);
}

TEST(ErrorInjectingPredictor, DeterministicPerSeed) {
  const LoadTrace trace(std::vector<double>(50, 10.0));
  ErrorInjectingPredictor a(std::make_unique<OracleMaxPredictor>(), 0.3, 0.0,
                            9);
  ErrorInjectingPredictor b(std::make_unique<OracleMaxPredictor>(), 0.3, 0.0,
                            9);
  for (TimePoint t = 0; t < 20; ++t)
    EXPECT_DOUBLE_EQ(a.predict(trace, t, 5.0), b.predict(trace, t, 5.0));
}

TEST(ErrorInjectingPredictor, NeverNegative) {
  const LoadTrace trace(std::vector<double>(200, 1.0));
  ErrorInjectingPredictor p(std::make_unique<OracleMaxPredictor>(), 3.0, 0.0,
                            4);
  for (TimePoint t = 0; t < 200; ++t)
    EXPECT_GE(p.predict(trace, t, 5.0), 0.0);
}

TEST(ErrorInjectingPredictor, Validation) {
  EXPECT_THROW(
      ErrorInjectingPredictor(nullptr, 0.1, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(ErrorInjectingPredictor(std::make_unique<OracleMaxPredictor>(),
                                       -0.1, 0.0, 1),
               std::invalid_argument);
}

// Property behind the event-driven fast path: predict() must be constant
// on [now, stable_until(now)) — verified brute force against per-second
// queries. Both predictors under test are pure, so probing them at every
// second is side-effect free.
void expect_stability_sound(Predictor& p, const LoadTrace& trace,
                            Seconds horizon) {
  const auto n = static_cast<TimePoint>(trace.size());
  for (TimePoint now = 0; now < n;) {
    const TimePoint stable = p.stable_until(trace, now, horizon);
    ASSERT_GT(stable, now) << "stable_until must advance, t=" << now;
    const double value = p.predict(trace, now, horizon);
    const TimePoint end = std::min(stable, n + 10);
    for (TimePoint t = now + 1; t < end; ++t)
      ASSERT_DOUBLE_EQ(p.predict(trace, t, horizon), value)
          << "span [" << now << ", " << stable << ") broke at t=" << t;
    now = end;
  }
}

TEST(MovingMaxPredictor, StableUntilIsSoundOnStepTrace) {
  const LoadTrace trace = step_trace({{40.0, 300.0},
                                      {900.0, 200.0},
                                      {900.0, 100.0},
                                      {30.0, 400.0},
                                      {0.0, 150.0},
                                      {500.0, 250.0}});
  MovingMaxPredictor p(120.0);
  expect_stability_sound(p, trace, 60.0);
}

TEST(MovingMaxPredictor, StableUntilIsSoundOnSpikyTrace) {
  std::vector<double> rates(600, 10.0);
  rates[50] = 800.0;            // isolated spike enters and leaves the window
  rates[51] = 800.0;
  for (int i = 300; i < 310; ++i) rates[i] = 200.0 + i;  // noisy burst
  MovingMaxPredictor p(90.0);
  expect_stability_sound(p, LoadTrace(rates), 30.0);
}

/// `n_alternating` one-second segments (1, 2, 1, 2, ...) followed by a
/// zero tail — every second in the alternating prefix is its own
/// run-length segment, which pins the 64-segment walk cap exactly.
LoadTrace alternating_then_zero(int n_alternating, Seconds tail) {
  std::vector<StepSegment> segments;
  for (int i = 0; i < n_alternating; ++i)
    segments.push_back({i % 2 == 1 ? 2.0 : 1.0, 1.0});
  segments.push_back({0.0, tail});
  return step_trace(segments);
}

TEST(MovingMaxPredictor, SegmentCapBoundaryExactly64SegmentsBatches) {
  // Window [0, 64) holds exactly 64 segments: the walk completes and the
  // bound is real — the trailing max stays 2 until the last 2 (t = 63)
  // slides out of the window at t = 63 + 64 + 1 = 128.
  MovingMaxPredictor p(64.0);
  const LoadTrace trace = alternating_then_zero(64, 300.0);
  EXPECT_EQ(p.stable_until(trace, 64, 1.0), 128);
}

TEST(MovingMaxPredictor, SegmentCapBoundary65SegmentsDegradesToPerSecond) {
  // One segment past the cap: the walk bails out and the bound degrades
  // gracefully to now + 1 (per-second querying).
  MovingMaxPredictor p(65.0);
  const LoadTrace trace = alternating_then_zero(65, 300.0);
  EXPECT_EQ(p.stable_until(trace, 65, 1.0), 66);
}

TEST(MovingMaxPredictor, StableUntilIsSoundOnNoisyTrace) {
  // A per-second-varying window (hundreds of segments): the cap forces
  // now + 1 in the noisy stretches, which must still be sound.
  DiurnalOptions options;
  options.peak = 400.0;
  options.noise = 0.3;
  options.seed = 13;
  LoadTrace day = diurnal_trace(options, 1);
  std::vector<double> rates;
  for (std::size_t t = 0; t < 900; ++t)
    rates.push_back(day.at(static_cast<TimePoint>(t)));
  MovingMaxPredictor p(90.0);
  expect_stability_sound(p, LoadTrace(rates), 30.0);
}

TEST(SeasonalPredictor, StableUntilIsSoundOnNoisyTrace) {
  DiurnalOptions options;
  options.peak = 300.0;
  options.noise = 0.25;
  options.seed = 19;
  LoadTrace day = diurnal_trace(options, 1);
  std::vector<double> rates;
  for (std::size_t t = 0; t < 1500; ++t)
    rates.push_back(day.at(static_cast<TimePoint>(t)));
  SeasonalPredictor p(/*period=*/600.0, /*headroom=*/1.1);
  expect_stability_sound(p, LoadTrace(rates), 50.0);
}

TEST(LastValuePredictor, StableUntilTracksTraceChanges) {
  const LoadTrace trace = step_trace({{10.0, 5.0}, {20.0, 5.0}});
  LastValuePredictor p;
  // predict(t) reads at(t - 1): the value observed at t = 3 (10.0) holds
  // until one second after the trace steps at t = 5.
  EXPECT_EQ(p.stable_until(trace, 3, 1.0), 6);
  expect_stability_sound(p, trace, 1.0);
}

TEST(MovingMaxPredictor, StableForeverOnceTraceDrained) {
  const LoadTrace trace = step_trace({{700.0, 100.0}, {0.0, 100.0}});
  MovingMaxPredictor p(50.0);
  // Far beyond the end the window holds only implicit zeros.
  EXPECT_EQ(p.stable_until(trace, 1000, 30.0),
            std::numeric_limits<TimePoint>::max());
}

TEST(SeasonalPredictor, StableUntilIsSoundAcrossPeriods) {
  // Two short "days" of a staircase plus a third with a growth spike, with
  // a period small enough that the warm-up branch, the period switch and
  // the growth-ratio windows are all exercised.
  std::vector<StepSegment> segments;
  for (int day = 0; day < 3; ++day)
    for (int hour = 0; hour < 6; ++hour)
      segments.push_back({50.0 + 40.0 * hour * (day + 1), 100.0});
  const LoadTrace trace = step_trace(segments);
  SeasonalPredictor p(/*period=*/600.0, /*headroom=*/1.1);
  expect_stability_sound(p, trace, 50.0);
}

// Property: the oracle prediction always covers the true load at every
// second inside the window — the guarantee the scheduler's QoS rests on.
class OracleCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleCoverage, PredictionCoversWindow) {
  DiurnalOptions options;
  options.noise = 0.1;
  options.seed = GetParam();
  const LoadTrace trace = diurnal_trace(options, 1);
  OracleMaxPredictor oracle;
  for (TimePoint t = 0; t < 86400; t += 1009) {
    const double predicted = oracle.predict(trace, t, 378.0);
    for (TimePoint s = t; s < t + 378 && s < 86400; s += 41)
      ASSERT_GE(predicted, trace.at(s)) << "t=" << t << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleCoverage,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace bml
