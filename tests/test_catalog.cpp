// Tests for arch/catalog: built-in catalogs and CSV round-trip.
#include "arch/catalog.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(RealCatalog, MatchesTableOne) {
  const Catalog c = real_catalog();
  ASSERT_EQ(c.size(), 5u);

  const auto paravance = find_profile(c, "paravance");
  ASSERT_TRUE(paravance.has_value());
  EXPECT_DOUBLE_EQ(paravance->max_perf(), 1331.0);
  EXPECT_DOUBLE_EQ(paravance->idle_power(), 69.9);
  EXPECT_DOUBLE_EQ(paravance->max_power(), 200.5);
  EXPECT_DOUBLE_EQ(paravance->on_cost().duration, 189.0);
  EXPECT_DOUBLE_EQ(paravance->on_cost().energy, 21341.0);
  EXPECT_DOUBLE_EQ(paravance->off_cost().duration, 10.0);
  EXPECT_DOUBLE_EQ(paravance->off_cost().energy, 657.0);

  const auto raspberry = find_profile(c, "raspberry");
  ASSERT_TRUE(raspberry.has_value());
  EXPECT_DOUBLE_EQ(raspberry->max_perf(), 9.0);
  EXPECT_DOUBLE_EQ(raspberry->idle_power(), 3.1);
  EXPECT_DOUBLE_EQ(raspberry->max_power(), 3.7);

  const auto taurus = find_profile(c, "taurus");
  ASSERT_TRUE(taurus.has_value());
  EXPECT_DOUBLE_EQ(taurus->max_power(), 223.7);

  const auto chromebook = find_profile(c, "chromebook");
  ASSERT_TRUE(chromebook.has_value());
  EXPECT_DOUBLE_EQ(chromebook->on_cost().energy, 49.3);
}

TEST(RealCatalog, TaurusIsDominatedByParavance) {
  const Catalog c = real_catalog();
  const auto paravance = find_profile(c, "paravance").value();
  const auto taurus = find_profile(c, "taurus").value();
  EXPECT_LT(taurus.max_perf(), paravance.max_perf());
  EXPECT_GT(taurus.max_power(), paravance.max_power());
}

TEST(IllustrativeCatalog, MatchesFigureOneNarrative) {
  const Catalog c = illustrative_catalog();
  ASSERT_EQ(c.size(), 4u);
  const auto a = find_profile(c, "arch-A").value();
  const auto d = find_profile(c, "arch-D").value();
  // D must be dominated by A: less performance, more peak power.
  EXPECT_LT(d.max_perf(), a.max_perf());
  EXPECT_GT(d.max_power(), a.max_power());
  // Five Little nodes must cover the ~150 req/s crossing region.
  const auto little = find_profile(c, "arch-C").value();
  EXPECT_DOUBLE_EQ(little.max_perf() * 5, 150.0);
}

TEST(FindProfile, MissingReturnsNullopt) {
  EXPECT_FALSE(find_profile(real_catalog(), "cray-1").has_value());
}

TEST(CatalogCsv, RoundTripPreservesValues) {
  const Catalog original = real_catalog();
  const Catalog parsed = catalog_from_csv(catalog_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].name(), original[i].name());
    EXPECT_NEAR(parsed[i].max_perf(), original[i].max_perf(), 1e-6);
    EXPECT_NEAR(parsed[i].idle_power(), original[i].idle_power(), 1e-6);
    EXPECT_NEAR(parsed[i].max_power(), original[i].max_power(), 1e-6);
    EXPECT_NEAR(parsed[i].on_cost().energy, original[i].on_cost().energy,
                1e-6);
    EXPECT_NEAR(parsed[i].off_cost().duration,
                original[i].off_cost().duration, 1e-6);
  }
}

TEST(CatalogCsv, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "bml_catalog_test.csv";
  save_catalog(illustrative_catalog(), path);
  const Catalog loaded = load_catalog(path);
  EXPECT_EQ(loaded.size(), 4u);
  EXPECT_TRUE(find_profile(loaded, "arch-B").has_value());
  std::filesystem::remove(path);
}

TEST(CatalogCsv, RejectsMalformedInput) {
  EXPECT_THROW((void)catalog_from_csv("name,max_perf\nx,notanumber\n"),
               std::exception);
}

}  // namespace
}  // namespace bml
