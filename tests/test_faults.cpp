// Tests for fault injection (sim/cluster FaultModel): the boot-path
// channel (jittered / retried boots) and the runtime crash/repair channel
// (per-(domain, arch) MTBF/MTTR renewal processes, sim/fault_timeline.hpp)
// — machine FSM transitions, timeline determinism, self-healing, and the
// availability / lost-capacity accounting.
#include <gtest/gtest.h>

#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/fault_timeline.hpp"
#include "sim/machine.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

Catalog candidates() {
  return BmlDesign::build(real_catalog()).candidates();
}

TEST(FaultModel, InactiveByDefault) {
  const FaultModel none;
  EXPECT_FALSE(none.active());
  FaultModel jitter;
  jitter.boot_time_jitter = 0.2;
  EXPECT_TRUE(jitter.active());
}

TEST(FaultModel, ClusterValidatesParameters) {
  FaultModel bad;
  bad.boot_failure_prob = 1.5;
  EXPECT_THROW(Cluster(candidates(), {}, bad), std::invalid_argument);
  FaultModel bad2;
  bad2.boot_time_jitter = -0.1;
  EXPECT_THROW(Cluster(candidates(), {}, bad2), std::invalid_argument);
}

TEST(FaultInjection, JitteredBootsDeviateFromNominal) {
  FaultModel faults;
  faults.boot_time_jitter = 0.3;
  faults.seed = 42;
  Cluster cluster(candidates(), {}, faults);
  // Boot several chromebooks (nominal 12 s); with sigma 0.3 at least one
  // must finish off the nominal second.
  cluster.switch_on(1, 8);
  std::vector<int> completions;
  for (int s = 1; s <= 40 && cluster.transitioning(); ++s) {
    const int done = cluster.step();
    for (int i = 0; i < done; ++i) completions.push_back(s);
  }
  ASSERT_EQ(completions.size(), 8u);
  bool any_off_nominal = false;
  for (int s : completions)
    if (s != 12) any_off_nominal = true;
  EXPECT_TRUE(any_off_nominal);
}

TEST(FaultInjection, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FaultModel faults;
    faults.boot_time_jitter = 0.25;
    faults.boot_failure_prob = 0.2;
    faults.seed = seed;
    Cluster cluster(candidates(), {}, faults);
    cluster.switch_on(0, 3);
    int seconds = 0;
    while (cluster.transitioning()) {
      cluster.step();
      ++seconds;
    }
    return seconds;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(FaultInjection, RetriesLengthenBoots) {
  FaultModel faults;
  faults.boot_time_jitter = 0.0;
  faults.boot_failure_prob = 1.0;  // every boot fails once
  faults.seed = 1;
  Cluster cluster(candidates(), {}, faults);
  cluster.switch_on(1, 1);  // chromebook: nominal 12 s -> 24 s with retry
  int seconds = 0;
  while (cluster.transitioning()) {
    cluster.step();
    ++seconds;
  }
  EXPECT_EQ(seconds, 24);
}

// ------------------------------------------------- runtime crash/repair

TEST(FaultModel, RuntimeChannelActivation) {
  FaultModel model;
  EXPECT_FALSE(model.runtime_active());
  model.mtbf = 3600.0;
  EXPECT_TRUE(model.runtime_active());
  model.mtbf = 0.0;
  model.mtbf_per_arch = {0.0, 7200.0};
  EXPECT_TRUE(model.runtime_active());
  EXPECT_DOUBLE_EQ(model.arch_mtbf(1), 7200.0);
  EXPECT_DOUBLE_EQ(model.arch_mtbf(0), 0.0);  // falls back to the scalar
  model.mttr = 60.0;
  EXPECT_DOUBLE_EQ(model.arch_mttr(1), 60.0);
}

TEST(FaultModel, ClusterValidatesRuntimeParameters) {
  FaultModel bad;
  bad.mtbf = -1.0;
  EXPECT_THROW(Cluster(candidates(), {}, bad), std::invalid_argument);
  FaultModel bad2;
  bad2.mttr = -0.5;
  EXPECT_THROW(Cluster(candidates(), {}, bad2), std::invalid_argument);
  FaultModel bad3;
  bad3.mtbf_per_arch.assign(candidates().size() + 1, 100.0);
  EXPECT_THROW(Cluster(candidates(), {}, bad3), std::invalid_argument);
  FaultModel bad4;
  bad4.mttr_per_arch = {-3.0};
  EXPECT_THROW(Cluster(candidates(), {}, bad4), std::invalid_argument);
}

TEST(SimMachine, FailAndRepairTransitions) {
  SimMachine machine(0, MachineState::kOn);
  machine.fail();
  EXPECT_EQ(machine.state(), MachineState::kFailed);
  EXPECT_FALSE(machine.serving());
  EXPECT_STREQ(to_string(machine.state()), "Failed");
  // Failed machines draw no transition power and do not advance on step.
  const ArchitectureProfile& profile = candidates().front();
  EXPECT_DOUBLE_EQ(machine.transition_power(profile), 0.0);
  EXPECT_FALSE(machine.step(10.0));
  EXPECT_EQ(machine.state(), MachineState::kFailed);
  machine.repair();
  EXPECT_EQ(machine.state(), MachineState::kOff);
  // Illegal transitions throw.
  EXPECT_THROW(machine.fail(), std::logic_error);    // Off machines cannot fail
  EXPECT_THROW(machine.repair(), std::logic_error);  // nothing to repair
}

TEST(Cluster, FailOneAndRepairOneKeepCountsInSync) {
  Cluster cluster(candidates(), Combination({2}));
  const ReqRate full = cluster.on_capacity();
  ASSERT_TRUE(cluster.fail_one(0));
  EXPECT_EQ(cluster.on_count(0), 1);
  EXPECT_EQ(cluster.failed_count(), 1);
  EXPECT_LT(cluster.on_capacity(), full);
  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_EQ(snap.failed.count(0), 1);
  EXPECT_EQ(snap.on.count(0), 1);
  // Nothing of arch 1 is On: the strike misses.
  EXPECT_FALSE(cluster.fail_one(1));
  // Repair returns the machine to Off — and the free list reuses it.
  cluster.repair_one(0);
  EXPECT_EQ(cluster.failed_count(), 0);
  const std::size_t provisioned = cluster.machine_count();
  cluster.switch_on(0, 1);
  EXPECT_EQ(cluster.machine_count(), provisioned);  // reused, not provisioned
  EXPECT_THROW(cluster.repair_one(0), std::logic_error);
}

TEST(FaultTimeline, DeterministicPerSeedAndIndependentPerDomain) {
  FaultModel model;
  model.mtbf = 1000.0;
  model.mttr = 300.0;
  model.seed = 42;
  auto drain = [](FaultTimeline timeline) {
    std::vector<FaultEvent> events;
    TimePoint t = 0;
    while (events.size() < 20 && timeline.next_event() != FaultTimeline::kNever) {
      t = timeline.next_event();
      while (auto e = timeline.pop(t)) events.push_back(*e);
    }
    return events;
  };
  const auto a = drain(FaultTimeline(model, 2, 2));
  const auto b = drain(FaultTimeline(model, 2, 2));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].domain, b[i].domain);
    EXPECT_EQ(a[i].arch, b[i].arch);
    EXPECT_EQ(a[i].repair_seconds, b[i].repair_seconds);
  }
  // The two domains' streams are distinct (golden-ratio seeding).
  bool differs = false;
  for (const FaultEvent& x : a)
    for (const FaultEvent& y : a)
      if (x.domain != y.domain && x.arch == y.arch && x.time != y.time)
        differs = true;
  EXPECT_TRUE(differs);
  // A different seed reshuffles the timeline.
  FaultModel other = model;
  other.seed = 43;
  const auto c = drain(FaultTimeline(other, 2, 2));
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().time, c.front().time);
  // Inactive models produce no events.
  EXPECT_EQ(FaultTimeline(FaultModel{}, 2, 2).next_event(),
            FaultTimeline::kNever);
}

TEST(FaultTimeline, GroupStreamsDoNotPerturbMachineStreams) {
  FaultModel model;
  model.mtbf = 1000.0;
  model.mttr = 300.0;
  model.seed = 42;
  FaultModel grouped = model;
  grouped.groups = 3;
  grouped.group_mtbf = 1500.0;
  grouped.group_mttr = 400.0;
  auto drain = [](FaultTimeline timeline) {
    std::vector<FaultEvent> events;
    while (events.size() < 40 &&
           timeline.next_event() != FaultTimeline::kNever) {
      const TimePoint t = timeline.next_event();
      while (auto e = timeline.pop(t)) events.push_back(*e);
    }
    return events;
  };
  const auto plain = drain(FaultTimeline(model, 2, 2));
  const auto mixed = drain(FaultTimeline(grouped, 2, 2));
  // The grouped timeline interleaves rack strikes...
  std::vector<FaultEvent> machine_only;
  bool saw_group = false;
  for (const FaultEvent& e : mixed) {
    if (e.group_strike) {
      saw_group = true;
      EXPECT_LT(e.group, 3u);
    } else {
      machine_only.push_back(e);
    }
  }
  EXPECT_TRUE(saw_group);
  // ...but the machine streams are byte-identical to the ungrouped model:
  // group streams continue the seeding key space instead of reusing it.
  ASSERT_LE(machine_only.size(), plain.size());
  for (std::size_t i = 0; i < machine_only.size(); ++i) {
    EXPECT_EQ(machine_only[i].time, plain[i].time);
    EXPECT_EQ(machine_only[i].domain, plain[i].domain);
    EXPECT_EQ(machine_only[i].arch, plain[i].arch);
    EXPECT_EQ(machine_only[i].repair_seconds, plain[i].repair_seconds);
  }
  // Group-only models are active and emit only rack strikes.
  FaultModel group_only;
  group_only.groups = 2;
  group_only.group_mtbf = 800.0;
  group_only.group_mttr = 200.0;
  group_only.seed = 7;
  EXPECT_TRUE(group_only.group_active());
  EXPECT_TRUE(group_only.runtime_active());
  const auto racks = drain(FaultTimeline(group_only, 2, 1));
  ASSERT_FALSE(racks.empty());
  for (const FaultEvent& e : racks) EXPECT_TRUE(e.group_strike);
  // Determinism: a second drain reproduces the first.
  const auto again = drain(FaultTimeline(grouped, 2, 2));
  ASSERT_EQ(again.size(), mixed.size());
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(again[i].time, mixed[i].time);
    EXPECT_EQ(again[i].group_strike, mixed[i].group_strike);
  }
}

TEST(FaultTimeline, CrewQueueSerialisesRepairs) {
  // One crew, two landed failures: the second repair waits for the first
  // crew to free up, so its completion lands at first-completion + its
  // own duration, not at its own enqueue + duration.
  FaultModel model;
  model.crews = 1;
  FaultTimeline limited(model, 2, 1);
  limited.schedule_repair(/*now=*/10, /*duration=*/100, 0, 0);
  limited.schedule_repair(/*now=*/20, /*duration=*/50, 0, 1);
  EXPECT_EQ(limited.queued_repairs(), 1u);
  EXPECT_EQ(limited.next_event(), 110);
  auto first = limited.pop(110);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->repair);
  EXPECT_EQ(first->arch, 0u);
  EXPECT_EQ(limited.queued_repairs(), 0u);
  EXPECT_EQ(limited.next_event(), 160);  // 110 + 50, not 20 + 50
  auto second = limited.pop(160);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->arch, 1u);
  EXPECT_EQ(limited.next_event(), FaultTimeline::kNever);

  // crews = 0 is unlimited: both repairs run in parallel, completions at
  // enqueue + duration — exactly the pre-crew behaviour. (A default model
  // has no streams, but the repair queue works for any landed failure.)
  FaultTimeline unlimited(FaultModel{}, 2, 1);
  unlimited.schedule_repair(10, 100, 0, 0);
  unlimited.schedule_repair(20, 50, 0, 1);
  EXPECT_EQ(unlimited.queued_repairs(), 0u);
  EXPECT_EQ(unlimited.next_event(), 70);
  auto para = unlimited.pop(70);
  ASSERT_TRUE(para.has_value());
  EXPECT_EQ(para->arch, 1u);
  EXPECT_EQ(unlimited.next_event(), 110);
}

TEST(FaultModel, ClusterValidatesGroupAndCrewParameters) {
  FaultModel bad;
  bad.groups = -1;
  EXPECT_THROW(Cluster(candidates(), {}, bad), std::invalid_argument);
  FaultModel bad2;
  bad2.group_mtbf = -1.0;
  EXPECT_THROW(Cluster(candidates(), {}, bad2), std::invalid_argument);
  FaultModel bad3;
  bad3.group_mttr = -2.0;
  EXPECT_THROW(Cluster(candidates(), {}, bad3), std::invalid_argument);
  FaultModel bad4;
  bad4.crews = -1;
  EXPECT_THROW(Cluster(candidates(), {}, bad4), std::invalid_argument);
  // Zero-rate group config stays inactive.
  FaultModel idle;
  idle.groups = 4;
  idle.group_mtbf = 0.0;
  EXPECT_FALSE(idle.group_active());
  EXPECT_FALSE(idle.runtime_active());
}

/// Shared runtime-fault scenario: steady load on the real catalog with
/// failures frequent enough to land several times a day.
SimulationResult run_faulty(std::uint64_t seed, bool event_driven = true) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  const LoadTrace trace = constant_trace(2000.0, 86'400.0);
  SimulatorOptions options;
  options.event_driven = event_driven;
  options.faults.mtbf = 3600.0;
  options.faults.mttr = 900.0;
  options.faults.seed = seed;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  return simulator.run(scheduler, trace);
}

TEST(RuntimeFaults, FailuresLandRepairAndSelfHeal) {
  const SimulationResult r = run_faulty(7);
  EXPECT_GT(r.machine_failures, 0);
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability, 0.0);
  EXPECT_GT(r.unavailable_seconds, 0);
  EXPECT_GT(r.lost_capacity, 0.0);
  // Self-healing replaced felled machines: reconfigurations happened even
  // though the load (and thus the scheduler's proposal) never changed.
  EXPECT_GT(r.reconfigurations, 0);
  // The replacement boots bound the outage: the service still served the
  // overwhelming majority of requests.
  EXPECT_GT(r.qos.served_fraction(), 0.9);
}

TEST(RuntimeFaults, IdenticalSeedIdenticalTimeline) {
  const SimulationResult a = run_faulty(11);
  const SimulationResult b = run_faulty(11);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.unavailable_seconds, b.unavailable_seconds);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(a.qos.violation_seconds, b.qos.violation_seconds);
  EXPECT_EQ(a.compute_energy, b.compute_energy);  // bitwise
  EXPECT_EQ(a.lost_capacity, b.lost_capacity);
  const SimulationResult c = run_faulty(12);
  EXPECT_NE(a.unavailable_seconds, c.unavailable_seconds);
}

TEST(RuntimeFaults, ZeroRateIsExactlyFaultFree) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  const LoadTrace trace = step_trace({{200.0, 1800.0}, {2300.0, 1800.0}});
  SimulatorOptions faulty;
  faulty.faults.mtbf = 0.0;  // configured struct, zero rate
  faulty.faults.mttr = 500.0;
  const Simulator sim_faulty(design->candidates(), faulty);
  const Simulator sim_plain(design->candidates());
  BmlScheduler s1(design, std::make_shared<OracleMaxPredictor>());
  BmlScheduler s2(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult a = sim_faulty.run(s1, trace);
  const SimulationResult b = sim_plain.run(s2, trace);
  EXPECT_EQ(a.compute_energy, b.compute_energy);  // bitwise
  EXPECT_EQ(a.reconfiguration_energy, b.reconfiguration_energy);
  EXPECT_EQ(a.machine_failures, 0);
  EXPECT_DOUBLE_EQ(a.availability, 1.0);
  EXPECT_EQ(a.unavailable_seconds, 0);
}

TEST(RuntimeFaults, EventLogRecordsFailuresAndRepairs) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  const LoadTrace trace = constant_trace(2000.0, 43'200.0);
  SimulatorOptions options;
  options.faults.mtbf = 1800.0;
  options.faults.mttr = 600.0;
  options.faults.seed = 3;
  options.record_events = true;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r = simulator.run(scheduler, trace);
  ASSERT_GT(r.machine_failures, 0);
  EXPECT_EQ(r.events.count(EventKind::kMachineFailure),
            static_cast<std::size_t>(r.machine_failures));
  EXPECT_GT(r.events.count(EventKind::kMachineRepair), 0u);
}

TEST(RuntimeFaults, GroupStrikesFellMachinesAndAreLogged) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  const LoadTrace trace = constant_trace(2000.0, 86'400.0);
  SimulatorOptions options;
  options.faults.groups = 2;
  options.faults.group_mtbf = 7200.0;
  options.faults.group_mttr = 900.0;
  options.faults.seed = 5;
  options.record_events = true;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r = simulator.run(scheduler, trace);
  ASSERT_GT(r.group_strikes, 0);
  // Every casualty of a rack strike also counts as a machine failure, and
  // a stripe typically holds more than one machine.
  EXPECT_GE(r.machine_failures, r.group_strikes);
  EXPECT_EQ(r.events.count(EventKind::kGroupStrike),
            static_cast<std::size_t>(r.group_strikes));
  EXPECT_GT(r.unavailable_seconds, 0);
  // Determinism: same seed, same rack-strike history.
  BmlScheduler scheduler2(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r2 = simulator.run(scheduler2, trace);
  EXPECT_EQ(r.group_strikes, r2.group_strikes);
  EXPECT_EQ(r.machine_failures, r2.machine_failures);
  EXPECT_EQ(r.compute_energy, r2.compute_energy);  // bitwise
}

TEST(RuntimeFaults, SloFeedbackRecordsSpareEventsAndEnergy) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  const LoadTrace trace = constant_trace(1800.0, 86'400.0);
  SimulatorOptions options;
  options.faults.groups = 2;
  options.faults.group_mtbf = 3.0 * 3600.0;
  options.faults.group_mttr = 1800.0;
  options.faults.seed = 19;
  options.slo_window = 7200.0;
  options.record_events = true;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  Workload app;
  app.name = "web";
  app.trace = trace;
  app.scheduler = std::make_unique<BmlScheduler>(
      design, std::make_shared<OracleMaxPredictor>());
  app.slo_availability = 0.999;  // 7.2 s budget in the 7200 s window
  std::vector<Workload> apps;
  apps.push_back(std::move(app));
  const MultiSimulationResult r = simulator.run(apps);
  ASSERT_GT(r.total.group_strikes, 0);
  EXPECT_GT(r.total.spare_seconds, 0);
  EXPECT_GT(r.total.spare_energy, 0.0);
  // Spare energy is an attribution overlay inside compute_energy, never
  // on top of it.
  EXPECT_LT(r.total.spare_energy, r.total.compute_energy);
  EXPECT_GT(r.total.events.count(EventKind::kSpareProvision), 0u);
  EXPECT_GT(r.total.events.count(EventKind::kSpareRelease), 0u);
  ASSERT_EQ(r.apps.size(), 1u);
  EXPECT_EQ(r.apps[0].spare_seconds, r.total.spare_seconds);
  EXPECT_EQ(r.apps[0].spare_energy, r.total.spare_energy);
}

TEST(FaultInjection, SimulationSurvivesJitterWithPaperWindow) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  WorldCupOptions trace_options;
  trace_options.days = 1;
  trace_options.peak = 3000.0;
  const LoadTrace trace = worldcup_like_trace(trace_options);

  SimulatorOptions options;
  options.faults.boot_time_jitter = 0.2;
  options.faults.boot_failure_prob = 0.02;
  options.faults.seed = 3;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r = simulator.run(scheduler, trace);
  // The 2x window absorbs moderate boot jitter: QoS stays near-perfect.
  EXPECT_GT(r.qos.served_fraction(), 0.999);
  EXPECT_GT(r.reconfigurations, 0);
}

}  // namespace
}  // namespace bml
