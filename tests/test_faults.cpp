// Tests for boot-path fault injection (sim/cluster FaultModel).
#include <gtest/gtest.h>

#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

Catalog candidates() {
  return BmlDesign::build(real_catalog()).candidates();
}

TEST(FaultModel, InactiveByDefault) {
  const FaultModel none;
  EXPECT_FALSE(none.active());
  FaultModel jitter;
  jitter.boot_time_jitter = 0.2;
  EXPECT_TRUE(jitter.active());
}

TEST(FaultModel, ClusterValidatesParameters) {
  FaultModel bad;
  bad.boot_failure_prob = 1.5;
  EXPECT_THROW(Cluster(candidates(), {}, bad), std::invalid_argument);
  FaultModel bad2;
  bad2.boot_time_jitter = -0.1;
  EXPECT_THROW(Cluster(candidates(), {}, bad2), std::invalid_argument);
}

TEST(FaultInjection, JitteredBootsDeviateFromNominal) {
  FaultModel faults;
  faults.boot_time_jitter = 0.3;
  faults.seed = 42;
  Cluster cluster(candidates(), {}, faults);
  // Boot several chromebooks (nominal 12 s); with sigma 0.3 at least one
  // must finish off the nominal second.
  cluster.switch_on(1, 8);
  std::vector<int> completions;
  for (int s = 1; s <= 40 && cluster.transitioning(); ++s) {
    const int done = cluster.step();
    for (int i = 0; i < done; ++i) completions.push_back(s);
  }
  ASSERT_EQ(completions.size(), 8u);
  bool any_off_nominal = false;
  for (int s : completions)
    if (s != 12) any_off_nominal = true;
  EXPECT_TRUE(any_off_nominal);
}

TEST(FaultInjection, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FaultModel faults;
    faults.boot_time_jitter = 0.25;
    faults.boot_failure_prob = 0.2;
    faults.seed = seed;
    Cluster cluster(candidates(), {}, faults);
    cluster.switch_on(0, 3);
    int seconds = 0;
    while (cluster.transitioning()) {
      cluster.step();
      ++seconds;
    }
    return seconds;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(FaultInjection, RetriesLengthenBoots) {
  FaultModel faults;
  faults.boot_time_jitter = 0.0;
  faults.boot_failure_prob = 1.0;  // every boot fails once
  faults.seed = 1;
  Cluster cluster(candidates(), {}, faults);
  cluster.switch_on(1, 1);  // chromebook: nominal 12 s -> 24 s with retry
  int seconds = 0;
  while (cluster.transitioning()) {
    cluster.step();
    ++seconds;
  }
  EXPECT_EQ(seconds, 24);
}

TEST(FaultInjection, SimulationSurvivesJitterWithPaperWindow) {
  auto design =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  WorldCupOptions trace_options;
  trace_options.days = 1;
  trace_options.peak = 3000.0;
  const LoadTrace trace = worldcup_like_trace(trace_options);

  SimulatorOptions options;
  options.faults.boot_time_jitter = 0.2;
  options.faults.boot_failure_prob = 0.02;
  options.faults.seed = 3;
  const Simulator simulator(design->candidates(), options);
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult r = simulator.run(scheduler, trace);
  // The 2x window absorbs moderate boot jitter: QoS stays near-perfect.
  EXPECT_GT(r.qos.served_fraction(), 0.999);
  EXPECT_GT(r.reconfigurations, 0);
}

}  // namespace
}  // namespace bml
