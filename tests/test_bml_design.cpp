// End-to-end tests for core/bml_design — the five-step façade.
#include "core/bml_design.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(BmlDesign, RealCatalogReproducesPaperSection5B) {
  const BmlDesign design = BmlDesign::build(real_catalog());

  // "Our final heterogeneous infrastructure comprises Raspberry (Little),
  // Chromebook (Medium) and Paravance (Big)."
  ASSERT_EQ(design.candidates().size(), 3u);
  EXPECT_EQ(design.candidates()[0].name(), "paravance");
  EXPECT_EQ(design.candidates()[1].name(), "chromebook");
  EXPECT_EQ(design.candidates()[2].name(), "raspberry");
  EXPECT_EQ(design.roles()[0], Role::kBig);
  EXPECT_EQ(design.roles()[1], Role::kMedium);
  EXPECT_EQ(design.roles()[2], Role::kLittle);

  // "Their minimum utilization thresholds are respectively 1, 10 and 529
  // requests per second."
  EXPECT_DOUBLE_EQ(design.thresholds()[2], 1.0);
  EXPECT_DOUBLE_EQ(design.thresholds()[1], 10.0);
  EXPECT_DOUBLE_EQ(design.thresholds()[0], 529.0);

  // Taurus removed in Step 2, Graphene in Step 3.
  ASSERT_EQ(design.removed().size(), 2u);
  EXPECT_EQ(design.removed()[0].name, "taurus");
  EXPECT_EQ(design.removed()[0].reason, RemovalReason::kDominatedAtPeak);
  EXPECT_EQ(design.removed()[1].name, "graphene");
  EXPECT_EQ(design.removed()[1].reason, RemovalReason::kNeverPreferable);
}

TEST(BmlDesign, AccessorsByRole) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  EXPECT_EQ(design.big().name(), "paravance");
  EXPECT_EQ(design.little().name(), "raspberry");
}

TEST(BmlDesign, DefaultMaxRateIsFourBigs) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  EXPECT_DOUBLE_EQ(design.max_rate(), 4.0 * 1331.0);
  EXPECT_NE(design.table(), nullptr);
}

TEST(BmlDesign, IdealPowerNeverExceedsBigOnly) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  const ArchitectureProfile& big = design.big();
  for (double r = 1.0; r <= big.max_perf(); r += 7.0)
    EXPECT_LE(design.ideal_power(r), big.power_at(r) + 1e-9) << "rate " << r;
}

TEST(BmlDesign, IdealCombinationCapacityCoversRate) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  for (double r = 0.0; r <= design.max_rate(); r += 97.3) {
    const Combination combo = design.ideal_combination(r);
    EXPECT_GE(capacity(design.candidates(), combo), r - 1e-9);
  }
}

TEST(BmlDesign, LinearReferenceUsesLittleIdleAndBigPeak) {
  const BmlDesign design = BmlDesign::build(real_catalog());
  const BmlLinearReference ref = design.linear_reference();
  EXPECT_DOUBLE_EQ(ref.power(0.0), 3.1);
  EXPECT_DOUBLE_EQ(ref.power(1331.0), 200.5);
}

TEST(BmlDesign, ExactSolverOptionAgreesWithGreedy) {
  BmlDesignOptions options;
  options.solver = SolverKind::kExactDp;
  options.max_rate = 2000.0;
  const BmlDesign exact = BmlDesign::build(real_catalog(), options);
  const BmlDesign greedy = BmlDesign::build(real_catalog(),
                                            {.max_rate = 2000.0});
  for (double r = 0.0; r <= 2000.0; r += 1.0)
    ASSERT_NEAR(exact.ideal_power(r), greedy.ideal_power(r), 1e-6)
        << "rate " << r;
}

TEST(BmlDesign, IllustrativeCatalogKeepsABC) {
  const BmlDesign design = BmlDesign::build(illustrative_catalog());
  ASSERT_EQ(design.candidates().size(), 3u);
  EXPECT_EQ(design.candidates()[0].name(), "arch-A");
  EXPECT_EQ(design.candidates()[2].name(), "arch-C");
  ASSERT_EQ(design.removed().size(), 1u);
  EXPECT_EQ(design.removed()[0].name, "arch-D");
  // Step 4 raised Big's threshold above Step 3's value (Fig. 2).
  EXPECT_GT(design.thresholds()[0], design.step3_thresholds()[0]);
}

TEST(BmlDesign, InventoryCapsAreRemappedFromInputOrder) {
  BmlDesignOptions options;
  // Input order: paravance, taurus, graphene, chromebook, raspberry.
  options.inventory_caps = {1, 99, 99, 50, 50};
  options.max_rate = 3000.0;
  const BmlDesign design = BmlDesign::build(real_catalog(), options);
  const Combination combo = design.ideal_combination(2500.0);
  EXPECT_EQ(combo.count(0), 1);  // only one paravance allowed
  EXPECT_GE(capacity(design.candidates(), combo), 2500.0);
}

TEST(BmlDesign, CapsSizeMismatchThrows) {
  BmlDesignOptions options;
  options.inventory_caps = {1, 2};
  EXPECT_THROW(BmlDesign::build(real_catalog(), options),
               std::invalid_argument);
}

TEST(BmlDesign, EmptyCatalogThrows) {
  EXPECT_THROW(BmlDesign::build({}), std::invalid_argument);
}

TEST(BmlDesign, SingleArchitectureDesign) {
  Catalog one;
  one.emplace_back("solo", 100.0, 10.0, 50.0, TransitionCost{5.0, 100.0},
                   TransitionCost{2.0, 20.0});
  const BmlDesign design = BmlDesign::build(one);
  ASSERT_EQ(design.candidates().size(), 1u);
  EXPECT_EQ(design.roles()[0], Role::kBig);
  EXPECT_DOUBLE_EQ(design.thresholds()[0], 1.0);
  EXPECT_EQ(design.ideal_combination(250.0), Combination({3}));
}

TEST(BmlDesign, QueriesBeyondTableFallBackToSolver) {
  BmlDesignOptions options;
  options.max_rate = 100.0;
  const BmlDesign design = BmlDesign::build(real_catalog(), options);
  // 150 > table range: the solver answers directly.
  const Combination combo = design.ideal_combination(150.0);
  EXPECT_GE(capacity(design.candidates(), combo), 150.0);
}

}  // namespace
}  // namespace bml
