// Tests for sched/cost_aware — reconfiguration-cost-aware scheduling.
#include "sched/cost_aware.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "predict/predictor.hpp"
#include "sched/bml_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

std::shared_ptr<BmlDesign> design() {
  static auto d = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  return d;
}

TEST(CostAwareScheduler, TransitionEnergyCountsOnOffAndMigration) {
  CostAwareScheduler scheduler(design(),
                               std::make_shared<OracleMaxPredictor>());
  // Empty -> 1 paravance: one boot + one instance start.
  const Joules up = scheduler.transition_energy(Combination({0, 0, 0}),
                                                Combination({1, 0, 0}));
  EXPECT_NEAR(up, 21341.0 + MigrationModel{}.restart_energy, 1e-6);
  // 1 paravance -> 1 chromebook: big off + chromebook on + 1 move.
  const Joules swap = scheduler.transition_energy(Combination({1, 0, 0}),
                                                  Combination({0, 1, 0}));
  EXPECT_NEAR(swap, 657.0 + 49.3 + MigrationModel{}.restart_energy, 1e-6);
}

TEST(CostAwareScheduler, ForcedScaleUpAlwaysPasses) {
  CostAwareScheduler scheduler(design(),
                               std::make_shared<OracleMaxPredictor>());
  const LoadTrace trace = step_trace({{5.0, 10.0}, {600.0, 500.0}});
  (void)scheduler.initial_combination(trace);
  // At t=5 the window already sees 600 req/s: capacity must grow no matter
  // what the switch costs.
  const auto target = scheduler.decide(5, trace, ClusterSnapshot{});
  ASSERT_TRUE(target.has_value());
  EXPECT_GE(capacity(design()->candidates(), *target), 600.0);
}

TEST(CostAwareScheduler, ShortLullDoesNotPayForBigCycle) {
  // 600 req/s, a 60 s lull, then 600 again: switching the paravance off
  // and on would cost ~22 kJ for < 1 minute of ~50 W savings. The
  // cost-aware scheduler must hold the Big machine.
  CostAwareScheduler scheduler(design(),
                               std::make_shared<OracleMaxPredictor>(),
                               ApplicationModel{}, MigrationModel{},
                               /*window=*/60.0, /*payback_window=*/60.0);
  const LoadTrace trace =
      step_trace({{600.0, 400.0}, {5.0, 60.0}, {600.0, 400.0}});
  const Combination big = design()->ideal_combination(600.0);
  (void)scheduler.initial_combination(trace);
  bool ever_left_big = false;
  for (TimePoint t = 390; t < 460; ++t) {
    const auto target = scheduler.decide(t, trace, ClusterSnapshot{});
    if (target.has_value() && !(*target == big)) ever_left_big = true;
  }
  EXPECT_FALSE(ever_left_big);
}

TEST(CostAwareScheduler, LongLullPaysForScaleDown) {
  CostAwareScheduler scheduler(design(),
                               std::make_shared<OracleMaxPredictor>(),
                               ApplicationModel{}, MigrationModel{},
                               /*window=*/60.0,
                               /*payback_window=*/3600.0);
  const LoadTrace trace =
      step_trace({{600.0, 100.0}, {5.0, 7200.0}});
  (void)scheduler.initial_combination(trace);
  // Deep in the lull the savings (~115 W) over an hour dwarf the ~22 kJ
  // switch: the scheduler must scale down.
  const auto target = scheduler.decide(200, trace, ClusterSnapshot{});
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, design()->ideal_combination(5.0));
}

TEST(CostAwareScheduler, FewerReconfigurationsThanPlainBml) {
  WorldCupOptions options;
  options.days = 2;
  options.peak = 3000.0;
  options.seed = 5;
  const LoadTrace trace = worldcup_like_trace(options);
  const Simulator simulator(design()->candidates());

  BmlScheduler plain(design(), std::make_shared<OracleMaxPredictor>());
  const SimulationResult plain_result = simulator.run(plain, trace);

  CostAwareScheduler aware(design(), std::make_shared<OracleMaxPredictor>());
  const SimulationResult aware_result = simulator.run(aware, trace);

  EXPECT_LT(aware_result.reconfigurations, plain_result.reconfigurations);
  // QoS must not regress: scale-ups are never blocked.
  EXPECT_DOUBLE_EQ(aware_result.qos.served_fraction(), 1.0);
}

TEST(CostAwareScheduler, Validation) {
  EXPECT_THROW(
      CostAwareScheduler(nullptr, std::make_shared<OracleMaxPredictor>()),
      std::invalid_argument);
  EXPECT_THROW(CostAwareScheduler(design(), nullptr), std::invalid_argument);
  EXPECT_EQ(
      CostAwareScheduler(design(), std::make_shared<OracleMaxPredictor>())
          .name(),
      "cost-aware(oracle-max)");
}

}  // namespace
}  // namespace bml
