// Tests for power/energy_meter: integration, channels, per-day buckets.
#include "power/energy_meter.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(EnergyMeter, IntegratesComputePower) {
  EnergyMeter meter(1.0);
  for (int i = 0; i < 100; ++i) {
    meter.add_compute_sample(50.0);
    meter.tick();
  }
  EXPECT_DOUBLE_EQ(meter.compute_energy(), 5000.0);
  EXPECT_DOUBLE_EQ(meter.reconfiguration_energy(), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_energy(), 5000.0);
  EXPECT_DOUBLE_EQ(meter.elapsed(), 100.0);
}

TEST(EnergyMeter, SeparatesChannels) {
  EnergyMeter meter;
  meter.add_compute_sample(10.0);
  meter.add_reconfiguration_energy(25.0);
  meter.tick();
  EXPECT_DOUBLE_EQ(meter.compute_energy(), 10.0);
  EXPECT_DOUBLE_EQ(meter.reconfiguration_energy(), 25.0);
  EXPECT_DOUBLE_EQ(meter.total_energy(), 35.0);
}

TEST(EnergyMeter, PerDayAttribution) {
  EnergyMeter meter(1.0);
  // One full day of 1 W, then half a day of 3 W.
  for (TimePoint t = 0; t < kSecondsPerDay; ++t) {
    meter.add_compute_sample(1.0);
    meter.tick();
  }
  for (TimePoint t = 0; t < kSecondsPerDay / 2; ++t) {
    meter.add_compute_sample(3.0);
    meter.tick();
  }
  const auto days = meter.per_day_total();
  ASSERT_EQ(days.size(), 2u);
  EXPECT_DOUBLE_EQ(days[0], static_cast<double>(kSecondsPerDay));
  EXPECT_DOUBLE_EQ(days[1], 1.5 * static_cast<double>(kSecondsPerDay));
}

TEST(EnergyMeter, ReconfigurationLandsOnCurrentDay) {
  EnergyMeter meter(1.0);
  for (TimePoint t = 0; t < kSecondsPerDay; ++t) meter.tick();
  meter.add_reconfiguration_energy(100.0);
  const auto reconf = meter.per_day_reconfiguration();
  ASSERT_EQ(reconf.size(), 2u);
  EXPECT_DOUBLE_EQ(reconf[0], 0.0);
  EXPECT_DOUBLE_EQ(reconf[1], 100.0);
}

TEST(EnergyMeter, CustomStepScalesEnergy) {
  EnergyMeter meter(10.0);
  meter.add_compute_sample(5.0);
  meter.tick();
  EXPECT_DOUBLE_EQ(meter.compute_energy(), 50.0);
  EXPECT_DOUBLE_EQ(meter.elapsed(), 10.0);
}

TEST(EnergyMeter, Validation) {
  EXPECT_THROW(EnergyMeter(0.0), std::invalid_argument);
  EnergyMeter meter;
  EXPECT_THROW(meter.add_compute_sample(-1.0), std::invalid_argument);
  EXPECT_THROW(meter.add_reconfiguration_energy(-1.0), std::invalid_argument);
}

TEST(EnergyMeter, PerDaySumsMatchTotals) {
  EnergyMeter meter(1.0);
  for (TimePoint t = 0; t < kSecondsPerDay * 2 + 1234; ++t) {
    meter.add_compute_sample(static_cast<double>(t % 7));
    if (t % 1000 == 0) meter.add_reconfiguration_energy(2.5);
    meter.tick();
  }
  double total = 0.0;
  for (double d : meter.per_day_total()) total += d;
  EXPECT_NEAR(total, meter.total_energy(), 1e-6);
}

}  // namespace
}  // namespace bml
