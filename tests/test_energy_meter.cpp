// Tests for power/energy_meter: integration, channels, per-day buckets.
#include "power/energy_meter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/units.hpp"

namespace bml {
namespace {

TEST(EnergyMeter, IntegratesComputePower) {
  EnergyMeter meter(1.0);
  for (int i = 0; i < 100; ++i) {
    meter.add_compute_sample(50.0);
    meter.tick();
  }
  EXPECT_DOUBLE_EQ(meter.compute_energy(), 5000.0);
  EXPECT_DOUBLE_EQ(meter.reconfiguration_energy(), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_energy(), 5000.0);
  EXPECT_DOUBLE_EQ(meter.elapsed(), 100.0);
}

TEST(EnergyMeter, SeparatesChannels) {
  EnergyMeter meter;
  meter.add_compute_sample(10.0);
  meter.add_reconfiguration_energy(25.0);
  meter.tick();
  EXPECT_DOUBLE_EQ(meter.compute_energy(), 10.0);
  EXPECT_DOUBLE_EQ(meter.reconfiguration_energy(), 25.0);
  EXPECT_DOUBLE_EQ(meter.total_energy(), 35.0);
}

TEST(EnergyMeter, PerDayAttribution) {
  EnergyMeter meter(1.0);
  // One full day of 1 W, then half a day of 3 W.
  for (TimePoint t = 0; t < kSecondsPerDay; ++t) {
    meter.add_compute_sample(1.0);
    meter.tick();
  }
  for (TimePoint t = 0; t < kSecondsPerDay / 2; ++t) {
    meter.add_compute_sample(3.0);
    meter.tick();
  }
  const auto days = meter.per_day_total();
  ASSERT_EQ(days.size(), 2u);
  EXPECT_DOUBLE_EQ(days[0], static_cast<double>(kSecondsPerDay));
  EXPECT_DOUBLE_EQ(days[1], 1.5 * static_cast<double>(kSecondsPerDay));
}

TEST(EnergyMeter, ReconfigurationLandsOnCurrentDay) {
  EnergyMeter meter(1.0);
  for (TimePoint t = 0; t < kSecondsPerDay; ++t) meter.tick();
  meter.add_reconfiguration_energy(100.0);
  const auto reconf = meter.per_day_reconfiguration();
  ASSERT_EQ(reconf.size(), 2u);
  EXPECT_DOUBLE_EQ(reconf[0], 0.0);
  EXPECT_DOUBLE_EQ(reconf[1], 100.0);
}

TEST(EnergyMeter, CustomStepScalesEnergy) {
  EnergyMeter meter(10.0);
  meter.add_compute_sample(5.0);
  meter.tick();
  EXPECT_DOUBLE_EQ(meter.compute_energy(), 50.0);
  EXPECT_DOUBLE_EQ(meter.elapsed(), 10.0);
}

TEST(EnergyMeter, Validation) {
  EXPECT_THROW(EnergyMeter(0.0), std::invalid_argument);
  EnergyMeter meter;
  EXPECT_THROW(meter.add_compute_sample(-1.0), std::invalid_argument);
  EXPECT_THROW(meter.add_reconfiguration_energy(-1.0), std::invalid_argument);
}

TEST(EnergyMeter, AddRunsMatchesPerRunAddSpan) {
  // The piecewise kernel must match run-by-run add_span accumulation,
  // including runs that straddle day boundaries (the chunked fallback).
  const std::vector<PowerRun> runs{
      {40.0, 1000}, {75.0, static_cast<std::size_t>(kSecondsPerDay)},
      {10.0, 5},    {0.0, 200},
      {33.5, static_cast<std::size_t>(kSecondsPerDay) / 2}};
  EnergyMeter kernel(1.0);
  EnergyMeter reference(1.0);
  kernel.add_runs(runs, 3.25);
  for (const PowerRun& run : runs)
    reference.add_span(run.compute, 3.25, run.seconds);

  EXPECT_NEAR(kernel.compute_energy(), reference.compute_energy(), 1e-9);
  EXPECT_DOUBLE_EQ(kernel.reconfiguration_energy(),
                   reference.reconfiguration_energy());
  EXPECT_DOUBLE_EQ(kernel.elapsed(), reference.elapsed());
  ASSERT_EQ(kernel.per_day_compute().size(),
            reference.per_day_compute().size());
  for (std::size_t d = 0; d < reference.per_day_compute().size(); ++d) {
    EXPECT_NEAR(kernel.per_day_compute()[d], reference.per_day_compute()[d],
                1e-9)
        << "day " << d;
    EXPECT_NEAR(kernel.per_day_reconfiguration()[d],
                reference.per_day_reconfiguration()[d], 1e-9)
        << "day " << d;
  }
}

TEST(EnergyMeter, AddRunsRejectsNegativeSignedSeconds) {
  // The kernel accepts any run shape; signed lengths must be validated
  // instead of wrapping through the unsigned fused-batch arithmetic.
  struct SignedRun {
    double compute;
    long long seconds;
  };
  EnergyMeter meter(1.0);
  EXPECT_THROW(meter.add_runs(std::vector<SignedRun>{{10.0, -5}}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(meter.add_runs(std::vector<SignedRun>{{-10.0, 5}}, 0.0),
               std::invalid_argument);
}

TEST(EnergyMeter, AddIntegratedSpanMatchesAddSpan) {
  EnergyMeter fused(1.0);
  EnergyMeter reference(1.0);
  // 100 s at 42 W: the caller pre-integrated 4200 J.
  fused.add_integrated_span(42.0 * 100.0, 5.0, 100);
  reference.add_span(42.0, 5.0, 100);
  EXPECT_DOUBLE_EQ(fused.compute_energy(), reference.compute_energy());
  EXPECT_DOUBLE_EQ(fused.reconfiguration_energy(),
                   reference.reconfiguration_energy());
  EXPECT_DOUBLE_EQ(fused.elapsed(), reference.elapsed());
}

TEST(EnergyMeter, AddIntegratedSpanRejectsDayStraddle) {
  EnergyMeter meter(1.0);
  meter.add_span(10.0, 0.0, 100);  // now 100 s into day 0
  EXPECT_THROW(meter.add_integrated_span(
                   1.0, 0.0, static_cast<std::size_t>(kSecondsPerDay)),
               std::logic_error);
  EXPECT_THROW(meter.add_integrated_span(-1.0, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW(meter.add_integrated_span(1.0, -1.0, 10),
               std::invalid_argument);
}

TEST(EnergyMeter, PerDaySumsMatchTotals) {
  EnergyMeter meter(1.0);
  for (TimePoint t = 0; t < kSecondsPerDay * 2 + 1234; ++t) {
    meter.add_compute_sample(static_cast<double>(t % 7));
    if (t % 1000 == 0) meter.add_reconfiguration_energy(2.5);
    meter.tick();
  }
  double total = 0.0;
  for (double d : meter.per_day_total()) total += d;
  EXPECT_NEAR(total, meter.total_energy(), 1e-6);
}

}  // namespace
}  // namespace bml
