// Tests for util/time_series.
#include "util/time_series.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(TimeSeries, BasicAccessors) {
  const TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.duration(), 3.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
  EXPECT_THROW((void)s.at(3), std::out_of_range);
}

TEST(TimeSeries, RejectsNonPositiveStep) {
  EXPECT_THROW(TimeSeries({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries({1.0}, -1.0), std::invalid_argument);
}

TEST(TimeSeries, MaxOverClampsRanges) {
  const TimeSeries s({1.0, 5.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.max_over(0, 4), 5.0);
  EXPECT_DOUBLE_EQ(s.max_over(2, 100), 4.0);
  EXPECT_DOUBLE_EQ(s.max_over(3, 3), 0.0);  // empty range
  EXPECT_DOUBLE_EQ(s.max_over(10, 20), 0.0);
}

TEST(TimeSeries, IntegralUsesStep) {
  const TimeSeries s({2.0, 2.0, 2.0}, 10.0);
  EXPECT_DOUBLE_EQ(s.integral(), 60.0);
  EXPECT_DOUBLE_EQ(s.integral_over(1, 3), 40.0);
}

TEST(TimeSeries, PerWindowAggregates) {
  const TimeSeries s({1.0, 2.0, 3.0, 4.0, 5.0});
  const auto sums = s.integral_per_window(2);
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 7.0);
  EXPECT_DOUBLE_EQ(sums[2], 5.0);  // partial last window
  const auto maxes = s.max_per_window(2);
  ASSERT_EQ(maxes.size(), 3u);
  EXPECT_DOUBLE_EQ(maxes[2], 5.0);
  EXPECT_THROW((void)s.integral_per_window(0), std::invalid_argument);
}

TEST(TimeSeries, Extremes) {
  const TimeSeries s({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  const TimeSeries empty;
  EXPECT_THROW((void)empty.max(), std::logic_error);
}

TEST(TimeSeries, PushBackGrows) {
  TimeSeries s;
  s.push_back(1.0);
  s.push_back(2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.integral(), 3.0);
}

// The block + sparse-table range-max index must answer every window
// query with exactly the value the plain scan returns — it is the hot
// primitive under predictors and decision_stable_until, and the
// simulator's byte-identity contract rides on the equality.
TEST(TimeSeries, MaxIndexMatchesPlainScanOnEveryWindow) {
  std::vector<double> values;
  std::uint64_t x = 88172645463325252ull;  // xorshift, deterministic
  for (int i = 0; i < 1500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<double>(x % 10000) / 7.0);
  }
  TimeSeries indexed(values);
  indexed.build_max_index();
  const TimeSeries plain(values);
  for (std::size_t begin = 0; begin < values.size(); begin += 13) {
    for (std::size_t len : {1u, 7u, 63u, 64u, 65u, 129u, 500u, 2000u}) {
      ASSERT_EQ(indexed.max_over(begin, begin + len),
                plain.max_over(begin, begin + len))
          << "begin=" << begin << " len=" << len;
    }
  }
  EXPECT_DOUBLE_EQ(indexed.max_over(0, values.size()), plain.max());
}

// push_back after build_max_index discards the index rather than serving
// stale maxima.
TEST(TimeSeries, PushBackInvalidatesMaxIndex) {
  std::vector<double> values(400, 1.0);
  TimeSeries s(values);
  s.build_max_index();
  EXPECT_DOUBLE_EQ(s.max_over(0, 400), 1.0);
  s.push_back(9.0);
  EXPECT_DOUBLE_EQ(s.max_over(0, 401), 9.0);
  EXPECT_DOUBLE_EQ(s.max_over(0, 400), 1.0);
}

// Window integrals must always sum to the full integral.
class WindowPartition : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowPartition, WindowsSumToTotal) {
  std::vector<double> values;
  for (int i = 0; i < 97; ++i) values.push_back(i * 0.37);
  const TimeSeries s(values);
  const auto windows = s.integral_per_window(GetParam());
  double sum = 0.0;
  for (double w : windows) sum += w;
  EXPECT_NEAR(sum, s.integral(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowPartition,
                         ::testing::Values(1, 2, 3, 7, 10, 96, 97, 1000));

}  // namespace
}  // namespace bml
