// Tests for trace/trace: LoadTrace container and CSV round-trip.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace bml {
namespace {

TEST(LoadTrace, BasicAccessors) {
  const LoadTrace t({10.0, 20.0, 30.0});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.duration(), 3.0);
  EXPECT_DOUBLE_EQ(t.at(1), 20.0);
  EXPECT_DOUBLE_EQ(t.peak(), 30.0);
  EXPECT_DOUBLE_EQ(t.mean(), 20.0);
  EXPECT_DOUBLE_EQ(t.total_requests(), 60.0);
}

TEST(LoadTrace, BeyondEndServesZero) {
  const LoadTrace t({10.0});
  EXPECT_DOUBLE_EQ(t.at(5), 0.0);
  EXPECT_THROW((void)t.at(-1), std::invalid_argument);
}

TEST(LoadTrace, RejectsInvalidRates) {
  EXPECT_THROW(LoadTrace({-1.0}), std::invalid_argument);
  EXPECT_THROW(LoadTrace({std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  EXPECT_THROW(LoadTrace({std::numeric_limits<double>::quiet_NaN()}),
               std::invalid_argument);
}

TEST(LoadTrace, MaxOverWindow) {
  const LoadTrace t({1.0, 5.0, 2.0, 8.0, 3.0});
  EXPECT_DOUBLE_EQ(t.max_over(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(t.max_over(2, 100), 8.0);
  EXPECT_DOUBLE_EQ(t.max_over(-5, 1), 1.0);  // clamped start
  EXPECT_DOUBLE_EQ(t.max_over(3, 3), 0.0);   // empty window
}

TEST(LoadTrace, DaySlicing) {
  std::vector<double> rates(static_cast<std::size_t>(kSecondsPerDay) + 100,
                            1.0);
  rates[50] = 42.0;                                     // day 0 peak
  rates[static_cast<std::size_t>(kSecondsPerDay) + 7] = 17.0;  // day 1 peak
  const LoadTrace t(std::move(rates));
  EXPECT_EQ(t.days(), 2u);
  EXPECT_DOUBLE_EQ(t.day_peak(0), 42.0);
  EXPECT_DOUBLE_EQ(t.day_peak(1), 17.0);
  EXPECT_THROW((void)t.day_peak(2), std::out_of_range);
}

TEST(LoadTrace, CsvRoundTrip) {
  const LoadTrace original({1.5, 0.0, 300.25});
  const LoadTrace parsed = LoadTrace::from_csv(original.to_csv());
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i)
    EXPECT_DOUBLE_EQ(parsed.at(static_cast<TimePoint>(i)),
                     original.at(static_cast<TimePoint>(i)));
}

TEST(LoadTrace, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "bml_trace_test.csv";
  const LoadTrace original({5.0, 10.0});
  original.save(path);
  const LoadTrace loaded = LoadTrace::load(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.at(1), 10.0);
  std::filesystem::remove(path);
}

TEST(LoadTrace, EmptyTraceBehaviour) {
  const LoadTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.days(), 0u);
  EXPECT_DOUBLE_EQ(t.peak(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

}  // namespace
}  // namespace bml
