// Tests for app/application and app/migration — Section III's application
// characterization and migration costs.
#include <gtest/gtest.h>

#include "app/migration.hpp"
#include "core/candidate_filter.hpp"

namespace bml {
namespace {

Catalog candidates() {
  Catalog c = filter_candidates(real_catalog()).candidates;
  c.erase(c.begin() + 1);  // paravance, chromebook, raspberry
  return c;
}

TEST(ApplicationModel, DefaultIsPaperWebServer) {
  const ApplicationModel app;
  EXPECT_NO_THROW(app.validate());
  EXPECT_EQ(app.state, StateKind::kStateless);
  EXPECT_EQ(app.qos, QosClass::kTolerant);
  EXPECT_DOUBLE_EQ(app.state_bytes, 0.0);
}

TEST(ApplicationModel, Validation) {
  ApplicationModel bad;
  bad.min_instances = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  ApplicationModel bad2;
  bad2.min_instances = 5;
  bad2.max_instances = 2;
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
  ApplicationModel bad3;
  bad3.state = StateKind::kStateful;
  bad3.state_bytes = 0.0;
  bad3.restart_time = 0.0;
  EXPECT_THROW(bad3.validate(), std::invalid_argument);
  ApplicationModel bad4;
  bad4.name.clear();
  EXPECT_THROW(bad4.validate(), std::invalid_argument);
}

TEST(ApplicationModel, AcceptsChecksInstanceBounds) {
  ApplicationModel app;
  app.min_instances = 2;
  app.max_instances = 4;
  EXPECT_FALSE(app.accepts(Combination({1, 0, 0})));
  EXPECT_TRUE(app.accepts(Combination({1, 1, 0})));
  EXPECT_TRUE(app.accepts(Combination({1, 3, 0})));
  EXPECT_FALSE(app.accepts(Combination({1, 3, 1})));
}

TEST(ClampCombination, AddsLittlesBelowMinimum) {
  ApplicationModel app;
  app.min_instances = 3;
  const auto result =
      clamp_combination(app, candidates(), Combination({1, 0, 0}));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, Combination({1, 0, 2}));  // two raspberries added
  EXPECT_TRUE(app.accepts(*result));
}

TEST(ClampCombination, RejectsAboveMaximum) {
  ApplicationModel app;
  app.max_instances = 2;
  EXPECT_FALSE(clamp_combination(app, candidates(), Combination({0, 3, 0}))
                   .has_value());
  EXPECT_TRUE(clamp_combination(app, candidates(), Combination({2, 0, 0}))
                  .has_value());
}

TEST(StateKind, Names) {
  EXPECT_EQ(to_string(StateKind::kStateless), "stateless");
  EXPECT_EQ(to_string(StateKind::kSoftState), "soft-state");
  EXPECT_EQ(to_string(StateKind::kStateful), "stateful");
}

TEST(MigrationModel, StatelessInstanceIsJustARestart) {
  const MigrationModel model;
  const ApplicationModel app;  // stateless
  const MigrationCost cost = model.instance_cost(app);
  EXPECT_DOUBLE_EQ(cost.duration, app.restart_time);
  EXPECT_DOUBLE_EQ(cost.downtime, app.restart_time);
  EXPECT_DOUBLE_EQ(cost.energy, model.restart_energy);
}

TEST(MigrationModel, StatefulPaysTransferTimeAndEnergy) {
  MigrationModel model;
  model.network_bandwidth = 1e8;  // 100 MB/s
  ApplicationModel app;
  app.state = StateKind::kStateful;
  app.state_bytes = 1e9;  // 1 GB
  const MigrationCost cost = model.instance_cost(app);
  EXPECT_NEAR(cost.duration, app.restart_time + 10.0, 1e-9);
  EXPECT_NEAR(cost.downtime, app.restart_time + 10.0, 1e-9);
  EXPECT_NEAR(cost.energy, model.restart_energy + 1e9 * model.energy_per_byte,
              1e-9);
}

TEST(MigrationModel, SoftStateServesDuringTransfer) {
  MigrationModel model;
  ApplicationModel app;
  app.state = StateKind::kSoftState;
  app.state_bytes = 1e9;
  const MigrationCost cost = model.instance_cost(app);
  EXPECT_DOUBLE_EQ(cost.downtime, app.restart_time);  // no transfer pause
  EXPECT_GT(cost.duration, app.restart_time);
}

TEST(MigrationModel, ReconfigurationPairsMovesAndStarts) {
  const MigrationModel model;
  const ApplicationModel app;
  // 16 chromebooks -> 1 paravance: 1 move + 15 stops (stops are free).
  const MigrationCost shrink = model.reconfiguration_cost(
      app, Combination({0, 16, 0}), Combination({1, 0, 0}));
  EXPECT_DOUBLE_EQ(shrink.energy, model.restart_energy);
  EXPECT_DOUBLE_EQ(shrink.downtime, app.restart_time);

  // Empty -> 3 machines: 3 fresh starts, no downtime.
  const MigrationCost grow = model.reconfiguration_cost(
      app, Combination({0, 0, 0}), Combination({1, 1, 1}));
  EXPECT_DOUBLE_EQ(grow.energy, 3.0 * model.restart_energy);
  EXPECT_DOUBLE_EQ(grow.downtime, 0.0);

  // No change: free.
  const MigrationCost same = model.reconfiguration_cost(
      app, Combination({1, 1, 0}), Combination({1, 1, 0}));
  EXPECT_DOUBLE_EQ(same.energy, 0.0);
  EXPECT_DOUBLE_EQ(same.duration, 0.0);
}

TEST(MigrationModel, Validation) {
  MigrationModel bad;
  bad.network_bandwidth = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  MigrationModel bad2;
  bad2.energy_per_byte = -1.0;
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
}

TEST(MigrationCost, AccumulationSemantics) {
  MigrationCost a{10.0, 2.0, 5.0};
  const MigrationCost b{4.0, 3.0, 7.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.duration, 10.0);  // parallel moves: max duration
  EXPECT_DOUBLE_EQ(a.downtime, 5.0);   // downtime accumulates
  EXPECT_DOUBLE_EQ(a.energy, 12.0);
}

}  // namespace
}  // namespace bml
