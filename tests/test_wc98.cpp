// Tests for trace/wc98 — the real-trace interchange format.
#include "trace/wc98.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace bml {
namespace {

TEST(ParseWc98, BasicTwoColumn) {
  const LoadTrace t = parse_wc98("0 5\n1 7\n2 3\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(1), 7.0);
  EXPECT_DOUBLE_EQ(t.at(2), 3.0);
}

TEST(ParseWc98, ZeroFillsGaps) {
  const LoadTrace t = parse_wc98("1 4\n5 9\n");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t.at(0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(1), 4.0);
  EXPECT_DOUBLE_EQ(t.at(3), 0.0);
  EXPECT_DOUBLE_EQ(t.at(5), 9.0);
}

TEST(ParseWc98, CommaSeparatorAndComments) {
  const LoadTrace t = parse_wc98("# header\n0,2\n1,3  # inline comment\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1), 3.0);
}

TEST(ParseWc98, OriginShiftsTimestamps) {
  const LoadTrace t = parse_wc98("100 5\n101 6\n", /*origin=*/100);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.at(0), 5.0);
}

TEST(ParseWc98, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_wc98("0\n"), std::runtime_error);           // count missing
  EXPECT_THROW((void)parse_wc98("0 1 2\n"), std::runtime_error);       // extra field
  EXPECT_THROW((void)parse_wc98("0 -3\n"), std::runtime_error);        // negative
  EXPECT_THROW((void)parse_wc98("5 1\n5 2\n"), std::runtime_error);    // duplicate
  EXPECT_THROW((void)parse_wc98("5 1\n4 2\n"), std::runtime_error);    // decreasing
  EXPECT_THROW((void)parse_wc98("100 5\n", 200), std::runtime_error);  // before origin
}

TEST(FormatWc98, RoundTripSkipsZeros) {
  const LoadTrace original({0.0, 5.0, 0.0, 0.0, 2.5});
  const std::string text = format_wc98(original);
  EXPECT_EQ(text.find("0 0"), std::string::npos);  // zeros omitted
  const LoadTrace parsed = parse_wc98(text);
  ASSERT_EQ(parsed.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(parsed.at(static_cast<TimePoint>(i)),
                     original.at(static_cast<TimePoint>(i)));
}

TEST(ParseWc98, ToleratesCrlfAndTrailingBlankLines) {
  // Recorded traces shipped from other systems often carry CRLF line
  // endings and end in blank lines; both must parse as if absent.
  const LoadTrace parsed =
      parse_wc98("0 3\r\n2,7.5\r\n# comment\r\n\r\n\r\n");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.at(0), 3.0);
  EXPECT_DOUBLE_EQ(parsed.at(1), 0.0);
  EXPECT_DOUBLE_EQ(parsed.at(2), 7.5);
}

TEST(LoadAny, ToleratesCrlfAndTrailingBlankLinesInBothFormats) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto csv = dir / "bml_crlf_trace.csv";
  const auto wc = dir / "bml_crlf_trace.wc98";
  {
    std::ofstream out(csv, std::ios::binary);
    out << "rate\r\n3\r\n0\r\n7.5\r\n\r\n\r\n";
  }
  {
    std::ofstream out(wc, std::ios::binary);
    out << "0 3\r\n2 7.5\r\n\r\n";
  }
  for (const auto& path : {csv, wc}) {
    const LoadTrace loaded = load_any(path);
    ASSERT_EQ(loaded.size(), 3u) << path;
    EXPECT_DOUBLE_EQ(loaded.at(0), 3.0) << path;
    EXPECT_DOUBLE_EQ(loaded.at(1), 0.0) << path;
    EXPECT_DOUBLE_EQ(loaded.at(2), 7.5) << path;
  }
  std::filesystem::remove(csv);
  std::filesystem::remove(wc);
}

TEST(Wc98File, SaveAndLoad) {
  const auto path =
      std::filesystem::temp_directory_path() / "bml_wc98_test.txt";
  const LoadTrace original({1.0, 0.0, 3.0});
  save_wc98(original, path);
  const LoadTrace loaded = load_wc98(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.at(2), 3.0);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_wc98("/nonexistent/trace.txt"), std::runtime_error);
}

}  // namespace
}  // namespace bml
