// DecisionThresholds must partition the rate axis exactly as the
// CombinationTable's entries do: equal bucket indices <=> equal adjacent
// combination runs, with the table's round-up-to-grid lookup rule and a
// clamp into the last bucket beyond max_rate.
#include "core/decision_thresholds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/bml_design.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

const BmlDesign& design() {
  static const BmlDesign d = BmlDesign::build(real_catalog());
  return d;
}

TEST(DecisionThresholds, BuiltAlongsideTheTable) {
  ASSERT_NE(design().table(), nullptr);
  ASSERT_NE(design().decision_thresholds(), nullptr);
  EXPECT_EQ(design().decision_thresholds()->max_rate(), design().max_rate());
}

TEST(DecisionThresholds, BucketChangesExactlyWhereTheTableEntryDoes) {
  const CombinationTable& table = *design().table();
  const DecisionThresholds thresholds(table);
  std::size_t expected = 0;
  EXPECT_EQ(thresholds.index_for(0.0), 0u);
  for (std::size_t g = 1; g < table.grid_size(); ++g) {
    if (table.grid_entry(g) != table.grid_entry(g - 1)) ++expected;
    EXPECT_EQ(thresholds.index_for(static_cast<ReqRate>(g)), expected)
        << "grid rate " << g;
  }
  EXPECT_EQ(thresholds.bucket_count(), expected + 1);
}

TEST(DecisionThresholds, FractionalRatesRoundUpLikeTheTable) {
  const DecisionThresholds& thresholds = *design().decision_thresholds();
  const CombinationTable& table = *design().table();
  for (double rate : {0.25, 17.5, 99.999, 1234.5, 2500.0001}) {
    EXPECT_EQ(thresholds.index_for(rate),
              thresholds.index_for(std::ceil(rate)))
        << rate;
    // Same bucket <=> same combination for a rate and its grid round-up.
    EXPECT_EQ(table.combination(rate), table.combination(std::ceil(rate)));
  }
}

TEST(DecisionThresholds, SameBucketImpliesSameCombination) {
  const DecisionThresholds& thresholds = *design().decision_thresholds();
  const CombinationTable& table = *design().table();
  const double step = table.max_rate() / 997.0;
  for (double a = 0.0; a + step <= table.max_rate(); a += step) {
    if (thresholds.index_for(a) == thresholds.index_for(a + step))
      EXPECT_EQ(table.combination(a), table.combination(a + step)) << a;
  }
}

TEST(DecisionThresholds, ClampsBeyondMaxRateIntoLastBucket) {
  const DecisionThresholds& thresholds = *design().decision_thresholds();
  EXPECT_EQ(thresholds.index_for(thresholds.max_rate() * 10.0),
            thresholds.index_for(thresholds.max_rate()));
  EXPECT_TRUE(thresholds.same_bucket(thresholds.max_rate() * 2.0,
                                     thresholds.index_for(
                                         thresholds.max_rate())));
}

TEST(DecisionThresholds, NegativeRateThrows) {
  EXPECT_THROW((void)design().decision_thresholds()->index_for(-1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bml
