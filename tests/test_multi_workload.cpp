// The multi-tenant workload layer's acceptance tests:
//   * regression pin — a single-[app] scenario produces byte-identical
//     sweep CSV output to the equivalent pre-refactor (no-section) spec,
//     on both execution strategies;
//   * equivalence — a multi-app event-driven run matches the per-second
//     reference loop: exact integer counters, 1e-9 relative on energy /
//     QoS integrals, cluster-wide and per app;
//   * the coordinator's merge policies (sum identity, partitioned clamp);
//   * per-app attribution invariants (shares sum to the cluster totals);
//   * QoS accounting across multi-second fast-path spans that straddle a
//     capacity boundary.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/sweep.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/coordinator.hpp"
#include "trace/synthetic.hpp"

namespace bml {
namespace {

std::shared_ptr<BmlDesign> design() {
  static auto d =
      std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  return d;
}

void expect_close(double a, double b, const char* what) {
  const double tolerance = 1e-9 * std::max(1.0, std::abs(b));
  EXPECT_NEAR(a, b, tolerance) << what;
}

/// Two diurnal apps in anti-phase plus a constant batch app — loads that
/// overlap, cross, and straddle each other's reconfigurations.
std::vector<Workload> demo_workloads() {
  std::vector<Workload> workloads;
  {
    Workload w;
    w.name = "frontend";
    DiurnalOptions o;
    o.peak = 1600.0;
    o.noise = 0.0;
    o.peak_hour = 18.0;
    w.trace = diurnal_trace(o, 1);
    w.scheduler = std::make_unique<BmlScheduler>(
        design(), std::make_shared<OracleMaxPredictor>(), 0.0,
        QosClass::kCritical);
    w.qos = QosClass::kCritical;
    w.share = 2.0;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "api";
    w.trace = step_trace({{120.0, 20000.0},
                          {900.0, 30000.0},
                          {200.0, 36400.0}});
    w.scheduler = std::make_unique<BmlScheduler>(
        design(), std::make_shared<MovingMaxPredictor>(378.0));
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "batch";
    w.trace = constant_trace(250.0, 86400.0);
    w.scheduler = std::make_unique<ReactiveScheduler>(design());
    workloads.push_back(std::move(w));
  }
  return workloads;
}

void expect_equivalent_multi(SimulatorOptions options) {
  options.event_driven = true;
  const Simulator fast_sim(design()->candidates(), options);
  options.event_driven = false;
  const Simulator reference_sim(design()->candidates(), options);

  auto fast_workloads = demo_workloads();
  auto reference_workloads = demo_workloads();
  const MultiSimulationResult fast = fast_sim.run(fast_workloads);
  const MultiSimulationResult reference =
      reference_sim.run(reference_workloads);

  expect_close(fast.total.compute_energy, reference.total.compute_energy,
               "compute_energy");
  expect_close(fast.total.reconfiguration_energy,
               reference.total.reconfiguration_energy,
               "reconfiguration_energy");
  EXPECT_EQ(fast.total.reconfigurations, reference.total.reconfigurations);
  EXPECT_EQ(fast.total.reconfiguring_seconds,
            reference.total.reconfiguring_seconds);
  EXPECT_EQ(fast.total.peak_machines, reference.total.peak_machines);
  EXPECT_EQ(fast.total.qos.total_seconds, reference.total.qos.total_seconds);
  EXPECT_EQ(fast.total.qos.violation_seconds,
            reference.total.qos.violation_seconds);
  expect_close(fast.total.qos.unserved_requests,
               reference.total.qos.unserved_requests, "unserved_requests");
  expect_close(fast.total.qos.offered_requests,
               reference.total.qos.offered_requests, "offered_requests");

  ASSERT_EQ(fast.apps.size(), reference.apps.size());
  for (std::size_t i = 0; i < reference.apps.size(); ++i) {
    const WorkloadResult& f = fast.apps[i];
    const WorkloadResult& r = reference.apps[i];
    EXPECT_EQ(f.name, r.name);
    EXPECT_EQ(f.qos_stats.total_seconds, r.qos_stats.total_seconds) << f.name;
    EXPECT_EQ(f.qos_stats.violation_seconds, r.qos_stats.violation_seconds)
        << f.name;
    expect_close(f.qos_stats.unserved_requests, r.qos_stats.unserved_requests,
                 f.name.c_str());
    expect_close(f.qos_stats.offered_requests, r.qos_stats.offered_requests,
                 f.name.c_str());
    expect_close(f.compute_energy, r.compute_energy, f.name.c_str());
    expect_close(f.reconfiguration_energy, r.reconfiguration_energy,
                 f.name.c_str());
  }
}

TEST(MultiWorkload, FastPathMatchesPerSecondReference) {
  expect_equivalent_multi({});
}

TEST(MultiWorkload, FastPathMatchesReferenceImmediateOff) {
  SimulatorOptions options;
  options.graceful_off = false;
  expect_equivalent_multi(options);
}

TEST(MultiWorkload, FastPathMatchesReferencePartitioned) {
  SimulatorOptions options;
  options.coordinator = CoordinatorMode::kPartitioned;
  options.coordinator_budget = 2200.0;
  expect_equivalent_multi(options);
}

TEST(MultiWorkload, FastPathMatchesReferenceWithBootFaults) {
  SimulatorOptions options;
  options.faults.boot_time_jitter = 0.3;
  options.faults.boot_failure_prob = 0.2;
  options.faults.seed = 11;
  expect_equivalent_multi(options);
}

TEST(MultiWorkload, PerAppEnergySharesSumToClusterTotals) {
  auto workloads = demo_workloads();
  const Simulator sim(design()->candidates());
  const MultiSimulationResult result = sim.run(workloads);
  Joules compute = 0.0;
  Joules reconfiguration = 0.0;
  double offered = 0.0;
  for (const WorkloadResult& app : result.apps) {
    compute += app.compute_energy;
    reconfiguration += app.reconfiguration_energy;
    offered += app.qos_stats.offered_requests;
  }
  expect_close(compute, result.total.compute_energy, "compute split");
  expect_close(reconfiguration, result.total.reconfiguration_energy,
               "reconfiguration split");
  expect_close(offered, result.total.qos.offered_requests, "offered split");
}

TEST(MultiWorkload, SingleWorkloadMatchesLegacyRun) {
  // The Scheduler& API and a one-element workload list are the same code
  // path; every reported number must agree exactly.
  const LoadTrace trace =
      step_trace({{150.0, 2000.0}, {2300.0, 2000.0}, {90.0, 2000.0}});
  const Simulator sim(design()->candidates());

  BmlScheduler scheduler(design(), std::make_shared<OracleMaxPredictor>());
  const SimulationResult single = sim.run(scheduler, trace);

  std::vector<Workload> workloads;
  Workload w;
  w.trace = trace;
  w.scheduler = std::make_unique<BmlScheduler>(
      design(), std::make_shared<OracleMaxPredictor>());
  workloads.push_back(std::move(w));
  const MultiSimulationResult multi = sim.run(workloads);

  EXPECT_EQ(multi.total.scheduler_name, single.scheduler_name);
  EXPECT_EQ(multi.total.compute_energy, single.compute_energy);
  EXPECT_EQ(multi.total.reconfiguration_energy,
            single.reconfiguration_energy);
  EXPECT_EQ(multi.total.reconfigurations, single.reconfigurations);
  EXPECT_EQ(multi.total.qos.violation_seconds, single.qos.violation_seconds);
  EXPECT_EQ(multi.total.peak_machines, single.peak_machines);
  // At N = 1 the app slice is the whole cluster.
  ASSERT_EQ(multi.apps.size(), 1u);
  EXPECT_EQ(multi.apps.front().compute_energy, single.compute_energy);
  EXPECT_EQ(multi.apps.front().qos_stats.violation_seconds,
            single.qos.violation_seconds);
}

// ------------------------------------------------------------ coordinator

TEST(Coordinator, SumModeIsElementwiseSum) {
  const Catalog catalog = design()->candidates();
  const Coordinator coordinator(catalog, CoordinatorMode::kSum, {1.0, 1.0},
                                0.0);
  std::vector<Combination> contributions;
  const Combination merged = coordinator.merge(
      {Combination({2, 1}), Combination({0, 3})}, contributions);
  Combination expected({2, 4});
  expected.resize(catalog.size());
  EXPECT_EQ(merged, expected);
  ASSERT_EQ(contributions.size(), 2u);
  EXPECT_EQ(contributions[0].count(0), 2);
  EXPECT_EQ(contributions[1].count(1), 3);
}

TEST(Coordinator, PartitionedClampsToCapacityShares) {
  const Catalog catalog = design()->candidates();
  // Two equal shares over a budget of 2 * big capacity: each app keeps at
  // most one Big machine's worth of capacity.
  const ReqRate big = catalog.front().max_perf();
  const Coordinator coordinator(catalog, CoordinatorMode::kPartitioned,
                                {1.0, 1.0}, 2.0 * big);
  EXPECT_DOUBLE_EQ(coordinator.capacity_cap(0), big);

  std::vector<Combination> contributions;
  const Combination merged = coordinator.merge(
      {Combination({3, 0}), Combination({1, 0})}, contributions);
  // App 0 asked for 3 Bigs (3x its cap): trimmed largest-first down to 1.
  EXPECT_EQ(contributions[0].count(0), 1);
  EXPECT_EQ(contributions[1].count(0), 1);
  EXPECT_EQ(merged.count(0), 2);
  EXPECT_LE(capacity(catalog, contributions[0]),
            coordinator.capacity_cap(0) + 1e-9);
}

TEST(Coordinator, FinalTrimStepPicksTheSmallestSufficientArch) {
  // Regression: the clamp used to trim largest-arch-first to the end,
  // overshooting the cap by nearly one Big machine when dropping a
  // smaller arch would have sufficed. With a cap of one Big plus half a
  // Little, a proposal of {1 Big, 1 Little} must shed the Little (keeping
  // capacity = Big <= cap), not the Big (capacity = Little, a huge
  // overshoot).
  const Catalog catalog = design()->candidates();
  ASSERT_GE(catalog.size(), 2u);
  const std::size_t little = catalog.size() - 1;
  const ReqRate big_perf = catalog.front().max_perf();
  const ReqRate little_perf = catalog[little].max_perf();
  ASSERT_GT(big_perf, little_perf);

  const ReqRate cap = big_perf + 0.5 * little_perf;
  const Coordinator coordinator(catalog, CoordinatorMode::kPartitioned, {1.0},
                                cap);
  Combination proposal;
  proposal.resize(catalog.size());
  proposal.add(0, 1);
  proposal.add(little, 1);
  std::vector<Combination> contributions;
  const Combination merged = coordinator.merge({proposal}, contributions);
  EXPECT_EQ(merged.count(0), 1);
  EXPECT_EQ(merged.count(little), 0);
  EXPECT_DOUBLE_EQ(capacity(catalog, merged), big_perf);
  // Determinism: the same inputs trim identically.
  std::vector<Combination> again;
  EXPECT_EQ(coordinator.merge({proposal}, again), merged);
}

TEST(Coordinator, TrimStillShedsLargestFirstWhileFarOverCap) {
  // When no single removal can reach the cap the trim must still shed the
  // largest architecture first (fastest convergence): 3 Bigs against a
  // 1.2-Big cap end as exactly 1 Big.
  const Catalog catalog = design()->candidates();
  const ReqRate big_perf = catalog.front().max_perf();
  const Coordinator coordinator(catalog, CoordinatorMode::kPartitioned, {1.0},
                                1.2 * big_perf);
  Combination proposal;
  proposal.resize(catalog.size());
  proposal.add(0, 3);
  std::vector<Combination> contributions;
  const Combination merged = coordinator.merge({proposal}, contributions);
  EXPECT_EQ(merged.count(0), 1);
  EXPECT_LE(capacity(catalog, merged), 1.2 * big_perf + 1e-9);
}

TEST(Coordinator, ToStringRejectsInvalidMode) {
  EXPECT_STREQ(to_string(CoordinatorMode::kSum), "sum");
  EXPECT_STREQ(to_string(CoordinatorMode::kPartitioned), "partitioned");
  EXPECT_THROW((void)to_string(static_cast<CoordinatorMode>(99)),
               std::logic_error);
}

TEST(Coordinator, NoBudgetDisablesTheClamp) {
  const Catalog catalog = design()->candidates();
  const Coordinator coordinator(catalog, CoordinatorMode::kPartitioned,
                                {1.0}, 0.0);
  std::vector<Combination> contributions;
  const Combination merged =
      coordinator.merge({Combination({5, 2})}, contributions);
  EXPECT_EQ(merged.count(0), 5);
  EXPECT_EQ(merged.count(1), 2);
}

TEST(Coordinator, RejectsBadInputs) {
  const Catalog catalog = design()->candidates();
  EXPECT_THROW(Coordinator(catalog, CoordinatorMode::kSum, {}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(Coordinator(catalog, CoordinatorMode::kSum, {1.0, 0.0}, 0.0),
               std::invalid_argument);
  const Coordinator coordinator(catalog, CoordinatorMode::kSum, {1.0}, 0.0);
  std::vector<Combination> contributions;
  EXPECT_THROW(
      (void)coordinator.merge({Combination({1}), Combination({1})},
                              contributions),
      std::invalid_argument);
}

// ------------------------------------------------------- fault domains

TEST(MultiWorkload, FaultDomainsGroupAndIsolate) {
  const auto make_workloads = [](const std::string& domain_a,
                                 const std::string& domain_b) {
    std::vector<Workload> workloads;
    for (const std::string* domain : {&domain_a, &domain_b}) {
      Workload w;
      w.name = "app" + std::to_string(workloads.size());
      w.trace = constant_trace(900.0, 86'400.0);
      w.scheduler = std::make_unique<BmlScheduler>(
          design(), std::make_shared<OracleMaxPredictor>());
      w.fault_domain = *domain;
      workloads.push_back(std::move(w));
    }
    return workloads;
  };
  SimulatorOptions options;
  options.faults.mtbf = 2400.0;
  options.faults.mttr = 600.0;
  options.faults.seed = 19;
  const Simulator sim(design()->candidates(), options);

  // Same named domain: one shared crash/repair process, both apps report
  // the identical domain slice and the cluster total counts it once.
  auto shared = make_workloads("pool", "pool");
  const MultiSimulationResult grouped = sim.run(shared);
  ASSERT_GT(grouped.total.machine_failures, 0);
  EXPECT_EQ(grouped.apps[0].failures, grouped.apps[1].failures);
  EXPECT_EQ(grouped.apps[0].unavailable_seconds,
            grouped.apps[1].unavailable_seconds);
  EXPECT_EQ(grouped.apps[0].failures, grouped.total.machine_failures);

  // Private (default) domains: independent processes, the cluster total
  // is the sum of the per-domain counts and the downtime union is bounded
  // by the per-domain sum.
  auto isolated = make_workloads("", "");
  const MultiSimulationResult split = sim.run(isolated);
  ASSERT_GT(split.total.machine_failures, 0);
  EXPECT_EQ(split.apps[0].failures + split.apps[1].failures,
            split.total.machine_failures);
  EXPECT_LE(split.total.unavailable_seconds,
            split.apps[0].unavailable_seconds +
                split.apps[1].unavailable_seconds);
  // The domains really are distinct streams.
  EXPECT_NE(split.apps[0].unavailable_seconds,
            split.apps[1].unavailable_seconds);
}

// ---------------------------------------------------- capacity splitting

TEST(Cluster, SplitCapacityIsLoadProportional) {
  Cluster cluster(design()->candidates(), Combination({2}));  // 2 Bigs
  const ReqRate cap = cluster.on_capacity();
  std::vector<ReqRate> alloc;
  cluster.split_capacity({300.0, 100.0}, 400.0, alloc);
  ASSERT_EQ(alloc.size(), 2u);
  EXPECT_DOUBLE_EQ(alloc[0], cap * 0.75);
  EXPECT_DOUBLE_EQ(alloc[1], cap * 0.25);
  // No offered load: equal split.
  cluster.split_capacity({0.0, 0.0}, 0.0, alloc);
  EXPECT_DOUBLE_EQ(alloc[0], cap * 0.5);
  EXPECT_DOUBLE_EQ(alloc[1], cap * 0.5);
  // A single workload is allocated the whole capacity exactly.
  cluster.split_capacity({123.0}, 123.0, alloc);
  ASSERT_EQ(alloc.size(), 1u);
  EXPECT_EQ(alloc[0], cap);
}

TEST(Workload, CombinedTraceSumsAndPadsShorterTraces) {
  std::vector<const LoadTrace*> traces;
  const LoadTrace a({10.0, 20.0, 30.0});
  const LoadTrace b({1.0, 2.0});
  traces = {&a, &b};
  const LoadTrace sum = combined_trace(traces);
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum.at(0), 11.0);
  EXPECT_DOUBLE_EQ(sum.at(1), 22.0);
  EXPECT_DOUBLE_EQ(sum.at(2), 30.0);
  // A single trace is returned unchanged.
  const LoadTrace alone = combined_trace(std::vector<const LoadTrace*>{&a});
  EXPECT_EQ(alone.size(), a.size());
  EXPECT_DOUBLE_EQ(alone.at(2), 30.0);
}

// -------------------------------------------- scenario-level regression

constexpr const char* kLegacySpec = R"(name = pinned
trace = step
trace.segments = 150:1200;2300:1200;90:1200
scheduler = bml
predictor = oracle-max
qos = critical
seed = 5
sweep seed = 5,6
sweep graceful_off = true,false
sweep event_driven = true,false
)";

constexpr const char* kSingleAppSpec = R"(name = pinned
seed = 5
[app]
trace = step
trace.segments = 150:1200;2300:1200;90:1200
scheduler = bml
predictor = oracle-max
qos = critical
sweep seed = 5,6
sweep graceful_off = true,false
sweep event_driven = true,false
)";

TEST(MultiWorkload, SingleAppSpecCsvIsByteIdenticalToLegacySpec) {
  // The acceptance pin: one [app] section must reproduce the pre-refactor
  // single-app engine byte-for-byte, across graceful-off and both
  // execution strategies (the event_driven axis doubles as a fast-path /
  // reference equivalence check at the CSV level).
  SweepOptions options;
  options.threads = 2;
  const SweepReport legacy = run_sweep(parse_scenario(kLegacySpec), options);
  const SweepReport single_app =
      run_sweep(parse_scenario(kSingleAppSpec), options);
  ASSERT_EQ(legacy.rows.size(), 8u);
  EXPECT_EQ(legacy.to_csv(), single_app.to_csv());
}

TEST(MultiWorkload, MultiAppScenarioRunsThroughTheEngine) {
  ScenarioSpec spec;
  spec.name = "pair";
  spec.apps.resize(2);
  spec.apps[0].name = "web";
  spec.apps[0].trace = "step";
  spec.apps[0].trace_params["segments"] = "200:1200;1500:1200;100:1200";
  spec.apps[0].qos = "critical";
  spec.apps[1].name = "batch";
  spec.apps[1].trace = "constant";
  spec.apps[1].trace_params["rate"] = "300";
  spec.apps[1].trace_params["duration"] = "3600";
  spec.apps[1].scheduler = "reactive";
  const ScenarioResult result = run_scenario(spec);
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_EQ(result.apps[0].name, "web");
  EXPECT_EQ(result.apps[1].name, "batch");
  EXPECT_GT(result.apps[0].compute_energy, 0.0);
  EXPECT_GT(result.apps[1].compute_energy, 0.0);
  expect_close(
      result.apps[0].compute_energy + result.apps[1].compute_energy,
      result.sim.compute_energy, "per-app split");
  EXPECT_EQ(result.sim.scheduler_name, "bml(oracle-max)+reactive");
  EXPECT_DOUBLE_EQ(result.trace_duration, 3600.0);
}

TEST(MultiWorkload, SweepCsvGrowsPerAppColumnsOnlyForMultiApp) {
  ScenarioSpec multi;
  multi.apps.resize(2);
  multi.apps[0].trace_params["duration"] = "600";
  multi.apps[1].trace_params["duration"] = "600";
  const SweepReport multi_report = run_sweep(multi, {.threads = 1});
  EXPECT_NE(multi_report.to_csv().find("app0_compute_energy_j"),
            std::string::npos);
  EXPECT_NE(multi_report.to_csv().find("app1_served_fraction"),
            std::string::npos);

  ScenarioSpec single;
  single.trace_params["duration"] = "600";
  const SweepReport single_report = run_sweep(single, {.threads = 1});
  EXPECT_EQ(single_report.to_csv().find("app0_"), std::string::npos);
}

// ---------------------------------------- QoS across capacity boundaries

TEST(MultiWorkload, QosSpansStraddlingCapacityBoundaryMatchReference) {
  // A reactive scheduler facing a step burst serves violation seconds
  // while the replacement machines boot: the fast path batches those
  // seconds into multi-second spans that end exactly at the boot
  // completion (the capacity boundary). Counters must match the
  // per-second reference exactly.
  const LoadTrace trace = step_trace(
      {{100.0, 900.0}, {2600.0, 900.0}, {100.0, 900.0}, {1900.0, 900.0}});
  auto make = [] {
    return std::make_unique<ReactiveScheduler>(design());
  };

  SimulatorOptions options;
  options.event_driven = true;
  const Simulator fast_sim(design()->candidates(), options);
  options.event_driven = false;
  const Simulator reference_sim(design()->candidates(), options);
  auto fast_scheduler = make();
  auto reference_scheduler = make();
  const SimulationResult fast = fast_sim.run(*fast_scheduler, trace);
  const SimulationResult reference =
      reference_sim.run(*reference_scheduler, trace);

  // The scenario must actually exercise the boundary: violations exist
  // and last longer than one second (so at least one multi-second span
  // straddles load > capacity before the boot completes).
  EXPECT_GT(reference.qos.violation_seconds, 1);
  EXPECT_EQ(fast.qos.violation_seconds, reference.qos.violation_seconds);
  EXPECT_EQ(fast.qos.total_seconds, reference.qos.total_seconds);
  expect_close(fast.qos.unserved_requests, reference.qos.unserved_requests,
               "unserved_requests");
  expect_close(fast.qos.worst_shortfall, reference.qos.worst_shortfall,
               "worst_shortfall");
}

}  // namespace
}  // namespace bml
