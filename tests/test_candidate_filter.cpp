// Tests for core/candidate_filter — Step 2 of the methodology.
#include "core/candidate_filter.hpp"

#include <gtest/gtest.h>

#include "arch/catalog.hpp"
#include "util/rng.hpp"

namespace bml {
namespace {

TEST(FilterCandidates, RealCatalogRemovesTaurus) {
  const FilterResult r = filter_candidates(real_catalog());
  // The paper: "Step 2 results in the removal of Taurus architecture as its
  // maximum power consumption is higher than Paravance's while delivering
  // lower performance."
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0].name, "taurus");
  EXPECT_EQ(r.removed[0].reason, RemovalReason::kDominatedAtPeak);
  EXPECT_EQ(r.removed[0].dominated_by, "paravance");
  ASSERT_EQ(r.candidates.size(), 4u);
  EXPECT_EQ(r.candidates[0].name(), "paravance");
  EXPECT_EQ(r.candidates[1].name(), "graphene");
  EXPECT_EQ(r.candidates[2].name(), "chromebook");
  EXPECT_EQ(r.candidates[3].name(), "raspberry");
}

TEST(FilterCandidates, IllustrativeCatalogRemovesD) {
  const FilterResult r = filter_candidates(illustrative_catalog());
  // Fig. 1: "D will be removed due to its poor energy efficiency compared
  // to A."
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0].name, "arch-D");
  EXPECT_EQ(r.removed[0].dominated_by, "arch-A");
  ASSERT_EQ(r.candidates.size(), 3u);
  EXPECT_EQ(r.candidates[0].name(), "arch-A");
  EXPECT_EQ(r.candidates[1].name(), "arch-B");
  EXPECT_EQ(r.candidates[2].name(), "arch-C");
}

TEST(FilterCandidates, SortsByDecreasingPerformance) {
  const FilterResult r = filter_candidates(real_catalog());
  for (std::size_t i = 1; i < r.candidates.size(); ++i)
    EXPECT_GT(r.candidates[i - 1].max_perf(), r.candidates[i].max_perf());
}

TEST(FilterCandidates, KeptPeakPowersStrictlyDecrease) {
  // Invariant of the dominance filter: after Step 2, sorting by perf also
  // sorts by peak power (otherwise someone would have been dominated).
  for (const Catalog& input : {real_catalog(), illustrative_catalog()}) {
    const FilterResult r = filter_candidates(input);
    for (std::size_t i = 1; i < r.candidates.size(); ++i)
      EXPECT_GT(r.candidates[i - 1].max_power(),
                r.candidates[i].max_power());
  }
}

TEST(FilterCandidates, EmptyCatalogThrows) {
  EXPECT_THROW((void)filter_candidates({}), std::invalid_argument);
}

TEST(FilterCandidates, SingleArchKept) {
  Catalog one;
  one.emplace_back("solo", 100.0, 10.0, 50.0, TransitionCost{},
                   TransitionCost{});
  const FilterResult r = filter_candidates(one);
  EXPECT_EQ(r.candidates.size(), 1u);
  EXPECT_TRUE(r.removed.empty());
}

TEST(FilterCandidates, PerformanceTieKeepsCheaper) {
  Catalog c;
  c.emplace_back("pricey", 100.0, 10.0, 60.0, TransitionCost{},
                 TransitionCost{});
  c.emplace_back("cheap", 100.0, 10.0, 50.0, TransitionCost{},
                 TransitionCost{});
  const FilterResult r = filter_candidates(c);
  ASSERT_EQ(r.candidates.size(), 1u);
  EXPECT_EQ(r.candidates[0].name(), "cheap");
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0].name, "pricey");
}

TEST(FilterCandidates, EqualPowerSlowerIsRemoved) {
  Catalog c;
  c.emplace_back("fast", 200.0, 10.0, 50.0, TransitionCost{},
                 TransitionCost{});
  c.emplace_back("slow-same-power", 100.0, 10.0, 50.0, TransitionCost{},
                 TransitionCost{});
  const FilterResult r = filter_candidates(c);
  ASSERT_EQ(r.candidates.size(), 1u);
  EXPECT_EQ(r.candidates[0].name(), "fast");
}

TEST(AssignRoles, LabelsEndsAndMiddle) {
  const FilterResult r = filter_candidates(real_catalog());
  const auto roles = assign_roles(r.candidates);
  ASSERT_EQ(roles.size(), 4u);
  EXPECT_EQ(roles.front(), Role::kBig);
  EXPECT_EQ(roles[1], Role::kMedium);
  EXPECT_EQ(roles[2], Role::kMedium);
  EXPECT_EQ(roles.back(), Role::kLittle);
}

TEST(AssignRoles, DegenerateSizes) {
  EXPECT_TRUE(assign_roles({}).empty());
  Catalog one;
  one.emplace_back("solo", 100.0, 10.0, 50.0, TransitionCost{},
                   TransitionCost{});
  const auto roles1 = assign_roles(one);
  ASSERT_EQ(roles1.size(), 1u);
  EXPECT_EQ(roles1[0], Role::kBig);
}

// Property: no kept candidate may dominate another kept candidate, and
// every removed candidate must be dominated by some kept one.
class FilterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterProperty, DominanceInvariantsOnRandomCatalogs) {
  Rng rng(GetParam());
  Catalog input;
  const int n = static_cast<int>(rng.uniform_int(2, 10));
  for (int i = 0; i < n; ++i) {
    const double perf = rng.uniform(10.0, 2000.0);
    const double idle = rng.uniform(1.0, 100.0);
    const double peak = idle + rng.uniform(1.0, 200.0);
    input.emplace_back("arch" + std::to_string(i), perf, idle, peak,
                       TransitionCost{}, TransitionCost{});
  }
  const FilterResult r = filter_candidates(input);
  EXPECT_EQ(r.candidates.size() + r.removed.size(), input.size());
  ASSERT_FALSE(r.candidates.empty());
  for (std::size_t i = 0; i < r.candidates.size(); ++i)
    for (std::size_t j = 0; j < r.candidates.size(); ++j) {
      if (i == j) continue;
      const bool dominates =
          r.candidates[i].max_perf() >= r.candidates[j].max_perf() &&
          r.candidates[i].max_power() <= r.candidates[j].max_power();
      EXPECT_FALSE(dominates)
          << r.candidates[i].name() << " dominates "
          << r.candidates[j].name();
    }
  for (const RemovedArch& removed : r.removed) {
    const auto victim = find_profile(input, removed.name).value();
    const auto dominator = find_profile(r.candidates, removed.dominated_by);
    ASSERT_TRUE(dominator.has_value()) << removed.name;
    EXPECT_GE(dominator->max_perf(), victim.max_perf());
    EXPECT_LE(dominator->max_power(), victim.max_power());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCatalogs, FilterProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bml
