// Tests for power/rapl — capped power models and the homogeneous-RAPL foil.
#include "power/rapl.hpp"

#include <gtest/gtest.h>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"

namespace bml {
namespace {

LinearPowerModel paravance_model() {
  return LinearPowerModel(69.9, 200.5, 1331.0);
}

TEST(PowerCappedModel, CapClipsPowerAndPerformance) {
  const PowerCappedModel capped(paravance_model(), 150.0);
  EXPECT_DOUBLE_EQ(capped.cap(), 150.0);
  EXPECT_DOUBLE_EQ(capped.idle_power(), 69.9);
  EXPECT_NEAR(capped.max_power(), 150.0, 1e-6);
  // Performance saturates where the linear curve hits 150 W.
  const double expected_perf = (150.0 - 69.9) / ((200.5 - 69.9) / 1331.0);
  EXPECT_NEAR(capped.max_perf(), expected_perf, 1e-3);
  // Below the cap the curve is untouched.
  EXPECT_NEAR(capped.power_at(100.0), paravance_model().power_at(100.0),
              1e-9);
  // Beyond the capped rate the draw clamps at the cap.
  EXPECT_NEAR(capped.power_at(1331.0), 150.0, 1e-6);
}

TEST(PowerCappedModel, GenerousCapChangesNothing) {
  const PowerCappedModel capped(paravance_model(), 500.0);
  EXPECT_DOUBLE_EQ(capped.max_perf(), 1331.0);
  EXPECT_DOUBLE_EQ(capped.max_power(), 200.5);
}

TEST(PowerCappedModel, CapBelowIdleRejected) {
  EXPECT_THROW(PowerCappedModel(paravance_model(), 50.0),
               std::invalid_argument);
}

TEST(PowerCappedModel, CloneRoundTrips) {
  const PowerCappedModel capped(paravance_model(), 150.0);
  const auto clone = capped.clone();
  EXPECT_NEAR(clone->power_at(400.0), capped.power_at(400.0), 1e-9);
}

TEST(RaplHomogeneous, IdleFleetPaysFullIdle) {
  const auto big = find_profile(real_catalog(), "paravance").value();
  EXPECT_DOUBLE_EQ(rapl_homogeneous_power(big, 4, 0.0), 4 * 69.9);
}

TEST(RaplHomogeneous, FullLoadMatchesPeak) {
  const auto big = find_profile(real_catalog(), "paravance").value();
  EXPECT_NEAR(rapl_homogeneous_power(big, 4, 4 * 1331.0), 4 * 200.5, 1e-9);
}

TEST(RaplHomogeneous, SpreadsEvenly) {
  const auto big = find_profile(real_catalog(), "paravance").value();
  // 2 machines at 1331 total: each serves 665.5.
  EXPECT_NEAR(rapl_homogeneous_power(big, 2, 1331.0),
              2 * big.power_at(665.5), 1e-9);
  EXPECT_THROW((void)rapl_homogeneous_power(big, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)rapl_homogeneous_power(big, 1, -1.0),
               std::invalid_argument);
}

TEST(RaplVsBml, CappingCannotShedIdle) {
  // Section II's argument, quantified: at low load the ideally capped
  // homogeneous fleet still pays 4 idle Paravances; BML runs a Raspberry.
  const auto big = find_profile(real_catalog(), "paravance").value();
  const BmlDesign design = BmlDesign::build(real_catalog());
  const Watts rapl_low = rapl_homogeneous_power(big, 4, 5.0);
  const Watts bml_low = design.ideal_power(5.0);
  EXPECT_GT(rapl_low, 4 * 69.9 - 1e-9);
  EXPECT_LT(bml_low, 4.0);
  EXPECT_GT(rapl_low / bml_low, 50.0);
  // At full fleet load the two converge.
  const Watts rapl_high = rapl_homogeneous_power(big, 4, 4 * 1331.0);
  const Watts bml_high = design.ideal_power(4 * 1331.0);
  EXPECT_NEAR(rapl_high, bml_high, 1.0);
}

}  // namespace
}  // namespace bml
