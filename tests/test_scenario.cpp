// Tests for scenario/: spec parse/write round-trips, error paths through
// the registry, single-scenario runs, and sweep-grid determinism across
// thread counts.
#include "scenario/scenario_spec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "predict/predictor.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "sched/bml_scheduler.hpp"
#include "trace/synthetic.hpp"
#include "trace/wc98.hpp"

namespace bml {
namespace {

constexpr const char* kDemoSpec = R"(# demo
name = demo
catalog = real
trace = diurnal
trace.days = 2
trace.peak = 1200.5
scheduler = bml
scheduler.window = 400
predictor = moving-max
predictor.window = 200
qos = critical
graceful_off = false
faults.boot_time_jitter = 0.25
seed = 42
sweep trace.peak = 500,1000
sweep predictor = oracle-max,moving-max
)";

TEST(ScenarioSpec, ParseReadsEveryField) {
  const ScenarioSpec spec = parse_scenario(kDemoSpec);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.catalog, "real");
  EXPECT_EQ(spec.trace, "diurnal");
  EXPECT_EQ(spec.trace_params.at("days"), "2");
  EXPECT_EQ(spec.trace_params.at("peak"), "1200.5");
  EXPECT_EQ(spec.scheduler, "bml");
  EXPECT_EQ(spec.scheduler_params.at("window"), "400");
  EXPECT_EQ(spec.predictor, "moving-max");
  EXPECT_EQ(spec.qos, "critical");
  EXPECT_FALSE(spec.graceful_off);
  EXPECT_TRUE(spec.event_driven);
  EXPECT_DOUBLE_EQ(spec.boot_time_jitter, 0.25);
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.sweeps.size(), 2u);
  EXPECT_EQ(spec.sweeps[0].key, "trace.peak");
  EXPECT_EQ(spec.sweeps[0].values, (std::vector<std::string>{"500", "1000"}));
  EXPECT_EQ(spec.sweeps[1].key, "predictor");
}

TEST(ScenarioSpec, WriteParseRoundTrip) {
  const ScenarioSpec spec = parse_scenario(kDemoSpec);
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec);
  // The canonical form is a fixed point.
  EXPECT_EQ(write_scenario(parse_scenario(text)), text);
}

TEST(ScenarioSpec, DefaultSpecRoundTrips) {
  const ScenarioSpec spec;
  EXPECT_EQ(parse_scenario(write_scenario(spec)), spec);
}

TEST(ScenarioSpec, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "bml_scenario_rt.scn";
  const ScenarioSpec spec = parse_scenario(kDemoSpec);
  save_scenario(spec, path);
  EXPECT_EQ(load_scenario(path), spec);
  std::filesystem::remove(path);
}

TEST(ScenarioSpec, UnknownKeyThrowsWithLineContext) {
  try {
    (void)parse_scenario("name = x\nbogus_key = 1\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus_key"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioSpec, BadValuesThrow) {
  EXPECT_THROW((void)parse_scenario("graceful_off = maybe\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("seed = -3\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("qos = best-effort\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("design.solver = magic\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("design.max_rate = fast\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("faults.boot_time_jitter = nan\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("name\n"),
               std::runtime_error);  // no '='
  EXPECT_THROW((void)parse_scenario("sweep qos = tolerant,bogus\n"),
               std::runtime_error);  // axis values are probed at parse time
  EXPECT_THROW((void)parse_scenario("sweep trace.peak = \n"),
               std::runtime_error);  // empty axis
  EXPECT_THROW(
      (void)parse_scenario("sweep seed = 1,2\nsweep seed = 3,4\n"),
      std::runtime_error);  // duplicate axis
}

constexpr const char* kMultiAppSpec = R"(name = colocated
catalog = real
coordinator = partitioned
coordinator.budget = 3500
seed = 9
[app]
name = frontend
trace = diurnal
trace.peak = 1500
qos = critical
share = 2
[app]
trace = constant
trace.rate = 300
scheduler = reactive
predictor = moving-max
sweep app0.trace.peak = 800,1600
)";

TEST(ScenarioSpec, ParsesAppSectionsAndCoordinator) {
  const ScenarioSpec spec = parse_scenario(kMultiAppSpec);
  EXPECT_EQ(spec.coordinator, "partitioned");
  EXPECT_EQ(spec.coordinator_budget, "3500");
  ASSERT_EQ(spec.apps.size(), 2u);
  EXPECT_EQ(spec.apps[0].name, "frontend");
  EXPECT_EQ(spec.apps[0].trace, "diurnal");
  EXPECT_EQ(spec.apps[0].trace_params.at("peak"), "1500");
  EXPECT_EQ(spec.apps[0].qos, "critical");
  EXPECT_DOUBLE_EQ(spec.apps[0].share, 2.0);
  EXPECT_EQ(spec.apps[1].name, "");  // auto-named app1 at build time
  EXPECT_EQ(spec.apps[1].scheduler, "reactive");
  EXPECT_EQ(spec.apps[1].predictor, "moving-max");
  ASSERT_EQ(spec.sweeps.size(), 1u);
  EXPECT_EQ(spec.sweeps[0].key, "app0.trace.peak");
}

TEST(ScenarioSpec, MultiAppRoundTrips) {
  const ScenarioSpec spec = parse_scenario(kMultiAppSpec);
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec);
  EXPECT_EQ(write_scenario(parse_scenario(text)), text);
}

TEST(ScenarioSpec, AppKeyErrors) {
  // Unknown key inside a section.
  EXPECT_THROW((void)parse_scenario("[app]\ncatalog = real\n"),
               std::runtime_error);
  // App-addressed key without a matching section.
  EXPECT_THROW((void)parse_scenario("app0.trace = constant\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario("[app]\ntrace = constant\napp1.qos = critical\n"),
      std::runtime_error);
  // Malformed prefix and bad typed values.
  EXPECT_THROW((void)parse_scenario("[app]\napp0trace = constant\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\nshare = 0\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\nqos = best\n"),
               std::runtime_error);
  // Unknown section names are rejected.
  EXPECT_THROW((void)parse_scenario("[application]\n"), std::runtime_error);
  // Coordinator validation.
  EXPECT_THROW((void)parse_scenario("coordinator = voting\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("coordinator.budget = lots\n"),
               std::runtime_error);
}

TEST(RunSweep, RejectsIgnoredTopLevelAxesInMultiAppSpecs) {
  // With [app] sections the top-level workload fields are dead; sweeping
  // one would expand a grid of identical rows. The runner must refuse.
  ScenarioSpec spec = parse_scenario(kMultiAppSpec);
  spec.sweeps.push_back(SweepAxis{"trace.peak", {"500", "5000"}});
  EXPECT_THROW((void)run_sweep(spec, {.threads = 1}), std::runtime_error);
  spec.sweeps.back() = SweepAxis{"scheduler", {"bml", "reactive"}};
  EXPECT_THROW((void)run_sweep(spec, {.threads = 1}), std::runtime_error);
  spec.sweeps.back() = SweepAxis{"priority", {"0", "2"}};
  EXPECT_THROW((void)run_sweep(spec, {.threads = 1}), std::runtime_error);
  // Simulator knobs stay sweepable (expansion only — keep the test cheap).
  spec.sweeps.back() = SweepAxis{"graceful_off", {"true", "false"}};
  EXPECT_EQ(expand_sweep(spec).size(), 4u);
}

TEST(RunScenario, RejectsUnvalidatedComponentNamesInProgrammaticSpecs) {
  // Specs built in code bypass ScenarioSpec::set; the build path must
  // still reject unknown names instead of silently running defaults.
  ScenarioSpec spec;
  spec.trace_params["duration"] = "60";
  spec.coordinator = "partioned";  // typo
  EXPECT_THROW((void)run_scenario(spec), std::runtime_error);
  spec.coordinator = "sum";
  spec.qos = "best-effort";
  EXPECT_THROW((void)run_scenario(spec), std::runtime_error);
}

TEST(RunScenario, IdenticalAppSectionsGetDistinctNoiseStreams) {
  // Two identical noisy tenants must not replay the same random stream —
  // each [app] section derives its own seed from the master (app 0 keeps
  // the master itself, pinning single-app equivalence).
  ScenarioSpec spec;
  spec.apps.resize(2);
  for (AppSpec& app : spec.apps) {
    app.trace = "diurnal";
    app.trace_params["peak"] = "800";
    app.trace_params["noise"] = "0.05";
  }
  const ScenarioResult result = run_scenario(spec);
  ASSERT_EQ(result.apps.size(), 2u);
  EXPECT_NE(result.apps[0].qos_stats.offered_requests,
            result.apps[1].qos_stats.offered_requests);
  // An explicit per-section trace.seed still wins: pin both to the same
  // stream and the tenants collapse onto identical traces again.
  ScenarioSpec pinned = spec;
  pinned.apps[0].trace_params["seed"] = "3";
  pinned.apps[1].trace_params["seed"] = "3";
  const ScenarioResult same = run_scenario(pinned);
  EXPECT_DOUBLE_EQ(same.apps[0].qos_stats.offered_requests,
                   same.apps[1].qos_stats.offered_requests);
}

TEST(ScenarioSpec, ReplicasParseValidateAndRoundTrip) {
  const ScenarioSpec spec = parse_scenario(
      "[app]\nname = web\nreplicas = 3\ntrace = constant\n"
      "trace.rate = 100\ntrace.duration = 60\n");
  ASSERT_EQ(spec.apps.size(), 1u);
  EXPECT_EQ(spec.apps[0].replicas, 3);
  const std::string text = write_scenario(spec);
  EXPECT_NE(text.find("replicas = 3"), std::string::npos);
  EXPECT_EQ(parse_scenario(text), spec);
  EXPECT_THROW((void)parse_scenario("[app]\nreplicas = 0\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\nreplicas = -2\n"),
               std::runtime_error);
}

TEST(RunScenario, ReplicasMatchExplicitlyStampedSections) {
  // `replicas = N` must be pure syntax sugar: the expansion (derived
  // names, per-expanded-index seeds, shared fault domain) lands on
  // exactly the simulation that N hand-written identical sections
  // produce — which also pins the trace dedup sharing one materialised
  // trace across the copies.
  const char* replicated =
      "seed = 11\nfaults.mtbf = 1200\nfaults.mttr = 300\nfaults.seed = 3\n"
      "[app]\nname = web\nreplicas = 3\ntrace = step\n"
      "trace.segments = 150:600;1900:600\nfault_domain = pool\n"
      "[app]\nname = batch\ntrace = constant\ntrace.rate = 300\n"
      "trace.duration = 1200\nscheduler = reactive\n";
  const char* expanded =
      "seed = 11\nfaults.mtbf = 1200\nfaults.mttr = 300\nfaults.seed = 3\n"
      "[app]\nname = web-0\ntrace = step\n"
      "trace.segments = 150:600;1900:600\nfault_domain = pool\n"
      "[app]\nname = web-1\ntrace = step\n"
      "trace.segments = 150:600;1900:600\nfault_domain = pool\n"
      "[app]\nname = web-2\ntrace = step\n"
      "trace.segments = 150:600;1900:600\nfault_domain = pool\n"
      "[app]\nname = batch\ntrace = constant\ntrace.rate = 300\n"
      "trace.duration = 1200\nscheduler = reactive\n";
  const ScenarioResult a = run_scenario(parse_scenario(replicated));
  const ScenarioResult b = run_scenario(parse_scenario(expanded));
  ASSERT_EQ(a.apps.size(), 4u);
  ASSERT_EQ(b.apps.size(), 4u);
  EXPECT_EQ(a.sim.reconfigurations, b.sim.reconfigurations);
  EXPECT_EQ(a.sim.machine_failures, b.sim.machine_failures);
  EXPECT_EQ(a.sim.peak_machines, b.sim.peak_machines);
  EXPECT_DOUBLE_EQ(a.sim.compute_energy, b.sim.compute_energy);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].failures, b.apps[i].failures);
    EXPECT_DOUBLE_EQ(a.apps[i].compute_energy, b.apps[i].compute_energy);
  }
}

TEST(RunSweep, SharedTraceRejectsAppScopedTraceAxes) {
  ScenarioSpec spec;
  spec.apps.resize(1);
  spec.sweeps.push_back(SweepAxis{"app0.trace.rate", {"100", "200"}});
  const LoadTrace trace({10.0, 20.0});
  SweepOptions options;
  options.threads = 1;
  options.shared_trace = &trace;
  EXPECT_THROW((void)run_sweep(spec, options), std::runtime_error);
}

TEST(ScenarioSpec, AppAxisValuesAreProbedAtParseTime) {
  EXPECT_THROW(
      (void)parse_scenario("[app]\nsweep app0.qos = tolerant,bogus\n"),
      std::runtime_error);
}

// ------------------------------------------------------- runtime faults

constexpr const char* kFaultySpec = R"(name = faulty
seed = 9
faults.mtbf = 3600
faults.mttr = 600
faults.seed = 21
[app]
name = web
trace = constant
trace.rate = 1200
trace.duration = 43200
fault_domain = pool
[app]
name = api
trace = constant
trace.rate = 600
trace.duration = 43200
fault_domain = pool
[app]
name = batch
trace = constant
trace.rate = 300
trace.duration = 43200
)";

TEST(ScenarioSpec, ParsesFaultKeysAndRoundTrips) {
  const ScenarioSpec spec = parse_scenario(kFaultySpec);
  EXPECT_DOUBLE_EQ(spec.fault_mtbf, 3600.0);
  EXPECT_DOUBLE_EQ(spec.fault_mttr, 600.0);
  EXPECT_EQ(spec.fault_seed, 21);
  ASSERT_EQ(spec.apps.size(), 3u);
  EXPECT_EQ(spec.apps[0].fault_domain, "pool");
  EXPECT_EQ(spec.apps[1].fault_domain, "pool");
  EXPECT_EQ(spec.apps[2].fault_domain, "");
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec);
  EXPECT_EQ(write_scenario(parse_scenario(text)), text);
  // The default spec (no fault seed) round-trips without the key.
  const ScenarioSpec plain;
  EXPECT_EQ(write_scenario(plain).find("faults.seed"), std::string::npos);
  EXPECT_EQ(parse_scenario(write_scenario(plain)), plain);
}

TEST(ScenarioSpec, NumericKeysRejectTrailingGarbageNamingTheKey) {
  // Full-token numeric parsing: "3x" must never silently parse as 3, and
  // the error must name the offending key.
  const std::pair<const char*, const char*> cases[] = {
      {"faults.mtbf = 3x\n", "faults.mtbf"},
      {"faults.mttr = 60s\n", "faults.mttr"},
      {"faults.seed = 7q\n", "faults.seed"},
      {"seed = 1 2\n", "seed"},
      {"coordinator.budget = 35o0\n", "coordinator.budget"},
      {"design.max_rate = 10x0\n", "design.max_rate"},
      {"[app]\nshare = 2x\n", "share"},
  };
  for (const auto& [text, key] : cases) {
    try {
      (void)parse_scenario(text);
      FAIL() << "expected std::runtime_error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "error '" << e.what() << "' does not name key " << key;
    }
  }
  // Sweep axis values go through the same probing.
  try {
    (void)parse_scenario("sweep faults.mtbf = 3600,1h\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("faults.mtbf"), std::string::npos);
  }
  EXPECT_THROW((void)parse_scenario("faults.mtbf = -5\n"),
               std::runtime_error);
}

TEST(RunScenario, FaultySpecReportsPerDomainAvailability) {
  const ScenarioResult result = run_scenario(parse_scenario(kFaultySpec));
  ASSERT_EQ(result.apps.size(), 3u);
  EXPECT_GT(result.sim.machine_failures, 0);
  EXPECT_LT(result.sim.availability, 1.0);
  // web and api share the "pool" domain; batch has its own.
  EXPECT_EQ(result.apps[0].failures, result.apps[1].failures);
  EXPECT_EQ(result.apps[0].unavailable_seconds,
            result.apps[1].unavailable_seconds);
  EXPECT_EQ(result.apps[0].failures + result.apps[2].failures,
            result.sim.machine_failures);
}

TEST(RunSweep, FaultAxesShareOneBuildAndStayDeterministic) {
  // faults.* axes are runtime-only: the catalog / trace / design build is
  // shared across the whole grid even though the rows differ, and the CSV
  // stays byte-identical across thread counts.
  ScenarioSpec spec;
  spec.name = "faulty-grid";
  spec.trace = "constant";
  spec.trace_params["rate"] = "1500";
  spec.trace_params["duration"] = "43200";
  spec.sweeps.push_back(SweepAxis{"faults.mtbf", {"1800", "7200"}});
  spec.sweeps.push_back(SweepAxis{"faults.seed", {"1", "2"}});

  const std::uint64_t before = CombinationTable::built_count();
  const SweepReport one = run_sweep(spec, SweepOptions{.threads = 1});
  EXPECT_EQ(CombinationTable::built_count() - before, 1u);
  ASSERT_EQ(one.rows.size(), 4u);
  for (const SweepRow& row : one.rows) {
    EXPECT_TRUE(row.faults_enabled);
    EXPECT_GT(row.machine_failures, 0);
    EXPECT_LT(row.availability, 1.0);
  }
  // More frequent strikes cost more availability (same seed, same trace).
  EXPECT_LT(one.rows[0].availability, one.rows[2].availability);
  // Different fault seeds land different timelines.
  EXPECT_NE(one.rows[0].availability, one.rows[1].availability);

  const SweepReport four = run_sweep(spec, SweepOptions{.threads = 4});
  EXPECT_EQ(one.to_csv(), four.to_csv());
  EXPECT_NE(one.to_csv().find("machine_failures"), std::string::npos);
  EXPECT_NE(one.to_csv().find("lost_capacity_req_s"), std::string::npos);
}

TEST(RunSweep, ZeroRateFaultConfigKeepsTheClassicCsvSchema) {
  // A spec that never enables the runtime channel must keep the exact
  // pre-fault column set — the CSV regression guard for downstream
  // tooling — and an explicit zero-rate config is byte-identical to an
  // untouched spec.
  ScenarioSpec spec;
  spec.name = "clean";
  spec.trace = "constant";
  spec.trace_params["rate"] = "400";
  spec.trace_params["duration"] = "1200";
  spec.sweeps.push_back(SweepAxis{"scheduler", {"bml", "reactive"}});
  const SweepReport plain = run_sweep(spec, SweepOptions{.threads = 1});

  ScenarioSpec zero = spec;
  zero.fault_mtbf = 0.0;
  zero.fault_mttr = 500.0;  // configured but rate 0: channel stays off
  const SweepReport zeroed = run_sweep(zero, SweepOptions{.threads = 1});
  EXPECT_EQ(plain.to_csv(), zeroed.to_csv());

  const std::string csv = plain.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "scenario,scheduler,scheduler_name,total_energy_j,"
            "compute_energy_j,reconfiguration_energy_j,reconfigurations,"
            "qos_violation_s,served_fraction,mean_power_w,peak_machines");
}

TEST(ScenarioSpec, ParsesGroupCrewAndSloKeysAndRoundTrips) {
  const ScenarioSpec spec = parse_scenario(R"(name = resilient
faults.groups = 3
faults.group_mtbf = 14400
faults.group_mttr = 1800
faults.crews = 2
slo.window = 7200
slo.availability = 0.999
slo.spare = 0.5
[app]
name = web
slo.availability = 0.9995
slo.spare = 0.4
)");
  EXPECT_EQ(spec.fault_groups, 3);
  EXPECT_DOUBLE_EQ(spec.fault_group_mtbf, 14400.0);
  EXPECT_DOUBLE_EQ(spec.fault_group_mttr, 1800.0);
  EXPECT_EQ(spec.fault_crews, 2);
  EXPECT_DOUBLE_EQ(spec.slo_window, 7200.0);
  EXPECT_DOUBLE_EQ(spec.slo_availability, 0.999);
  EXPECT_DOUBLE_EQ(spec.slo_spare, 0.5);
  ASSERT_EQ(spec.apps.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.apps[0].slo_availability, 0.9995);
  EXPECT_DOUBLE_EQ(spec.apps[0].slo_spare, 0.4);
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec);
  EXPECT_EQ(write_scenario(parse_scenario(text)), text);
  // Defaults round-trip too (app slo keys are omitted at defaults).
  const ScenarioSpec plain;
  EXPECT_EQ(parse_scenario(write_scenario(plain)), plain);
  // Validation fails loudly at parse time, also under sweep probing.
  EXPECT_THROW((void)parse_scenario("faults.groups = -1\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("faults.groups = 2.5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("faults.crews = -2\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("faults.group_mtbf = -1\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("slo.availability = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("slo.spare = 0\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("slo.window = 0\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\nslo.availability = 2\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("sweep slo.availability = 0.9,1.5\n"),
               std::runtime_error);
}

TEST(RunSweep, GroupFaultAndSloColumnsArePinnedAndThreadStable) {
  // The resilience column groups land in a fixed order after the fault
  // block: group_strikes (correlated channel), then spare_seconds /
  // spare_energy_j (SLO feedback). Pinned so downstream tooling can rely
  // on the schema, and byte-identical across thread counts.
  ScenarioSpec spec;
  spec.name = "rackstruck";
  spec.trace = "constant";
  spec.trace_params["rate"] = "1500";
  spec.trace_params["duration"] = "43200";
  spec.fault_groups = 2;
  spec.fault_group_mtbf = 7200.0;
  spec.fault_group_mttr = 900.0;
  spec.fault_crews = 1;
  spec.fault_seed = 5;
  spec.slo_window = 7200.0;
  spec.slo_availability = 0.999;

  const SweepReport one = run_sweep(spec, SweepOptions{.threads = 1});
  ASSERT_EQ(one.rows.size(), 1u);
  EXPECT_TRUE(one.rows[0].faults_enabled);
  EXPECT_TRUE(one.rows[0].groups_enabled);
  EXPECT_TRUE(one.rows[0].slo_enabled);
  EXPECT_GT(one.rows[0].group_strikes, 0);
  EXPECT_GT(one.rows[0].spare_seconds, 0);

  const std::string csv = one.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "scenario,scheduler_name,total_energy_j,compute_energy_j,"
            "reconfiguration_energy_j,reconfigurations,qos_violation_s,"
            "served_fraction,mean_power_w,peak_machines,machine_failures,"
            "availability,lost_capacity_req_s,group_strikes,spare_seconds,"
            "spare_energy_j");
  const SweepReport four = run_sweep(spec, SweepOptions{.threads = 4});
  EXPECT_EQ(csv, four.to_csv());
}

TEST(RunSweep, ZeroRateGroupConfigKeepsTheNoFaultCsvSchema) {
  // Groups without a strike rate (and an SLO target without any fault
  // channel... which can never trip) must not change the schema: column
  // gating is a function of the *active* configuration.
  ScenarioSpec spec;
  spec.name = "clean";
  spec.trace = "constant";
  spec.trace_params["rate"] = "400";
  spec.trace_params["duration"] = "1200";
  const SweepReport plain = run_sweep(spec, SweepOptions{.threads = 1});

  ScenarioSpec zero = spec;
  zero.fault_groups = 4;      // racks declared...
  zero.fault_group_mtbf = 0;  // ...but the channel never fires
  zero.fault_group_mttr = 600.0;
  zero.fault_crews = 3;
  const SweepReport zeroed = run_sweep(zero, SweepOptions{.threads = 1});
  EXPECT_EQ(plain.to_csv(), zeroed.to_csv());
  EXPECT_EQ(plain.to_csv().find("group_strikes"), std::string::npos);
}

TEST(ScenarioSpec, ParsesDegradePriorityKeysAndValidatesNamed) {
  const ScenarioSpec spec = parse_scenario(R"(name = graceful
degrade.overload_factor = 0.5
degrade.penalty = 0.4
[app]
name = web
priority = 2
[app]
name = batch
)");
  EXPECT_DOUBLE_EQ(spec.degrade_overload_factor, 0.5);
  EXPECT_DOUBLE_EQ(spec.degrade_penalty, 0.4);
  ASSERT_EQ(spec.apps.size(), 2u);
  EXPECT_EQ(spec.apps[0].priority, 2);
  EXPECT_EQ(spec.apps[1].priority, 0);
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec);
  EXPECT_EQ(write_scenario(parse_scenario(text)), text);
  // Defaults stay out of the canonical form entirely.
  EXPECT_EQ(write_scenario(ScenarioSpec()).find("degrade"),
            std::string::npos);
  EXPECT_EQ(write_scenario(ScenarioSpec()).find("priority"),
            std::string::npos);
  // Malformed values fail loudly at parse time, naming the offending key
  // and the accepted range — also under sweep-axis probing.
  try {
    (void)parse_scenario("degrade.penalty = 1.5\n");
    FAIL() << "expected a validation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("degrade.penalty"), std::string::npos) << what;
    EXPECT_NE(what.find("[0, 1]"), std::string::npos) << what;
  }
  try {
    (void)parse_scenario("degrade.overload_factor = -0.5\n");
    FAIL() << "expected a validation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("degrade.overload_factor"), std::string::npos)
        << what;
  }
  EXPECT_THROW((void)parse_scenario("priority = -1\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\npriority = -2\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\npriority = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("sweep degrade.penalty = 0.4,1.5\n"),
               std::runtime_error);
}

TEST(RunScenario, PriorityOnSingleWorkloadSumSpecIsANamedError) {
  // A priority class on a spec with one workload under the sum
  // coordinator can never rank anything — the build refuses with the key
  // named instead of silently ignoring it.
  ScenarioSpec spec;
  spec.trace_params["rate"] = "100";
  spec.trace_params["duration"] = "60";
  spec.priority = 1;
  try {
    (void)run_scenario(spec);
    FAIL() << "expected a validation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("priority"), std::string::npos) << what;
    EXPECT_NE(what.find("coordinator = sum"), std::string::npos) << what;
  }
  // Under the partitioned coordinator the class participates in the
  // budget trim ordering, so the same spec runs.
  spec.coordinator = "partitioned";
  EXPECT_NO_THROW((void)run_scenario(spec));
}

TEST(RunSweep, DegradePriorityColumnsArePinnedAndThreadStable) {
  // The graceful-degradation column groups land in a fixed order after
  // the SLO block: overload_seconds / penalty_lost_req_s (degrade
  // model), then preemptions (priority classes); per-app groups append
  // overload_seconds / penalty_lost_req_s / preempted_seconds. Pinned so
  // downstream tooling can rely on the schema, and byte-identical across
  // thread counts.
  const ScenarioSpec spec = parse_scenario(R"(name = graceful
seed = 7
coordinator = partitioned
faults.groups = 2
faults.group_mtbf = 7200
faults.group_mttr = 1200
faults.crews = 1
faults.seed = 5
degrade.overload_factor = 0.5
degrade.penalty = 0.4
[app]
name = web
trace = constant
trace.rate = 1200
trace.duration = 43200
priority = 2
fault_domain = pool
[app]
name = batch
trace = constant
trace.rate = 500
trace.duration = 43200
fault_domain = pool
)");
  const SweepReport one = run_sweep(spec, SweepOptions{.threads = 1});
  ASSERT_EQ(one.rows.size(), 1u);
  EXPECT_TRUE(one.rows[0].degrade_enabled);
  EXPECT_TRUE(one.rows[0].priority_enabled);
  // Strikes shrank the fleet below the offered 1700 req/s, so the
  // surviving machines ran overloaded and batch capacity was preempted.
  EXPECT_GT(one.rows[0].overload_seconds, 0);
  EXPECT_GT(one.rows[0].penalty_lost, 0.0);
  EXPECT_GT(one.rows[0].preemptions, 0);
  ASSERT_EQ(one.rows[0].apps.size(), 2u);
  EXPECT_EQ(one.rows[0].apps[0].preempted_seconds, 0);
  EXPECT_GT(one.rows[0].apps[1].preempted_seconds, 0);

  const std::string csv = one.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "scenario,scheduler_name,total_energy_j,compute_energy_j,"
            "reconfiguration_energy_j,reconfigurations,qos_violation_s,"
            "served_fraction,mean_power_w,peak_machines,machine_failures,"
            "availability,lost_capacity_req_s,group_strikes,"
            "overload_seconds,penalty_lost_req_s,preemptions,"
            "app0_name,app0_compute_energy_j,app0_reconfiguration_energy_j,"
            "app0_qos_violation_s,app0_served_fraction,app0_availability,"
            "app0_lost_capacity_req_s,app0_overload_seconds,"
            "app0_penalty_lost_req_s,app0_preempted_seconds,"
            "app1_name,app1_compute_energy_j,app1_reconfiguration_energy_j,"
            "app1_qos_violation_s,app1_served_fraction,app1_availability,"
            "app1_lost_capacity_req_s,app1_overload_seconds,"
            "app1_penalty_lost_req_s,app1_preempted_seconds");
  const SweepReport four = run_sweep(spec, SweepOptions{.threads = 4});
  EXPECT_EQ(csv, four.to_csv());
}

TEST(RunSweep, UnconfiguredDegradeAndEqualPrioritiesKeepTheSchema) {
  // degrade.overload_factor = 0 (spill-over dropped) with a non-default
  // penalty, and priority classes that are all equal, must not change a
  // single CSV byte: gating is a function of the *active* configuration,
  // and an all-equal ranking ranks nothing.
  ScenarioSpec spec = parse_scenario(R"(name = clean
[app]
name = a
trace = constant
trace.rate = 300
trace.duration = 1200
[app]
name = b
trace = constant
trace.rate = 200
trace.duration = 1200
)");
  const SweepReport plain = run_sweep(spec, SweepOptions{.threads = 1});

  ScenarioSpec zero = spec;
  zero.degrade_penalty = 0.9;  // a penalty with nothing to absorb
  zero.apps[0].priority = 3;   // all-equal classes
  zero.apps[1].priority = 3;
  const SweepReport zeroed = run_sweep(zero, SweepOptions{.threads = 1});
  EXPECT_EQ(plain.to_csv(), zeroed.to_csv());
  EXPECT_EQ(plain.to_csv().find("overload_seconds"), std::string::npos);
  EXPECT_EQ(plain.to_csv().find("preemptions"), std::string::npos);
}

TEST(ScenarioSpec, ParsesLifecycleKeysAndValidates) {
  const ScenarioSpec spec = parse_scenario(R"(name = lifecycle
churn.interarrival = 1800
churn.lifetime = 1200
churn.template = 1
churn.max = 3
churn.seed = 11
[app]
name = web
arrive = 600
[app]
name = batch
depart = 5400
)");
  EXPECT_DOUBLE_EQ(spec.churn_interarrival, 1800.0);
  EXPECT_DOUBLE_EQ(spec.churn_lifetime, 1200.0);
  EXPECT_EQ(spec.churn_template, 1);
  EXPECT_EQ(spec.churn_max, 3);
  EXPECT_EQ(spec.churn_seed, 11);
  ASSERT_EQ(spec.apps.size(), 2u);
  EXPECT_EQ(spec.apps[0].arrive, 600);
  EXPECT_EQ(spec.apps[0].depart, -1);
  EXPECT_EQ(spec.apps[1].arrive, 0);
  EXPECT_EQ(spec.apps[1].depart, 5400);
  const std::string text = write_scenario(spec);
  EXPECT_EQ(parse_scenario(text), spec);
  EXPECT_EQ(write_scenario(parse_scenario(text)), text);
  // Defaults stay out of the canonical form entirely.
  EXPECT_EQ(write_scenario(ScenarioSpec()).find("churn"), std::string::npos);
  EXPECT_EQ(write_scenario(ScenarioSpec()).find("arrive"), std::string::npos);
  EXPECT_THROW((void)parse_scenario("[app]\narrive = -5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("[app]\ndepart = 0\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("churn.interarrival = -1\n"),
               std::runtime_error);
}

TEST(RunScenario, LifecycleMisconfigurationsAreNamedErrors) {
  // A lone churn rate, a template index past the declared sections, and a
  // departure at or before the arrival all refuse loudly at build time.
  ScenarioSpec spec;
  spec.trace_params["rate"] = "100";
  spec.trace_params["duration"] = "600";
  spec.churn_interarrival = 300.0;
  try {
    (void)run_scenario(spec);
    FAIL() << "expected a validation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("churn.interarrival"), std::string::npos) << what;
    EXPECT_NE(what.find("churn.lifetime"), std::string::npos) << what;
  }
  spec.churn_lifetime = 300.0;
  spec.churn_template = 2;
  try {
    (void)run_scenario(spec);
    FAIL() << "expected a validation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("churn.template"), std::string::npos) << what;
  }
  ScenarioSpec bad;
  bad.trace_params["rate"] = "100";
  bad.trace_params["duration"] = "600";
  bad.apps.push_back(AppSpec{});
  bad.apps.push_back(AppSpec{});
  bad.apps[1].arrive = 300;
  bad.apps[1].depart = 300;
  EXPECT_THROW((void)run_scenario(bad), std::invalid_argument);
}

TEST(RunSweep, ChurnColumnsArePinnedAndThreadStable) {
  // A configured tenant lifecycle appends arrivals / departures after the
  // classic cluster block and active_seconds at the end of each per-app
  // group. Pinned so downstream tooling can rely on the schema, and
  // byte-identical across thread counts. churn.max = 1 with a short mean
  // interarrival guarantees exactly one clone materializes.
  const ScenarioSpec spec = parse_scenario(R"(name = churny
seed = 7
coordinator = partitioned
churn.interarrival = 600
churn.lifetime = 1800
churn.max = 1
[app]
name = web
trace = constant
trace.rate = 900
trace.duration = 7200
[app]
name = batch
trace = constant
trace.rate = 400
trace.duration = 7200
depart = 3600
)");
  const SweepReport one = run_sweep(spec, SweepOptions{.threads = 1});
  ASSERT_EQ(one.rows.size(), 1u);
  EXPECT_TRUE(one.rows[0].churn_enabled);
  EXPECT_EQ(one.rows[0].arrivals, 1);
  EXPECT_GE(one.rows[0].departures, 1);
  ASSERT_EQ(one.rows[0].apps.size(), 3u);
  EXPECT_EQ(one.rows[0].apps[1].active_seconds, 3600);
  EXPECT_LT(one.rows[0].apps[2].active_seconds, 7200);

  const std::string csv = one.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "scenario,scheduler_name,total_energy_j,compute_energy_j,"
            "reconfiguration_energy_j,reconfigurations,qos_violation_s,"
            "served_fraction,mean_power_w,peak_machines,arrivals,departures,"
            "app0_name,app0_compute_energy_j,app0_reconfiguration_energy_j,"
            "app0_qos_violation_s,app0_served_fraction,app0_active_seconds,"
            "app1_name,app1_compute_energy_j,app1_reconfiguration_energy_j,"
            "app1_qos_violation_s,app1_served_fraction,app1_active_seconds,"
            "app2_name,app2_compute_energy_j,app2_reconfiguration_energy_j,"
            "app2_qos_violation_s,app2_served_fraction,app2_active_seconds");
  const SweepReport four = run_sweep(spec, SweepOptions{.threads = 4});
  EXPECT_EQ(csv, four.to_csv());
}

TEST(RunSweep, ChurnFreeSpecsKeepTheSchema) {
  // Without churn rates or an active interval on any app, not a single
  // CSV byte changes — the lifecycle machinery stays entirely out of the
  // way (the run does not even enable it).
  const ScenarioSpec spec = parse_scenario(R"(name = clean
[app]
name = a
trace = constant
trace.rate = 300
trace.duration = 1200
[app]
name = b
trace = constant
trace.rate = 200
trace.duration = 1200
)");
  const SweepReport plain = run_sweep(spec, SweepOptions{.threads = 1});
  EXPECT_FALSE(plain.rows[0].churn_enabled);
  EXPECT_EQ(plain.to_csv().find("arrivals"), std::string::npos);
  EXPECT_EQ(plain.to_csv().find("active_seconds"), std::string::npos);
  // An explicit arrive = 0 / depart = -1 pair is the always-active
  // default, not a configured lifecycle.
  ScenarioSpec defaults = spec;
  defaults.apps[0].arrive = 0;
  defaults.apps[1].depart = -1;
  const SweepReport same = run_sweep(defaults, SweepOptions{.threads = 1});
  EXPECT_EQ(plain.to_csv(), same.to_csv());
}

TEST(RunSweep, DegradeAndPriorityAxesKeepTheSharedBuild) {
  // degrade.* and priority (like faults.* / slo.*) are runtime-only:
  // sweeping them must not force per-scenario catalog / trace / design
  // rebuilds.
  ScenarioSpec spec = parse_scenario(R"(name = graceful-grid
coordinator = partitioned
[app]
name = web
trace = constant
trace.rate = 900
trace.duration = 7200
[app]
name = batch
trace = constant
trace.rate = 400
trace.duration = 7200
)");
  spec.sweeps.push_back(SweepAxis{"degrade.overload_factor", {"0", "0.5"}});
  spec.sweeps.push_back(SweepAxis{"app0.priority", {"0", "2"}});
  const std::uint64_t before = CombinationTable::built_count();
  const SweepReport report = run_sweep(spec, SweepOptions{.threads = 2});
  EXPECT_EQ(CombinationTable::built_count() - before, 1u);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_FALSE(report.rows[0].degrade_enabled);
  EXPECT_FALSE(report.rows[0].priority_enabled);
  EXPECT_TRUE(report.rows[1].priority_enabled);
  EXPECT_TRUE(report.rows[2].degrade_enabled);
  EXPECT_TRUE(report.rows[3].degrade_enabled);
  EXPECT_TRUE(report.rows[3].priority_enabled);
}

TEST(RunSweep, SloAxesKeepTheSharedBuild) {
  // slo.* (like faults.*) is runtime-only: sweeping it must not force
  // per-scenario catalog / trace / design rebuilds.
  ScenarioSpec spec;
  spec.name = "slo-grid";
  spec.trace = "constant";
  spec.trace_params["rate"] = "1200";
  spec.trace_params["duration"] = "43200";
  spec.fault_groups = 2;
  spec.fault_group_mtbf = 7200.0;
  spec.fault_group_mttr = 1200.0;
  spec.fault_seed = 3;
  spec.slo_window = 7200.0;
  spec.sweeps.push_back(SweepAxis{"slo.availability", {"0", "0.999"}});
  const std::uint64_t before = CombinationTable::built_count();
  const SweepReport report = run_sweep(spec, SweepOptions{.threads = 2});
  EXPECT_EQ(CombinationTable::built_count() - before, 1u);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_FALSE(report.rows[0].slo_enabled);
  EXPECT_TRUE(report.rows[1].slo_enabled);
  EXPECT_EQ(report.rows[0].spare_seconds, 0);
  EXPECT_GT(report.rows[1].spare_seconds, 0);
  // The strike *timeline* is state-independent, but whether a strike
  // fells anything is not: provisioned spares can turn a strike on an
  // otherwise-empty stripe into a landed one, so the landed counts may
  // legitimately differ between the rows. Both rows see landed strikes.
  EXPECT_GT(report.rows[0].group_strikes, 0);
  EXPECT_GT(report.rows[1].group_strikes, 0);
}

TEST(Registry, UnknownComponentsListAlternatives) {
  try {
    (void)make_trace("sinusoid", {}, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("diurnal"), std::string::npos);
  }
  EXPECT_THROW((void)make_catalog("imaginary", {}), std::runtime_error);
  EXPECT_THROW((void)make_predictor("psychic", {}, 1), std::runtime_error);
  auto design = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  EXPECT_THROW((void)make_scheduler("optimal", {}, design,
                                    std::make_shared<OracleMaxPredictor>(),
                                    QosClass::kTolerant),
               std::runtime_error);
}

TEST(Registry, UnknownParameterThrows) {
  try {
    (void)make_trace("constant", {{"rate", "10"}, {"peek", "20"}}, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("peek"), std::string::npos);
  }
}

TEST(Registry, BadParameterValueThrows) {
  try {
    (void)make_trace("constant", {{"rate", "fast"}}, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rate"), std::string::npos);
  }
}

TEST(Registry, NegativeCountsAreErrorsNotWraps) {
  try {
    (void)make_trace("diurnal", {{"days", "-1"}}, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("days"), std::string::npos);
  }
  EXPECT_THROW(
      (void)make_trace("worldcup_like", {{"tournament_start_day", "-4"}}, 1),
      std::runtime_error);
  EXPECT_THROW((void)make_predictor("oracle-max", {{"error_seed", "-2"}}, 1),
               std::runtime_error);
}

TEST(Registry, BuildsEveryListedComponent) {
  auto design = std::make_shared<BmlDesign>(BmlDesign::build(real_catalog()));
  for (const ComponentInfo& info : trace_components()) {
    if (info.name == "file") continue;  // needs a path, covered below
    std::map<std::string, std::string> params;
    if (info.name == "step") params["segments"] = "100:60;200:60";
    EXPECT_GT(make_trace(info.name, params, 1).size(), 0u) << info.name;
  }
  for (const ComponentInfo& info : predictor_components())
    EXPECT_NE(make_predictor(info.name, {}, 1), nullptr) << info.name;
  for (const ComponentInfo& info : scheduler_components())
    EXPECT_NE(make_scheduler(info.name, {}, design,
                             std::make_shared<OracleMaxPredictor>(),
                             QosClass::kTolerant),
              nullptr)
        << info.name;
  for (const ComponentInfo& info : catalog_components()) {
    if (info.name == "file") continue;
    EXPECT_FALSE(make_catalog(info.name, {}).empty()) << info.name;
  }
}

TEST(Registry, ErrorParamsWrapAnyPredictor) {
  auto p = make_predictor("oracle-max", {{"error_sigma", "0.1"}}, 7);
  EXPECT_EQ(p->name(), "oracle-max+error");
}

TEST(Registry, TraceFileLoadsBothFormats) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto csv = dir / "bml_scn_trace.csv";
  const auto wc = dir / "bml_scn_trace.wc98";
  const LoadTrace trace({3.0, 0.0, 7.5, 7.5});
  trace.save(csv);
  save_wc98(trace, wc);
  for (const auto& path : {csv, wc}) {
    const LoadTrace loaded =
        make_trace("file", {{"file", path.string()}}, 1);
    ASSERT_EQ(loaded.size(), trace.size()) << path;
    for (TimePoint t = 0; t < 4; ++t)
      EXPECT_DOUBLE_EQ(loaded.at(t), trace.at(t)) << path << " t=" << t;
  }
  std::filesystem::remove(csv);
  std::filesystem::remove(wc);
}

TEST(Registry, TraceFileAcceptsMultiColumnCsv) {
  // load_any must route any CSV *containing* a rate column to the CSV
  // parser, not just the single-column form.
  const auto path =
      std::filesystem::temp_directory_path() / "bml_scn_multi.csv";
  {
    std::ofstream out(path);
    out << "day,rate\n0,3\n0,0\n1,7.5\n";
  }
  const LoadTrace loaded = make_trace("file", {{"file", path.string()}}, 1);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.at(2), 7.5);
  std::filesystem::remove(path);
}

TEST(RunScenario, MatchesHandBuiltSimulation) {
  ScenarioSpec spec;
  spec.name = "hand";
  spec.trace = "step";
  spec.trace_params["segments"] = "200:1800;2500:1800;60:1800";
  spec.seed = 5;
  const ScenarioResult result = run_scenario(spec);

  const LoadTrace trace = step_trace(
      {{200.0, 1800.0}, {2500.0, 1800.0}, {60.0, 1800.0}});
  auto design = std::make_shared<BmlDesign>(BmlDesign::build(
      real_catalog(), {.max_rate = std::max(trace.peak(), 1.0)}));
  const Simulator simulator(design->candidates());
  BmlScheduler scheduler(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult expected = simulator.run(scheduler, trace);

  EXPECT_EQ(result.sim.scheduler_name, expected.scheduler_name);
  EXPECT_DOUBLE_EQ(result.sim.compute_energy, expected.compute_energy);
  EXPECT_DOUBLE_EQ(result.sim.reconfiguration_energy,
                   expected.reconfiguration_energy);
  EXPECT_EQ(result.sim.reconfigurations, expected.reconfigurations);
  EXPECT_EQ(result.sim.peak_machines, expected.peak_machines);
  EXPECT_DOUBLE_EQ(result.trace_duration, trace.duration());
}

TEST(ExpandSweep, CartesianProductInAxisOrder) {
  ScenarioSpec spec = parse_scenario(kDemoSpec);
  const std::vector<ScenarioSpec> grid = expand_sweep(spec);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].trace_params.at("peak"), "500");
  EXPECT_EQ(grid[0].predictor, "oracle-max");
  EXPECT_EQ(grid[1].trace_params.at("peak"), "500");
  EXPECT_EQ(grid[1].predictor, "moving-max");
  EXPECT_EQ(grid[3].trace_params.at("peak"), "1000");
  EXPECT_EQ(grid[3].predictor, "moving-max");
  EXPECT_EQ(grid[0].name,
            "demo[trace.peak=500,predictor=oracle-max]");
  for (const ScenarioSpec& g : grid) EXPECT_TRUE(g.sweeps.empty());
  // Untouched fields carry over.
  EXPECT_EQ(grid[2].scheduler_params.at("window"), "400");
}

/// The acceptance grid: 3 axes, >= 24 scenarios, byte-identical CSV across
/// thread counts. Short step traces keep the whole grid under a second.
ScenarioSpec determinism_grid() {
  ScenarioSpec spec;
  spec.name = "grid";
  spec.trace = "step";
  spec.trace_params["segments"] = "150:900;2300:900;80:900";
  spec.sweeps.push_back(
      SweepAxis{"scheduler", {"bml", "reactive", "static-max"}});
  spec.sweeps.push_back(
      SweepAxis{"predictor", {"oracle-max", "moving-max"}});
  spec.sweeps.push_back(SweepAxis{"trace.segments",
                                  {"150:900;2300:900;80:900",
                                   "900:600;90:600;1800:600",
                                   "60:300;700:300;60:300;700:300"}});
  spec.sweeps.push_back(SweepAxis{"qos", {"tolerant", "critical"}});
  return spec;
}

TEST(RunSweep, CsvIsByteIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = determinism_grid();
  ASSERT_GE(expand_sweep(spec).size(), 24u);

  SweepOptions serial;
  serial.threads = 1;
  const SweepReport one = run_sweep(spec, serial);
  SweepOptions parallel;
  parallel.threads = 8;
  const SweepReport eight = run_sweep(spec, parallel);

  ASSERT_EQ(one.rows.size(), 36u);
  EXPECT_EQ(one.to_csv(), eight.to_csv());
  EXPECT_EQ(one.threads, 1u);
  EXPECT_EQ(eight.threads, 8u);
}

TEST(RunSweep, RowsCarryAxisValuesAndMetrics) {
  ScenarioSpec spec;
  spec.name = "mini";
  spec.trace = "constant";
  spec.trace_params["rate"] = "400";
  spec.trace_params["duration"] = "1200";
  spec.sweeps.push_back(SweepAxis{"scheduler", {"bml", "static-max"}});
  SweepOptions options;
  options.threads = 2;
  options.keep_results = true;
  const SweepReport report = run_sweep(spec, options);

  ASSERT_EQ(report.rows.size(), 2u);
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_EQ(report.axis_keys, std::vector<std::string>{"scheduler"});
  const SweepRow& bml_row = report.rows[0];
  EXPECT_EQ(bml_row.axis_values, std::vector<std::string>{"bml"});
  EXPECT_EQ(bml_row.scheduler, "bml(oracle-max)");
  EXPECT_GT(bml_row.total_energy, 0.0);
  EXPECT_DOUBLE_EQ(bml_row.total_energy,
                   bml_row.compute_energy + bml_row.reconfiguration_energy);
  EXPECT_DOUBLE_EQ(bml_row.mean_power, bml_row.total_energy / 1200.0);
  EXPECT_GT(bml_row.peak_machines, 0u);
  // The always-on Big fleet burns more than BML at 400 req/s.
  EXPECT_GT(report.rows[1].total_energy, bml_row.total_energy);
  // Console summary renders one line per scenario.
  const std::string table = report.summary_table();
  EXPECT_NE(table.find("mini[scheduler=bml]"), std::string::npos);
  EXPECT_NE(table.find("mini[scheduler=static-max]"), std::string::npos);
}

TEST(RunSweep, SharedTraceMatchesPerScenarioGeneration) {
  ScenarioSpec spec;
  spec.name = "shared";
  spec.trace = "step";
  spec.trace_params["segments"] = "180:900;2100:900;70:900";
  spec.sweeps.push_back(SweepAxis{"scheduler", {"bml", "per-day"}});

  SweepOptions regenerate;
  regenerate.threads = 2;
  const SweepReport generated = run_sweep(spec, regenerate);

  const LoadTrace trace = step_trace(
      {{180.0, 900.0}, {2100.0, 900.0}, {70.0, 900.0}});
  SweepOptions shared = regenerate;
  shared.shared_trace = &trace;
  const SweepReport replayed = run_sweep(spec, shared);
  EXPECT_EQ(generated.to_csv(), replayed.to_csv());

  // Trace axes contradict a shared trace.
  ScenarioSpec conflicting = spec;
  conflicting.sweeps.push_back(SweepAxis{"trace.segments", {"10:60"}});
  EXPECT_THROW((void)run_sweep(conflicting, shared), std::runtime_error);
}

TEST(RunSweep, NonBuildAxesShareOneBuild) {
  // None of these axes touch catalog / design / trace / seed inputs, so
  // the whole 8-point grid must build exactly one CombinationTable (the
  // build-count probe) and every row must still match an individually run
  // scenario.
  ScenarioSpec spec;
  spec.name = "cache";
  spec.trace = "step";
  spec.trace_params["segments"] = "150:600;1900:600;90:600";
  spec.sweeps.push_back(SweepAxis{"scheduler", {"bml", "reactive"}});
  spec.sweeps.push_back(SweepAxis{"predictor", {"oracle-max", "moving-max"}});
  spec.sweeps.push_back(SweepAxis{"qos", {"tolerant", "critical"}});

  const std::uint64_t before = CombinationTable::built_count();
  SweepOptions options;
  options.threads = 4;
  const SweepReport report = run_sweep(spec, options);
  EXPECT_EQ(CombinationTable::built_count() - before, 1u);
  ASSERT_EQ(report.rows.size(), 8u);

  const std::vector<ScenarioSpec> points = expand_sweep(spec);
  ASSERT_EQ(points.size(), report.rows.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScenarioResult solo = run_scenario(points[i]);
    EXPECT_EQ(report.rows[i].scenario, solo.spec.name);
    EXPECT_DOUBLE_EQ(report.rows[i].total_energy, solo.sim.total_energy());
    EXPECT_DOUBLE_EQ(report.rows[i].compute_energy, solo.sim.compute_energy);
    EXPECT_EQ(report.rows[i].reconfigurations, solo.sim.reconfigurations);
    EXPECT_EQ(report.rows[i].qos_violation_seconds,
              solo.sim.qos.violation_seconds);
  }
}

TEST(RunSweep, BuildAxesFallBackToPerScenarioBuilds) {
  ScenarioSpec spec;
  spec.name = "nocache";
  spec.trace = "constant";
  spec.trace_params["rate"] = "300";
  spec.trace_params["duration"] = "600";
  spec.sweeps.push_back(SweepAxis{"design.max_rate", {"1000", "2000"}});

  const std::uint64_t before = CombinationTable::built_count();
  SweepOptions options;
  options.threads = 1;
  const SweepReport report = run_sweep(spec, options);
  ASSERT_EQ(report.rows.size(), 2u);
  // A design axis changes the table itself: one build per grid point.
  EXPECT_EQ(CombinationTable::built_count() - before, 2u);
}

TEST(RunSweep, TraceAndSeedAxesAlsoBlockSharing) {
  ScenarioSpec spec;
  spec.name = "noisy";
  spec.trace = "diurnal";
  spec.trace_params["days"] = "1";
  spec.trace_params["peak"] = "500";
  spec.sweeps.push_back(SweepAxis{"seed", {"1", "2"}});

  const std::uint64_t before = CombinationTable::built_count();
  const SweepReport report = run_sweep(spec, SweepOptions{.threads = 1});
  ASSERT_EQ(report.rows.size(), 2u);
  // The seed feeds trace generation (and trace-peak design sizing): the
  // build must not be shared.
  EXPECT_EQ(CombinationTable::built_count() - before, 2u);
  // Different seeds really did produce different workloads.
  EXPECT_NE(report.rows[0].total_energy, report.rows[1].total_energy);
}

TEST(RunSweep, UnresolvableSpecThrows) {
  ScenarioSpec spec;
  spec.trace = "file";  // missing file parameter
  EXPECT_THROW((void)run_scenario(spec), std::runtime_error);
}

}  // namespace
}  // namespace bml
