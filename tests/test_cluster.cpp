// Tests for sim/cluster: switch commands, counters, power aggregation.
#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/candidate_filter.hpp"

namespace bml {
namespace {

Catalog candidates() {
  Catalog c = filter_candidates(real_catalog()).candidates;
  c.erase(c.begin() + 1);  // paravance, chromebook, raspberry
  return c;
}

TEST(Cluster, InitialCombinationStartsOn) {
  const Cluster cluster(candidates(), Combination({1, 2, 0}));
  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_EQ(snap.on, Combination({1, 2, 0}));
  EXPECT_EQ(snap.booting.total_machines(), 0);
  EXPECT_DOUBLE_EQ(snap.on_capacity, 1331.0 + 66.0);
  EXPECT_FALSE(cluster.transitioning());
}

TEST(Cluster, SwitchOnBootsThenServes) {
  Cluster cluster(candidates());
  cluster.switch_on(1, 2);  // 2 chromebooks (12 s boot)
  EXPECT_TRUE(cluster.transitioning());
  EXPECT_EQ(cluster.snapshot().booting, Combination({0, 2, 0}));
  EXPECT_DOUBLE_EQ(cluster.on_capacity(), 0.0);
  for (int s = 0; s < 12; ++s) cluster.step();
  EXPECT_FALSE(cluster.transitioning());
  EXPECT_EQ(cluster.snapshot().on, Combination({0, 2, 0}));
  EXPECT_DOUBLE_EQ(cluster.on_capacity(), 66.0);
}

TEST(Cluster, SwitchOffDrainsToOff) {
  Cluster cluster(candidates(), Combination({0, 1, 0}));
  cluster.switch_off(1, 1);
  EXPECT_EQ(cluster.snapshot().shutting_down, Combination({0, 1, 0}));
  EXPECT_DOUBLE_EQ(cluster.on_capacity(), 0.0);  // stops serving immediately
  for (int s = 0; s < 21; ++s) cluster.step();
  EXPECT_FALSE(cluster.transitioning());
  EXPECT_EQ(cluster.snapshot().on.total_machines(), 0);
}

TEST(Cluster, SwitchOnReusesOffMachines) {
  Cluster cluster(candidates(), Combination({0, 1, 0}));
  cluster.switch_off(1, 1);
  for (int s = 0; s < 21; ++s) cluster.step();
  EXPECT_EQ(cluster.machine_count(), 1u);
  cluster.switch_on(1, 1);  // must reuse the parked machine
  EXPECT_EQ(cluster.machine_count(), 1u);
  cluster.switch_on(1, 1);  // needs a new one
  EXPECT_EQ(cluster.machine_count(), 2u);
}

TEST(Cluster, PerArchAndTotalTransitionCounts) {
  Cluster cluster(candidates(), Combination({1, 0, 0}));
  cluster.switch_on(1, 2);
  cluster.switch_off(0, 1);
  EXPECT_EQ(cluster.booting_count(1), 2);
  EXPECT_EQ(cluster.booting_count(0), 0);
  EXPECT_EQ(cluster.booting_total(), 2);
  EXPECT_EQ(cluster.shutting_down_total(), 1);
  while (cluster.transitioning()) cluster.step();
  EXPECT_EQ(cluster.booting_total(), 0);
  EXPECT_EQ(cluster.shutting_down_total(), 0);
}

TEST(Cluster, SwitchOffMoreThanOnThrows) {
  Cluster cluster(candidates(), Combination({0, 1, 0}));
  EXPECT_THROW((void)cluster.switch_off(1, 2), std::logic_error);
}

TEST(Cluster, Validation) {
  EXPECT_THROW(Cluster({}, {}), std::invalid_argument);
  EXPECT_THROW(Cluster(candidates(), Combination({1, 1, 1, 1})),
               std::invalid_argument);
  Cluster cluster(candidates());
  EXPECT_THROW((void)cluster.switch_on(9, 1), std::invalid_argument);
  EXPECT_THROW((void)cluster.switch_on(0, -1), std::invalid_argument);
  EXPECT_THROW((void)cluster.switch_off(9, 1), std::invalid_argument);
}

TEST(Cluster, StepPowerSplitsChannels) {
  Cluster cluster(candidates(), Combination({0, 0, 1}));  // 1 raspberry on
  cluster.switch_on(1, 1);                                // chromebook boots
  const ClusterPower p = cluster.step_power(5.0);
  // Compute: raspberry serving 5 req/s. Transition: chromebook boot power.
  EXPECT_NEAR(p.compute, 3.1 + (0.6 / 9.0) * 5.0, 1e-9);
  EXPECT_NEAR(p.transition, 49.3 / 12.0, 1e-9);
}

TEST(Cluster, BootEnergyIntegratesToTableValue) {
  Cluster cluster(candidates());
  cluster.switch_on(0, 1);  // paravance: 189 s, 21341 J
  double energy = 0.0;
  while (cluster.transitioning()) {
    energy += cluster.step_power(0.0).transition;
    cluster.step();
  }
  EXPECT_NEAR(energy, 21341.0, 1e-6);
}

TEST(Cluster, CountersMatchAfterManyOperations) {
  Cluster cluster(candidates(), Combination({1, 3, 2}));
  cluster.switch_on(2, 4);
  cluster.switch_off(1, 2);
  cluster.switch_on(0, 1);
  for (int s = 0; s < 250; ++s) cluster.step();
  const ClusterSnapshot snap = cluster.snapshot();
  EXPECT_EQ(snap.on, Combination({2, 1, 6}));
  EXPECT_EQ(snap.booting.total_machines(), 0);
  EXPECT_EQ(snap.shutting_down.total_machines(), 0);
  EXPECT_DOUBLE_EQ(cluster.on_capacity(),
                   2 * 1331.0 + 1 * 33.0 + 6 * 9.0);
}

TEST(Cluster, SwitchOnReusesOffMachinesAcrossCycles) {
  // Off machines park on per-arch free lists; repeated on/off cycles must
  // re-light them instead of provisioning new ones, keeping the fleet (and
  // peak_machines reports) bounded by the high-water mark.
  Cluster cluster(candidates());
  cluster.switch_on(2, 4);  // raspberries
  for (int s = 0; s < 200; ++s) cluster.step();
  EXPECT_EQ(cluster.snapshot().on, Combination({0, 0, 4}));
  const std::size_t provisioned = cluster.machine_count();
  for (int cycle = 0; cycle < 5; ++cycle) {
    cluster.switch_off(2, 3);
    for (int s = 0; s < 200; ++s) cluster.step();
    cluster.switch_on(2, 3);
    for (int s = 0; s < 200; ++s) cluster.step();
    EXPECT_EQ(cluster.machine_count(), provisioned) << "cycle " << cycle;
    EXPECT_EQ(cluster.snapshot().on, Combination({0, 0, 4}));
  }
  // Asking beyond the parked pool still provisions fresh machines.
  cluster.switch_on(2, 2);
  EXPECT_EQ(cluster.machine_count(), provisioned + 2);
}

TEST(Cluster, NextTransitionRemainingMaintainedIncrementally) {
  // next_transition_remaining is O(1) off an incrementally maintained
  // minimum; this mirrors the fleet with a hand-kept list of remaining
  // times through on/off commands, partial steps, and completions.
  const Catalog c = candidates();
  Cluster cluster(c, Combination({0, 2, 0}));
  std::vector<Seconds> mirror;

  const auto expected_min = [&]() -> Seconds {
    Seconds next = -1.0;
    for (Seconds r : mirror)
      if (next < 0.0 || r < next) next = r;
    return next;
  };
  const auto advance = [&](Seconds dt) {
    cluster.step(dt);
    std::vector<Seconds> kept;
    for (Seconds r : mirror)
      if (r - dt > 1e-9) kept.push_back(r - dt);
    mirror = std::move(kept);
  };

  EXPECT_LT(cluster.next_transition_remaining(), 0.0);

  cluster.switch_on(2, 1);
  mirror.push_back(c[2].on_cost().duration);
  EXPECT_DOUBLE_EQ(cluster.next_transition_remaining(), expected_min());

  cluster.switch_on(1, 1);  // provisions a fresh chromebook (12 s boot)
  mirror.push_back(c[1].on_cost().duration);
  EXPECT_DOUBLE_EQ(cluster.next_transition_remaining(), expected_min());

  cluster.switch_off(1, 1);  // one of the initially-On chromebooks
  mirror.push_back(c[1].off_cost().duration);
  EXPECT_DOUBLE_EQ(cluster.next_transition_remaining(), expected_min());

  // Step through every completion; after each step the cached minimum must
  // re-derive to the smallest *surviving* transition.
  int guard = 0;
  while (cluster.transitioning() && ++guard < 1000) {
    advance(1.0);
    EXPECT_DOUBLE_EQ(cluster.next_transition_remaining(), expected_min());
  }
  EXPECT_TRUE(mirror.empty());
  EXPECT_LT(cluster.next_transition_remaining(), 0.0);

  // A multi-second step bounded by the reported minimum is exact too.
  cluster.switch_on(0, 1);
  mirror.push_back(c[0].on_cost().duration);
  const Seconds bound = cluster.next_transition_remaining();
  EXPECT_DOUBLE_EQ(bound, expected_min());
  advance(bound / 2.0);
  EXPECT_DOUBLE_EQ(cluster.next_transition_remaining(), expected_min());
  advance(bound / 2.0);
  EXPECT_FALSE(cluster.transitioning());
  EXPECT_LT(cluster.next_transition_remaining(), 0.0);
}

TEST(Cluster, ZeroCountCommandsAreNoOps) {
  Cluster cluster(candidates(), Combination({1, 0, 0}));
  cluster.switch_on(1, 0);
  cluster.switch_off(0, 0);
  EXPECT_FALSE(cluster.transitioning());
  EXPECT_EQ(cluster.snapshot().on, Combination({1, 0, 0}));
}

}  // namespace
}  // namespace bml
