file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bml_curve.dir/bench/bench_fig4_bml_curve.cpp.o"
  "CMakeFiles/bench_fig4_bml_curve.dir/bench/bench_fig4_bml_curve.cpp.o.d"
  "bench_fig4_bml_curve"
  "bench_fig4_bml_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bml_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
