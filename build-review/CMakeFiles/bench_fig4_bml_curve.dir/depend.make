# Empty dependencies file for bench_fig4_bml_curve.
# This may be replaced when dependencies are built.
