file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_candidates.dir/bench/bench_fig1_candidates.cpp.o"
  "CMakeFiles/bench_fig1_candidates.dir/bench/bench_fig1_candidates.cpp.o.d"
  "bench_fig1_candidates"
  "bench_fig1_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
