# Empty dependencies file for bench_fig3_real_profiles.
# This may be replaced when dependencies are built.
