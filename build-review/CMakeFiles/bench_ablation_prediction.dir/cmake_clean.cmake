file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prediction.dir/bench/bench_ablation_prediction.cpp.o"
  "CMakeFiles/bench_ablation_prediction.dir/bench/bench_ablation_prediction.cpp.o.d"
  "bench_ablation_prediction"
  "bench_ablation_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
