# Empty compiler generated dependencies file for bench_ablation_prediction.
# This may be replaced when dependencies are built.
