file(REMOVE_RECURSE
  "libbml.a"
)
