
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/application.cpp" "CMakeFiles/bml.dir/src/app/application.cpp.o" "gcc" "CMakeFiles/bml.dir/src/app/application.cpp.o.d"
  "/root/repo/src/app/load_balancer.cpp" "CMakeFiles/bml.dir/src/app/load_balancer.cpp.o" "gcc" "CMakeFiles/bml.dir/src/app/load_balancer.cpp.o.d"
  "/root/repo/src/app/migration.cpp" "CMakeFiles/bml.dir/src/app/migration.cpp.o" "gcc" "CMakeFiles/bml.dir/src/app/migration.cpp.o.d"
  "/root/repo/src/app/workload.cpp" "CMakeFiles/bml.dir/src/app/workload.cpp.o" "gcc" "CMakeFiles/bml.dir/src/app/workload.cpp.o.d"
  "/root/repo/src/arch/catalog.cpp" "CMakeFiles/bml.dir/src/arch/catalog.cpp.o" "gcc" "CMakeFiles/bml.dir/src/arch/catalog.cpp.o.d"
  "/root/repo/src/arch/profile.cpp" "CMakeFiles/bml.dir/src/arch/profile.cpp.o" "gcc" "CMakeFiles/bml.dir/src/arch/profile.cpp.o.d"
  "/root/repo/src/core/bml_design.cpp" "CMakeFiles/bml.dir/src/core/bml_design.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/bml_design.cpp.o.d"
  "/root/repo/src/core/candidate_filter.cpp" "CMakeFiles/bml.dir/src/core/candidate_filter.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/candidate_filter.cpp.o.d"
  "/root/repo/src/core/combination.cpp" "CMakeFiles/bml.dir/src/core/combination.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/combination.cpp.o.d"
  "/root/repo/src/core/combination_table.cpp" "CMakeFiles/bml.dir/src/core/combination_table.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/combination_table.cpp.o.d"
  "/root/repo/src/core/crossing.cpp" "CMakeFiles/bml.dir/src/core/crossing.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/crossing.cpp.o.d"
  "/root/repo/src/core/decision_thresholds.cpp" "CMakeFiles/bml.dir/src/core/decision_thresholds.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/decision_thresholds.cpp.o.d"
  "/root/repo/src/core/dispatch_plan.cpp" "CMakeFiles/bml.dir/src/core/dispatch_plan.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/dispatch_plan.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "CMakeFiles/bml.dir/src/core/sensitivity.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/sensitivity.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "CMakeFiles/bml.dir/src/core/solver.cpp.o" "gcc" "CMakeFiles/bml.dir/src/core/solver.cpp.o.d"
  "/root/repo/src/experiments/ablations.cpp" "CMakeFiles/bml.dir/src/experiments/ablations.cpp.o" "gcc" "CMakeFiles/bml.dir/src/experiments/ablations.cpp.o.d"
  "/root/repo/src/experiments/experiments.cpp" "CMakeFiles/bml.dir/src/experiments/experiments.cpp.o" "gcc" "CMakeFiles/bml.dir/src/experiments/experiments.cpp.o.d"
  "/root/repo/src/experiments/export.cpp" "CMakeFiles/bml.dir/src/experiments/export.cpp.o" "gcc" "CMakeFiles/bml.dir/src/experiments/export.cpp.o.d"
  "/root/repo/src/power/energy_meter.cpp" "CMakeFiles/bml.dir/src/power/energy_meter.cpp.o" "gcc" "CMakeFiles/bml.dir/src/power/energy_meter.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "CMakeFiles/bml.dir/src/power/power_model.cpp.o" "gcc" "CMakeFiles/bml.dir/src/power/power_model.cpp.o.d"
  "/root/repo/src/power/proportionality.cpp" "CMakeFiles/bml.dir/src/power/proportionality.cpp.o" "gcc" "CMakeFiles/bml.dir/src/power/proportionality.cpp.o.d"
  "/root/repo/src/power/rapl.cpp" "CMakeFiles/bml.dir/src/power/rapl.cpp.o" "gcc" "CMakeFiles/bml.dir/src/power/rapl.cpp.o.d"
  "/root/repo/src/predict/predictor.cpp" "CMakeFiles/bml.dir/src/predict/predictor.cpp.o" "gcc" "CMakeFiles/bml.dir/src/predict/predictor.cpp.o.d"
  "/root/repo/src/profiling/profiler.cpp" "CMakeFiles/bml.dir/src/profiling/profiler.cpp.o" "gcc" "CMakeFiles/bml.dir/src/profiling/profiler.cpp.o.d"
  "/root/repo/src/profiling/testbed.cpp" "CMakeFiles/bml.dir/src/profiling/testbed.cpp.o" "gcc" "CMakeFiles/bml.dir/src/profiling/testbed.cpp.o.d"
  "/root/repo/src/scenario/registry.cpp" "CMakeFiles/bml.dir/src/scenario/registry.cpp.o" "gcc" "CMakeFiles/bml.dir/src/scenario/registry.cpp.o.d"
  "/root/repo/src/scenario/scenario_spec.cpp" "CMakeFiles/bml.dir/src/scenario/scenario_spec.cpp.o" "gcc" "CMakeFiles/bml.dir/src/scenario/scenario_spec.cpp.o.d"
  "/root/repo/src/scenario/sweep.cpp" "CMakeFiles/bml.dir/src/scenario/sweep.cpp.o" "gcc" "CMakeFiles/bml.dir/src/scenario/sweep.cpp.o.d"
  "/root/repo/src/sched/baselines.cpp" "CMakeFiles/bml.dir/src/sched/baselines.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sched/baselines.cpp.o.d"
  "/root/repo/src/sched/bml_scheduler.cpp" "CMakeFiles/bml.dir/src/sched/bml_scheduler.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sched/bml_scheduler.cpp.o.d"
  "/root/repo/src/sched/coordinator.cpp" "CMakeFiles/bml.dir/src/sched/coordinator.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sched/coordinator.cpp.o.d"
  "/root/repo/src/sched/cost_aware.cpp" "CMakeFiles/bml.dir/src/sched/cost_aware.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sched/cost_aware.cpp.o.d"
  "/root/repo/src/sched/lower_bound.cpp" "CMakeFiles/bml.dir/src/sched/lower_bound.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sched/lower_bound.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "CMakeFiles/bml.dir/src/sim/cluster.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/compiled_trace.cpp" "CMakeFiles/bml.dir/src/sim/compiled_trace.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/compiled_trace.cpp.o.d"
  "/root/repo/src/sim/event_log.cpp" "CMakeFiles/bml.dir/src/sim/event_log.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/event_log.cpp.o.d"
  "/root/repo/src/sim/fault_timeline.cpp" "CMakeFiles/bml.dir/src/sim/fault_timeline.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/fault_timeline.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "CMakeFiles/bml.dir/src/sim/machine.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/machine.cpp.o.d"
  "/root/repo/src/sim/qos.cpp" "CMakeFiles/bml.dir/src/sim/qos.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/qos.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/bml.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/bml.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "CMakeFiles/bml.dir/src/trace/synthetic.cpp.o" "gcc" "CMakeFiles/bml.dir/src/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/bml.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/bml.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "CMakeFiles/bml.dir/src/trace/trace_stats.cpp.o" "gcc" "CMakeFiles/bml.dir/src/trace/trace_stats.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "CMakeFiles/bml.dir/src/trace/transforms.cpp.o" "gcc" "CMakeFiles/bml.dir/src/trace/transforms.cpp.o.d"
  "/root/repo/src/trace/wc98.cpp" "CMakeFiles/bml.dir/src/trace/wc98.cpp.o" "gcc" "CMakeFiles/bml.dir/src/trace/wc98.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/bml.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/bml.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/bml.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/bml.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/bml.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/bml.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/bml.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/bml.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/time_series.cpp" "CMakeFiles/bml.dir/src/util/time_series.cpp.o" "gcc" "CMakeFiles/bml.dir/src/util/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
