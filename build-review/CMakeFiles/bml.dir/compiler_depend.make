# Empty compiler generated dependencies file for bml.
# This may be replaced when dependencies are built.
