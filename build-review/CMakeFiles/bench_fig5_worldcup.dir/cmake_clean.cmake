file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_worldcup.dir/bench/bench_fig5_worldcup.cpp.o"
  "CMakeFiles/bench_fig5_worldcup.dir/bench/bench_fig5_worldcup.cpp.o.d"
  "bench_fig5_worldcup"
  "bench_fig5_worldcup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_worldcup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
