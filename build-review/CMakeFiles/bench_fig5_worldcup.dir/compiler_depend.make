# Empty compiler generated dependencies file for bench_fig5_worldcup.
# This may be replaced when dependencies are built.
