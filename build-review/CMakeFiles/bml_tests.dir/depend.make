# Empty dependencies file for bml_tests.
# This may be replaced when dependencies are built.
