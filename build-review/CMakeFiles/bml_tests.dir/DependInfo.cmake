
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ablations.cpp" "CMakeFiles/bml_tests.dir/tests/test_ablations.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_ablations.cpp.o.d"
  "/root/repo/tests/test_application.cpp" "CMakeFiles/bml_tests.dir/tests/test_application.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_application.cpp.o.d"
  "/root/repo/tests/test_bml_design.cpp" "CMakeFiles/bml_tests.dir/tests/test_bml_design.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_bml_design.cpp.o.d"
  "/root/repo/tests/test_candidate_filter.cpp" "CMakeFiles/bml_tests.dir/tests/test_candidate_filter.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_candidate_filter.cpp.o.d"
  "/root/repo/tests/test_catalog.cpp" "CMakeFiles/bml_tests.dir/tests/test_catalog.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_catalog.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "CMakeFiles/bml_tests.dir/tests/test_cluster.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_cluster.cpp.o.d"
  "/root/repo/tests/test_combination.cpp" "CMakeFiles/bml_tests.dir/tests/test_combination.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_combination.cpp.o.d"
  "/root/repo/tests/test_combination_table.cpp" "CMakeFiles/bml_tests.dir/tests/test_combination_table.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_combination_table.cpp.o.d"
  "/root/repo/tests/test_compiled_trace.cpp" "CMakeFiles/bml_tests.dir/tests/test_compiled_trace.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_compiled_trace.cpp.o.d"
  "/root/repo/tests/test_cost_aware.cpp" "CMakeFiles/bml_tests.dir/tests/test_cost_aware.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_cost_aware.cpp.o.d"
  "/root/repo/tests/test_crossing.cpp" "CMakeFiles/bml_tests.dir/tests/test_crossing.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_crossing.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "CMakeFiles/bml_tests.dir/tests/test_csv.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_csv.cpp.o.d"
  "/root/repo/tests/test_decision_thresholds.cpp" "CMakeFiles/bml_tests.dir/tests/test_decision_thresholds.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_decision_thresholds.cpp.o.d"
  "/root/repo/tests/test_dispatch_plan.cpp" "CMakeFiles/bml_tests.dir/tests/test_dispatch_plan.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_dispatch_plan.cpp.o.d"
  "/root/repo/tests/test_energy_meter.cpp" "CMakeFiles/bml_tests.dir/tests/test_energy_meter.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_energy_meter.cpp.o.d"
  "/root/repo/tests/test_event_log.cpp" "CMakeFiles/bml_tests.dir/tests/test_event_log.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_event_log.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "CMakeFiles/bml_tests.dir/tests/test_experiments.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_experiments.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "CMakeFiles/bml_tests.dir/tests/test_faults.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_faults.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/bml_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_load_balancer.cpp" "CMakeFiles/bml_tests.dir/tests/test_load_balancer.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_load_balancer.cpp.o.d"
  "/root/repo/tests/test_lower_bound.cpp" "CMakeFiles/bml_tests.dir/tests/test_lower_bound.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_lower_bound.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "CMakeFiles/bml_tests.dir/tests/test_machine.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_machine.cpp.o.d"
  "/root/repo/tests/test_multi_workload.cpp" "CMakeFiles/bml_tests.dir/tests/test_multi_workload.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_multi_workload.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "CMakeFiles/bml_tests.dir/tests/test_parallel.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_parallel.cpp.o.d"
  "/root/repo/tests/test_power_model.cpp" "CMakeFiles/bml_tests.dir/tests/test_power_model.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_power_model.cpp.o.d"
  "/root/repo/tests/test_predictor.cpp" "CMakeFiles/bml_tests.dir/tests/test_predictor.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_predictor.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "CMakeFiles/bml_tests.dir/tests/test_profile.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_profile.cpp.o.d"
  "/root/repo/tests/test_profiling.cpp" "CMakeFiles/bml_tests.dir/tests/test_profiling.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_profiling.cpp.o.d"
  "/root/repo/tests/test_proportionality.cpp" "CMakeFiles/bml_tests.dir/tests/test_proportionality.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_proportionality.cpp.o.d"
  "/root/repo/tests/test_qos.cpp" "CMakeFiles/bml_tests.dir/tests/test_qos.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_qos.cpp.o.d"
  "/root/repo/tests/test_rapl.cpp" "CMakeFiles/bml_tests.dir/tests/test_rapl.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_rapl.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "CMakeFiles/bml_tests.dir/tests/test_scenario.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_scenario.cpp.o.d"
  "/root/repo/tests/test_schedulers.cpp" "CMakeFiles/bml_tests.dir/tests/test_schedulers.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_schedulers.cpp.o.d"
  "/root/repo/tests/test_seasonal_export.cpp" "CMakeFiles/bml_tests.dir/tests/test_seasonal_export.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_seasonal_export.cpp.o.d"
  "/root/repo/tests/test_sensitivity.cpp" "CMakeFiles/bml_tests.dir/tests/test_sensitivity.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_sensitivity.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "CMakeFiles/bml_tests.dir/tests/test_simulator.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_simulator.cpp.o.d"
  "/root/repo/tests/test_simulator_fastpath.cpp" "CMakeFiles/bml_tests.dir/tests/test_simulator_fastpath.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_simulator_fastpath.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "CMakeFiles/bml_tests.dir/tests/test_solver.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_solver.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "CMakeFiles/bml_tests.dir/tests/test_stats.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_stats.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "CMakeFiles/bml_tests.dir/tests/test_synthetic.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_table_rng_logging.cpp" "CMakeFiles/bml_tests.dir/tests/test_table_rng_logging.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_table_rng_logging.cpp.o.d"
  "/root/repo/tests/test_time_series.cpp" "CMakeFiles/bml_tests.dir/tests/test_time_series.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_time_series.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "CMakeFiles/bml_tests.dir/tests/test_trace.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_stats.cpp" "CMakeFiles/bml_tests.dir/tests/test_trace_stats.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_trace_stats.cpp.o.d"
  "/root/repo/tests/test_transforms.cpp" "CMakeFiles/bml_tests.dir/tests/test_transforms.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_transforms.cpp.o.d"
  "/root/repo/tests/test_wc98.cpp" "CMakeFiles/bml_tests.dir/tests/test_wc98.cpp.o" "gcc" "CMakeFiles/bml_tests.dir/tests/test_wc98.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/bml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
