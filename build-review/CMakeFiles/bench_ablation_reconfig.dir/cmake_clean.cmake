file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reconfig.dir/bench/bench_ablation_reconfig.cpp.o"
  "CMakeFiles/bench_ablation_reconfig.dir/bench/bench_ablation_reconfig.cpp.o.d"
  "bench_ablation_reconfig"
  "bench_ablation_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
