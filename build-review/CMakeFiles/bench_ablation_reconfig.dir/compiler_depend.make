# Empty compiler generated dependencies file for bench_ablation_reconfig.
# This may be replaced when dependencies are built.
