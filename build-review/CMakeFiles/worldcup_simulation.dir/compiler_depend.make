# Empty compiler generated dependencies file for worldcup_simulation.
# This may be replaced when dependencies are built.
