file(REMOVE_RECURSE
  "CMakeFiles/worldcup_simulation.dir/examples/worldcup_simulation.cpp.o"
  "CMakeFiles/worldcup_simulation.dir/examples/worldcup_simulation.cpp.o.d"
  "worldcup_simulation"
  "worldcup_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worldcup_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
