# Empty compiler generated dependencies file for profiling_demo.
# This may be replaced when dependencies are built.
