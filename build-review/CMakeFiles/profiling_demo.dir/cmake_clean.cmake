file(REMOVE_RECURSE
  "CMakeFiles/profiling_demo.dir/examples/profiling_demo.cpp.o"
  "CMakeFiles/profiling_demo.dir/examples/profiling_demo.cpp.o.d"
  "profiling_demo"
  "profiling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
