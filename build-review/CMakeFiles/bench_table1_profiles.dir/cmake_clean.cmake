file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_profiles.dir/bench/bench_table1_profiles.cpp.o"
  "CMakeFiles/bench_table1_profiles.dir/bench/bench_table1_profiles.cpp.o.d"
  "bench_table1_profiles"
  "bench_table1_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
