# Empty dependencies file for bench_table1_profiles.
# This may be replaced when dependencies are built.
