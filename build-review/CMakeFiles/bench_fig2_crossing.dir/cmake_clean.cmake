file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_crossing.dir/bench/bench_fig2_crossing.cpp.o"
  "CMakeFiles/bench_fig2_crossing.dir/bench/bench_fig2_crossing.cpp.o.d"
  "bench_fig2_crossing"
  "bench_fig2_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
