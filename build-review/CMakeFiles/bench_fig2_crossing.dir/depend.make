# Empty dependencies file for bench_fig2_crossing.
# This may be replaced when dependencies are built.
