# Empty dependencies file for bmlsim.
# This may be replaced when dependencies are built.
