file(REMOVE_RECURSE
  "CMakeFiles/bmlsim.dir/tools/bmlsim.cpp.o"
  "CMakeFiles/bmlsim.dir/tools/bmlsim.cpp.o.d"
  "bmlsim"
  "bmlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
