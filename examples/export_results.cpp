// Export every experiment's data as CSV and print the workload's
// statistical character.
//
//   $ ./export_results [out-dir] [days]
//
// Writes table1.csv, fig1_profiles.csv ... fig5_per_day.csv into the
// output directory (default ./bml-results, 7 World-Cup days by default so
// the example finishes in seconds; pass 87 for paper scale), then prints
// the trace statistics that govern the Fig. 5 overhead spread.
#include <cstdio>
#include <cstdlib>

#include "experiments/export.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace bml;
  const std::filesystem::path directory =
      argc > 1 ? argv[1] : "bml-results";
  const std::size_t days =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 7;

  std::printf("exporting to %s (%zu World-Cup days)\n",
              directory.string().c_str(), days);

  export_table1(run_table1(), directory);
  std::puts("  table1.csv");
  export_fig1(run_fig1(), directory);
  std::puts("  fig1_profiles.csv");
  export_fig2(run_fig2(), directory);
  std::puts("  fig2_thresholds.csv");
  export_fig3(run_fig3(), directory);
  std::puts("  fig3_profiles.csv");
  export_fig4(run_fig4(), directory);
  std::puts("  fig4_curves.csv");

  Fig5Options options;
  options.trace.days = std::max<std::size_t>(2, days);
  options.trace.tournament_start_day = options.trace.days / 3;
  options.trace.tournament_end_day = options.trace.days - 1;
  export_fig5(run_fig5(options), directory);
  std::puts("  fig5_per_day.csv");

  std::puts("\nworkload character (see EXPERIMENTS.md for why this governs "
            "the Fig. 5 overhead):");
  const LoadTrace trace = worldcup_like_trace(options.trace);
  std::fputs(to_string(analyze_trace(trace)).c_str(), stdout);
  return 0;
}
