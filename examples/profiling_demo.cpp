// Step 1 in action: profile machines on the simulated testbed.
//
//   $ ./profiling_demo
//
// Reproduces the paper's measurement campaign (lighttpd + Siege +
// WattsUp?Pro) against simulated hardware: ramp concurrent clients until
// the request rate saturates, average five 30-second runs, measure power
// at idle and at peak, and time the On/Off transitions. The recovered
// profiles feed straight into BmlDesign::build.
#include <cstdio>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "profiling/profiler.hpp"

int main() {
  using namespace bml;

  const Catalog truth = real_catalog();
  Profiler profiler;  // paper defaults: 30 s tests, 5 repetitions

  Catalog measured;
  std::uint64_t seed = 2016;
  for (const ArchitectureProfile& arch : truth) {
    std::printf("profiling %-11s ...", arch.name().c_str());
    std::fflush(stdout);
    SimulatedMachine machine(MachineSpec(arch), seed++);
    const ArchitectureProfile profile = profiler.profile(machine);
    std::printf(" maxPerf %7.1f req/s  idle %6.2f W  peak %6.2f W  "
                "boot %3.0f s / %7.0f J\n",
                profile.max_perf(), profile.idle_power(),
                profile.max_power(), profile.on_cost().duration,
                profile.on_cost().energy);
    measured.push_back(profile);
  }

  // Feed the *measured* catalog through the methodology: the result must
  // match the design built from ground truth.
  const BmlDesign design = BmlDesign::build(measured);
  std::puts("\nBML design from measured profiles:");
  for (std::size_t i = 0; i < design.candidates().size(); ++i)
    std::printf("  %-7s %-11s threshold %5.0f req/s\n",
                to_string(design.roles()[i]).c_str(),
                design.candidates()[i].name().c_str(),
                design.thresholds()[i]);
  std::puts("(ground truth design: Big paravance 529, Medium chromebook 10, "
            "Little raspberry 1)");
  return 0;
}
