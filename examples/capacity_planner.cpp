// Capacity planner: answer "what should my heterogeneous cluster look like
// for this workload?" — including the limited-inventory case of an
// existing machine room (Section IV-A's "minor changes").
//
//   $ ./capacity_planner
#include <cstdio>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace bml;

  // A day of diurnal load peaking at 2000 req/s.
  DiurnalOptions load;
  load.peak = 2000.0;
  load.trough_fraction = 0.15;
  load.noise = 0.0;
  const LoadTrace trace = diurnal_trace(load, 1);

  // Unlimited machines: the ideal BML data center.
  const BmlDesign unlimited = BmlDesign::build(real_catalog());
  std::puts("unlimited inventory:");
  std::puts("  hour  load(req/s)  combination                     power(W)");
  for (int hour = 0; hour < 24; hour += 3) {
    const double rate = trace.at(hour * 3600);
    std::printf("  %4d  %10.0f   %-30s %8.2f\n", hour, rate,
                to_string(unlimited.candidates(),
                          unlimited.ideal_combination(rate)).c_str(),
                unlimited.ideal_power(rate));
  }

  // Machines the planner must keep on hand to cover every second of the
  // day: the element-wise maximum combination.
  Combination fleet;
  fleet.resize(unlimited.candidates().size());
  for (std::size_t s = 0; s < trace.size(); s += 60) {
    const Combination c =
        unlimited.ideal_combination(trace.at(static_cast<TimePoint>(s)));
    for (std::size_t a = 0; a < c.counts().size(); ++a)
      if (c.counts()[a] > fleet.count(a)) fleet.set_count(a, c.counts()[a]);
  }
  std::printf("\nfleet to procure: %s\n",
              to_string(unlimited.candidates(), fleet).c_str());

  // Existing machine room: only 1 paravance, 6 chromebooks, 10 raspberries
  // (input catalog order: paravance, taurus, graphene, chromebook,
  // raspberry).
  BmlDesignOptions constrained;
  constrained.inventory_caps = {1, 0, 0, 6, 10};
  constrained.max_rate = 2000.0;
  const BmlDesign limited = BmlDesign::build(real_catalog(), constrained);
  std::puts("\nlimited inventory (1 paravance, 6 chromebooks, "
            "10 raspberries):");
  for (double rate : {100.0, 800.0, 1400.0}) {
    std::printf("  %6.0f req/s -> %-30s %8.2f W\n", rate,
                to_string(limited.candidates(),
                          limited.ideal_combination(rate)).c_str(),
                limited.ideal_power(rate));
  }
  return 0;
}
