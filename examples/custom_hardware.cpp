// Bring your own hardware: define profiles by hand, run the methodology,
// and inspect why machines are kept or rejected. Also shows catalog CSV
// round-tripping for sharing profiles between tools.
//
//   $ ./custom_hardware
#include <cstdio>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"

int main() {
  using namespace bml;

  // A 2020s-flavoured fleet: a dual-socket server, a single-socket box,
  // an edge-class ARM server, and an SBC.
  Catalog fleet;
  fleet.emplace_back("dual-xeon", 9000.0, 110.0, 330.0,
                     TransitionCost{150.0, 30000.0},
                     TransitionCost{12.0, 900.0});
  fleet.emplace_back("uni-epyc", 5200.0, 65.0, 210.0,
                     TransitionCost{90.0, 9500.0},
                     TransitionCost{10.0, 500.0});
  fleet.emplace_back("arm-edge", 800.0, 9.0, 32.0,
                     TransitionCost{25.0, 300.0},
                     TransitionCost{8.0, 60.0});
  fleet.emplace_back("sbc", 60.0, 2.4, 5.1, TransitionCost{14.0, 35.0},
                     TransitionCost{6.0, 12.0});
  // A machine that should lose: slower than dual-xeon, hungrier at peak.
  fleet.emplace_back("legacy-blade", 4000.0, 240.0, 450.0,
                     TransitionCost{200.0, 40000.0},
                     TransitionCost{20.0, 3000.0});

  const BmlDesign design = BmlDesign::build(fleet);

  std::puts("methodology verdicts:");
  for (const RemovedArch& removed : design.removed())
    std::printf("  %-12s removed: %s (dominated by %s)\n",
                removed.name.c_str(), to_string(removed.reason).c_str(),
                removed.dominated_by.c_str());
  for (std::size_t i = 0; i < design.candidates().size(); ++i)
    std::printf("  %-12s kept as %-6s threshold %6.0f req/s\n",
                design.candidates()[i].name().c_str(),
                to_string(design.roles()[i]).c_str(),
                design.thresholds()[i]);

  std::puts("\nideal combinations:");
  for (double rate : {20.0, 500.0, 3000.0, 12000.0})
    std::printf("  %7.0f req/s -> %-30s %9.2f W\n", rate,
                to_string(design.candidates(),
                          design.ideal_combination(rate)).c_str(),
                design.ideal_power(rate));

  // Share the fleet definition as CSV.
  const std::string csv = catalog_to_csv(fleet);
  std::printf("\ncatalog CSV (%zu bytes):\n%s", csv.size(), csv.c_str());
  const Catalog reloaded = catalog_from_csv(csv);
  std::printf("round-trip OK: %zu machines reloaded\n", reloaded.size());
  return 0;
}
