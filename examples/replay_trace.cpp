// Replay a real trace file through the full BML evaluation.
//
//   $ ./replay_trace <trace-file> [catalog.csv]
//
// The trace file is either the two-column WC98-derived per-second format
// ("<second> <count>") or a single-column `rate` CSV (LoadTrace format);
// the format is auto-detected. With the real 1998 World Cup trace
// converted to per-second counts this reproduces the paper's Fig. 5 on the
// original data instead of the synthetic workload.
#include <cstdio>
#include <memory>
#include <string>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/lower_bound.hpp"
#include "sim/simulator.hpp"
#include "trace/wc98.hpp"

int main(int argc, char** argv) {
  using namespace bml;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace-file> [catalog.csv]\n", argv[0]);
    return 2;
  }

  const LoadTrace trace = load_any(argv[1]);
  const Catalog catalog = argc > 2 ? load_catalog(argv[2]) : real_catalog();
  std::printf("trace: %zu seconds (%zu days), peak %.1f req/s, mean %.1f "
              "req/s\n",
              trace.size(), trace.days(), trace.peak(), trace.mean());

  auto design = std::make_shared<BmlDesign>(BmlDesign::build(
      catalog, {.max_rate = std::max(trace.peak(), 1.0)}));
  std::printf("design: %zu candidates, Big=%s Little=%s\n\n",
              design->candidates().size(), design->big().name().c_str(),
              design->little().name().c_str());

  const Simulator simulator(design->candidates());
  BmlScheduler bml_sched(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult bml = simulator.run(bml_sched, trace);
  StaticMaxScheduler global_sched(design->big(), 0);
  const SimulationResult global = simulator.run(global_sched, trace);
  const Joules lower = theoretical_lower_bound_total(*design, trace);

  std::printf("energy (kWh): lower bound %.3f | BML %.3f (+%.1f%%) | "
              "over-provisioned %.3f (%.1fx BML)\n",
              joules_to_kwh(lower), joules_to_kwh(bml.total_energy()),
              percent_over(bml.total_energy(), lower),
              joules_to_kwh(global.total_energy()),
              global.total_energy() / bml.total_energy());
  std::printf("BML QoS: %.4f%% served, %lld violation seconds, "
              "%d reconfigurations\n",
              bml.qos.served_fraction() * 100.0,
              static_cast<long long>(bml.qos.violation_seconds),
              bml.reconfigurations);
  return 0;
}
