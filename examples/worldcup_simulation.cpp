// The paper's evaluation in miniature: run the pro-active BML scheduler
// over a week of World-Cup-like load and compare against the bounds.
//
//   $ ./worldcup_simulation [days]
//
// Prints per-day energy for the four scenarios and the BML QoS record.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/lower_bound.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bml;

  WorldCupOptions trace_options;
  trace_options.days = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  if (trace_options.days < 2) trace_options.days = 2;
  trace_options.tournament_start_day = trace_options.days / 3;
  trace_options.tournament_end_day = trace_options.days - 1;
  const LoadTrace trace = worldcup_like_trace(trace_options);
  std::printf("trace: %zu days, peak %.0f req/s, mean %.0f req/s\n\n",
              trace.days(), trace.peak(), trace.mean());

  auto design = std::make_shared<BmlDesign>(BmlDesign::build(
      real_catalog(), {.max_rate = trace.peak()}));
  const Simulator simulator(design->candidates());

  // The paper's four scenarios.
  const auto lower = theoretical_lower_bound_per_day(*design, trace);

  BmlScheduler bml_sched(design, std::make_shared<OracleMaxPredictor>());
  const SimulationResult bml = simulator.run(bml_sched, trace);

  PerDayScheduler per_day_sched(design->big(), 0);
  const SimulationResult per_day = simulator.run(per_day_sched, trace);

  StaticMaxScheduler global_sched(design->big(), 0);
  const SimulationResult global = simulator.run(global_sched, trace);

  std::puts("per-day energy (kWh):");
  std::puts("day   lower-bound      BML   per-day-bound   global-bound");
  const auto bml_days = bml.per_day_total();
  const auto per_day_days = per_day.per_day_total();
  const auto global_days = global.per_day_total();
  for (std::size_t d = 0; d < trace.days(); ++d)
    std::printf("%3zu   %11.3f %8.3f %15.3f %14.3f\n", d,
                joules_to_kwh(lower[d]), joules_to_kwh(bml_days[d]),
                joules_to_kwh(per_day_days[d]),
                joules_to_kwh(global_days[d]));

  std::printf("\nBML: %d reconfigurations, %.4f%% of requests served, "
              "reconfiguration energy %.3f kWh of %.3f kWh total\n",
              bml.reconfigurations, bml.qos.served_fraction() * 100.0,
              joules_to_kwh(bml.reconfiguration_energy),
              joules_to_kwh(bml.total_energy()));
  std::printf("energy vs global over-provisioning: %.1fx less\n",
              global.total_energy() / bml.total_energy());
  return 0;
}
