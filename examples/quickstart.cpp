// Quickstart: build a BML design from the paper's measured machine profiles
// and query it.
//
//   $ ./quickstart
//
// Walks the five methodology steps on the Table I catalog and prints the
// kept candidates, their thresholds, and ideal combinations for a few
// target rates.
#include <cstdio>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"

int main() {
  using namespace bml;

  // Step 1: architecture profiles. Here we load the built-in Table I
  // catalog; with your own hardware you would run the profiler (see
  // examples/profiling_demo.cpp) or fill ArchitectureProfile by hand.
  const Catalog machines = real_catalog();
  std::printf("input catalog: %zu machine types\n", machines.size());

  // Steps 2-5: dominance filter, crossing points, combination table.
  const BmlDesign design = BmlDesign::build(machines);

  for (const RemovedArch& removed : design.removed())
    std::printf("  removed %-11s (%s)\n", removed.name.c_str(),
                to_string(removed.reason).c_str());

  std::puts("\nBML infrastructure:");
  for (std::size_t i = 0; i < design.candidates().size(); ++i) {
    const ArchitectureProfile& arch = design.candidates()[i];
    std::printf("  %-7s %-11s maxPerf %6.0f req/s  %5.1f-%5.1f W  "
                "threshold %4.0f req/s\n",
                to_string(design.roles()[i]).c_str(), arch.name().c_str(),
                arch.max_perf(), arch.idle_power(), arch.max_power(),
                design.thresholds()[i]);
  }

  std::puts("\nideal combinations:");
  for (double rate : {3.0, 25.0, 200.0, 529.0, 1000.0, 2500.0, 5000.0}) {
    std::printf("  %6.0f req/s -> %-28s %8.2f W\n", rate,
                to_string(design.candidates(),
                          design.ideal_combination(rate)).c_str(),
                design.ideal_power(rate));
  }

  // The Fig. 4 yardstick: how close the combination gets to the ideal
  // linear machine.
  const BmlLinearReference linear = design.linear_reference();
  std::printf("\nat 665 req/s: BML %.1f W, hypothetical linear machine "
              "%.1f W, Big machine alone %.1f W\n",
              design.ideal_power(665.0), linear.power(665.0),
              design.big().power_at(665.0));
  return 0;
}
