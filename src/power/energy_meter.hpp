// Energy accounting: integrate a power signal over time.
//
// The simulator feeds one power sample per simulated second; EnergyMeter
// accumulates Joules and keeps per-day totals for the Fig. 5 report.
// Separate channels let callers split compute energy from reconfiguration
// (On/Off) energy, as the paper does ("total consumption per day contains
// the energy consumed by computation and by On/Off reconfigurations").
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace bml {

/// Accumulates energy from fixed-step power samples on named channels.
class EnergyMeter {
 public:
  /// `step` is the sampling interval of add_sample (1 s in the simulator).
  explicit EnergyMeter(Seconds step = 1.0);

  /// Integrates one power sample on the compute channel.
  void add_compute_sample(Watts power);

  /// Adds a lump of reconfiguration energy (an On or Off action's Joules),
  /// attributed to the current day.
  void add_reconfiguration_energy(Joules energy);

  /// Advances the internal clock by one sample period. Call once per
  /// simulated second, after the samples for that second were added.
  void tick();

  /// Batch equivalent of `seconds` iterations of
  /// { add_compute_sample(compute); add_reconfiguration_energy(transition *
  /// step); tick(); }: integrates constant power over a span, splitting the
  /// energy across day buckets in closed form. Totals match the per-second
  /// calls up to floating-point summation order.
  void add_span(Watts compute, Watts transition, std::size_t seconds);

  [[nodiscard]] Joules total_energy() const {
    return compute_energy_ + reconf_energy_;
  }
  [[nodiscard]] Joules compute_energy() const { return compute_energy_; }
  [[nodiscard]] Joules reconfiguration_energy() const {
    return reconf_energy_;
  }

  /// Elapsed integrated time in seconds.
  [[nodiscard]] Seconds elapsed() const {
    return step_ * static_cast<double>(ticks_);
  }

  /// Per-day total (compute + reconfiguration) energy; the current,
  /// possibly partial, day is included as the last element.
  [[nodiscard]] std::vector<Joules> per_day_total() const;
  [[nodiscard]] const std::vector<Joules>& per_day_compute() const {
    return day_compute_;
  }
  [[nodiscard]] const std::vector<Joules>& per_day_reconfiguration() const {
    return day_reconf_;
  }

 private:
  void ensure_day();

  Seconds step_;
  std::size_t ticks_ = 0;
  Joules compute_energy_ = 0.0;
  Joules reconf_energy_ = 0.0;
  std::vector<Joules> day_compute_;
  std::vector<Joules> day_reconf_;
};

}  // namespace bml
