// Energy accounting: integrate a power signal over time.
//
// The simulator feeds one power sample per simulated second; EnergyMeter
// accumulates Joules and keeps per-day totals for the Fig. 5 report.
// Separate channels let callers split compute energy from reconfiguration
// (On/Off) energy, as the paper does ("total consumption per day contains
// the energy consumed by computation and by On/Off reconfigurations").
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "util/units.hpp"

namespace bml {

/// One constant-power run of a piecewise-constant span (the event-driven
/// simulator's unit of accumulation: a trace segment during which nothing
/// in the cluster changes).
struct PowerRun {
  Watts compute = 0.0;
  std::size_t seconds = 0;
};

/// Accumulates energy from fixed-step power samples on named channels.
class EnergyMeter {
 public:
  /// `step` is the sampling interval of add_sample (1 s in the simulator).
  explicit EnergyMeter(Seconds step = 1.0);

  /// Integrates one power sample on the compute channel.
  void add_compute_sample(Watts power);

  /// Adds a lump of reconfiguration energy (an On or Off action's Joules),
  /// attributed to the current day.
  void add_reconfiguration_energy(Joules energy);

  /// Advances the internal clock by one sample period. Call once per
  /// simulated second, after the samples for that second were added.
  void tick();

  /// Batch equivalent of `seconds` iterations of
  /// { add_compute_sample(compute); add_reconfiguration_energy(transition *
  /// step); tick(); }: integrates constant power over a span, splitting the
  /// energy across day buckets in closed form. Totals match the per-second
  /// calls up to floating-point summation order. Inline: the multi-app
  /// fast path calls this once per app per trace sub-run (where the span
  /// never straddles a day, so the chunk loop runs exactly once).
  void add_span(Watts compute, Watts transition, std::size_t seconds) {
    if (compute < 0.0)
      throw std::invalid_argument("EnergyMeter: negative power sample");
    if (transition < 0.0)
      throw std::invalid_argument(
          "EnergyMeter: negative reconfiguration energy");
    while (seconds > 0) {
      const std::size_t day = refresh_day();
      const std::size_t chunk = std::min(seconds, day_end_tick_ - ticks_);
      const Joules compute_e = compute * step_ * static_cast<double>(chunk);
      const Joules transition_e =
          transition * step_ * static_cast<double>(chunk);
      compute_energy_ += compute_e;
      day_compute_[day] += compute_e;
      reconf_energy_ += transition_e;
      day_reconf_[day] += transition_e;
      ticks_ += chunk;
      seconds -= chunk;
    }
  }

  /// Piecewise-constant span kernel: integrates every run of `runs` (with
  /// `transition` power applying throughout) in one call — a tight
  /// non-virtual loop over the run-length segments the event-driven
  /// simulator produces for a varying-load span. Every run that fits
  /// inside the current day is fused into local sums (one fused-multiply
  /// per run) flushed with a single set of accumulator updates; the
  /// totals match per-run add_span calls up to summation order, and the
  /// day attribution (integer second counts per day) is identical. The
  /// simulator clamps spans at day boundaries, so the straddling fallback
  /// is the rare case.
  ///
  /// `runs` is any random-access range whose elements expose `compute`
  /// (Watts) and `seconds` members — PowerRun is the canonical element;
  /// the simulator passes its fused per-segment scratch rows directly so
  /// this loop inlines into the span walk.
  template <typename Runs>
  void add_runs(const Runs& runs, Watts transition) {
    if (transition < 0.0)
      throw std::invalid_argument(
          "EnergyMeter: negative reconfiguration energy");
    std::size_t i = 0;
    const std::size_t n = runs.size();
    while (i < n) {
      const std::size_t day = refresh_day();
      const std::size_t day_left = day_end_tick_ - ticks_;
      Joules compute_e = 0.0;
      std::size_t seconds = 0;
      while (i < n &&
             static_cast<std::size_t>(runs[i].seconds) <= day_left - seconds) {
        if (runs[i].compute < 0.0)
          throw std::invalid_argument("EnergyMeter: negative power sample");
        compute_e +=
            runs[i].compute * step_ * static_cast<double>(runs[i].seconds);
        seconds += static_cast<std::size_t>(runs[i].seconds);
        ++i;
      }
      if (seconds > 0) {
        const Joules transition_e =
            transition * step_ * static_cast<double>(seconds);
        compute_energy_ += compute_e;
        day_compute_[day] += compute_e;
        reconf_energy_ += transition_e;
        day_reconf_[day] += transition_e;
        ticks_ += seconds;
        continue;
      }
      // The next run straddles the day boundary (or carries a negative
      // length, which the unsigned cast in the fused condition above also
      // routes here): validate, then chunk it the slow way.
      if constexpr (std::is_signed_v<
                        std::decay_t<decltype(runs[i].seconds)>>) {
        if (runs[i].seconds < 0)
          throw std::invalid_argument("EnergyMeter: negative span");
      }
      add_span(runs[i].compute, transition,
               static_cast<std::size_t>(runs[i].seconds));
      ++i;
    }
  }

  /// Fully fused span kernel: adds a span whose compute energy the caller
  /// already integrated (`compute_energy` = sum of power_i * step *
  /// seconds_i over the span's runs) with constant `transition` power
  /// over `seconds`. The span must lie within the current day — the
  /// event-driven simulator clamps spans at day boundaries — because an
  /// integrated energy cannot be attributed across days; throws
  /// std::logic_error otherwise.
  void add_integrated_span(Joules compute_energy, Watts transition,
                           std::size_t seconds) {
    if (compute_energy < 0.0)
      throw std::invalid_argument("EnergyMeter: negative power sample");
    if (transition < 0.0)
      throw std::invalid_argument(
          "EnergyMeter: negative reconfiguration energy");
    if (seconds == 0) return;
    const std::size_t day = refresh_day();
    if (seconds > day_end_tick_ - ticks_)
      throw std::logic_error(
          "EnergyMeter: integrated span crosses a day boundary");
    const Joules transition_e =
        transition * step_ * static_cast<double>(seconds);
    compute_energy_ += compute_energy;
    day_compute_[day] += compute_energy;
    reconf_energy_ += transition_e;
    day_reconf_[day] += transition_e;
    ticks_ += seconds;
  }

  [[nodiscard]] Joules total_energy() const {
    return compute_energy_ + reconf_energy_;
  }
  [[nodiscard]] Joules compute_energy() const { return compute_energy_; }
  [[nodiscard]] Joules reconfiguration_energy() const {
    return reconf_energy_;
  }

  /// Elapsed integrated time in seconds.
  [[nodiscard]] Seconds elapsed() const {
    return step_ * static_cast<double>(ticks_);
  }

  /// Per-day total (compute + reconfiguration) energy; the current,
  /// possibly partial, day is included as the last element.
  [[nodiscard]] std::vector<Joules> per_day_total() const;
  [[nodiscard]] const std::vector<Joules>& per_day_compute() const {
    return day_compute_;
  }
  [[nodiscard]] const std::vector<Joules>& per_day_reconfiguration() const {
    return day_reconf_;
  }

 private:
  /// Grows the day buckets to cover the current tick and returns the day
  /// index. The day window [.., day_end_tick_) is cached, so the common
  /// within-day call is one compare — this runs once per app per
  /// run-length segment of the event-driven simulator. (Whenever ticks_ <
  /// day_end_tick_, a previous slow refresh already sized the buckets for
  /// current_day_, so the fast path can skip the grow loop too.)
  std::size_t refresh_day() {
    if (ticks_ < day_end_tick_) return current_day_;
    return refresh_day_slow();
  }
  std::size_t refresh_day_slow();

  Seconds step_;
  std::size_t ticks_ = 0;
  Joules compute_energy_ = 0.0;
  Joules reconf_energy_ = 0.0;
  // Cached day window: while ticks_ < day_end_tick_, the current tick
  // belongs to day current_day_ (invariant maintained by refresh_day).
  std::size_t current_day_ = 0;
  std::size_t day_end_tick_ = 0;
  std::vector<Joules> day_compute_;
  std::vector<Joules> day_reconf_;
};

}  // namespace bml
