#include "power/proportionality.hpp"

#include <cmath>
#include <stdexcept>

namespace bml {

double ideal_to_peak_ratio(Watts idle, Watts peak) {
  if (peak <= 0.0)
    throw std::invalid_argument("ideal_to_peak_ratio: peak must be > 0");
  if (idle < 0.0 || idle > peak)
    throw std::invalid_argument(
        "ideal_to_peak_ratio: idle must lie in [0, peak]");
  return idle / peak;
}

double linear_deviation_ratio(const PowerCurve& curve, int samples) {
  if (samples < 2)
    throw std::invalid_argument(
        "linear_deviation_ratio: need at least 2 samples");
  const Watts p0 = curve(0.0);
  const Watts p1 = curve(1.0);
  if (p1 <= 0.0)
    throw std::invalid_argument(
        "linear_deviation_ratio: peak power must be > 0");
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double u = static_cast<double>(i) / (samples - 1);
    const Watts line = p0 + u * (p1 - p0);
    const double deviation = (curve(u) - line) / p1;
    if (std::abs(deviation) > std::abs(worst)) worst = deviation;
  }
  return worst;
}

double proportionality_score(const PowerCurve& curve, int samples) {
  if (samples < 2)
    throw std::invalid_argument(
        "proportionality_score: need at least 2 samples");
  const Watts peak = curve(1.0);
  if (peak <= 0.0)
    throw std::invalid_argument("proportionality_score: peak must be > 0");
  // Trapezoidal integration of the normalized curve and the ideal line.
  double area = 0.0;
  double prev = curve(0.0) / peak;
  for (int i = 1; i < samples; ++i) {
    const double u = static_cast<double>(i) / (samples - 1);
    const double cur = curve(u) / peak;
    area += 0.5 * (prev + cur) / (samples - 1);
    prev = cur;
  }
  const double ideal_area = 0.5;  // integral of u du over [0,1]
  const double score = 1.0 - (area - ideal_area) / ideal_area;
  // Curves below the ideal line (super-proportional) clamp to 1.
  return std::fmin(1.0, score);
}

}  // namespace bml
