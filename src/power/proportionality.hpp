// Energy-proportionality metrics.
//
// Section II cites Varsamopoulos et al.: IPR (Idle-to-Peak Ratio) measures
// the dynamic power range of a machine, LDR (Linear Deviation Ratio) the
// linearity of its consumption curve. We implement both so that the
// ablation bench can score each architecture and the composed BML curve —
// quantifying the paper's claim that the heterogeneous combination is more
// proportional than any single machine.
#pragma once

#include <functional>

#include "util/units.hpp"

namespace bml {

/// A power curve over normalized utilization u in [0, 1].
using PowerCurve = std::function<Watts(double /*utilization*/)>;

/// Idle-to-Peak Ratio: idle_power / peak_power, in [0, 1].
/// 0 is perfectly proportional (no idle draw); 1 means flat consumption.
/// Throws std::invalid_argument when peak <= 0 or idle is negative/greater
/// than peak.
[[nodiscard]] double ideal_to_peak_ratio(Watts idle, Watts peak);

/// Linear Deviation Ratio: maximum signed relative deviation of the curve
/// from the straight line between its endpoints (curve(0) and curve(1)),
/// normalized by peak power. Positive values mean the curve runs above the
/// line (sub-linear efficiency), negative below. Samples the curve at
/// `samples` evenly spaced points (>= 2).
[[nodiscard]] double linear_deviation_ratio(const PowerCurve& curve,
                                            int samples = 101);

/// Energy-proportionality coefficient in [0, 1]:
///   1 - (area under normalized power curve - ideal area) / ideal area
/// where the ideal curve is power(u) = u * peak. A perfectly proportional
/// system scores 1; a flat consumer scores close to 0. This composite score
/// is our addition for ranking architectures in the ablation bench.
[[nodiscard]] double proportionality_score(const PowerCurve& curve,
                                           int samples = 1001);

}  // namespace bml
