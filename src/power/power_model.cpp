#include "power/power_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

LinearPowerModel::LinearPowerModel(Watts idle, Watts max_power,
                                   ReqRate max_perf)
    : idle_(idle), max_power_(max_power), max_perf_(max_perf) {
  if (max_perf_ <= 0.0)
    throw std::invalid_argument("LinearPowerModel: max_perf must be > 0");
  if (idle_ < 0.0)
    throw std::invalid_argument("LinearPowerModel: idle power must be >= 0");
  if (max_power_ < idle_)
    throw std::invalid_argument(
        "LinearPowerModel: max power must be >= idle power");
  slope_ = (max_power_ - idle_) / max_perf_;
}

Watts LinearPowerModel::power_at(ReqRate rate) const {
  const ReqRate r = std::clamp(rate, 0.0, max_perf_);
  return idle_ + slope_ * r;
}

std::unique_ptr<PowerModel> LinearPowerModel::clone() const {
  return std::make_unique<LinearPowerModel>(*this);
}

PiecewiseLinearPowerModel::PiecewiseLinearPowerModel(
    std::vector<PowerSample> samples)
    : samples_(std::move(samples)) {
  if (samples_.size() < 2)
    throw std::invalid_argument(
        "PiecewiseLinearPowerModel: need at least two samples");
  if (samples_.front().rate != 0.0)
    throw std::invalid_argument(
        "PiecewiseLinearPowerModel: first sample must be the idle point "
        "(rate 0)");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].rate <= samples_[i - 1].rate)
      throw std::invalid_argument(
          "PiecewiseLinearPowerModel: sample rates must strictly increase");
  }
  for (const PowerSample& s : samples_) {
    if (s.power < 0.0)
      throw std::invalid_argument(
          "PiecewiseLinearPowerModel: power must be >= 0");
  }
}

Watts PiecewiseLinearPowerModel::power_at(ReqRate rate) const {
  const ReqRate r = std::clamp(rate, 0.0, max_perf());
  const auto upper = std::lower_bound(
      samples_.begin(), samples_.end(), r,
      [](const PowerSample& s, ReqRate value) { return s.rate < value; });
  if (upper == samples_.begin()) return samples_.front().power;
  if (upper == samples_.end()) return samples_.back().power;
  const PowerSample& hi = *upper;
  const PowerSample& lo = *(upper - 1);
  const double frac = (r - lo.rate) / (hi.rate - lo.rate);
  return lo.power + frac * (hi.power - lo.power);
}

Watts PiecewiseLinearPowerModel::idle_power() const {
  return samples_.front().power;
}

ReqRate PiecewiseLinearPowerModel::max_perf() const {
  return samples_.back().rate;
}

Watts PiecewiseLinearPowerModel::max_power() const {
  return samples_.back().power;
}

std::unique_ptr<PowerModel> PiecewiseLinearPowerModel::clone() const {
  return std::make_unique<PiecewiseLinearPowerModel>(*this);
}

}  // namespace bml
