// Power models: map an application performance rate to electrical power.
//
// Section IV-A of the paper assumes a *linear* power model between
// (0, idlePower) and (maxPerf, maxPower), citing Rivoire et al. for why the
// approximation is acceptable. LinearPowerModel implements exactly that.
// PiecewiseLinearPowerModel generalises it to profiles with intermediate
// measured points ("acquiring more intermediate data points ... would enable
// more precision, our methodology would not be affected").
#pragma once

#include <memory>
#include <vector>

#include "util/units.hpp"

namespace bml {

/// Abstract machine power model over utilization expressed as a performance
/// rate in [0, max_perf()].
class PowerModel {
 public:
  virtual ~PowerModel() = default;

  /// Power drawn while serving `rate`. Rates are clamped to [0, max_perf()];
  /// callers that care about overload detect it at dispatch time.
  [[nodiscard]] virtual Watts power_at(ReqRate rate) const = 0;

  /// Average power when idle (rate = 0) but switched on.
  [[nodiscard]] virtual Watts idle_power() const = 0;

  /// Maximum sustainable performance rate.
  [[nodiscard]] virtual ReqRate max_perf() const = 0;

  /// Power at max_perf().
  [[nodiscard]] virtual Watts max_power() const = 0;

  [[nodiscard]] virtual std::unique_ptr<PowerModel> clone() const = 0;

  /// Marginal power per unit of performance averaged over the full range:
  /// (max_power - idle_power) / max_perf. For a linear model this is the
  /// constant slope used by the crossing-point computation.
  [[nodiscard]] double mean_slope() const {
    return (max_power() - idle_power()) / max_perf();
  }
};

/// The paper's linear model: power(rate) = idle + slope * rate.
class LinearPowerModel final : public PowerModel {
 public:
  /// Throws std::invalid_argument unless max_perf > 0, idle >= 0 and
  /// max_power >= idle (a machine cannot draw less at peak than idle).
  LinearPowerModel(Watts idle, Watts max_power, ReqRate max_perf);

  [[nodiscard]] Watts power_at(ReqRate rate) const override;
  [[nodiscard]] Watts idle_power() const override { return idle_; }
  [[nodiscard]] ReqRate max_perf() const override { return max_perf_; }
  [[nodiscard]] Watts max_power() const override { return max_power_; }
  [[nodiscard]] std::unique_ptr<PowerModel> clone() const override;

  /// Constant Watts per req/s.
  [[nodiscard]] double slope() const { return slope_; }

 private:
  Watts idle_;
  Watts max_power_;
  ReqRate max_perf_;
  double slope_;
};

/// Sample of a measured (rate, power) profile point.
struct PowerSample {
  ReqRate rate = 0.0;
  Watts power = 0.0;
};

/// Piecewise-linear interpolation through measured profile points.
/// Produced by the simulated profiler when asked for intermediate points.
class PiecewiseLinearPowerModel final : public PowerModel {
 public:
  /// `samples` must contain at least two points, be strictly increasing in
  /// rate, and start at rate 0 (the idle measurement). Throws
  /// std::invalid_argument otherwise.
  explicit PiecewiseLinearPowerModel(std::vector<PowerSample> samples);

  [[nodiscard]] Watts power_at(ReqRate rate) const override;
  [[nodiscard]] Watts idle_power() const override;
  [[nodiscard]] ReqRate max_perf() const override;
  [[nodiscard]] Watts max_power() const override;
  [[nodiscard]] std::unique_ptr<PowerModel> clone() const override;

  [[nodiscard]] const std::vector<PowerSample>& samples() const {
    return samples_;
  }

 private:
  std::vector<PowerSample> samples_;
};

}  // namespace bml
