#include "power/energy_meter.hpp"

#include <stdexcept>

namespace bml {

EnergyMeter::EnergyMeter(Seconds step) : step_(step) {
  if (step_ <= 0.0)
    throw std::invalid_argument("EnergyMeter: step must be positive");
}

void EnergyMeter::ensure_day() {
  const auto day = static_cast<std::size_t>(
      step_ * static_cast<double>(ticks_) / static_cast<double>(kSecondsPerDay));
  while (day_compute_.size() <= day) {
    day_compute_.push_back(0.0);
    day_reconf_.push_back(0.0);
  }
}

void EnergyMeter::add_compute_sample(Watts power) {
  if (power < 0.0)
    throw std::invalid_argument("EnergyMeter: negative power sample");
  ensure_day();
  const Joules e = power * step_;
  compute_energy_ += e;
  const auto day = static_cast<std::size_t>(
      step_ * static_cast<double>(ticks_) / static_cast<double>(kSecondsPerDay));
  day_compute_[day] += e;
}

void EnergyMeter::add_reconfiguration_energy(Joules energy) {
  if (energy < 0.0)
    throw std::invalid_argument("EnergyMeter: negative reconfiguration energy");
  ensure_day();
  reconf_energy_ += energy;
  const auto day = static_cast<std::size_t>(
      step_ * static_cast<double>(ticks_) / static_cast<double>(kSecondsPerDay));
  day_reconf_[day] += energy;
}

void EnergyMeter::tick() { ++ticks_; }

std::vector<Joules> EnergyMeter::per_day_total() const {
  std::vector<Joules> out(day_compute_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = day_compute_[i] + day_reconf_[i];
  return out;
}

}  // namespace bml
