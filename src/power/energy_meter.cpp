#include "power/energy_meter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bml {

EnergyMeter::EnergyMeter(Seconds step) : step_(step) {
  if (step_ <= 0.0)
    throw std::invalid_argument("EnergyMeter: step must be positive");
}

std::size_t EnergyMeter::refresh_day_slow() {
  if (ticks_ >= day_end_tick_) {
    current_day_ = static_cast<std::size_t>(step_ *
                                            static_cast<double>(ticks_) /
                                            static_cast<double>(kSecondsPerDay));
    // First tick attributed to the next day: ceil(day_end / step). Always
    // > ticks_ (ticks_ still maps to current_day_), which keeps the chunk
    // arithmetic below positive for any step size.
    const double day_end = (static_cast<double>(current_day_) + 1.0) *
                           static_cast<double>(kSecondsPerDay);
    day_end_tick_ =
        std::max(static_cast<std::size_t>(std::ceil(day_end / step_)),
                 ticks_ + 1);
  }
  while (day_compute_.size() <= current_day_) {
    day_compute_.push_back(0.0);
    day_reconf_.push_back(0.0);
  }
  return current_day_;
}

void EnergyMeter::add_compute_sample(Watts power) {
  if (power < 0.0)
    throw std::invalid_argument("EnergyMeter: negative power sample");
  const std::size_t day = refresh_day();
  const Joules e = power * step_;
  compute_energy_ += e;
  day_compute_[day] += e;
}

void EnergyMeter::add_reconfiguration_energy(Joules energy) {
  if (energy < 0.0)
    throw std::invalid_argument("EnergyMeter: negative reconfiguration energy");
  const std::size_t day = refresh_day();
  reconf_energy_ += energy;
  day_reconf_[day] += energy;
}

void EnergyMeter::tick() { ++ticks_; }

std::vector<Joules> EnergyMeter::per_day_total() const {
  std::vector<Joules> out(day_compute_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = day_compute_[i] + day_reconf_[i];
  return out;
}

}  // namespace bml
