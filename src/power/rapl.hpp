// RAPL-style power capping — the Section II foil.
//
// "Via this mechanism a user can specify a power consumption threshold
// that the processor will not exceed... This power capping tool offers
// better energy proportionality, but does not help reducing idle
// consumption."
//
// PowerCappedModel clips a machine's power curve at a cap, which also caps
// its achievable performance. rapl_homogeneous_power computes what an
// ideally-capped homogeneous fleet draws at a given load — the strongest
// version of the power-capping alternative, which the BML curve still
// beats at low utilization because capping cannot shed idle power.
#pragma once

#include <memory>

#include "arch/profile.hpp"
#include "power/power_model.hpp"
#include "util/units.hpp"

namespace bml {

/// A power model clipped at `cap` Watts; performance saturates at the rate
/// where the base model reaches the cap.
class PowerCappedModel final : public PowerModel {
 public:
  /// Throws std::invalid_argument when cap < the base model's idle power
  /// (the cap would be unreachable: RAPL cannot drop below idle).
  PowerCappedModel(const PowerModel& base, Watts cap);

  [[nodiscard]] Watts power_at(ReqRate rate) const override;
  [[nodiscard]] Watts idle_power() const override {
    return base_->idle_power();
  }
  [[nodiscard]] ReqRate max_perf() const override { return capped_perf_; }
  [[nodiscard]] Watts max_power() const override;
  [[nodiscard]] std::unique_ptr<PowerModel> clone() const override;

  [[nodiscard]] Watts cap() const { return cap_; }

 private:
  std::unique_ptr<PowerModel> base_;
  Watts cap_;
  ReqRate capped_perf_;
};

/// Power of `n` machines of `arch` under ideal per-machine RAPL caps while
/// serving `load` spread evenly: the fleet is always on (capping does not
/// switch machines off) and each machine's cap hugs its share of the load.
/// Throws std::invalid_argument when n < 1 or load < 0; load beyond fleet
/// capacity is clamped.
[[nodiscard]] Watts rapl_homogeneous_power(const ArchitectureProfile& arch,
                                           int n, ReqRate load);

}  // namespace bml
