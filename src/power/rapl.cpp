#include "power/rapl.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

namespace {

/// Largest rate whose power stays within `cap` (bisection; the power curve
/// is non-decreasing in rate).
ReqRate invert_power(const PowerModel& model, Watts cap) {
  if (model.power_at(model.max_perf()) <= cap) return model.max_perf();
  ReqRate lo = 0.0;
  ReqRate hi = model.max_perf();
  for (int i = 0; i < 64; ++i) {
    const ReqRate mid = 0.5 * (lo + hi);
    if (model.power_at(mid) <= cap)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace

PowerCappedModel::PowerCappedModel(const PowerModel& base, Watts cap)
    : base_(base.clone()), cap_(cap) {
  if (cap_ < base_->idle_power())
    throw std::invalid_argument(
        "PowerCappedModel: cap below idle power is unenforceable");
  capped_perf_ = invert_power(*base_, cap_);
  if (capped_perf_ <= 0.0)
    throw std::invalid_argument(
        "PowerCappedModel: cap leaves no usable performance");
}

Watts PowerCappedModel::power_at(ReqRate rate) const {
  const ReqRate r = std::clamp(rate, 0.0, capped_perf_);
  return std::min(base_->power_at(r), cap_);
}

Watts PowerCappedModel::max_power() const {
  return std::min(base_->power_at(capped_perf_), cap_);
}

std::unique_ptr<PowerModel> PowerCappedModel::clone() const {
  return std::make_unique<PowerCappedModel>(*base_, cap_);
}

Watts rapl_homogeneous_power(const ArchitectureProfile& arch, int n,
                             ReqRate load) {
  if (n < 1)
    throw std::invalid_argument("rapl_homogeneous_power: n must be >= 1");
  if (load < 0.0)
    throw std::invalid_argument("rapl_homogeneous_power: load must be >= 0");
  const ReqRate per_machine =
      std::min(load / n, arch.max_perf());
  // An ideal cap tracks the actual draw at the served rate; with the
  // monotone power curve that is simply power_at(share) per machine. The
  // fleet stays on: idle power remains for every machine.
  return n * arch.power_at(per_machine);
}

}  // namespace bml
