// Runtime fault timeline: the clocks behind FaultModel's crash/repair
// channel (sim/cluster.hpp).
//
// Each (fault domain, architecture) pair owns an independent renewal
// process seeded from the fault seed: failure strikes arrive with
// exponential inter-arrival times of mean MTBF, and every strike carries a
// pre-drawn exponential repair duration of mean MTTR (both quantised to
// whole seconds, minimum 1 s). The strike times and repair durations are
// functions of the seed alone — never of cluster state — so the timeline
// is bit-identical between the per-second reference loop and the
// event-driven fast path, and across sweep thread counts. Whether a strike
// actually fells a machine is decided by the caller (the simulator gates
// on the domain's entitlement and the cluster's On counts); a dropped
// strike still consumed its draws, keeping the stream state-independent.
//
// The timeline is also the fast path's event source: next_event() bounds
// event-driven spans exactly like Cluster::next_transition_remaining, so
// no failure or repair ever lands inside a batched span.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bml {

/// One due fault event, popped in deterministic order (time, repairs
/// before failures, then domain, then arch).
struct FaultEvent {
  TimePoint time = 0;
  std::size_t domain = 0;
  std::size_t arch = 0;
  /// true = a repair completion; false = a failure strike.
  bool repair = false;
  /// Failure strikes only: the pre-drawn repair duration the caller
  /// schedules if (and only if) the strike fells a machine.
  TimePoint repair_seconds = 0;
};

class FaultTimeline {
 public:
  /// Sentinel for "no event pending".
  static constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

  /// Inactive timeline (no runtime faults configured).
  FaultTimeline() = default;

  /// One stream per (domain, arch) whose effective MTBF is > 0. Streams
  /// are seeded `model.seed + golden_ratio * (domain * arch_kinds + arch
  /// + 1)` so domains fail independently and reordering workloads between
  /// domains does not perturb unrelated streams.
  FaultTimeline(const FaultModel& model, std::size_t arch_kinds,
                std::size_t domains);

  [[nodiscard]] bool active() const { return !streams_.empty(); }

  /// Time of the earliest pending failure strike or repair completion;
  /// kNever when none. Events are always strictly in the future of the
  /// last pop() point.
  [[nodiscard]] TimePoint next_event() const;

  /// Pops the earliest event due at or before `now` (std::nullopt when
  /// none). Popping a failure strike advances its stream (the next strike
  /// and its repair duration are drawn immediately, unconditionally).
  [[nodiscard]] std::optional<FaultEvent> pop(TimePoint now);

  /// Registers a landed failure's repair completion at `completion`.
  void schedule_repair(TimePoint completion, std::size_t domain,
                       std::size_t arch);

 private:
  struct Stream {
    Rng rng;
    Seconds mtbf;
    Seconds mttr;
    std::size_t domain;
    std::size_t arch;
    TimePoint next_strike;
    TimePoint next_repair_duration;
  };
  struct Repair {
    TimePoint time;
    std::size_t domain;
    std::size_t arch;
  };

  /// Draws the stream's next strike gap and repair duration.
  static void advance(Stream& stream);

  std::vector<Stream> streams_;
  /// Pending repair completions, kept sorted by (time, domain, arch).
  std::vector<Repair> repairs_;
};

}  // namespace bml
