// Runtime fault timeline: the clocks behind FaultModel's crash/repair
// channel (sim/cluster.hpp).
//
// Each (fault domain, architecture) pair owns an independent renewal
// process seeded from the fault seed: failure strikes arrive with
// exponential inter-arrival times of mean MTBF, and every strike carries a
// pre-drawn exponential repair duration of mean MTTR (both quantised to
// whole seconds, minimum 1 s). The strike times and repair durations are
// functions of the seed alone — never of cluster state — so the timeline
// is bit-identical between the per-second reference loop and the
// event-driven fast path, and across sweep thread counts. Whether a strike
// actually fells a machine is decided by the caller (the simulator gates
// on the domain's entitlement and the cluster's On counts); a dropped
// strike still consumed its draws, keeping the stream state-independent.
//
// Correlated strikes add a second stream family: each (fault domain, rack)
// pair — FaultModel::groups racks per domain — runs its own renewal
// process of mean group_mtbf, seeded after the whole machine-stream key
// space so adding racks never perturbs the per-machine streams. A group
// strike is one event; the caller fells every On machine the struck rack
// holds (a deterministic stripe of the domain's entitlement) and all
// casualties share the strike's single pre-drawn repair duration.
//
// Repairs flow through a crew-limited queue: FaultModel::crews concurrent
// repair jobs (0 = unlimited — every repair runs in parallel, exactly the
// pre-crew behaviour). Excess jobs wait in FIFO order (ties broken by
// enqueue sequence, which both execution strategies generate identically),
// and a completion immediately hands the freed crew to the oldest waiter.
//
// The timeline is also the fast path's event source: next_event() bounds
// event-driven spans exactly like Cluster::next_transition_remaining, so
// no failure or repair ever lands inside a batched span.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bml {

/// One due fault event, popped in deterministic order (time, repairs
/// before machine strikes before group strikes, then domain, then
/// arch/rack).
struct FaultEvent {
  TimePoint time = 0;
  std::size_t domain = 0;
  std::size_t arch = 0;
  /// true = a repair completion; false = a failure strike.
  bool repair = false;
  /// Failure strikes only: the pre-drawn repair duration the caller
  /// schedules if (and only if) the strike fells a machine.
  TimePoint repair_seconds = 0;
  /// Correlated strikes: true marks a rack-level event felling every On
  /// machine of rack `group` in the domain (`arch` is meaningless).
  bool group_strike = false;
  std::size_t group = 0;
};

class FaultTimeline {
 public:
  /// Sentinel for "no event pending".
  static constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

  /// Inactive timeline (no runtime faults configured).
  FaultTimeline() = default;

  /// One stream per (domain, arch) whose effective MTBF is > 0. Streams
  /// are seeded `model.seed + golden_ratio * (domain * arch_kinds + arch
  /// + 1)` so domains fail independently and reordering workloads between
  /// domains does not perturb unrelated streams. Group streams (one per
  /// (domain, rack) when the group channel is active) continue the key
  /// space at `domains * arch_kinds`, so enabling racks leaves every
  /// machine stream untouched.
  FaultTimeline(const FaultModel& model, std::size_t arch_kinds,
                std::size_t domains);

  [[nodiscard]] bool active() const {
    return !streams_.empty() || !group_streams_.empty();
  }

  /// Time of the earliest pending failure strike or repair completion;
  /// kNever when none. Events are always strictly in the future of the
  /// last pop() point. Queued (crew-starved) repairs are not events —
  /// they surface through the completion that frees their crew.
  [[nodiscard]] TimePoint next_event() const;

  /// Time of the earliest in-progress repair completion; kNever when no
  /// repair is running. next_repair() == next_event() identifies the
  /// bound as a crew completion rather than a failure strike (repairs
  /// pop before same-second strikes, so ties classify as repairs).
  [[nodiscard]] TimePoint next_repair() const {
    return repairs_.empty() ? kNever : repairs_.front().time;
  }

  /// Pops the earliest event due at or before `now` (std::nullopt when
  /// none). Popping a failure strike advances its stream (the next strike
  /// and its repair duration are drawn immediately, unconditionally).
  /// Popping a repair completion frees its crew and starts the oldest
  /// waiting job, if any.
  [[nodiscard]] std::optional<FaultEvent> pop(TimePoint now);

  /// Registers a landed failure's repair of `duration` seconds starting
  /// at `now` — immediately when a crew is free (completion at now +
  /// duration), else queued FIFO behind the busy crews.
  void schedule_repair(TimePoint now, TimePoint duration, std::size_t domain,
                       std::size_t arch);

  /// Repairs waiting for a free crew (0 unless crews are saturated).
  [[nodiscard]] std::size_t queued_repairs() const { return pending_.size(); }

 private:
  struct Stream {
    Rng rng;
    Seconds mtbf;
    Seconds mttr;
    std::size_t domain;
    std::size_t arch;  // rack index for group streams
    TimePoint next_strike;
    TimePoint next_repair_duration;
  };
  struct Repair {
    TimePoint time;
    std::size_t domain;
    std::size_t arch;
    std::uint64_t seq;
  };
  struct PendingRepair {
    TimePoint duration;
    std::size_t domain;
    std::size_t arch;
    std::uint64_t seq;
  };

  /// Draws the stream's next strike gap and repair duration.
  static void advance(Stream& stream);
  void insert_active(const Repair& repair);

  /// Cached min over every stream's next_strike, recomputed lazily: the
  /// event-driven path calls next_event()/pop() once per span, which with
  /// thousands of fault streams would otherwise rescan them all each time.
  /// Only advance() moves a strike clock, so pops that fire no strike keep
  /// the cache clean.
  [[nodiscard]] TimePoint next_strike_min() const;

  std::vector<Stream> streams_;
  std::vector<Stream> group_streams_;
  /// Repairs in progress (a crew assigned), kept sorted by
  /// (time, domain, arch, seq).
  std::vector<Repair> repairs_;
  /// Crew-starved repairs, FIFO by enqueue sequence.
  std::deque<PendingRepair> pending_;
  /// 0 = unlimited crews.
  int crews_ = 0;
  std::uint64_t next_seq_ = 0;
  mutable TimePoint cached_strike_ = kNever;
  mutable bool strike_dirty_ = true;
};

}  // namespace bml
