// Machine finite-state machine.
//
// Every physical machine is Off, Booting, On, ShuttingDown, or Failed.
// Transition durations and energies come from its architecture profile
// (Table I: Ont, OnE, Offt, OffE). Transition energy is spread uniformly
// over the transition so that per-second accounting integrates to the
// measured totals exactly.
//
//          request_on              boot done
//   Off ---------------> Booting ------------> On
//    ^  ^                                       |
//    |  |     repair                fail        |
//    |  +------------- Failed <-----------------+
//    |        off done               request_off|
//    +----------------- ShuttingDown <----------+
//
// A Failed machine is dead: it serves no load and draws no power. Repair
// scheduling (when the fail/repair pair happens) lives above the FSM — the
// runtime fault timeline (sim/fault_timeline.hpp) owns the clocks, the
// machine only records the state.
#pragma once

#include <cstddef>

#include "arch/profile.hpp"
#include "util/units.hpp"

namespace bml {

enum class MachineState { kOff, kBooting, kOn, kShuttingDown, kFailed };

[[nodiscard]] const char* to_string(MachineState state);

/// One simulated machine of a given architecture (index into the candidate
/// catalog). The machine does not own its profile; callers pass it to the
/// methods that need timing data, keeping the object a small value type.
class SimMachine {
 public:
  /// Creates a machine in `initial` state (only kOff or kOn make sense as
  /// starting points; transition states would have unknown progress).
  explicit SimMachine(std::size_t arch_index,
                      MachineState initial = MachineState::kOff);

  [[nodiscard]] std::size_t arch_index() const { return arch_; }
  [[nodiscard]] MachineState state() const { return state_; }
  [[nodiscard]] Seconds transition_remaining() const { return remaining_; }

  /// True when the machine can serve load this second.
  [[nodiscard]] bool serving() const { return state_ == MachineState::kOn; }

  /// Off -> Booting. Throws std::logic_error from any other state.
  /// A zero-duration boot completes immediately (machine goes On).
  /// `duration_override` >= 0 replaces the profile's boot duration (fault
  /// injection: slow or retried boots); the per-second boot power stays at
  /// the profile's nominal value, so longer boots cost proportionally more
  /// energy.
  void request_on(const ArchitectureProfile& profile,
                  Seconds duration_override = -1.0);

  /// On -> ShuttingDown. Throws std::logic_error from any other state.
  /// A zero-duration shutdown completes immediately (machine goes Off).
  void request_off(const ArchitectureProfile& profile);

  /// On -> Failed (a runtime crash). Throws std::logic_error from any
  /// other state. The machine stops serving immediately; it stays Failed
  /// until repair() — the repair clock is owned by the fault timeline.
  void fail();

  /// Failed -> Off (repair completed; the machine is usable again but
  /// powered down — the scheduler must boot it like any Off machine).
  /// Throws std::logic_error from any other state.
  void repair();

  /// Power drawn this second by transition activity (0 when Off or On; the
  /// On-state power is computed by load dispatch at the cluster level).
  [[nodiscard]] Watts transition_power(const ArchitectureProfile& profile) const;

  /// Advances one second. Returns true when a transition completed during
  /// this step (Booting -> On or ShuttingDown -> Off).
  bool step(Seconds dt = 1.0);

 private:
  std::size_t arch_;
  MachineState state_;
  Seconds remaining_ = 0.0;
};

}  // namespace bml
