// Machine finite-state machine.
//
// Every physical machine is Off, Booting, On, or ShuttingDown. Transition
// durations and energies come from its architecture profile (Table I: Ont,
// OnE, Offt, OffE). Transition energy is spread uniformly over the
// transition so that per-second accounting integrates to the measured
// totals exactly.
//
//          request_on              boot done
//   Off ---------------> Booting ------------> On
//    ^                                          |
//    |        off done               request_off|
//    +----------------- ShuttingDown <----------+
#pragma once

#include <cstddef>

#include "arch/profile.hpp"
#include "util/units.hpp"

namespace bml {

enum class MachineState { kOff, kBooting, kOn, kShuttingDown };

[[nodiscard]] const char* to_string(MachineState state);

/// One simulated machine of a given architecture (index into the candidate
/// catalog). The machine does not own its profile; callers pass it to the
/// methods that need timing data, keeping the object a small value type.
class SimMachine {
 public:
  /// Creates a machine in `initial` state (only kOff or kOn make sense as
  /// starting points; transition states would have unknown progress).
  explicit SimMachine(std::size_t arch_index,
                      MachineState initial = MachineState::kOff);

  [[nodiscard]] std::size_t arch_index() const { return arch_; }
  [[nodiscard]] MachineState state() const { return state_; }
  [[nodiscard]] Seconds transition_remaining() const { return remaining_; }

  /// True when the machine can serve load this second.
  [[nodiscard]] bool serving() const { return state_ == MachineState::kOn; }

  /// Off -> Booting. Throws std::logic_error from any other state.
  /// A zero-duration boot completes immediately (machine goes On).
  /// `duration_override` >= 0 replaces the profile's boot duration (fault
  /// injection: slow or retried boots); the per-second boot power stays at
  /// the profile's nominal value, so longer boots cost proportionally more
  /// energy.
  void request_on(const ArchitectureProfile& profile,
                  Seconds duration_override = -1.0);

  /// On -> ShuttingDown. Throws std::logic_error from any other state.
  /// A zero-duration shutdown completes immediately (machine goes Off).
  void request_off(const ArchitectureProfile& profile);

  /// Power drawn this second by transition activity (0 when Off or On; the
  /// On-state power is computed by load dispatch at the cluster level).
  [[nodiscard]] Watts transition_power(const ArchitectureProfile& profile) const;

  /// Advances one second. Returns true when a transition completed during
  /// this step (Booting -> On or ShuttingDown -> Off).
  bool step(Seconds dt = 1.0);

 private:
  std::size_t arch_;
  MachineState state_;
  Seconds remaining_ = 0.0;
};

}  // namespace bml
