#include "sim/qos.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

double headroom_factor(QosClass qos) {
  switch (qos) {
    case QosClass::kCritical: return 1.10;
    case QosClass::kTolerant: return 1.0;
  }
  throw std::invalid_argument("headroom_factor: unknown QoS class");
}

void QosTracker::record(ReqRate load, ReqRate capacity) {
  if (load < 0.0 || capacity < 0.0)
    throw std::invalid_argument("QosTracker: negative load or capacity");
  stats_.total_seconds += 1;
  stats_.offered_requests += load;
  const double shortfall = load - capacity;
  if (shortfall > 0.0) {
    stats_.violation_seconds += 1;
    stats_.unserved_requests += shortfall;
    stats_.worst_shortfall = std::max(stats_.worst_shortfall, shortfall);
  }
}

}  // namespace bml
