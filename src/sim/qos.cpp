#include "sim/qos.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

double headroom_factor(QosClass qos) {
  switch (qos) {
    case QosClass::kCritical: return 1.10;
    case QosClass::kTolerant: return 1.0;
  }
  throw std::invalid_argument("headroom_factor: unknown QoS class");
}

QosClass parse_qos_class(const std::string& name) {
  if (name == "tolerant") return QosClass::kTolerant;
  if (name == "critical") return QosClass::kCritical;
  throw std::runtime_error("qos must be tolerant or critical, got '" + name +
                           "'");
}

void QosTracker::record_span(ReqRate load, ReqRate capacity,
                             std::int64_t seconds) {
  if (load < 0.0 || capacity < 0.0)
    throw std::invalid_argument("QosTracker: negative load or capacity");
  if (seconds < 0)
    throw std::invalid_argument("QosTracker: negative span");
  if (seconds == 0) return;
  stats_.total_seconds += seconds;
  stats_.offered_requests += load * static_cast<double>(seconds);
  const double shortfall = load - capacity;
  if (shortfall > 0.0) {
    stats_.violation_seconds += seconds;
    stats_.unserved_requests += shortfall * static_cast<double>(seconds);
    stats_.worst_shortfall = std::max(stats_.worst_shortfall, shortfall);
  }
}

void QosTracker::record(ReqRate load, ReqRate capacity) {
  record_span(load, capacity, 1);
}

}  // namespace bml
