#include "sim/qos.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

double headroom_factor(QosClass qos) {
  switch (qos) {
    case QosClass::kCritical: return 1.10;
    case QosClass::kTolerant: return 1.0;
  }
  throw std::invalid_argument("headroom_factor: unknown QoS class");
}

QosClass parse_qos_class(const std::string& name) {
  if (name == "tolerant") return QosClass::kTolerant;
  if (name == "critical") return QosClass::kCritical;
  throw std::runtime_error("qos must be tolerant or critical, got '" + name +
                           "'");
}

void QosTracker::record(ReqRate load, ReqRate capacity) {
  record_span(load, capacity, 1);
}

}  // namespace bml
