// The discrete-time data center simulator.
//
// Replays the load of one or more applications at 1 Hz against a shared
// cluster, mirroring (and generalising) the Python simulator of Section
// V-C:
//   * every application (Workload) carries its own trace, scheduler,
//     predictor and QoS class; each scheduler is consulted every second
//     while idle and proposes the combination that would serve its own
//     predicted load;
//   * a Coordinator (sched/coordinator.hpp) merges the per-app proposals
//     into one cluster-wide target — sum-of-combinations by default, or
//     clamped to per-app capacity shares in partitioned mode;
//   * a merged decision that changes the target starts a reconfiguration,
//     during which no further decision is taken; the next decision happens
//     at the second following reconfiguration completion ("the next
//     prediction window starts from reconfiguration completion time");
//   * compute energy (serving machines) and reconfiguration energy (boot /
//     shutdown) are metered separately and aggregated per day — both for
//     the cluster and attributed per application (load-proportional
//     capacity and compute-power splits, provisioned-share reconfiguration
//     splits; see app/workload.hpp for the attribution rules);
//   * runtime faults (FaultModel::mtbf/mttr) crash On machines and repair
//     them on per-(fault domain, architecture) renewal processes
//     (sim/fault_timeline.hpp). A landed failure consumes a pending
//     deferred switch-off if one covers it, otherwise the simulator
//     re-merges the current proposals against the surviving fleet and
//     boots a replacement; availability and lost capacity are accounted
//     per fault domain and reported per app (WorkloadResult).
//
// The single-workload run(Scheduler&, trace) API is the N = 1 case of the
// same core loop: the sum coordinator is the identity for one app, so the
// refactor is regression-pinned — single-app results are bit-for-bit what
// the pre-multi-tenant simulator produced.
//
// Switch-off ordering is configurable: graceful (surplus machines keep
// serving until the replacements finish booting — no capacity dip) or
// immediate (off actions start with the on actions — cheaper, riskier).
//
// Two execution strategies produce the same results:
//   * the per-second reference loop — one tick per simulated second, the
//     direct transcription of the paper's simulator, and the only mode
//     that can record per-second event logs;
//   * the event-driven fast path (default) — the simulator advances at
//     *decision* granularity: a span lasts until some scheduler's decision
//     may change or a machine transition completes. Trace value changes do
//     NOT break spans; inside a span the fleet is fixed, so the varying
//     load is integrated by walking the traces' compiled run-length
//     segments (sim/compiled_trace.hpp) and feeding the piecewise-constant
//     kernels (EnergyMeter::add_runs, QosTracker::record_runs, power
//     bucketing) — a per-second-noisy trace whose values stay inside one
//     decision-threshold bucket (core/decision_thresholds.hpp) costs zero
//     scheduler evaluations. Multi-workload spans intersect the
//     per-workload stability bounds and per-app trace runs. Steady *and*
//     noisy traces replay orders of magnitude faster; see bench_micro's
//     BM_SimulatorWeek* benchmarks, tests/test_simulator_fastpath.cpp and
//     tests/test_multi_workload.cpp for the equivalence guarantee.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "core/combination.hpp"
#include "core/dispatch_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "power/energy_meter.hpp"
#include "sched/coordinator.hpp"
#include "sim/cluster.hpp"
#include "sim/compiled_trace.hpp"
#include "sim/event_log.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace bml {

/// Simulator configuration.
struct SimulatorOptions {
  /// Defer switch-offs until pending boots complete (default), keeping
  /// capacity through the transition.
  bool graceful_off = true;
  /// Use the event-driven fast path: between events (scheduler decision
  /// changes, machine transition completions, trace value changes) the
  /// simulation advances in closed form instead of per-second ticks.
  /// Results match the per-second reference up to floating-point summation
  /// order (see tests/test_simulator_fastpath.cpp). Event logging always
  /// falls back to the per-second reference path.
  bool event_driven = true;
  /// How per-workload proposals merge into the cluster target
  /// (multi-workload runs; irrelevant at N = 1 where both modes are the
  /// identity unless a budget clamps the single app).
  CoordinatorMode coordinator = CoordinatorMode::kSum;
  /// Total capacity budget (req/s) split across workloads by their share
  /// weights in partitioned mode; <= 0 leaves proposals unclamped.
  ReqRate coordinator_budget = 0.0;
  /// Record the total power series downsampled by this factor (seconds per
  /// sample, max over the bucket); 0 disables recording.
  std::size_t record_power_every = 0;
  /// Fault injection: boot-path jitter/retries, plus runtime crash/repair
  /// processes (FaultModel::mtbf / mttr) with per-app fault domains
  /// (WorkloadView::fault_domain). Runtime failures and repairs are
  /// first-class events on the fast path — the next scheduled one bounds
  /// a span exactly like a machine transition — and a felled machine
  /// triggers a re-merge of the current proposals against the surviving
  /// fleet, booting a replacement (self-healing; the felled machine
  /// returns to the Off pool when repaired).
  FaultModel faults{};
  /// Degraded-mode serving (DegradeModel::overload_factor > 0): when the
  /// offered load exceeds the On fleet's rated capacity, survivors absorb
  /// spill-over above their rating at the contention penalty — served
  /// capacity saturates smoothly instead of cliff-dropping. QoS is scored
  /// against the effective (post-spill) capacity; overload-seconds and
  /// penalty-lost capacity are accounted cluster-wide, per app, and per
  /// fault domain. On the fast path, overload entry/exit crossings bound
  /// spans (SpanEndCause::kOverloadCrossing) so the accounting integrand
  /// is exact.
  DegradeModel degrade{};
  /// Trailing window (s) of the per-app availability SLOs
  /// (WorkloadView::slo_availability): a domain's downtime inside the
  /// last `slo_window` seconds is compared against each SLO app's error
  /// budget (1 - target) * window; while the budget is exceeded the
  /// coordinator provisions the app's spare capacity, releasing it once
  /// the window recovers. Whole seconds; must be >= 1 when any app sets
  /// an SLO target.
  Seconds slo_window = 86400.0;
  /// Record a structured event log (reconfigurations, transition batches,
  /// QoS violations). Bounded memory; see sim/event_log.hpp.
  bool record_events = false;
  std::size_t event_log_capacity = 4096;
  /// Collect the simulator's self-metrics (SimulationResult::metrics):
  /// span/tick counts, span-end causes, span-length histogram, scheduler
  /// consults. Near-zero overhead — the hot loops test one pointer per
  /// span — and never feeds back into the simulation, so results are
  /// bit-identical with it on or off.
  bool collect_metrics = false;
  /// Record a timeline (SimulationResult::timeline) for the Chrome
  /// trace-event exporter: sampled fleet/load counter tracks plus the
  /// full event stream. Forces the per-second reference path, exactly
  /// like record_events (results obey the equivalence contract rather
  /// than matching the fast path byte-for-byte).
  bool record_timeline = false;
  /// Seconds between timeline counter samples (>= 1).
  std::size_t timeline_sample_every = 60;
};

/// Everything a simulation run produces (cluster-wide aggregates).
struct SimulationResult {
  std::string scheduler_name;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;
  std::vector<Joules> per_day_compute;
  std::vector<Joules> per_day_reconfiguration;
  QosStats qos;
  /// Number of reconfigurations started.
  int reconfigurations = 0;
  /// Seconds spent with a reconfiguration in flight.
  std::int64_t reconfiguring_seconds = 0;
  /// Peak number of simultaneously provisioned machines.
  std::size_t peak_machines = 0;
  /// Runtime-fault aggregates (FaultModel::mtbf; defaults describe a
  /// fault-free run). `machine_failures` counts strikes that felled a
  /// machine; `unavailable_seconds` is the time any machine was down
  /// (union over fault domains), `availability` its complement as a
  /// fraction of the replay, and `lost_capacity` the integral of failed
  /// serving capacity over downtime (req·s).
  int machine_failures = 0;
  std::int64_t unavailable_seconds = 0;
  double availability = 1.0;
  double lost_capacity = 0.0;
  /// Correlated-strike aggregate (FaultModel::groups): rack-level strikes
  /// that felled at least one machine (each casualty also counts in
  /// machine_failures).
  int group_strikes = 0;
  /// SLO feedback aggregates (WorkloadView::slo_availability): seconds
  /// any app had spare capacity provisioned, and the idle-power integral
  /// of all provisioned spares (an attribution overlay — the energy is
  /// already inside compute_energy; see WorkloadResult::spare_energy).
  std::int64_t spare_seconds = 0;
  Joules spare_energy = 0.0;
  /// Degraded-mode aggregates (SimulatorOptions::degrade): seconds the
  /// offered load exceeded rated capacity, and the integral of capacity
  /// lost to the contention penalty while spilling over (req·s).
  std::int64_t overload_seconds = 0;
  double penalty_lost_capacity = 0.0;
  /// Machines preempted from low-priority apps to backfill
  /// higher-priority ones after strikes (units, summed over all
  /// preemption instants; see Workload::priority).
  int preemptions = 0;
  /// Tenant-lifecycle aggregates (Workload::arrive / depart and the
  /// churn.* scenario keys): apps that became active after t = 0, and
  /// apps that departed before the end of the replay. Both 0 for the
  /// classic fixed-tenant model.
  int arrivals = 0;
  int departures = 0;
  /// Optional downsampled total power (W), see record_power_every.
  TimeSeries power_series;
  /// Optional structured event log, see record_events.
  EventLog events{1};
  /// Self-metrics, see SimulatorOptions::collect_metrics (disabled and
  /// empty unless requested).
  SimMetrics metrics;
  /// Timeline recording for obs/trace_export.hpp, see
  /// SimulatorOptions::record_timeline (disabled and empty unless
  /// requested).
  TraceRecording timeline;

  [[nodiscard]] Joules total_energy() const {
    return compute_energy + reconfiguration_energy;
  }
  [[nodiscard]] std::vector<Joules> per_day_total() const;
};

/// A multi-workload run: the cluster-wide aggregates plus one attributed
/// slice per application (parallel to the workloads passed to run()).
struct MultiSimulationResult {
  SimulationResult total;
  std::vector<WorkloadResult> apps;
};

/// Runs workloads over a cluster drawn from `candidates`. The candidate
/// catalog is compiled into a DispatchPlan once at construction; run() is
/// const and every run gets its own cluster and scratch state, so one
/// Simulator can serve many parallel_for workers concurrently (as the
/// experiment sweeps do).
class Simulator {
 public:
  /// Non-owning per-workload view the core loops operate on (public so the
  /// implementation helpers can name it; not part of the stable API —
  /// callers pass Workload or Scheduler+trace).
  struct WorkloadView {
    const std::string* name;
    const LoadTrace* trace;
    Scheduler* scheduler;
    QosClass qos;
    double share;
    /// Optional precompiled RLE form of `trace` (must be compiled from the
    /// same trace). Sweeps pass one shared compilation across scenarios;
    /// when null the event-driven path compiles its own once per run.
    const CompiledTrace* compiled = nullptr;
    /// Fault-domain name for runtime faults (see Workload::fault_domain);
    /// null or empty = the workload's own private domain.
    const std::string* fault_domain = nullptr;
    /// Availability SLO target in [0, 1]; 0 disables the feedback loop
    /// (see Workload::slo_availability / SimulatorOptions::slo_window).
    double slo_availability = 0.0;
    /// Spare-capacity fraction provisioned while the SLO is violated.
    double slo_spare = 0.25;
    /// Priority class (higher = more important; see Workload::priority).
    int priority = 0;
    /// Tenant lifecycle: active interval [arrive, depart), -1 = never
    /// departs (see Workload::arrive / depart). Any view with arrive > 0
    /// or depart >= 0 switches the run into lifecycle mode; all-default
    /// views keep the classic fixed-tenant model byte-identical.
    TimePoint arrive = 0;
    TimePoint depart = -1;
  };

  Simulator(Catalog candidates, SimulatorOptions options = {});

  /// Shares a precompiled plan (must match `candidates`) instead of
  /// compiling one — for sweeps that build many differently-configured
  /// simulators over the same catalog across parallel_for workers.
  Simulator(Catalog candidates, std::shared_ptr<const DispatchPlan> plan,
            SimulatorOptions options = {});

  /// Single-workload replay — the N = 1 case of run(workloads), kept as
  /// the primary API for the paper's experiments. Bit-for-bit identical to
  /// the pre-multi-tenant simulator.
  [[nodiscard]] SimulationResult run(Scheduler& scheduler,
                                     const LoadTrace& trace) const;

  /// Replays N workloads against one shared cluster. Schedulers are
  /// stateful, hence the non-const workloads. Throws on an empty list or a
  /// workload without a scheduler.
  [[nodiscard]] MultiSimulationResult run(
      std::vector<Workload>& workloads) const;

  /// As above over non-owning views — for callers (the scenario engine)
  /// that hold traces and schedulers elsewhere and must not copy them per
  /// run. Every pointer must be non-null and outlive the call.
  [[nodiscard]] MultiSimulationResult run(
      const std::vector<WorkloadView>& views) const;

  [[nodiscard]] const DispatchPlan& plan() const { return *plan_; }

 private:
  [[nodiscard]] MultiSimulationResult run_views(
      const std::vector<WorkloadView>& views) const;
  /// The 1 Hz reference loop (also the event-logging mode).
  [[nodiscard]] MultiSimulationResult run_per_second(
      const std::vector<WorkloadView>& views) const;
  /// Run-length batching between events.
  [[nodiscard]] MultiSimulationResult run_event_driven(
      const std::vector<WorkloadView>& views) const;

  Catalog candidates_;
  std::shared_ptr<const DispatchPlan> plan_;
  SimulatorOptions options_;
};

}  // namespace bml
