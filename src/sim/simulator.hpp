// The discrete-time data center simulator.
//
// Replays a load trace at 1 Hz against a cluster driven by a Scheduler,
// mirroring the Python simulator of Section V-C:
//   * the scheduler is consulted every second while idle;
//   * a decision that changes the target combination starts a
//     reconfiguration, during which no further decision is taken;
//   * the next decision happens at the second following reconfiguration
//     completion ("the next prediction window starts from reconfiguration
//     completion time");
//   * compute energy (serving machines) and reconfiguration energy (boot /
//     shutdown) are metered separately and aggregated per day.
//
// Switch-off ordering is configurable: graceful (surplus machines keep
// serving until the replacements finish booting — no capacity dip) or
// immediate (off actions start with the on actions — cheaper, riskier).
//
// Two execution strategies produce the same results:
//   * the per-second reference loop — one tick per simulated second, the
//     direct transcription of the paper's simulator, and the only mode
//     that can record per-second event logs;
//   * the event-driven fast path (default) — between events nothing in the
//     system changes (the scheduler's decision is stable, no machine
//     transition completes, the trace value is constant), so the simulator
//     advances to the next event boundary in one step and accumulates
//     energy / QoS / power-bucket state in closed form. Steady traces
//     replay orders of magnitude faster; see bench_micro's
//     BM_SimulatorWeek benchmarks and tests/test_simulator_fastpath.cpp
//     for the equivalence guarantee.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/combination.hpp"
#include "core/dispatch_plan.hpp"
#include "power/energy_meter.hpp"
#include "sim/cluster.hpp"
#include "sim/event_log.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace bml {

/// Simulator configuration.
struct SimulatorOptions {
  /// Defer switch-offs until pending boots complete (default), keeping
  /// capacity through the transition.
  bool graceful_off = true;
  /// Use the event-driven fast path: between events (scheduler decision
  /// changes, machine transition completions, trace value changes) the
  /// simulation advances in closed form instead of per-second ticks.
  /// Results match the per-second reference up to floating-point summation
  /// order (see tests/test_simulator_fastpath.cpp). Event logging always
  /// falls back to the per-second reference path.
  bool event_driven = true;
  /// Record the total power series downsampled by this factor (seconds per
  /// sample, max over the bucket); 0 disables recording.
  std::size_t record_power_every = 0;
  /// Boot-path fault injection (jittered / retried boots).
  FaultModel faults{};
  /// Record a structured event log (reconfigurations, transition batches,
  /// QoS violations). Bounded memory; see sim/event_log.hpp.
  bool record_events = false;
  std::size_t event_log_capacity = 4096;
};

/// Everything a simulation run produces.
struct SimulationResult {
  std::string scheduler_name;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;
  std::vector<Joules> per_day_compute;
  std::vector<Joules> per_day_reconfiguration;
  QosStats qos;
  /// Number of reconfigurations started.
  int reconfigurations = 0;
  /// Seconds spent with a reconfiguration in flight.
  std::int64_t reconfiguring_seconds = 0;
  /// Peak number of simultaneously provisioned machines.
  std::size_t peak_machines = 0;
  /// Optional downsampled total power (W), see record_power_every.
  TimeSeries power_series;
  /// Optional structured event log, see record_events.
  EventLog events{1};

  [[nodiscard]] Joules total_energy() const {
    return compute_energy + reconfiguration_energy;
  }
  [[nodiscard]] std::vector<Joules> per_day_total() const;
};

/// Runs `scheduler` over `trace` on a cluster drawn from `candidates`.
/// The candidate catalog is compiled into a DispatchPlan once at
/// construction; run() is const and every run gets its own cluster and
/// scratch state, so one Simulator can serve many parallel_for workers
/// concurrently (as the experiment sweeps do).
class Simulator {
 public:
  Simulator(Catalog candidates, SimulatorOptions options = {});

  /// Shares a precompiled plan (must match `candidates`) instead of
  /// compiling one — for sweeps that build many differently-configured
  /// simulators over the same catalog across parallel_for workers.
  Simulator(Catalog candidates, std::shared_ptr<const DispatchPlan> plan,
            SimulatorOptions options = {});

  [[nodiscard]] SimulationResult run(Scheduler& scheduler,
                                     const LoadTrace& trace) const;

  [[nodiscard]] const DispatchPlan& plan() const { return *plan_; }

 private:
  /// The 1 Hz reference loop (also the event-logging mode).
  [[nodiscard]] SimulationResult run_per_second(Scheduler& scheduler,
                                                const LoadTrace& trace) const;
  /// Run-length batching between events.
  [[nodiscard]] SimulationResult run_event_driven(
      Scheduler& scheduler, const LoadTrace& trace) const;

  Catalog candidates_;
  std::shared_ptr<const DispatchPlan> plan_;
  SimulatorOptions options_;
};

}  // namespace bml
