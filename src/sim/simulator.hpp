// The discrete-time data center simulator.
//
// Replays a load trace at 1 Hz against a cluster driven by a Scheduler,
// mirroring the Python simulator of Section V-C:
//   * the scheduler is consulted every second while idle;
//   * a decision that changes the target combination starts a
//     reconfiguration, during which no further decision is taken;
//   * the next decision happens at the second following reconfiguration
//     completion ("the next prediction window starts from reconfiguration
//     completion time");
//   * compute energy (serving machines) and reconfiguration energy (boot /
//     shutdown) are metered separately and aggregated per day.
//
// Switch-off ordering is configurable: graceful (surplus machines keep
// serving until the replacements finish booting — no capacity dip) or
// immediate (off actions start with the on actions — cheaper, riskier).
#pragma once

#include <string>
#include <vector>

#include "core/combination.hpp"
#include "power/energy_meter.hpp"
#include "sim/cluster.hpp"
#include "sim/event_log.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace bml {

/// Simulator configuration.
struct SimulatorOptions {
  /// Defer switch-offs until pending boots complete (default), keeping
  /// capacity through the transition.
  bool graceful_off = true;
  /// Record the total power series downsampled by this factor (seconds per
  /// sample, max over the bucket); 0 disables recording.
  std::size_t record_power_every = 0;
  /// Boot-path fault injection (jittered / retried boots).
  FaultModel faults{};
  /// Record a structured event log (reconfigurations, transition batches,
  /// QoS violations). Bounded memory; see sim/event_log.hpp.
  bool record_events = false;
  std::size_t event_log_capacity = 4096;
};

/// Everything a simulation run produces.
struct SimulationResult {
  std::string scheduler_name;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;
  std::vector<Joules> per_day_compute;
  std::vector<Joules> per_day_reconfiguration;
  QosStats qos;
  /// Number of reconfigurations started.
  int reconfigurations = 0;
  /// Seconds spent with a reconfiguration in flight.
  std::int64_t reconfiguring_seconds = 0;
  /// Peak number of simultaneously provisioned machines.
  std::size_t peak_machines = 0;
  /// Optional downsampled total power (W), see record_power_every.
  TimeSeries power_series;
  /// Optional structured event log, see record_events.
  EventLog events{1};

  [[nodiscard]] Joules total_energy() const {
    return compute_energy + reconfiguration_energy;
  }
  [[nodiscard]] std::vector<Joules> per_day_total() const;
};

/// Runs `scheduler` over `trace` on a cluster drawn from `candidates`.
class Simulator {
 public:
  Simulator(Catalog candidates, SimulatorOptions options = {});

  [[nodiscard]] SimulationResult run(Scheduler& scheduler,
                                     const LoadTrace& trace) const;

 private:
  Catalog candidates_;
  SimulatorOptions options_;
};

}  // namespace bml
