#include "sim/compiled_trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

CompiledTrace::CompiledTrace(const LoadTrace& trace)
    : size_(static_cast<TimePoint>(trace.size())) {
  if (trace.empty()) return;
  const TimeSeries& series = trace.series();
  const std::vector<std::size_t>& changes = trace.change_points();
  segments_.reserve(changes.size() + 1);
  segments_.push_back(Segment{0, series[0]});
  for (std::size_t c : changes)
    segments_.push_back(Segment{static_cast<TimePoint>(c), series[c]});
}

void CompiledTrace::throw_negative_time() {
  throw std::invalid_argument("CompiledTrace: negative time");
}

std::size_t CompiledTrace::segment_index(TimePoint t) const {
  // Last segment whose start is <= t.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](TimePoint lhs, const Segment& rhs) { return lhs < rhs.start; });
  return static_cast<std::size_t>(it - segments_.begin()) - 1;
}

ReqRate CompiledTrace::value_at(TimePoint t) const {
  if (t < 0) throw_negative_time();
  if (t >= size_) return 0.0;
  return segments_[segment_index(t)].value;
}

TimePoint CompiledTrace::next_change(TimePoint t) const {
  if (t < 0) throw_negative_time();
  if (t >= size_) return kNeverChanges;  // 0 forever
  return run_end(segment_index(t));
}

}  // namespace bml
