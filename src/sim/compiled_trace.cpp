#include "sim/compiled_trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

CompiledTrace::CompiledTrace(const LoadTrace& trace)
    : size_(static_cast<TimePoint>(trace.size())) {
  if (trace.empty()) return;
  if (trace.size() >= static_cast<std::size_t>(kEndSentinel))
    throw std::invalid_argument(
        "CompiledTrace: trace too long for packed 32-bit run ends");
  const TimeSeries& series = trace.series();
  const std::vector<std::size_t>& changes = trace.change_points();
  ends_.reserve(changes.size() + 1);
  values_.reserve(changes.size() + 1);
  values_.push_back(series[0]);
  for (std::size_t c : changes) {
    ends_.push_back(static_cast<std::uint32_t>(c));
    values_.push_back(series[c]);
  }
  // Tail rule, packed: beyond the end the trace serves the implicit 0,
  // which only counts as a change when the tail value is non-zero.
  ends_.push_back(values_.back() == 0.0 ? kEndSentinel
                                        : static_cast<std::uint32_t>(size_));
}

void CompiledTrace::throw_negative_time() {
  throw std::invalid_argument("CompiledTrace: negative time");
}

std::size_t CompiledTrace::segment_index(TimePoint t) const {
  // First segment whose end is > t (== last segment whose start is <= t,
  // since starts are the previous segment's ends).
  const auto it = std::upper_bound(ends_.begin(), ends_.end(),
                                   static_cast<std::uint32_t>(t));
  return static_cast<std::size_t>(it - ends_.begin());
}

ReqRate CompiledTrace::value_at(TimePoint t) const {
  if (t < 0) throw_negative_time();
  if (t >= size_) return 0.0;
  return values_[segment_index(t)];
}

TimePoint CompiledTrace::next_change(TimePoint t) const {
  if (t < 0) throw_negative_time();
  if (t >= size_) return kNeverChanges;  // 0 forever
  return run_end(segment_index(t));
}

}  // namespace bml
