#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/logging.hpp"

namespace bml {

std::vector<Joules> SimulationResult::per_day_total() const {
  std::vector<Joules> out(per_day_compute.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = per_day_compute[i];
    if (i < per_day_reconfiguration.size())
      out[i] += per_day_reconfiguration[i];
  }
  return out;
}

Simulator::Simulator(Catalog candidates, SimulatorOptions options)
    : candidates_(std::move(candidates)), options_(options) {
  if (candidates_.empty())
    throw std::invalid_argument("Simulator: empty candidate catalog");
  plan_ = std::make_shared<DispatchPlan>(candidates_);
}

Simulator::Simulator(Catalog candidates,
                     std::shared_ptr<const DispatchPlan> plan,
                     SimulatorOptions options)
    : candidates_(std::move(candidates)),
      plan_(std::move(plan)),
      options_(options) {
  if (candidates_.empty())
    throw std::invalid_argument("Simulator: empty candidate catalog");
  if (!plan_ || plan_->arch_kinds() != candidates_.size())
    throw std::invalid_argument("Simulator: plan does not match catalog");
}

SimulationResult Simulator::run(Scheduler& scheduler,
                                const LoadTrace& trace) const {
  // Event logs are inherently per-second artifacts; everything else goes
  // through the event-driven path.
  if (options_.event_driven && !options_.record_events)
    return run_event_driven(scheduler, trace);
  return run_per_second(scheduler, trace);
}

namespace {

/// Reconfiguration bookkeeping shared by both execution strategies; the
/// helpers below are the single copy of the decision and settle logic, so
/// the per-second reference and the event-driven fast path cannot drift
/// apart.
struct ReconfigState {
  Combination current_target;
  bool reconfiguring = false;
  TimePoint started = 0;
  std::vector<int> deferred_offs;
};

/// Mutable state of one simulation run, shared by both execution
/// strategies so that setup and result assembly exist exactly once.
struct Run {
  SimulationResult result;
  Cluster cluster;
  EnergyMeter meter{1.0};
  QosTracker qos;
  ReconfigState state;
  std::vector<double> power_samples;
  double bucket_max = 0.0;
  std::size_t bucket_fill = 0;
};

Run make_run(const Catalog& candidates, const SimulatorOptions& options,
             std::shared_ptr<const DispatchPlan> plan, Scheduler& scheduler,
             const LoadTrace& trace) {
  Combination initial = scheduler.initial_combination(trace);
  initial.resize(candidates.size());
  Run run{SimulationResult{},
          Cluster(candidates, initial, options.faults, std::move(plan))};
  run.result.scheduler_name = scheduler.name();
  run.state.current_target = std::move(initial);
  run.state.deferred_offs.assign(candidates.size(), 0);
  return run;
}

/// Flushes the trailing power bucket and copies the meters into the
/// result.
void finalize_run(Run& run, const SimulatorOptions& options) {
  if (options.record_power_every > 0 && run.bucket_fill > 0)
    run.power_samples.push_back(run.bucket_max);
  SimulationResult& r = run.result;
  r.compute_energy = run.meter.compute_energy();
  r.reconfiguration_energy = run.meter.reconfiguration_energy();
  r.per_day_compute = run.meter.per_day_compute();
  r.per_day_reconfiguration = run.meter.per_day_reconfiguration();
  r.qos = run.qos.stats();
  if (options.record_power_every > 0)
    r.power_series =
        TimeSeries(std::move(run.power_samples),
                   static_cast<Seconds>(options.record_power_every));
}

/// Applies the scheduler's decision at `now`: a target change switches
/// machines on (and off — deferred in graceful mode) and starts a
/// reconfiguration. `events` is null when event logging is off.
void apply_decision(std::optional<Combination> decision, TimePoint now,
                    const Catalog& candidates, bool graceful_off,
                    Cluster& cluster, ReconfigState& state,
                    SimulationResult& result, EventLog* events) {
  if (!decision.has_value()) return;
  decision->resize(candidates.size());
  if (*decision == state.current_target) return;

  const std::vector<int> d = delta(state.current_target, *decision);
  bool any_on = false;
  for (std::size_t a = 0; a < d.size(); ++a)
    if (d[a] > 0) {
      cluster.switch_on(a, d[a]);
      any_on = true;
    }
  for (std::size_t a = 0; a < d.size(); ++a)
    if (d[a] < 0) {
      // Graceful mode keeps surplus machines serving until the
      // replacements are up; otherwise they power down immediately.
      if (graceful_off && any_on)
        state.deferred_offs[a] += -d[a];
      else
        cluster.switch_off(a, -d[a]);
    }
  state.reconfiguring = true;
  state.started = now;
  ++result.reconfigurations;
  log_debug() << "t=" << now << " reconfigure -> "
              << to_string(candidates, *decision);
  if (events)
    events->record(now, EventKind::kReconfigurationStart,
                   to_string(candidates, *decision));
  state.current_target = *decision;
}

/// Post-step bookkeeping while a reconfiguration is in flight: once all
/// boots drained, issues the deferred switch-offs; once those drained too,
/// clears the flag (the next decision happens the following second).
void settle_reconfiguration(TimePoint now, Cluster& cluster,
                            ReconfigState& state, EventLog* events) {
  const ClusterSnapshot snap = cluster.snapshot();
  if (snap.booting.total_machines() != 0) return;
  bool issued = false;
  for (std::size_t a = 0; a < state.deferred_offs.size(); ++a)
    if (state.deferred_offs[a] > 0) {
      cluster.switch_off(a, state.deferred_offs[a]);
      state.deferred_offs[a] = 0;
      issued = true;
    }
  if (!issued && snap.shutting_down.total_machines() == 0) {
    state.reconfiguring = false;  // completed; next decision at t + 1
    if (events)
      events->record(now, EventKind::kReconfigurationComplete,
                     std::to_string(now - state.started + 1) + " s");
  }
}

}  // namespace

SimulationResult Simulator::run_per_second(Scheduler& scheduler,
                                           const LoadTrace& trace) const {
  Run run = make_run(candidates_, options_, plan_, scheduler, trace);
  EventLog events(options_.event_log_capacity);
  const bool log_events = options_.record_events;
  EventLog* events_ptr = log_events ? &events : nullptr;

  const std::size_t n = trace.size();
  for (std::size_t t = 0; t < n; ++t) {
    const auto now = static_cast<TimePoint>(t);

    if (!run.state.reconfiguring)
      apply_decision(scheduler.decide(now, trace, run.cluster.snapshot()),
                     now, candidates_, options_.graceful_off, run.cluster,
                     run.state, run.result, events_ptr);

    const ReqRate load = trace.at(now);
    const ClusterPower power = run.cluster.step_power(load);
    const ReqRate capacity_now = run.cluster.on_capacity();
    run.qos.record(load, capacity_now);
    if (log_events && load > capacity_now)
      events.record(now, EventKind::kQosViolation,
                    std::to_string(load - capacity_now));
    run.meter.add_compute_sample(power.compute);
    if (power.transition > 0.0)
      run.meter.add_reconfiguration_energy(power.transition * 1.0);
    run.meter.tick();
    if (run.state.reconfiguring) ++run.result.reconfiguring_seconds;

    const int completed = run.cluster.step(1.0);
    if (log_events && completed > 0)
      events.record(now, EventKind::kBootComplete,
                    std::to_string(completed) + " transitions");

    if (run.state.reconfiguring)
      settle_reconfiguration(now, run.cluster, run.state, events_ptr);

    run.result.peak_machines =
        std::max(run.result.peak_machines, run.cluster.machine_count());

    if (options_.record_power_every > 0) {
      run.bucket_max =
          std::max(run.bucket_max, power.compute + power.transition);
      if (++run.bucket_fill == options_.record_power_every) {
        run.power_samples.push_back(run.bucket_max);
        run.bucket_max = 0.0;
        run.bucket_fill = 0;
      }
    }
  }
  finalize_run(run, options_);
  if (log_events) run.result.events = std::move(events);
  return std::move(run.result);
}

SimulationResult Simulator::run_event_driven(Scheduler& scheduler,
                                             const LoadTrace& trace) const {
  Run run = make_run(candidates_, options_, plan_, scheduler, trace);

  const auto n = static_cast<TimePoint>(trace.size());
  TimePoint t = 0;
  while (t < n) {
    // 1. Scheduler decision, exactly as in the reference loop. While no
    //    reconfiguration is in flight the cluster state cannot change, so
    //    the scheduler's stability bound tells us how long the decision
    //    (and thus the fleet) stays as it is now.
    TimePoint stable_until = t + 1;
    if (!run.state.reconfiguring) {
      apply_decision(scheduler.decide(t, trace, run.cluster.snapshot()), t,
                     candidates_, options_.graceful_off, run.cluster,
                     run.state, run.result, nullptr);
      if (!run.state.reconfiguring)
        stable_until = scheduler.decision_stable_until(t, trace);
    }

    // 2. Find the next event boundary: scheduler decision change, machine
    //    transition completion (completions land at the end of second
    //    t + ceil(remaining) - 1), or trace value change. While a
    //    reconfiguration with no transitions left is draining (the one
    //    extra second before the flag clears), tick one second.
    TimePoint span_end;
    if (!run.state.reconfiguring) {
      span_end = stable_until;
    } else {
      const Seconds remaining = run.cluster.next_transition_remaining();
      span_end =
          remaining >= 0.0
              ? t + static_cast<TimePoint>(std::ceil(remaining - 1e-9))
              : t + 1;
    }
    span_end = std::min(span_end, trace.next_change(t));
    span_end = std::clamp(span_end, t + 1, n);
    const TimePoint span = span_end - t;

    // 3. Advance the span in closed form: constant fleet + constant load
    //    means constant power and constant QoS margin.
    const ReqRate load = trace.at(t);
    const ClusterPower power = run.cluster.step_power(load);
    run.qos.record_span(load, run.cluster.on_capacity(), span);
    run.meter.add_span(power.compute, power.transition,
                       static_cast<std::size_t>(span));
    if (run.state.reconfiguring) run.result.reconfiguring_seconds += span;

    if (options_.record_power_every > 0) {
      const double total = power.compute + power.transition;
      auto left = static_cast<std::size_t>(span);
      while (left > 0) {
        const std::size_t chunk =
            std::min(left, options_.record_power_every - run.bucket_fill);
        run.bucket_max = std::max(run.bucket_max, total);
        run.bucket_fill += chunk;
        left -= chunk;
        if (run.bucket_fill == options_.record_power_every) {
          run.power_samples.push_back(run.bucket_max);
          run.bucket_max = 0.0;
          run.bucket_fill = 0;
        }
      }
    }

    // 4. Machine transitions progress; completions land exactly at the
    //    end of the span (Cluster::step is exact for multi-second steps).
    if (run.cluster.transitioning())
      run.cluster.step(static_cast<Seconds>(span));

    if (run.state.reconfiguring)
      settle_reconfiguration(span_end - 1, run.cluster, run.state, nullptr);

    run.result.peak_machines =
        std::max(run.result.peak_machines, run.cluster.machine_count());
    t = span_end;
  }
  finalize_run(run, options_);
  return std::move(run.result);
}

}  // namespace bml
