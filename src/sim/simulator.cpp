#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace bml {

std::vector<Joules> SimulationResult::per_day_total() const {
  std::vector<Joules> out(per_day_compute.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = per_day_compute[i];
    if (i < per_day_reconfiguration.size())
      out[i] += per_day_reconfiguration[i];
  }
  return out;
}

Simulator::Simulator(Catalog candidates, SimulatorOptions options)
    : candidates_(std::move(candidates)), options_(options) {
  if (candidates_.empty())
    throw std::invalid_argument("Simulator: empty candidate catalog");
}

SimulationResult Simulator::run(Scheduler& scheduler,
                                const LoadTrace& trace) const {
  SimulationResult result;
  result.scheduler_name = scheduler.name();

  Combination initial = scheduler.initial_combination(trace);
  initial.resize(candidates_.size());
  Cluster cluster(candidates_, initial, options_.faults);
  EnergyMeter meter(1.0);
  QosTracker qos;

  Combination current_target = initial;
  bool reconfiguring = false;
  TimePoint reconfig_started = 0;
  std::vector<int> deferred_offs(candidates_.size(), 0);
  EventLog events(options_.event_log_capacity);
  const bool log_events = options_.record_events;

  std::vector<double> power_samples;
  double bucket_max = 0.0;
  std::size_t bucket_fill = 0;

  const std::size_t n = trace.size();
  for (std::size_t t = 0; t < n; ++t) {
    const auto now = static_cast<TimePoint>(t);

    if (!reconfiguring) {
      std::optional<Combination> decision =
          scheduler.decide(now, trace, cluster.snapshot());
      if (decision.has_value()) {
        decision->resize(candidates_.size());
        if (*decision != current_target) {
          const std::vector<int> d = delta(current_target, *decision);
          bool any_on = false;
          for (std::size_t a = 0; a < d.size(); ++a)
            if (d[a] > 0) {
              cluster.switch_on(a, d[a]);
              any_on = true;
            }
          for (std::size_t a = 0; a < d.size(); ++a)
            if (d[a] < 0) {
              // Graceful mode keeps surplus machines serving until the
              // replacements are up; otherwise they power down immediately.
              if (options_.graceful_off && any_on)
                deferred_offs[a] += -d[a];
              else
                cluster.switch_off(a, -d[a]);
            }
          reconfiguring = true;
          reconfig_started = now;
          ++result.reconfigurations;
          log_debug() << "t=" << now << " reconfigure -> "
                      << to_string(candidates_, *decision);
          if (log_events)
            events.record(now, EventKind::kReconfigurationStart,
                          to_string(candidates_, *decision));
          current_target = *decision;
        }
      }
    }

    const ReqRate load = trace.at(now);
    const ClusterPower power = cluster.step_power(load);
    const ReqRate capacity_now = cluster.on_capacity();
    qos.record(load, capacity_now);
    if (log_events && load > capacity_now)
      events.record(now, EventKind::kQosViolation,
                    std::to_string(load - capacity_now));
    meter.add_compute_sample(power.compute);
    if (power.transition > 0.0)
      meter.add_reconfiguration_energy(power.transition * 1.0);
    meter.tick();
    if (reconfiguring) ++result.reconfiguring_seconds;

    const int completed = cluster.step(1.0);
    if (log_events && completed > 0)
      events.record(now, EventKind::kBootComplete,
                    std::to_string(completed) + " transitions");

    if (reconfiguring) {
      const ClusterSnapshot snap = cluster.snapshot();
      if (snap.booting.total_machines() == 0) {
        bool issued = false;
        for (std::size_t a = 0; a < deferred_offs.size(); ++a)
          if (deferred_offs[a] > 0) {
            cluster.switch_off(a, deferred_offs[a]);
            deferred_offs[a] = 0;
            issued = true;
          }
        if (!issued && snap.shutting_down.total_machines() == 0) {
          reconfiguring = false;  // completed; next decision at t + 1
          if (log_events)
            events.record(now, EventKind::kReconfigurationComplete,
                          std::to_string(now - reconfig_started + 1) + " s");
        }
      }
    }

    result.peak_machines =
        std::max(result.peak_machines, cluster.machine_count());

    if (options_.record_power_every > 0) {
      bucket_max = std::max(bucket_max, power.compute + power.transition);
      if (++bucket_fill == options_.record_power_every) {
        power_samples.push_back(bucket_max);
        bucket_max = 0.0;
        bucket_fill = 0;
      }
    }
  }
  if (options_.record_power_every > 0 && bucket_fill > 0)
    power_samples.push_back(bucket_max);

  result.compute_energy = meter.compute_energy();
  result.reconfiguration_energy = meter.reconfiguration_energy();
  result.per_day_compute = meter.per_day_compute();
  result.per_day_reconfiguration = meter.per_day_reconfiguration();
  result.qos = qos.stats();
  if (options_.record_power_every > 0)
    result.power_series = TimeSeries(
        std::move(power_samples),
        static_cast<Seconds>(options_.record_power_every));
  if (log_events) result.events = std::move(events);
  return result;
}

}  // namespace bml
