#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

#include "sim/fault_timeline.hpp"
#include "util/logging.hpp"

namespace bml {

std::vector<Joules> SimulationResult::per_day_total() const {
  std::vector<Joules> out(per_day_compute.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = per_day_compute[i];
    if (i < per_day_reconfiguration.size())
      out[i] += per_day_reconfiguration[i];
  }
  return out;
}

Simulator::Simulator(Catalog candidates, SimulatorOptions options)
    : candidates_(std::move(candidates)), options_(options) {
  if (candidates_.empty())
    throw std::invalid_argument("Simulator: empty candidate catalog");
  plan_ = std::make_shared<DispatchPlan>(candidates_);
}

Simulator::Simulator(Catalog candidates,
                     std::shared_ptr<const DispatchPlan> plan,
                     SimulatorOptions options)
    : candidates_(std::move(candidates)),
      plan_(std::move(plan)),
      options_(options) {
  if (candidates_.empty())
    throw std::invalid_argument("Simulator: empty candidate catalog");
  if (!plan_ || plan_->arch_kinds() != candidates_.size())
    throw std::invalid_argument("Simulator: plan does not match catalog");
}

SimulationResult Simulator::run(Scheduler& scheduler,
                                const LoadTrace& trace) const {
  static const std::string kSingleAppName = "app";
  const std::vector<WorkloadView> views{WorkloadView{
      &kSingleAppName, &trace, &scheduler, QosClass::kTolerant, 1.0}};
  MultiSimulationResult multi = run_views(views);
  return std::move(multi.total);
}

MultiSimulationResult Simulator::run(std::vector<Workload>& workloads) const {
  if (workloads.empty())
    throw std::invalid_argument("Simulator: no workloads");
  std::vector<WorkloadView> views;
  views.reserve(workloads.size());
  for (Workload& w : workloads) {
    if (!w.scheduler)
      throw std::invalid_argument("Simulator: workload '" + w.name +
                                  "' has no scheduler");
    WorkloadView v{&w.name, &w.trace, w.scheduler.get(), w.qos,
                   w.share,  nullptr,  &w.fault_domain};
    v.slo_availability = w.slo_availability;
    v.slo_spare = w.slo_spare;
    v.priority = w.priority;
    v.arrive = w.arrive;
    v.depart = w.depart;
    views.push_back(v);
  }
  return run_views(views);
}

MultiSimulationResult Simulator::run(
    const std::vector<WorkloadView>& views) const {
  if (views.empty()) throw std::invalid_argument("Simulator: no workloads");
  for (const WorkloadView& v : views)
    if (!v.name || !v.trace || !v.scheduler)
      throw std::invalid_argument("Simulator: null workload view field");
  return run_views(views);
}

MultiSimulationResult Simulator::run_views(
    const std::vector<WorkloadView>& views) const {
  // Event logs and timeline recordings are inherently per-second
  // artifacts; everything else goes through the event-driven path.
  if (options_.event_driven && !options_.record_events &&
      !options_.record_timeline)
    return run_event_driven(views);
  return run_per_second(views);
}

namespace {

/// App count at which the event-driven path switches into fleet mode:
/// scheduler consults are cached across spans (skipping decide() while a
/// cached decision_stable_until is in the future). The threshold keeps the
/// small-k paths — which every existing example spec exercises — on the
/// exact consult cadence of the per-second reference, so their outputs
/// stay bit-for-bit unchanged; fleet mode trades extra span boundaries
/// (cached bounds are conservative) for O(changed apps) consult work,
/// staying inside the 1e-9 equivalence contract.
constexpr std::size_t kFleetModeApps = 4;

/// Reconfiguration bookkeeping shared by both execution strategies; the
/// helpers below are the single copy of the decision and settle logic, so
/// the per-second reference and the event-driven fast path cannot drift
/// apart.
struct ReconfigState {
  Combination current_target;
  bool reconfiguring = false;
  TimePoint started = 0;
  std::vector<int> deferred_offs;
};

/// Runtime-fault state of one run: the event timeline plus per-domain
/// bookkeeping. Present only when FaultModel::runtime_active(). All of it
/// is driven by the shared apply/account helpers, so the per-second
/// reference and the event-driven fast path see the exact same failure
/// history.
struct FaultRun {
  FaultTimeline timeline;
  /// Workload index -> fault-domain index (views sharing a
  /// WorkloadView::fault_domain name share an index; unnamed views get
  /// private domains).
  std::vector<std::size_t> domain_of;
  std::size_t domains = 0;
  /// Currently failed machines per [domain][arch], and integer per-domain
  /// / cluster totals — downtime gating keys off these counts, never off
  /// the capacity doubles (whose incremental sums can retain a rounding
  /// residue after every machine is repaired).
  std::vector<std::vector<int>> failed;
  std::vector<int> failed_machines;
  int total_failed_machines = 0;
  /// Serving capacity currently down per domain (req/s) and its total;
  /// snapped back to exactly 0 whenever the matching count reaches 0.
  std::vector<ReqRate> failed_capacity;
  ReqRate total_failed_capacity = 0.0;
  /// Accounting integrals, per domain and cluster-wide (the cluster-wide
  /// downtime is the union over domains, not the sum).
  std::vector<TimePoint> unavailable_seconds;
  std::vector<double> lost_capacity;
  std::vector<int> failures;
  TimePoint total_unavailable = 0;
  double total_lost = 0.0;
  int total_failures = 0;
  /// Correlated-strike topology: racks per domain (0 = channel off) and
  /// the count of rack strikes that felled at least one machine.
  int groups = 0;
  int group_strikes = 0;
  /// Per-domain outage history for the SLO trailing windows: closed
  /// intervals [start, end) of past whole-domain downtime (pruned once
  /// they leave every window), plus the start of the running outage (-1
  /// while the domain is fully up). "Down" means >= 1 machine failed —
  /// the same predicate unavailable_seconds integrates.
  struct Outage {
    TimePoint start;
    TimePoint end;
  };
  std::vector<std::vector<Outage>> outages;
  std::vector<TimePoint> down_since;
  /// Degraded-mode accounting per domain (sized only when the degrade
  /// model is enabled): seconds the cluster ran overloaded while any of
  /// the domain's apps offered load, and the domain's apps' summed share
  /// of penalty-lost capacity (req·s).
  std::vector<std::int64_t> overload_seconds;
  std::vector<double> penalty_lost;
};

/// Mutable state of one simulation run, shared by both execution
/// strategies so that setup and result assembly exist exactly once. The
/// per-app vectors are parallel to the workload views.
struct Run {
  Run(Cluster cluster_in, Coordinator coordinator_in)
      : cluster(std::move(cluster_in)),
        coordinator(std::move(coordinator_in)) {}

  SimulationResult result;
  Cluster cluster;
  Coordinator coordinator;
  EnergyMeter meter{1.0};
  QosTracker qos;
  ReconfigState state;
  /// Last proposal returned by each app's scheduler (its initial
  /// combination until the first real decision).
  std::vector<Combination> proposals;
  /// Post-clamp slice of the current cluster target attributed to each
  /// app (see Coordinator::merge).
  std::vector<Combination> contributions;
  std::vector<Combination> contributions_scratch;
  /// Reconfiguration-power attribution weights, derived from the
  /// contributions' capacities (equal split when all are empty).
  std::vector<double> transition_shares;
  std::vector<EnergyMeter> app_meters;
  std::vector<QosTracker> app_qos;
  /// Scratch: per-app offered load / capacity allocation this span.
  std::vector<ReqRate> loads;
  std::vector<ReqRate> alloc;
  /// Scratch for the event-driven path: the constant-value sub-runs of the
  /// current span (one row per trace segment — load for the QoS kernel,
  /// compute power for the energy kernel), and the On fleet's compiled
  /// power curve (fixed within a span).
  struct SegmentRun {
    ReqRate load;
    Watts compute;
    TimePoint seconds;
    /// Effective serving capacity of this sub-run (degraded-mode spans
    /// only — QosTracker::record_runs_var keys off it; otherwise unused).
    ReqRate cap;
  };
  std::vector<SegmentRun> span_runs;
  /// Fused k-way merge frontier (multi-app fast path): each app's current
  /// run end, parallel to `loads` (which doubles as the frontier's value
  /// array inside advance_span).
  std::vector<TimePoint> run_ends;
  /// Decision-point snapshot buffer: refreshed via Cluster::snapshot_into
  /// so fleet-scale runs do not allocate four vectors per consult.
  ClusterSnapshot snap;
  /// Fleet-mode consult cache (event-driven path, >= kFleetModeApps apps):
  /// each app's cached decision_stable_until; entries <= now force a real
  /// decide(). Invalidated wholesale whenever the cluster changes
  /// underneath the schedulers (reconfigurations, transition completions,
  /// fault events) — the Scheduler::decision_stable_until contract only
  /// holds while the cluster is untouched.
  std::vector<TimePoint> consult_until;
  bool fleet_mode = false;
  FleetPowerCurve power_curve;
  std::vector<double> power_samples;
  double bucket_max = 0.0;
  std::size_t bucket_fill = 0;
  /// Runtime crash/repair state; disengaged unless the fault model's
  /// runtime channel is active.
  std::optional<FaultRun> faults;
  /// SLO feedback state (any view with slo_availability > 0). The spare
  /// flags are a pure function of the outage history — flag i is set iff
  /// the app's domain's trailing-window downtime exceeds its error budget
  /// — evaluated at consult time; `spares` / `spare_flags` hold what the
  /// last merge actually provisioned, so accrual and attribution only
  /// change at merge instants (identical in both execution strategies).
  bool slo_enabled = false;
  TimePoint slo_window = 0;
  /// Per-app error budget (1 - target) * window in seconds; -1 = no SLO.
  std::vector<double> slo_budget;
  std::vector<Combination> spares;
  std::vector<char> spare_flags;
  std::vector<char> flags_scratch;
  /// Idle power of each app's provisioned spares (W), refreshed at merge.
  std::vector<Watts> spare_power;
  std::vector<Joules> app_spare_energy;
  std::vector<std::int64_t> app_spare_seconds;
  Joules total_spare_energy = 0.0;
  std::int64_t total_spare_seconds = 0;
  /// Which spares the last merge actually provisioned, post priority
  /// ordering (high-priority-first withholding); parallel to `spares`.
  std::vector<char> spare_granted;
  /// Degraded-mode serving (options.degrade.enabled()): the model plus
  /// the overload accounting — cluster-wide, per app, and (in FaultRun)
  /// per domain. The integrands only change at sub-run boundaries, and
  /// overload entry/exit crossings bound fast-path spans, so both
  /// execution strategies integrate the exact same piecewise signal.
  DegradeModel degrade;
  std::int64_t overload_seconds = 0;
  double penalty_lost = 0.0;
  std::vector<std::int64_t> app_overload_seconds;
  std::vector<double> app_penalty_lost;
  /// Scratch: per-domain "accrued this sub-run" flags for the overload
  /// accounting (sized with the fault domains).
  std::vector<char> domain_hit;
  /// Per-second path only: last second's overload state, for the
  /// enter/exit events.
  bool overloaded_now = false;
  /// Priority/preemption state (any two view priorities differ): victim
  /// order for the preemption pass (ascending priority, descending
  /// index — matches the coordinator's trim order), the machines
  /// currently preempted away from each app (recomputed at every fault
  /// batch, cleared at every consult merge), and the per-app
  /// preempted-seconds integrals.
  bool priority_enabled = false;
  std::vector<std::size_t> victim_order;
  std::vector<Combination> preempted;
  std::vector<Combination> preempted_scratch;
  std::vector<std::int64_t> app_preempted_seconds;
  /// Tenant-lifecycle state (any view with arrive > 0 or depart >= 0):
  /// the current active mask, the pre-sorted arrival/departure timeline
  /// (consumed front to back — events bound fast-path spans exactly like
  /// faults, so the active set is constant inside one), and the per-app
  /// active-seconds integrals. `lifecycle_dirty` forces a merge at the
  /// next consult so churn re-partitions capacity through the normal
  /// decision path; fixed-tenant runs leave all of this disengaged.
  bool lifecycle_enabled = false;
  std::vector<char> active;
  std::size_t active_count = 0;
  struct LifecycleEvent {
    TimePoint time;
    std::size_t app;
    bool departure;
  };
  std::vector<LifecycleEvent> lifecycle_events;
  std::size_t next_lifecycle = 0;
  bool lifecycle_dirty = false;
  std::vector<std::int64_t> app_active_seconds;
};

using WorkloadView = Simulator::WorkloadView;

void update_transition_shares(const Catalog& candidates, Run& run) {
  double total = 0.0;
  for (const Combination& c : run.contributions)
    total += capacity(candidates, c);
  if (run.lifecycle_enabled && total <= 0.0) {
    // Equal split makes no sense over departed tenants: spread the
    // (attribution-only) weight over the active set instead.
    for (std::size_t i = 0; i < run.contributions.size(); ++i)
      run.transition_shares[i] =
          run.active[i] && run.active_count > 0
              ? 1.0 / static_cast<double>(run.active_count)
              : 0.0;
    return;
  }
  const auto n = static_cast<double>(run.contributions.size());
  for (std::size_t i = 0; i < run.contributions.size(); ++i)
    run.transition_shares[i] =
        total > 0.0 ? capacity(candidates, run.contributions[i]) / total
                    : 1.0 / n;
}

/// Trailing-window downtime of domain `d` over [t - window, t), assuming
/// the current up/down state persists — exact inside a span, where fault
/// events cannot land.
TimePoint window_unavailable(const FaultRun& fr, std::size_t d, TimePoint t,
                             TimePoint window) {
  const TimePoint lo = t - window;
  TimePoint total = 0;
  for (const FaultRun::Outage& o : fr.outages[d]) {
    const TimePoint start = o.start > lo ? o.start : lo;
    if (o.end > start) total += o.end - start;
  }
  if (fr.down_since[d] >= 0) {
    const TimePoint start = fr.down_since[d] > lo ? fr.down_since[d] : lo;
    if (t > start) total += t - start;
  }
  return total;
}

/// Evaluates every SLO app's spare flag at `t` — set iff the app's
/// domain's trailing-window downtime exceeds its error budget. A pure
/// function of the outage history, so both execution strategies get
/// identical flags from identical timelines. Prunes outage intervals that
/// have left every window (pruned intervals contribute 0, so pruning
/// cadence cannot affect results). Fault-free runs keep all flags clear.
void current_spare_flags(Run& run, TimePoint t, std::vector<char>& flags) {
  flags.assign(run.slo_budget.size(), 0);
  if (!run.faults.has_value()) return;
  FaultRun& fr = *run.faults;
  const TimePoint lo = t - run.slo_window;
  for (std::vector<FaultRun::Outage>& history : fr.outages) {
    std::size_t drop = 0;
    while (drop < history.size() && history[drop].end <= lo) ++drop;
    if (drop > 0)
      history.erase(history.begin(),
                    history.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  for (std::size_t i = 0; i < run.slo_budget.size(); ++i) {
    if (run.slo_budget[i] < 0.0) continue;
    // A departed (or not-yet-arrived) tenant's flag is pinned clear: no
    // spares are held for apps that are not serving.
    if (run.lifecycle_enabled && !run.active[i]) continue;
    const std::size_t d = fr.domain_of[i];
    flags[i] = static_cast<double>(window_unavailable(
                   fr, d, t, run.slo_window)) > run.slo_budget[i];
  }
}

/// Earliest second in (t, limit] where some SLO app's spare flag would
/// differ from its value at `t`, assuming the failure set stays fixed
/// (the caller already bounds `limit` by the next fault event). The
/// window downtime is monotone while the up/down state is fixed —
/// non-decreasing while down, non-increasing while up — so each budget
/// crosses at most once inside the span and exact binary search finds it.
TimePoint next_slo_crossing(const Run& run, TimePoint t, TimePoint limit) {
  const FaultRun& fr = *run.faults;
  TimePoint bound = limit;
  for (std::size_t i = 0; i < run.slo_budget.size(); ++i) {
    const double budget = run.slo_budget[i];
    if (budget < 0.0) continue;
    // Inactive tenants' flags are pinned clear, so they cannot cross.
    if (run.lifecycle_enabled && !run.active[i]) continue;
    const std::size_t d = fr.domain_of[i];
    // A clean window stays clean: no downtime can enter it inside a span.
    if (fr.down_since[d] < 0 && fr.outages[d].empty()) continue;
    const auto over_at = [&](TimePoint s) {
      return static_cast<double>(
                 window_unavailable(fr, d, s, run.slo_window)) > budget;
    };
    const bool over = over_at(t);
    if (over_at(bound) == over) continue;
    TimePoint lo = t;
    TimePoint hi = bound;
    while (hi - lo > 1) {
      const TimePoint mid = lo + (hi - lo) / 2;
      if (over_at(mid) == over)
        lo = mid;
      else
        hi = mid;
    }
    bound = hi;
  }
  return bound;
}

/// Per-arch ceil(fraction * count) headroom of `proposal` — the spare
/// capacity provisioned while the app's SLO is violated.
void spare_of(const Combination& proposal, double fraction, std::size_t kinds,
              Combination& out) {
  out = Combination{};
  out.resize(kinds);
  for (std::size_t a = 0; a < kinds; ++a) {
    const int n = proposal.count(a);
    if (n > 0)
      out.add(a, static_cast<int>(
                     std::ceil(static_cast<double>(n) * fraction)));
  }
}

Watts idle_power_of(const Catalog& candidates, const Combination& c) {
  Watts w = 0.0;
  for (std::size_t a = 0; a < candidates.size(); ++a)
    w += candidates[a].idle_power() * c.count(a);
  return w;
}

/// The coordinator merge both decision sites share: the proposals plus
/// the currently provisioned SLO spares (none when the loop is off).
Combination merge_current(Run& run) {
  return run.slo_enabled
             ? run.coordinator.merge(run.proposals, run.spares,
                                     run.contributions_scratch)
             : run.coordinator.merge(run.proposals, run.contributions_scratch);
}

/// Accrues the provisioned spares' idle energy and active seconds over a
/// span. The spare set only changes at merge instants — span starts in
/// both strategies — so the accrual integrand is constant inside one.
void account_spare_span(Run& run, TimePoint span) {
  bool any = false;
  for (std::size_t i = 0; i < run.spares.size(); ++i) {
    if (run.spares[i].total_machines() == 0) continue;
    any = true;
    const Joules e = run.spare_power[i] * static_cast<double>(span);
    run.app_spare_seconds[i] += span;
    run.app_spare_energy[i] += e;
    run.total_spare_energy += e;
  }
  if (any) run.total_spare_seconds += span;
}

/// Serving state of one constant-load slice under the degrade model:
/// spill-over above rated capacity is absorbed up to
/// `overload_factor * capacity`, each absorbed req/s serving only
/// (1 - penalty) effectively; spill beyond the absorption limit is simply
/// unserved. Power is untouched — the fleet curve already saturates at
/// rated capacity, so the contention penalty is capacity-side only.
struct DegradedCap {
  ReqRate effective;  // capacity QoS is scored against
  ReqRate lost_rate;  // capacity lost to the contention penalty, req/s
  bool overloaded;    // offered load exceeded rated capacity
};

DegradedCap degraded_capacity(const DegradeModel& model, ReqRate load,
                              ReqRate capacity) {
  if (!(load > capacity)) return DegradedCap{capacity, 0.0, false};
  const ReqRate over = load - capacity;
  const ReqRate limit = capacity * model.overload_factor;
  const ReqRate absorbed = over < limit ? over : limit;
  return DegradedCap{capacity + absorbed * (1.0 - model.penalty),
                     absorbed * model.penalty, true};
}

/// Accrues the overload accounting over `span` seconds of a slice with
/// constant loads, called only while the cluster is overloaded (so
/// total_load > 0): cluster-wide, per app offering load (penalty loss
/// split load-proportionally), and per fault domain — a domain accrues
/// overload seconds while any of its apps offers load. The integrand is
/// constant inside a slice, so both execution strategies integrate the
/// same piecewise signal.
void account_overload(const std::vector<WorkloadView>& views, Run& run,
                      ReqRate total_load, ReqRate lost_rate, TimePoint span) {
  const auto seconds = static_cast<double>(span);
  run.overload_seconds += span;
  run.penalty_lost += lost_rate * seconds;
  FaultRun* fr = run.faults.has_value() ? &*run.faults : nullptr;
  if (fr) std::fill(run.domain_hit.begin(), run.domain_hit.end(), 0);
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (!(run.loads[i] > 0.0)) continue;
    run.app_overload_seconds[i] += span;
    const double lost = lost_rate * seconds * (run.loads[i] / total_load);
    run.app_penalty_lost[i] += lost;
    if (fr) {
      const std::size_t d = fr->domain_of[i];
      if (!run.domain_hit[d]) {
        run.domain_hit[d] = 1;
        fr->overload_seconds[d] += span;
      }
      fr->penalty_lost[d] += lost;
    }
  }
}

/// Accrues preempted-seconds over a span: an app accrues while at least
/// one of its provisioned machines is preempted away. The preempted set
/// only changes at fault batches and consult merges — span starts in both
/// strategies — so the integrand is constant inside one.
void account_preemption_span(Run& run, TimePoint span) {
  for (std::size_t i = 0; i < run.preempted.size(); ++i)
    if (run.preempted[i].total_machines() > 0)
      run.app_preempted_seconds[i] += span;
}

/// Applies every tenant arrival / departure due at `now` (shared verbatim
/// by both execution strategies — churn events bound fast-path spans, so
/// the active set is constant inside one). An arrival re-seeds the app's
/// proposal from its scheduler's initial combination; a departure clears
/// it. Either way the coordinator re-partitions its capacity shares over
/// the new active set and `lifecycle_dirty` forces a merge at the next
/// consult — departures release their machines through the normal
/// (graceful) transition path, never by teleporting fleet state.
bool apply_lifecycle_events(const std::vector<WorkloadView>& views,
                            TimePoint now, const Catalog& candidates,
                            Run& run, EventLog* events) {
  bool changed = false;
  while (run.next_lifecycle < run.lifecycle_events.size() &&
         run.lifecycle_events[run.next_lifecycle].time <= now) {
    const Run::LifecycleEvent e = run.lifecycle_events[run.next_lifecycle];
    ++run.next_lifecycle;
    const std::size_t i = e.app;
    if (e.departure) {
      if (!run.active[i]) continue;
      run.active[i] = 0;
      --run.active_count;
      run.proposals[i] = Combination{};
      run.proposals[i].resize(candidates.size());
      ++run.result.departures;
      changed = true;
      if (events)
        events->record(now, EventKind::kAppDeparture, *views[i].name);
    } else {
      if (run.active[i]) continue;
      run.active[i] = 1;
      ++run.active_count;
      Combination c = views[i].scheduler->initial_combination(*views[i].trace);
      c.resize(candidates.size());
      run.proposals[i] = std::move(c);
      // Force a real consult for the newcomer at the next decision point.
      if (run.fleet_mode) run.consult_until[i] = -1;
      ++run.result.arrivals;
      changed = true;
      if (events)
        events->record(now, EventKind::kAppArrival, *views[i].name);
    }
  }
  if (changed) {
    run.coordinator.set_active(run.active);
    run.lifecycle_dirty = true;
    if (run.result.metrics.enabled &&
        static_cast<std::uint64_t>(run.active_count) >
            run.result.metrics.apps_active_max)
      run.result.metrics.apps_active_max = run.active_count;
  }
  return changed;
}

/// Integrates per-tenant active seconds over a span whose active set is
/// constant (1 s in the reference loop; a whole span on the fast path).
void account_lifecycle_span(Run& run, TimePoint span) {
  for (std::size_t i = 0; i < run.active.size(); ++i)
    if (run.active[i]) run.app_active_seconds[i] += span;
}

Run make_run(const Catalog& candidates, const SimulatorOptions& options,
             std::shared_ptr<const DispatchPlan> plan,
             const std::vector<WorkloadView>& views) {
  const std::size_t kinds = candidates.size();
  std::vector<double> shares;
  std::vector<int> priorities;
  shares.reserve(views.size());
  priorities.reserve(views.size());
  bool lifecycle = false;
  for (const WorkloadView& v : views) {
    shares.push_back(v.share);
    if (v.priority < 0)
      throw std::invalid_argument("Simulator: priority must be >= 0");
    priorities.push_back(v.priority);
    if (v.arrive < 0)
      throw std::invalid_argument("Simulator: arrive must be >= 0");
    if (v.depart >= 0 && v.depart <= v.arrive)
      throw std::invalid_argument("Simulator: depart must be > arrive");
    if (v.arrive > 0 || v.depart >= 0) lifecycle = true;
  }
  Coordinator coordinator(candidates, options.coordinator, std::move(shares),
                          options.coordinator_budget, priorities);
  std::vector<char> active;
  if (lifecycle) {
    active.assign(views.size(), 1);
    for (std::size_t i = 0; i < views.size(); ++i)
      if (views[i].arrive > 0) active[i] = 0;
    coordinator.set_active(active);
  }

  std::vector<Combination> proposals;
  proposals.reserve(views.size());
  for (const WorkloadView& v : views) {
    // A tenant that has not arrived yet proposes nothing: the initial
    // fleet is sized for the apps serving at t = 0 only.
    Combination c;
    if (v.arrive <= 0) c = v.scheduler->initial_combination(*v.trace);
    c.resize(kinds);
    proposals.push_back(std::move(c));
  }
  std::vector<Combination> contributions;
  Combination initial = coordinator.merge(proposals, contributions);

  Run run(Cluster(candidates, initial, options.faults, std::move(plan)),
          std::move(coordinator));
  std::string joined;
  for (const WorkloadView& v : views) {
    if (!joined.empty()) joined += '+';
    joined += v.scheduler->name();
  }
  run.result.scheduler_name = std::move(joined);
  run.state.current_target = std::move(initial);
  run.state.deferred_offs.assign(kinds, 0);
  run.proposals = std::move(proposals);
  run.contributions = std::move(contributions);
  run.lifecycle_enabled = lifecycle;
  run.active_count = views.size();
  if (lifecycle) {
    run.active = std::move(active);
    run.active_count = 0;
    for (const char a : run.active)
      if (a) ++run.active_count;
    run.app_active_seconds.assign(views.size(), 0);
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (views[i].arrive > 0)
        run.lifecycle_events.push_back(
            Run::LifecycleEvent{views[i].arrive, i, false});
      if (views[i].depart >= 0)
        run.lifecycle_events.push_back(
            Run::LifecycleEvent{views[i].depart, i, true});
    }
    // Deterministic timeline: by time, arrivals before departures, by app
    // index within a kind — all events at one instant land in one batch
    // before any merge, so the order only shapes the event log.
    std::sort(run.lifecycle_events.begin(), run.lifecycle_events.end(),
              [](const Run::LifecycleEvent& a, const Run::LifecycleEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.departure != b.departure) return !a.departure;
                return a.app < b.app;
              });
  }
  run.transition_shares.assign(views.size(), 0.0);
  update_transition_shares(candidates, run);
  run.app_meters.assign(views.size(), EnergyMeter(1.0));
  run.app_qos.resize(views.size());
  run.loads.assign(views.size(), 0.0);
  run.alloc.assign(views.size(), 0.0);
  run.run_ends.assign(views.size(), 0);
  run.fleet_mode = views.size() >= kFleetModeApps;
  run.consult_until.assign(views.size(), -1);
  run.slo_budget.assign(views.size(), -1.0);
  for (std::size_t i = 0; i < views.size(); ++i) {
    const double target = views[i].slo_availability;
    if (target < 0.0 || target > 1.0)
      throw std::invalid_argument(
          "Simulator: slo_availability must be in [0, 1]");
    if (target <= 0.0) continue;
    if (!(views[i].slo_spare > 0.0))
      throw std::invalid_argument("Simulator: slo_spare must be > 0");
    if (!(options.slo_window >= 1.0))
      throw std::invalid_argument("Simulator: slo_window must be >= 1");
    run.slo_enabled = true;
    run.slo_window = static_cast<TimePoint>(std::llround(options.slo_window));
    run.slo_budget[i] =
        (1.0 - target) * static_cast<double>(run.slo_window);
  }
  if (run.slo_enabled) {
    run.spares.assign(views.size(), Combination{});
    for (Combination& c : run.spares) c.resize(kinds);
    run.spare_flags.assign(views.size(), 0);
    run.flags_scratch.assign(views.size(), 0);
    run.spare_power.assign(views.size(), 0.0);
    run.app_spare_energy.assign(views.size(), 0.0);
    run.app_spare_seconds.assign(views.size(), 0);
    run.spare_granted.assign(views.size(), 0);
  }
  run.degrade = options.degrade;
  if (!std::isfinite(run.degrade.overload_factor) ||
      run.degrade.overload_factor < 0.0)
    throw std::invalid_argument(
        "Simulator: degrade.overload_factor must be >= 0");
  if (!(run.degrade.penalty >= 0.0 && run.degrade.penalty <= 1.0))
    throw std::invalid_argument("Simulator: degrade.penalty must be in [0, 1]");
  if (run.degrade.enabled()) {
    run.app_overload_seconds.assign(views.size(), 0);
    run.app_penalty_lost.assign(views.size(), 0.0);
  }
  for (std::size_t i = 1; i < views.size(); ++i)
    if (views[i].priority != views[0].priority) {
      run.priority_enabled = true;
      break;
    }
  if (run.priority_enabled) {
    run.victim_order.resize(views.size());
    std::iota(run.victim_order.begin(), run.victim_order.end(),
              std::size_t{0});
    std::stable_sort(run.victim_order.begin(), run.victim_order.end(),
                     [&views](std::size_t a, std::size_t b) {
                       if (views[a].priority != views[b].priority)
                         return views[a].priority < views[b].priority;
                       return a > b;
                     });
    run.preempted.assign(views.size(), Combination{});
    for (Combination& c : run.preempted) c.resize(kinds);
    run.preempted_scratch = run.preempted;
    run.app_preempted_seconds.assign(views.size(), 0);
  }
  if (options.faults.runtime_active()) {
    FaultRun faults;
    // Map views to fault domains: same non-empty name = shared domain,
    // first-appearance order; unnamed views fail independently.
    std::map<std::string, std::size_t> named;
    faults.domain_of.reserve(views.size());
    for (const WorkloadView& v : views) {
      if (v.fault_domain == nullptr || v.fault_domain->empty()) {
        faults.domain_of.push_back(faults.domains++);
      } else {
        const auto [it, inserted] =
            named.try_emplace(*v.fault_domain, faults.domains);
        if (inserted) ++faults.domains;
        faults.domain_of.push_back(it->second);
      }
    }
    faults.timeline =
        FaultTimeline(options.faults, kinds, faults.domains);
    faults.failed.assign(faults.domains, std::vector<int>(kinds, 0));
    faults.failed_machines.assign(faults.domains, 0);
    faults.failed_capacity.assign(faults.domains, 0.0);
    faults.unavailable_seconds.assign(faults.domains, 0);
    faults.lost_capacity.assign(faults.domains, 0.0);
    faults.failures.assign(faults.domains, 0);
    faults.groups = options.faults.group_active() ? options.faults.groups : 0;
    faults.outages.assign(faults.domains, {});
    faults.down_since.assign(faults.domains, -1);
    if (run.degrade.enabled()) {
      faults.overload_seconds.assign(faults.domains, 0);
      faults.penalty_lost.assign(faults.domains, 0.0);
      run.domain_hit.assign(faults.domains, 0);
    }
    run.faults.emplace(std::move(faults));
  }
  return run;
}

/// Flushes the trailing power bucket and copies the cluster-wide and
/// per-app meters into the result.
void finalize_run(Run& run, const SimulatorOptions& options,
                  const std::vector<WorkloadView>& views,
                  MultiSimulationResult& out) {
  if (options.record_power_every > 0 && run.bucket_fill > 0)
    run.power_samples.push_back(run.bucket_max);
  SimulationResult& r = run.result;
  r.compute_energy = run.meter.compute_energy();
  r.reconfiguration_energy = run.meter.reconfiguration_energy();
  r.per_day_compute = run.meter.per_day_compute();
  r.per_day_reconfiguration = run.meter.per_day_reconfiguration();
  r.qos = run.qos.stats();
  if (options.record_power_every > 0)
    r.power_series =
        TimeSeries(std::move(run.power_samples),
                   static_cast<Seconds>(options.record_power_every));
  if (run.faults.has_value()) {
    const FaultRun& fr = *run.faults;
    r.machine_failures = fr.total_failures;
    r.unavailable_seconds = fr.total_unavailable;
    r.lost_capacity = fr.total_lost;
    r.group_strikes = fr.group_strikes;
    r.availability =
        r.qos.total_seconds > 0
            ? 1.0 - static_cast<double>(fr.total_unavailable) /
                        static_cast<double>(r.qos.total_seconds)
            : 1.0;
  }
  if (run.slo_enabled) {
    r.spare_seconds = run.total_spare_seconds;
    r.spare_energy = run.total_spare_energy;
  }
  if (run.degrade.enabled()) {
    r.overload_seconds = run.overload_seconds;
    r.penalty_lost_capacity = run.penalty_lost;
  }
  out.total = std::move(run.result);
  out.apps.resize(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    WorkloadResult& app = out.apps[i];
    app.name = *views[i].name;
    app.scheduler_name = views[i].scheduler->name();
    app.qos = views[i].qos;
    app.qos_stats = run.app_qos[i].stats();
    app.compute_energy = run.app_meters[i].compute_energy();
    app.reconfiguration_energy = run.app_meters[i].reconfiguration_energy();
    if (run.faults.has_value()) {
      const FaultRun& fr = *run.faults;
      const std::size_t d = fr.domain_of[i];
      app.failures = fr.failures[d];
      app.unavailable_seconds = fr.unavailable_seconds[d];
      app.lost_capacity = fr.lost_capacity[d];
      app.availability =
          app.qos_stats.total_seconds > 0
              ? 1.0 - static_cast<double>(fr.unavailable_seconds[d]) /
                          static_cast<double>(app.qos_stats.total_seconds)
              : 1.0;
    }
    if (run.slo_enabled) {
      app.spare_seconds = run.app_spare_seconds[i];
      app.spare_energy = run.app_spare_energy[i];
    }
    if (run.degrade.enabled()) {
      app.overload_seconds = run.app_overload_seconds[i];
      app.penalty_lost_capacity = run.app_penalty_lost[i];
      if (run.faults.has_value()) {
        const std::size_t d = run.faults->domain_of[i];
        app.domain_overload_seconds = run.faults->overload_seconds[d];
        app.domain_penalty_lost = run.faults->penalty_lost[d];
      }
    }
    if (run.priority_enabled)
      app.preempted_seconds = run.app_preempted_seconds[i];
    app.active_seconds = run.lifecycle_enabled ? run.app_active_seconds[i]
                                               : app.qos_stats.total_seconds;
  }
}

/// Applies the merged decision at `now`: a target change switches machines
/// on (and off — deferred in graceful mode) and starts a reconfiguration.
/// `events` is null when event logging is off; `metrics` when
/// self-metrics are off.
void apply_decision(Combination decision, TimePoint now,
                    const Catalog& candidates, bool graceful_off,
                    Cluster& cluster, ReconfigState& state,
                    SimulationResult& result, EventLog* events,
                    SimMetrics* metrics) {
  if (decision == state.current_target) return;
  if (metrics) ++metrics->decisions_applied;

  const std::vector<int> d = delta(state.current_target, decision);
  bool any_on = false;
  for (std::size_t a = 0; a < d.size(); ++a)
    if (d[a] > 0) {
      cluster.switch_on(a, d[a]);
      any_on = true;
    }
  for (std::size_t a = 0; a < d.size(); ++a)
    if (d[a] < 0) {
      // Graceful mode keeps surplus machines serving until the
      // replacements are up; otherwise they power down immediately.
      if (graceful_off && any_on)
        state.deferred_offs[a] += -d[a];
      else
        cluster.switch_off(a, -d[a]);
    }
  state.reconfiguring = true;
  state.started = now;
  ++result.reconfigurations;
  log_debug() << "t=" << now << " reconfigure -> "
              << to_string(candidates, decision);
  if (events)
    events->record(now, EventKind::kReconfigurationStart,
                   to_string(candidates, decision));
  state.current_target = std::move(decision);
}

/// Consults every app's scheduler at `now` and applies the coordinator's
/// merged decision. A scheduler returning std::nullopt keeps its previous
/// proposal; when no proposal changed — and no SLO spare flag flipped —
/// the merged target cannot have changed either and the merge is skipped.
///
/// With `use_cache` set (the event-driven fleet path), apps whose cached
/// decision_stable_until is still in the future are skipped entirely: the
/// contract guarantees their decision cannot have changed while the
/// cluster is untouched, and the caller invalidates the cache whenever it
/// is. The per-second reference never passes `use_cache`, so it stays the
/// oracle for the cached path.
void consult_and_apply(const std::vector<WorkloadView>& views, TimePoint now,
                       const Catalog& candidates, bool graceful_off, Run& run,
                       EventLog* events, SimMetrics* metrics,
                       bool use_cache = false) {
  run.cluster.snapshot_into(run.snap);
  const ClusterSnapshot& snap = run.snap;
  bool any_new = false;
  if (use_cache) {
    std::uint64_t consults = 0;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (run.lifecycle_enabled && !run.active[i]) continue;
      if (run.consult_until[i] > now) continue;
      ++consults;
      std::optional<Combination> d =
          views[i].scheduler->decide(now, *views[i].trace, snap);
      if (d.has_value()) {
        d->resize(candidates.size());
        if (*d != run.proposals[i]) {
          run.proposals[i] = std::move(*d);
          any_new = true;
        }
      }
      run.consult_until[i] =
          views[i].scheduler->decision_stable_until(now, *views[i].trace);
    }
    if (metrics) metrics->scheduler_consults += consults;
  } else {
    if (metrics)
      metrics->scheduler_consults +=
          run.lifecycle_enabled ? run.active_count : views.size();
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (run.lifecycle_enabled && !run.active[i]) continue;
      std::optional<Combination> d =
          views[i].scheduler->decide(now, *views[i].trace, snap);
      if (d.has_value()) {
        d->resize(candidates.size());
        if (*d != run.proposals[i]) {
          run.proposals[i] = std::move(*d);
          any_new = true;
        }
      }
    }
  }
  bool slo_changed = false;
  if (run.slo_enabled) {
    current_spare_flags(run, now, run.flags_scratch);
    slo_changed = run.flags_scratch != run.spare_flags;
  }
  if (!any_new && !slo_changed && !run.lifecycle_dirty) return;
  run.lifecycle_dirty = false;
  if (run.slo_enabled) {
    // Refresh the provisioned spares from the *current* proposals: an
    // active flag rides on whatever the app now asks for. With priority
    // classes, spares are provisioned high-priority-first: while any
    // higher-priority app's flag is active, lower-priority apps' spares
    // are withheld (their flags keep being evaluated, so provisioning
    // resumes the moment the top class recovers).
    int top = std::numeric_limits<int>::min();
    if (run.priority_enabled)
      for (std::size_t i = 0; i < views.size(); ++i)
        if (run.flags_scratch[i] != 0 && views[i].priority > top)
          top = views[i].priority;
    for (std::size_t i = 0; i < views.size(); ++i) {
      const bool granted =
          run.flags_scratch[i] != 0 &&
          (!run.priority_enabled || views[i].priority >= top);
      if (events && granted != (run.spare_granted[i] != 0))
        events->record(now,
                       granted ? EventKind::kSpareProvision
                               : EventKind::kSpareRelease,
                       *views[i].name);
      if (granted) {
        spare_of(run.proposals[i], views[i].slo_spare, candidates.size(),
                 run.spares[i]);
      } else if (run.spares[i].total_machines() > 0) {
        run.spares[i] = Combination{};
        run.spares[i].resize(candidates.size());
      }
      run.spare_power[i] = idle_power_of(candidates, run.spares[i]);
      run.spare_flags[i] = run.flags_scratch[i];
      run.spare_granted[i] = granted ? 1 : 0;
    }
  }
  Combination merged = merge_current(run);
  run.contributions.swap(run.contributions_scratch);
  update_transition_shares(candidates, run);
  const int reconfigs_before = run.result.reconfigurations;
  apply_decision(std::move(merged), now, candidates, graceful_off,
                 run.cluster, run.state, run.result, events, metrics);
  // A consult that re-merged has re-provisioned every app's full
  // entitlement (apply_decision boots the difference vs the preemption-
  // reduced target), so any outstanding preemption ends here.
  if (run.priority_enabled)
    for (Combination& c : run.preempted)
      if (c.total_machines() > 0) {
        c = Combination{};
        c.resize(candidates.size());
      }
  if (use_cache && run.result.reconfigurations != reconfigs_before)
    std::fill(run.consult_until.begin(), run.consult_until.end(),
              static_cast<TimePoint>(-1));
}

/// Post-step bookkeeping while a reconfiguration is in flight: once all
/// boots drained, issues the deferred switch-offs; once those drained too,
/// clears the flag (the next decision happens the following second).
void settle_reconfiguration(TimePoint now, Cluster& cluster,
                            ReconfigState& state, EventLog* events) {
  if (cluster.booting_total() != 0) return;
  const bool was_shutting = cluster.shutting_down_total() != 0;
  bool issued = false;
  for (std::size_t a = 0; a < state.deferred_offs.size(); ++a)
    if (state.deferred_offs[a] > 0) {
      cluster.switch_off(a, state.deferred_offs[a]);
      state.deferred_offs[a] = 0;
      issued = true;
    }
  if (!issued && !was_shutting) {
    state.reconfiguring = false;  // completed; next decision at t + 1
    if (events)
      events->record(now, EventKind::kReconfigurationComplete,
                     std::to_string(now - state.started + 1) + " s");
  }
}

/// Re-merges the current proposals against the surviving fleet after a
/// failure and boots replacements for any deficit vs the merged target —
/// the coordinator's answer to lost capacity. The merge is pure in the
/// proposals, so the target itself is unchanged; what changes is the
/// fleet underneath it, and the refreshed contributions / transition
/// shares keep reconfiguration-energy attribution consistent while the
/// replacements boot.
///
/// With priority classes, a preemption pass runs between the merge and
/// the deficit boots: instead of waiting out replacement boots, a strike
/// that leaves a high-priority app short takes provisioned machines from
/// lower-priority apps' contributions (the serving capacity is pooled, so
/// the transfer shifts entitlement — strike exposure, transition shares,
/// preempted-seconds — to the class the control plane protects).
/// Preemption is recomputed from scratch at every fault batch: the fresh
/// merge forgot the previous pass, and the new pass re-takes only what
/// the *currently failed* machines still justify, so repairs release
/// preempted machines unit-for-unit and the freed deficit boots below.
void restore_after_failure(TimePoint now, const Catalog& candidates,
                           const std::vector<WorkloadView>& views, Run& run,
                           EventLog* events) {
  // The merge includes the spares the last consult provisioned (the flags
  // themselves only change at consult instants, shared by both paths).
  Combination merged = merge_current(run);
  run.contributions.swap(run.contributions_scratch);
  if (run.priority_enabled && run.faults.has_value()) {
    // Victims: apps with priority strictly below the highest priority
    // among apps whose domain currently holds a failed machine, shed in
    // trim order (lowest priority first, descending index). Per arch, at
    // most the currently-failed machine count may be preempted — deficit
    // beyond that predates the failures and is the decision loop's to fix.
    const FaultRun& fr = *run.faults;
    int top = std::numeric_limits<int>::min();
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (run.lifecycle_enabled && !run.active[i]) continue;
      if (fr.failed_machines[fr.domain_of[i]] > 0 && views[i].priority > top)
        top = views[i].priority;
    }
    for (Combination& c : run.preempted_scratch) {
      c = Combination{};
      c.resize(candidates.size());
    }
    if (top > std::numeric_limits<int>::min()) {
      for (std::size_t a = 0; a < candidates.size(); ++a) {
        const int have = run.cluster.on_count(a) +
                         run.cluster.booting_count(a) -
                         run.state.deferred_offs[a];
        int deficit = merged.count(a) - have;
        int takeable = 0;
        for (std::size_t d = 0; d < fr.domains; ++d)
          takeable += fr.failed[d][a];
        if (deficit > takeable) deficit = takeable;
        for (std::size_t victim : run.victim_order) {
          if (deficit <= 0) break;
          if (views[victim].priority >= top) continue;
          const int give =
              std::min(deficit, run.contributions[victim].count(a));
          if (give <= 0) continue;
          run.contributions[victim].add(a, -give);
          merged.add(a, -give);
          run.preempted_scratch[victim].add(a, give);
          deficit -= give;
        }
      }
    }
    int newly = 0;
    for (std::size_t i = 0; i < views.size(); ++i) {
      int app_new = 0;
      for (std::size_t a = 0; a < candidates.size(); ++a) {
        const int diff = run.preempted_scratch[i].count(a) -
                         run.preempted[i].count(a);
        if (diff > 0) app_new += diff;
      }
      if (app_new > 0 && events)
        events->record(now, EventKind::kPreemption,
                       std::to_string(app_new) + " from " + *views[i].name);
      newly += app_new;
    }
    if (newly > 0) {
      run.result.preemptions += newly;
      if (run.result.metrics.enabled)
        run.result.metrics.preemptions += static_cast<std::uint64_t>(newly);
    }
    run.preempted.swap(run.preempted_scratch);
  }
  update_transition_shares(candidates, run);
  run.state.current_target = std::move(merged);

  bool any = false;
  for (std::size_t a = 0; a < candidates.size(); ++a) {
    // Machines already earmarked for this target: serving + booting,
    // minus the surplus that graceful mode will switch off later.
    const int have = run.cluster.on_count(a) + run.cluster.booting_count(a) -
                     run.state.deferred_offs[a];
    const int deficit = run.state.current_target.count(a) - have;
    if (deficit > 0) {
      run.cluster.switch_on(a, deficit);
      any = true;
    }
  }
  if (!any) return;
  if (!run.state.reconfiguring) {
    run.state.reconfiguring = true;
    run.state.started = now;
    ++run.result.reconfigurations;
    if (events)
      events->record(now, EventKind::kReconfigurationStart,
                     "replace failed: " +
                         to_string(candidates, run.state.current_target));
  }
  log_debug() << "t=" << now << " failure restore -> "
              << to_string(candidates, run.state.current_target);
}

/// Applies every fault event due at `now` (shared verbatim by both
/// execution strategies — the fast path guarantees events only ever land
/// on span starts). A failure strike fells one On machine of its arch if
/// the domain's coordinator contributions still entitle it to one; a
/// group (rack) strike fells the struck rack's whole stripe of the
/// domain's surviving entitlement, every arch at once. Landed failures
/// first consume a matching deferred switch-off (the surplus machine the
/// decision was about to power down is simply dead instead), otherwise
/// the fleet is restored against the merged target.
/// Returns true when any event landed (the cluster changed), so the
/// fleet-mode consult cache can be invalidated.
bool apply_fault_events(TimePoint now, const Catalog& candidates,
                        const std::vector<WorkloadView>& views, Run& run,
                        EventLog* events) {
  FaultRun& fr = *run.faults;
  bool need_restore = false;
  bool any_event = false;
  // One landed failure, any strike kind: cluster + counters + repair job
  // (through the crew queue) + deferred-off consumption.
  const auto fell_one = [&](std::size_t d, std::size_t a,
                            TimePoint repair_seconds) {
    const ReqRate machine_capacity = candidates[a].max_perf();
    if (run.slo_enabled && fr.failed_machines[d] == 0) fr.down_since[d] = now;
    run.cluster.fail_one(a);
    ++fr.failed[d][a];
    ++fr.failed_machines[d];
    ++fr.total_failed_machines;
    fr.failed_capacity[d] += machine_capacity;
    fr.total_failed_capacity += machine_capacity;
    ++fr.failures[d];
    ++fr.total_failures;
    fr.timeline.schedule_repair(now, repair_seconds, d, a);
    if (run.state.deferred_offs[a] > 0)
      --run.state.deferred_offs[a];
    else
      need_restore = true;
  };
  while (std::optional<FaultEvent> e = fr.timeline.pop(now)) {
    any_event = true;
    if (e->repair) {
      const ReqRate machine_capacity = candidates[e->arch].max_perf();
      run.cluster.repair_one(e->arch);
      --fr.failed[e->domain][e->arch];
      --fr.failed_machines[e->domain];
      --fr.total_failed_machines;
      fr.failed_capacity[e->domain] -= machine_capacity;
      fr.total_failed_capacity -= machine_capacity;
      // Kill any incremental-sum residue once everything is back up, so
      // the availability integrand is exactly 0 between outages.
      if (fr.failed_machines[e->domain] == 0) {
        fr.failed_capacity[e->domain] = 0.0;
        // The domain's outage closes; the interval feeds the SLO windows.
        if (run.slo_enabled) {
          fr.outages[e->domain].push_back(
              FaultRun::Outage{fr.down_since[e->domain], now});
          fr.down_since[e->domain] = -1;
        }
      }
      if (fr.total_failed_machines == 0) fr.total_failed_capacity = 0.0;
      if (events)
        events->record(now, EventKind::kMachineRepair,
                       candidates[e->arch].name());
      continue;
    }
    if (e->group_strike) {
      // The rack holds a deterministic round-robin stripe of the domain's
      // surviving entitlement per arch; the strike fells the whole stripe
      // (clamped by what is actually On). All casualties share the
      // strike's single pre-drawn repair duration.
      int felled = 0;
      for (std::size_t a = 0; a < candidates.size(); ++a) {
        int entitled = 0;
        for (std::size_t i = 0; i < views.size(); ++i)
          if (fr.domain_of[i] == e->domain)
            entitled += run.contributions[i].count(a);
        const int available =
            std::max(0, entitled - fr.failed[e->domain][a]);
        int stripe = available / fr.groups;
        if (static_cast<int>(e->group) < available % fr.groups) ++stripe;
        stripe = std::min(stripe, run.cluster.on_count(a));
        for (int k = 0; k < stripe; ++k)
          fell_one(e->domain, a, e->repair_seconds);
        felled += stripe;
      }
      if (felled > 0) {
        ++fr.group_strikes;
        if (events)
          events->record(now, EventKind::kGroupStrike,
                         std::to_string(felled) + " machines");
      }
      continue;
    }
    int entitled = 0;
    for (std::size_t i = 0; i < views.size(); ++i)
      if (fr.domain_of[i] == e->domain)
        entitled += run.contributions[i].count(e->arch);
    if (fr.failed[e->domain][e->arch] >= entitled ||
        run.cluster.on_count(e->arch) == 0)
      continue;  // the strike found nothing of this domain's to kill
    fell_one(e->domain, e->arch, e->repair_seconds);
    if (events)
      events->record(now, EventKind::kMachineFailure,
                     candidates[e->arch].name());
  }
  // Priority runs recompute the preemption pass at *every* landed batch
  // (repairs release preempted machines and boot their replacements);
  // priority-free runs only restore when a strike left a deficit,
  // byte-identical to a preemption-unaware build.
  if (need_restore || (any_event && run.priority_enabled))
    restore_after_failure(now, candidates, views, run, events);
  return any_event;
}

/// Integrates the fault-accounting state over a span whose failure set is
/// constant (1 s in the reference loop; a whole span on the fast path —
/// fault events bound spans, so the set cannot change inside one).
void account_fault_span(FaultRun& fr, TimePoint span) {
  if (fr.total_failed_machines == 0) return;
  for (std::size_t d = 0; d < fr.domains; ++d) {
    if (fr.failed_machines[d] == 0) continue;
    fr.unavailable_seconds[d] += span;
    fr.lost_capacity[d] +=
        fr.failed_capacity[d] * static_cast<double>(span);
  }
  fr.total_unavailable += span;
  fr.total_lost +=
      fr.total_failed_capacity * static_cast<double>(span);
}

/// Sums this span's per-app loads into `run.loads`; returns the total.
ReqRate gather_loads(const std::vector<WorkloadView>& views, TimePoint now,
                     Run& run) {
  ReqRate total = 0.0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    // Inactive tenants offer exactly 0.0: summing the zero in app order
    // keeps the total bit-identical to a gather over the active subset.
    run.loads[i] = run.lifecycle_enabled && !run.active[i]
                       ? 0.0
                       : views[i].trace->at(now);
    total += run.loads[i];
  }
  return total;
}

/// Per-app QoS and energy attribution for a constant-load span (1 s in
/// the reference loop). Only touches per-app accumulators — the
/// cluster-wide aggregates are recorded by the callers, unchanged from
/// the single-workload simulator. `capacity` is the caller's On capacity
/// for the span (constant across a fixed-fleet span, so hoisted into the
/// capacity-parameterized Cluster::split_capacity overload).
void attribute_span(const std::vector<WorkloadView>& views, Run& run,
                    ReqRate total_load, const ClusterPower& power,
                    TimePoint span, ReqRate capacity) {
  if (run.lifecycle_enabled) {
    // Tenant-lifecycle runs attribute over the active subset only:
    // inactive apps integrate nothing (their loads are pinned to 0.0), and
    // an idle-cluster equal split spreads over the tenants present.
    Cluster::split_capacity(run.loads, total_load, capacity, run.alloc);
    const auto n_active = static_cast<double>(run.active_count);
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (!run.active[i]) continue;
      run.app_qos[i].record_span(run.loads[i], run.alloc[i], span);
      const double compute_share =
          total_load > 0.0 ? run.loads[i] / total_load : 1.0 / n_active;
      run.app_meters[i].add_span(power.compute * compute_share,
                                 power.transition * run.transition_shares[i],
                                 static_cast<std::size_t>(span));
    }
    return;
  }
  const auto n = static_cast<double>(views.size());
  Cluster::split_capacity(run.loads, total_load, capacity, run.alloc);
  for (std::size_t i = 0; i < views.size(); ++i) {
    run.app_qos[i].record_span(run.loads[i], run.alloc[i], span);
    const double compute_share =
        total_load > 0.0 ? run.loads[i] / total_load : 1.0 / n;
    run.app_meters[i].add_span(power.compute * compute_share,
                               power.transition * run.transition_shares[i],
                               static_cast<std::size_t>(span));
  }
}

std::size_t longest_trace(const std::vector<WorkloadView>& views) {
  std::size_t n = 0;
  for (const WorkloadView& v : views) n = std::max(n, v.trace->size());
  return n;
}

/// Advances [begin, end) with a fixed fleet (no transition completes and no
/// decision is applied inside): walks the intersection of the workloads'
/// compiled-trace runs, so a span over a per-second-noisy trace costs one
/// iteration per constant-value sub-run instead of one per second. Each
/// sub-run's power / QoS / per-app attribution is closed-form; the
/// cluster-wide piecewise kernels (EnergyMeter::add_runs,
/// QosTracker::record_runs) and the power bucketing then each consume the
/// whole run list in one call.
///
/// Returns the time actually advanced to (== `end` normally). With the
/// degrade model enabled, an overload entry/exit inside the span stops
/// the walk at the crossing — which lands exactly on an RLE run boundary
/// — and the caller ends the span there (SpanEndCause::kOverloadCrossing),
/// so the per-span accounting downstream integrates a constant overload
/// state, exactly like the per-second reference.
TimePoint advance_span(const std::vector<WorkloadView>& views, Run& run,
                       const std::vector<const CompiledTrace*>& compiled,
                       std::vector<CompiledTrace::Cursor>& cursors,
                       TimePoint begin, TimePoint end,
                       const SimulatorOptions& options, SimMetrics* metrics) {
  run.span_runs.clear();
  // Fixed fleet for the whole span: capacity and transition power are
  // constant, and the compute power is the compiled fleet curve of the
  // per-run load (within a few ulp of Cluster::compute_power — inside
  // the 1e-9 equivalence contract).
  const ReqRate capacity_now = run.cluster.on_capacity();
  const Watts transition = run.cluster.transition_power();
  run.cluster.compile_power_curve(run.power_curve);
  const bool deg = run.degrade.enabled();
  bool first = true;
  bool span_over = false;

  // Kernel flushes happen in L1-sized chunks: a quiet day can be one span
  // of 86400 per-second runs, and producing the whole list before walking
  // it twice (QoS kernel, energy kernel) would stream megabytes through
  // the cache instead of kilobytes. Chunk boundaries only affect
  // floating-point summation order; day attribution is unaffected (spans
  // never straddle days — the caller clamps them).
  constexpr std::size_t kFlushChunk = 512;
  const auto flush = [&run, &options, capacity_now, transition, deg] {
    if (run.span_runs.empty()) return;
    if (deg)
      run.qos.record_runs_var(run.span_runs);
    else
      run.qos.record_runs(run.span_runs, capacity_now);
    run.meter.add_runs(run.span_runs, transition);
    if (options.record_power_every > 0) {
      for (const Run::SegmentRun& sr : run.span_runs) {
        const double total_power = sr.compute + transition;
        auto left = static_cast<std::size_t>(sr.seconds);
        while (left > 0) {
          const std::size_t chunk =
              std::min(left, options.record_power_every - run.bucket_fill);
          run.bucket_max = std::max(run.bucket_max, total_power);
          run.bucket_fill += chunk;
          left -= chunk;
          if (run.bucket_fill == options.record_power_every) {
            run.power_samples.push_back(run.bucket_max);
            run.bucket_max = 0.0;
            run.bucket_fill = 0;
          }
        }
      }
    }
    run.span_runs.clear();
  };

  // Single-workload runs skip per-run attribution entirely: with one app
  // the capacity, compute and transition shares are all exactly 1.0, so
  // the per-app accumulators would replay the cluster-wide streams
  // bit-for-bit — run_event_driven copies them at the end instead.
  if (views.size() == 1 && options.record_power_every == 0 &&
      !run.lifecycle_enabled) {
    // Fully fused single-workload walk — the innermost loop of the whole
    // simulator on noisy traces. QoS totals and the compute-energy
    // integral accumulate in registers and flush once per span through
    // the aggregate kernels; no scratch rows, no second pass. (The meter
    // runs at step 1.0, so power * seconds is the integrated energy.)
    const CompiledTrace& trace = *compiled[0];
    CompiledTrace::Cursor& cursor = cursors[0];
    QosSpanTotals totals;
    Joules compute_e = 0.0;
    TimePoint cur = begin;
    while (cur < end) {
      const CompiledTrace::Run r = trace.run_at(cursor, cur);
      const TimePoint sub_end = r.end < end ? r.end : end;
      const TimePoint len = sub_end - cur;
      const auto seconds = static_cast<double>(len);
      ReqRate cap_eff = capacity_now;
      if (deg) {
        const DegradedCap dc =
            degraded_capacity(run.degrade, r.value, capacity_now);
        if (first) {
          span_over = dc.overloaded;
          first = false;
        } else if (dc.overloaded != span_over) {
          end = cur;
          break;
        }
        cap_eff = dc.effective;
        if (dc.overloaded) {
          run.loads[0] = r.value;
          account_overload(views, run, r.value, dc.lost_rate, len);
        }
      }
      totals.seconds += len;
      totals.offered += r.value * seconds;
      if (r.value > cap_eff) {
        const double shortfall = r.value - cap_eff;
        totals.violation_seconds += len;
        totals.unserved += shortfall * seconds;
        if (shortfall > totals.worst_shortfall)
          totals.worst_shortfall = shortfall;
      }
      compute_e += run.power_curve.power_at(r.value) * seconds;
      cur = sub_end;
    }
    run.qos.record_totals(totals);
    run.meter.add_integrated_span(compute_e, transition,
                                  static_cast<std::size_t>(totals.seconds));
    return end;
  }
  if (views.size() == 1 && !run.lifecycle_enabled) {
    // Single-workload with power recording: the bucketing needs per-run
    // powers, so go through the scratch rows and the run kernels.
    const CompiledTrace& trace = *compiled[0];
    CompiledTrace::Cursor& cursor = cursors[0];
    TimePoint cur = begin;
    while (cur < end) {
      const CompiledTrace::Run r = trace.run_at(cursor, cur);
      const TimePoint sub_end = r.end < end ? r.end : end;
      Run::SegmentRun sr{r.value, run.power_curve.power_at(r.value),
                         sub_end - cur, capacity_now};
      if (deg) {
        const DegradedCap dc =
            degraded_capacity(run.degrade, r.value, capacity_now);
        if (first) {
          span_over = dc.overloaded;
          first = false;
        } else if (dc.overloaded != span_over) {
          end = cur;
          break;
        }
        sr.cap = dc.effective;
        if (dc.overloaded) {
          run.loads[0] = r.value;
          account_overload(views, run, r.value, dc.lost_rate, sr.seconds);
        }
      }
      run.span_runs.push_back(sr);
      if (run.span_runs.size() == kFlushChunk) flush();
      cur = sub_end;
    }
  } else {
    // Fused k-way merge over the apps' compiled RLE streams: one frontier
    // entry per app (current value in run.loads, current run end in
    // run.run_ends). Each shared sub-run is the intersection of the apps'
    // current runs, and only the cursors whose run ends exactly at the
    // sub-run boundary advance — so each app's stream is consumed once
    // per span instead of being re-probed once per sub-run. The sub-run
    // arithmetic (total summed fresh in app order, per-app attribution via
    // attribute_span) is operation-for-operation the per-sub-run walk it
    // replaces, so every accumulator stays bit-identical.
    const std::size_t k = views.size();
    std::uint64_t advances = 0;
    for (std::size_t i = 0; i < k; ++i) {
      // Inactive tenants hold a zero-load frontier entry pinned to the
      // span end: their cursor is never probed, the 0.0 still sums in app
      // order (bit-identical to the reference gather), and the advance
      // loop below can never re-seat them (run end == span end).
      if (run.lifecycle_enabled && !run.active[i]) {
        run.loads[i] = 0.0;
        run.run_ends[i] = end;
        continue;
      }
      const CompiledTrace::Run r = compiled[i]->run_at(cursors[i], begin);
      run.loads[i] = r.value;
      run.run_ends[i] = r.end;
      ++advances;
    }
    TimePoint cur = begin;
    while (cur < end) {
      TimePoint sub_end = end;
      ReqRate total = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        total += run.loads[i];
        if (run.run_ends[i] < sub_end) sub_end = run.run_ends[i];
      }
      const TimePoint len = sub_end - cur;
      ReqRate cap_eff = capacity_now;
      if (deg) {
        const DegradedCap dc =
            degraded_capacity(run.degrade, total, capacity_now);
        if (first) {
          span_over = dc.overloaded;
          first = false;
        } else if (dc.overloaded != span_over) {
          end = cur;
          break;
        }
        cap_eff = dc.effective;
        if (dc.overloaded) account_overload(views, run, total, dc.lost_rate, len);
      }
      const Watts compute = run.power_curve.power_at(total);
      run.span_runs.push_back(Run::SegmentRun{total, compute, len, cap_eff});
      if (run.span_runs.size() == kFlushChunk) flush();
      attribute_span(views, run, total, ClusterPower{compute, transition},
                     len, cap_eff);
      cur = sub_end;
      if (cur >= end) break;
      for (std::size_t i = 0; i < k; ++i) {
        if (run.run_ends[i] == cur) {
          const CompiledTrace::Run r = compiled[i]->run_at(cursors[i], cur);
          run.loads[i] = r.value;
          run.run_ends[i] = r.end;
          ++advances;
        }
      }
    }
    if (metrics) {
      metrics->merge_frontier_advances += advances;
      if (k > metrics->merge_apps_max) metrics->merge_apps_max = k;
    }
  }
  flush();
  return end;
}

}  // namespace

MultiSimulationResult Simulator::run_per_second(
    const std::vector<WorkloadView>& views) const {
  Run run = make_run(candidates_, options_, plan_, views);
  // The timeline recorder consumes the event stream too, so recording a
  // timeline turns event logging on even when the caller did not ask for
  // the log itself.
  EventLog events(options_.event_log_capacity);
  const bool log_events = options_.record_events || options_.record_timeline;
  EventLog* events_ptr = log_events ? &events : nullptr;

  SimMetrics* metrics = nullptr;
  if (options_.collect_metrics) {
    run.result.metrics.enable();
    metrics = &run.result.metrics;
    metrics->apps_active_max = static_cast<std::uint64_t>(run.active_count);
  }
  TraceRecording* timeline = nullptr;
  if (options_.record_timeline) {
    if (options_.timeline_sample_every == 0)
      throw std::invalid_argument(
          "Simulator: timeline_sample_every must be >= 1");
    run.result.timeline.enabled = true;
    run.result.timeline.sample_every =
        static_cast<TimePoint>(options_.timeline_sample_every);
    for (std::size_t a = 0; a < candidates_.size(); ++a)
      run.result.timeline.arch_names.push_back(candidates_[a].name());
    timeline = &run.result.timeline;
  }

  const std::size_t n = longest_trace(views);
  for (std::size_t t = 0; t < n; ++t) {
    const auto now = static_cast<TimePoint>(t);

    // Tenant arrivals and departures land first: the fault engine, the
    // schedulers and the dispatcher all see the post-churn tenant set.
    if (run.lifecycle_enabled)
      apply_lifecycle_events(views, now, candidates_, run, events_ptr);

    // Fault events land at the start of the second, before any decision:
    // the scheduler and the dispatcher see the post-failure fleet.
    if (run.faults.has_value()) {
      apply_fault_events(now, candidates_, views, run, events_ptr);
      account_fault_span(*run.faults, 1);
    }

    if (!run.state.reconfiguring)
      consult_and_apply(views, now, candidates_, options_.graceful_off, run,
                        events_ptr, metrics);
    if (run.slo_enabled) account_spare_span(run, 1);
    if (run.priority_enabled) account_preemption_span(run, 1);
    if (run.lifecycle_enabled) account_lifecycle_span(run, 1);
    if (metrics) ++metrics->ticks;

    const ReqRate load = gather_loads(views, now, run);
    const ClusterPower power = run.cluster.step_power(load);
    const ReqRate capacity_now = run.cluster.on_capacity();
    // Degraded-mode serving: QoS (cluster-wide and per-app) is scored
    // against the effective capacity; the power draw is unchanged (the
    // fleet curve already saturates at rated capacity).
    ReqRate cap_eff = capacity_now;
    if (run.degrade.enabled()) {
      const DegradedCap dc =
          degraded_capacity(run.degrade, load, capacity_now);
      cap_eff = dc.effective;
      if (dc.overloaded) account_overload(views, run, load, dc.lost_rate, 1);
      if (log_events && dc.overloaded != run.overloaded_now)
        events.record(now,
                      dc.overloaded ? EventKind::kOverloadEnter
                                    : EventKind::kOverloadExit,
                      dc.overloaded
                          ? std::to_string(load - capacity_now) + " req/s over"
                          : "");
      run.overloaded_now = dc.overloaded;
    }
    run.qos.record(load, cap_eff);
    if (log_events && load > cap_eff)
      events.record(now, EventKind::kQosViolation,
                    std::to_string(load - cap_eff));

    if (timeline && now % timeline->sample_every == 0) {
      const ClusterSnapshot snap = run.cluster.snapshot();
      TimelineSample sample;
      sample.time = now;
      sample.on.reserve(candidates_.size());
      for (std::size_t a = 0; a < candidates_.size(); ++a) {
        sample.on.push_back(snap.on.count(a));
        sample.booting.push_back(snap.booting.count(a));
        sample.shutting_down.push_back(snap.shutting_down.count(a));
        sample.failed.push_back(snap.failed.count(a));
      }
      sample.offered = load;
      sample.served = load < cap_eff ? load : cap_eff;
      if (run.slo_enabled)
        for (const Combination& c : run.spares)
          sample.spare_machines += static_cast<int>(c.total_machines());
      timeline->samples.push_back(std::move(sample));
    }
    run.meter.add_compute_sample(power.compute);
    if (power.transition > 0.0)
      run.meter.add_reconfiguration_energy(power.transition * 1.0);
    run.meter.tick();
    attribute_span(views, run, load, power, 1, cap_eff);
    if (run.state.reconfiguring) ++run.result.reconfiguring_seconds;

    const int completed = run.cluster.step(1.0);
    if (log_events && completed > 0)
      events.record(now, EventKind::kBootComplete,
                    std::to_string(completed) + " transitions");

    if (run.state.reconfiguring)
      settle_reconfiguration(now, run.cluster, run.state, events_ptr);

    run.result.peak_machines =
        std::max(run.result.peak_machines, run.cluster.machine_count());

    if (options_.record_power_every > 0) {
      run.bucket_max =
          std::max(run.bucket_max, power.compute + power.transition);
      if (++run.bucket_fill == options_.record_power_every) {
        run.power_samples.push_back(run.bucket_max);
        run.bucket_max = 0.0;
        run.bucket_fill = 0;
      }
    }
  }
  if (timeline)
    timeline->events.assign(events.events().begin(), events.events().end());
  MultiSimulationResult out;
  finalize_run(run, options_, views, out);
  if (log_events) out.total.events = std::move(events);
  return out;
}

MultiSimulationResult Simulator::run_event_driven(
    const std::vector<WorkloadView>& views) const {
  Run run = make_run(candidates_, options_, plan_, views);
  // Self-metrics ride a nullable pointer: with metrics off the span loop
  // pays one branch per span and the classification work below is
  // skipped entirely.
  SimMetrics* metrics = nullptr;
  if (options_.collect_metrics) {
    run.result.metrics.enable();
    metrics = &run.result.metrics;
    metrics->apps_active_max = static_cast<std::uint64_t>(run.active_count);
  }

  // Compiled (RLE) form of every trace: supplied by the caller (sweeps
  // share one compilation across all scenarios and worker threads) or
  // compiled here once per run.
  std::vector<CompiledTrace> owned;
  owned.reserve(views.size());
  std::vector<const CompiledTrace*> compiled(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (views[i].compiled != nullptr) {
      compiled[i] = views[i].compiled;
    } else {
      owned.emplace_back(*views[i].trace);
      compiled[i] = &owned.back();
    }
  }
  std::vector<CompiledTrace::Cursor> cursors(views.size());

  const auto n = static_cast<TimePoint>(longest_trace(views));
  TimePoint t = 0;
  while (t < n) {
    // 0. Tenant arrivals/departures due now, then fault events — exactly
    //    as in the reference loop. Events can only be due at span starts:
    //    step 2 bounds every span by the timelines' next events, so both
    //    the active set and the failure set are constant inside one.
    //    Any landed fault event changed the cluster, so cached consults
    //    die.
    if (run.lifecycle_enabled)
      apply_lifecycle_events(views, t, candidates_, run, nullptr);
    if (run.faults.has_value() &&
        apply_fault_events(t, candidates_, views, run, nullptr) &&
        run.fleet_mode)
      std::fill(run.consult_until.begin(), run.consult_until.end(),
                static_cast<TimePoint>(-1));

    // 1. Scheduler decisions, exactly as in the reference loop. While no
    //    reconfiguration is in flight the cluster state cannot change, so
    //    the intersection of the schedulers' stability bounds tells us how
    //    long the merged decision (and thus the fleet) stays as it is now.
    //    Fleet mode reads the bounds straight from the consult cache —
    //    consult_and_apply just refreshed every expired entry, and reusing
    //    an unexpired (conservative) bound only ends spans early, which
    //    splits integrals without changing any per-second value.
    TimePoint stable_until = t + 1;
    if (!run.state.reconfiguring) {
      consult_and_apply(views, t, candidates_, options_.graceful_off, run,
                        nullptr, metrics, run.fleet_mode);
      if (!run.state.reconfiguring) {
        // Only active tenants constrain the bound (inactive schedulers
        // are never consulted); with nobody active the span runs to the
        // next churn event or the trace end. For fixed-tenant runs this
        // min over every app is exactly the chain it replaces.
        stable_until = std::numeric_limits<TimePoint>::max();
        if (run.fleet_mode) {
          for (std::size_t i = 0; i < views.size(); ++i) {
            if (run.lifecycle_enabled && !run.active[i]) continue;
            stable_until = std::min(stable_until, run.consult_until[i]);
          }
        } else {
          for (std::size_t i = 0; i < views.size(); ++i) {
            if (run.lifecycle_enabled && !run.active[i]) continue;
            stable_until = std::min(
                stable_until,
                views[i].scheduler->decision_stable_until(t, *views[i].trace));
          }
        }
        if (stable_until == std::numeric_limits<TimePoint>::max())
          stable_until = n;
      }
    }

    // 2. Find the next event boundary: any scheduler's decision change, or
    //    a machine transition completion (completions land at the end of
    //    second t + ceil(remaining) - 1). While a reconfiguration with no
    //    transitions left is draining (the one extra second before the
    //    flag clears), tick one second. Trace value changes do NOT bound
    //    the span — the simulator advances at decision granularity and the
    //    varying load is integrated run-by-run below.
    // Each bound is applied with a strict compare so `cause` names the
    // binding one (ties keep the earlier-applied cause); the resulting
    // span_end values are exactly the min-chain they replace.
    TimePoint span_end;
    SpanEndCause cause;
    if (!run.state.reconfiguring) {
      span_end = stable_until;
      cause = SpanEndCause::kSchedulerStable;
    } else {
      const Seconds remaining = run.cluster.next_transition_remaining();
      span_end =
          remaining >= 0.0
              ? t + static_cast<TimePoint>(std::ceil(remaining - 1e-9))
              : t + 1;
      cause = SpanEndCause::kTransitionComplete;
    }
    // The next scheduled failure strike or repair completion bounds the
    // span exactly like a machine transition: inside a span the failure
    // set (and hence capacity, power, and the availability integrand) is
    // constant. The timeline's events are strictly in the future of the
    // drain in step 0, so this never shrinks the span below t + 1.
    if (run.faults.has_value()) {
      const TimePoint fault_at = run.faults->timeline.next_event();
      if (fault_at < span_end) {
        span_end = fault_at;
        cause = run.faults->timeline.next_repair() == fault_at
                    ? SpanEndCause::kCrewCompletion
                    : SpanEndCause::kFault;
      }
    }
    // The next tenant arrival or departure bounds the span exactly like a
    // fault strike: the active set (and with it the gather, attribution
    // and coordinator partition) is constant inside one. Step 0 consumed
    // every event due at or before t, so this is strictly in the future.
    if (run.lifecycle_enabled &&
        run.next_lifecycle < run.lifecycle_events.size()) {
      const TimePoint churn_at =
          run.lifecycle_events[run.next_lifecycle].time;
      if (churn_at < span_end) {
        span_end = churn_at;
        cause = SpanEndCause::kChurn;
      }
    }
    // Clamping spans at day boundaries costs at most one extra span per
    // simulated day and lets EnergyMeter::add_runs fuse every sub-run of
    // a span into one day bucket instead of chunk-splitting per run.
    const TimePoint day_end = (t / kSecondsPerDay + 1) * kSecondsPerDay;
    if (day_end < span_end) {
      span_end = day_end;
      cause = SpanEndCause::kDayBoundary;
    }
    // A spare flag flipping is a decision change: the reference loop
    // re-evaluates the SLO flags every idle second, so an idle span must
    // end at the first second a trailing window crosses an app's error
    // budget (exact — the downtime integrand is fixed inside the span).
    if (run.slo_enabled && run.faults.has_value() &&
        !run.state.reconfiguring) {
      const TimePoint crossing = next_slo_crossing(run, t, span_end);
      if (crossing < span_end) {
        span_end = crossing;
        cause = SpanEndCause::kSloCrossing;
      }
    }
    if (span_end >= n) {
      // A span reaching n ran out of trace whichever bound got it there —
      // classify it as trace-end so every run counts exactly one.
      span_end = n;
      cause = SpanEndCause::kTraceEnd;
    }
    if (span_end < t + 1) span_end = t + 1;

    // 3. Advance the span in closed form: the fleet is constant, so each
    //    constant-load sub-run has constant power and QoS margins. With
    //    the degrade model on, an overload entry/exit inside the span
    //    stops the walk at the crossing and the span ends there — the
    //    per-span accounting below then integrates a constant overload
    //    state, exactly like the per-second reference. (All of that
    //    accounting sits after the advance for this reason; its
    //    integrands are constant in-span either way.)
    const TimePoint advanced = advance_span(views, run, compiled, cursors, t,
                                            span_end, options_, metrics);
    if (advanced < span_end) {
      span_end = advanced;
      cause = SpanEndCause::kOverloadCrossing;
    }
    const TimePoint span = span_end - t;
    if (metrics) {
      // A scheduler-stable bound that lands exactly on a trace run
      // boundary means the load crossed a decision threshold — the
      // "trace change" flavour of a decision bound. Probed with cursor
      // copies so the real walk above is untouched (run_at re-seats a
      // cursor that has already walked past the probe point).
      if (cause == SpanEndCause::kSchedulerStable) {
        for (std::size_t i = 0; i < views.size(); ++i) {
          CompiledTrace::Cursor probe = cursors[i];
          if (compiled[i]->run_at(probe, span_end - 1).end == span_end) {
            cause = SpanEndCause::kTraceChange;
            break;
          }
        }
      }
      ++metrics->spans;
      ++metrics->span_end_causes[static_cast<std::size_t>(cause)];
      metrics->span_seconds.observe(static_cast<double>(span));
    }
    if (run.faults.has_value()) account_fault_span(*run.faults, span);
    if (run.slo_enabled) account_spare_span(run, span);
    if (run.priority_enabled) account_preemption_span(run, span);
    if (run.lifecycle_enabled) account_lifecycle_span(run, span);
    if (run.state.reconfiguring) run.result.reconfiguring_seconds += span;

    // 4. Machine transitions progress; completions land exactly at the
    //    end of the span (Cluster::step is exact for multi-second steps).
    //    Anything that touched the cluster this span — a completion or an
    //    in-flight reconfiguration (whose settle below may issue deferred
    //    offs) — invalidates the fleet-mode consult cache.
    bool cluster_changed = false;
    if (run.cluster.transitioning())
      cluster_changed = run.cluster.step(static_cast<Seconds>(span)) > 0;

    if (run.state.reconfiguring) {
      settle_reconfiguration(span_end - 1, run.cluster, run.state, nullptr);
      cluster_changed = true;
    }
    if (cluster_changed && run.fleet_mode)
      std::fill(run.consult_until.begin(), run.consult_until.end(),
                static_cast<TimePoint>(-1));

    run.result.peak_machines =
        std::max(run.result.peak_machines, run.cluster.machine_count());
    t = span_end;
  }
  // Single-workload runs: the per-app streams are exactly the cluster-wide
  // streams (every share is 1.0), so advance_span skipped them — install
  // the aggregates as the app slice. (A lifecycle single-app run went
  // through the k-way merge and attributed normally.)
  if (views.size() == 1 && !run.lifecycle_enabled) {
    run.app_qos[0] = run.qos;
    run.app_meters[0] = run.meter;
  }
  MultiSimulationResult out;
  finalize_run(run, options_, views, out);
  return out;
}

}  // namespace bml
