#include "sim/event_log.hpp"

#include <sstream>
#include <stdexcept>

namespace bml {

namespace {
constexpr std::size_t kKindCount = 15;
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kReconfigurationStart: return "reconfiguration-start";
    case EventKind::kReconfigurationComplete:
      return "reconfiguration-complete";
    case EventKind::kBootComplete: return "boot-complete";
    case EventKind::kShutdownComplete: return "shutdown-complete";
    case EventKind::kQosViolation: return "qos-violation";
    case EventKind::kMachineFailure: return "machine-failure";
    case EventKind::kMachineRepair: return "machine-repair";
    case EventKind::kGroupStrike: return "group-strike";
    case EventKind::kSpareProvision: return "spare-provision";
    case EventKind::kSpareRelease: return "spare-release";
    case EventKind::kPreemption: return "preemption";
    case EventKind::kOverloadEnter: return "overload-enter";
    case EventKind::kOverloadExit: return "overload-exit";
    case EventKind::kAppArrival: return "app-arrival";
    case EventKind::kAppDeparture: return "app-departure";
  }
  throw std::logic_error("to_string(EventKind): invalid kind");
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity), counts_(kKindCount, 0) {
  if (capacity_ == 0)
    throw std::invalid_argument("EventLog: capacity must be >= 1");
}

void EventLog::record(TimePoint time, EventKind kind, std::string detail) {
  ++counts_[static_cast<std::size_t>(kind)];
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(SimEvent{time, kind, std::move(detail)});
  } else {
    ring_[head_] = SimEvent{time, kind, std::move(detail)};
    head_ = (head_ + 1) % ring_.size();
  }
}

std::size_t EventLog::count(EventKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::string EventLog::to_csv() const {
  std::ostringstream os;
  os << "time,kind,detail\n";
  for (const SimEvent& e : events())
    os << e.time << ',' << to_string(e.kind) << ',' << e.detail << '\n';
  return os.str();
}

}  // namespace bml
