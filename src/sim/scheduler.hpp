// Scheduler interface.
//
// A Scheduler is consulted once per simulated second — except while a
// reconfiguration is in flight, matching the paper's "during the
// reconfiguration, no other decision can be made". It returns the machine
// combination the data center should converge to; returning the current
// target (or std::nullopt) means "no change".
#pragma once

#include <optional>
#include <string>

#include "core/combination.hpp"
#include "sim/cluster.hpp"
#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Desired combination at time `now`. `trace` carries the workload
  /// (oracle predictors read ahead; reactive ones must only read strictly
  /// before `now`). `snapshot` is the cluster's current aggregate state.
  [[nodiscard]] virtual std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) = 0;

  /// The combination the simulator should pre-warm at t = 0. Default: let
  /// the first decide() call boot everything from cold.
  [[nodiscard]] virtual Combination initial_combination(
      const LoadTrace& trace) {
    (void)trace;
    return Combination{};
  }

  /// First time strictly after `now` at which decide() may return a
  /// decision different from the one it returned at `now`, assuming the
  /// cluster state does not change in between (it cannot while no
  /// reconfiguration is in flight). The event-driven simulator batches
  /// idle seconds up to (exclusive) this bound instead of consulting every
  /// second. Schedulers whose decisions depend on per-call internal state
  /// (hysteresis, error-injected predictions) must keep the conservative
  /// default of now + 1, which degrades gracefully to per-second
  /// consultation.
  [[nodiscard]] virtual TimePoint decision_stable_until(
      TimePoint now, const LoadTrace& trace) {
    (void)trace;
    return now + 1;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace bml
