#include "sim/fault_timeline.hpp"

#include <algorithm>
#include <cmath>

namespace bml {

namespace {

/// Exponential draw with mean `mean`, quantised to whole seconds with a
/// 1 s floor — fault events must land on the 1 Hz grid both execution
/// strategies share, and a 0 s gap/repair would be degenerate. Clamped
/// far beyond any simulated horizon so the cast can never overflow.
TimePoint exponential_seconds(Rng& rng, Seconds mean) {
  const double u = rng.uniform(0.0, 1.0);  // in [0, 1), so 1 - u in (0, 1]
  const double draw = std::min(-mean * std::log(1.0 - u), 1.0e15);
  return std::max<TimePoint>(1, static_cast<TimePoint>(std::ceil(draw)));
}

}  // namespace

FaultTimeline::FaultTimeline(const FaultModel& model, std::size_t arch_kinds,
                             std::size_t domains) {
  crews_ = model.crews;
  if (!model.runtime_active()) return;
  streams_.reserve(domains * arch_kinds);
  for (std::size_t d = 0; d < domains; ++d)
    for (std::size_t a = 0; a < arch_kinds; ++a) {
      const Seconds mtbf = model.arch_mtbf(a);
      if (mtbf <= 0.0) continue;
      const auto key = static_cast<std::uint64_t>(d * arch_kinds + a + 1);
      Stream stream{Rng(model.seed + 0x9E3779B97F4A7C15ULL * key),
                    mtbf,
                    model.arch_mttr(a),
                    d,
                    a,
                    0,
                    0};
      advance(stream);
      streams_.push_back(std::move(stream));
    }
  if (model.group_active()) {
    const auto racks = static_cast<std::size_t>(model.groups);
    group_streams_.reserve(domains * racks);
    for (std::size_t d = 0; d < domains; ++d)
      for (std::size_t g = 0; g < racks; ++g) {
        const auto key = static_cast<std::uint64_t>(
            domains * arch_kinds + d * racks + g + 1);
        Stream stream{Rng(model.seed + 0x9E3779B97F4A7C15ULL * key),
                      model.group_mtbf,
                      model.group_mttr,
                      d,
                      g,
                      0,
                      0};
        advance(stream);
        group_streams_.push_back(std::move(stream));
      }
  }
}

void FaultTimeline::advance(Stream& stream) {
  stream.next_strike += exponential_seconds(stream.rng, stream.mtbf);
  stream.next_repair_duration = exponential_seconds(stream.rng, stream.mttr);
}

TimePoint FaultTimeline::next_strike_min() const {
  if (strike_dirty_) {
    TimePoint next = kNever;
    for (const Stream& stream : streams_)
      next = std::min(next, stream.next_strike);
    for (const Stream& stream : group_streams_)
      next = std::min(next, stream.next_strike);
    cached_strike_ = next;
    strike_dirty_ = false;
  }
  return cached_strike_;
}

TimePoint FaultTimeline::next_event() const {
  return std::min(next_repair(), next_strike_min());
}

std::optional<FaultEvent> FaultTimeline::pop(TimePoint now) {
  // Nothing due: the common per-span probe, answered from the cached
  // strike min and the sorted repair head without touching the streams.
  if (next_strike_min() > now && next_repair() > now) return std::nullopt;
  // Repairs win ties with failure strikes (a repaired machine still comes
  // back Off, so the order is conventional — what matters is that it is
  // fixed and shared by both execution strategies). Machine strikes win
  // ties with group strikes by the same convention.
  const bool repair_due = !repairs_.empty() && repairs_.front().time <= now;
  Stream* best = nullptr;
  bool best_group = false;
  for (Stream& stream : streams_) {
    if (stream.next_strike > now) continue;
    if (best == nullptr || stream.next_strike < best->next_strike) best = &stream;
    // Streams are scanned in (domain, arch) order, so on time ties the
    // first hit already is the canonical winner.
  }
  for (Stream& stream : group_streams_) {
    if (stream.next_strike > now) continue;
    if (best == nullptr || stream.next_strike < best->next_strike) {
      best = &stream;
      best_group = true;
    }
  }
  if (repair_due &&
      (best == nullptr || repairs_.front().time <= best->next_strike)) {
    const Repair repair = repairs_.front();
    repairs_.erase(repairs_.begin());
    // The completion frees a crew: the oldest waiter starts its repair at
    // this completion's timestamp (both strategies process the same
    // completion at the same instant, so the handoff is deterministic).
    if (!pending_.empty()) {
      const PendingRepair next = pending_.front();
      pending_.pop_front();
      insert_active(
          Repair{repair.time + next.duration, next.domain, next.arch, next.seq});
    }
    return FaultEvent{repair.time, repair.domain, repair.arch, true, 0};
  }
  if (best == nullptr) return std::nullopt;
  FaultEvent event{best->next_strike, best->domain, best->arch, false,
                   best->next_repair_duration};
  if (best_group) {
    event.group_strike = true;
    event.group = best->arch;
    event.arch = 0;
  }
  advance(*best);
  strike_dirty_ = true;
  return event;
}

void FaultTimeline::schedule_repair(TimePoint now, TimePoint duration,
                                    std::size_t domain, std::size_t arch) {
  const std::uint64_t seq = next_seq_++;
  if (crews_ > 0 && repairs_.size() >= static_cast<std::size_t>(crews_)) {
    pending_.push_back(PendingRepair{duration, domain, arch, seq});
    return;
  }
  insert_active(Repair{now + duration, domain, arch, seq});
}

void FaultTimeline::insert_active(const Repair& repair) {
  const auto pos = std::upper_bound(
      repairs_.begin(), repairs_.end(), repair, [](const Repair& x, const Repair& y) {
        if (x.time != y.time) return x.time < y.time;
        if (x.domain != y.domain) return x.domain < y.domain;
        if (x.arch != y.arch) return x.arch < y.arch;
        return x.seq < y.seq;
      });
  repairs_.insert(pos, repair);
}

}  // namespace bml
