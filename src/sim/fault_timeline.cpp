#include "sim/fault_timeline.hpp"

#include <algorithm>
#include <cmath>

namespace bml {

namespace {

/// Exponential draw with mean `mean`, quantised to whole seconds with a
/// 1 s floor — fault events must land on the 1 Hz grid both execution
/// strategies share, and a 0 s gap/repair would be degenerate. Clamped
/// far beyond any simulated horizon so the cast can never overflow.
TimePoint exponential_seconds(Rng& rng, Seconds mean) {
  const double u = rng.uniform(0.0, 1.0);  // in [0, 1), so 1 - u in (0, 1]
  const double draw = std::min(-mean * std::log(1.0 - u), 1.0e15);
  return std::max<TimePoint>(1, static_cast<TimePoint>(std::ceil(draw)));
}

}  // namespace

FaultTimeline::FaultTimeline(const FaultModel& model, std::size_t arch_kinds,
                             std::size_t domains) {
  if (!model.runtime_active()) return;
  streams_.reserve(domains * arch_kinds);
  for (std::size_t d = 0; d < domains; ++d)
    for (std::size_t a = 0; a < arch_kinds; ++a) {
      const Seconds mtbf = model.arch_mtbf(a);
      if (mtbf <= 0.0) continue;
      const auto key = static_cast<std::uint64_t>(d * arch_kinds + a + 1);
      Stream stream{Rng(model.seed + 0x9E3779B97F4A7C15ULL * key),
                    mtbf,
                    model.arch_mttr(a),
                    d,
                    a,
                    0,
                    0};
      advance(stream);
      streams_.push_back(std::move(stream));
    }
}

void FaultTimeline::advance(Stream& stream) {
  stream.next_strike += exponential_seconds(stream.rng, stream.mtbf);
  stream.next_repair_duration = exponential_seconds(stream.rng, stream.mttr);
}

TimePoint FaultTimeline::next_event() const {
  TimePoint next = repairs_.empty() ? kNever : repairs_.front().time;
  for (const Stream& stream : streams_)
    next = std::min(next, stream.next_strike);
  return next;
}

std::optional<FaultEvent> FaultTimeline::pop(TimePoint now) {
  // Repairs win ties with failure strikes (a repaired machine still comes
  // back Off, so the order is conventional — what matters is that it is
  // fixed and shared by both execution strategies).
  const bool repair_due = !repairs_.empty() && repairs_.front().time <= now;
  Stream* best = nullptr;
  for (Stream& stream : streams_) {
    if (stream.next_strike > now) continue;
    if (best == nullptr || stream.next_strike < best->next_strike) best = &stream;
    // Streams are scanned in (domain, arch) order, so on time ties the
    // first hit already is the canonical winner.
  }
  if (repair_due &&
      (best == nullptr || repairs_.front().time <= best->next_strike)) {
    const Repair repair = repairs_.front();
    repairs_.erase(repairs_.begin());
    return FaultEvent{repair.time, repair.domain, repair.arch, true, 0};
  }
  if (best == nullptr) return std::nullopt;
  const FaultEvent event{best->next_strike, best->domain, best->arch, false,
                         best->next_repair_duration};
  advance(*best);
  return event;
}

void FaultTimeline::schedule_repair(TimePoint completion, std::size_t domain,
                                    std::size_t arch) {
  const Repair repair{completion, domain, arch};
  const auto pos = std::upper_bound(
      repairs_.begin(), repairs_.end(), repair, [](const Repair& x, const Repair& y) {
        if (x.time != y.time) return x.time < y.time;
        if (x.domain != y.domain) return x.domain < y.domain;
        return x.arch < y.arch;
      });
  repairs_.insert(pos, repair);
}

}  // namespace bml
