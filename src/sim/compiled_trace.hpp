// Compiled traces: the run-length form the event-driven simulator walks.
//
// A LoadTrace answers point queries (`at`, `next_change`) in O(log
// #segments); that is fine for occasional lookups but the decision-granular
// simulator iterates *every* constant-value run of the trace inside each
// batched span. CompiledTrace materialises, once per trace, the
// piecewise-constant view as flat (start, value) arrays plus a cursor API
// so a monotone walk over the runs costs amortised O(1) per run — no
// binary searches, no virtual dispatch, no TimeSeries indirection in the
// hot loop.
//
// The compiled form is immutable and self-contained (values are copied),
// so one CompiledTrace can be shared across parallel_for sweep workers the
// same way DispatchPlan is; the sweep runner compiles shared traces once
// per sweep instead of once per scenario.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Immutable run-length (RLE) form of a LoadTrace.
class CompiledTrace {
 public:
  /// One maximal constant-value run; it covers [start, next segment's
  /// start) — the last segment runs to size().
  struct Segment {
    TimePoint start;
    ReqRate value;
  };

  /// The value at a time point together with the end of its constant run
  /// (`end` is the first strictly later time whose value differs;
  /// std::numeric_limits<TimePoint>::max() when the value holds forever).
  struct Run {
    ReqRate value;
    TimePoint end;
  };

  /// Walk state for run_at(); value-initialised cursors start at the
  /// front. One cursor per concurrent walker (cursors are cheap).
  struct Cursor {
    std::size_t seg = 0;
  };

  CompiledTrace() = default;
  /// Compiles `trace` (O(#segments), reusing the trace's change-point
  /// index). The compiled form does not reference the trace afterwards.
  explicit CompiledTrace(const LoadTrace& trace);

  /// Total trace length in seconds (== LoadTrace::size()).
  [[nodiscard]] TimePoint size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }

  /// Rate at `t`; 0 at or beyond the end (mirrors LoadTrace::at, values
  /// are bit-identical). O(log #segments).
  [[nodiscard]] ReqRate value_at(TimePoint t) const;

  /// First second after `t` whose value differs from value_at(t); same
  /// contract as LoadTrace::next_change (the implicit 0 beyond the end
  /// counts as a change unless the tail already holds 0, in which case the
  /// result is "never"). O(log #segments).
  [[nodiscard]] TimePoint next_change(TimePoint t) const;

  /// Value and run end at `t`, amortised O(1) across a walk with
  /// non-decreasing `t` (the cursor re-seats itself by binary search when
  /// `t` moved backwards). Throws std::invalid_argument on negative `t`.
  /// Inline: this is the event-driven simulator's innermost call, executed
  /// once per trace segment.
  [[nodiscard]] Run run_at(Cursor& cursor, TimePoint t) const {
    if (t < 0) throw_negative_time();
    if (t >= size_) return Run{0.0, kNeverChanges};
    if (cursor.seg >= segments_.size() || segments_[cursor.seg].start > t) {
      cursor.seg = segment_index(t);  // walked backwards (or stale cursor)
    } else {
      while (cursor.seg + 1 < segments_.size() &&
             segments_[cursor.seg + 1].start <= t)
        ++cursor.seg;
    }
    return Run{segments_[cursor.seg].value, run_end(cursor.seg)};
  }

 private:
  /// "The value holds forever" sentinel.
  static constexpr TimePoint kNeverChanges =
      std::numeric_limits<TimePoint>::max();

  [[noreturn]] static void throw_negative_time();

  /// Index of the segment containing `t` (requires 0 <= t < size_).
  [[nodiscard]] std::size_t segment_index(TimePoint t) const;

  /// End of segment `seg`'s constant run under the tail rule above.
  [[nodiscard]] TimePoint run_end(std::size_t seg) const {
    if (seg + 1 < segments_.size()) return segments_[seg + 1].start;
    // Last stored segment: beyond the end the trace serves the implicit 0,
    // which only counts as a change when the tail value is non-zero.
    return segments_[seg].value == 0.0 ? kNeverChanges : size_;
  }

  std::vector<Segment> segments_;
  TimePoint size_ = 0;
};

}  // namespace bml
