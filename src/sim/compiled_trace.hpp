// Compiled traces: the run-length form the event-driven simulator walks.
//
// A LoadTrace answers point queries (`at`, `next_change`) in O(log
// #segments); that is fine for occasional lookups but the decision-granular
// simulator iterates *every* constant-value run of the trace inside each
// batched span. CompiledTrace materialises, once per trace, the
// piecewise-constant view as flat arrays plus a cursor API so a monotone
// walk over the runs costs amortised O(1) per run — no binary searches, no
// virtual dispatch, no TimeSeries indirection in the hot loop.
//
// Layout: structure-of-arrays. Segment starts are implicit (segment i
// starts where segment i-1 ends, segment 0 at t=0); only the packed
// 32-bit *end* times and the values are stored. The k-way merge in the
// multi-app fast path advances a frontier of per-app cursors by comparing
// run ends, so the comparison stream it walks is 4 bytes per segment
// instead of the 16-byte (start, value) pairs of the old
// array-of-structs form. Values stay full doubles: per-app energy and
// QoS integrals must be bit-identical to the per-second reference, which
// rules out quantising the loads (block compression of the value stream
// remains future work — see ROADMAP).
//
// The compiled form is immutable and self-contained (values are copied),
// so one CompiledTrace can be shared across parallel_for sweep workers the
// same way DispatchPlan is; the sweep runner compiles shared traces once
// per sweep instead of once per scenario.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Immutable run-length (RLE) form of a LoadTrace.
class CompiledTrace {
 public:
  /// The value at a time point together with the end of its constant run
  /// (`end` is the first strictly later time whose value differs;
  /// std::numeric_limits<TimePoint>::max() when the value holds forever).
  struct Run {
    ReqRate value;
    TimePoint end;
  };

  /// Walk state for run_at(); value-initialised cursors start at the
  /// front. One cursor per concurrent walker (cursors are cheap).
  struct Cursor {
    std::size_t seg = 0;
  };

  CompiledTrace() = default;
  /// Compiles `trace` (O(#segments), reusing the trace's change-point
  /// index). The compiled form does not reference the trace afterwards.
  /// Throws std::invalid_argument when the trace is too long for the
  /// packed 32-bit end times (>= 2^32 - 1 seconds, i.e. ~136 years).
  explicit CompiledTrace(const LoadTrace& trace);

  /// Total trace length in seconds (== LoadTrace::size()).
  [[nodiscard]] TimePoint size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t segment_count() const { return values_.size(); }

  /// SoA views: segment i covers [segment_start(i), ends()[i]) with value
  /// values()[i]. The last entry of ends() is the packed form of the tail
  /// rule (kEndSentinel when the tail value is 0 and thus holds forever).
  [[nodiscard]] const std::vector<std::uint32_t>& ends() const {
    return ends_;
  }
  [[nodiscard]] const std::vector<ReqRate>& values() const { return values_; }
  [[nodiscard]] TimePoint segment_start(std::size_t seg) const {
    return seg == 0 ? 0 : static_cast<TimePoint>(ends_[seg - 1]);
  }

  /// Packed "holds forever" marker in ends() (maps to the TimePoint
  /// never-changes sentinel in Run::end).
  static constexpr std::uint32_t kEndSentinel =
      std::numeric_limits<std::uint32_t>::max();

  /// Rate at `t`; 0 at or beyond the end (mirrors LoadTrace::at, values
  /// are bit-identical). O(log #segments).
  [[nodiscard]] ReqRate value_at(TimePoint t) const;

  /// First second after `t` whose value differs from value_at(t); same
  /// contract as LoadTrace::next_change (the implicit 0 beyond the end
  /// counts as a change unless the tail already holds 0, in which case the
  /// result is "never"). O(log #segments).
  [[nodiscard]] TimePoint next_change(TimePoint t) const;

  /// Value and run end at `t`, amortised O(1) across a walk with
  /// non-decreasing `t` (the cursor re-seats itself by binary search when
  /// `t` moved backwards). Throws std::invalid_argument on negative `t`.
  /// Inline: this is the event-driven simulator's innermost call, executed
  /// once per trace segment.
  [[nodiscard]] Run run_at(Cursor& cursor, TimePoint t) const {
    if (t < 0) throw_negative_time();
    if (t >= size_) return Run{0.0, kNeverChanges};
    const std::uint32_t tt = static_cast<std::uint32_t>(t);
    if (cursor.seg >= values_.size() || segment_start(cursor.seg) > t) {
      cursor.seg = segment_index(t);  // walked backwards (or stale cursor)
    } else {
      while (cursor.seg + 1 < values_.size() && ends_[cursor.seg] <= tt)
        ++cursor.seg;
    }
    return Run{values_[cursor.seg], run_end(cursor.seg)};
  }

 private:
  /// "The value holds forever" sentinel.
  static constexpr TimePoint kNeverChanges =
      std::numeric_limits<TimePoint>::max();

  [[noreturn]] static void throw_negative_time();

  /// Index of the segment containing `t` (requires 0 <= t < size_).
  [[nodiscard]] std::size_t segment_index(TimePoint t) const;

  /// End of segment `seg`'s constant run (unpacks the tail sentinel).
  [[nodiscard]] TimePoint run_end(std::size_t seg) const {
    const std::uint32_t end = ends_[seg];
    return end == kEndSentinel ? kNeverChanges : static_cast<TimePoint>(end);
  }

  /// Packed run ends; ends_[i] is segment i+1's start for i < n-1, and the
  /// tail rule for the last segment (size_, or kEndSentinel when the tail
  /// value is 0). Monotone non-decreasing, so segment_index can
  /// binary-search it directly.
  std::vector<std::uint32_t> ends_;
  /// Per-segment values, parallel to ends_.
  std::vector<ReqRate> values_;
  TimePoint size_ = 0;
};

}  // namespace bml
