#include "sim/machine.hpp"

#include <stdexcept>

namespace bml {

const char* to_string(MachineState state) {
  switch (state) {
    case MachineState::kOff: return "Off";
    case MachineState::kBooting: return "Booting";
    case MachineState::kOn: return "On";
    case MachineState::kShuttingDown: return "ShuttingDown";
    case MachineState::kFailed: return "Failed";
  }
  throw std::logic_error("to_string(MachineState): invalid state");
}

SimMachine::SimMachine(std::size_t arch_index, MachineState initial)
    : arch_(arch_index), state_(initial) {
  if (initial != MachineState::kOff && initial != MachineState::kOn)
    throw std::invalid_argument(
        "SimMachine: initial state must be Off or On");
}

void SimMachine::request_on(const ArchitectureProfile& profile,
                            Seconds duration_override) {
  if (state_ != MachineState::kOff)
    throw std::logic_error("SimMachine: request_on requires Off state");
  const Seconds duration = duration_override >= 0.0
                               ? duration_override
                               : profile.on_cost().duration;
  if (duration <= 0.0) {
    state_ = MachineState::kOn;
    remaining_ = 0.0;
    return;
  }
  state_ = MachineState::kBooting;
  remaining_ = duration;
}

void SimMachine::request_off(const ArchitectureProfile& profile) {
  if (state_ != MachineState::kOn)
    throw std::logic_error("SimMachine: request_off requires On state");
  if (profile.off_cost().duration <= 0.0) {
    state_ = MachineState::kOff;
    remaining_ = 0.0;
    return;
  }
  state_ = MachineState::kShuttingDown;
  remaining_ = profile.off_cost().duration;
}

void SimMachine::fail() {
  if (state_ != MachineState::kOn)
    throw std::logic_error("SimMachine: fail requires On state");
  state_ = MachineState::kFailed;
  remaining_ = 0.0;
}

void SimMachine::repair() {
  if (state_ != MachineState::kFailed)
    throw std::logic_error("SimMachine: repair requires Failed state");
  state_ = MachineState::kOff;
  remaining_ = 0.0;
}

Watts SimMachine::transition_power(const ArchitectureProfile& profile) const {
  switch (state_) {
    case MachineState::kBooting:
      return profile.on_cost().average_power();
    case MachineState::kShuttingDown:
      return profile.off_cost().average_power();
    case MachineState::kOff:
    case MachineState::kOn:
    case MachineState::kFailed:  // dead machines draw nothing
      return 0.0;
  }
  return 0.0;
}

bool SimMachine::step(Seconds dt) {
  if (dt <= 0.0) throw std::invalid_argument("SimMachine: dt must be > 0");
  if (state_ == MachineState::kOff || state_ == MachineState::kOn ||
      state_ == MachineState::kFailed)
    return false;
  remaining_ -= dt;
  if (remaining_ > 1e-9) return false;
  remaining_ = 0.0;
  state_ = state_ == MachineState::kBooting ? MachineState::kOn
                                            : MachineState::kOff;
  return true;
}

}  // namespace bml
