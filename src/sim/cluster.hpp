// The simulated heterogeneous cluster.
//
// Machines are interchangeable within an architecture (the paper's "enough
// machines of each type are available"), so steady state is carried as
// per-architecture *counts* — On, parked (Off), Failed — with no
// per-machine objects at all. Only machines in transition materialise
// state: each switch-on/off batch becomes one (or a few) Transition
// records holding the shared remaining time and a count, so a 10^5-machine
// fleet steps in O(#in-flight batches), not O(#machines). The count
// bookkeeping is bit-identical to stepping individual machine FSMs: every
// machine of a batch shares the same remaining-time arithmetic, and the
// boot-fault RNG is still drawn once per machine in the same order (draws
// that happen to coincide coalesce into one record). Exposes the
// switch-on/off commands the schedulers issue, per-second stepping, load
// dispatch over the On machines, and aggregate state snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "core/dispatch_plan.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bml {

/// Fault injection, two independent channels sharing one seed:
///
///   * boot path — real machines do not boot in exactly the profiled time,
///     and sometimes a boot fails and is retried. Durations are multiplied
///     by max(0.25, 1 + N(0, jitter)); with probability `boot_failure_prob`
///     one extra nominal boot duration is added (the retry).
///
///   * runtime crash/repair — machines that are On can crash and be
///     repaired. Each (fault domain, architecture) pair runs its own
///     renewal process: failure strikes arrive with exponential
///     inter-arrival times of mean `mtbf` seconds, each paired with an
///     exponential repair duration of mean `mttr` seconds (both quantised
///     to whole seconds, minimum 1 s). A strike fells one On machine of
///     that architecture in that domain (On -> Failed: it stops serving
///     and draws no power); strikes that find no machine to kill are
///     dropped. Repairs return the machine to Off. The strike timeline is
///     drawn independently of cluster state, so the process is
///     deterministic per seed regardless of execution strategy or sweep
///     thread count (see sim/fault_timeline.hpp, which owns the clocks —
///     the Cluster only applies fail/repair transitions).
///
///     Correlated (group) strikes extend the channel with failure-domain
///     topology: each fault domain's machines are striped round-robin
///     across `groups` racks / power domains, and each (domain, rack)
///     pair runs its own renewal process of mean `group_mtbf` — one
///     strike fells *every* On machine in the struck rack in one event
///     (repair durations of mean `group_mttr`, one draw per strike,
///     shared by all its casualties). Repairs draw from a workforce of
///     `crews` concurrent repair crews (FIFO, deterministic tie-break);
///     crews = 0 means unlimited (every repair proceeds in parallel).
///
/// Per-arch overrides replace the scalar means for the architectures they
/// name (catalog order, <= 0 entries fall back to the scalar).
/// Deterministic per seed.
struct FaultModel {
  double boot_time_jitter = 0.0;
  double boot_failure_prob = 0.0;
  /// Mean seconds between runtime failure strikes per fault domain per
  /// architecture; 0 disables runtime faults.
  Seconds mtbf = 0.0;
  /// Mean repair duration in seconds (0 = minimum 1 s repairs).
  Seconds mttr = 0.0;
  /// Optional per-architecture overrides, indexed in catalog order; <= 0
  /// (or missing) entries use the scalars above.
  std::vector<Seconds> mtbf_per_arch;
  std::vector<Seconds> mttr_per_arch;
  /// Correlated-strike topology: racks per fault domain (0 disables the
  /// group channel), mean seconds between strikes per (domain, rack), and
  /// mean repair duration of each strike's casualties.
  int groups = 0;
  Seconds group_mtbf = 0.0;
  Seconds group_mttr = 0.0;
  /// Concurrent repair crews shared by all repairs; 0 = unlimited.
  int crews = 0;
  std::uint64_t seed = 1;

  /// Boot-path channel enabled?
  [[nodiscard]] bool active() const {
    return boot_time_jitter > 0.0 || boot_failure_prob > 0.0;
  }

  /// Correlated (rack-level) strike channel enabled?
  [[nodiscard]] bool group_active() const {
    return groups > 0 && group_mtbf > 0.0;
  }

  /// Runtime crash/repair channel enabled?
  [[nodiscard]] bool runtime_active() const {
    if (mtbf > 0.0 || group_active()) return true;
    for (Seconds m : mtbf_per_arch)
      if (m > 0.0) return true;
    return false;
  }

  /// Effective per-arch means (override, else scalar).
  [[nodiscard]] Seconds arch_mtbf(std::size_t arch) const {
    return arch < mtbf_per_arch.size() && mtbf_per_arch[arch] > 0.0
               ? mtbf_per_arch[arch]
               : mtbf;
  }
  [[nodiscard]] Seconds arch_mttr(std::size_t arch) const {
    return arch < mttr_per_arch.size() && mttr_per_arch[arch] > 0.0
               ? mttr_per_arch[arch]
               : mttr;
  }
};

/// Degraded-mode serving: when offered load exceeds the On fleet's rated
/// capacity (failures, budget clamps), the surviving machines absorb
/// spill-over above their rating at a contention penalty instead of
/// dropping it outright. For load L against rated capacity C:
///
///   absorbed  = min(L - C, C * overload_factor)   (the spill taken on)
///   effective = C + absorbed * (1 - penalty)      (capacity QoS sees)
///   lost      = absorbed * penalty                (req/s lost to contention)
///
/// Served capacity saturates smoothly at C * (1 + overload_factor *
/// (1 - penalty)) instead of cliff-dropping at C. Power is unaffected —
/// the fleet power curve already saturates at rated capacity; the penalty
/// is capacity-side only. Disabled (overload_factor == 0) runs are
/// byte-identical to a build without this struct.
struct DegradeModel {
  /// Fraction of rated capacity the On fleet absorbs above its rating;
  /// 0 disables degraded-mode serving.
  double overload_factor = 0.0;
  /// Fraction of the absorbed spill-over lost to contention, in [0, 1].
  double penalty = 0.5;

  [[nodiscard]] bool enabled() const { return overload_factor > 0.0; }
};

/// Aggregate machine counts by state, one Combination per state.
struct ClusterSnapshot {
  Combination on;
  Combination booting;
  Combination shutting_down;
  /// Machines felled by runtime faults, awaiting repair.
  Combination failed;
  /// Serving capacity of the On machines, req/s.
  ReqRate on_capacity = 0.0;
};

/// Per-second electrical totals returned by Cluster::step_power.
struct ClusterPower {
  /// Idle + load power of On machines (compute channel).
  Watts compute = 0.0;
  /// Boot/shutdown power of transitioning machines (reconfiguration channel).
  Watts transition = 0.0;
};

class Cluster {
 public:
  /// `candidates` is the sorted candidate catalog the combinations index
  /// into; `initial` machines start On (pre-warmed). `faults` enables boot
  /// fault injection. `plan` is an optional precompiled dispatch plan for
  /// the same catalog (shared across clusters / workers); when null the
  /// cluster compiles its own.
  explicit Cluster(Catalog candidates, const Combination& initial = {},
                   FaultModel faults = {},
                   std::shared_ptr<const DispatchPlan> plan = nullptr);

  [[nodiscard]] const Catalog& candidates() const { return candidates_; }

  /// Starts booting `n` machines of architecture `arch`, reusing Off
  /// machines before provisioning new ones.
  void switch_on(std::size_t arch, int n);

  /// Starts shutting down `n` On machines of architecture `arch`. Throws
  /// std::logic_error when fewer than `n` are On.
  void switch_off(std::size_t arch, int n);

  /// Runtime fault: fells one On machine of `arch` (On -> Failed — it
  /// stops serving and draws no power until repaired). Returns false when
  /// no machine of that architecture is On. The repair clock lives in the
  /// caller's fault timeline; repair_one applies the completed repair.
  bool fail_one(std::size_t arch);

  /// Completes a repair: one Failed machine of `arch` goes Off (and back
  /// onto the reuse free list). Throws std::logic_error when none is
  /// Failed.
  void repair_one(std::size_t arch);

  /// On machines of one architecture (the fault path's cheap gate; the
  /// full per-state picture is snapshot()).
  [[nodiscard]] int on_count(std::size_t arch) const { return on_.at(arch); }

  /// Machines of one architecture currently booting — the settle/restore
  /// helpers need single states, not a full snapshot.
  [[nodiscard]] int booting_count(std::size_t arch) const {
    return booting_.at(arch);
  }

  /// Machines currently booting / shutting down, all architectures.
  [[nodiscard]] int booting_total() const;
  [[nodiscard]] int shutting_down_total() const;

  /// Machines currently Failed, all architectures.
  [[nodiscard]] int failed_count() const;

  /// Current counts per state.
  [[nodiscard]] ClusterSnapshot snapshot() const;

  /// As snapshot(), into a caller-owned buffer (reuses the Combinations'
  /// storage — the simulator refreshes one snapshot per decision point, so
  /// fleet-scale runs must not allocate four vectors each time).
  void snapshot_into(ClusterSnapshot& snap) const;

  /// True while any machine is booting or shutting down.
  [[nodiscard]] bool transitioning() const;

  /// Serving capacity of On machines, req/s.
  [[nodiscard]] ReqRate on_capacity() const;

  /// Electrical power for this second given offered `load` (dispatched
  /// optimally over On machines; see core/combination.hpp) plus transition
  /// power. Load beyond capacity is dropped by the dispatcher.
  [[nodiscard]] ClusterPower step_power(ReqRate load) const;

  /// The two step_power channels separately — for span loops over a fixed
  /// fleet, where the transition component is constant and only the
  /// load-dependent compute component needs re-evaluating per trace run.
  [[nodiscard]] Watts compute_power(ReqRate load) const;
  [[nodiscard]] Watts transition_power() const;

  /// Compiles the current On fleet into `out` (see FleetPowerCurve):
  /// out.power_at(load) matches compute_power(load) within a few ulp
  /// while the fleet does not change. `out` borrows the cluster's
  /// dispatch plan.
  void compile_power_curve(FleetPowerCurve& out) const;

  /// Splits the On capacity across colocated workloads: `loads` are the
  /// per-app offered rates, `total` their sum, and `alloc` (resized)
  /// receives each app's capacity allocation. Capacity is divided
  /// load-proportionally — when the cluster is overloaded every app's
  /// shortfall is proportional to its demand — and equally when no load is
  /// offered. A single workload is allocated the whole capacity exactly
  /// (load / total == 1.0), which the multi-workload simulator's
  /// single-app regression pin relies on.
  void split_capacity(const std::vector<ReqRate>& loads, ReqRate total,
                      std::vector<ReqRate>& alloc) const;

  /// The split rule itself with the capacity supplied by the caller — the
  /// simulator hoists on_capacity() out of fixed-fleet span loops. The
  /// member overload above delegates here, so the policy has one copy.
  static void split_capacity(const std::vector<ReqRate>& loads, ReqRate total,
                             ReqRate capacity, std::vector<ReqRate>& alloc);

  /// Advances all machines `dt` seconds; returns the number of transitions
  /// that completed. Multi-second steps are exact: each machine's remaining
  /// time is decremented once, which matches repeated 1 s steps bit-for-bit
  /// as long as no intermediate completion is skipped (callers bound `dt`
  /// by next_transition_remaining()).
  int step(Seconds dt = 1.0);

  /// Smallest remaining transition time among booting / shutting-down
  /// machines; a negative value when none are transitioning. The number of
  /// whole seconds a per-second stepper runs before the first completion is
  /// ceil(next_transition_remaining() - 1e-9). O(1): the minimum is
  /// maintained incrementally by switch_on / switch_off / step instead of
  /// scanning the fleet — this runs on every fast-path span.
  [[nodiscard]] Seconds next_transition_remaining() const {
    return next_transition_min_;
  }

  /// Total machines ever provisioned (for reporting).
  [[nodiscard]] std::size_t machine_count() const { return provisioned_; }

 private:
  /// One batch of machines sharing a transition: `count` machines of
  /// `arch` with the same remaining time, booting or shutting down. Every
  /// member's remaining-time arithmetic is identical, so stepping the
  /// record once is bit-for-bit the same as stepping `count` machine FSMs.
  struct Transition {
    Seconds remaining = 0.0;
    int count = 0;
    std::uint32_t arch = 0;
    bool booting = false;
  };

  [[nodiscard]] Seconds boot_duration(std::size_t arch);
  /// Folds a newly started transition into next_transition_min_.
  void note_transition(Seconds remaining);

  Catalog candidates_;
  std::shared_ptr<const DispatchPlan> plan_;
  FaultModel faults_;
  std::optional<Rng> fault_rng_;
  // Steady state as per-architecture counts (machines are interchangeable
  // within an arch, so identity-free bookkeeping loses nothing): On,
  // Booting / ShuttingDown (mirrors of the transition records, so
  // snapshots stay O(#architectures)), Failed, and parked Off machines
  // available for switch_on reuse.
  std::vector<int> on_;
  std::vector<int> booting_;
  std::vector<int> shutting_;
  std::vector<int> failed_;
  std::vector<int> parked_;
  // Machines ever provisioned (high-water bookkeeping for reporting;
  // switch_on draws down parked_ before growing this).
  std::size_t provisioned_ = 0;
  // In-flight transition batches; empty whenever nothing transitions.
  std::vector<Transition> transitions_;
  // Smallest remaining among transitions_, -1 when none — kept in sync by
  // switch_on/switch_off (new records) and step (uniform decrement +
  // completions, recomputed inside the existing record loop).
  Seconds next_transition_min_ = -1.0;
};

}  // namespace bml
