// Quality-of-service accounting.
//
// The paper requires the reconfiguration policy to "satisfy QoS
// constraints": the On capacity must cover the offered load. QosTracker
// integrates every second's shortfall so experiments can report how close a
// policy sails to violation, and the application-class extension (critical
// vs tolerant, Section III) scales the capacity requirement by a headroom
// factor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace bml {

/// One constant-load run of a piecewise-constant span (see
/// QosTracker::record_runs).
struct LoadRun {
  ReqRate load = 0.0;
  std::int64_t seconds = 0;
};

/// Aggregated totals of one span, accumulated by a caller that fused the
/// per-run QoS arithmetic into its own segment walk (the event-driven
/// simulator's single-workload fast path). Fields mirror what
/// record_runs would have accumulated for the same runs.
struct QosSpanTotals {
  std::int64_t seconds = 0;
  std::int64_t violation_seconds = 0;
  double offered = 0.0;
  double unserved = 0.0;
  ReqRate worst_shortfall = 0.0;
};

/// Application QoS classes from Section III of the paper.
enum class QosClass {
  kCritical,  // strict performance requirements (banking, medical)
  kTolerant,  // soft requirements (enterprise services, flexible deadlines)
};

/// Capacity headroom demanded by a QoS class: critical applications keep a
/// safety margin above the instantaneous load; tolerant ones accept running
/// at the edge.
[[nodiscard]] double headroom_factor(QosClass qos);

/// Parses a QoS class name (`tolerant` | `critical`) — the single
/// validation point for every spec layer; throws std::runtime_error
/// naming the accepted values otherwise.
[[nodiscard]] QosClass parse_qos_class(const std::string& name);

/// Aggregated QoS statistics over a simulation.
struct QosStats {
  /// Seconds during which load exceeded On capacity.
  std::int64_t violation_seconds = 0;
  /// Integral of (load - capacity)+ over time: dropped request-seconds.
  double unserved_requests = 0.0;
  /// Integral of offered load (total requests).
  double offered_requests = 0.0;
  /// Largest single-second shortfall observed (req/s).
  ReqRate worst_shortfall = 0.0;
  /// Total simulated seconds.
  std::int64_t total_seconds = 0;

  /// Fraction of offered requests actually served, in [0, 1]; 1 when no
  /// load was offered.
  [[nodiscard]] double served_fraction() const {
    if (offered_requests <= 0.0) return 1.0;
    return 1.0 - unserved_requests / offered_requests;
  }

  /// Fraction of seconds without violation, in [0, 1].
  [[nodiscard]] double availability() const {
    if (total_seconds == 0) return 1.0;
    return 1.0 - static_cast<double>(violation_seconds) /
                     static_cast<double>(total_seconds);
  }
};

/// Per-second accumulator for QosStats.
class QosTracker {
 public:
  /// Records one second with `load` offered and `capacity` available.
  void record(ReqRate load, ReqRate capacity);

  /// Records `seconds` consecutive seconds with constant load and capacity
  /// in closed form — the event-driven simulator's batch path. Counters
  /// match `seconds` repeated record() calls (up to floating-point
  /// summation order on the request integrals). Inline: the multi-app
  /// fast path calls this once per app per trace sub-run.
  void record_span(ReqRate load, ReqRate capacity, std::int64_t seconds) {
    if (load < 0.0 || capacity < 0.0)
      throw std::invalid_argument("QosTracker: negative load or capacity");
    if (seconds < 0) throw std::invalid_argument("QosTracker: negative span");
    if (seconds == 0) return;
    stats_.total_seconds += seconds;
    stats_.offered_requests += load * static_cast<double>(seconds);
    const double shortfall = load - capacity;
    if (shortfall > 0.0) {
      stats_.violation_seconds += seconds;
      stats_.unserved_requests += shortfall * static_cast<double>(seconds);
      stats_.worst_shortfall = std::max(stats_.worst_shortfall, shortfall);
    }
  }

  /// Piecewise-constant span kernel: records every run of `runs` against a
  /// constant `capacity` in one call — the varying-load counterpart of
  /// record_span for spans where the fleet is fixed but the trace is not.
  /// Accumulates locally and flushes once (this runs once per event-driven
  /// span with one entry per trace segment). Integer counters are exact;
  /// request integrals match per-second recording up to floating-point
  /// summation order.
  ///
  /// `runs` is any range whose elements expose `load` and `seconds`
  /// members — LoadRun is the canonical element; the simulator passes its
  /// fused per-segment scratch rows directly so this loop inlines into
  /// the span walk.
  template <typename Runs>
  void record_runs(const Runs& runs, ReqRate capacity) {
    if (capacity < 0.0)
      throw std::invalid_argument("QosTracker: negative load or capacity");
    std::int64_t total = 0;
    std::int64_t violation = 0;
    double offered = 0.0;
    double unserved = 0.0;
    ReqRate worst = 0.0;
    for (const auto& run : runs) {
      if (run.load < 0.0)
        throw std::invalid_argument("QosTracker: negative load or capacity");
      if (run.seconds < 0)
        throw std::invalid_argument("QosTracker: negative span");
      if (run.seconds == 0) continue;  // a 0 s run must not touch worst_
      total += run.seconds;
      offered += run.load * static_cast<double>(run.seconds);
      const double shortfall = run.load - capacity;
      if (shortfall > 0.0) {
        violation += run.seconds;
        unserved += shortfall * static_cast<double>(run.seconds);
        if (shortfall > worst) worst = shortfall;
      }
    }
    stats_.total_seconds += total;
    stats_.violation_seconds += violation;
    stats_.offered_requests += offered;
    stats_.unserved_requests += unserved;
    stats_.worst_shortfall = std::max(stats_.worst_shortfall, worst);
  }

  /// As record_runs with a *per-run* capacity: elements additionally
  /// expose a `cap` member — the effective serving capacity of that run.
  /// Degraded-mode spans go through this kernel, because the spill-over
  /// absorbed above rated capacity (and hence the capacity QoS is scored
  /// against) varies with each sub-run's load.
  template <typename Runs>
  void record_runs_var(const Runs& runs) {
    std::int64_t total = 0;
    std::int64_t violation = 0;
    double offered = 0.0;
    double unserved = 0.0;
    ReqRate worst = 0.0;
    for (const auto& run : runs) {
      if (run.load < 0.0 || run.cap < 0.0)
        throw std::invalid_argument("QosTracker: negative load or capacity");
      if (run.seconds < 0)
        throw std::invalid_argument("QosTracker: negative span");
      if (run.seconds == 0) continue;  // a 0 s run must not touch worst_
      total += run.seconds;
      offered += run.load * static_cast<double>(run.seconds);
      const double shortfall = run.load - run.cap;
      if (shortfall > 0.0) {
        violation += run.seconds;
        unserved += shortfall * static_cast<double>(run.seconds);
        if (shortfall > worst) worst = shortfall;
      }
    }
    stats_.total_seconds += total;
    stats_.violation_seconds += violation;
    stats_.offered_requests += offered;
    stats_.unserved_requests += unserved;
    stats_.worst_shortfall = std::max(stats_.worst_shortfall, worst);
  }

  /// Folds caller-accumulated span totals in (the fully fused counterpart
  /// of record_runs — see QosSpanTotals).
  void record_totals(const QosSpanTotals& totals) {
    stats_.total_seconds += totals.seconds;
    stats_.violation_seconds += totals.violation_seconds;
    stats_.offered_requests += totals.offered;
    stats_.unserved_requests += totals.unserved;
    stats_.worst_shortfall =
        std::max(stats_.worst_shortfall, totals.worst_shortfall);
  }

  [[nodiscard]] const QosStats& stats() const { return stats_; }

 private:
  QosStats stats_;
};

}  // namespace bml
