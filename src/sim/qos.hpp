// Quality-of-service accounting.
//
// The paper requires the reconfiguration policy to "satisfy QoS
// constraints": the On capacity must cover the offered load. QosTracker
// integrates every second's shortfall so experiments can report how close a
// policy sails to violation, and the application-class extension (critical
// vs tolerant, Section III) scales the capacity requirement by a headroom
// factor.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace bml {

/// Application QoS classes from Section III of the paper.
enum class QosClass {
  kCritical,  // strict performance requirements (banking, medical)
  kTolerant,  // soft requirements (enterprise services, flexible deadlines)
};

/// Capacity headroom demanded by a QoS class: critical applications keep a
/// safety margin above the instantaneous load; tolerant ones accept running
/// at the edge.
[[nodiscard]] double headroom_factor(QosClass qos);

/// Parses a QoS class name (`tolerant` | `critical`) — the single
/// validation point for every spec layer; throws std::runtime_error
/// naming the accepted values otherwise.
[[nodiscard]] QosClass parse_qos_class(const std::string& name);

/// Aggregated QoS statistics over a simulation.
struct QosStats {
  /// Seconds during which load exceeded On capacity.
  std::int64_t violation_seconds = 0;
  /// Integral of (load - capacity)+ over time: dropped request-seconds.
  double unserved_requests = 0.0;
  /// Integral of offered load (total requests).
  double offered_requests = 0.0;
  /// Largest single-second shortfall observed (req/s).
  ReqRate worst_shortfall = 0.0;
  /// Total simulated seconds.
  std::int64_t total_seconds = 0;

  /// Fraction of offered requests actually served, in [0, 1]; 1 when no
  /// load was offered.
  [[nodiscard]] double served_fraction() const {
    if (offered_requests <= 0.0) return 1.0;
    return 1.0 - unserved_requests / offered_requests;
  }

  /// Fraction of seconds without violation, in [0, 1].
  [[nodiscard]] double availability() const {
    if (total_seconds == 0) return 1.0;
    return 1.0 - static_cast<double>(violation_seconds) /
                     static_cast<double>(total_seconds);
  }
};

/// Per-second accumulator for QosStats.
class QosTracker {
 public:
  /// Records one second with `load` offered and `capacity` available.
  void record(ReqRate load, ReqRate capacity);

  /// Records `seconds` consecutive seconds with constant load and capacity
  /// in closed form — the event-driven simulator's batch path. Counters
  /// match `seconds` repeated record() calls (up to floating-point
  /// summation order on the request integrals).
  void record_span(ReqRate load, ReqRate capacity, std::int64_t seconds);

  [[nodiscard]] const QosStats& stats() const { return stats_; }

 private:
  QosStats stats_;
};

}  // namespace bml
