#include "sim/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

Cluster::Cluster(Catalog candidates, const Combination& initial,
                 FaultModel faults, std::shared_ptr<const DispatchPlan> plan)
    : candidates_(std::move(candidates)),
      plan_(std::move(plan)),
      faults_(faults) {
  if (candidates_.empty())
    throw std::invalid_argument("Cluster: empty candidate catalog");
  if (!plan_) plan_ = std::make_shared<DispatchPlan>(candidates_);
  if (plan_->arch_kinds() != candidates_.size())
    throw std::invalid_argument("Cluster: plan does not match catalog");
  if (faults_.boot_time_jitter < 0.0 || faults_.boot_failure_prob < 0.0 ||
      faults_.boot_failure_prob > 1.0 || faults_.mtbf < 0.0 ||
      faults_.mttr < 0.0 || faults_.groups < 0 || faults_.group_mtbf < 0.0 ||
      faults_.group_mttr < 0.0 || faults_.crews < 0)
    throw std::invalid_argument("Cluster: invalid fault model");
  if (faults_.mtbf_per_arch.size() > candidates_.size() ||
      faults_.mttr_per_arch.size() > candidates_.size())
    throw std::invalid_argument(
        "Cluster: per-arch fault overrides wider than the catalog");
  for (Seconds m : faults_.mtbf_per_arch)
    if (m < 0.0) throw std::invalid_argument("Cluster: invalid fault model");
  for (Seconds m : faults_.mttr_per_arch)
    if (m < 0.0) throw std::invalid_argument("Cluster: invalid fault model");
  if (faults_.active()) fault_rng_.emplace(faults_.seed);
  if (initial.counts().size() > candidates_.size())
    throw std::invalid_argument("Cluster: initial combination too wide");
  on_.assign(candidates_.size(), 0);
  booting_.assign(candidates_.size(), 0);
  shutting_.assign(candidates_.size(), 0);
  failed_.assign(candidates_.size(), 0);
  off_free_.assign(candidates_.size(), {});
  for (std::size_t arch = 0; arch < initial.counts().size(); ++arch)
    for (int i = 0; i < initial.counts()[arch]; ++i) {
      machines_.emplace_back(arch, MachineState::kOn);
      ++on_[arch];
    }
}

Seconds Cluster::boot_duration(std::size_t arch) {
  const Seconds nominal = candidates_[arch].on_cost().duration;
  if (!fault_rng_.has_value()) return -1.0;  // use the profile value
  double duration = nominal;
  if (faults_.boot_time_jitter > 0.0)
    duration *= std::max(
        0.25, 1.0 + fault_rng_->normal(0.0, faults_.boot_time_jitter));
  if (faults_.boot_failure_prob > 0.0 &&
      fault_rng_->chance(faults_.boot_failure_prob))
    duration += nominal;  // one failed attempt, then the retry succeeds
  return duration;
}

void Cluster::note_transition(Seconds remaining) {
  if (next_transition_min_ < 0.0 || remaining < next_transition_min_)
    next_transition_min_ = remaining;
}

void Cluster::switch_on(std::size_t arch, int n) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (n < 0) throw std::invalid_argument("Cluster: n must be >= 0");
  int remaining = n;
  std::vector<std::size_t>& parked = off_free_[arch];
  while (remaining > 0 && !parked.empty()) {
    SimMachine& m = machines_[parked.back()];
    parked.pop_back();
    m.request_on(candidates_[arch], boot_duration(arch));
    --remaining;
    if (m.state() == MachineState::kOn) {
      ++on_[arch];  // zero-duration boot
    } else {
      ++booting_[arch];
      note_transition(m.transition_remaining());
    }
  }
  while (remaining-- > 0) {
    machines_.emplace_back(arch, MachineState::kOff);
    machines_.back().request_on(candidates_[arch], boot_duration(arch));
    if (machines_.back().state() == MachineState::kOn) {
      ++on_[arch];
    } else {
      ++booting_[arch];
      note_transition(machines_.back().transition_remaining());
    }
  }
}

void Cluster::switch_off(std::size_t arch, int n) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (n < 0) throw std::invalid_argument("Cluster: n must be >= 0");
  int remaining = n;
  for (std::size_t i = 0; i < machines_.size() && remaining > 0; ++i) {
    SimMachine& m = machines_[i];
    if (m.arch_index() == arch && m.state() == MachineState::kOn) {
      m.request_off(candidates_[arch]);
      --remaining;
      --on_[arch];
      if (m.state() != MachineState::kOff) {
        ++shutting_[arch];
        note_transition(m.transition_remaining());
      } else {
        off_free_[arch].push_back(i);  // zero-duration shutdown
      }
    }
  }
  if (remaining > 0)
    throw std::logic_error(
        "Cluster: asked to switch off more machines than are On");
}

bool Cluster::fail_one(std::size_t arch) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (on_[arch] == 0) return false;
  for (SimMachine& m : machines_)
    if (m.arch_index() == arch && m.state() == MachineState::kOn) {
      m.fail();
      --on_[arch];
      ++failed_[arch];
      return true;
    }
  return false;  // unreachable while on_ stays in sync with the FSMs
}

void Cluster::repair_one(std::size_t arch) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  for (std::size_t i = 0; i < machines_.size(); ++i)
    if (machines_[i].arch_index() == arch &&
        machines_[i].state() == MachineState::kFailed) {
      machines_[i].repair();
      --failed_[arch];
      off_free_[arch].push_back(i);
      return;
    }
  throw std::logic_error("Cluster: no Failed machine of this arch to repair");
}

int Cluster::failed_count() const {
  int total = 0;
  for (int f : failed_) total += f;
  return total;
}

ClusterSnapshot Cluster::snapshot() const {
  ClusterSnapshot snap;
  snap.on = Combination{on_};
  snap.booting = Combination{booting_};
  snap.shutting_down = Combination{shutting_};
  snap.failed = Combination{failed_};
  snap.on_capacity = capacity(candidates_, snap.on);
  return snap;
}

bool Cluster::transitioning() const {
  for (std::size_t a = 0; a < candidates_.size(); ++a)
    if (booting_[a] > 0 || shutting_[a] > 0) return true;
  return false;
}

ReqRate Cluster::on_capacity() const {
  ReqRate total = 0.0;
  for (std::size_t a = 0; a < candidates_.size(); ++a)
    total += on_[a] * candidates_[a].max_perf();
  return total;
}

Watts Cluster::compute_power(ReqRate load) const {
  return plan_->power_at(on_, load);
}

void Cluster::compile_power_curve(FleetPowerCurve& out) const {
  plan_->compile_fleet(on_, out);
}

Watts Cluster::transition_power() const {
  Watts transition = 0.0;
  for (std::size_t a = 0; a < candidates_.size(); ++a) {
    transition += booting_[a] * candidates_[a].on_cost().average_power();
    transition += shutting_[a] * candidates_[a].off_cost().average_power();
  }
  return transition;
}

ClusterPower Cluster::step_power(ReqRate load) const {
  return ClusterPower{compute_power(load), transition_power()};
}

void Cluster::split_capacity(const std::vector<ReqRate>& loads, ReqRate total,
                             std::vector<ReqRate>& alloc) const {
  split_capacity(loads, total, on_capacity(), alloc);
}

void Cluster::split_capacity(const std::vector<ReqRate>& loads, ReqRate total,
                             ReqRate capacity, std::vector<ReqRate>& alloc) {
  const std::size_t n = loads.size();
  alloc.resize(n);
  if (n == 0) return;
  if (total > 0.0) {
    for (std::size_t i = 0; i < n; ++i)
      alloc[i] = capacity * (loads[i] / total);
  } else {
    const double equal = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) alloc[i] = capacity * equal;
  }
}

int Cluster::step(Seconds dt) {
  if (!transitioning()) return 0;
  int completed = 0;
  // The machine loop doubles as the incremental-minimum refresh: every
  // surviving transition was decremented by dt, and completions drop out.
  Seconds next = -1.0;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    SimMachine& m = machines_[i];
    const MachineState before = m.state();
    if (m.step(dt)) {
      ++completed;
      const std::size_t a = m.arch_index();
      if (before == MachineState::kBooting) {
        --booting_[a];
        ++on_[a];
      } else {
        --shutting_[a];
        off_free_[a].push_back(i);
      }
    } else if (m.state() == MachineState::kBooting ||
               m.state() == MachineState::kShuttingDown) {
      if (next < 0.0 || m.transition_remaining() < next)
        next = m.transition_remaining();
    }
  }
  next_transition_min_ = next;
  return completed;
}

}  // namespace bml
