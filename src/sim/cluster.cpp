#include "sim/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

Cluster::Cluster(Catalog candidates, const Combination& initial,
                 FaultModel faults, std::shared_ptr<const DispatchPlan> plan)
    : candidates_(std::move(candidates)),
      plan_(std::move(plan)),
      faults_(faults) {
  if (candidates_.empty())
    throw std::invalid_argument("Cluster: empty candidate catalog");
  if (!plan_) plan_ = std::make_shared<DispatchPlan>(candidates_);
  if (plan_->arch_kinds() != candidates_.size())
    throw std::invalid_argument("Cluster: plan does not match catalog");
  if (faults_.boot_time_jitter < 0.0 || faults_.boot_failure_prob < 0.0 ||
      faults_.boot_failure_prob > 1.0 || faults_.mtbf < 0.0 ||
      faults_.mttr < 0.0 || faults_.groups < 0 || faults_.group_mtbf < 0.0 ||
      faults_.group_mttr < 0.0 || faults_.crews < 0)
    throw std::invalid_argument("Cluster: invalid fault model");
  if (faults_.mtbf_per_arch.size() > candidates_.size() ||
      faults_.mttr_per_arch.size() > candidates_.size())
    throw std::invalid_argument(
        "Cluster: per-arch fault overrides wider than the catalog");
  for (Seconds m : faults_.mtbf_per_arch)
    if (m < 0.0) throw std::invalid_argument("Cluster: invalid fault model");
  for (Seconds m : faults_.mttr_per_arch)
    if (m < 0.0) throw std::invalid_argument("Cluster: invalid fault model");
  if (faults_.active()) fault_rng_.emplace(faults_.seed);
  if (initial.counts().size() > candidates_.size())
    throw std::invalid_argument("Cluster: initial combination too wide");
  on_.assign(candidates_.size(), 0);
  booting_.assign(candidates_.size(), 0);
  shutting_.assign(candidates_.size(), 0);
  failed_.assign(candidates_.size(), 0);
  parked_.assign(candidates_.size(), 0);
  for (std::size_t arch = 0; arch < initial.counts().size(); ++arch) {
    on_[arch] += initial.counts()[arch];
    provisioned_ += static_cast<std::size_t>(initial.counts()[arch]);
  }
}

Seconds Cluster::boot_duration(std::size_t arch) {
  const Seconds nominal = candidates_[arch].on_cost().duration;
  if (!fault_rng_.has_value()) return -1.0;  // use the profile value
  double duration = nominal;
  if (faults_.boot_time_jitter > 0.0)
    duration *= std::max(
        0.25, 1.0 + fault_rng_->normal(0.0, faults_.boot_time_jitter));
  if (faults_.boot_failure_prob > 0.0 &&
      fault_rng_->chance(faults_.boot_failure_prob))
    duration += nominal;  // one failed attempt, then the retry succeeds
  return duration;
}

void Cluster::note_transition(Seconds remaining) {
  if (next_transition_min_ < 0.0 || remaining < next_transition_min_)
    next_transition_min_ = remaining;
}

void Cluster::switch_on(std::size_t arch, int n) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (n < 0) throw std::invalid_argument("Cluster: n must be >= 0");
  const int reused = std::min(n, parked_[arch]);
  parked_[arch] -= reused;
  provisioned_ += static_cast<std::size_t>(n - reused);
  // One boot-duration draw per machine, in machine order — identical RNG
  // consumption to booting individual FSMs. Equal consecutive draws (the
  // common case: no fault RNG at all, or retry-only models where most
  // draws land on the nominal duration) coalesce into one record.
  Transition pending{};
  int started = 0;
  for (int i = 0; i < n; ++i) {
    Seconds duration = boot_duration(arch);
    if (duration < 0.0) duration = candidates_[arch].on_cost().duration;
    if (duration <= 0.0) {
      ++on_[arch];  // zero-duration boot completes immediately
      continue;
    }
    ++started;
    if (pending.count > 0 && duration == pending.remaining) {
      ++pending.count;
      continue;
    }
    if (pending.count > 0) transitions_.push_back(pending);
    pending = Transition{duration, 1, static_cast<std::uint32_t>(arch), true};
    note_transition(duration);
  }
  if (pending.count > 0) transitions_.push_back(pending);
  booting_[arch] += started;
}

void Cluster::switch_off(std::size_t arch, int n) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (n < 0) throw std::invalid_argument("Cluster: n must be >= 0");
  const int taken = std::min(n, on_[arch]);
  if (taken > 0) {
    const Seconds duration = candidates_[arch].off_cost().duration;
    on_[arch] -= taken;
    if (duration <= 0.0) {
      parked_[arch] += taken;  // zero-duration shutdown
    } else {
      shutting_[arch] += taken;
      transitions_.push_back(
          Transition{duration, taken, static_cast<std::uint32_t>(arch), false});
      note_transition(duration);
    }
  }
  if (taken < n)
    throw std::logic_error(
        "Cluster: asked to switch off more machines than are On");
}

bool Cluster::fail_one(std::size_t arch) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (on_[arch] == 0) return false;
  --on_[arch];
  ++failed_[arch];
  return true;
}

void Cluster::repair_one(std::size_t arch) {
  if (arch >= candidates_.size())
    throw std::invalid_argument("Cluster: arch index out of range");
  if (failed_[arch] == 0)
    throw std::logic_error("Cluster: no Failed machine of this arch to repair");
  --failed_[arch];
  ++parked_[arch];
}

int Cluster::failed_count() const {
  int total = 0;
  for (int f : failed_) total += f;
  return total;
}

int Cluster::booting_total() const {
  int total = 0;
  for (int b : booting_) total += b;
  return total;
}

int Cluster::shutting_down_total() const {
  int total = 0;
  for (int s : shutting_) total += s;
  return total;
}

void Cluster::snapshot_into(ClusterSnapshot& snap) const {
  snap.on.assign(on_);
  snap.booting.assign(booting_);
  snap.shutting_down.assign(shutting_);
  snap.failed.assign(failed_);
  snap.on_capacity = capacity(candidates_, snap.on);
}

ClusterSnapshot Cluster::snapshot() const {
  ClusterSnapshot snap;
  snapshot_into(snap);
  return snap;
}

bool Cluster::transitioning() const { return !transitions_.empty(); }

ReqRate Cluster::on_capacity() const {
  ReqRate total = 0.0;
  for (std::size_t a = 0; a < candidates_.size(); ++a)
    total += on_[a] * candidates_[a].max_perf();
  return total;
}

Watts Cluster::compute_power(ReqRate load) const {
  return plan_->power_at(on_, load);
}

void Cluster::compile_power_curve(FleetPowerCurve& out) const {
  plan_->compile_fleet(on_, out);
}

Watts Cluster::transition_power() const {
  Watts transition = 0.0;
  for (std::size_t a = 0; a < candidates_.size(); ++a) {
    transition += booting_[a] * candidates_[a].on_cost().average_power();
    transition += shutting_[a] * candidates_[a].off_cost().average_power();
  }
  return transition;
}

ClusterPower Cluster::step_power(ReqRate load) const {
  return ClusterPower{compute_power(load), transition_power()};
}

void Cluster::split_capacity(const std::vector<ReqRate>& loads, ReqRate total,
                             std::vector<ReqRate>& alloc) const {
  split_capacity(loads, total, on_capacity(), alloc);
}

void Cluster::split_capacity(const std::vector<ReqRate>& loads, ReqRate total,
                             ReqRate capacity, std::vector<ReqRate>& alloc) {
  const std::size_t n = loads.size();
  alloc.resize(n);
  if (n == 0) return;
  if (total > 0.0) {
    for (std::size_t i = 0; i < n; ++i)
      alloc[i] = capacity * (loads[i] / total);
  } else {
    const double equal = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) alloc[i] = capacity * equal;
  }
}

int Cluster::step(Seconds dt) {
  if (transitions_.empty()) return 0;
  if (dt <= 0.0) throw std::invalid_argument("Cluster: dt must be > 0");
  int completed = 0;
  // The record loop doubles as the incremental-minimum refresh: every
  // surviving record was decremented by dt, and completions drop out. The
  // completion threshold matches the per-machine FSM arithmetic exactly
  // (remaining -= dt; done when remaining <= 1e-9).
  Seconds next = -1.0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    Transition t = transitions_[i];
    t.remaining -= dt;
    if (t.remaining > 1e-9) {
      if (next < 0.0 || t.remaining < next) next = t.remaining;
      transitions_[out++] = t;
      continue;
    }
    completed += t.count;
    if (t.booting) {
      booting_[t.arch] -= t.count;
      on_[t.arch] += t.count;
    } else {
      shutting_[t.arch] -= t.count;
      parked_[t.arch] += t.count;
    }
  }
  transitions_.resize(out);
  next_transition_min_ = next;
  return completed;
}

}  // namespace bml
