// Structured simulation event log.
//
// When enabled, the simulator records the decisions and state changes a
// data center operator would audit: reconfiguration start/completion,
// machine transitions, QoS violations. The log is bounded (a ring of the
// most recent events plus monotone counters) so multi-month simulations
// stay in constant memory, and exports to CSV for offline analysis.
//
// Storage is a fixed-capacity circular buffer: one std::vector that fills
// to capacity and then overwrites in place — after the warm-up there are
// zero allocations per event beyond the detail string itself (a deque ring
// would allocate and free a block every few dozen drops on multi-month
// runs). events() exposes the retained window oldest-first through a
// lightweight View (self-contained iterators, no copying).
#pragma once

#include <cstddef>
#include <iterator>
#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "util/units.hpp"

namespace bml {

enum class EventKind {
  kReconfigurationStart,
  kReconfigurationComplete,
  kBootComplete,
  kShutdownComplete,
  kQosViolation,
  kMachineFailure,
  kMachineRepair,
  kGroupStrike,
  kSpareProvision,
  kSpareRelease,
  kPreemption,
  kOverloadEnter,
  kOverloadExit,
  kAppArrival,
  kAppDeparture,
};

[[nodiscard]] const char* to_string(EventKind kind);

/// One logged event. `detail` is event-specific:
///   reconfiguration start    — target combination rendering
///   reconfiguration complete — seconds it took
///   boot/shutdown complete   — architecture name
///   QoS violation            — shortfall in req/s
///   machine failure / repair — architecture name
///   group strike             — machines felled by the rack-level strike
///   spare provision/release  — the SLO app's name
///   preemption               — machines taken and the victim app's name
///   overload enter/exit      — spill-over above rated capacity in req/s
///   app arrival/departure    — the tenant's name
struct SimEvent {
  TimePoint time = 0;
  EventKind kind = EventKind::kReconfigurationStart;
  std::string detail;
};

/// Bounded event recorder.
class EventLog {
 public:
  /// Oldest-first window over the retained events. A non-owning view into
  /// the log's ring: valid until the next record() on (or destruction of)
  /// the log it came from. Iterators are self-contained, so a View
  /// temporary can hand out begin()/end() safely (range-for over
  /// log.events() works).
  class View {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = SimEvent;
      using difference_type = std::ptrdiff_t;
      using pointer = const SimEvent*;
      using reference = const SimEvent&;

      iterator() = default;
      iterator(const SimEvent* ring, std::size_t ring_size, std::size_t head,
               std::size_t index)
          : ring_(ring), ring_size_(ring_size), head_(head), index_(index) {}

      reference operator*() const {
        return ring_[(head_ + index_) % ring_size_];
      }
      pointer operator->() const { return &**this; }
      iterator& operator++() {
        ++index_;
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++index_;
        return copy;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.index_ == b.index_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return !(a == b);
      }

     private:
      const SimEvent* ring_ = nullptr;
      std::size_t ring_size_ = 1;
      std::size_t head_ = 0;
      std::size_t index_ = 0;
    };

    View(const SimEvent* ring, std::size_t ring_size, std::size_t head,
         std::size_t count)
        : ring_(ring), ring_size_(ring_size), head_(head), count_(count) {}

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] const SimEvent& operator[](std::size_t i) const {
      return ring_[(head_ + i) % ring_size_];
    }
    [[nodiscard]] const SimEvent& front() const { return (*this)[0]; }
    [[nodiscard]] const SimEvent& back() const { return (*this)[count_ - 1]; }
    [[nodiscard]] iterator begin() const {
      return iterator(ring_, ring_size_, head_, 0);
    }
    [[nodiscard]] iterator end() const {
      return iterator(ring_, ring_size_, head_, count_);
    }

   private:
    const SimEvent* ring_;
    std::size_t ring_size_;
    std::size_t head_;
    std::size_t count_;
  };

  /// Keeps at most `capacity` most recent events (older ones are dropped,
  /// counters keep counting).
  explicit EventLog(std::size_t capacity = 4096);

  void record(TimePoint time, EventKind kind, std::string detail);

  /// Most recent events, oldest first.
  [[nodiscard]] View events() const {
    return View(ring_.data(), ring_.empty() ? 1 : ring_.size(), head_,
                ring_.size());
  }

  /// Total events ever recorded per kind (independent of the ring size).
  [[nodiscard]] std::size_t count(EventKind kind) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  /// "time,kind,detail" CSV of the retained events.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::size_t capacity_;
  /// Fills to capacity_ via push_back, then overwrites in place; head_ is
  /// the oldest retained event once the ring has wrapped (0 before).
  std::vector<SimEvent> ring_;
  std::size_t head_ = 0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bml
