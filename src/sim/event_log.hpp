// Structured simulation event log.
//
// When enabled, the simulator records the decisions and state changes a
// data center operator would audit: reconfiguration start/completion,
// machine transitions, QoS violations. The log is bounded (a ring of the
// most recent events plus monotone counters) so multi-month simulations
// stay in constant memory, and exports to CSV for offline analysis.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "util/units.hpp"

namespace bml {

enum class EventKind {
  kReconfigurationStart,
  kReconfigurationComplete,
  kBootComplete,
  kShutdownComplete,
  kQosViolation,
  kMachineFailure,
  kMachineRepair,
  kGroupStrike,
  kSpareProvision,
  kSpareRelease,
};

[[nodiscard]] const char* to_string(EventKind kind);

/// One logged event. `detail` is event-specific:
///   reconfiguration start    — target combination rendering
///   reconfiguration complete — seconds it took
///   boot/shutdown complete   — architecture name
///   QoS violation            — shortfall in req/s
///   machine failure / repair — architecture name
///   group strike             — machines felled by the rack-level strike
///   spare provision/release  — the SLO app's name
struct SimEvent {
  TimePoint time = 0;
  EventKind kind = EventKind::kReconfigurationStart;
  std::string detail;
};

/// Bounded event recorder.
class EventLog {
 public:
  /// Keeps at most `capacity` most recent events (older ones are dropped,
  /// counters keep counting).
  explicit EventLog(std::size_t capacity = 4096);

  void record(TimePoint time, EventKind kind, std::string detail);

  /// Most recent events, oldest first.
  [[nodiscard]] const std::deque<SimEvent>& events() const { return events_; }

  /// Total events ever recorded per kind (independent of the ring size).
  [[nodiscard]] std::size_t count(EventKind kind) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  /// "time,kind,detail" CSV of the retained events.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::size_t capacity_;
  std::deque<SimEvent> events_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bml
