#include "sched/coordinator.hpp"

#include <limits>
#include <stdexcept>

namespace bml {

const char* to_string(CoordinatorMode mode) {
  switch (mode) {
    case CoordinatorMode::kSum: return "sum";
    case CoordinatorMode::kPartitioned: return "partitioned";
  }
  return "?";
}

CoordinatorMode parse_coordinator_mode(const std::string& name) {
  if (name == "sum") return CoordinatorMode::kSum;
  if (name == "partitioned") return CoordinatorMode::kPartitioned;
  throw std::runtime_error("coordinator must be sum or partitioned, got '" +
                           name + "'");
}

Coordinator::Coordinator(const Catalog& candidates, CoordinatorMode mode,
                         std::vector<double> shares, ReqRate budget)
    : candidates_(&candidates),
      mode_(mode),
      shares_(std::move(shares)),
      budget_(budget) {
  if (shares_.empty())
    throw std::invalid_argument("Coordinator: no workloads");
  for (double s : shares_) {
    if (!(s > 0.0))
      throw std::invalid_argument("Coordinator: shares must be > 0");
    share_total_ += s;
  }
}

ReqRate Coordinator::capacity_cap(std::size_t i) const {
  if (i >= shares_.size())
    throw std::out_of_range("Coordinator: app index out of range");
  if (mode_ != CoordinatorMode::kPartitioned || budget_ <= 0.0)
    return std::numeric_limits<ReqRate>::infinity();
  return budget_ * (shares_[i] / share_total_);
}

Combination Coordinator::merge(const std::vector<Combination>& proposals,
                               std::vector<Combination>& contributions) const {
  if (proposals.size() != shares_.size())
    throw std::invalid_argument(
        "Coordinator: proposal count does not match workload count");
  const std::size_t kinds = candidates_->size();
  contributions = proposals;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    Combination& c = contributions[i];
    if (c.counts().size() > kinds)
      throw std::invalid_argument("Coordinator: proposal too wide");
    c.resize(kinds);
    const ReqRate cap = capacity_cap(i);
    if (cap == std::numeric_limits<ReqRate>::infinity()) continue;
    // Trim the proposal to the app's capacity share: drop machines from
    // the largest architecture down (candidates are sorted by descending
    // max_perf), one at a time — deterministic and fastest to converge.
    ReqRate have = capacity(*candidates_, c);
    for (std::size_t a = 0; a < kinds && have > cap; ++a)
      while (c.count(a) > 0 && have > cap) {
        c.add(a, -1);
        have -= (*candidates_)[a].max_perf();
      }
  }
  Combination merged;
  merged.resize(kinds);
  for (const Combination& c : contributions)
    for (std::size_t a = 0; a < kinds; ++a) merged.add(a, c.count(a));
  return merged;
}

}  // namespace bml
