#include "sched/coordinator.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace bml {

const char* to_string(CoordinatorMode mode) {
  switch (mode) {
    case CoordinatorMode::kSum: return "sum";
    case CoordinatorMode::kPartitioned: return "partitioned";
  }
  // Unreachable for valid enum values; a corrupted mode must not leak a
  // placeholder into CSV/report output.
  throw std::logic_error("to_string(CoordinatorMode): invalid mode");
}

CoordinatorMode parse_coordinator_mode(const std::string& name) {
  if (name == "sum") return CoordinatorMode::kSum;
  if (name == "partitioned") return CoordinatorMode::kPartitioned;
  throw std::runtime_error("coordinator must be sum or partitioned, got '" +
                           name + "'");
}

Coordinator::Coordinator(const Catalog& candidates, CoordinatorMode mode,
                         std::vector<double> shares, ReqRate budget)
    : Coordinator(candidates, mode, std::move(shares), budget, {}) {}

Coordinator::Coordinator(const Catalog& candidates, CoordinatorMode mode,
                         std::vector<double> shares, ReqRate budget,
                         std::vector<int> priorities)
    : candidates_(&candidates),
      mode_(mode),
      shares_(std::move(shares)),
      budget_(budget),
      priorities_(std::move(priorities)) {
  if (shares_.empty())
    throw std::invalid_argument("Coordinator: no workloads");
  for (double s : shares_) {
    if (!(s > 0.0))
      throw std::invalid_argument("Coordinator: shares must be > 0");
    share_total_ += s;
  }
  if (!priorities_.empty() && priorities_.size() != shares_.size())
    throw std::invalid_argument(
        "Coordinator: priority count does not match workload count");
  for (std::size_t i = 1; i < priorities_.size(); ++i)
    if (priorities_[i] != priorities_[0]) {
      prioritized_ = true;
      break;
    }
  if (prioritized_) {
    trim_order_.resize(priorities_.size());
    std::iota(trim_order_.begin(), trim_order_.end(), std::size_t{0});
    std::stable_sort(trim_order_.begin(), trim_order_.end(),
                     [this](std::size_t a, std::size_t b) {
                       if (priorities_[a] != priorities_[b])
                         return priorities_[a] < priorities_[b];
                       return a > b;
                     });
  }
}

ReqRate Coordinator::capacity_cap(std::size_t i) const {
  if (i >= shares_.size())
    throw std::out_of_range("Coordinator: app index out of range");
  if (mode_ != CoordinatorMode::kPartitioned || budget_ <= 0.0 ||
      share_total_ <= 0.0)
    return std::numeric_limits<ReqRate>::infinity();
  return budget_ * (shares_[i] / share_total_);
}

void Coordinator::set_active(const std::vector<char>& active) {
  if (active.size() != shares_.size())
    throw std::invalid_argument(
        "Coordinator: active mask does not match workload count");
  share_total_ = 0.0;
  for (std::size_t i = 0; i < shares_.size(); ++i)
    if (active[i]) share_total_ += shares_[i];
}

Combination Coordinator::merge(const std::vector<Combination>& proposals,
                               std::vector<Combination>& contributions) const {
  static const std::vector<Combination> kNoSpares;
  return merge(proposals, kNoSpares, contributions);
}

Combination Coordinator::merge(const std::vector<Combination>& proposals,
                               const std::vector<Combination>& spares,
                               std::vector<Combination>& contributions) const {
  if (proposals.size() != shares_.size())
    throw std::invalid_argument(
        "Coordinator: proposal count does not match workload count");
  const std::size_t kinds = candidates_->size();
  contributions = proposals;
  if (prioritized_ && mode_ == CoordinatorMode::kPartitioned &&
      budget_ > 0.0) {
    // Priority-ordered total-budget trim: the budget binds on the *sum*
    // of the proposals, and machines are shed from the lowest-priority
    // apps first (descending index inside a class) — the same
    // largest-first / smallest-sufficient removal order as the per-share
    // clamp, but measured against the total. A high-priority app is
    // untouched until every lower class has been trimmed empty.
    ReqRate have = 0.0;
    for (Combination& c : contributions) {
      if (c.counts().size() > kinds)
        throw std::invalid_argument("Coordinator: proposal too wide");
      c.resize(kinds);
      have += capacity(*candidates_, c);
    }
    for (std::size_t victim : trim_order_) {
      if (have <= budget_) break;
      Combination& c = contributions[victim];
      while (have > budget_) {
        std::size_t pick = kinds;
        for (std::size_t a = kinds; a-- > 0;)
          if (c.count(a) > 0 &&
              have - (*candidates_)[a].max_perf() <= budget_) {
            pick = a;  // smallest arch whose removal satisfies the budget
            break;
          }
        if (pick == kinds)
          for (std::size_t a = 0; a < kinds; ++a)
            if (c.count(a) > 0) {
              pick = a;  // largest available arch sheds capacity fastest
              break;
            }
        if (pick == kinds) break;  // this victim has nothing left
        c.add(pick, -1);
        have -= (*candidates_)[pick].max_perf();
      }
    }
    return finish_merge(spares, contributions);
  }
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    Combination& c = contributions[i];
    if (c.counts().size() > kinds)
      throw std::invalid_argument("Coordinator: proposal too wide");
    c.resize(kinds);
    const ReqRate cap = capacity_cap(i);
    if (cap == std::numeric_limits<ReqRate>::infinity()) continue;
    // Trim the proposal to the app's capacity share, one machine at a
    // time. When a single removal can already land under the cap, drop
    // the *smallest* architecture that suffices (candidates are sorted by
    // descending max_perf, so scan from the back) — the old
    // largest-arch-first final step could overshoot by nearly one Big
    // machine when shedding a Little would have done. While no single
    // removal suffices, keep shedding largest-first (fastest to
    // converge). Deterministic either way.
    ReqRate have = capacity(*candidates_, c);
    while (have > cap) {
      std::size_t pick = kinds;
      for (std::size_t a = kinds; a-- > 0;)
        if (c.count(a) > 0 && have - (*candidates_)[a].max_perf() <= cap) {
          pick = a;  // smallest arch whose removal satisfies the cap
          break;
        }
      if (pick == kinds)
        for (std::size_t a = 0; a < kinds; ++a)
          if (c.count(a) > 0) {
            pick = a;  // largest available arch sheds capacity fastest
            break;
          }
      if (pick == kinds) break;  // nothing left to remove
      c.add(pick, -1);
      have -= (*candidates_)[pick].max_perf();
    }
  }
  return finish_merge(spares, contributions);
}

Combination Coordinator::finish_merge(
    const std::vector<Combination>& spares,
    std::vector<Combination>& contributions) const {
  const std::size_t kinds = candidates_->size();
  // Spare capacity lands after the clamp: the SLO loop's headroom rides on
  // top of the app's budget share (and the contribution carries it, so
  // reconfiguration energy for spare boots is attributed to the app whose
  // SLO provisioned them).
  if (!spares.empty()) {
    if (spares.size() != contributions.size())
      throw std::invalid_argument(
          "Coordinator: spare count does not match workload count");
    for (std::size_t i = 0; i < contributions.size(); ++i) {
      if (spares[i].counts().size() > kinds)
        throw std::invalid_argument("Coordinator: spare too wide");
      for (std::size_t a = 0; a < spares[i].counts().size(); ++a)
        contributions[i].add(a, spares[i].count(a));
    }
  }
  Combination merged;
  merged.resize(kinds);
  for (const Combination& c : contributions)
    for (std::size_t a = 0; a < kinds; ++a) merged.add(a, c.count(a));
  return merged;
}

}  // namespace bml
