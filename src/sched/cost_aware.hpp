// Reconfiguration-cost-aware scheduler — the paper's closing future work:
// "take in account their corresponding overheads when taking
// reconfiguration decisions."
//
// Like BmlScheduler it targets the ideal combination for the predicted
// load, but before committing to a reconfiguration that is not forced by
// capacity it weighs the switch costs (On/Off energies plus application
// migration) against the predicted power savings:
//
//     reconfigure iff  savings_W * payback_window  >  transition_J
//
// The transition price of a switch-off includes the machine's *future
// boot* (round trip): a machine sent to sleep during a lull will have to
// come back, and ignoring that cost makes the scheduler cycle Big machines
// through every short dip. Scale-ups required to keep capacity above the
// prediction always pass — QoS outranks energy, as in the paper.
#pragma once

#include <memory>

#include "app/migration.hpp"
#include "core/bml_design.hpp"
#include "core/dispatch_plan.hpp"
#include "predict/predictor.hpp"
#include "sim/scheduler.hpp"

namespace bml {

class CostAwareScheduler final : public Scheduler {
 public:
  /// `payback_window` <= 0 defaults to the prediction window (savings must
  /// repay the switch before the next predictable load change).
  CostAwareScheduler(std::shared_ptr<const BmlDesign> design,
                     std::shared_ptr<Predictor> predictor,
                     ApplicationModel app = {}, MigrationModel migration = {},
                     Seconds window = 0.0, Seconds payback_window = 0.0);

  [[nodiscard]] std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) override;
  [[nodiscard]] Combination initial_combination(
      const LoadTrace& trace) override;
  [[nodiscard]] std::string name() const override;

  /// Joules needed to reconfigure `from` into `to` (On/Off transitions
  /// plus application migration). With `charge_round_trip` every switched
  /// off machine is also charged its future boot energy — the price used
  /// by decide() for non-forced reconfigurations.
  [[nodiscard]] Joules transition_energy(const Combination& from,
                                         const Combination& to,
                                         bool charge_round_trip = false) const;

 private:
  std::shared_ptr<const BmlDesign> design_;
  DispatchPlan plan_;  // compiled from the design's candidates
  std::shared_ptr<Predictor> predictor_;
  ApplicationModel app_;
  MigrationModel migration_;
  Seconds window_;
  Seconds payback_window_;
  Combination current_;
  bool primed_ = false;
};

}  // namespace bml
