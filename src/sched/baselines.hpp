// Baseline data center management policies — the paper's comparison
// scenarios (Section V-C) plus reactive ablations.
//
//  * StaticMaxScheduler   — "UpperBound Global": a homogeneous data center
//    with a constant number of Big machines sized for the whole trace's
//    maximum request rate (the classical over-provisioned data center;
//    4 Big machines in the paper's evaluation).
//  * PerDayScheduler      — "UpperBound PerDay": homogeneous Big machines
//    re-dimensioned at each midnight for that day's maximum rate (coarse
//    grain capacity planning).
//  * ReactiveScheduler    — ablation: no look-ahead; targets the ideal
//    combination for the *current* load each second. Demonstrates why the
//    paper's pro-active window matters (boot latency causes QoS loss).
//  * HysteresisScheduler  — ablation: wraps another scheduler and only
//    follows scale-downs after they persist for `hold` seconds, trading
//    energy for fewer reconfigurations.
#pragma once

#include <memory>

#include "core/bml_design.hpp"
#include "sim/scheduler.hpp"

namespace bml {

/// Homogeneous always-on fleet sized for the trace's global peak.
class StaticMaxScheduler final : public Scheduler {
 public:
  /// `big` is the machine type the data center is built from; `arch_index`
  /// its index in the simulator's candidate catalog.
  StaticMaxScheduler(ArchitectureProfile big, std::size_t arch_index);

  [[nodiscard]] std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) override;
  [[nodiscard]] Combination initial_combination(
      const LoadTrace& trace) override;
  /// The fleet never changes: stable for the whole replay.
  [[nodiscard]] TimePoint decision_stable_until(
      TimePoint now, const LoadTrace& trace) override;
  [[nodiscard]] std::string name() const override {
    return "upper-bound-global";
  }

  /// Machines needed for `rate` (ceil of rate / max_perf, at least 1).
  [[nodiscard]] int machines_for(ReqRate rate) const;

 private:
  ArchitectureProfile big_;
  std::size_t arch_index_;
  // trace.peak() scans the whole series; cache it per trace.
  const void* cached_trace_ = nullptr;
  int cached_machines_ = 0;
};

/// Homogeneous fleet re-dimensioned each day for the daily peak (oracle
/// capacity planning, as in the paper).
class PerDayScheduler final : public Scheduler {
 public:
  PerDayScheduler(ArchitectureProfile big, std::size_t arch_index);

  [[nodiscard]] std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) override;
  [[nodiscard]] Combination initial_combination(
      const LoadTrace& trace) override;
  /// Decisions change only at midnight boundaries.
  [[nodiscard]] TimePoint decision_stable_until(
      TimePoint now, const LoadTrace& trace) override;
  [[nodiscard]] std::string name() const override {
    return "upper-bound-per-day";
  }

 private:
  [[nodiscard]] Combination combination_for_day(const LoadTrace& trace,
                                                std::size_t day);

  ArchitectureProfile big_;
  std::size_t arch_index_;
  // Daily peaks scan a day of samples each; cache them per trace.
  const void* cached_trace_ = nullptr;
  std::vector<int> cached_daily_machines_;
};

/// No look-ahead: ideal combination for the instantaneous load.
class ReactiveScheduler final : public Scheduler {
 public:
  explicit ReactiveScheduler(std::shared_ptr<const BmlDesign> design,
                             double headroom = 1.0);

  [[nodiscard]] std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) override;
  [[nodiscard]] Combination initial_combination(
      const LoadTrace& trace) override;
  /// Tracks the instantaneous load: stable until the trace value changes.
  [[nodiscard]] TimePoint decision_stable_until(
      TimePoint now, const LoadTrace& trace) override;
  [[nodiscard]] std::string name() const override { return "reactive"; }

 private:
  std::shared_ptr<const BmlDesign> design_;
  double headroom_;
};

/// Scale-down damping: scale-ups pass through immediately; a scale-down is
/// followed only once the inner scheduler has kept asking for a target with
/// lower idle power for `hold` consecutive seconds.
class HysteresisScheduler final : public Scheduler {
 public:
  HysteresisScheduler(std::shared_ptr<Scheduler> inner,
                      std::shared_ptr<const BmlDesign> design, Seconds hold);

  [[nodiscard]] std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) override;
  [[nodiscard]] Combination initial_combination(
      const LoadTrace& trace) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<Scheduler> inner_;
  std::shared_ptr<const BmlDesign> design_;
  Seconds hold_;
  Combination current_;
  bool primed_ = false;
  TimePoint down_since_ = -1;
  Combination pending_down_;
};

}  // namespace bml
