#include "sched/cost_aware.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/bml_scheduler.hpp"

namespace bml {

CostAwareScheduler::CostAwareScheduler(
    std::shared_ptr<const BmlDesign> design,
    std::shared_ptr<Predictor> predictor, ApplicationModel app,
    MigrationModel migration, Seconds window, Seconds payback_window)
    : design_(std::move(design)),
      predictor_(std::move(predictor)),
      app_(std::move(app)),
      migration_(migration),
      window_(window),
      payback_window_(payback_window) {
  if (!design_) throw std::invalid_argument("CostAwareScheduler: null design");
  if (!predictor_)
    throw std::invalid_argument("CostAwareScheduler: null predictor");
  app_.validate();
  migration_.validate();
  plan_ = DispatchPlan(design_->candidates());
  if (window_ <= 0.0) window_ = BmlScheduler::default_window(*design_);
  if (payback_window_ <= 0.0) payback_window_ = window_;
}

Joules CostAwareScheduler::transition_energy(const Combination& from,
                                             const Combination& to,
                                             bool charge_round_trip) const {
  const Catalog& cand = design_->candidates();
  const std::vector<int> d = delta(from, to);
  Joules energy = 0.0;
  for (std::size_t a = 0; a < d.size() && a < cand.size(); ++a) {
    if (d[a] > 0) energy += d[a] * cand[a].on_cost().energy;
    if (d[a] < 0) {
      energy += -d[a] * cand[a].off_cost().energy;
      if (charge_round_trip) energy += -d[a] * cand[a].on_cost().energy;
    }
  }
  energy += migration_.reconfiguration_cost(app_, from, to).energy;
  return energy;
}

std::optional<Combination> CostAwareScheduler::decide(
    TimePoint now, const LoadTrace& trace,
    const ClusterSnapshot& /*snapshot*/) {
  const ReqRate predicted = std::min(
      predictor_->predict(trace, now, window_) * headroom_factor(app_.qos),
      design_->max_rate());
  Combination target = design_->ideal_combination(predicted);
  target.resize(design_->candidates().size());

  if (!primed_) {
    current_ = target;
    primed_ = true;
    return current_;
  }
  if (target == current_) return current_;

  const Catalog& cand = design_->candidates();

  // Forced scale-up: the current fleet cannot cover the prediction.
  if (capacity(cand, current_) < predicted) {
    current_ = target;
    return current_;
  }

  // Optional reconfiguration (scale-down / reshaping): only when the power
  // savings repay the transition energy within the payback window.
  const Watts current_power = plan_.power_at(current_.counts(), predicted);
  const Watts target_power = plan_.power_at(target.counts(), predicted);
  const Watts savings = current_power - target_power;
  if (savings <= 0.0) return current_;

  const Joules cost =
      transition_energy(current_, target, /*charge_round_trip=*/true);
  if (savings * payback_window_ > cost) {
    current_ = target;
  }
  return current_;
}

Combination CostAwareScheduler::initial_combination(const LoadTrace& trace) {
  const ReqRate first_load = trace.empty() ? 0.0 : trace.at(0);
  const ReqRate predicted =
      std::max(predictor_->predict(trace, 0, window_), first_load);
  current_ = design_->ideal_combination(
      std::min(predicted * headroom_factor(app_.qos), design_->max_rate()));
  current_.resize(design_->candidates().size());
  primed_ = true;
  return current_;
}

std::string CostAwareScheduler::name() const {
  return "cost-aware(" + predictor_->name() + ")";
}

}  // namespace bml
