#include "sched/lower_bound.hpp"

#include <algorithm>
#include <numeric>

namespace bml {

std::vector<Joules> theoretical_lower_bound_per_day(const BmlDesign& design,
                                                    const LoadTrace& trace) {
  std::vector<Joules> days;
  days.reserve(trace.days());
  Joules current = 0.0;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (t > 0 && t % static_cast<std::size_t>(kSecondsPerDay) == 0) {
      days.push_back(current);
      current = 0.0;
    }
    const ReqRate load =
        std::min(trace.at(static_cast<TimePoint>(t)), design.max_rate());
    current += design.ideal_power(load) * 1.0;  // 1 s per sample
  }
  if (trace.size() > 0) days.push_back(current);
  return days;
}

Joules theoretical_lower_bound_total(const BmlDesign& design,
                                     const LoadTrace& trace) {
  const std::vector<Joules> days =
      theoretical_lower_bound_per_day(design, trace);
  return std::accumulate(days.begin(), days.end(), 0.0);
}

}  // namespace bml
