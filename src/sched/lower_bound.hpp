// "LowerBound Theoretical" — the paper's unreachable yardstick.
//
// The minimum computing energy achievable with the BML infrastructure if it
// were re-dimensioned every second with the ideal combination, with no
// On/Off latency or energy costs. Computed analytically from the design's
// combination table; no simulation involved.
#pragma once

#include <vector>

#include "core/bml_design.hpp"
#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Per-day lower-bound energy (J) of `trace` under `design`.
[[nodiscard]] std::vector<Joules> theoretical_lower_bound_per_day(
    const BmlDesign& design, const LoadTrace& trace);

/// Whole-trace lower-bound energy (J).
[[nodiscard]] Joules theoretical_lower_bound_total(const BmlDesign& design,
                                                   const LoadTrace& trace);

}  // namespace bml
