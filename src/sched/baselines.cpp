#include "sched/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bml {

namespace {

Combination homogeneous(std::size_t arch_index, int n) {
  Combination combo;
  combo.set_count(arch_index, n);
  return combo;
}

}  // namespace

StaticMaxScheduler::StaticMaxScheduler(ArchitectureProfile big,
                                       std::size_t arch_index)
    : big_(std::move(big)), arch_index_(arch_index) {}

int StaticMaxScheduler::machines_for(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("StaticMaxScheduler: negative rate");
  return std::max(1, static_cast<int>(std::ceil(rate / big_.max_perf())));
}

std::optional<Combination> StaticMaxScheduler::decide(
    TimePoint /*now*/, const LoadTrace& trace,
    const ClusterSnapshot& /*snapshot*/) {
  // Constant fleet: always the globally sized combination.
  if (cached_trace_ != &trace) {
    cached_machines_ = machines_for(trace.peak());
    cached_trace_ = &trace;
  }
  return homogeneous(arch_index_, cached_machines_);
}

Combination StaticMaxScheduler::initial_combination(const LoadTrace& trace) {
  cached_machines_ = machines_for(trace.peak());
  cached_trace_ = &trace;
  return homogeneous(arch_index_, cached_machines_);
}

TimePoint StaticMaxScheduler::decision_stable_until(TimePoint /*now*/,
                                                    const LoadTrace& /*trace*/) {
  return std::numeric_limits<TimePoint>::max();
}

PerDayScheduler::PerDayScheduler(ArchitectureProfile big,
                                 std::size_t arch_index)
    : big_(std::move(big)), arch_index_(arch_index) {}

Combination PerDayScheduler::combination_for_day(const LoadTrace& trace,
                                                 std::size_t day) {
  if (cached_trace_ != &trace) {
    cached_daily_machines_.clear();
    cached_daily_machines_.reserve(trace.days());
    for (std::size_t d = 0; d < trace.days(); ++d)
      cached_daily_machines_.push_back(std::max(
          1,
          static_cast<int>(std::ceil(trace.day_peak(d) / big_.max_perf()))));
    cached_trace_ = &trace;
  }
  return homogeneous(arch_index_, cached_daily_machines_.at(day));
}

std::optional<Combination> PerDayScheduler::decide(
    TimePoint now, const LoadTrace& trace,
    const ClusterSnapshot& /*snapshot*/) {
  const auto day = static_cast<std::size_t>(now / kSecondsPerDay);
  if (day >= trace.days()) return std::nullopt;
  return combination_for_day(trace, day);
}

Combination PerDayScheduler::initial_combination(const LoadTrace& trace) {
  if (trace.empty()) return {};
  return combination_for_day(trace, 0);
}

TimePoint PerDayScheduler::decision_stable_until(TimePoint now,
                                                 const LoadTrace& trace) {
  const auto day = static_cast<std::size_t>(now / kSecondsPerDay);
  if (day >= trace.days())  // past the trace: std::nullopt forever
    return std::numeric_limits<TimePoint>::max();
  return (static_cast<TimePoint>(day) + 1) * kSecondsPerDay;
}

ReactiveScheduler::ReactiveScheduler(std::shared_ptr<const BmlDesign> design,
                                     double headroom)
    : design_(std::move(design)), headroom_(headroom) {
  if (!design_) throw std::invalid_argument("ReactiveScheduler: null design");
  if (headroom_ < 1.0)
    throw std::invalid_argument("ReactiveScheduler: headroom must be >= 1");
}

std::optional<Combination> ReactiveScheduler::decide(
    TimePoint now, const LoadTrace& trace,
    const ClusterSnapshot& /*snapshot*/) {
  const ReqRate rate =
      std::min(trace.at(now) * headroom_, design_->max_rate());
  return design_->ideal_combination(rate);
}

TimePoint ReactiveScheduler::decision_stable_until(TimePoint now,
                                                   const LoadTrace& trace) {
  constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();
  const DecisionThresholds* cuts = design_->decision_thresholds();
  if (cuts == nullptr) return trace.next_change(now);
  // The decision is the threshold bucket of the instantaneous load: walk
  // the trace's run-length segments until one leaves the current bucket.
  // On a noisy trace whose wiggles stay inside one bucket this merges what
  // used to be per-second spans. Stopping at the hop cap is sound — every
  // segment walked so far stayed in the bucket.
  constexpr int kMaxHops = 4096;
  const ReqRate max_rate = design_->max_rate();
  const auto bucket = [&](TimePoint t) {
    return cuts->index_for(std::min(trace.at(t) * headroom_, max_rate));
  };
  const std::size_t current = bucket(now);
  TimePoint t = trace.next_change(now);
  for (int hop = 0; hop < kMaxHops && t < kNever; ++hop) {
    if (bucket(t) != current) return t;
    t = trace.next_change(t);
  }
  return t;
}

Combination ReactiveScheduler::initial_combination(const LoadTrace& trace) {
  if (trace.empty()) return {};
  return design_->ideal_combination(
      std::min(trace.at(0) * headroom_, design_->max_rate()));
}

HysteresisScheduler::HysteresisScheduler(std::shared_ptr<Scheduler> inner,
                                         std::shared_ptr<const BmlDesign> design,
                                         Seconds hold)
    : inner_(std::move(inner)), design_(std::move(design)), hold_(hold) {
  if (!inner_) throw std::invalid_argument("HysteresisScheduler: null inner");
  if (!design_)
    throw std::invalid_argument("HysteresisScheduler: null design");
  if (hold_ < 0.0)
    throw std::invalid_argument("HysteresisScheduler: hold must be >= 0");
}

std::optional<Combination> HysteresisScheduler::decide(
    TimePoint now, const LoadTrace& trace, const ClusterSnapshot& snapshot) {
  std::optional<Combination> wanted = inner_->decide(now, trace, snapshot);
  if (!wanted.has_value()) return std::nullopt;
  if (!primed_) {
    current_ = *wanted;
    primed_ = true;
    return current_;
  }
  if (*wanted == current_) {
    down_since_ = -1;
    return current_;
  }

  const Catalog& cand = design_->candidates();
  const bool is_scale_down =
      idle_power(cand, *wanted) < idle_power(cand, current_);
  if (!is_scale_down) {
    // More capacity requested: follow immediately, clear any pending down.
    current_ = *wanted;
    down_since_ = -1;
    return current_;
  }

  // Scale-down: require the inner scheduler to sustain the request.
  if (down_since_ < 0 || !(pending_down_ == *wanted)) {
    down_since_ = now;
    pending_down_ = *wanted;
    return current_;
  }
  if (static_cast<Seconds>(now - down_since_) >= hold_) {
    current_ = pending_down_;
    down_since_ = -1;
  }
  return current_;
}

Combination HysteresisScheduler::initial_combination(const LoadTrace& trace) {
  current_ = inner_->initial_combination(trace);
  primed_ = true;
  return current_;
}

std::string HysteresisScheduler::name() const {
  return inner_->name() + "+hysteresis";
}

}  // namespace bml
