// The paper's pro-active BML scheduler (Section V-C).
//
// Every second (while no reconfiguration is in flight) the scheduler:
//   1. obtains a load prediction — by default the maximum over a sliding
//      look-ahead window of 2x the longest On duration (378 s for the
//      Table I catalog);
//   2. looks up the ideal BML combination for that prediction;
//   3. returns it; the simulator starts a reconfiguration when it differs
//      from the current target and blocks further decisions until the
//      On/Off actions complete.
//
// The optional QoS class applies a capacity headroom factor to the
// prediction (Section III's critical vs tolerant applications).
#pragma once

#include <memory>

#include "core/bml_design.hpp"
#include "predict/predictor.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"

namespace bml {

class BmlScheduler final : public Scheduler {
 public:
  /// `window` <= 0 selects the paper's default: twice the longest On
  /// duration among the design's candidates.
  BmlScheduler(std::shared_ptr<const BmlDesign> design,
               std::shared_ptr<Predictor> predictor, Seconds window = 0.0,
               QosClass qos = QosClass::kTolerant);

  [[nodiscard]] std::optional<Combination> decide(
      TimePoint now, const LoadTrace& trace,
      const ClusterSnapshot& snapshot) override;

  /// The decision is a pure function of the predicted rate, so it is
  /// stable for as long as the predictor's output is — and longer: when
  /// the predictor advertises real (multi-second) stability it is pure, so
  /// consecutive stability segments whose predictions map to the same
  /// combination table index are merged into one span.
  [[nodiscard]] TimePoint decision_stable_until(
      TimePoint now, const LoadTrace& trace) override;

  /// Pre-warms the combination for the initial prediction (never less than
  /// the first second's load, so a cold oracle still covers t = 0).
  [[nodiscard]] Combination initial_combination(
      const LoadTrace& trace) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Seconds window() const { return window_; }

  /// Default prediction window for a design: 2x the longest On duration.
  [[nodiscard]] static Seconds default_window(const BmlDesign& design);

 private:
  [[nodiscard]] ReqRate target_rate(const LoadTrace& trace, TimePoint now);

  std::shared_ptr<const BmlDesign> design_;
  std::shared_ptr<Predictor> predictor_;
  Seconds window_;
  QosClass qos_;
};

}  // namespace bml
