// The reconfiguration coordinator: merges per-workload ideal combinations
// into one cluster-wide decision.
//
// Each application's scheduler keeps proposing the combination that would
// serve *its* predicted load in isolation; the cluster can only converge to
// one fleet. Two merge policies:
//
//   * kSum (baseline) — the cluster target is the element-wise sum of the
//     per-app proposals. Every app gets exactly the machines its scheduler
//     asked for; total capacity grows with colocation. With one workload
//     this is the identity, which is what pins the single-app regression.
//
//   * kPartitioned — the pool is capacity-limited: each app's proposal is
//     clamped so its capacity does not exceed its share of the budget
//     (share weights normalised across apps), then summed. Clamping
//     removes one machine at a time: while no single removal can land
//     under the cap, from the largest architecture first (catalog order:
//     candidates are sorted by descending max_perf — sheds capacity
//     fastest); for the final step, from the smallest architecture whose
//     removal satisfies the cap (so the trim never overshoots by a large
//     machine when dropping a small one suffices). Deterministic.
//
// Priority classes (Workload::priority) change *who* pays when the
// partitioned budget binds: with any two apps' priorities differing, the
// per-share clamp is replaced by a total-budget trim that sheds machines
// from the lowest-priority apps first (ties broken by descending app
// index — later-declared apps yield first), using the same
// largest-first / smallest-sufficient removal order within each victim.
// High-priority apps keep their full proposals until every lower class
// has been trimmed to nothing. All-equal priorities (the default) keep
// the per-share clamp bit-for-bit, so priority-free specs are unchanged.
//
// merge() is a pure function of the proposals, so the event-driven
// simulator can intersect per-workload decision-stability spans: while no
// app's proposal changes, the merged decision cannot change either.
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "util/units.hpp"

namespace bml {

enum class CoordinatorMode {
  kSum,          // sum-of-combinations baseline
  kPartitioned,  // clamp each app to its capacity share of the budget
};

[[nodiscard]] const char* to_string(CoordinatorMode mode);

/// Parses a coordinator mode name (`sum` | `partitioned`) — the single
/// validation point for spec layers; throws std::runtime_error naming the
/// accepted values otherwise.
[[nodiscard]] CoordinatorMode parse_coordinator_mode(const std::string& name);

class Coordinator {
 public:
  /// `shares` are the per-app weights (one per workload, all > 0; only
  /// consulted in partitioned mode). `budget` is the total cluster
  /// capacity (req/s) partitioned among the apps; <= 0 disables the clamp
  /// (partitioned degenerates to sum).
  Coordinator(const Catalog& candidates, CoordinatorMode mode,
              std::vector<double> shares, ReqRate budget);

  /// As above with per-app priority classes (same length as `shares`;
  /// empty = all zero). Priorities only matter in partitioned mode with a
  /// budget, and only when at least two differ — see the header comment.
  Coordinator(const Catalog& candidates, CoordinatorMode mode,
              std::vector<double> shares, ReqRate budget,
              std::vector<int> priorities);

  /// Merges one proposal per app (width <= candidate count; resized
  /// internally) into the cluster-wide target. `contributions` receives
  /// each app's post-clamp combination — the slice of the merged fleet
  /// attributed to that app (reconfiguration-energy attribution keys off
  /// these).
  [[nodiscard]] Combination merge(const std::vector<Combination>& proposals,
                                  std::vector<Combination>& contributions) const;

  /// As above with SLO spare capacity: `spares` (same length as
  /// `proposals`, possibly empty combinations) is added to each app's
  /// contribution *after* the partitioned clamp — spares are emergency
  /// headroom the availability feedback loop provisions, deliberately
  /// exempt from the steady-state capacity budget. With all spares empty
  /// this is exactly merge(proposals, contributions).
  [[nodiscard]] Combination merge(const std::vector<Combination>& proposals,
                                  const std::vector<Combination>& spares,
                                  std::vector<Combination>& contributions) const;

  /// Capacity cap of app `i` under the partitioned policy;
  /// +infinity in sum mode or with no budget.
  [[nodiscard]] ReqRate capacity_cap(std::size_t i) const;

  /// Re-partitions the capacity shares over the active tenant subset
  /// (tenant lifecycle, Workload::arrive / depart): the partitioned cap
  /// denominators sum the *active* apps' share weights only, so a
  /// departure hands its slice back to the survivors and an arrival
  /// claims one. `active` must be one flag per workload; an all-active
  /// mask restores the constructor's partition exactly. With no active
  /// app every cap is +infinity (there is nothing to partition between).
  void set_active(const std::vector<char>& active);

  [[nodiscard]] CoordinatorMode mode() const { return mode_; }
  [[nodiscard]] std::size_t apps() const { return shares_.size(); }
  /// True when the priority-ordered total-budget trim is in effect (at
  /// least two apps' priorities differ).
  [[nodiscard]] bool prioritized() const { return prioritized_; }

 private:
  /// Shared merge tail: folds the SLO spares into the (post-trim)
  /// contributions and sums them into the cluster-wide target.
  [[nodiscard]] Combination finish_merge(
      const std::vector<Combination>& spares,
      std::vector<Combination>& contributions) const;

  const Catalog* candidates_;
  CoordinatorMode mode_;
  std::vector<double> shares_;
  double share_total_ = 0.0;
  ReqRate budget_;
  std::vector<int> priorities_;
  bool prioritized_ = false;
  /// App indices in trim order (ascending priority, descending index).
  std::vector<std::size_t> trim_order_;
};

}  // namespace bml
