#include "sched/bml_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bml {

BmlScheduler::BmlScheduler(std::shared_ptr<const BmlDesign> design,
                           std::shared_ptr<Predictor> predictor,
                           Seconds window, QosClass qos)
    : design_(std::move(design)),
      predictor_(std::move(predictor)),
      window_(window),
      qos_(qos) {
  if (!design_) throw std::invalid_argument("BmlScheduler: null design");
  if (!predictor_) throw std::invalid_argument("BmlScheduler: null predictor");
  if (window_ <= 0.0) window_ = default_window(*design_);
}

Seconds BmlScheduler::default_window(const BmlDesign& design) {
  Seconds longest_on = 0.0;
  for (const ArchitectureProfile& p : design.candidates())
    longest_on = std::max(longest_on, p.on_cost().duration);
  // "a window of 378 seconds, equivalent to 2 times the longest On
  // duration" — the window must cover the boot of the slowest machine plus
  // the decision that triggered it.
  return std::max(1.0, 2.0 * longest_on);
}

ReqRate BmlScheduler::target_rate(const LoadTrace& trace, TimePoint now) {
  const ReqRate predicted = predictor_->predict(trace, now, window_);
  const ReqRate rate = predicted * headroom_factor(qos_);
  // Never aim below what the design can answer; clamp to table range.
  return std::min(rate, design_->max_rate());
}

std::optional<Combination> BmlScheduler::decide(
    TimePoint now, const LoadTrace& trace,
    const ClusterSnapshot& /*snapshot*/) {
  return design_->ideal_combination(target_rate(trace, now));
}

TimePoint BmlScheduler::decision_stable_until(TimePoint now,
                                              const LoadTrace& trace) {
  TimePoint t = predictor_->stable_until(trace, now, window_);
  // Probing predict() at future times is only valid for pure predictors;
  // stateful ones (EWMA, error injection) would corrupt their state, so
  // they keep the predictor-level bound (the conservative now + 1).
  if (!predictor_->pure()) return t;
  constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

  const DecisionThresholds* cuts = design_->decision_thresholds();
  if (cuts != nullptr) {
    // Decision-level extension: the decision is the threshold *bucket* of
    // the prediction, so a changing prediction whose values stay inside
    // one bucket does not end the stable span — this is what removes the
    // per-second limiter on noisy traces. Each hop advances one of the
    // predictor's stability segments (a single second when the predictor
    // cannot advertise more) and costs one predict() plus one upper_bound;
    // the hop cap only bounds a single call, and stopping early is sound
    // because every probed point so far stayed in the current bucket.
    constexpr int kMaxHops = 4096;
    const std::size_t current = cuts->index_for(target_rate(trace, now));
    // Hoist the bucket's grid bounds once: each hop then costs two double
    // compares instead of an upper_bound over the cut array.
    const auto [lo, hi] = cuts->bucket_grid_range(current);
    for (int hop = 0; hop < kMaxHops && t < kNever; ++hop) {
      const double g = cuts->grid_of(target_rate(trace, t));
      if (g < lo || g >= hi) return t;
      const TimePoint next = predictor_->stable_until(trace, t, window_);
      if (next <= t) break;  // defensive: stability contract violation
      t = next;
    }
    return t;
  }

  // Designs built without a table fall back to comparing materialised
  // combinations across advertised stability segments only.
  if (t <= now + 1) return t;
  constexpr int kMaxHops = 64;
  const Combination current =
      design_->ideal_combination(target_rate(trace, now));
  for (int hop = 0; hop < kMaxHops && t < kNever; ++hop) {
    if (design_->ideal_combination(target_rate(trace, t)) != current)
      return t;
    const TimePoint next = predictor_->stable_until(trace, t, window_);
    if (next <= t) break;  // defensive: stability contract violation
    t = next;
  }
  return t;
}

Combination BmlScheduler::initial_combination(const LoadTrace& trace) {
  const ReqRate first_load = trace.empty() ? 0.0 : trace.at(0);
  const ReqRate rate = std::max(target_rate(trace, 0), first_load);
  return design_->ideal_combination(std::min(rate, design_->max_rate()));
}

std::string BmlScheduler::name() const {
  return "bml(" + predictor_->name() + ")";
}

}  // namespace bml
