// Load balancer substrate.
//
// The paper's deployment story: "a load balancer could allow the load to
// be distributed among several web server instances... easily migrated by
// stopping a server instance and launching a new one on the destination
// machine, and then updating the load balancer."
//
// LoadBalancer tracks which machines host instances, assigns per-instance
// weights from the optimal dispatch split, and turns combination changes
// into explicit instance actions (start / stop / move) — the operations a
// real deployment would execute against lighttpd + HAProxy.
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "core/dispatch_plan.hpp"
#include "util/units.hpp"

namespace bml {

/// One backend entry: an application instance pinned to a machine type.
struct Backend {
  std::size_t arch = 0;   // candidate index
  double weight = 0.0;    // share of traffic in [0, 1]
  ReqRate assigned = 0.0; // absolute rate routed to this backend
};

/// Instance-level action produced by a combination change.
struct InstanceAction {
  enum class Kind { kStart, kStop, kMove } kind = Kind::kStart;
  std::size_t from_arch = 0;  // meaningful for kStop / kMove
  std::size_t to_arch = 0;    // meaningful for kStart / kMove
};

[[nodiscard]] std::string to_string(const InstanceAction& action,
                                    const Catalog& candidates);

/// Weighted load balancer over a machine combination.
class LoadBalancer {
 public:
  explicit LoadBalancer(Catalog candidates);

  /// Replaces the backend set to match `combo` and returns the instance
  /// actions needed to get there from the previous configuration: moves
  /// are preferred over stop+start pairs (cheaper for the application).
  std::vector<InstanceAction> reconfigure(const Combination& combo);

  /// Splits `rate` over the current backends along the optimal dispatch
  /// (cheapest marginal Watts first) and updates their weights. Returns
  /// the served rate (== rate unless capacity is exceeded).
  ReqRate route(ReqRate rate);

  [[nodiscard]] const std::vector<Backend>& backends() const {
    return backends_;
  }
  [[nodiscard]] const Combination& combination() const { return current_; }
  [[nodiscard]] ReqRate capacity() const;

 private:
  Catalog candidates_;
  DispatchPlan plan_;
  Combination current_;
  std::vector<Backend> backends_;
  // route() scratch, reused so the per-second routing path is
  // allocation-free once warm.
  DispatchResult split_scratch_;
  std::vector<int> instances_scratch_;
};

}  // namespace bml
