#include "app/application.hpp"

#include <stdexcept>

namespace bml {

std::string to_string(StateKind kind) {
  switch (kind) {
    case StateKind::kStateless: return "stateless";
    case StateKind::kSoftState: return "soft-state";
    case StateKind::kStateful: return "stateful";
  }
  throw std::logic_error("to_string(StateKind): invalid kind");
}

void ApplicationModel::validate() const {
  if (name.empty())
    throw std::invalid_argument("ApplicationModel: name must not be empty");
  if (min_instances < 0)
    throw std::invalid_argument(
        "ApplicationModel: min_instances must be >= 0");
  if (max_instances < 0)
    throw std::invalid_argument(
        "ApplicationModel: max_instances must be >= 0");
  if (max_instances != 0 && max_instances < min_instances)
    throw std::invalid_argument(
        "ApplicationModel: max_instances must be >= min_instances");
  if (state_bytes < 0.0)
    throw std::invalid_argument("ApplicationModel: state_bytes must be >= 0");
  if (restart_time < 0.0)
    throw std::invalid_argument(
        "ApplicationModel: restart_time must be >= 0");
  if (state != StateKind::kStateless && state_bytes == 0.0 &&
      restart_time == 0.0)
    throw std::invalid_argument(
        "ApplicationModel: stateful applications must declare a migration "
        "cost (state bytes or restart time)");
}

bool ApplicationModel::accepts(const Combination& combo) const {
  const int machines = combo.total_machines();
  if (machines < min_instances) return false;
  if (max_instances != 0 && machines > max_instances) return false;
  return true;
}

std::optional<Combination> clamp_combination(const ApplicationModel& app,
                                             const Catalog& candidates,
                                             const Combination& combo) {
  app.validate();
  if (candidates.empty())
    throw std::invalid_argument("clamp_combination: empty candidates");
  Combination result = combo;
  result.resize(candidates.size());

  // Too few instances: add Littles — the cheapest hosts for extra copies.
  const std::size_t little = candidates.size() - 1;
  while (result.total_machines() < app.min_instances)
    result.add(little);

  if (app.max_instances != 0 &&
      result.total_machines() > app.max_instances)
    return std::nullopt;
  return result;
}

}  // namespace bml
