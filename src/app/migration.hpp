// Migration cost model — Section III: "We must evaluate the application's
// migration overhead, both in terms of duration and energy consumption."
//
// For the paper's stateless web server a migration is stop + start +
// load-balancer update; stateful applications additionally stream their
// state across the network. The model prices one instance move and whole
// reconfigurations (sets of moves).
#pragma once

#include "app/application.hpp"
#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "util/units.hpp"

namespace bml {

/// Price of one or more instance migrations.
struct MigrationCost {
  Seconds duration = 0.0;  // wall-clock of the longest move (moves overlap)
  Seconds downtime = 0.0;  // summed per-instance service interruption
  Joules energy = 0.0;     // network + CPU energy of all moves

  MigrationCost& operator+=(const MigrationCost& other);
};

/// Environment parameters for migrations.
struct MigrationModel {
  /// Usable network bandwidth for state transfer, bytes/s.
  double network_bandwidth = 1e9 / 8.0;  // 1 Gb/s
  /// Energy per transferred byte (NIC + switch), J/B.
  double energy_per_byte = 2e-8;
  /// Energy of one stop/start/LB-update cycle, J.
  Joules restart_energy = 5.0;

  void validate() const;

  /// Cost of moving one instance of `app`.
  [[nodiscard]] MigrationCost instance_cost(const ApplicationModel& app) const;

  /// Cost of the instance moves implied by reconfiguring `from` into `to`:
  /// every machine that goes away hands its instance to a new machine, so
  /// the number of moves is min(#machines removed, #machines added) plus
  /// restarts for net-new instances. Moves proceed in parallel (duration =
  /// one instance move), downtime and energy accumulate.
  [[nodiscard]] MigrationCost reconfiguration_cost(
      const ApplicationModel& app, const Combination& from,
      const Combination& to) const;
};

}  // namespace bml
