#include "app/migration.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

MigrationCost& MigrationCost::operator+=(const MigrationCost& other) {
  duration = std::max(duration, other.duration);
  downtime += other.downtime;
  energy += other.energy;
  return *this;
}

void MigrationModel::validate() const {
  if (network_bandwidth <= 0.0)
    throw std::invalid_argument(
        "MigrationModel: network bandwidth must be > 0");
  if (energy_per_byte < 0.0)
    throw std::invalid_argument(
        "MigrationModel: energy per byte must be >= 0");
  if (restart_energy < 0.0)
    throw std::invalid_argument(
        "MigrationModel: restart energy must be >= 0");
}

MigrationCost MigrationModel::instance_cost(const ApplicationModel& app) const {
  validate();
  app.validate();
  MigrationCost cost;
  const Seconds transfer =
      app.state_bytes > 0.0 ? app.state_bytes / network_bandwidth : 0.0;
  cost.duration = app.restart_time + transfer;
  // Stateless and soft-state instances serve from the old copy until the
  // new one is up: downtime is just the restart; stateful instances pause
  // for the whole transfer.
  cost.downtime = app.state == StateKind::kStateful
                      ? app.restart_time + transfer
                      : app.restart_time;
  cost.energy = restart_energy + app.state_bytes * energy_per_byte;
  return cost;
}

MigrationCost MigrationModel::reconfiguration_cost(
    const ApplicationModel& app, const Combination& from,
    const Combination& to) const {
  const std::vector<int> d = delta(from, to);
  int removed = 0;
  int added = 0;
  for (int change : d) {
    if (change > 0) added += change;
    if (change < 0) removed -= change;
  }
  const int moves = std::min(removed, added);
  const int fresh_starts = added - moves;

  const MigrationCost per_move = instance_cost(app);
  MigrationCost total;
  for (int i = 0; i < moves; ++i) total += per_move;
  // Net-new instances just start; no old copy stops, so no downtime.
  MigrationCost start;
  start.duration = app.restart_time;
  start.energy = restart_energy;
  for (int i = 0; i < fresh_starts; ++i) total += start;
  return total;
}

}  // namespace bml
