#include "app/load_balancer.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace bml {

std::string to_string(const InstanceAction& action,
                      const Catalog& candidates) {
  std::ostringstream os;
  switch (action.kind) {
    case InstanceAction::Kind::kStart:
      os << "start on " << candidates[action.to_arch].name();
      break;
    case InstanceAction::Kind::kStop:
      os << "stop on " << candidates[action.from_arch].name();
      break;
    case InstanceAction::Kind::kMove:
      os << "move " << candidates[action.from_arch].name() << " -> "
         << candidates[action.to_arch].name();
      break;
  }
  return os.str();
}

LoadBalancer::LoadBalancer(Catalog candidates)
    : candidates_(std::move(candidates)) {
  if (candidates_.empty())
    throw std::invalid_argument("LoadBalancer: empty candidates");
  plan_ = DispatchPlan(candidates_);
  current_.resize(candidates_.size());
}

std::vector<InstanceAction> LoadBalancer::reconfigure(
    const Combination& combo) {
  Combination target = combo;
  target.resize(candidates_.size());
  const std::vector<int> d = delta(current_, target);

  // Pair removals with additions as moves; leftovers become stop/start.
  std::vector<std::size_t> removals;
  std::vector<std::size_t> additions;
  for (std::size_t a = 0; a < d.size(); ++a) {
    for (int i = 0; i < -d[a]; ++i) removals.push_back(a);
    for (int i = 0; i < d[a]; ++i) additions.push_back(a);
  }

  std::vector<InstanceAction> actions;
  const std::size_t moves = std::min(removals.size(), additions.size());
  for (std::size_t i = 0; i < moves; ++i)
    actions.push_back({InstanceAction::Kind::kMove, removals[i],
                       additions[i]});
  for (std::size_t i = moves; i < removals.size(); ++i)
    actions.push_back({InstanceAction::Kind::kStop, removals[i], 0});
  for (std::size_t i = moves; i < additions.size(); ++i)
    actions.push_back({InstanceAction::Kind::kStart, 0, additions[i]});

  current_ = target;
  backends_.clear();
  for (std::size_t a = 0; a < current_.counts().size(); ++a)
    for (int i = 0; i < current_.counts()[a]; ++i)
      backends_.push_back(Backend{a, 0.0, 0.0});
  return actions;
}

ReqRate LoadBalancer::capacity() const {
  return ::bml::capacity(candidates_, current_);
}

ReqRate LoadBalancer::route(ReqRate rate) {
  if (rate < 0.0) throw std::invalid_argument("LoadBalancer: rate < 0");
  plan_.dispatch_into(current_.counts(), rate, split_scratch_);
  const DispatchResult& split = split_scratch_;

  // Spread each architecture's share evenly over its backends (the linear
  // power model makes the within-arch split free; even weights keep every
  // instance warm).
  instances_scratch_.assign(candidates_.size(), 0);
  std::vector<int>& instances = instances_scratch_;
  for (const Backend& b : backends_) ++instances[b.arch];
  for (Backend& b : backends_) {
    const double share = instances[b.arch] > 0
                             ? split.load_per_arch[b.arch] /
                                   static_cast<double>(instances[b.arch])
                             : 0.0;
    b.assigned = share;
    b.weight = rate > 0.0 ? share / rate : 0.0;
  }
  return split.served;
}

}  // namespace bml
