// Application characterization — Section III of the paper.
//
// The methodology is application-generic: an application is described by
//   * its performance metric (requests/s for the web server),
//   * a QoS class (critical vs tolerant),
//   * malleability — whether it can be distributed over several machines,
//     and if so between how many instances,
//   * migratability — whether instances can move between machines, and the
//     state that must travel when they do.
//
// ApplicationModel carries those constraints; `clamp_combination` enforces
// the instance limits on a proposed machine combination, and the migration
// model (migration.hpp) prices instance moves.
#pragma once

#include <optional>
#include <string>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "sim/qos.hpp"
#include "util/units.hpp"

namespace bml {

/// How the application maintains state, which bounds migration cost.
enum class StateKind {
  kStateless,   // the paper's web server: stop, start elsewhere, update LB
  kSoftState,   // rebuildable caches: cheap to drop, costly to rewarm
  kStateful,    // state must be copied on every move
};

[[nodiscard]] std::string to_string(StateKind kind);

/// Constraints and metadata of the hosted application.
struct ApplicationModel {
  std::string name = "web-server";
  /// Human name of the performance metric ("requests per second").
  std::string metric = "req/s";
  QosClass qos = QosClass::kTolerant;

  /// Malleability: the application runs between min_instances and
  /// max_instances (0 = unbounded) concurrent instances, one per machine.
  int min_instances = 1;
  int max_instances = 0;

  /// Migration characteristics.
  StateKind state = StateKind::kStateless;
  /// Bytes of state per instance that must move on migration (0 for the
  /// stateless web server).
  double state_bytes = 0.0;
  /// Fixed per-instance stop + start + load-balancer-update time.
  Seconds restart_time = 2.0;

  /// Validates invariants; throws std::invalid_argument when violated.
  void validate() const;

  /// True when `combo` satisfies the instance bounds (one instance per
  /// machine).
  [[nodiscard]] bool accepts(const Combination& combo) const;
};

/// Adjusts `combo` to satisfy the application's instance bounds:
///  * below min_instances, Little machines are added (cheapest way to host
///    extra instances);
///  * above max_instances (when bounded), the combination is rejected with
///    std::nullopt — the caller must pick a coarser combination (fewer,
///    bigger machines).
[[nodiscard]] std::optional<Combination> clamp_combination(
    const ApplicationModel& app, const Catalog& candidates,
    const Combination& combo);

}  // namespace bml
