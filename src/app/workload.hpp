// The multi-tenant workload layer.
//
// The paper evaluates one web application against one Big/Medium/Little
// cluster; a production pool serves many applications at once, each with
// its own trace, predictor, scheduler, and QoS target. A Workload bundles
// one application's complete per-app stack; the Simulator replays a set of
// them against one shared Cluster (sim/simulator.hpp), with a coordinator
// (sched/coordinator.hpp) merging the per-app ideal combinations into one
// cluster-wide reconfiguration decision and the served load split back per
// app so QoS and energy are attributed to the application that caused
// them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "power/energy_meter.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// One application sharing the cluster: its trace, its scheduler (which
/// carries the predictor and QoS headroom), and its capacity share weight.
struct Workload {
  std::string name = "app";
  LoadTrace trace;
  std::unique_ptr<Scheduler> scheduler;
  /// QoS class of the application (informational at this layer — the
  /// scheduler applies the headroom; per-app reports echo it).
  QosClass qos = QosClass::kTolerant;
  /// Relative capacity share under the partitioned coordinator (weights
  /// are normalised across workloads; ignored by the sum coordinator).
  double share = 1.0;
  /// Fault-domain name for runtime faults (FaultModel::mtbf). Workloads
  /// naming the same domain share one crash/repair process and fail
  /// together; the empty default gives the workload its own private
  /// domain, so colocated apps fail independently out of the box. A
  /// failure strike in a domain only fells machines that domain's
  /// coordinator contributions entitle it to, and availability /
  /// lost-capacity accounting is kept per domain (every app in a domain
  /// reports the domain's numbers).
  std::string fault_domain;
  /// Availability SLO target in [0, 1]; 0 disables the SLO feedback loop.
  /// The simulator tracks the app's fault domain's trailing-window
  /// availability (window = SimulatorOptions::slo_window); while the
  /// window's downtime exceeds the target's error budget the coordinator
  /// provisions spare capacity — `slo_spare` of the app's proposal, per
  /// arch, rounded up — on top of the merged target, releasing it once
  /// the window recovers. Spare machines are exempt from the partitioned
  /// budget clamp (they are emergency headroom, not steady-state share).
  double slo_availability = 0.0;
  /// Spare-capacity fraction provisioned while the SLO is violated (> 0).
  double slo_spare = 0.25;
  /// Priority class (0..k, higher = more important; default 0). Ranks
  /// tenants for graceful degradation: the partitioned coordinator trims
  /// lowest-priority apps first when the budget binds, SLO spares are
  /// provisioned high-priority-first, and a strike that shrinks the fleet
  /// preempts low-priority provisioned capacity to backfill
  /// higher-priority apps instead of waiting for replacement boots. With
  /// every priority equal (the default) behaviour is byte-identical to a
  /// priority-unaware build.
  int priority = 0;
  /// Tenant lifecycle: the app participates in [arrive, depart). Before
  /// `arrive` and from `depart` on, the app is inactive — its scheduler is
  /// never consulted, it offers no load, accrues no QoS seconds or energy
  /// attribution, and the coordinator re-partitions capacity shares (and
  /// SLO spares / priority trims) over the active tenants only. A
  /// departure clears the app's proposal, so its machines drain through
  /// the normal transition path (graceful deferred offs included) at the
  /// next consult. The defaults (arrive at 0, never depart) keep the
  /// classic fixed-tenant model byte-identical.
  TimePoint arrive = 0;
  /// Departure second; -1 = the app stays until the end of the replay.
  /// When >= 0 it must be > arrive.
  TimePoint depart = -1;
};

/// Per-application slice of a multi-workload simulation: QoS against the
/// app's capacity allocation, and the app's share of compute /
/// reconfiguration energy.
///
/// Attribution rules (see Simulator):
///   * capacity is allocated load-proportionally each second
///     (Cluster::split_capacity), so an app is only "violated" when its
///     fair share fell short of its own offered load;
///   * compute power (idle included) is attributed by the same load
///     shares — an idle app colocated with a busy one pays nothing while
///     it offers nothing (equal split when no app offers load);
///   * reconfiguration power is attributed by each app's share of the
///     currently provisioned target capacity, so boot/shutdown energy
///     follows the app whose demand provisioned the machines;
///   * runtime-fault accounting is per fault domain (Workload::
///     fault_domain): `failures` counts the strikes that actually felled
///     one of the domain's machines, `availability` is the fraction of
///     simulated seconds the domain had no machine down, and
///     `lost_capacity` integrates the felled machines' serving capacity
///     over their downtime (req·s). Apps sharing a domain report the same
///     domain-level numbers.
struct WorkloadResult {
  std::string name;
  std::string scheduler_name;
  QosClass qos = QosClass::kTolerant;
  QosStats qos_stats;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;
  /// Runtime-fault slice of the app's fault domain (defaults describe a
  /// fault-free run).
  int failures = 0;
  std::int64_t unavailable_seconds = 0;
  double availability = 1.0;
  /// Integral of failed capacity over downtime, req·s.
  double lost_capacity = 0.0;
  /// SLO feedback slice (Workload::slo_availability): seconds this app
  /// had spare capacity provisioned, and the idle-power integral of those
  /// spare machines over that time — the energy cost of honouring the
  /// SLO. The energy is an attribution overlay: the machines' actual draw
  /// is already inside compute_energy; this reports how much of it the
  /// spares' idle floor accounts for.
  std::int64_t spare_seconds = 0;
  Joules spare_energy = 0.0;
  /// Degraded-mode slice (DegradeModel::overload_factor): seconds the
  /// cluster ran overloaded while this app offered load, and the app's
  /// load-proportional share of the capacity lost to the contention
  /// penalty (req·s).
  std::int64_t overload_seconds = 0;
  double penalty_lost_capacity = 0.0;
  /// Domain-level slice of the degraded-mode accounting (faults and the
  /// degrade model both active; as with failures, apps sharing a fault
  /// domain report the same domain numbers): seconds the cluster ran
  /// overloaded while any of the domain's apps offered load, and the
  /// domain's apps' summed penalty loss (req·s).
  std::int64_t domain_overload_seconds = 0;
  double domain_penalty_lost = 0.0;
  /// Priority/preemption slice (Workload::priority): seconds this app had
  /// at least one provisioned machine preempted away to backfill a
  /// higher-priority app after a strike.
  std::int64_t preempted_seconds = 0;
  /// Tenant-lifecycle slice (Workload::arrive / depart): seconds the app
  /// was active during the replay. Without lifecycle bounds this equals
  /// the replayed horizon (qos_stats.total_seconds).
  std::int64_t active_seconds = 0;

  [[nodiscard]] Joules total_energy() const {
    return compute_energy + reconfiguration_energy;
  }
};

/// Element-wise sum of the workloads' traces — the aggregate demand the
/// shared cluster must be designed for. The result spans the longest
/// trace; shorter traces contribute 0 beyond their end. A single workload
/// returns a copy of its trace (no arithmetic), so design sizing on the
/// sum is bit-identical to single-app sizing.
[[nodiscard]] LoadTrace combined_trace(const std::vector<Workload>& workloads);

/// As above over non-owning pointers (all non-null).
[[nodiscard]] LoadTrace combined_trace(
    const std::vector<const LoadTrace*>& traces);

}  // namespace bml
