// The multi-tenant workload layer.
//
// The paper evaluates one web application against one Big/Medium/Little
// cluster; a production pool serves many applications at once, each with
// its own trace, predictor, scheduler, and QoS target. A Workload bundles
// one application's complete per-app stack; the Simulator replays a set of
// them against one shared Cluster (sim/simulator.hpp), with a coordinator
// (sched/coordinator.hpp) merging the per-app ideal combinations into one
// cluster-wide reconfiguration decision and the served load split back per
// app so QoS and energy are attributed to the application that caused
// them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "power/energy_meter.hpp"
#include "sim/qos.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// One application sharing the cluster: its trace, its scheduler (which
/// carries the predictor and QoS headroom), and its capacity share weight.
struct Workload {
  std::string name = "app";
  LoadTrace trace;
  std::unique_ptr<Scheduler> scheduler;
  /// QoS class of the application (informational at this layer — the
  /// scheduler applies the headroom; per-app reports echo it).
  QosClass qos = QosClass::kTolerant;
  /// Relative capacity share under the partitioned coordinator (weights
  /// are normalised across workloads; ignored by the sum coordinator).
  double share = 1.0;
};

/// Per-application slice of a multi-workload simulation: QoS against the
/// app's capacity allocation, and the app's share of compute /
/// reconfiguration energy.
///
/// Attribution rules (see Simulator):
///   * capacity is allocated load-proportionally each second
///     (Cluster::split_capacity), so an app is only "violated" when its
///     fair share fell short of its own offered load;
///   * compute power (idle included) is attributed by the same load
///     shares — an idle app colocated with a busy one pays nothing while
///     it offers nothing (equal split when no app offers load);
///   * reconfiguration power is attributed by each app's share of the
///     currently provisioned target capacity, so boot/shutdown energy
///     follows the app whose demand provisioned the machines.
struct WorkloadResult {
  std::string name;
  std::string scheduler_name;
  QosClass qos = QosClass::kTolerant;
  QosStats qos_stats;
  Joules compute_energy = 0.0;
  Joules reconfiguration_energy = 0.0;

  [[nodiscard]] Joules total_energy() const {
    return compute_energy + reconfiguration_energy;
  }
};

/// Element-wise sum of the workloads' traces — the aggregate demand the
/// shared cluster must be designed for. The result spans the longest
/// trace; shorter traces contribute 0 beyond their end. A single workload
/// returns a copy of its trace (no arithmetic), so design sizing on the
/// sum is bit-identical to single-app sizing.
[[nodiscard]] LoadTrace combined_trace(const std::vector<Workload>& workloads);

/// As above over non-owning pointers (all non-null).
[[nodiscard]] LoadTrace combined_trace(
    const std::vector<const LoadTrace*>& traces);

}  // namespace bml
