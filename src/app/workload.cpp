#include "app/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

LoadTrace combined_trace(const std::vector<const LoadTrace*>& traces) {
  if (traces.empty()) return LoadTrace{};
  for (const LoadTrace* t : traces)
    if (!t) throw std::invalid_argument("combined_trace: null trace");
  if (traces.size() == 1) return *traces.front();
  std::size_t n = 0;
  for (const LoadTrace* t : traces) n = std::max(n, t->size());
  std::vector<double> rates(n, 0.0);
  for (const LoadTrace* t : traces)
    for (std::size_t s = 0; s < t->size(); ++s)
      rates[s] += t->at(static_cast<TimePoint>(s));
  return LoadTrace(std::move(rates));
}

LoadTrace combined_trace(const std::vector<Workload>& workloads) {
  std::vector<const LoadTrace*> traces;
  traces.reserve(workloads.size());
  for (const Workload& w : workloads) traces.push_back(&w.trace);
  return combined_trace(traces);
}

}  // namespace bml
