// Simulated profiling testbed.
//
// Substitutes the paper's physical measurement setup (Grid'5000 servers,
// a Samsung Chromebook and a Raspberry Pi behind a WattsUp?Pro wattmeter,
// lighttpd serving a CPU-bound CGI script, Siege as the load generator).
//
// A SimulatedMachine hides a *ground-truth* profile (unknown to the
// profiler) and exposes only what the real testbed exposes: offered
// concurrency in, completed requests out, and a noisy sampled power draw.
// The Profiler (profiler.hpp) must recover Table I from those observables,
// exercising the exact code path a user with real hardware would run.
#pragma once

#include <cstdint>
#include <string>

#include "arch/profile.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bml {

/// Ground truth describing one machine type under the target application.
struct MachineSpec {
  /// The true profile (max rate, power curve, transition costs).
  ArchitectureProfile truth;
  /// Concurrency scale at which throughput saturates: with c closed-loop
  /// clients the machine completes max_perf * c / (c + saturation_clients)
  /// requests per second. Smaller = saturates earlier.
  double saturation_clients = 4.0;
  /// Relative power measurement noise (wattmeter + workload variation).
  double power_noise = 0.01;
  /// Relative throughput noise (request work is randomised: the CGI loop
  /// count is drawn uniformly per request in the paper's benchmark).
  double throughput_noise = 0.02;

  explicit MachineSpec(ArchitectureProfile profile)
      : truth(std::move(profile)) {}
};

/// One bootable, loadable machine. All observable quantities are noisy.
class SimulatedMachine {
 public:
  SimulatedMachine(MachineSpec spec, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const { return spec_.truth.name(); }
  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  [[nodiscard]] MachineState state() const { return state_; }

  /// Sets the number of concurrent closed-loop clients (0 = idle).
  void set_clients(int clients);

  /// Requests completed during one second at the current concurrency;
  /// 0 unless On. Stochastic.
  [[nodiscard]] double observe_throughput();

  /// Instantaneous power draw (W) as a wattmeter would sample it: idle/load
  /// power when On, transition power while booting or shutting down, a
  /// small standby draw when Off. Stochastic.
  [[nodiscard]] Watts observe_power();

  /// Starts booting (machine must be Off).
  void power_on();
  /// Starts shutting down (machine must be On).
  void power_off();
  /// Advances wall-clock one second.
  void tick();

 private:
  [[nodiscard]] double noisy(double value, double sigma);

  MachineSpec spec_;
  Rng rng_;
  MachineState state_ = MachineState::kOff;
  Seconds transition_left_ = 0.0;
  int clients_ = 0;
};

/// WattsUp?Pro-style sampled meter: averages machine power over a window.
class Wattmeter {
 public:
  /// Samples `machine` once per second for `duration` seconds (the machine
  /// is ticked); returns the average power.
  [[nodiscard]] static Watts average_power(SimulatedMachine& machine,
                                           Seconds duration);

  /// Integrates power over `duration` seconds; returns Joules.
  [[nodiscard]] static Joules energy(SimulatedMachine& machine,
                                     Seconds duration);
};

}  // namespace bml
