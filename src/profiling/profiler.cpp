#include "profiling/profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace bml {

Profiler::Profiler(ProfilerOptions options) : options_(options) {
  if (options_.test_duration <= 0.0)
    throw std::invalid_argument("Profiler: test_duration must be > 0");
  if (options_.repetitions < 1)
    throw std::invalid_argument("Profiler: repetitions must be >= 1");
  if (options_.initial_clients < 1)
    throw std::invalid_argument("Profiler: initial_clients must be >= 1");
  if (options_.client_growth <= 1.0)
    throw std::invalid_argument("Profiler: client_growth must be > 1");
}

LoadTestResult Profiler::run_load_test(SimulatedMachine& machine,
                                       int clients) const {
  if (machine.state() != MachineState::kOn)
    throw std::logic_error("Profiler: machine must be On for a load test");
  machine.set_clients(clients);
  RunningStats throughput;
  RunningStats power;
  const auto seconds = static_cast<std::size_t>(options_.test_duration);
  for (std::size_t s = 0; s < seconds; ++s) {
    throughput.add(machine.observe_throughput());
    power.add(machine.observe_power());
    machine.tick();
  }
  machine.set_clients(0);
  return LoadTestResult{clients, throughput.mean(), power.mean()};
}

std::vector<LoadTestResult> Profiler::ramp(SimulatedMachine& machine) const {
  std::vector<LoadTestResult> results;
  int clients = options_.initial_clients;
  while (clients <= options_.max_clients) {
    results.push_back(run_load_test(machine, clients));
    if (results.size() >= 2) {
      const double prev = results[results.size() - 2].throughput;
      const double cur = results.back().throughput;
      if (prev > 0.0 && (cur - prev) / prev < options_.saturation_tolerance)
        break;
    }
    clients = std::max(clients + 1,
                       static_cast<int>(clients * options_.client_growth));
  }
  return results;
}

TransitionCost Profiler::measure_on_cost(SimulatedMachine& machine) const {
  if (machine.state() != MachineState::kOff)
    throw std::logic_error("Profiler: measure_on_cost requires Off");
  machine.power_on();
  TransitionCost cost;
  while (machine.state() == MachineState::kBooting) {
    cost.energy += machine.observe_power() * 1.0;
    cost.duration += 1.0;
    machine.tick();
  }
  return cost;
}

TransitionCost Profiler::measure_off_cost(SimulatedMachine& machine) const {
  if (machine.state() != MachineState::kOn)
    throw std::logic_error("Profiler: measure_off_cost requires On");
  machine.power_off();
  TransitionCost cost;
  while (machine.state() == MachineState::kShuttingDown) {
    cost.energy += machine.observe_power() * 1.0;
    cost.duration += 1.0;
    machine.tick();
  }
  return cost;
}

ArchitectureProfile Profiler::profile(SimulatedMachine& machine) const {
  // Boot (measuring the On cost on the way up).
  const TransitionCost on_cost = measure_on_cost(machine);

  // Idle power.
  machine.set_clients(0);
  const Watts idle = Wattmeter::average_power(
      machine, options_.test_duration);

  // Concurrency ramp to find saturation.
  const std::vector<LoadTestResult> steps = ramp(machine);
  const int saturated_clients = steps.back().clients;

  // "the maximum performance is the average of 5 results".
  RunningStats max_perf;
  RunningStats max_power;
  for (int rep = 0; rep < options_.repetitions; ++rep) {
    const LoadTestResult r = run_load_test(machine, saturated_clients);
    max_perf.add(r.throughput);
    max_power.add(r.power);
  }

  // Optional intermediate points for a piecewise power curve.
  std::vector<PowerSample> samples;
  if (options_.intermediate_points > 0) {
    samples.push_back({0.0, idle});
    for (int i = 1; i <= options_.intermediate_points; ++i) {
      const int clients = std::max(
          1, saturated_clients * i / (options_.intermediate_points + 1));
      const LoadTestResult r = run_load_test(machine, clients);
      if (r.throughput > samples.back().rate + 1e-6 &&
          r.throughput < max_perf.mean())
        samples.push_back({r.throughput, r.power});
    }
    samples.push_back({max_perf.mean(), max_power.mean()});
  }

  // Shutdown (measuring the Off cost on the way down).
  const TransitionCost off_cost = measure_off_cost(machine);

  if (!samples.empty())
    return ArchitectureProfile(machine.name(), std::move(samples), on_cost,
                               off_cost);
  return ArchitectureProfile(machine.name(), max_perf.mean(), idle,
                             std::max(max_power.mean(), idle + 1e-9), on_cost,
                             off_cost);
}

}  // namespace bml
