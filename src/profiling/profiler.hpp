// The Step 1 profiler: recovers an ArchitectureProfile from a simulated
// machine using only testbed observables.
//
// Mirrors the paper's procedure: "We execute the benchmark with an
// increasing number of concurrent clients in order to find the maximum
// request rate that can be processed. Each test runs for 30 seconds and the
// maximum performance is the average of 5 results. We also measure On/Off
// durations and energy consumption."
#pragma once

#include <vector>

#include "arch/profile.hpp"
#include "profiling/testbed.hpp"
#include "util/units.hpp"

namespace bml {

/// Profiling campaign parameters (paper defaults).
struct ProfilerOptions {
  /// Duration of each load test, seconds.
  Seconds test_duration = 30.0;
  /// Repetitions averaged for the maximum performance figure.
  int repetitions = 5;
  /// Concurrency ramp: starting client count and multiplicative growth.
  int initial_clients = 1;
  double client_growth = 2.0;
  /// Ramp stops when throughput improves by less than this fraction.
  double saturation_tolerance = 0.02;
  /// Safety cap on the ramp.
  int max_clients = 4096;
  /// Number of intermediate (rate, power) samples for a piecewise profile;
  /// 0 keeps the paper's linear two-point model.
  int intermediate_points = 0;
};

/// A single load-test measurement.
struct LoadTestResult {
  int clients = 0;
  ReqRate throughput = 0.0;
  Watts power = 0.0;
};

/// Step 1 measurement campaign over one machine.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  /// Runs one `duration`-second benchmark at fixed concurrency.
  [[nodiscard]] LoadTestResult run_load_test(SimulatedMachine& machine,
                                             int clients) const;

  /// Ramps concurrency until throughput saturates; returns every step.
  [[nodiscard]] std::vector<LoadTestResult> ramp(
      SimulatedMachine& machine) const;

  /// Measures boot duration and energy by powering the machine on and
  /// sampling until it reports On.
  [[nodiscard]] TransitionCost measure_on_cost(SimulatedMachine& machine) const;

  /// Measures shutdown duration and energy likewise.
  [[nodiscard]] TransitionCost measure_off_cost(
      SimulatedMachine& machine) const;

  /// Full Step 1 campaign: idle power, max performance (averaged over
  /// `repetitions` saturated runs), power at max, On/Off costs. The machine
  /// must start Off; it is left Off.
  [[nodiscard]] ArchitectureProfile profile(SimulatedMachine& machine) const;

  [[nodiscard]] const ProfilerOptions& options() const { return options_; }

 private:
  ProfilerOptions options_;
};

}  // namespace bml
