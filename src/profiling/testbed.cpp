#include "profiling/testbed.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

SimulatedMachine::SimulatedMachine(MachineSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

double SimulatedMachine::noisy(double value, double sigma) {
  if (sigma <= 0.0) return value;
  return std::max(0.0, value * (1.0 + rng_.normal(0.0, sigma)));
}

void SimulatedMachine::set_clients(int clients) {
  if (clients < 0)
    throw std::invalid_argument("SimulatedMachine: clients must be >= 0");
  clients_ = clients;
}

double SimulatedMachine::observe_throughput() {
  if (state_ != MachineState::kOn || clients_ == 0) return 0.0;
  // Closed-loop saturation: throughput rises with concurrency and levels
  // off at the machine's true maximum rate.
  const double c = static_cast<double>(clients_);
  const double rate =
      spec_.truth.max_perf() * c / (c + spec_.saturation_clients);
  return noisy(rate, spec_.throughput_noise);
}

Watts SimulatedMachine::observe_power() {
  switch (state_) {
    case MachineState::kOff:
      return 0.0;  // the paper's Off state draws nothing measurable
    case MachineState::kBooting:
      return noisy(spec_.truth.on_cost().average_power(), spec_.power_noise);
    case MachineState::kShuttingDown:
      return noisy(spec_.truth.off_cost().average_power(), spec_.power_noise);
    case MachineState::kOn: {
      const double c = static_cast<double>(clients_);
      const double rate =
          clients_ == 0
              ? 0.0
              : spec_.truth.max_perf() * c / (c + spec_.saturation_clients);
      return noisy(spec_.truth.power_at(rate), spec_.power_noise);
    }
  }
  return 0.0;
}

void SimulatedMachine::power_on() {
  if (state_ != MachineState::kOff)
    throw std::logic_error("SimulatedMachine: power_on requires Off");
  state_ = MachineState::kBooting;
  transition_left_ = spec_.truth.on_cost().duration;
  if (transition_left_ <= 0.0) state_ = MachineState::kOn;
}

void SimulatedMachine::power_off() {
  if (state_ != MachineState::kOn)
    throw std::logic_error("SimulatedMachine: power_off requires On");
  state_ = MachineState::kShuttingDown;
  transition_left_ = spec_.truth.off_cost().duration;
  if (transition_left_ <= 0.0) state_ = MachineState::kOff;
}

void SimulatedMachine::tick() {
  if (state_ == MachineState::kBooting ||
      state_ == MachineState::kShuttingDown) {
    transition_left_ -= 1.0;
    if (transition_left_ <= 1e-9) {
      state_ = state_ == MachineState::kBooting ? MachineState::kOn
                                                : MachineState::kOff;
      transition_left_ = 0.0;
    }
  }
}

Watts Wattmeter::average_power(SimulatedMachine& machine, Seconds duration) {
  if (duration <= 0.0)
    throw std::invalid_argument("Wattmeter: duration must be > 0");
  double sum = 0.0;
  const auto n = static_cast<std::size_t>(duration);
  for (std::size_t i = 0; i < n; ++i) {
    sum += machine.observe_power();
    machine.tick();
  }
  return sum / static_cast<double>(n);
}

Joules Wattmeter::energy(SimulatedMachine& machine, Seconds duration) {
  return average_power(machine, duration) * duration;
}

}  // namespace bml
