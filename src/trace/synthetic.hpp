// Synthetic load generators.
//
// The 1998 World Cup access trace the paper replays (days 6-92) is not
// redistributable, so `worldcup_like_trace` synthesises a workload with the
// same structure: ~3 months at 1 Hz, strong diurnal cycles, a tournament
// envelope that grows towards the finals, match-time flash crowds, and
// request-level noise. The evaluation only depends on this *shape* (peak /
// trough ratio, daily variability, growth trend); see DESIGN.md's
// substitution table.
//
// Additional generators cover tests and examples: constant, step, diurnal,
// and flash-crowd workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Constant-rate trace.
[[nodiscard]] LoadTrace constant_trace(ReqRate rate, Seconds duration);

/// Piecewise-constant trace: each (rate, duration) segment in order.
struct StepSegment {
  ReqRate rate = 0.0;
  Seconds duration = 0.0;
};
[[nodiscard]] LoadTrace step_trace(const std::vector<StepSegment>& segments);

/// Options for the daily sinusoidal pattern shared by the generators.
struct DiurnalOptions {
  /// Peak rate of the cycle (req/s).
  ReqRate peak = 1000.0;
  /// Trough as a fraction of peak, in [0, 1].
  double trough_fraction = 0.25;
  /// Hour of day (0-24) when the load peaks.
  double peak_hour = 18.0;
  /// Multiplicative Gaussian noise stddev (0 = deterministic).
  double noise = 0.02;
  std::uint64_t seed = 1;
};

/// `days` days of a diurnal cycle.
[[nodiscard]] LoadTrace diurnal_trace(const DiurnalOptions& options,
                                      std::size_t days);

/// A flash crowd: `base` rate with one burst of `burst_peak` req/s starting
/// at `burst_start`, ramping up over `ramp`, holding `hold`, decaying over
/// `ramp`. Total length `duration`.
struct FlashCrowdOptions {
  ReqRate base = 50.0;
  ReqRate burst_peak = 2000.0;
  Seconds duration = 3600.0;
  Seconds burst_start = 1200.0;
  Seconds ramp = 120.0;
  Seconds hold = 600.0;
};
[[nodiscard]] LoadTrace flash_crowd_trace(const FlashCrowdOptions& options);

/// Options for the World-Cup-like synthetic trace.
struct WorldCupOptions {
  /// Number of days (the paper replays 87: days 6 to 92).
  std::size_t days = 87;
  /// Peak rate of the whole trace. The default needs 4 Big (Paravance)
  /// machines, matching the paper's over-provisioned upper bound.
  ReqRate peak = 5200.0;
  /// Pre-tournament base traffic as a fraction of peak. The real WC98
  /// trace starts nearly idle relative to the finals' flood.
  double base_fraction = 0.004;
  /// 0-based day the tournament starts / ends within the trace window
  /// (the 1998 tournament spans roughly days 40-72 of the replayed range).
  std::size_t tournament_start_day = 40;
  std::size_t tournament_end_day = 72;
  /// Overnight trough as a fraction of the day's envelope. The 1998
  /// audience was regionally concentrated, giving strong (~10x) day/night
  /// swings.
  double diurnal_trough = 0.10;
  /// Local hours at which matches kick off on tournament days.
  std::vector<double> match_hours = {14.5, 17.5, 21.0};
  /// Match surge amplitude as a fraction of the day's envelope.
  double match_boost = 0.9;
  /// Match surge duration (s): ~2h of match plus buildup/teardown.
  Seconds match_duration = 2.0 * 3600.0;
  /// Probability that any given day carries a "news" flash crowd — a sharp
  /// surge unrelated to the diurnal cycle (injury news, draw announcements,
  /// ...). These bursts dominate the worst-case daily overhead of the
  /// pro-active scheduler: on a quiet day one burst forces a Big boot that
  /// the per-second lower bound never pays for.
  double news_burst_prob_per_day = 0.30;
  /// Burst amplitude range in pre-normalisation units (the tournament peak
  /// is ~1.9 units), i.e. roughly 5-25 % of the final peak rate.
  double news_burst_min_amplitude = 0.10;
  double news_burst_max_amplitude = 0.50;
  /// Burst plateau duration range (s) and ramp time (s).
  Seconds news_burst_min_duration = 600.0;
  Seconds news_burst_max_duration = 2400.0;
  Seconds news_burst_ramp = 120.0;
  /// Short micro-bursts (crawler sweeps, referral spikes): mean count per
  /// day, absolute amplitude range in raw units (0.002-0.02 of the
  /// tournament scale ~ 10-100 req/s) and duration range (s). Invisible on
  /// busy days; on quiet days they keep the look-ahead maximum well above
  /// the instantaneous load — the regime behind the paper's worst-day
  /// overhead.
  double micro_bursts_per_day = 30.0;
  double micro_burst_min_amplitude = 0.002;
  double micro_burst_max_amplitude = 0.05;
  Seconds micro_burst_min_duration = 30.0;
  Seconds micro_burst_max_duration = 300.0;
  /// Multiplicative Gaussian noise stddev applied to the smooth intensity
  /// (slow workload wander).
  double noise = 0.06;
  /// Emit integer per-second request counts drawn from a Poisson process
  /// around the smooth intensity — the statistical character of the real
  /// WC98 access log. Gives quiet periods the high *relative* variance
  /// that makes window-max prediction expensive (the effect behind the
  /// paper's per-day overhead spread). Disable for a smooth rate curve.
  bool poisson_arrivals = true;
  std::uint64_t seed = 1998;
};

/// Synthesises the World-Cup-like trace; see file comment.
[[nodiscard]] LoadTrace worldcup_like_trace(const WorldCupOptions& options);

}  // namespace bml
