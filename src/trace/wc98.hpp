// Reader/writer for the per-second request-count format derived from the
// 1998 World Cup access logs (ita.ee.lbl.gov): one line per active second,
//
//     <second> <request count>
//
// separated by whitespace or a comma, '#' comments allowed, seconds may be
// sparse (gaps are zero-filled) but must strictly increase. Users who hold
// the real trace can convert it with one awk line and replay the paper's
// evaluation with `examples/replay_trace` — the synthetic generator is
// only the fallback for this repository's offline benchmarks.
#pragma once

#include <filesystem>
#include <string>

#include "trace/trace.hpp"

namespace bml {

/// Parses the two-column format; throws std::runtime_error on malformed
/// lines, negative counts, or decreasing timestamps. `origin` is
/// subtracted from every timestamp (use it to replay "days 6 to 92" by
/// passing 6 * 86400 and pre-slicing the file accordingly).
[[nodiscard]] LoadTrace parse_wc98(const std::string& text,
                                   TimePoint origin = 0);

/// Reads and parses a file in the format above.
[[nodiscard]] LoadTrace load_wc98(const std::filesystem::path& path,
                                  TimePoint origin = 0);

/// Serialises a trace to the two-column format, skipping zero seconds
/// (matching the sparse encoding of the original logs).
[[nodiscard]] std::string format_wc98(const LoadTrace& trace);

void save_wc98(const LoadTrace& trace, const std::filesystem::path& path);

/// Loads a trace from either on-disk format, sniffing the first
/// non-comment line: a `rate` header selects the 1-column CSV of
/// LoadTrace::from_csv, anything else the sparse two-column WC98 format
/// above. The scenario engine's `trace = file` generator replays arbitrary
/// recorded workloads through this.
[[nodiscard]] LoadTrace load_any(const std::filesystem::path& path,
                                 TimePoint origin = 0);

}  // namespace bml
