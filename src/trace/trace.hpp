// Load traces: the application's request rate over time.
//
// A LoadTrace is a 1 Hz series of request rates (req/s), starting at t = 0.
// The evaluation slices traces per day (the paper reports per-day energy
// for days 6-92 of the 1998 World Cup trace).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "util/time_series.hpp"
#include "util/units.hpp"

namespace bml {

/// 1 Hz request-rate series with day-level helpers.
class LoadTrace {
 public:
  LoadTrace() = default;
  /// Throws std::invalid_argument when any rate is negative or non-finite.
  explicit LoadTrace(std::vector<double> rates);

  [[nodiscard]] std::size_t size() const { return series_.size(); }
  [[nodiscard]] bool empty() const { return series_.empty(); }
  [[nodiscard]] Seconds duration() const { return series_.duration(); }

  /// Rate at integer second `t`; 0 beyond the end (a finished trace serves
  /// no load).
  [[nodiscard]] ReqRate at(TimePoint t) const;

  /// Maximum rate over [begin, end) in seconds, clamped to the trace; the
  /// paper's look-ahead prediction primitive. Returns 0 for empty ranges.
  [[nodiscard]] ReqRate max_over(TimePoint begin, TimePoint end) const;

  /// First second after `t` whose rate differs from at(t) — the run-length
  /// primitive of the event-driven simulator. Returns size() when the rest
  /// of the trace holds the same value (the implicit 0 beyond the end
  /// counts as a change unless at(t) is itself 0). O(log #segments): the
  /// change points are indexed at construction.
  [[nodiscard]] TimePoint next_change(TimePoint t) const;

  [[nodiscard]] ReqRate peak() const;
  [[nodiscard]] ReqRate mean() const;

  /// Number of (possibly partial) days covered.
  [[nodiscard]] std::size_t days() const;

  /// Maximum rate of day `d` (0-based). Throws std::out_of_range.
  [[nodiscard]] ReqRate day_peak(std::size_t d) const;

  /// Total requests over the trace (integral of the rate).
  [[nodiscard]] double total_requests() const;

  [[nodiscard]] const TimeSeries& series() const { return series_; }

  /// Indices i with series[i] != series[i - 1], ascending — the segment
  /// starts of the piecewise-constant view. Consumed by
  /// sim/compiled_trace.hpp to build the RLE form in O(#segments).
  [[nodiscard]] const std::vector<std::size_t>& change_points() const {
    return change_points_;
  }

  /// CSV round-trip: single `rate` column, one row per second.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] static LoadTrace from_csv(const std::string& text);
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static LoadTrace load(const std::filesystem::path& path);

 private:
  TimeSeries series_;
  // Indices i with series_[i] != series_[i - 1], ascending — the segment
  // starts of a piecewise-constant view of the trace.
  std::vector<std::size_t> change_points_;
};

}  // namespace bml
