// Trace transforms: scaling, clipping, smoothing, resampling, slicing.
//
// Used by tests (shape manipulation), by the prediction-error ablation
// (smoothed vs raw traces), and by examples that tailor the synthetic
// workload to a custom catalog.
#pragma once

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Multiplies every rate by `factor` (>= 0).
[[nodiscard]] LoadTrace scale(const LoadTrace& trace, double factor);

/// Clamps every rate into [lo, hi].
[[nodiscard]] LoadTrace clip(const LoadTrace& trace, ReqRate lo, ReqRate hi);

/// Centered moving average over a window of `window` seconds (>= 1);
/// the window is truncated at the trace boundaries.
[[nodiscard]] LoadTrace smooth(const LoadTrace& trace, std::size_t window);

/// Keeps seconds [begin, end) of the trace.
[[nodiscard]] LoadTrace slice(const LoadTrace& trace, TimePoint begin,
                              TimePoint end);

/// Concatenates two traces.
[[nodiscard]] LoadTrace concat(const LoadTrace& a, const LoadTrace& b);

/// Downsamples by an integer factor, each output sample being the *max* of
/// its input bucket (conservative for capacity planning).
[[nodiscard]] LoadTrace downsample_max(const LoadTrace& trace,
                                       std::size_t factor);

/// Rounds every rate to the nearest integer (request counts).
[[nodiscard]] LoadTrace quantize(const LoadTrace& trace);

}  // namespace bml
