// Trace transforms: scaling, clipping, smoothing, resampling, slicing.
//
// Used by tests (shape manipulation), by the prediction-error ablation
// (smoothed vs raw traces), and by examples that tailor the synthetic
// workload to a custom catalog.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Multiplies every rate by `factor` (>= 0).
[[nodiscard]] LoadTrace scale(const LoadTrace& trace, double factor);

/// Clamps every rate into [lo, hi].
[[nodiscard]] LoadTrace clip(const LoadTrace& trace, ReqRate lo, ReqRate hi);

/// Centered moving average over a window of `window` seconds (>= 1);
/// the window is truncated at the trace boundaries.
[[nodiscard]] LoadTrace smooth(const LoadTrace& trace, std::size_t window);

/// Keeps seconds [begin, end) of the trace.
[[nodiscard]] LoadTrace slice(const LoadTrace& trace, TimePoint begin,
                              TimePoint end);

/// Concatenates two traces.
[[nodiscard]] LoadTrace concat(const LoadTrace& a, const LoadTrace& b);

/// Downsamples by an integer factor, each output sample being the *max* of
/// its input bucket (conservative for capacity planning).
[[nodiscard]] LoadTrace downsample_max(const LoadTrace& trace,
                                       std::size_t factor);

/// Rounds every rate to the nearest integer (request counts).
[[nodiscard]] LoadTrace quantize(const LoadTrace& trace);

/// Multiplies the trace by composed diurnal (24 h) and weekly (7 d)
/// cosine envelopes: rate(t) *= (1 + Ad*cos(2pi*(t - peak)/86400)) *
/// (1 + Aw*cos(2pi*(t - peak)/604800)) where peak = peak_hour*3600.
/// Amplitudes must lie in [0, 1] so the envelope never goes negative;
/// an amplitude of 0 disables that period. Composable on top of any
/// generator — turns a flat or noisy base trace into a seasonal one.
[[nodiscard]] LoadTrace compose_seasonality(const LoadTrace& trace,
                                            double diurnal_amplitude,
                                            double weekly_amplitude,
                                            double peak_hour);

/// Superimposes heavy-tailed load spikes: spike starts are spaced by
/// exponential gaps with mean `interarrival` seconds (> 0), each spike's
/// height is Pareto-distributed — `magnitude * (1-u)^(-1/alpha)` req/s,
/// capped at 100x magnitude — and decays linearly to zero over
/// `duration` seconds (>= 1). Deterministic in `seed`.
[[nodiscard]] LoadTrace add_spikes(const LoadTrace& trace,
                                   double interarrival, double magnitude,
                                   double alpha, std::size_t duration,
                                   std::uint64_t seed);

}  // namespace bml
