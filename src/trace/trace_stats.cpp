#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace bml {

TraceStats analyze_trace(const LoadTrace& trace) {
  if (trace.empty())
    throw std::invalid_argument("analyze_trace: empty trace");

  TraceStats stats;
  stats.seconds = trace.size();
  stats.days = trace.days();

  RunningStats rate;
  for (std::size_t t = 0; t < trace.size(); ++t)
    rate.add(trace.at(static_cast<TimePoint>(t)));
  stats.mean = rate.mean();
  stats.peak = rate.max();
  stats.peak_to_mean = stats.mean > 0.0 ? stats.peak / stats.mean : 0.0;
  stats.index_of_dispersion =
      stats.mean > 0.0 ? rate.variance() / stats.mean : 0.0;

  // Mean absolute one-second delta relative to the mean rate.
  if (trace.size() > 1 && stats.mean > 0.0) {
    double total = 0.0;
    for (std::size_t t = 1; t < trace.size(); ++t)
      total += std::abs(trace.at(static_cast<TimePoint>(t)) -
                        trace.at(static_cast<TimePoint>(t - 1)));
    stats.normalized_jitter =
        total / static_cast<double>(trace.size() - 1) / stats.mean;
  }

  // Autocorrelation at a 24 h lag (sampled each minute for speed).
  const auto lag = static_cast<std::size_t>(kSecondsPerDay);
  if (trace.size() > lag + 60 && rate.variance() > 0.0) {
    double covariance = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t + lag < trace.size(); t += 60) {
      covariance += (trace.at(static_cast<TimePoint>(t)) - stats.mean) *
                    (trace.at(static_cast<TimePoint>(t + lag)) - stats.mean);
      ++n;
    }
    stats.diurnal_autocorrelation =
        covariance / static_cast<double>(n) / rate.variance();
  }

  // Day-peak dynamic range.
  double quietest = std::numeric_limits<double>::infinity();
  double busiest = 0.0;
  for (std::size_t d = 0; d < trace.days(); ++d) {
    const double peak = trace.day_peak(d);
    quietest = std::min(quietest, peak);
    busiest = std::max(busiest, peak);
  }
  stats.day_peak_dynamic_range =
      busiest > 0.0 ? quietest / busiest : 0.0;

  return stats;
}

std::string to_string(const TraceStats& stats) {
  std::ostringstream os;
  os.precision(4);
  os << "seconds: " << stats.seconds << '\n'
     << "days: " << stats.days << '\n'
     << "mean rate: " << stats.mean << " req/s\n"
     << "peak rate: " << stats.peak << " req/s\n"
     << "peak/mean: " << stats.peak_to_mean << '\n'
     << "index of dispersion: " << stats.index_of_dispersion << '\n'
     << "normalized jitter: " << stats.normalized_jitter << '\n'
     << "diurnal autocorrelation: " << stats.diurnal_autocorrelation << '\n'
     << "day-peak dynamic range (quietest/busiest): "
     << stats.day_peak_dynamic_range << '\n';
  return os.str();
}

}  // namespace bml
