// Workload statistics for trace characterization.
//
// Used to compare the synthetic World-Cup-like workload against real
// traces (or any two traces): peak-to-mean ratio, burstiness (index of
// dispersion), second-to-second jitter, diurnal strength (autocorrelation
// at the 24 h lag), and day-level summaries. These are the quantities that
// determine the Fig. 5 overhead spread — see EXPERIMENTS.md's discussion
// of the synthetic-vs-real gap.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace bml {

/// Aggregate statistics of one load trace.
struct TraceStats {
  std::size_t seconds = 0;
  std::size_t days = 0;
  ReqRate mean = 0.0;
  ReqRate peak = 0.0;
  /// Peak divided by mean (over-provisioning factor of static sizing).
  double peak_to_mean = 0.0;
  /// Index of dispersion: variance / mean of the per-second counts.
  /// 1 for a Poisson process; > 1 means burstier than Poisson.
  double index_of_dispersion = 0.0;
  /// Mean absolute second-to-second change, normalised by the mean rate.
  double normalized_jitter = 0.0;
  /// Autocorrelation of the rate at a 24 h lag, in [-1, 1]; near 1 for a
  /// strongly diurnal workload.
  double diurnal_autocorrelation = 0.0;
  /// Ratio of the quietest day's peak to the busiest day's peak — the
  /// dynamic range the reconfiguring data center must span.
  double day_peak_dynamic_range = 0.0;
};

/// Computes TraceStats; throws std::invalid_argument on an empty trace.
[[nodiscard]] TraceStats analyze_trace(const LoadTrace& trace);

/// Renders the stats as "key: value" lines for reports.
[[nodiscard]] std::string to_string(const TraceStats& stats);

}  // namespace bml
