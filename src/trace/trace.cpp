#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/run_length.hpp"

namespace bml {

LoadTrace::LoadTrace(std::vector<double> rates) {
  for (double r : rates)
    if (!(r >= 0.0) || !std::isfinite(r))
      throw std::invalid_argument(
          "LoadTrace: rates must be finite and >= 0");
  series_ = TimeSeries(std::move(rates), 1.0);
  series_.build_max_index();
  for (std::size_t i = 1; i < series_.size(); ++i)
    if (series_[i] != series_[i - 1]) change_points_.push_back(i);
}

ReqRate LoadTrace::at(TimePoint t) const {
  if (t < 0) throw std::invalid_argument("LoadTrace: negative time");
  const auto idx = static_cast<std::size_t>(t);
  if (idx >= series_.size()) return 0.0;
  return series_[idx];
}

ReqRate LoadTrace::max_over(TimePoint begin, TimePoint end) const {
  if (begin < 0) begin = 0;
  if (end <= begin) return 0.0;
  return series_.max_over(static_cast<std::size_t>(begin),
                          static_cast<std::size_t>(end));
}

TimePoint LoadTrace::next_change(TimePoint t) const {
  if (t < 0) throw std::invalid_argument("LoadTrace: negative time");
  const std::size_t n = series_.size();
  const auto idx = static_cast<std::size_t>(t);
  if (idx >= n) {
    // Beyond the end the trace serves 0 forever: no further change.
    return std::numeric_limits<TimePoint>::max();
  }
  return next_change_point(change_points_, idx, n, series_[n - 1]);
}

ReqRate LoadTrace::peak() const { return series_.empty() ? 0.0 : series_.max(); }

ReqRate LoadTrace::mean() const {
  return series_.empty() ? 0.0 : series_.mean();
}

std::size_t LoadTrace::days() const {
  const auto day = static_cast<std::size_t>(kSecondsPerDay);
  return (series_.size() + day - 1) / day;
}

ReqRate LoadTrace::day_peak(std::size_t d) const {
  if (d >= days()) throw std::out_of_range("LoadTrace: day out of range");
  const auto day = static_cast<std::size_t>(kSecondsPerDay);
  return series_.max_over(d * day, (d + 1) * day);
}

double LoadTrace::total_requests() const { return series_.integral(); }

std::string LoadTrace::to_csv() const {
  std::ostringstream os;
  os << "rate\n";
  os.precision(10);
  for (std::size_t i = 0; i < series_.size(); ++i) os << series_[i] << '\n';
  return os.str();
}

LoadTrace LoadTrace::from_csv(const std::string& text) {
  const CsvTable table = parse_csv(text, /*has_header=*/true);
  const std::size_t col = table.column("rate");
  std::vector<double> rates;
  rates.reserve(table.rows.size());
  for (const auto& row : table.rows) rates.push_back(parse_double(row[col]));
  return LoadTrace(std::move(rates));
}

void LoadTrace::save(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("LoadTrace: cannot open " + path.string());
  out << to_csv();
}

LoadTrace LoadTrace::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("LoadTrace: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace bml
