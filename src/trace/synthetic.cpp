#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace bml {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Raised-cosine bump: 0 at x=0 and x=1, 1 at x=0.5.
double raised_cosine(double x) {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return 0.5 * (1.0 - std::cos(kTwoPi * x));
}

}  // namespace

LoadTrace constant_trace(ReqRate rate, Seconds duration) {
  if (rate < 0.0) throw std::invalid_argument("constant_trace: rate < 0");
  if (duration < 0.0)
    throw std::invalid_argument("constant_trace: duration < 0");
  return LoadTrace(
      std::vector<double>(static_cast<std::size_t>(duration), rate));
}

LoadTrace step_trace(const std::vector<StepSegment>& segments) {
  std::vector<double> rates;
  for (const StepSegment& s : segments) {
    if (s.rate < 0.0 || s.duration < 0.0)
      throw std::invalid_argument("step_trace: negative rate or duration");
    rates.insert(rates.end(), static_cast<std::size_t>(s.duration), s.rate);
  }
  return LoadTrace(std::move(rates));
}

LoadTrace diurnal_trace(const DiurnalOptions& options, std::size_t days) {
  if (options.peak <= 0.0)
    throw std::invalid_argument("diurnal_trace: peak must be > 0");
  if (options.trough_fraction < 0.0 || options.trough_fraction > 1.0)
    throw std::invalid_argument(
        "diurnal_trace: trough_fraction must be in [0,1]");
  Rng rng(options.seed);
  std::vector<double> rates;
  rates.reserve(days * static_cast<std::size_t>(kSecondsPerDay));
  for (std::size_t d = 0; d < days; ++d) {
    for (TimePoint s = 0; s < kSecondsPerDay; ++s) {
      const double tod = static_cast<double>(s) / 3600.0;
      const double shape =
          options.trough_fraction +
          (1.0 - options.trough_fraction) * 0.5 *
              (1.0 + std::cos(kTwoPi * (tod - options.peak_hour) / 24.0));
      double rate = options.peak * shape;
      if (options.noise > 0.0)
        rate *= std::max(0.0, 1.0 + rng.normal(0.0, options.noise));
      rates.push_back(std::max(0.0, rate));
    }
  }
  return LoadTrace(std::move(rates));
}

LoadTrace flash_crowd_trace(const FlashCrowdOptions& options) {
  if (options.duration <= 0.0)
    throw std::invalid_argument("flash_crowd_trace: duration must be > 0");
  std::vector<double> rates;
  const auto n = static_cast<std::size_t>(options.duration);
  rates.reserve(n);
  const double up_end = options.burst_start + options.ramp;
  const double hold_end = up_end + options.hold;
  const double down_end = hold_end + options.ramp;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = static_cast<double>(i);
    double burst = 0.0;
    if (t >= options.burst_start && t < up_end && options.ramp > 0.0)
      burst = (t - options.burst_start) / options.ramp;
    else if (t >= up_end && t < hold_end)
      burst = 1.0;
    else if (t >= hold_end && t < down_end && options.ramp > 0.0)
      burst = 1.0 - (t - hold_end) / options.ramp;
    rates.push_back(options.base +
                    burst * (options.burst_peak - options.base));
  }
  return LoadTrace(std::move(rates));
}

LoadTrace worldcup_like_trace(const WorldCupOptions& options) {
  if (options.days == 0)
    throw std::invalid_argument("worldcup_like_trace: days must be > 0");
  if (options.peak <= 0.0)
    throw std::invalid_argument("worldcup_like_trace: peak must be > 0");
  if (options.tournament_end_day < options.tournament_start_day)
    throw std::invalid_argument(
        "worldcup_like_trace: tournament must end after it starts");

  Rng rng(options.seed);

  // Per-day traffic envelope: modest pre-tournament growth, a strong ramp
  // through the group stage, the maximum around the knockout/finals, and a
  // quick decay afterwards. Mirrors the WC98 trace's published volume curve.
  std::vector<double> envelope(options.days, options.base_fraction);
  for (std::size_t d = 0; d < options.days; ++d) {
    double e;
    if (d < options.tournament_start_day) {
      const double x = static_cast<double>(d) /
                       std::max<std::size_t>(1, options.tournament_start_day);
      e = options.base_fraction + 0.12 * x * x;
    } else if (d <= options.tournament_end_day) {
      const double span = std::max<std::size_t>(
          1, options.tournament_end_day - options.tournament_start_day);
      const double x =
          static_cast<double>(d - options.tournament_start_day) / span;
      e = 0.30 + 0.70 * std::pow(x, 1.4);
    } else {
      const double after = static_cast<double>(d - options.tournament_end_day);
      e = std::max(options.base_fraction, 1.0 * std::exp(-after / 4.0));
    }
    // Mild weekly modulation (weekend uplift for a sports event site).
    const bool weekend = (d % 7 == 5) || (d % 7 == 6);
    envelope[d] = e * (weekend ? 1.05 : 1.0);
  }

  const auto total =
      options.days * static_cast<std::size_t>(kSecondsPerDay);
  std::vector<double> rates(total, 0.0);
  double raw_max = 0.0;
  for (std::size_t d = 0; d < options.days; ++d) {
    const bool match_day =
        d >= options.tournament_start_day && d <= options.tournament_end_day;
    for (TimePoint s = 0; s < kSecondsPerDay; ++s) {
      const double tod = static_cast<double>(s) / 3600.0;
      // Diurnal shape peaking in the evening.
      const double trough = options.diurnal_trough;
      const double diurnal =
          trough + (1.0 - trough) * 0.5 *
                       (1.0 + std::cos(kTwoPi * (tod - 18.0) / 24.0));
      double value = envelope[d] * diurnal;
      if (match_day) {
        const double hours = options.match_duration / 3600.0;
        for (double kick : options.match_hours) {
          const double x = (tod - kick) / hours;
          value += envelope[d] * options.match_boost * raised_cosine(x);
        }
      }
      const auto idx =
          d * static_cast<std::size_t>(kSecondsPerDay) +
          static_cast<std::size_t>(s);
      rates[idx] = value;
      raw_max = std::max(raw_max, value);
    }
  }

  // News flash crowds: trapezoidal surges at a random time of day on a
  // random subset of days, in raw (pre-normalisation) units.
  for (std::size_t d = 0; d < options.days; ++d) {
    if (!rng.chance(options.news_burst_prob_per_day)) continue;
    const double amplitude = rng.uniform(options.news_burst_min_amplitude,
                                         options.news_burst_max_amplitude);
    const double plateau = rng.uniform(options.news_burst_min_duration,
                                       options.news_burst_max_duration);
    const double ramp = options.news_burst_ramp;
    const auto start = static_cast<TimePoint>(
        rng.uniform(0.0, static_cast<double>(kSecondsPerDay) - plateau -
                             2.0 * ramp - 1.0));
    const auto day_base =
        static_cast<TimePoint>(d) * kSecondsPerDay;
    for (TimePoint s = 0;
         s < static_cast<TimePoint>(plateau + 2.0 * ramp); ++s) {
      const auto x = static_cast<double>(s);
      double factor = 1.0;
      if (x < ramp)
        factor = x / ramp;
      else if (x > ramp + plateau)
        factor = 1.0 - (x - ramp - plateau) / ramp;
      const auto idx = static_cast<std::size_t>(day_base + start + s);
      if (idx < rates.size()) rates[idx] += amplitude * factor;
    }
  }

  // Micro-bursts: short rectangular spikes at Poisson-random times.
  if (options.micro_bursts_per_day > 0.0) {
    for (std::size_t d = 0; d < options.days; ++d) {
      const auto count = rng.poisson(options.micro_bursts_per_day);
      for (std::int64_t b = 0; b < count; ++b) {
        const double amplitude =
            rng.uniform(options.micro_burst_min_amplitude,
                        options.micro_burst_max_amplitude);
        const auto duration = static_cast<TimePoint>(
            rng.uniform(options.micro_burst_min_duration,
                        options.micro_burst_max_duration));
        const auto start =
            static_cast<TimePoint>(d) * kSecondsPerDay +
            rng.uniform_int(0, kSecondsPerDay - duration - 1);
        for (TimePoint s = 0; s < duration; ++s) {
          const auto idx = static_cast<std::size_t>(start + s);
          if (idx < rates.size()) rates[idx] += amplitude;
        }
      }
    }
  }

  // Multiplicative intensity noise (slow workload wander).
  double shaped_max = 0.0;
  for (double& r : rates) {
    if (options.noise > 0.0)
      r *= std::max(0.0, 1.0 + rng.normal(0.0, options.noise));
    shaped_max = std::max(shaped_max, r);
  }
  if (shaped_max <= 0.0)
    throw std::logic_error("worldcup_like_trace: degenerate trace");

  // Pre-scale the smooth intensity to the requested peak, then (optionally)
  // draw per-second Poisson request counts around it — the granularity of
  // the real access log. A final rescale pins the realised maximum to
  // `peak` so "dimensioned for the maximum request rate" is well-defined.
  const double intensity_scale = options.peak / shaped_max;
  double realized_max = 0.0;
  for (double& r : rates) {
    r *= intensity_scale;
    if (options.poisson_arrivals)
      r = static_cast<double>(rng.poisson(r));
    realized_max = std::max(realized_max, r);
  }
  if (realized_max <= 0.0)
    throw std::logic_error("worldcup_like_trace: degenerate trace");
  const double final_scale = options.peak / realized_max;
  for (double& r : rates) r = std::max(0.0, r * final_scale);

  return LoadTrace(std::move(rates));
}

}  // namespace bml
