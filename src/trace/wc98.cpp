#include "trace/wc98.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"

namespace bml {

LoadTrace parse_wc98(const std::string& text, TimePoint origin) {
  std::vector<double> rates;
  std::istringstream in(text);
  std::string line;
  TimePoint previous = -1;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Normalise separators, strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    for (char& c : line)
      if (c == ',') c = ' ';
    std::istringstream fields(line);
    long long second = 0;
    double count = 0.0;
    if (!(fields >> second)) continue;  // blank line
    if (!(fields >> count))
      throw std::runtime_error("parse_wc98: missing count on line " +
                               std::to_string(line_number));
    std::string extra;
    if (fields >> extra)
      throw std::runtime_error("parse_wc98: trailing data on line " +
                               std::to_string(line_number));
    if (count < 0.0)
      throw std::runtime_error("parse_wc98: negative count on line " +
                               std::to_string(line_number));
    const TimePoint t = static_cast<TimePoint>(second) - origin;
    if (t < 0)
      throw std::runtime_error("parse_wc98: timestamp before origin on line " +
                               std::to_string(line_number));
    if (t <= previous)
      throw std::runtime_error(
          "parse_wc98: timestamps must strictly increase (line " +
          std::to_string(line_number) + ")");
    // Zero-fill the gap, then place the sample.
    rates.resize(static_cast<std::size_t>(t), 0.0);
    rates.push_back(count);
    previous = t;
  }
  return LoadTrace(std::move(rates));
}

LoadTrace load_wc98(const std::filesystem::path& path, TimePoint origin) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_wc98: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_wc98(buffer.str(), origin);
}

std::string format_wc98(const LoadTrace& trace) {
  std::ostringstream os;
  os << "# seconds with zero requests omitted\n";
  os.precision(17);  // enough decimal digits to round-trip any double
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const double rate = trace.at(static_cast<TimePoint>(t));
    if (rate > 0.0) os << t << ' ' << rate << '\n';
  }
  return os.str();
}

void save_wc98(const LoadTrace& trace, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_wc98: cannot open " + path.string());
  out << format_wc98(trace);
}

LoadTrace load_any(const std::filesystem::path& path, TimePoint origin) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_any: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Sniff the first meaningful line: the CSV trace format carries a header
  // with a `rate` column (possibly among others); the WC98 format starts
  // with a number.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::vector<std::string> cells = split_csv_line(line);
    if (std::find(cells.begin(), cells.end(), "rate") != cells.end()) {
      if (origin != 0)
        throw std::runtime_error(
            "load_any: origin offsets apply to the WC98 format only");
      return LoadTrace::from_csv(text);
    }
    break;
  }
  return parse_wc98(text, origin);
}

}  // namespace bml
