#include "trace/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace bml {

namespace {

std::vector<double> copy_rates(const LoadTrace& trace) {
  const auto span = trace.series().values();
  return std::vector<double>(span.begin(), span.end());
}

}  // namespace

LoadTrace scale(const LoadTrace& trace, double factor) {
  if (factor < 0.0) throw std::invalid_argument("scale: factor must be >= 0");
  auto rates = copy_rates(trace);
  for (double& r : rates) r *= factor;
  return LoadTrace(std::move(rates));
}

LoadTrace clip(const LoadTrace& trace, ReqRate lo, ReqRate hi) {
  if (lo < 0.0 || hi < lo)
    throw std::invalid_argument("clip: need 0 <= lo <= hi");
  auto rates = copy_rates(trace);
  for (double& r : rates) r = std::clamp(r, lo, hi);
  return LoadTrace(std::move(rates));
}

LoadTrace smooth(const LoadTrace& trace, std::size_t window) {
  if (window == 0) throw std::invalid_argument("smooth: window must be >= 1");
  const auto rates = copy_rates(trace);
  const std::size_t n = rates.size();
  // Prefix sums make each window average O(1).
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + rates[i];
  std::vector<double> out(n, 0.0);
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = i >= half ? i - half : 0;
    const std::size_t end = std::min(n, i + window - half);
    out[i] = (prefix[end] - prefix[begin]) / static_cast<double>(end - begin);
  }
  return LoadTrace(std::move(out));
}

LoadTrace slice(const LoadTrace& trace, TimePoint begin, TimePoint end) {
  if (begin < 0 || end < begin)
    throw std::invalid_argument("slice: need 0 <= begin <= end");
  const auto rates = copy_rates(trace);
  const auto b = std::min<std::size_t>(static_cast<std::size_t>(begin),
                                       rates.size());
  const auto e =
      std::min<std::size_t>(static_cast<std::size_t>(end), rates.size());
  return LoadTrace(std::vector<double>(rates.begin() + static_cast<std::ptrdiff_t>(b),
                                       rates.begin() + static_cast<std::ptrdiff_t>(e)));
}

LoadTrace concat(const LoadTrace& a, const LoadTrace& b) {
  auto rates = copy_rates(a);
  const auto more = copy_rates(b);
  rates.insert(rates.end(), more.begin(), more.end());
  return LoadTrace(std::move(rates));
}

LoadTrace downsample_max(const LoadTrace& trace, std::size_t factor) {
  if (factor == 0)
    throw std::invalid_argument("downsample_max: factor must be >= 1");
  const auto rates = copy_rates(trace);
  std::vector<double> out;
  out.reserve(rates.size() / factor + 1);
  for (std::size_t i = 0; i < rates.size(); i += factor) {
    const std::size_t end = std::min(rates.size(), i + factor);
    out.push_back(*std::max_element(
        rates.begin() + static_cast<std::ptrdiff_t>(i),
        rates.begin() + static_cast<std::ptrdiff_t>(end)));
  }
  return LoadTrace(std::move(out));
}

LoadTrace quantize(const LoadTrace& trace) {
  auto rates = copy_rates(trace);
  for (double& r : rates) r = std::round(r);
  return LoadTrace(std::move(rates));
}

}  // namespace bml
