#include "trace/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace bml {

namespace {

std::vector<double> copy_rates(const LoadTrace& trace) {
  const auto span = trace.series().values();
  return std::vector<double>(span.begin(), span.end());
}

}  // namespace

LoadTrace scale(const LoadTrace& trace, double factor) {
  if (factor < 0.0) throw std::invalid_argument("scale: factor must be >= 0");
  auto rates = copy_rates(trace);
  for (double& r : rates) r *= factor;
  return LoadTrace(std::move(rates));
}

LoadTrace clip(const LoadTrace& trace, ReqRate lo, ReqRate hi) {
  if (lo < 0.0 || hi < lo)
    throw std::invalid_argument("clip: need 0 <= lo <= hi");
  auto rates = copy_rates(trace);
  for (double& r : rates) r = std::clamp(r, lo, hi);
  return LoadTrace(std::move(rates));
}

LoadTrace smooth(const LoadTrace& trace, std::size_t window) {
  if (window == 0) throw std::invalid_argument("smooth: window must be >= 1");
  const auto rates = copy_rates(trace);
  const std::size_t n = rates.size();
  // Prefix sums make each window average O(1).
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + rates[i];
  std::vector<double> out(n, 0.0);
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = i >= half ? i - half : 0;
    const std::size_t end = std::min(n, i + window - half);
    out[i] = (prefix[end] - prefix[begin]) / static_cast<double>(end - begin);
  }
  return LoadTrace(std::move(out));
}

LoadTrace slice(const LoadTrace& trace, TimePoint begin, TimePoint end) {
  if (begin < 0 || end < begin)
    throw std::invalid_argument("slice: need 0 <= begin <= end");
  const auto rates = copy_rates(trace);
  const auto b = std::min<std::size_t>(static_cast<std::size_t>(begin),
                                       rates.size());
  const auto e =
      std::min<std::size_t>(static_cast<std::size_t>(end), rates.size());
  return LoadTrace(std::vector<double>(rates.begin() + static_cast<std::ptrdiff_t>(b),
                                       rates.begin() + static_cast<std::ptrdiff_t>(e)));
}

LoadTrace concat(const LoadTrace& a, const LoadTrace& b) {
  auto rates = copy_rates(a);
  const auto more = copy_rates(b);
  rates.insert(rates.end(), more.begin(), more.end());
  return LoadTrace(std::move(rates));
}

LoadTrace downsample_max(const LoadTrace& trace, std::size_t factor) {
  if (factor == 0)
    throw std::invalid_argument("downsample_max: factor must be >= 1");
  const auto rates = copy_rates(trace);
  std::vector<double> out;
  out.reserve(rates.size() / factor + 1);
  for (std::size_t i = 0; i < rates.size(); i += factor) {
    const std::size_t end = std::min(rates.size(), i + factor);
    out.push_back(*std::max_element(
        rates.begin() + static_cast<std::ptrdiff_t>(i),
        rates.begin() + static_cast<std::ptrdiff_t>(end)));
  }
  return LoadTrace(std::move(out));
}

LoadTrace quantize(const LoadTrace& trace) {
  auto rates = copy_rates(trace);
  for (double& r : rates) r = std::round(r);
  return LoadTrace(std::move(rates));
}

LoadTrace compose_seasonality(const LoadTrace& trace,
                              double diurnal_amplitude,
                              double weekly_amplitude, double peak_hour) {
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0)
    throw std::invalid_argument(
        "compose_seasonality: diurnal amplitude must be in [0, 1]");
  if (weekly_amplitude < 0.0 || weekly_amplitude > 1.0)
    throw std::invalid_argument(
        "compose_seasonality: weekly amplitude must be in [0, 1]");
  constexpr double kDay = 86400.0;
  constexpr double kWeek = 604800.0;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double peak = peak_hour * 3600.0;
  auto rates = copy_rates(trace);
  for (std::size_t t = 0; t < rates.size(); ++t) {
    const double phase = static_cast<double>(t) - peak;
    double envelope = 1.0;
    if (diurnal_amplitude > 0.0)
      envelope *= 1.0 + diurnal_amplitude * std::cos(kTwoPi * phase / kDay);
    if (weekly_amplitude > 0.0)
      envelope *= 1.0 + weekly_amplitude * std::cos(kTwoPi * phase / kWeek);
    rates[t] *= envelope;
  }
  return LoadTrace(std::move(rates));
}

LoadTrace add_spikes(const LoadTrace& trace, double interarrival,
                     double magnitude, double alpha, std::size_t duration,
                     std::uint64_t seed) {
  if (interarrival <= 0.0)
    throw std::invalid_argument("add_spikes: interarrival must be > 0");
  if (magnitude < 0.0)
    throw std::invalid_argument("add_spikes: magnitude must be >= 0");
  if (alpha <= 0.0)
    throw std::invalid_argument("add_spikes: alpha must be > 0");
  if (duration == 0)
    throw std::invalid_argument("add_spikes: duration must be >= 1");
  auto rates = copy_rates(trace);
  Rng rng(seed);
  double at = 0.0;
  while (true) {
    // Exponential gap with a 1 s floor, mirroring the fault timeline.
    const double u = rng.uniform(0.0, 1.0);
    at += std::max(1.0, -interarrival * std::log(1.0 - u));
    if (at >= static_cast<double>(rates.size())) break;
    // Pareto(alpha) height scaled by `magnitude`; the cap keeps a single
    // extreme draw from dwarfing the rest of the trace.
    const double v = rng.uniform(0.0, 1.0);
    const double height =
        std::min(magnitude * std::pow(1.0 - v, -1.0 / alpha),
                 100.0 * magnitude);
    const auto start = static_cast<std::size_t>(at);
    for (std::size_t k = 0; k < duration && start + k < rates.size(); ++k)
      rates[start + k] += height * (1.0 - static_cast<double>(k) /
                                              static_cast<double>(duration));
  }
  return LoadTrace(std::move(rates));
}

}  // namespace bml
