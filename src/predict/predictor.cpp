#include "predict/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "util/run_length.hpp"

namespace bml {

namespace {

/// Conservative first time strictly after `now` at which the sliding-window
/// maximum max_over(t - lead, t - lag) may change value, found by walking
/// the trace's piecewise-constant segments via next_change(). Two events
/// can move the max:
///   * a sample larger than the current max enters the window — index
///     j >= now - lag enters at t = j + lag + 1;
///   * the last window index attaining the max slides out — index i leaves
///     at t = i + lead + 1 (a max of 0 cannot drop, rates are >= 0).
/// Both walks are capped: past kMaxSegments segments the trace is too
/// fragmented for batching to pay off and the bound degrades to now + 1,
/// preserving per-second querying.
TimePoint sliding_max_stable_until(const LoadTrace& trace, TimePoint now,
                                   TimePoint lead, TimePoint lag) {
  constexpr int kMaxSegments = 64;
  constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();
  const auto size = static_cast<TimePoint>(trace.size());
  const double v = trace.max_over(now - lead, now - lag);

  TimePoint leave_at = kNever;
  if (v > 0.0) {
    const TimePoint lo = std::max<TimePoint>(now - lead, 0);
    const TimePoint hi = std::min(now - lag, size);
    TimePoint last_attaining = -1;
    int segments = 0;
    for (TimePoint cur = lo; cur < hi;) {
      if (++segments > kMaxSegments) return now + 1;
      const TimePoint seg_end = std::min(trace.next_change(cur), hi);
      if (trace.at(cur) == v) last_attaining = seg_end - 1;
      cur = seg_end;
    }
    if (last_attaining >= 0) leave_at = last_attaining + lead + 1;
  }

  // Samples beyond the trace end are the implicit 0, which never exceeds a
  // non-negative max, so the scan stops at the trace end. Bailing out at
  // the segment cap is still sound: every sample walked so far was <= v.
  TimePoint enter_at = kNever;
  int segments = 0;
  for (TimePoint cur = std::max<TimePoint>(now - lag, 0);
       cur < size && cur + lag + 1 < leave_at;) {
    if (trace.at(cur) > v) {
      enter_at = cur + lag + 1;
      break;
    }
    if (++segments > kMaxSegments) {
      enter_at = cur + lag + 1;
      break;
    }
    cur = trace.next_change(cur);
  }

  return std::max(std::min(enter_at, leave_at), now + 1);
}

}  // namespace

void OracleMaxPredictor::rebuild_cache(const LoadTrace& trace,
                                       Seconds horizon) {
  const std::size_t n = trace.size();
  const auto w = static_cast<std::size_t>(horizon);
  window_max_.assign(n, 0.0);
  // Monotonic deque of indices with decreasing values over [t, t + w).
  std::deque<std::size_t> deque;
  // Seed with the first window, then slide leftwards... simplest is a
  // right-to-left sparse approach; a forward pass works too: maintain the
  // deque over a window that advances with t.
  std::size_t right = 0;  // first index not yet inserted
  for (std::size_t t = 0; t < n; ++t) {
    while (right < std::min(n, t + w)) {
      const double v = trace.at(static_cast<TimePoint>(right));
      while (!deque.empty() &&
             trace.at(static_cast<TimePoint>(deque.back())) <= v)
        deque.pop_back();
      deque.push_back(right);
      ++right;
    }
    while (!deque.empty() && deque.front() < t) deque.pop_front();
    window_max_[t] =
        deque.empty() ? 0.0 : trace.at(static_cast<TimePoint>(deque.front()));
  }
  window_change_points_.clear();
  for (std::size_t t = 1; t < n; ++t)
    if (window_max_[t] != window_max_[t - 1])
      window_change_points_.push_back(t);
  cached_trace_ = &trace;
  cached_size_ = n;
  cached_horizon_ = horizon;
  change_hint_ = 0;
}

void OracleMaxPredictor::ensure_cache(const LoadTrace& trace, TimePoint now,
                                      Seconds horizon) {
  if (horizon <= 0.0)
    throw std::invalid_argument("OracleMaxPredictor: horizon must be > 0");
  if (now < 0) throw std::invalid_argument("OracleMaxPredictor: now < 0");
  if (cached_trace_ != &trace || cached_size_ != trace.size() ||
      cached_horizon_ != horizon)
    rebuild_cache(trace, horizon);
}

ReqRate OracleMaxPredictor::predict(const LoadTrace& trace, TimePoint now,
                                    Seconds horizon) {
  ensure_cache(trace, now, horizon);
  const auto t = static_cast<std::size_t>(now);
  if (t >= window_max_.size()) return 0.0;
  return window_max_[t];
}

TimePoint OracleMaxPredictor::stable_until(const LoadTrace& trace,
                                           TimePoint now, Seconds horizon) {
  ensure_cache(trace, now, horizon);
  const std::size_t n = window_max_.size();
  const auto t = static_cast<std::size_t>(now);
  if (t >= n) return std::numeric_limits<TimePoint>::max();  // 0 forever
  return next_change_point_hinted(window_change_points_, t, n,
                                  window_max_[n - 1], change_hint_);
}

ReqRate LastValuePredictor::predict(const LoadTrace& trace, TimePoint now,
                                    Seconds /*horizon*/) {
  if (now <= 0) return 0.0;
  return trace.at(now - 1);
}

TimePoint LastValuePredictor::stable_until(const LoadTrace& trace,
                                           TimePoint now,
                                           Seconds /*horizon*/) {
  // predict(t) reads at(t - 1): it changes one second after the trace does.
  if (now <= 0) return now + 1;  // 0 until at(0) enters the history
  const TimePoint change = trace.next_change(now - 1);
  if (change == std::numeric_limits<TimePoint>::max()) return change;
  return change + 1;
}

MovingMaxPredictor::MovingMaxPredictor(Seconds window) : window_(window) {
  if (window_ <= 0.0)
    throw std::invalid_argument("MovingMaxPredictor: window must be > 0");
}

ReqRate MovingMaxPredictor::predict(const LoadTrace& trace, TimePoint now,
                                    Seconds /*horizon*/) {
  const TimePoint begin = now - static_cast<TimePoint>(window_);
  return trace.max_over(begin, now);
}

TimePoint MovingMaxPredictor::stable_until(const LoadTrace& trace,
                                           TimePoint now,
                                           Seconds /*horizon*/) {
  return sliding_max_stable_until(trace, now,
                                  static_cast<TimePoint>(window_), 0);
}

EwmaPredictor::EwmaPredictor(double alpha, double headroom)
    : alpha_(alpha), headroom_(headroom) {
  if (alpha_ <= 0.0 || alpha_ > 1.0)
    throw std::invalid_argument("EwmaPredictor: alpha must be in (0,1]");
  if (headroom_ <= 0.0)
    throw std::invalid_argument("EwmaPredictor: headroom must be > 0");
}

ReqRate EwmaPredictor::predict(const LoadTrace& trace, TimePoint now,
                               Seconds /*horizon*/) {
  // Catch up on any history samples not yet folded into the state. The
  // predictor is usually called once per second, making this a single step.
  if (now <= 0) return 0.0;
  const TimePoint start = primed_ ? last_now_ + 1 : std::max<TimePoint>(1, now);
  for (TimePoint t = start; t <= now; ++t) {
    const double sample = trace.at(t - 1);
    if (!primed_) {
      state_ = sample;
      primed_ = true;
    } else {
      state_ = alpha_ * sample + (1.0 - alpha_) * state_;
    }
  }
  last_now_ = now;
  return headroom_ * state_;
}

LinearTrendPredictor::LinearTrendPredictor(Seconds window) : window_(window) {
  if (window_ < 2.0)
    throw std::invalid_argument(
        "LinearTrendPredictor: window must cover >= 2 samples");
}

ReqRate LinearTrendPredictor::predict(const LoadTrace& trace, TimePoint now,
                                      Seconds horizon) {
  if (now <= 1) return now == 1 ? trace.at(0) : 0.0;
  const TimePoint begin =
      std::max<TimePoint>(0, now - static_cast<TimePoint>(window_));
  const auto n = static_cast<double>(now - begin);
  if (n < 2.0) return trace.at(now - 1);

  // Least squares of rate against time over [begin, now).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (TimePoint t = begin; t < now; ++t) {
    const double x = static_cast<double>(t - begin);
    const double y = trace.at(t);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  const double slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  const double intercept = (sy - slope * sx) / n;
  // Extrapolate to the end of the horizon; a rising trend predicts higher,
  // a falling one never predicts below the most recent observation.
  const double x_end = n - 1.0 + horizon;
  const double extrapolated = intercept + slope * x_end;
  return std::max({0.0, extrapolated, trace.at(now - 1)});
}

SeasonalPredictor::SeasonalPredictor(Seconds period, double headroom)
    : period_(period), headroom_(headroom) {
  if (period_ <= 0.0)
    throw std::invalid_argument("SeasonalPredictor: period must be > 0");
  if (headroom_ <= 0.0)
    throw std::invalid_argument("SeasonalPredictor: headroom must be > 0");
}

ReqRate SeasonalPredictor::predict(const LoadTrace& trace, TimePoint now,
                                   Seconds horizon) {
  if (horizon <= 0.0)
    throw std::invalid_argument("SeasonalPredictor: horizon must be > 0");
  const auto period = static_cast<TimePoint>(period_);
  const auto h = static_cast<TimePoint>(horizon);
  if (now < period) {
    // Not a full period of history yet: trailing max is the safest guess.
    return headroom_ * trace.max_over(now - h, now);
  }
  // Same window one period ago...
  const ReqRate seasonal =
      trace.max_over(now - period, now - period + h);
  // ...scaled by the recent day-over-day growth (ratio of the trailing
  // hour to the same hour yesterday), clamped to [0.5, 3] to keep one
  // outlier from exploding the forecast.
  const ReqRate recent = trace.max_over(now - 3600, now);
  const ReqRate recent_yesterday =
      trace.max_over(now - period - 3600, now - period);
  double growth = 1.0;
  if (recent_yesterday > 0.0 && recent > 0.0)
    growth = std::clamp(recent / recent_yesterday, 0.5, 3.0);
  return headroom_ * growth * seasonal;
}

TimePoint SeasonalPredictor::stable_until(const LoadTrace& trace,
                                          TimePoint now, Seconds horizon) {
  if (horizon <= 0.0)
    throw std::invalid_argument("SeasonalPredictor: horizon must be > 0");
  const auto period = static_cast<TimePoint>(period_);
  const auto h = static_cast<TimePoint>(horizon);
  if (now < period) {
    // Warm-up branch is the trailing-window max; the formula itself
    // switches at `period`, so never claim stability past it.
    return std::min(sliding_max_stable_until(trace, now, h, 0), period);
  }
  // The forecast is a deterministic function of three windowed maxima; it
  // is stable while all three are.
  const TimePoint seasonal =
      sliding_max_stable_until(trace, now, period, period - h);
  const TimePoint recent = sliding_max_stable_until(trace, now, 3600, 0);
  const TimePoint recent_yesterday =
      sliding_max_stable_until(trace, now, period + 3600, period);
  return std::min({seasonal, recent, recent_yesterday});
}

ErrorInjectingPredictor::ErrorInjectingPredictor(
    std::unique_ptr<Predictor> inner, double sigma, double bias,
    std::uint64_t seed)
    : inner_(std::move(inner)), sigma_(sigma), bias_(bias), rng_(seed) {
  if (!inner_)
    throw std::invalid_argument("ErrorInjectingPredictor: null inner");
  if (sigma_ < 0.0)
    throw std::invalid_argument("ErrorInjectingPredictor: sigma must be >= 0");
}

ReqRate ErrorInjectingPredictor::predict(const LoadTrace& trace, TimePoint now,
                                         Seconds horizon) {
  const ReqRate base = inner_->predict(trace, now, horizon);
  const double factor = 1.0 + bias_ + (sigma_ > 0.0 ? rng_.normal(0.0, sigma_)
                                                    : 0.0);
  return std::max(0.0, base * factor);
}

std::string ErrorInjectingPredictor::name() const {
  return inner_->name() + "+error";
}

}  // namespace bml
