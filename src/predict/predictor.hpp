// Load predictors.
//
// The scheduler asks, at time t, for the load it must be able to serve over
// the next `horizon` seconds. The paper "emulate[s] a load prediction
// mechanism by considering a sliding look-ahead window... the maximum load
// value over a window of 378 seconds, equivalent to 2 times the longest On
// duration" — that is OracleMaxPredictor. Reactive predictors (history
// only) and an error-injection wrapper implement the paper's future-work
// study of prediction errors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bml {

/// Interface: predicted *maximum* load over [now, now + horizon).
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Predicts the maximum rate over the look-ahead window. Implementations
  /// document whether they peek at the future (oracle) or only at history
  /// (trace samples strictly before `now`).
  [[nodiscard]] virtual ReqRate predict(const LoadTrace& trace, TimePoint now,
                                        Seconds horizon) = 0;

  /// First time strictly after `now` at which predict() may return a value
  /// different from predict(now) — the event-driven simulator skips
  /// redundant scheduler consultations up to (exclusive) this bound.
  /// Predictors with per-call state (EWMA, error injection) must keep the
  /// conservative default of now + 1, which preserves per-second querying.
  [[nodiscard]] virtual TimePoint stable_until(const LoadTrace& trace,
                                               TimePoint now,
                                               Seconds horizon) {
    (void)trace;
    (void)horizon;
    return now + 1;
  }

  /// True when predict() is a pure function of (trace, now, horizon): no
  /// internal state is read or written, so callers may probe *future* time
  /// points without corrupting the predictor. This is what lets the
  /// schedulers' decision-level stability walk continue across a
  /// stable_until of now + 1 (a pure predictor whose value genuinely
  /// changes next second) — the per-second limiter on noisy traces.
  /// Stateful predictors (EWMA, error injection) must keep the default.
  [[nodiscard]] virtual bool pure() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's emulated predictor: true maximum over the look-ahead window
/// (reads the future — an oracle). Window maxima are precomputed with a
/// monotonic deque on first use (O(n) once, O(1) per query), which matters
/// when the scheduler asks once per second over a three-month trace.
class OracleMaxPredictor final : public Predictor {
 public:
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  /// O(log #segments) lookup in the window-max change-point index built
  /// alongside the cache.
  [[nodiscard]] TimePoint stable_until(const LoadTrace& trace, TimePoint now,
                                       Seconds horizon) override;
  [[nodiscard]] bool pure() const override { return true; }
  [[nodiscard]] std::string name() const override { return "oracle-max"; }

 private:
  /// Validates the query and (re)builds the cache when the trace or
  /// horizon changed — shared by predict() and stable_until().
  void ensure_cache(const LoadTrace& trace, TimePoint now, Seconds horizon);
  void rebuild_cache(const LoadTrace& trace, Seconds horizon);

  const void* cached_trace_ = nullptr;
  std::size_t cached_size_ = 0;
  Seconds cached_horizon_ = 0.0;
  std::vector<double> window_max_;  // max over [t, t + horizon) per t
  // Indices where window_max_ changes value, ascending — lets
  // stable_until answer in O(log #segments).
  std::vector<std::size_t> window_change_points_;
  // Cursor into window_change_points_ carried between stable_until
  // calls: the scheduler's stability walk probes monotonically
  // increasing times, so consecutive lookups resolve without the binary
  // search (see next_change_point_hinted).
  std::size_t change_hint_ = 0;
};

/// Last observed value (history only).
class LastValuePredictor final : public Predictor {
 public:
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  /// The prediction tracks at(now - 1): stable until one second after the
  /// trace's next change.
  [[nodiscard]] TimePoint stable_until(const LoadTrace& trace, TimePoint now,
                                       Seconds horizon) override;
  [[nodiscard]] bool pure() const override { return true; }
  [[nodiscard]] std::string name() const override { return "last-value"; }
};

/// Maximum over the trailing `window` seconds of history; a safe reactive
/// stand-in for the oracle when the load is cyclic.
class MovingMaxPredictor final : public Predictor {
 public:
  explicit MovingMaxPredictor(Seconds window);
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  /// The trailing-window max is a pure function of the trace, so a
  /// conservative change bound follows from walking the trace's
  /// change-point segments (see sliding_max_stable_until); noisy spans
  /// degrade gracefully to now + 1.
  [[nodiscard]] TimePoint stable_until(const LoadTrace& trace, TimePoint now,
                                       Seconds horizon) override;
  [[nodiscard]] bool pure() const override { return true; }
  [[nodiscard]] std::string name() const override { return "moving-max"; }

 private:
  Seconds window_;
};

/// Exponentially weighted moving average of history with a safety factor:
/// prediction = headroom * EWMA. alpha in (0, 1]; larger = more reactive.
class EwmaPredictor final : public Predictor {
 public:
  EwmaPredictor(double alpha, double headroom = 1.2);
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  [[nodiscard]] std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double headroom_;
  bool primed_ = false;
  double state_ = 0.0;
  TimePoint last_now_ = -1;
};

/// Least-squares linear trend over the trailing `window` seconds,
/// extrapolated to the end of the horizon; never below the last value.
class LinearTrendPredictor final : public Predictor {
 public:
  explicit LinearTrendPredictor(Seconds window);
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  /// Pure function of the trailing window (no internal state), though the
  /// fit changes almost every second — stable_until keeps the now + 1
  /// default and the schedulers' decision-level walk does the merging.
  [[nodiscard]] bool pure() const override { return true; }
  [[nodiscard]] std::string name() const override { return "linear-trend"; }

 private:
  Seconds window_;
};

/// Seasonal (diurnal) predictor: the maximum observed over the same
/// window one period ago (default period: 24 h), scaled by a headroom
/// factor and the day-over-day growth of recent load. History only —
/// a practical stand-in for the oracle on strongly diurnal workloads like
/// the World Cup trace. Falls back to the trailing window max while less
/// than one full period of history exists.
class SeasonalPredictor final : public Predictor {
 public:
  explicit SeasonalPredictor(Seconds period = 86'400.0,
                             double headroom = 1.1);
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  /// Pure function of the trace: stable while the three windowed maxima
  /// the forecast is built from (seasonal window, trailing hour, same hour
  /// yesterday) are all stable, and never past the warm-up/period switch.
  [[nodiscard]] TimePoint stable_until(const LoadTrace& trace, TimePoint now,
                                       Seconds horizon) override;
  [[nodiscard]] bool pure() const override { return true; }
  [[nodiscard]] std::string name() const override { return "seasonal"; }

 private:
  Seconds period_;
  double headroom_;
};

/// Wraps a predictor and perturbs its output with multiplicative Gaussian
/// error (sigma = relative error stddev) plus optional constant bias.
/// Results are clamped at 0. Deterministic given the seed. This is the
/// instrument for the paper's "impact of load prediction errors" question.
class ErrorInjectingPredictor final : public Predictor {
 public:
  ErrorInjectingPredictor(std::unique_ptr<Predictor> inner, double sigma,
                          double bias, std::uint64_t seed);
  [[nodiscard]] ReqRate predict(const LoadTrace& trace, TimePoint now,
                                Seconds horizon) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::unique_ptr<Predictor> inner_;
  double sigma_;
  double bias_;
  Rng rng_;
};

}  // namespace bml
