#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bml {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("AsciiTable: header must not be empty");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("AsciiTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

void AsciiTable::set_alignments(std::vector<Align> alignments) {
  if (alignments.size() != header_.size())
    throw std::invalid_argument("AsciiTable: alignment width mismatch");
  alignments_ = std::move(alignments);
}

std::string AsciiTable::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto align_of = [this](std::size_t c) {
    if (!alignments_.empty()) return alignments_[c];
    return c == 0 ? Align::kLeft : Align::kRight;
  };

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ';
      const std::size_t pad = widths[c] - cells[c].size();
      if (align_of(c) == Align::kRight) os << std::string(pad, ' ');
      os << cells[c];
      if (align_of(c) == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  auto rule = [&]() {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

}  // namespace bml
