// Units and unit helpers used across the BML library.
//
// The library manipulates three physical dimensions plus one application
// dimension (the paper's "application metric"):
//   * power        — Watts
//   * energy       — Joules
//   * time         — seconds (the simulator is a 1 Hz discrete-time engine)
//   * performance  — requests per second (req/s) for the web-server use case
//
// We deliberately use documented aliases over `double` rather than wrapper
// types: every public signature names its unit, and the conversion helpers
// below keep magic constants out of call sites.
#pragma once

#include <cstdint>

namespace bml {

/// Power in Watts.
using Watts = double;
/// Energy in Joules (1 J = 1 W * 1 s).
using Joules = double;
/// Durations and timestamps in seconds.
using Seconds = double;
/// Application performance rate (the paper's application metric);
/// requests per second for the stateless web server.
using ReqRate = double;

/// Integer simulation timestamp, seconds since trace start.
using TimePoint = std::int64_t;

/// Joules -> kilowatt-hours (the usual unit for daily data center energy).
constexpr double joules_to_kwh(Joules j) { return j / 3.6e6; }

/// kilowatt-hours -> Joules.
constexpr Joules kwh_to_joules(double kwh) { return kwh * 3.6e6; }

/// Watt-hours -> Joules.
constexpr Joules wh_to_joules(double wh) { return wh * 3600.0; }

/// Seconds in one day; the World Cup evaluation aggregates per day.
inline constexpr TimePoint kSecondsPerDay = 86'400;

/// Relative difference (a - b) / b expressed in percent, as used by the
/// paper when reporting BML overhead against the theoretical lower bound.
constexpr double percent_over(double a, double b) {
  return (a - b) / b * 100.0;
}

}  // namespace bml
