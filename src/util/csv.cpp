#include "util/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bml {

namespace {

std::string trim(const std::string& s) {
  auto begin = s.begin();
  auto end = s.end();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin)))
    ++begin;
  while (end != begin && std::isspace(static_cast<unsigned char>(*(end - 1))))
    --end;
  return std::string(begin, end);
}

}  // namespace

std::size_t CsvTable::column(const std::string& name) const {
  const auto it = std::find(header.begin(), header.end(), name);
  if (it == header.end())
    throw std::out_of_range("CsvTable: no column named '" + name + "'");
  return static_cast<std::size_t>(it - header.begin());
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  cells.push_back(trim(current));
  return cells;
}

CsvTable parse_csv(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  bool header_pending = has_header;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    auto cells = split_csv_line(t);
    if (header_pending) {
      table.header = std::move(cells);
      header_pending = false;
    } else {
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path, bool has_header) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("read_csv_file: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), has_header);
}

double parse_double(const std::string& s) {
  const std::string t = s;
  double value = 0.0;
  const char* begin = t.data();
  const char* end = t.data() + t.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value))
    throw std::runtime_error("parse_double: bad numeric field '" + s + "'");
  return value;
}

std::int64_t parse_int(const std::string& s) {
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw std::runtime_error("parse_int: bad integer field '" + s + "'");
  return value;
}

void CsvWriter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    out.push_back(os.str());
  }
  add_row(std::move(out));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  out << to_string();
}

}  // namespace bml
