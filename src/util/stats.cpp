#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bml {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean_of: empty sample");
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

Summary summarize(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("summarize: empty sample");
  RunningStats s;
  for (double v : values) s.add(v);
  Summary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.p50 = percentile(values, 50.0);
  out.p95 = percentile(values, 95.0);
  out.max = s.max();
  return out;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " sd=" << s.stddev
     << " min=" << s.min << " p50=" << s.p50 << " p95=" << s.p95
     << " max=" << s.max;
  return os.str();
}

}  // namespace bml
