// Minimal leveled logger.
//
// The simulator and schedulers log reconfiguration decisions at kDebug;
// experiment runners log progress at kInfo. Logging defaults to kWarn so
// that test output stays clean; benches raise it explicitly.
#pragma once

#include <sstream>
#include <string>

namespace bml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Not thread-safe by design: it is set once at
/// program start by tests/benches before any parallel section.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits `message` to stderr when `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Builds the message lazily; operator<< chains then emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace bml
