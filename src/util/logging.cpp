#include "util/logging.hpp"

#include <iostream>
#include <stdexcept>

namespace bml {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  throw std::logic_error("level_name(LogLevel): invalid level");
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (level == LogLevel::kOff) return;
  std::cerr << "[bml " << level_name(level) << "] " << message << '\n';
}

}  // namespace bml
