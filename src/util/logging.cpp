#include "util/logging.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace bml {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  throw std::logic_error("level_name(LogLevel): invalid level");
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (level == LogLevel::kOff) return;
  // One fwrite per line: parallel sweep workers logging concurrently can't
  // interleave fragments of each other's messages.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[bml ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace bml
