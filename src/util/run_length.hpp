// Run-length lookup over piecewise-constant series.
//
// Both the load trace and the oracle predictor's window-max cache expose
// "when does this series next change value?" to the event-driven
// simulator. They share this helper so the subtle tail rule — beyond the
// series the value is an implicit 0, which counts as a change only when
// the last stored value is non-zero — lives in exactly one place.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/units.hpp"

namespace bml {

/// First index after `idx` at which a length-`size` series changes value.
/// `change_points` holds, ascending, the indices whose value differs from
/// their predecessor; `last_value` is the series' final stored value.
/// Returns `size` when the series is constant from `idx` to its end but
/// the implicit 0 afterwards differs, and "never"
/// (std::numeric_limits<TimePoint>::max()) when it does not.
[[nodiscard]] inline TimePoint next_change_point(
    const std::vector<std::size_t>& change_points, std::size_t idx,
    std::size_t size, double last_value) {
  const auto it =
      std::upper_bound(change_points.begin(), change_points.end(), idx);
  if (it != change_points.end()) return static_cast<TimePoint>(*it);
  if (last_value == 0.0) return std::numeric_limits<TimePoint>::max();
  return static_cast<TimePoint>(size);
}

}  // namespace bml
