// Run-length lookup over piecewise-constant series.
//
// Both the load trace and the oracle predictor's window-max cache expose
// "when does this series next change value?" to the event-driven
// simulator. They share this helper so the subtle tail rule — beyond the
// series the value is an implicit 0, which counts as a change only when
// the last stored value is non-zero — lives in exactly one place.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/units.hpp"

namespace bml {

/// First index after `idx` at which a length-`size` series changes value.
/// `change_points` holds, ascending, the indices whose value differs from
/// their predecessor; `last_value` is the series' final stored value.
/// Returns `size` when the series is constant from `idx` to its end but
/// the implicit 0 afterwards differs, and "never"
/// (std::numeric_limits<TimePoint>::max()) when it does not.
[[nodiscard]] inline TimePoint next_change_point(
    const std::vector<std::size_t>& change_points, std::size_t idx,
    std::size_t size, double last_value) {
  const auto it =
      std::upper_bound(change_points.begin(), change_points.end(), idx);
  if (it != change_points.end()) return static_cast<TimePoint>(*it);
  if (last_value == 0.0) return std::numeric_limits<TimePoint>::max();
  return static_cast<TimePoint>(size);
}

/// next_change_point with a caller-held cursor: `hint` carries the slot
/// the previous call resolved to, so the monotonically advancing probe
/// sequences of the schedulers' stability walks cost O(1) amortised
/// instead of one binary search per probe. Any access pattern stays
/// correct — when the hint does not bracket `idx` the lookup falls back
/// to the binary search and re-seats the hint.
[[nodiscard]] inline TimePoint next_change_point_hinted(
    const std::vector<std::size_t>& change_points, std::size_t idx,
    std::size_t size, double last_value, std::size_t& hint) {
  const std::size_t n = change_points.size();
  std::size_t j = hint;
  const bool lower_ok = j <= n && (j == 0 || change_points[j - 1] <= idx);
  if (lower_ok && j < n && change_points[j] <= idx &&
      (j + 1 == n || change_points[j + 1] > idx)) {
    ++j;  // advanced exactly one segment — the stability-walk hot case
  } else if (!(lower_ok && (j == n || change_points[j] > idx))) {
    j = static_cast<std::size_t>(
        std::upper_bound(change_points.begin(), change_points.end(), idx) -
        change_points.begin());
  }
  hint = j;
  if (j < n) return static_cast<TimePoint>(change_points[j]);
  if (last_value == 0.0) return std::numeric_limits<TimePoint>::max();
  return static_cast<TimePoint>(size);
}

}  // namespace bml
