// Small statistics toolkit: running moments, percentiles, summaries.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace bml {

/// Single-pass accumulator for mean / variance / min / max (Welford).
/// Used by the profiler (averaging wattmeter samples) and by experiment
/// reporting (per-day overhead statistics).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the observed samples; 0 when empty.
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolated percentile (p in [0,100]) of an unsorted sample.
/// Copies and sorts internally; throws std::invalid_argument when empty
/// or p is out of range.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Arithmetic mean; throws std::invalid_argument when empty.
[[nodiscard]] double mean_of(std::span<const double> values);

/// Five-number-style summary used in experiment reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Builds a Summary from a sample; throws std::invalid_argument when empty.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Renders "mean=... min=... max=..." for logs and bench output.
[[nodiscard]] std::string to_string(const Summary& s);

}  // namespace bml
