// Minimal CSV reading/writing for traces, profiles, and experiment dumps.
//
// Deliberately small: comma separator, optional '#' comment lines, no
// quoting (none of our data contains commas). Parsing is strict — malformed
// numeric fields raise std::runtime_error with line context, because silent
// trace corruption would invalidate experiments.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace bml {

/// One parsed CSV table: optional header + rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range when missing.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Splits one CSV line on commas and trims surrounding whitespace per cell.
[[nodiscard]] std::vector<std::string> split_csv_line(const std::string& line);

/// Parses CSV text. When `has_header` is true the first non-comment line
/// becomes `header`. Empty and '#'-comment lines are skipped.
[[nodiscard]] CsvTable parse_csv(const std::string& text, bool has_header);

/// Reads and parses a CSV file; throws std::runtime_error if unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::filesystem::path& path,
                                     bool has_header);

/// Strict string->double conversion; throws std::runtime_error with the
/// offending text on failure (NaN/inf text is rejected as well).
[[nodiscard]] double parse_double(const std::string& s);

/// Strict string->int64 conversion; throws std::runtime_error on failure.
[[nodiscard]] std::int64_t parse_int(const std::string& s);

/// Incremental CSV writer.
class CsvWriter {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  /// Numeric convenience: formats with enough precision to round-trip.
  void add_row(const std::vector<double>& cells);

  [[nodiscard]] std::string to_string() const;
  void write_file(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bml
