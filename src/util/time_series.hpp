// Fixed-rate time series container.
//
// Both load traces (req/s sampled at 1 Hz) and recorded power draws
// (W sampled at 1 Hz by the simulator) are fixed-rate series starting at
// t = 0. TimeSeries stores the samples contiguously and provides the
// aggregations the experiments need (per-day slices, integrals).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace bml {

/// Fixed-rate (default 1 Hz) series of doubles indexed by integer seconds.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values, Seconds step = 1.0);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] Seconds step() const { return step_; }
  [[nodiscard]] Seconds duration() const {
    return step_ * static_cast<double>(values_.size());
  }

  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
  [[nodiscard]] double at(std::size_t i) const;
  [[nodiscard]] std::span<const double> values() const { return values_; }

  void push_back(double v) {
    values_.push_back(v);
    if (!max_table_.empty()) max_table_.clear();
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Maximum over index range [begin, end) clamped to the series length;
  /// returns 0 for an empty range. This is the paper's sliding look-ahead
  /// "max over window" predictor primitive. O(window) without an index;
  /// O(kMaxBlock) after build_max_index().
  [[nodiscard]] double max_over(std::size_t begin, std::size_t end) const;

  /// Builds the block + sparse-table range-max index that makes max_over
  /// O(kMaxBlock) instead of O(window). Results are identical to the
  /// un-indexed scan (ties keep the leftmost value, like max_element).
  /// Call once after the series is fully populated; push_back discards
  /// the index. Not thread-safe against concurrent max_over calls.
  void build_max_index();

  /// Sum of samples times step — the integral. For a power series this is
  /// the energy in Joules.
  [[nodiscard]] double integral() const;

  /// Integral over index range [begin, end) clamped to the series length.
  [[nodiscard]] double integral_over(std::size_t begin, std::size_t end) const;

  /// Splits the series into consecutive windows of `window` samples and
  /// returns the integral of each (last partial window included).
  [[nodiscard]] std::vector<double> integral_per_window(
      std::size_t window) const;

  /// Splits into windows of `window` samples, returning each window max.
  [[nodiscard]] std::vector<double> max_per_window(std::size_t window) const;

  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double mean() const;

 private:
  /// Samples per range-max index block: large enough that the index is
  /// ~1.6% of the series, small enough that partial-block scans stay in
  /// one or two cache lines.
  static constexpr std::size_t kMaxBlock = 64;

  /// Leftmost maximum of the non-empty block range [lo, hi) via the
  /// sparse table (two overlapping power-of-two spans).
  [[nodiscard]] double blocks_max(std::size_t lo, std::size_t hi) const;

  std::vector<double> values_;
  Seconds step_ = 1.0;
  // max_table_[j][i] = leftmost max over blocks [i, i + 2^j); level 0 is
  // the per-block maxima. Empty until build_max_index().
  std::vector<std::vector<double>> max_table_;
};

}  // namespace bml
