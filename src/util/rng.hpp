// Deterministic random number generation.
//
// Every stochastic component in the library (synthetic traces, wattmeter
// noise, prediction-error injection) takes an explicit seed so that tests
// and benchmark runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace bml {

/// Thin wrapper over std::mt19937_64 with convenience draws.
/// Copyable; copies continue independent, identical streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Poisson draw; mean must be >= 0.
  std::int64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child stream; used to give each sub-generator
  /// (e.g. each day of a synthetic trace) its own stream.
  Rng split() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bml
