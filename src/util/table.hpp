// ASCII table rendering for benchmark / experiment output.
//
// Every bench binary prints the rows of the paper table or the series of the
// paper figure it reproduces; AsciiTable keeps those dumps aligned and
// readable without pulling in a formatting library.
#pragma once

#include <string>
#include <vector>

namespace bml {

/// Column alignment for AsciiTable.
enum class Align { kLeft, kRight };

/// Accumulates rows and renders a fixed-width ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Sets per-column alignment; default is left for the first column and
  /// right for the rest (label + numbers).
  void set_alignments(std::vector<Align> alignments);

  /// Formats a double with `digits` digits after the decimal point.
  static std::string num(double v, int digits = 2);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> alignments_;
};

}  // namespace bml
