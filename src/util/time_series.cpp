#include "util/time_series.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bml {

TimeSeries::TimeSeries(std::vector<double> values, Seconds step)
    : values_(std::move(values)), step_(step) {
  if (step_ <= 0.0)
    throw std::invalid_argument("TimeSeries: step must be positive");
}

double TimeSeries::at(std::size_t i) const {
  if (i >= values_.size())
    throw std::out_of_range("TimeSeries: index out of range");
  return values_[i];
}

double TimeSeries::max_over(std::size_t begin, std::size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (begin >= end) return 0.0;
  return *std::max_element(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                           values_.begin() + static_cast<std::ptrdiff_t>(end));
}

double TimeSeries::integral() const {
  return integral_over(0, values_.size());
}

double TimeSeries::integral_over(std::size_t begin, std::size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (begin >= end) return 0.0;
  const double sum = std::accumulate(
      values_.begin() + static_cast<std::ptrdiff_t>(begin),
      values_.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
  return sum * step_;
}

std::vector<double> TimeSeries::integral_per_window(std::size_t window) const {
  if (window == 0)
    throw std::invalid_argument("integral_per_window: window must be > 0");
  std::vector<double> out;
  for (std::size_t begin = 0; begin < values_.size(); begin += window)
    out.push_back(integral_over(begin, begin + window));
  return out;
}

std::vector<double> TimeSeries::max_per_window(std::size_t window) const {
  if (window == 0)
    throw std::invalid_argument("max_per_window: window must be > 0");
  std::vector<double> out;
  for (std::size_t begin = 0; begin < values_.size(); begin += window)
    out.push_back(max_over(begin, begin + window));
  return out;
}

double TimeSeries::max() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::min() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::mean() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::mean: empty");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

}  // namespace bml
