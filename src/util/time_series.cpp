#include "util/time_series.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bml {

TimeSeries::TimeSeries(std::vector<double> values, Seconds step)
    : values_(std::move(values)), step_(step) {
  if (step_ <= 0.0)
    throw std::invalid_argument("TimeSeries: step must be positive");
}

double TimeSeries::at(std::size_t i) const {
  if (i >= values_.size())
    throw std::out_of_range("TimeSeries: index out of range");
  return values_[i];
}

double TimeSeries::max_over(std::size_t begin, std::size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (begin >= end) return 0.0;
  if (!max_table_.empty()) {
    const std::size_t b0 = begin / kMaxBlock;
    const std::size_t b1 = (end - 1) / kMaxBlock;
    if (b1 > b0 + 1) {
      // Partial head block, whole middle blocks via the sparse table,
      // partial tail block — combined left-to-right with ties keeping
      // the left value, so the result matches the plain scan exactly.
      double m = *std::max_element(
          values_.begin() + static_cast<std::ptrdiff_t>(begin),
          values_.begin() + static_cast<std::ptrdiff_t>((b0 + 1) * kMaxBlock));
      const double mid = blocks_max(b0 + 1, b1);
      if (m < mid) m = mid;
      const double tail = *std::max_element(
          values_.begin() + static_cast<std::ptrdiff_t>(b1 * kMaxBlock),
          values_.begin() + static_cast<std::ptrdiff_t>(end));
      if (m < tail) m = tail;
      return m;
    }
  }
  return *std::max_element(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                           values_.begin() + static_cast<std::ptrdiff_t>(end));
}

void TimeSeries::build_max_index() {
  max_table_.clear();
  const std::size_t n = values_.size();
  if (n < 4 * kMaxBlock) return;  // the plain scan is already cheap
  const std::size_t blocks = (n + kMaxBlock - 1) / kMaxBlock;
  std::vector<double> level(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kMaxBlock;
    const std::size_t hi = std::min(lo + kMaxBlock, n);
    level[b] = *std::max_element(
        values_.begin() + static_cast<std::ptrdiff_t>(lo),
        values_.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  max_table_.push_back(std::move(level));
  for (std::size_t span = 2; span <= blocks; span *= 2) {
    const std::vector<double>& prev = max_table_.back();
    std::vector<double> next(blocks - span + 1);
    for (std::size_t i = 0; i + span <= blocks; ++i) {
      const double left = prev[i];
      const double right = prev[i + span / 2];
      next[i] = left < right ? right : left;
    }
    max_table_.push_back(std::move(next));
  }
}

double TimeSeries::blocks_max(std::size_t lo, std::size_t hi) const {
  const std::size_t len = hi - lo;
  std::size_t j = 0;
  while ((std::size_t{2} << j) <= len) ++j;  // j = floor(log2(len))
  const double left = max_table_[j][lo];
  const double right = max_table_[j][hi - (std::size_t{1} << j)];
  return left < right ? right : left;
}

double TimeSeries::integral() const {
  return integral_over(0, values_.size());
}

double TimeSeries::integral_over(std::size_t begin, std::size_t end) const {
  begin = std::min(begin, values_.size());
  end = std::min(end, values_.size());
  if (begin >= end) return 0.0;
  const double sum = std::accumulate(
      values_.begin() + static_cast<std::ptrdiff_t>(begin),
      values_.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
  return sum * step_;
}

std::vector<double> TimeSeries::integral_per_window(std::size_t window) const {
  if (window == 0)
    throw std::invalid_argument("integral_per_window: window must be > 0");
  std::vector<double> out;
  for (std::size_t begin = 0; begin < values_.size(); begin += window)
    out.push_back(integral_over(begin, begin + window));
  return out;
}

std::vector<double> TimeSeries::max_per_window(std::size_t window) const {
  if (window == 0)
    throw std::invalid_argument("max_per_window: window must be > 0");
  std::vector<double> out;
  for (std::size_t begin = 0; begin < values_.size(); begin += window)
    out.push_back(max_over(begin, begin + window));
  return out;
}

double TimeSeries::max() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::min() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::mean() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::mean: empty");
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

}  // namespace bml
