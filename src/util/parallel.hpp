// Small shared-memory parallelism helpers.
//
// The experiment harness runs independent simulations (scenarios of a
// figure, points of a sweep) concurrently: each simulation touches only
// its own Cluster/EnergyMeter state, so plain fork-join with std::thread
// suffices — no shared mutable state, no locks in the hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bml {

/// Number of worker threads to use: hardware concurrency, at least 1.
[[nodiscard]] inline unsigned default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(i) for i in [0, n) across up to `threads` workers (dynamic
/// self-scheduling over an atomic counter). Exceptions from workers are
/// captured and the first one rethrown after the join — never lost, never
/// crossing thread boundaries unwound.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (n == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs every task once, concurrently; rethrows the first failure.
inline void parallel_invoke(std::vector<std::function<void()>> tasks,
                            unsigned threads = 0) {
  parallel_for(tasks.size(), [&tasks](std::size_t i) { tasks[i](); },
               threads);
}

}  // namespace bml
