#include "core/combination_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace bml {

CombinationTable::CombinationTable(const CombinationSolver& solver,
                                   ReqRate max_rate)
    : candidates_(solver.candidates()) {
  if (max_rate < 0.0)
    throw std::invalid_argument("CombinationTable: max_rate must be >= 0");
  const auto n = static_cast<std::size_t>(std::ceil(max_rate)) + 1;
  entries_.reserve(n);
  powers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto rate = static_cast<ReqRate>(r);
    entries_.push_back(solver.solve(rate));
    powers_.push_back(dispatch(candidates_, entries_.back(), rate).power);
  }
}

std::size_t CombinationTable::index_for(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("CombinationTable: rate must be >= 0");
  const auto idx = static_cast<std::size_t>(std::ceil(rate));
  if (idx >= entries_.size())
    throw std::out_of_range("CombinationTable: rate beyond table");
  return idx;
}

const Combination& CombinationTable::combination(ReqRate rate) const {
  return entries_[index_for(rate)];
}

Watts CombinationTable::power(ReqRate rate) const {
  return dispatch(candidates_, combination(rate), rate).power;
}

std::size_t CombinationTable::distinct_combinations() const {
  std::unordered_set<std::string> seen;
  for (const Combination& c : entries_) {
    std::string key;
    for (int v : c.counts()) key += std::to_string(v) + ',';
    seen.insert(std::move(key));
  }
  return seen.size();
}

BmlLinearReference::BmlLinearReference(Watts little_idle, Watts big_peak,
                                       ReqRate big_max_perf)
    : idle_(little_idle), peak_(big_peak), max_perf_(big_max_perf) {
  if (max_perf_ <= 0.0)
    throw std::invalid_argument("BmlLinearReference: max perf must be > 0");
  if (idle_ < 0.0 || peak_ < idle_)
    throw std::invalid_argument(
        "BmlLinearReference: need 0 <= idle <= peak power");
}

Watts BmlLinearReference::power(ReqRate rate) const {
  const ReqRate r = std::clamp(rate, 0.0, max_perf_);
  return idle_ + (peak_ - idle_) * (r / max_perf_);
}

}  // namespace bml
