#include "core/combination_table.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_set>

#include "core/dispatch_plan.hpp"

namespace bml {

namespace {

std::atomic<std::uint64_t> g_tables_built{0};

}  // namespace

std::uint64_t CombinationTable::built_count() {
  return g_tables_built.load(std::memory_order_relaxed);
}

CombinationTable::CombinationTable(const CombinationSolver& solver,
                                   ReqRate max_rate)
    : candidates_(solver.candidates()), plan_(candidates_) {
  g_tables_built.fetch_add(1, std::memory_order_relaxed);
  if (max_rate < 0.0)
    throw std::invalid_argument("CombinationTable: max_rate must be >= 0");
  const auto n = static_cast<std::size_t>(std::ceil(max_rate)) + 1;
  entries_.reserve(n);
  powers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto rate = static_cast<ReqRate>(r);
    entries_.push_back(solver.solve(rate));
    powers_.push_back(plan_.power_at(entries_.back().counts(), rate));
  }
}

std::size_t CombinationTable::index_for(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("CombinationTable: rate must be >= 0");
  const auto idx = static_cast<std::size_t>(std::ceil(rate));
  if (idx >= entries_.size())
    throw std::out_of_range("CombinationTable: rate beyond table");
  return idx;
}

const Combination& CombinationTable::combination(ReqRate rate) const {
  return entries_[index_for(rate)];
}

Watts CombinationTable::power(ReqRate rate) const {
  const std::size_t idx = index_for(rate);
  // The cache holds power at the grid rate; a fractional query still means
  // "the grid combination serving exactly `rate`", so evaluate it.
  if (static_cast<ReqRate>(idx) == rate) return powers_[idx];
  return plan_.power_at(entries_[idx].counts(), rate);
}

namespace {

// FNV-1a over the raw count words; combinations are small (one int per
// architecture kind), so hashing them directly beats building string keys.
struct CountsHash {
  std::size_t operator()(const std::vector<int>* counts) const {
    std::size_t h = 14695981039346656037ull;
    for (int v : *counts) {
      h ^= static_cast<std::size_t>(static_cast<unsigned>(v));
      h *= 1099511628211ull;
    }
    return h;
  }
};

struct CountsEqual {
  bool operator()(const std::vector<int>* a,
                  const std::vector<int>* b) const {
    return *a == *b;
  }
};

}  // namespace

std::size_t CombinationTable::distinct_combinations() const {
  std::unordered_set<const std::vector<int>*, CountsHash, CountsEqual> seen;
  seen.reserve(entries_.size());
  for (const Combination& c : entries_) seen.insert(&c.counts());
  return seen.size();
}

BmlLinearReference::BmlLinearReference(Watts little_idle, Watts big_peak,
                                       ReqRate big_max_perf)
    : idle_(little_idle), peak_(big_peak), max_perf_(big_max_perf) {
  if (max_perf_ <= 0.0)
    throw std::invalid_argument("BmlLinearReference: max perf must be > 0");
  if (idle_ < 0.0 || peak_ < idle_)
    throw std::invalid_argument(
        "BmlLinearReference: need 0 <= idle <= peak power");
}

Watts BmlLinearReference::power(ReqRate rate) const {
  const ReqRate r = std::clamp(rate, 0.0, max_perf_);
  return idle_ + (peak_ - idle_) * (r / max_perf_);
}

}  // namespace bml
