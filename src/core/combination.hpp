// Machine combinations: a multiset of machines drawn from a candidate list,
// plus the optimal way to dispatch a load onto one.
//
// A Combination stores one count per candidate architecture (indices match
// the sorted candidate Catalog). Power at a given rate assumes the load
// balancer splits traffic optimally: since every switched-on machine pays
// its idle power regardless, the cheapest split loads machines in
// increasing order of marginal power per req/s (their slope).
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "util/units.hpp"

namespace bml {

/// Counts of machines per candidate architecture. counts()[i] machines of
/// candidates[i]. Value type with structural equality.
class Combination {
 public:
  Combination() = default;
  explicit Combination(std::vector<int> counts);

  [[nodiscard]] const std::vector<int>& counts() const { return counts_; }
  [[nodiscard]] std::size_t arch_kinds() const { return counts_.size(); }
  [[nodiscard]] int count(std::size_t arch) const;
  [[nodiscard]] int total_machines() const;
  [[nodiscard]] bool empty() const;

  void set_count(std::size_t arch, int count);
  void add(std::size_t arch, int count = 1);

  /// Replaces the counts wholesale, reusing the existing storage (a plain
  /// vector copy-assign — no allocation once capacities match). Snapshot
  /// buffers refreshed once per decision point rely on this staying cheap.
  void assign(const std::vector<int>& counts) { counts_ = counts; }

  /// Grows the vector to `kinds` entries (zero-filled) so combinations built
  /// before/after a catalog extension compare safely.
  void resize(std::size_t kinds);

  friend bool operator==(const Combination&, const Combination&) = default;

 private:
  std::vector<int> counts_;
};

/// Result of dispatching a load onto a combination.
struct DispatchResult {
  /// True when the combination's capacity covers the requested rate.
  bool feasible = true;
  /// Total electrical power of all machines (idle + load), Watts.
  Watts power = 0.0;
  /// Actually served rate (== requested when feasible).
  ReqRate served = 0.0;
  /// Per-architecture aggregate load (req/s across that arch's machines).
  std::vector<ReqRate> load_per_arch;
};

/// Total capacity (sum of max_perf over machines), req/s.
[[nodiscard]] ReqRate capacity(const Catalog& candidates,
                               const Combination& combo);

/// Sum of idle powers — the combination's floor consumption.
[[nodiscard]] Watts idle_power(const Catalog& candidates,
                               const Combination& combo);

/// Sum of peak powers — the combination's ceiling consumption.
[[nodiscard]] Watts peak_power(const Catalog& candidates,
                               const Combination& combo);

/// Optimally dispatches `rate` onto the combination: machines are loaded in
/// increasing slope order; excess load beyond capacity is dropped and
/// `feasible` is cleared. Throws std::invalid_argument when the combination
/// width does not match the candidate list or rate is negative.
[[nodiscard]] DispatchResult dispatch(const Catalog& candidates,
                                      const Combination& combo, ReqRate rate);

/// Shorthand: power of the combination serving `rate` (machines beyond the
/// needed capacity still pay idle power).
[[nodiscard]] Watts power_at(const Catalog& candidates,
                             const Combination& combo, ReqRate rate);

/// Human-readable rendering, e.g. "2xparavance + 3xraspberry".
[[nodiscard]] std::string to_string(const Catalog& candidates,
                                    const Combination& combo);

/// Machines to switch on (positive) / off (negative) per architecture when
/// moving from `from` to `to`.
[[nodiscard]] std::vector<int> delta(const Combination& from,
                                     const Combination& to);

}  // namespace bml
