#include "core/candidate_filter.hpp"

#include <algorithm>
#include <stdexcept>

namespace bml {

std::string to_string(RemovalReason reason) {
  switch (reason) {
    case RemovalReason::kDominatedAtPeak:
      return "dominated at peak (lower performance, higher power)";
    case RemovalReason::kNeverPreferable:
      return "never preferable to combinations of smaller architectures";
  }
  throw std::logic_error("to_string(RemovalReason): invalid reason");
}

FilterResult filter_candidates(const Catalog& input) {
  if (input.empty())
    throw std::invalid_argument("filter_candidates: empty catalog");

  Catalog sorted = input;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ArchitectureProfile& a,
                      const ArchitectureProfile& b) {
                     if (a.max_perf() != b.max_perf())
                       return a.max_perf() > b.max_perf();
                     // Performance ties: cheaper peak power first, so the
                     // dominance scan below removes the pricier twin.
                     return a.max_power() < b.max_power();
                   });

  FilterResult result;
  for (const ArchitectureProfile& p : sorted) {
    // p is dominated if some already-kept (hence faster-or-equal) candidate
    // has peak power <= p's: using p could never reduce consumption.
    const auto dominator = std::find_if(
        result.candidates.begin(), result.candidates.end(),
        [&p](const ArchitectureProfile& kept) {
          return kept.max_power() <= p.max_power();
        });
    if (dominator != result.candidates.end()) {
      result.removed.push_back(RemovedArch{
          p.name(), RemovalReason::kDominatedAtPeak, dominator->name()});
    } else {
      result.candidates.push_back(p);
    }
  }
  return result;
}

std::vector<Role> assign_roles(const Catalog& candidates) {
  std::vector<Role> roles(candidates.size(), Role::kMedium);
  if (roles.empty()) return roles;
  roles.front() = Role::kBig;
  if (roles.size() > 1) roles.back() = Role::kLittle;
  return roles;
}

}  // namespace bml
