#include "core/bml_design.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace bml {

namespace {

/// Drops candidates whose threshold is missing, recording the removal.
Catalog drop_unpreferable(const Catalog& candidates,
                          const ThresholdResult& thresholds,
                          std::vector<RemovedArch>& removed) {
  Catalog kept;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (thresholds.thresholds[i].has_value()) {
      kept.push_back(candidates[i]);
    } else {
      removed.push_back(RemovedArch{candidates[i].name(),
                                    RemovalReason::kNeverPreferable,
                                    "combinations of smaller architectures"});
      log_info() << "BmlDesign: removing " << candidates[i].name()
                 << " (profile never crosses smaller combinations)";
    }
  }
  return kept;
}

/// Collects the engaged threshold values for `candidates`.
std::vector<ReqRate> engaged_thresholds(const Catalog& candidates,
                                        const ThresholdResult& result,
                                        const Catalog& evaluated) {
  std::vector<ReqRate> out;
  out.reserve(candidates.size());
  for (const ArchitectureProfile& p : candidates) {
    const auto it =
        std::find(evaluated.begin(), evaluated.end(), p);
    const auto idx = static_cast<std::size_t>(it - evaluated.begin());
    out.push_back(result.thresholds[idx].value());
  }
  return out;
}

}  // namespace

BmlDesign BmlDesign::build(const Catalog& input, BmlDesignOptions options) {
  if (input.empty())
    throw std::invalid_argument("BmlDesign: empty input catalog");

  BmlDesign design;

  // Step 2: dominance filter, sort Big -> Little.
  FilterResult filtered = filter_candidates(input);
  design.removed_ = std::move(filtered.removed);

  // Step 3: homogeneous crossing points; drop never-preferable machines.
  ThresholdResult s3 = ::bml::step3_thresholds(filtered.candidates);
  Catalog after_step3 =
      drop_unpreferable(filtered.candidates, s3, design.removed_);
  if (after_step3.empty())
    throw std::runtime_error("BmlDesign: no candidates survive Step 3");

  // Step 4: mixed crossing points on the survivors; a second drop pass
  // covers architectures that only looked useful against homogeneous
  // combinations.
  ThresholdResult s4 = ::bml::step4_thresholds(after_step3);
  design.candidates_ = drop_unpreferable(after_step3, s4, design.removed_);
  if (design.candidates_.empty())
    throw std::runtime_error("BmlDesign: no candidates survive Step 4");

  // Thresholds for the final candidate list. Step 3 values are kept for
  // reporting the Fig. 2 before/after comparison.
  if (design.candidates_.size() != after_step3.size()) {
    // Rare: Step 4 removed someone; recompute thresholds on the final list
    // so remaining values are consistent with the surviving mix.
    s4 = ::bml::step4_thresholds(design.candidates_);
    for (const auto& t : s4.thresholds)
      if (!t.has_value())
        throw std::runtime_error(
            "BmlDesign: threshold recomputation removed further candidates");
  }
  design.step3_ = engaged_thresholds(design.candidates_, s3, filtered.candidates);
  design.step4_ = engaged_thresholds(design.candidates_, s4,
                                     design.candidates_.size() ==
                                             after_step3.size()
                                         ? after_step3
                                         : design.candidates_);

  design.roles_ = assign_roles(design.candidates_);

  // Step 5: solver + dense table.
  const ArchitectureProfile& big = design.candidates_.front();
  design.max_rate_ =
      options.max_rate > 0.0 ? options.max_rate : 4.0 * big.max_perf();

  // Remap inventory caps from input order to candidate order. A capped
  // design can only answer rates its machines can actually cover, so the
  // table range is clamped to the capped capacity.
  InventoryCaps caps;
  if (!options.inventory_caps.empty()) {
    if (options.inventory_caps.size() != input.size())
      throw std::invalid_argument(
          "BmlDesign: inventory_caps must match the input catalog size");
    caps.resize(design.candidates_.size(), 0);
    ReqRate capped_capacity = 0.0;
    for (std::size_t c = 0; c < design.candidates_.size(); ++c) {
      const auto it = std::find(input.begin(), input.end(),
                                design.candidates_[c]);
      caps[c] = options.inventory_caps[static_cast<std::size_t>(
          it - input.begin())];
      capped_capacity += caps[c] * design.candidates_[c].max_perf();
    }
    if (capped_capacity <= 0.0)
      throw std::invalid_argument(
          "BmlDesign: inventory caps leave no usable machines");
    design.max_rate_ = std::min(design.max_rate_, capped_capacity);
  }

  switch (options.solver) {
    case SolverKind::kGreedyThreshold:
      design.solver_ = std::make_shared<GreedyThresholdSolver>(
          design.candidates_, design.step4_, caps);
      break;
    case SolverKind::kExactDp:
      design.solver_ = std::make_shared<ExactDpSolver>(
          design.candidates_, design.max_rate_, caps);
      break;
  }

  if (options.build_table) {
    design.table_ =
        std::make_shared<CombinationTable>(*design.solver_, design.max_rate_);
    design.decision_thresholds_ =
        std::make_shared<DecisionThresholds>(*design.table_);
  }

  return design;
}

Combination BmlDesign::ideal_combination(ReqRate rate) const {
  if (table_ && rate <= table_->max_rate()) return table_->combination(rate);
  return solver_->solve(rate);
}

Watts BmlDesign::ideal_power(ReqRate rate) const {
  if (table_ && rate <= table_->max_rate()) return table_->power(rate);
  return solver_->power(rate);
}

BmlLinearReference BmlDesign::linear_reference() const {
  return BmlLinearReference(little().idle_power(), big().max_power(),
                            big().max_perf());
}

const ArchitectureProfile& BmlDesign::big() const {
  if (candidates_.empty()) throw std::logic_error("BmlDesign: no candidates");
  return candidates_.front();
}

const ArchitectureProfile& BmlDesign::little() const {
  if (candidates_.empty()) throw std::logic_error("BmlDesign: no candidates");
  return candidates_.back();
}

}  // namespace bml
