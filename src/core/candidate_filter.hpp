// Step 2 of the BML methodology: sort architectures and keep only the
// candidates that can improve energy proportionality.
//
// Architectures are sorted by decreasing maximum performance; any
// architecture that delivers less performance than another while consuming
// at least as much power at peak is dominated and removed ("D is discarded
// because its maximum power consumption is greater than A's").
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.hpp"

namespace bml {

/// Why an architecture was removed from the candidate list.
enum class RemovalReason {
  kDominatedAtPeak,   // Step 2: lower perf, >= peak power than a faster arch
  kNeverPreferable,   // Step 3/4: profile never crosses the smaller combos
};

[[nodiscard]] std::string to_string(RemovalReason reason);

/// One removal record, kept for reporting (Fig. 1's "D will be removed").
struct RemovedArch {
  std::string name;
  RemovalReason reason;
  /// Name of the architecture (or combination owner) that dominated it.
  std::string dominated_by;
};

/// Result of the Step 2 filter.
struct FilterResult {
  /// Kept candidates, sorted by decreasing maximum performance
  /// (index 0 = Big, last = Little).
  Catalog candidates;
  std::vector<RemovedArch> removed;
};

/// Runs Step 2 on `input`. Throws std::invalid_argument when `input` is
/// empty. Ties in maximum performance keep the lower-power architecture and
/// remove the other.
[[nodiscard]] FilterResult filter_candidates(const Catalog& input);

/// Assigns Big/Medium/Little role labels to a sorted candidate list:
/// index 0 is Big, the last index is Little, everything between is Medium.
/// A single candidate is Big; with two candidates they are Big and Little.
[[nodiscard]] std::vector<Role> assign_roles(const Catalog& candidates);

}  // namespace bml
