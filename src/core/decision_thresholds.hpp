// Decision thresholds: the load cut-points at which the scheduler's chosen
// combination changes.
//
// A CombinationTable maps every integer rate to its ideal combination;
// consecutive grid rates usually map to the *same* combination, so the
// table induces a partition of [0, max_rate] into decision buckets. This
// class compiles that partition once into a sorted flat array of cut
// rates, making "which decision does load L map to" a single upper_bound —
// and, crucially, making "when does the decision change" answerable by
// comparing bucket indices instead of materialising and comparing
// Combinations. The schedulers' decision_stable_until walk a trace's (or a
// predictor's) run-length segments with index_for, so a noisy segment
// whose values stay inside one bucket contributes zero scheduler
// evaluations to the event-driven simulator.
//
// Bucket equality implies combination equality (a bucket is one maximal
// run of equal adjacent table entries); the converse may not hold when the
// same combination reappears for a disjoint rate range, which only makes
// stability bounds conservative — never wrong.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace bml {

class CombinationTable;

/// Immutable compiled partition of [0, max_rate] into decision buckets.
class DecisionThresholds {
 public:
  DecisionThresholds() = default;
  /// Compiles the cut-points of `table` (O(grid size), one pass).
  explicit DecisionThresholds(const CombinationTable& table);

  /// Bucket index of `rate`. Follows the table's lookup rule (rates round
  /// up to the integer grid). Negative rates throw std::invalid_argument;
  /// rates beyond max_rate clamp into the last bucket (callers clamp
  /// their predictions to the table range before deciding anyway).
  [[nodiscard]] std::size_t index_for(ReqRate rate) const {
    const double grid = grid_index(rate);
    return static_cast<std::size_t>(
        std::upper_bound(cuts_.begin(), cuts_.end(), grid) - cuts_.begin());
  }

  /// True when `rate` falls in bucket `index` — the stability-walk
  /// primitive (one ceil + one upper_bound, no Combination compares).
  [[nodiscard]] bool same_bucket(ReqRate rate, std::size_t index) const {
    return index_for(rate) == index;
  }

  /// Grid coordinate of `rate` — the value index_for compares against the
  /// cut array. Exposed so stability walks can hoist the bucket bounds
  /// once (bucket_grid_range) and test each probe with two compares
  /// instead of an upper_bound per hop.
  [[nodiscard]] double grid_of(ReqRate rate) const { return grid_index(rate); }

  /// Half-open grid interval [lo, hi) of bucket `index`: a rate is in the
  /// bucket iff lo <= grid_of(rate) < hi. index_for counts cuts <= grid,
  /// so index_for(rate) == index exactly when cuts_[index-1] <= grid and
  /// grid < cuts_[index]; end buckets extend to +/-infinity.
  [[nodiscard]] std::pair<double, double> bucket_grid_range(
      std::size_t index) const {
    const double lo = index == 0
                          ? -std::numeric_limits<double>::infinity()
                          : cuts_[index - 1];
    const double hi = index >= cuts_.size()
                          ? std::numeric_limits<double>::infinity()
                          : cuts_[index];
    return {lo, hi};
  }

  /// Number of buckets (== number of distinct adjacent-entry runs).
  [[nodiscard]] std::size_t bucket_count() const { return cuts_.size() + 1; }
  [[nodiscard]] ReqRate max_rate() const { return max_rate_; }

 private:
  [[nodiscard]] double grid_index(ReqRate rate) const;

  // Grid indices (stored as doubles so lookups skip an int conversion)
  // whose table entry differs from their predecessor's, ascending.
  std::vector<double> cuts_;
  ReqRate max_rate_ = 0.0;
};

}  // namespace bml
