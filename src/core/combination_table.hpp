// Precomputed ideal-combination table and the BML-linear reference curve.
//
// The online scheduler queries "ideal combination for rate r" once per
// second; CombinationTable materialises the solver's answers on the integer
// rate grid so that queries are O(1) and identical rates always map to
// identical combinations (important for reconfiguration stability).
//
// BmlLinearReference is the paper's Fig. 4 yardstick: a hypothetical
// machine whose idle power equals Little's and whose peak power and
// performance equal Big's — "an achievable goal, and how our solution
// approaches it".
#pragma once

#include <cstdint>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "core/dispatch_plan.hpp"
#include "core/solver.hpp"
#include "util/units.hpp"

namespace bml {

/// Dense rate -> ideal combination map on the integer grid [0, max_rate].
class CombinationTable {
 public:
  /// Materialises `solver` answers for every integer rate up to `max_rate`.
  /// Throws std::invalid_argument when max_rate < 0.
  CombinationTable(const CombinationSolver& solver, ReqRate max_rate);

  /// Ideal combination for `rate` (rounded up to the grid so the returned
  /// combination always has enough capacity). Throws std::out_of_range
  /// beyond max_rate.
  [[nodiscard]] const Combination& combination(ReqRate rate) const;

  /// Power of combination(rate) serving exactly `rate`. On-grid (integer)
  /// queries return the precomputed cache entry; off-grid rates evaluate
  /// the grid combination at the actual rate through the compiled plan.
  [[nodiscard]] Watts power(ReqRate rate) const;

  [[nodiscard]] ReqRate max_rate() const {
    return static_cast<ReqRate>(entries_.size() - 1);
  }
  [[nodiscard]] const Catalog& candidates() const { return candidates_; }

  /// Number of distinct combinations in the table — the size of the
  /// reconfiguration state space.
  [[nodiscard]] std::size_t distinct_combinations() const;

  /// Dense-grid accessors for compilers of derived structures
  /// (core/decision_thresholds.hpp): entry `i` answers rate i exactly.
  [[nodiscard]] std::size_t grid_size() const { return entries_.size(); }
  [[nodiscard]] const Combination& grid_entry(std::size_t i) const {
    return entries_[i];
  }

  /// Process-wide count of tables ever constructed — a probe for tests
  /// asserting build caching (a sweep over non-catalog axes must build its
  /// table exactly once; see scenario/sweep.hpp).
  [[nodiscard]] static std::uint64_t built_count();

 private:
  [[nodiscard]] std::size_t index_for(ReqRate rate) const;

  Catalog candidates_;
  DispatchPlan plan_;
  std::vector<Combination> entries_;
  std::vector<Watts> powers_;
};

/// Fig. 4's "BML linear" reference line.
class BmlLinearReference {
 public:
  /// `little_idle` is the Little architecture's idle power; `big_peak` and
  /// `big_max_perf` are the Big architecture's peak power and performance.
  BmlLinearReference(Watts little_idle, Watts big_peak, ReqRate big_max_perf);

  [[nodiscard]] Watts power(ReqRate rate) const;
  [[nodiscard]] ReqRate max_perf() const { return max_perf_; }

 private:
  Watts idle_;
  Watts peak_;
  ReqRate max_perf_;
};

}  // namespace bml
