// BmlDesign — the library façade running the paper's five steps end to end.
//
//   Step 1  profiles come in as a Catalog (measured offline, or produced by
//           the simulated profiling testbed in src/profiling/).
//   Step 2  dominance filter (candidate_filter).
//   Step 3  crossing points against homogeneous smaller combinations;
//           architectures whose profile never crosses are removed.
//   Step 4  crossing points against mixed smaller combinations.
//   Step 5  ideal combination solver + precomputed table.
//
// The resulting object answers "cheapest machine set for rate r" queries
// and exposes every intermediate artefact for reporting and testing.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "arch/catalog.hpp"
#include "core/candidate_filter.hpp"
#include "core/combination.hpp"
#include "core/combination_table.hpp"
#include "core/crossing.hpp"
#include "core/decision_thresholds.hpp"
#include "core/solver.hpp"
#include "util/units.hpp"

namespace bml {

/// Which final-step solver backs the design.
enum class SolverKind {
  kGreedyThreshold,  // the paper's algorithm
  kExactDp,          // exact DP oracle (theoretical lower-bound scenarios)
};

/// Build-time options for BmlDesign.
struct BmlDesignOptions {
  /// Largest rate the design must answer. 0 = default to 4x Big's max
  /// performance (the paper's over-provisioned data center size).
  ReqRate max_rate = 0.0;
  SolverKind solver = SolverKind::kGreedyThreshold;
  /// Per-architecture machine limits in *input catalog order*; empty means
  /// unlimited ("we consider that enough machines of each type are
  /// available"). Caps on removed architectures are ignored.
  std::vector<int> inventory_caps;
  /// Materialise the dense rate table (recommended; O(max_rate) memory).
  bool build_table = true;
};

/// The assembled BML infrastructure design.
class BmlDesign {
 public:
  /// Runs Steps 2-5 on `input` (Step 1's profiles). Throws
  /// std::invalid_argument on an empty catalog and std::runtime_error when
  /// every architecture is filtered out.
  static BmlDesign build(const Catalog& input, BmlDesignOptions options = {});

  /// Candidates kept after Steps 2-4, sorted Big -> Little.
  [[nodiscard]] const Catalog& candidates() const { return candidates_; }

  /// Role of candidates()[i] (Big / Medium / Little).
  [[nodiscard]] const std::vector<Role>& roles() const { return roles_; }

  /// Architectures removed during filtering, with reasons.
  [[nodiscard]] const std::vector<RemovedArch>& removed() const {
    return removed_;
  }

  /// Step 3 thresholds of the kept candidates (pre-refinement; reported for
  /// the Fig. 2 comparison).
  [[nodiscard]] const std::vector<ReqRate>& step3_thresholds() const {
    return step3_;
  }

  /// Step 4 (final) minimum utilization thresholds, parallel to
  /// candidates().
  [[nodiscard]] const std::vector<ReqRate>& thresholds() const {
    return step4_;
  }

  /// Ideal combination serving `rate`.
  [[nodiscard]] Combination ideal_combination(ReqRate rate) const;

  /// Power of the ideal combination serving `rate`.
  [[nodiscard]] Watts ideal_power(ReqRate rate) const;

  [[nodiscard]] ReqRate max_rate() const { return max_rate_; }
  [[nodiscard]] const CombinationSolver& solver() const { return *solver_; }
  [[nodiscard]] const CombinationTable* table() const { return table_.get(); }

  /// Compiled decision cut-points of the table — null when the design was
  /// built without a table. Schedulers use it to answer "when does the
  /// ideal combination for this (clamped) rate change" without comparing
  /// Combinations; see core/decision_thresholds.hpp.
  [[nodiscard]] const DecisionThresholds* decision_thresholds() const {
    return decision_thresholds_.get();
  }

  /// Fig. 4 reference line built from this design's Little idle power and
  /// Big peak point.
  [[nodiscard]] BmlLinearReference linear_reference() const;

  /// Convenience accessors by role; throw std::logic_error when the design
  /// kept no candidate in that role.
  [[nodiscard]] const ArchitectureProfile& big() const;
  [[nodiscard]] const ArchitectureProfile& little() const;

 private:
  BmlDesign() = default;

  Catalog candidates_;
  std::vector<Role> roles_;
  std::vector<RemovedArch> removed_;
  std::vector<ReqRate> step3_;
  std::vector<ReqRate> step4_;
  ReqRate max_rate_ = 0.0;
  std::shared_ptr<CombinationSolver> solver_;
  std::shared_ptr<CombinationTable> table_;
  std::shared_ptr<DecisionThresholds> decision_thresholds_;
};

}  // namespace bml
