// Steps 3 and 4 of the BML methodology: minimum utilization thresholds.
//
// For each candidate architecture j, the minimum utilization threshold is
// the smallest performance rate from which a (single, possibly partially
// loaded) machine of j consumes no more than the best combination of
// strictly smaller architectures serving the same rate. The rate where the
// two power profiles meet is the paper's "crossing point".
//
// Step 3 compares against *homogeneous* combinations of smaller machines
// (Fig. 2, left). Step 4 refines the comparison with *mixed* combinations
// of all smaller architectures (Fig. 2, right) — required for three or
// more architectures, and the step that raises Big's threshold.
//
// Rates are evaluated on an integer grid (1 req/s by default), matching the
// paper's request-per-second application metric; Table I reproduces the
// published thresholds 1 / 10 / 529 exactly on this grid.
#pragma once

#include <optional>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "util/units.hpp"

namespace bml {

/// Minimum-cost curve over integer rates 0..max_rate for combinations drawn
/// from `candidates`, with reconstruction of the optimal combination.
///
/// Dynamic program over rates. At an optimum with linear power curves, at
/// most one machine runs partially loaded (an exchange argument moves load
/// from the higher-slope of two partial machines to the lower-slope one at
/// no extra cost), so:
///   f(0) = 0
///   f(r) = min over archs i of:
///            power_i(r)                      if r <= maxPerf_i   (partial)
///            f(r - maxPerf_i) + maxPower_i   otherwise           (full)
class MinCostCurve {
 public:
  /// Builds the DP table. Candidate max_perf values are rounded to the grid
  /// (they are integers in all shipped catalogs). Throws
  /// std::invalid_argument when `candidates` is empty or max_rate < 0.
  MinCostCurve(const Catalog& candidates, ReqRate max_rate);

  /// Minimum power to serve `rate` (rounded up to the grid).
  [[nodiscard]] Watts cost(ReqRate rate) const;

  /// Reconstructs one optimal combination for `rate`.
  [[nodiscard]] Combination combination(ReqRate rate) const;

  [[nodiscard]] ReqRate max_rate() const;

 private:
  [[nodiscard]] std::size_t index_for(ReqRate rate) const;

  const Catalog candidates_;
  std::vector<Watts> cost_;       // f(r) per integer rate
  std::vector<int> choice_;       // arch index chosen at r (-1 at r = 0)
  std::vector<char> is_partial_;  // whether the choice serves r partially
};

/// Power of the cheapest *homogeneous* combination of architecture `arch`
/// serving `rate`: full machines plus at most one partial. This is the
/// "repeated profile" of Fig. 1.
[[nodiscard]] Watts homogeneous_cost(const ArchitectureProfile& arch,
                                     ReqRate rate);

/// One crossing-point query: the smallest integer rate in [1, max_perf(j)]
/// where a single machine of `bigger` consumes no more than `smaller_cost`
/// evaluated at the same rate; std::nullopt when the profiles never cross
/// (the architecture is never preferable — Graphene's fate in the paper).
template <typename CostFn>
[[nodiscard]] std::optional<ReqRate> crossing_point(
    const ArchitectureProfile& bigger, CostFn&& smaller_cost) {
  const auto limit = static_cast<long>(bigger.max_perf());
  for (long r = 1; r <= limit; ++r) {
    const auto rate = static_cast<ReqRate>(r);
    if (bigger.power_at(rate) <= smaller_cost(rate)) return rate;
  }
  return std::nullopt;
}

/// Thresholds for a sorted candidate list (index 0 = Big ... last = Little).
struct ThresholdResult {
  /// Minimum utilization threshold per candidate; Little's is always 1.
  /// A missing value means the architecture never becomes preferable and
  /// must be removed from the candidate list.
  std::vector<std::optional<ReqRate>> thresholds;
};

/// Step 3: thresholds against homogeneous combinations of each strictly
/// smaller *kept* architecture (the best such curve).
[[nodiscard]] ThresholdResult step3_thresholds(const Catalog& candidates);

/// Step 4: thresholds against mixed combinations (MinCostCurve) of all
/// strictly smaller kept architectures. Architectures with no Step 4
/// crossing are reported as std::nullopt, exactly like Step 3.
[[nodiscard]] ThresholdResult step4_thresholds(const Catalog& candidates);

}  // namespace bml
