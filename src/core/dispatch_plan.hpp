// Compiled dispatch plans: the allocation-free fast path for power queries.
//
// `dispatch()` (core/combination.hpp) re-derives the slope-sorted
// architecture order and heap-allocates two vectors on every call. That is
// fine for one-off queries, but the simulator, the DP solvers and the
// combination-table builder evaluate power millions of times per trace
// replay. A DispatchPlan compiles, once per catalog, everything dispatch
// needs into flat arrays:
//   * the slope-ascending dispatch order (ties broken by catalog index),
//   * per-architecture max_perf / idle_power / max_power,
//   * the linear-model slope, with a cloned PowerModel fallback for
//     piecewise profiles (at most one partially loaded machine per
//     architecture ever needs the curve).
//
// `power_at` and `dispatch_into` then evaluate a combination without
// allocating, producing bit-identical results to `dispatch()` (asserted by
// tests/test_dispatch_plan.cpp). The plan is immutable and self-contained
// (profiles are copied, not referenced), so one plan can be shared across
// parallel_for workers; per-worker mutable state is confined to the
// caller-owned DispatchResult scratch.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "power/power_model.hpp"
#include "util/units.hpp"

namespace bml {

/// Immutable compiled form of a candidate catalog for power evaluation.
class DispatchPlan {
 public:
  DispatchPlan() = default;
  explicit DispatchPlan(const Catalog& candidates);

  [[nodiscard]] std::size_t arch_kinds() const { return max_perf_.size(); }

  /// Power of a combination (`counts[i]` machines of architecture i, in
  /// catalog order; shorter spans mean zero for the missing entries)
  /// serving `rate`. No allocations. Throws std::invalid_argument when the
  /// span is wider than the catalog or rate is negative.
  [[nodiscard]] Watts power_at(std::span<const int> counts,
                               ReqRate rate) const;

  /// Full dispatch into a caller-owned result; `out.load_per_arch` is
  /// resized (no allocation once warm) and refilled. Same contract as
  /// `dispatch()`.
  void dispatch_into(std::span<const int> counts, ReqRate rate,
                     DispatchResult& out) const;

  /// Serving capacity of the combination, req/s.
  [[nodiscard]] ReqRate capacity_of(std::span<const int> counts) const;

  [[nodiscard]] ReqRate max_perf(std::size_t arch) const {
    return max_perf_[arch];
  }
  [[nodiscard]] Watts idle_power(std::size_t arch) const {
    return idle_[arch];
  }
  [[nodiscard]] Watts max_power(std::size_t arch) const {
    return max_power_[arch];
  }

  /// Power of one machine of `arch` serving `rate` — exactly
  /// ArchitectureProfile::power_at, with the virtual call flattened away
  /// for linear models. Inline so per-rate loops (the DP solvers) pay no
  /// call overhead.
  [[nodiscard]] Watts machine_power_at(std::size_t arch, ReqRate rate) const {
    if (linear_[arch]) {
      // Same expression as LinearPowerModel::power_at so results stay
      // bit-identical to the reference dispatch().
      const ReqRate r = rate < 0.0
                            ? 0.0
                            : (rate > max_perf_[arch] ? max_perf_[arch] : rate);
      return idle_[arch] + slope_[arch] * r;
    }
    return models_[arch]->power_at(rate);
  }

 private:
  /// The shared dispatch kernel: fills low-slope machines first and
  /// accumulates power; optionally records per-arch loads. Both public
  /// entry points delegate here so there is exactly one copy of the
  /// bit-exactness-critical loop.
  [[nodiscard]] Watts evaluate(std::span<const int> counts, ReqRate rate,
                               ReqRate* remaining_out,
                               std::vector<ReqRate>* loads) const;

  std::vector<std::size_t> order_;  // slope-ascending catalog indices
  std::vector<ReqRate> max_perf_;   // catalog order, as are all below
  std::vector<Watts> idle_;
  std::vector<Watts> max_power_;
  std::vector<double> slope_;  // valid where linear_[i]
  std::vector<char> linear_;
  std::vector<std::shared_ptr<const PowerModel>> models_;  // piecewise only
};

}  // namespace bml
