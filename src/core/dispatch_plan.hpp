// Compiled dispatch plans: the allocation-free fast path for power queries.
//
// `dispatch()` (core/combination.hpp) re-derives the slope-sorted
// architecture order and heap-allocates two vectors on every call. That is
// fine for one-off queries, but the simulator, the DP solvers and the
// combination-table builder evaluate power millions of times per trace
// replay. A DispatchPlan compiles, once per catalog, everything dispatch
// needs into flat arrays:
//   * the slope-ascending dispatch order (ties broken by catalog index),
//   * per-architecture max_perf / idle_power / max_power,
//   * the linear-model slope, with a cloned PowerModel fallback for
//     piecewise profiles (at most one partially loaded machine per
//     architecture ever needs the curve).
//
// `power_at` and `dispatch_into` then evaluate a combination without
// allocating, producing bit-identical results to `dispatch()` (asserted by
// tests/test_dispatch_plan.cpp). The plan is immutable and self-contained
// (profiles are copied, not referenced), so one plan can be shared across
// parallel_for workers; per-worker mutable state is confined to the
// caller-owned DispatchResult scratch.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "power/power_model.hpp"
#include "util/units.hpp"

namespace bml {

/// A power curve compiled for one fixed fleet (machine counts): the
/// event-driven simulator evaluates compute power once per trace segment
/// while the fleet is constant. DispatchPlan::compile_fleet bakes two
/// forms out of the fleet:
///   * an affine piece table with one breakpoint per machine (dispatch
///     fills machine by machine, so power is piecewise linear in the
///     load): power(rate) = base_k + slope_k * rate inside piece k. The
///     cursor-hinted lookup costs a couple of compares for the noisy
///     loads the simulator feeds it — no division, no loop. The table
///     stops at the first non-linear (piecewise PowerModel) architecture
///     and is capped at kMaxPieces; and
///   * the active (non-zero-count) architectures in dispatch order, the
///     general loop for rates past the table.
/// Results match DispatchPlan::power_at for the same counts within
/// floating-point reassociation distance — a few ulp, from the pieces'
/// refactored sums (asserted at 1e-12 relative by
/// tests/test_dispatch_plan.cpp); the general loop performs the same
/// operations in the same order, merely skipping exact no-ops
/// (zero-count architectures, += 0.0 products). That sits far inside the
/// simulator's 1e-9 equivalence contract, and no integer counter depends
/// on power values.
/// The curve borrows the plan's piecewise PowerModels — it must not
/// outlive the DispatchPlan that compiled it.
class FleetPowerCurve {
 public:
  FleetPowerCurve() = default;

  /// Power of the compiled fleet serving `rate` (negative rates are the
  /// caller's bug; the simulator's loads are validated non-negative).
  /// Amortised O(1) for the simulator's access pattern (consecutive loads
  /// land in the same or a neighbouring piece — the hint tracks it).
  [[nodiscard]] Watts power_at(ReqRate rate) const {
    if (rate > 0.0 && !pieces_.empty() && rate < pieces_.back().bound) {
      std::size_t k = hint_;
      if (k >= pieces_.size()) k = 0;
      while (rate >= pieces_[k].bound) ++k;
      while (k > 0 && rate < pieces_[k - 1].bound) --k;
      hint_ = k;
      return pieces_[k].base + pieces_[k].slope * rate;
    }
    ReqRate remaining = rate;
    Watts power = 0.0;
    for (const Active& a : active_) {
      if (remaining > 0.0) {
        const ReqRate assigned =
            remaining < a.capacity ? remaining : a.capacity;
        remaining -= assigned;
        const int full = static_cast<int>(assigned / a.perf);
        const ReqRate partial = assigned - full * a.perf;
        power += full * a.max_power;
        const int idle_machines = a.count - full - (partial > 0.0 ? 1 : 0);
        if (partial > 0.0) {
          if (a.linear) {
            const ReqRate r = partial > a.perf ? a.perf : partial;
            power += a.idle + a.slope * r;
          } else {
            power += a.model->power_at(partial);
          }
        }
        power += idle_machines * a.idle;
      } else {
        // Exactly what the reference loop adds once remaining hit 0.0.
        power += a.count * a.idle;
      }
    }
    return power;
  }

 private:
  friend class DispatchPlan;
  struct Active {
    ReqRate perf = 0.0;
    ReqRate capacity = 0.0;  // count * perf
    Watts max_power = 0.0;
    Watts idle = 0.0;
    double slope = 0.0;  // valid when linear
    const PowerModel* model = nullptr;  // piecewise only
    int count = 0;
    char linear = 0;
  };
  std::vector<Active> active_;

  /// Affine piece k covers rate in [pieces_[k-1].bound, pieces_[k].bound)
  /// (piece 0 starts just above 0): j machines of the piece's
  /// architecture fully loaded, one partial, everything later idle.
  struct Piece {
    ReqRate bound = 0.0;  // exclusive upper bound of this piece
    Watts base = 0.0;
    double slope = 0.0;
  };
  static constexpr std::size_t kMaxPieces = 64;
  std::vector<Piece> pieces_;
  /// Last piece hit — consecutive noisy loads cluster, so the next lookup
  /// starts where the previous one ended (mutable: a cache, not state).
  mutable std::size_t hint_ = 0;
};

/// Immutable compiled form of a candidate catalog for power evaluation.
class DispatchPlan {
 public:
  DispatchPlan() = default;
  explicit DispatchPlan(const Catalog& candidates);

  [[nodiscard]] std::size_t arch_kinds() const { return max_perf_.size(); }

  /// Power of a combination (`counts[i]` machines of architecture i, in
  /// catalog order; shorter spans mean zero for the missing entries)
  /// serving `rate`. No allocations. Throws std::invalid_argument when the
  /// span is wider than the catalog or rate is negative.
  [[nodiscard]] Watts power_at(std::span<const int> counts,
                               ReqRate rate) const;

  /// Full dispatch into a caller-owned result; `out.load_per_arch` is
  /// resized (no allocation once warm) and refilled. Same contract as
  /// `dispatch()`.
  void dispatch_into(std::span<const int> counts, ReqRate rate,
                     DispatchResult& out) const;

  /// Serving capacity of the combination, req/s.
  [[nodiscard]] ReqRate capacity_of(std::span<const int> counts) const;

  /// Compiles the fleet `counts` into `out` (reusing its storage). See
  /// FleetPowerCurve: out.power_at(rate) matches power_at(counts, rate)
  /// within a few ulp (the affine pieces refactor the sum), and `out`
  /// borrows this plan's piecewise models.
  void compile_fleet(std::span<const int> counts, FleetPowerCurve& out) const;

  [[nodiscard]] ReqRate max_perf(std::size_t arch) const {
    return max_perf_[arch];
  }
  [[nodiscard]] Watts idle_power(std::size_t arch) const {
    return idle_[arch];
  }
  [[nodiscard]] Watts max_power(std::size_t arch) const {
    return max_power_[arch];
  }

  /// Power of one machine of `arch` serving `rate` — exactly
  /// ArchitectureProfile::power_at, with the virtual call flattened away
  /// for linear models. Inline so per-rate loops (the DP solvers) pay no
  /// call overhead.
  [[nodiscard]] Watts machine_power_at(std::size_t arch, ReqRate rate) const {
    if (linear_[arch]) {
      // Same expression as LinearPowerModel::power_at so results stay
      // bit-identical to the reference dispatch().
      const ReqRate r = rate < 0.0
                            ? 0.0
                            : (rate > max_perf_[arch] ? max_perf_[arch] : rate);
      return idle_[arch] + slope_[arch] * r;
    }
    return models_[arch]->power_at(rate);
  }

 private:
  /// The shared dispatch kernel: fills low-slope machines first and
  /// accumulates power; optionally records per-arch loads. Both public
  /// entry points delegate here so there is exactly one copy of the
  /// bit-exactness-critical loop.
  [[nodiscard]] Watts evaluate(std::span<const int> counts, ReqRate rate,
                               ReqRate* remaining_out,
                               std::vector<ReqRate>* loads) const;

  std::vector<std::size_t> order_;  // slope-ascending catalog indices
  std::vector<ReqRate> max_perf_;   // catalog order, as are all below
  std::vector<Watts> idle_;
  std::vector<Watts> max_power_;
  std::vector<double> slope_;  // valid where linear_[i]
  std::vector<char> linear_;
  std::vector<std::shared_ptr<const PowerModel>> models_;  // piecewise only
};

}  // namespace bml
