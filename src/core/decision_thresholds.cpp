#include "core/decision_thresholds.hpp"

#include <stdexcept>

#include "core/combination_table.hpp"

namespace bml {

DecisionThresholds::DecisionThresholds(const CombinationTable& table)
    : max_rate_(table.max_rate()) {
  const std::size_t n = table.grid_size();
  for (std::size_t i = 1; i < n; ++i)
    if (table.grid_entry(i) != table.grid_entry(i - 1))
      cuts_.push_back(static_cast<double>(i));
}

double DecisionThresholds::grid_index(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("DecisionThresholds: rate must be >= 0");
  return std::ceil(rate < max_rate_ ? rate : max_rate_);
}

}  // namespace bml
