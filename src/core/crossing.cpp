#include "core/crossing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/dispatch_plan.hpp"

namespace bml {

MinCostCurve::MinCostCurve(const Catalog& candidates, ReqRate max_rate)
    : candidates_(candidates) {
  if (candidates_.empty())
    throw std::invalid_argument("MinCostCurve: empty candidate list");
  if (max_rate < 0.0)
    throw std::invalid_argument("MinCostCurve: max_rate must be >= 0");

  const auto n = static_cast<std::size_t>(std::ceil(max_rate)) + 1;
  cost_.assign(n, std::numeric_limits<Watts>::infinity());
  choice_.assign(n, -1);
  is_partial_.assign(n, 0);
  cost_[0] = 0.0;

  // The O(rates x archs) loop reads the per-architecture constants through
  // a compiled DispatchPlan instead of the virtual PowerModel accessors,
  // which otherwise dominate the DP build; machine_power_at is the single
  // shared (and inlined) flattening of the power curve.
  const std::size_t kinds = candidates_.size();
  const DispatchPlan plan(candidates_);
  std::vector<std::size_t> perf_units(kinds);
  for (std::size_t i = 0; i < kinds; ++i)
    perf_units[i] = static_cast<std::size_t>(plan.max_perf(i));

  for (std::size_t r = 1; r < n; ++r) {
    const auto rate = static_cast<ReqRate>(r);
    for (std::size_t i = 0; i < kinds; ++i) {
      const std::size_t perf = perf_units[i];
      if (perf == 0) continue;
      if (rate <= plan.max_perf(i)) {
        // Close the combination with one partially loaded machine of i.
        const Watts c = plan.machine_power_at(i, rate);
        if (c < cost_[r]) {
          cost_[r] = c;
          choice_[r] = static_cast<int>(i);
          is_partial_[r] = 1;
        }
      }
      if (r > perf) {
        // Peel one fully loaded machine of i.
        const Watts c = cost_[r - perf] + plan.max_power(i);
        if (c < cost_[r]) {
          cost_[r] = c;
          choice_[r] = static_cast<int>(i);
          is_partial_[r] = 0;
        }
      }
    }
  }
}

std::size_t MinCostCurve::index_for(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("MinCostCurve: rate must be >= 0");
  const auto idx = static_cast<std::size_t>(std::ceil(rate));
  if (idx >= cost_.size())
    throw std::out_of_range("MinCostCurve: rate beyond table");
  return idx;
}

Watts MinCostCurve::cost(ReqRate rate) const { return cost_[index_for(rate)]; }

Combination MinCostCurve::combination(ReqRate rate) const {
  Combination combo;
  combo.resize(candidates_.size());
  std::size_t r = index_for(rate);
  while (r > 0) {
    const int arch = choice_[r];
    if (arch < 0)
      throw std::logic_error("MinCostCurve: broken reconstruction chain");
    combo.add(static_cast<std::size_t>(arch));
    if (is_partial_[r]) break;  // the partial machine closes the combination
    r -= static_cast<std::size_t>(
        candidates_[static_cast<std::size_t>(arch)].max_perf());
  }
  return combo;
}

ReqRate MinCostCurve::max_rate() const {
  return static_cast<ReqRate>(cost_.size() - 1);
}

Watts homogeneous_cost(const ArchitectureProfile& arch, ReqRate rate) {
  if (rate < 0.0)
    throw std::invalid_argument("homogeneous_cost: rate must be >= 0");
  if (rate == 0.0) return 0.0;
  const double perf = arch.max_perf();
  const double full = std::floor(rate / perf);
  const ReqRate remainder = rate - full * perf;
  Watts power = full * arch.max_power();
  if (remainder > 0.0) power += arch.power_at(remainder);
  return power;
}

namespace {

/// Shared bottom-up pass for Steps 3 and 4. Walks candidates from Little to
/// Big, maintaining the kept smaller architectures, and asks
/// `cost_builder(kept)` for the comparison cost function of the next bigger
/// architecture. Architectures without a crossing receive std::nullopt and
/// do not join the kept list.
template <typename CostBuilder>
ThresholdResult thresholds_impl(const Catalog& candidates,
                                CostBuilder&& cost_builder) {
  if (candidates.empty())
    throw std::invalid_argument("thresholds: empty candidate list");
  ThresholdResult result;
  result.thresholds.assign(candidates.size(), std::nullopt);

  Catalog kept;  // strictly smaller architectures kept so far
  for (std::size_t idx = candidates.size(); idx-- > 0;) {
    const ArchitectureProfile& arch = candidates[idx];
    if (kept.empty()) {
      // The Little architecture: preferable from the first unit of load.
      result.thresholds[idx] = 1.0;
      kept.push_back(arch);
      continue;
    }
    const auto cost_fn = cost_builder(kept, arch);
    const std::optional<ReqRate> threshold = crossing_point(arch, cost_fn);
    result.thresholds[idx] = threshold;
    if (threshold.has_value()) kept.push_back(arch);
  }
  return result;
}

}  // namespace

ThresholdResult step3_thresholds(const Catalog& candidates) {
  return thresholds_impl(
      candidates, [](const Catalog& kept, const ArchitectureProfile&) {
        return [&kept](ReqRate rate) {
          Watts best = std::numeric_limits<Watts>::infinity();
          for (const ArchitectureProfile& small : kept)
            best = std::min(best, homogeneous_cost(small, rate));
          return best;
        };
      });
}

ThresholdResult step4_thresholds(const Catalog& candidates) {
  return thresholds_impl(
      candidates,
      [](const Catalog& kept, const ArchitectureProfile& bigger) {
        auto curve = std::make_shared<MinCostCurve>(kept, bigger.max_perf());
        return [curve](ReqRate rate) { return curve->cost(rate); };
      });
}

}  // namespace bml
