#include "core/combination.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace bml {

Combination::Combination(std::vector<int> counts) : counts_(std::move(counts)) {
  for (int c : counts_)
    if (c < 0)
      throw std::invalid_argument("Combination: counts must be >= 0");
}

int Combination::count(std::size_t arch) const {
  if (arch >= counts_.size())
    throw std::out_of_range("Combination: arch index out of range");
  return counts_[arch];
}

int Combination::total_machines() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0);
}

bool Combination::empty() const { return total_machines() == 0; }

void Combination::set_count(std::size_t arch, int count) {
  if (count < 0)
    throw std::invalid_argument("Combination: counts must be >= 0");
  if (arch >= counts_.size()) counts_.resize(arch + 1, 0);
  counts_[arch] = count;
}

void Combination::add(std::size_t arch, int count) {
  if (arch >= counts_.size()) counts_.resize(arch + 1, 0);
  if (counts_[arch] + count < 0)
    throw std::invalid_argument("Combination: counts must stay >= 0");
  counts_[arch] += count;
}

void Combination::resize(std::size_t kinds) {
  if (kinds < counts_.size())
    throw std::invalid_argument("Combination: resize cannot shrink");
  counts_.resize(kinds, 0);
}

namespace {

void check_width(const Catalog& candidates, const Combination& combo) {
  if (combo.counts().size() > candidates.size())
    throw std::invalid_argument(
        "Combination: more architecture kinds than candidates");
}

}  // namespace

ReqRate capacity(const Catalog& candidates, const Combination& combo) {
  check_width(candidates, combo);
  ReqRate total = 0.0;
  for (std::size_t i = 0; i < combo.counts().size(); ++i)
    total += combo.counts()[i] * candidates[i].max_perf();
  return total;
}

Watts idle_power(const Catalog& candidates, const Combination& combo) {
  check_width(candidates, combo);
  Watts total = 0.0;
  for (std::size_t i = 0; i < combo.counts().size(); ++i)
    total += combo.counts()[i] * candidates[i].idle_power();
  return total;
}

Watts peak_power(const Catalog& candidates, const Combination& combo) {
  check_width(candidates, combo);
  Watts total = 0.0;
  for (std::size_t i = 0; i < combo.counts().size(); ++i)
    total += combo.counts()[i] * candidates[i].max_power();
  return total;
}

DispatchResult dispatch(const Catalog& candidates, const Combination& combo,
                        ReqRate rate) {
  check_width(candidates, combo);
  if (rate < 0.0)
    throw std::invalid_argument("dispatch: rate must be >= 0");

  DispatchResult result;
  result.load_per_arch.assign(combo.counts().size(), 0.0);

  // Cheapest marginal power first. All machines pay idle regardless, so the
  // optimal split for (piecewise-)linear curves fills low-slope machines
  // before touching higher-slope ones.
  std::vector<std::size_t> order(combo.counts().size());
  std::iota(order.begin(), order.end(), 0);
  // Catalog index breaks slope ties so the order is deterministic and
  // matches DispatchPlan's precompiled order bit-for-bit.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double sa = candidates[a].slope();
    const double sb = candidates[b].slope();
    if (sa != sb) return sa < sb;
    return a < b;
  });

  ReqRate remaining = rate;
  Watts power = 0.0;
  for (std::size_t arch : order) {
    const int n = combo.counts()[arch];
    if (n == 0) continue;
    const ArchitectureProfile& p = candidates[arch];
    const ReqRate arch_capacity = n * p.max_perf();
    const ReqRate assigned = std::min(remaining, arch_capacity);
    result.load_per_arch[arch] = assigned;
    remaining -= assigned;

    // Within one architecture the linear model makes the split irrelevant;
    // we spread evenly except that at most one machine runs partial, which
    // also matches piecewise curves sampled at full load.
    const int full = static_cast<int>(assigned / p.max_perf());
    const ReqRate partial = assigned - full * p.max_perf();
    power += full * p.max_power();
    const int idle_machines = n - full - (partial > 0.0 ? 1 : 0);
    if (partial > 0.0) power += p.power_at(partial);
    power += idle_machines * p.idle_power();
  }

  result.power = power;
  result.served = rate - remaining;
  result.feasible = remaining <= 1e-9;
  return result;
}

Watts power_at(const Catalog& candidates, const Combination& combo,
               ReqRate rate) {
  return dispatch(candidates, combo, rate).power;
}

std::string to_string(const Catalog& candidates, const Combination& combo) {
  check_width(candidates, combo);
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < combo.counts().size(); ++i) {
    if (combo.counts()[i] == 0) continue;
    if (!first) os << " + ";
    os << combo.counts()[i] << 'x' << candidates[i].name();
    first = false;
  }
  if (first) os << "(empty)";
  return os.str();
}

std::vector<int> delta(const Combination& from, const Combination& to) {
  const std::size_t kinds = std::max(from.counts().size(), to.counts().size());
  std::vector<int> out(kinds, 0);
  for (std::size_t i = 0; i < kinds; ++i) {
    const int f = i < from.counts().size() ? from.counts()[i] : 0;
    const int t = i < to.counts().size() ? to.counts()[i] : 0;
    out[i] = t - f;
  }
  return out;
}

}  // namespace bml
