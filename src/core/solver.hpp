// Ideal BML combination solvers — the paper's final step.
//
// Two interchangeable solvers compute, for a target performance rate, the
// machine combination that serves it at minimum power:
//
//  * GreedyThresholdSolver — the paper's algorithm. "Firstly, we consider
//    architectures sorted decreasingly and seek to fill completely Big
//    nodes, then Medium, and so on... Secondly, we use minimum thresholds
//    to choose the right architecture to process the remaining
//    performance." Correct when full-load efficiency (W per req/s at peak)
//    improves with machine size, which Steps 2-3 guarantee in practice and
//    which all shipped catalogs satisfy.
//
//  * ExactDpSolver — an exact dynamic program over integer rates (see
//    MinCostCurve). Used as the oracle in tests, for the theoretical lower
//    bound in the evaluation, and to validate the greedy solver.
//
// Both honour optional per-architecture inventory caps — the paper's
// "cases of existing heterogeneous infrastructure where there is limited
// numbers of machines of each type" (Section IV-A).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "arch/catalog.hpp"
#include "core/combination.hpp"
#include "core/crossing.hpp"
#include "core/dispatch_plan.hpp"
#include "util/units.hpp"

namespace bml {

/// Optional per-architecture machine count limits (parallel to the sorted
/// candidate list). Empty = unlimited machines of every type.
using InventoryCaps = std::vector<int>;

/// Interface of an ideal-combination solver over a fixed candidate list.
class CombinationSolver {
 public:
  virtual ~CombinationSolver() = default;

  /// Cheapest combination able to serve `rate`; rate 0 yields the empty
  /// combination. Throws std::invalid_argument for negative rates and
  /// std::runtime_error when inventory caps make the rate infeasible.
  [[nodiscard]] virtual Combination solve(ReqRate rate) const = 0;

  /// Power of solve(rate) serving `rate`.
  [[nodiscard]] virtual Watts power(ReqRate rate) const = 0;

  [[nodiscard]] virtual const Catalog& candidates() const = 0;
};

/// The paper's greedy solver driven by the Step 4 minimum utilization
/// thresholds.
class GreedyThresholdSolver final : public CombinationSolver {
 public:
  /// `candidates` must be sorted by decreasing max performance (Step 2
  /// output) and `thresholds` must hold one threshold per candidate (Step 4
  /// output, all engaged candidates present). Throws std::invalid_argument
  /// on size mismatch or unsorted input.
  GreedyThresholdSolver(Catalog candidates, std::vector<ReqRate> thresholds,
                        InventoryCaps caps = {});

  [[nodiscard]] Combination solve(ReqRate rate) const override;
  [[nodiscard]] Watts power(ReqRate rate) const override;
  [[nodiscard]] const Catalog& candidates() const override {
    return candidates_;
  }
  [[nodiscard]] const std::vector<ReqRate>& thresholds() const {
    return thresholds_;
  }

 private:
  Catalog candidates_;
  DispatchPlan plan_;
  std::vector<ReqRate> thresholds_;
  InventoryCaps caps_;
};

/// Exact DP solver; optimal for linear power curves on the integer grid.
/// Inventory caps are enforced by a bounded multi-dimensional search seeded
/// by the unconstrained DP (caps only matter for small clusters, where the
/// search space is tiny).
class ExactDpSolver final : public CombinationSolver {
 public:
  /// Precomputes the DP up to `max_rate`. Queries above it throw
  /// std::out_of_range.
  ExactDpSolver(Catalog candidates, ReqRate max_rate, InventoryCaps caps = {});

  [[nodiscard]] Combination solve(ReqRate rate) const override;
  [[nodiscard]] Watts power(ReqRate rate) const override;
  [[nodiscard]] const Catalog& candidates() const override {
    return candidates_;
  }
  [[nodiscard]] ReqRate max_rate() const { return curve_->max_rate(); }

 private:
  [[nodiscard]] bool within_caps(const Combination& combo) const;
  [[nodiscard]] Combination capped_search(ReqRate rate) const;

  Catalog candidates_;
  DispatchPlan plan_;
  std::unique_ptr<MinCostCurve> curve_;
  InventoryCaps caps_;
};

}  // namespace bml
