#include "core/sensitivity.hpp"

#include <cmath>
#include <stdexcept>

namespace bml {

std::string to_string(ProfileParameter parameter) {
  switch (parameter) {
    case ProfileParameter::kIdlePower: return "idle-power";
    case ProfileParameter::kMaxPower: return "max-power";
    case ProfileParameter::kMaxPerf: return "max-perf";
  }
  throw std::logic_error("to_string(ProfileParameter): invalid parameter");
}

Catalog perturb_catalog(const Catalog& catalog, const std::string& machine,
                        ProfileParameter parameter, double relative_delta) {
  Catalog out;
  bool found = false;
  for (const ArchitectureProfile& p : catalog) {
    if (p.name() != machine) {
      out.push_back(p);
      continue;
    }
    found = true;
    double idle = p.idle_power();
    double max_power = p.max_power();
    double max_perf = p.max_perf();
    switch (parameter) {
      case ProfileParameter::kIdlePower:
        idle *= 1.0 + relative_delta;
        break;
      case ProfileParameter::kMaxPower:
        max_power *= 1.0 + relative_delta;
        break;
      case ProfileParameter::kMaxPerf:
        max_perf *= 1.0 + relative_delta;
        break;
    }
    out.emplace_back(p.name(), max_perf, idle, max_power, p.on_cost(),
                     p.off_cost());
  }
  if (!found)
    throw std::out_of_range("perturb_catalog: no machine named " + machine);
  return out;
}

std::vector<SensitivityRow> sensitivity_analysis(const Catalog& catalog,
                                                 double relative_delta,
                                                 int power_samples) {
  if (power_samples < 2)
    throw std::invalid_argument(
        "sensitivity_analysis: power_samples must be >= 2");

  const BmlDesign baseline = BmlDesign::build(catalog);
  const ReqRate sweep_max = baseline.big().max_perf();

  std::vector<SensitivityRow> rows;
  for (const ArchitectureProfile& machine : catalog) {
    for (ProfileParameter parameter :
         {ProfileParameter::kIdlePower, ProfileParameter::kMaxPower,
          ProfileParameter::kMaxPerf}) {
      SensitivityRow row;
      row.machine = machine.name();
      row.parameter = parameter;
      row.relative_delta = relative_delta;

      Catalog perturbed_catalog;
      try {
        perturbed_catalog = perturb_catalog(catalog, machine.name(),
                                            parameter, relative_delta);
      } catch (const std::invalid_argument&) {
        continue;  // non-physical perturbation: skip this pair
      }
      const BmlDesign perturbed = BmlDesign::build(perturbed_catalog);

      row.same_candidates =
          perturbed.candidates().size() == baseline.candidates().size();
      if (row.same_candidates) {
        for (std::size_t i = 0; i < baseline.candidates().size(); ++i)
          if (perturbed.candidates()[i].name() !=
              baseline.candidates()[i].name())
            row.same_candidates = false;
      }
      if (row.same_candidates) {
        for (std::size_t i = 0; i < baseline.candidates().size(); ++i)
          row.threshold_shift.push_back(perturbed.thresholds()[i] -
                                        baseline.thresholds()[i]);
      }

      // Relative ideal-power drift over the sweep (skip rate 0).
      double drift = 0.0;
      int counted = 0;
      for (int s = 1; s < power_samples; ++s) {
        const ReqRate rate =
            sweep_max * static_cast<double>(s) / (power_samples - 1);
        const Watts base = baseline.ideal_power(rate);
        if (base <= 0.0) continue;
        drift += std::abs(perturbed.ideal_power(rate) - base) / base;
        ++counted;
      }
      row.mean_power_drift = counted > 0 ? drift / counted : 0.0;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace bml
