// Sensitivity of the BML design to profiling error.
//
// Step 1 measures profiles with instruments (the paper's wattmeter, our
// simulated testbed reproduces its noise); Steps 2-5 then treat those
// numbers as exact. This module quantifies how the design reacts when a
// profile parameter is perturbed: which thresholds move, whether the
// candidate set itself changes, and how much ideal power drifts. A design
// whose candidate set flips under ±2 % measurement noise would be fragile
// in practice — the real catalog turns out to be robust (see the tests and
// the threshold table in bench_ablation_metrics).
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "util/units.hpp"

namespace bml {

/// Which scalar of a profile is perturbed.
enum class ProfileParameter { kIdlePower, kMaxPower, kMaxPerf };

[[nodiscard]] std::string to_string(ProfileParameter parameter);

/// Returns `catalog` with one machine's parameter scaled by
/// (1 + relative_delta). Throws std::out_of_range for an unknown machine
/// name and std::invalid_argument when the perturbation makes the profile
/// non-physical (e.g. max power below idle).
[[nodiscard]] Catalog perturb_catalog(const Catalog& catalog,
                                      const std::string& machine,
                                      ProfileParameter parameter,
                                      double relative_delta);

/// Result of one perturbation experiment.
struct SensitivityRow {
  std::string machine;
  ProfileParameter parameter = ProfileParameter::kIdlePower;
  double relative_delta = 0.0;
  /// True when the perturbed design keeps the same candidate names.
  bool same_candidates = true;
  /// Per-candidate threshold change (perturbed - baseline), aligned to the
  /// *baseline* candidate order; empty when the candidate set changed.
  std::vector<ReqRate> threshold_shift;
  /// Mean absolute relative difference of ideal power over a rate sweep.
  double mean_power_drift = 0.0;
};

/// Perturbs every (machine, parameter) pair of `catalog` by
/// `relative_delta` and compares the resulting design against the
/// baseline. Power drift is evaluated on `power_samples` evenly spaced
/// rates up to the baseline Big machine's max performance. Perturbations
/// that make a profile non-physical (e.g. a large negative max-power
/// delta dropping below idle) are skipped, so fewer than
/// 3 x |catalog| rows may come back.
[[nodiscard]] std::vector<SensitivityRow> sensitivity_analysis(
    const Catalog& catalog, double relative_delta, int power_samples = 64);

}  // namespace bml
