#include "core/dispatch_plan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bml {

DispatchPlan::DispatchPlan(const Catalog& candidates) {
  if (candidates.empty())
    throw std::invalid_argument("DispatchPlan: empty candidate catalog");
  const std::size_t n = candidates.size();
  max_perf_.reserve(n);
  idle_.reserve(n);
  max_power_.reserve(n);
  slope_.reserve(n);
  linear_.reserve(n);
  models_.assign(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    const ArchitectureProfile& p = candidates[i];
    max_perf_.push_back(p.max_perf());
    idle_.push_back(p.idle_power());
    max_power_.push_back(p.max_power());
    slope_.push_back(p.slope());
    const bool is_linear =
        dynamic_cast<const LinearPowerModel*>(&p.model()) != nullptr;
    linear_.push_back(is_linear ? 1 : 0);
    if (!is_linear) models_[i] = p.model().clone();
  }
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  // Must match dispatch()'s ordering exactly: slope ascending, catalog
  // index as the tie-break.
  std::sort(order_.begin(), order_.end(), [this](std::size_t a,
                                                 std::size_t b) {
    if (slope_[a] != slope_[b]) return slope_[a] < slope_[b];
    return a < b;
  });
}

ReqRate DispatchPlan::capacity_of(std::span<const int> counts) const {
  if (counts.size() > arch_kinds())
    throw std::invalid_argument(
        "DispatchPlan: more architecture kinds than candidates");
  ReqRate total = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i)
    total += counts[i] * max_perf_[i];
  return total;
}

Watts DispatchPlan::evaluate(std::span<const int> counts, ReqRate rate,
                             ReqRate* remaining_out,
                             std::vector<ReqRate>* loads) const {
  if (counts.size() > arch_kinds())
    throw std::invalid_argument(
        "DispatchPlan: more architecture kinds than candidates");
  if (rate < 0.0)
    throw std::invalid_argument("DispatchPlan: rate must be >= 0");

  ReqRate remaining = rate;
  Watts power = 0.0;
  for (std::size_t arch : order_) {
    if (arch >= counts.size()) continue;
    const int n = counts[arch];
    if (n == 0) continue;
    const ReqRate perf = max_perf_[arch];
    const ReqRate arch_capacity = n * perf;
    const ReqRate assigned = std::min(remaining, arch_capacity);
    if (loads) (*loads)[arch] = assigned;
    remaining -= assigned;

    const int full = static_cast<int>(assigned / perf);
    const ReqRate partial = assigned - full * perf;
    power += full * max_power_[arch];
    const int idle_machines = n - full - (partial > 0.0 ? 1 : 0);
    if (partial > 0.0) power += machine_power_at(arch, partial);
    power += idle_machines * idle_[arch];
  }
  if (remaining_out) *remaining_out = remaining;
  return power;
}

Watts DispatchPlan::power_at(std::span<const int> counts,
                             ReqRate rate) const {
  return evaluate(counts, rate, nullptr, nullptr);
}

void DispatchPlan::compile_fleet(std::span<const int> counts,
                                 FleetPowerCurve& out) const {
  if (counts.size() > arch_kinds())
    throw std::invalid_argument(
        "DispatchPlan: more architecture kinds than candidates");
  out.active_.clear();
  for (std::size_t arch : order_) {
    if (arch >= counts.size()) continue;
    const int n = counts[arch];
    if (n == 0) continue;
    FleetPowerCurve::Active a;
    a.perf = max_perf_[arch];
    a.capacity = n * a.perf;
    a.max_power = max_power_[arch];
    a.idle = idle_[arch];
    a.slope = slope_[arch];
    a.model = models_[arch].get();
    a.count = n;
    a.linear = linear_[arch];
    out.active_.push_back(a);
  }
  // Affine piece table: walk machines in dispatch order; the piece where
  // machine j of arch a is the partial one has
  //   power(rate) = pre_full + j*max_power                 (full machines)
  //               + idle + slope*(rate - prefix_cap - j*perf)  (partial)
  //               + (count-j-1)*idle + post_idle           (idle machines)
  // which is affine in rate. Stops at the first piecewise-model arch
  // (its curve is not affine) and at kMaxPieces; rates past the table
  // fall back to the general loop above.
  out.pieces_.clear();
  out.hint_ = 0;
  Watts post_idle = 0.0;
  for (const FleetPowerCurve::Active& a : out.active_)
    post_idle += a.count * a.idle;
  ReqRate prefix_cap = 0.0;
  Watts pre_full = 0.0;
  for (const FleetPowerCurve::Active& a : out.active_) {
    post_idle -= a.count * a.idle;
    if (!a.linear) break;
    bool capped = false;
    for (int j = 0; j < a.count; ++j) {
      if (out.pieces_.size() >= FleetPowerCurve::kMaxPieces) {
        capped = true;
        break;
      }
      FleetPowerCurve::Piece piece;
      piece.bound = prefix_cap + (j + 1) * a.perf;
      piece.slope = a.slope;
      piece.base = pre_full + j * a.max_power + a.idle -
                   a.slope * (prefix_cap + j * a.perf) +
                   (a.count - j - 1) * a.idle + post_idle;
      out.pieces_.push_back(piece);
    }
    if (capped) break;
    prefix_cap += a.capacity;
    pre_full += a.count * a.max_power;
  }
}

void DispatchPlan::dispatch_into(std::span<const int> counts, ReqRate rate,
                                 DispatchResult& out) const {
  out.load_per_arch.assign(counts.size(), 0.0);
  ReqRate remaining = 0.0;
  out.power = evaluate(counts, rate, &remaining, &out.load_per_arch);
  out.served = rate - remaining;
  out.feasible = remaining <= 1e-9;
}

}  // namespace bml
