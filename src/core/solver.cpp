#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bml {

namespace {

constexpr double kRateEpsilon = 1e-9;

void check_sorted(const Catalog& candidates) {
  for (std::size_t i = 1; i < candidates.size(); ++i)
    if (candidates[i - 1].max_perf() < candidates[i].max_perf())
      throw std::invalid_argument(
          "solver: candidates must be sorted by decreasing max performance");
}

}  // namespace

GreedyThresholdSolver::GreedyThresholdSolver(Catalog candidates,
                                             std::vector<ReqRate> thresholds,
                                             InventoryCaps caps)
    : candidates_(std::move(candidates)),
      thresholds_(std::move(thresholds)),
      caps_(std::move(caps)) {
  if (candidates_.empty())
    throw std::invalid_argument("GreedyThresholdSolver: empty candidates");
  check_sorted(candidates_);
  plan_ = DispatchPlan(candidates_);
  if (thresholds_.size() != candidates_.size())
    throw std::invalid_argument(
        "GreedyThresholdSolver: one threshold per candidate required");
  if (!caps_.empty() && caps_.size() != candidates_.size())
    throw std::invalid_argument(
        "GreedyThresholdSolver: caps must match candidate count");
  for (ReqRate t : thresholds_)
    if (t < 0.0)
      throw std::invalid_argument(
          "GreedyThresholdSolver: thresholds must be >= 0");
}

Combination GreedyThresholdSolver::solve(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("GreedyThresholdSolver: rate must be >= 0");

  Combination combo;
  combo.resize(candidates_.size());
  std::vector<int> caps_left(candidates_.size(),
                             std::numeric_limits<int>::max());
  if (!caps_.empty()) caps_left = caps_;

  ReqRate remaining = rate;
  while (remaining > kRateEpsilon) {
    // Largest architecture whose minimum utilization threshold is reached
    // and that still has machines available.
    std::size_t pick = candidates_.size();
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (caps_left[i] > 0 && thresholds_[i] <= remaining) {
        pick = i;
        break;
      }
    }
    if (pick == candidates_.size()) {
      // Remaining load below every threshold (< 1 req/s): serve it with the
      // smallest architecture still available.
      for (std::size_t i = candidates_.size(); i-- > 0;) {
        if (caps_left[i] > 0) {
          pick = i;
          break;
        }
      }
    }
    if (pick == candidates_.size())
      throw std::runtime_error(
          "GreedyThresholdSolver: inventory exhausted before covering rate");

    const ArchitectureProfile& p = candidates_[pick];
    if (remaining >= p.max_perf()) {
      const int wanted = static_cast<int>(remaining / p.max_perf());
      const int taken = std::min(wanted, caps_left[pick]);
      combo.add(pick, taken);
      caps_left[pick] -= taken;
      remaining -= taken * p.max_perf();
      // If the cap truncated us, the loop re-picks among the rest.
    } else {
      combo.add(pick, 1);
      caps_left[pick] -= 1;
      remaining = 0.0;
    }
  }
  return combo;
}

Watts GreedyThresholdSolver::power(ReqRate rate) const {
  return plan_.power_at(solve(rate).counts(), rate);
}

ExactDpSolver::ExactDpSolver(Catalog candidates, ReqRate max_rate,
                             InventoryCaps caps)
    : candidates_(std::move(candidates)), caps_(std::move(caps)) {
  if (candidates_.empty())
    throw std::invalid_argument("ExactDpSolver: empty candidates");
  check_sorted(candidates_);
  if (!caps_.empty() && caps_.size() != candidates_.size())
    throw std::invalid_argument(
        "ExactDpSolver: caps must match candidate count");
  plan_ = DispatchPlan(candidates_);
  curve_ = std::make_unique<MinCostCurve>(candidates_, max_rate);
}

bool ExactDpSolver::within_caps(const Combination& combo) const {
  if (caps_.empty()) return true;
  for (std::size_t i = 0; i < combo.counts().size(); ++i)
    if (combo.counts()[i] > caps_[i]) return false;
  return true;
}

Combination ExactDpSolver::capped_search(ReqRate rate) const {
  // Exhaustive search over capped counts. Caps express small physical
  // clusters, so the space (prod of cap+1) stays tiny; the recursion prunes
  // branches whose remaining capacity cannot reach the target. Leaves are
  // evaluated through the precompiled plan on the raw count vector, so the
  // search allocates only when a new best is found.
  std::vector<int> best_counts;
  Watts best_power = std::numeric_limits<Watts>::infinity();

  std::vector<ReqRate> suffix_capacity(candidates_.size() + 1, 0.0);
  for (std::size_t i = candidates_.size(); i-- > 0;)
    suffix_capacity[i] =
        suffix_capacity[i + 1] + caps_[i] * candidates_[i].max_perf();

  std::vector<int> counts(candidates_.size(), 0);
  auto recurse = [&](auto&& self, std::size_t arch,
                     ReqRate capacity_so_far) -> void {
    if (arch == candidates_.size()) {
      if (capacity_so_far + kRateEpsilon < rate) return;
      const Watts p = plan_.power_at(counts, rate);
      if (p < best_power) {
        best_power = p;
        best_counts = counts;
      }
      return;
    }
    if (capacity_so_far + suffix_capacity[arch] + kRateEpsilon < rate)
      return;  // even maxing every remaining arch cannot cover the rate
    for (int n = 0; n <= caps_[arch]; ++n) {
      counts[arch] = n;
      self(self, arch + 1, capacity_so_far + n * candidates_[arch].max_perf());
    }
    counts[arch] = 0;
  };
  recurse(recurse, 0, 0.0);

  if (!std::isfinite(best_power))
    throw std::runtime_error(
        "ExactDpSolver: inventory caps cannot cover the requested rate");
  return Combination{std::move(best_counts)};
}

Combination ExactDpSolver::solve(ReqRate rate) const {
  if (rate < 0.0)
    throw std::invalid_argument("ExactDpSolver: rate must be >= 0");
  if (rate <= kRateEpsilon) {
    Combination empty;
    empty.resize(candidates_.size());
    return empty;
  }
  Combination combo = curve_->combination(rate);
  if (within_caps(combo)) return combo;
  return capped_search(rate);
}

Watts ExactDpSolver::power(ReqRate rate) const {
  return plan_.power_at(solve(rate).counts(), rate);
}

}  // namespace bml
