// Architecture profiles — the output of the paper's Step 1.
//
// A profile captures everything the BML methodology needs to know about one
// machine type (Table I of the paper):
//   * maxPerf   — maximum sustainable performance rate (req/s),
//   * idlePower — average power when on but idle (W),
//   * maxPower  — average power at maxPerf (W),
//   * On/Off transition durations (s) and energies (J).
//
// The default power curve is the paper's linear model; profiles measured
// with intermediate points carry a piecewise-linear curve instead.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "util/units.hpp"

namespace bml {

/// Cost (duration + energy) of a power-state transition.
struct TransitionCost {
  Seconds duration = 0.0;
  Joules energy = 0.0;

  /// Average power drawn during the transition.
  [[nodiscard]] Watts average_power() const {
    return duration > 0.0 ? energy / duration : 0.0;
  }
};

/// Energy/performance profile of one machine type.
///
/// Value type: copyable, comparable by name. The power curve is stored as
/// measured samples; `power_at` interpolates (linear when only the
/// idle/max endpoints are known, piecewise otherwise).
class ArchitectureProfile {
 public:
  /// Builds a linear-model profile from the Table I tuple.
  /// Throws std::invalid_argument on non-physical inputs (delegated to
  /// LinearPowerModel) or negative transition costs.
  ArchitectureProfile(std::string name, ReqRate max_perf, Watts idle_power,
                      Watts max_power, TransitionCost on, TransitionCost off);

  /// Builds a profile whose power curve interpolates measured samples.
  /// The first sample must be the idle point (rate 0); the last sample
  /// defines maxPerf/maxPower.
  ArchitectureProfile(std::string name, std::vector<PowerSample> samples,
                      TransitionCost on, TransitionCost off);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ReqRate max_perf() const { return model_->max_perf(); }
  [[nodiscard]] Watts idle_power() const { return model_->idle_power(); }
  [[nodiscard]] Watts max_power() const { return model_->max_power(); }
  [[nodiscard]] const TransitionCost& on_cost() const { return on_; }
  [[nodiscard]] const TransitionCost& off_cost() const { return off_; }

  /// Power drawn while serving `rate` (clamped to [0, max_perf]).
  [[nodiscard]] Watts power_at(ReqRate rate) const {
    return model_->power_at(rate);
  }

  /// Average marginal Watts per req/s over the full range. For linear
  /// profiles this is the slope used by crossing-point computations.
  [[nodiscard]] double slope() const { return model_->mean_slope(); }

  /// Watts per req/s when fully loaded — the metric that makes "fill the
  /// biggest machines first" optimal in the final combination step.
  [[nodiscard]] double full_load_efficiency() const {
    return max_power() / max_perf();
  }

  /// Joules consumed by a full On->boot->Off round trip, used by schedulers
  /// weighing reconfiguration against staying on.
  [[nodiscard]] Joules round_trip_energy() const {
    return on_.energy + off_.energy;
  }

  [[nodiscard]] const PowerModel& model() const { return *model_; }

  ArchitectureProfile(const ArchitectureProfile& other);
  ArchitectureProfile& operator=(const ArchitectureProfile& other);
  ArchitectureProfile(ArchitectureProfile&&) noexcept = default;
  ArchitectureProfile& operator=(ArchitectureProfile&&) noexcept = default;
  ~ArchitectureProfile() = default;

  friend bool operator==(const ArchitectureProfile& a,
                         const ArchitectureProfile& b) {
    return a.name_ == b.name_;
  }

 private:
  void validate() const;

  std::string name_;
  std::unique_ptr<PowerModel> model_;
  TransitionCost on_;
  TransitionCost off_;
};

/// BML role labels assigned after Step 2 sorts the candidates.
enum class Role { kLittle, kMedium, kBig, kUnassigned };

[[nodiscard]] std::string to_string(Role role);

}  // namespace bml
