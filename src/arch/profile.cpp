#include "arch/profile.hpp"

#include <stdexcept>

namespace bml {

ArchitectureProfile::ArchitectureProfile(std::string name, ReqRate max_perf,
                                         Watts idle_power, Watts max_power,
                                         TransitionCost on, TransitionCost off)
    : name_(std::move(name)),
      model_(std::make_unique<LinearPowerModel>(idle_power, max_power,
                                                max_perf)),
      on_(on),
      off_(off) {
  validate();
}

ArchitectureProfile::ArchitectureProfile(std::string name,
                                         std::vector<PowerSample> samples,
                                         TransitionCost on, TransitionCost off)
    : name_(std::move(name)),
      model_(std::make_unique<PiecewiseLinearPowerModel>(std::move(samples))),
      on_(on),
      off_(off) {
  validate();
}

ArchitectureProfile::ArchitectureProfile(const ArchitectureProfile& other)
    : name_(other.name_),
      model_(other.model_->clone()),
      on_(other.on_),
      off_(other.off_) {}

ArchitectureProfile& ArchitectureProfile::operator=(
    const ArchitectureProfile& other) {
  if (this != &other) {
    name_ = other.name_;
    model_ = other.model_->clone();
    on_ = other.on_;
    off_ = other.off_;
  }
  return *this;
}

void ArchitectureProfile::validate() const {
  if (name_.empty())
    throw std::invalid_argument("ArchitectureProfile: name must not be empty");
  if (on_.duration < 0.0 || off_.duration < 0.0)
    throw std::invalid_argument(
        "ArchitectureProfile: transition durations must be >= 0");
  if (on_.energy < 0.0 || off_.energy < 0.0)
    throw std::invalid_argument(
        "ArchitectureProfile: transition energies must be >= 0");
}

std::string to_string(Role role) {
  switch (role) {
    case Role::kLittle: return "Little";
    case Role::kMedium: return "Medium";
    case Role::kBig: return "Big";
    case Role::kUnassigned: return "Unassigned";
  }
  throw std::logic_error("to_string(Role): invalid role");
}

}  // namespace bml
