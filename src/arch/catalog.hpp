// Built-in architecture catalogs and CSV (de)serialisation.
//
// Two catalogs ship with the library:
//   * real_catalog()          — the five machines measured in Table I of the
//                               paper (Paravance, Taurus, Graphene,
//                               Chromebook, Raspberry).
//   * illustrative_catalog()  — the four architectures A/B/C/D of Figure 1.
//                               The paper gives the figure but not the
//                               numbers; the values here were chosen so that
//                               every statement the paper makes about the
//                               figure holds (see each entry's comment).
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "arch/profile.hpp"

namespace bml {

/// An ordered set of architecture profiles. Order is insertion order until
/// the Step 2 filter sorts by decreasing maximum performance.
using Catalog = std::vector<ArchitectureProfile>;

/// The five machines of Table I with their measured profiles.
[[nodiscard]] Catalog real_catalog();

/// The illustrative A/B/C/D architectures of Figure 1.
[[nodiscard]] Catalog illustrative_catalog();

/// Finds a profile by name; std::nullopt when absent.
[[nodiscard]] std::optional<ArchitectureProfile> find_profile(
    const Catalog& catalog, const std::string& name);

/// Serialises a catalog as CSV with header
/// name,max_perf,idle_power,max_power,on_s,on_j,off_s,off_j
/// (linear power curves only — the Table I representation).
[[nodiscard]] std::string catalog_to_csv(const Catalog& catalog);

/// Parses a catalog from the CSV representation above; throws
/// std::runtime_error on malformed input.
[[nodiscard]] Catalog catalog_from_csv(const std::string& text);

/// File variants of the above.
void save_catalog(const Catalog& catalog, const std::filesystem::path& path);
[[nodiscard]] Catalog load_catalog(const std::filesystem::path& path);

}  // namespace bml
