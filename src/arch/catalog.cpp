#include "arch/catalog.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace bml {

Catalog real_catalog() {
  // Values transcribed from Table I of the paper:
  //   Architecture  MaxPerf  Idle-Max Power   On(s, J)      Off(s, J)
  //   Paravance     1331     69.9 - 200.5     189, 21341    10, 657
  //   Taurus         860     95.8 - 223.7     164, 20628    11, 1173
  //   Graphene       272     47.7 - 123.8      71, 4940     16, 760
  //   Chromebook      33      4.0 - 7.6        12, 49.3     21, 77.6
  //   Raspberry        9      3.1 - 3.7        16, 40.5     14, 36.2
  Catalog c;
  c.emplace_back("paravance", 1331.0, 69.9, 200.5,
                 TransitionCost{189.0, 21341.0}, TransitionCost{10.0, 657.0});
  c.emplace_back("taurus", 860.0, 95.8, 223.7, TransitionCost{164.0, 20628.0},
                 TransitionCost{11.0, 1173.0});
  c.emplace_back("graphene", 272.0, 47.7, 123.8, TransitionCost{71.0, 4940.0},
                 TransitionCost{16.0, 760.0});
  c.emplace_back("chromebook", 33.0, 4.0, 7.6, TransitionCost{12.0, 49.3},
                 TransitionCost{21.0, 77.6});
  c.emplace_back("raspberry", 9.0, 3.1, 3.7, TransitionCost{16.0, 40.5},
                 TransitionCost{14.0, 36.2});
  return c;
}

Catalog illustrative_catalog() {
  // The paper's Figure 1 / Figure 2 example. Chosen values reproduce every
  // claim made about the figures:
  //  * Step 2 removes D: its max power (170 W) exceeds A's (130 W) while it
  //    delivers less performance (450 < 600 req/s).
  //  * The minimum utilization threshold of Medium (B) lands at 151 req/s —
  //    "around 150"; below it, "up to five Little nodes" (5 x 30 req/s)
  //    are more efficient.
  //  * In Step 3 the threshold of Big (A) comes out at 401 req/s — right at
  //    Medium's maximum performance (400), with the "substantial jump" from
  //    B's 95 W full load to A's ~117 W near-idle draw.
  //  * Step 4 (Medium + Little mixes) raises Big's threshold to ~481 req/s.
  // Transition costs scale with machine size, mirroring Table I's trend.
  Catalog c;
  c.emplace_back("arch-A", 600.0, 90.0, 130.0, TransitionCost{120.0, 12000.0},
                 TransitionCost{10.0, 500.0});
  c.emplace_back("arch-B", 400.0, 25.0, 95.0, TransitionCost{60.0, 3000.0},
                 TransitionCost{10.0, 300.0});
  c.emplace_back("arch-C", 30.0, 4.0, 10.0, TransitionCost{15.0, 60.0},
                 TransitionCost{15.0, 60.0});
  c.emplace_back("arch-D", 450.0, 120.0, 170.0, TransitionCost{150.0, 15000.0},
                 TransitionCost{12.0, 800.0});
  return c;
}

std::optional<ArchitectureProfile> find_profile(const Catalog& catalog,
                                                const std::string& name) {
  for (const ArchitectureProfile& p : catalog)
    if (p.name() == name) return p;
  return std::nullopt;
}

std::string catalog_to_csv(const Catalog& catalog) {
  CsvWriter w;
  w.set_header({"name", "max_perf", "idle_power", "max_power", "on_s", "on_j",
                "off_s", "off_j"});
  for (const ArchitectureProfile& p : catalog) {
    std::ostringstream row;
    w.add_row({p.name(), std::to_string(p.max_perf()),
               std::to_string(p.idle_power()), std::to_string(p.max_power()),
               std::to_string(p.on_cost().duration),
               std::to_string(p.on_cost().energy),
               std::to_string(p.off_cost().duration),
               std::to_string(p.off_cost().energy)});
  }
  return w.to_string();
}

Catalog catalog_from_csv(const std::string& text) {
  const CsvTable table = parse_csv(text, /*has_header=*/true);
  const std::size_t name_col = table.column("name");
  const std::size_t perf_col = table.column("max_perf");
  const std::size_t idle_col = table.column("idle_power");
  const std::size_t max_col = table.column("max_power");
  const std::size_t on_s = table.column("on_s");
  const std::size_t on_j = table.column("on_j");
  const std::size_t off_s = table.column("off_s");
  const std::size_t off_j = table.column("off_j");

  Catalog out;
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size())
      throw std::runtime_error("catalog_from_csv: ragged row");
    out.emplace_back(
        row[name_col], parse_double(row[perf_col]),
        parse_double(row[idle_col]), parse_double(row[max_col]),
        TransitionCost{parse_double(row[on_s]), parse_double(row[on_j])},
        TransitionCost{parse_double(row[off_s]), parse_double(row[off_j])});
  }
  return out;
}

void save_catalog(const Catalog& catalog, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_catalog: cannot open " + path.string());
  out << catalog_to_csv(catalog);
}

Catalog load_catalog(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("load_catalog: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return catalog_from_csv(buffer.str());
}

}  // namespace bml
