// Ablation experiments beyond the paper's figures:
//
//  * prediction-error sweep — the paper's stated future work: "investigate
//    the impact of load prediction errors on reconfiguration decisions";
//  * prediction-window sweep — why 2x the longest On duration;
//  * policy comparison — pro-active vs reactive vs hysteresis;
//  * energy-proportionality metrics (IPR / LDR / composite score) per
//    machine and for the composed BML curve (Section II's yardsticks).
#pragma once

#include <string>
#include <vector>

#include "core/bml_design.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/units.hpp"

namespace bml {

/// One row of an ablation sweep: a label, the achieved energy, and QoS.
/// Not to be confused with scenario/sweep.hpp's SweepRow — reusing that
/// name here was an ODR violation (two bml::SweepRow layouts collapsed
/// the std::vector<SweepRow> instantiations into one at link time).
struct AblationRow {
  std::string label;
  Joules total_energy = 0.0;
  double overhead_vs_lower_bound_pct = 0.0;
  double served_fraction = 1.0;
  int reconfigurations = 0;
};

struct AblationOptions {
  /// Days of World-Cup-like trace to replay (short by default: ablations
  /// run many scenarios).
  std::size_t days = 7;
  ReqRate peak = 5200.0;
  std::uint64_t seed = 7;
};

/// Sweep of multiplicative prediction error sigma (and optional bias).
[[nodiscard]] std::vector<AblationRow> run_prediction_error_sweep(
    const std::vector<double>& sigmas, const AblationOptions& options = {});

/// Sweep of the look-ahead window as multiples of the longest On duration.
[[nodiscard]] std::vector<AblationRow> run_window_sweep(
    const std::vector<double>& window_factors,
    const AblationOptions& options = {});

/// Pro-active oracle vs reactive vs reactive+hysteresis vs moving-max.
[[nodiscard]] std::vector<AblationRow> run_policy_comparison(
    const AblationOptions& options = {});

/// Energy-proportionality metric row for one power curve.
struct ProportionalityRow {
  std::string name;
  double ipr = 0.0;    // idle-to-peak ratio (lower is better)
  double ldr = 0.0;    // linear deviation ratio (0 = perfectly linear)
  double score = 0.0;  // composite proportionality score (1 is ideal)
};

/// Metrics for every real machine plus the composed BML curve and the
/// BML-linear reference.
[[nodiscard]] std::vector<ProportionalityRow> run_proportionality_metrics();

/// Cost-aware reconfiguration (the paper's closing future work) vs the
/// plain pro-active scheduler, over payback windows of various lengths.
[[nodiscard]] std::vector<AblationRow> run_cost_aware_comparison(
    const AblationOptions& options = {});

/// One point of the RAPL-vs-BML curve comparison.
struct RaplRow {
  ReqRate rate = 0.0;
  Watts bml = 0.0;           // ideal BML combination
  Watts rapl_big = 0.0;      // ideally capped homogeneous Big fleet
  Watts uncapped_big = 0.0;  // homogeneous Big fleet, no capping
};

/// Power curves: BML combination vs an ideally RAPL-capped homogeneous Big
/// fleet (sized for `fleet_rate`), over rates 0..fleet_rate. Section II's
/// point: capping improves proportionality but cannot shed idle power.
[[nodiscard]] std::vector<RaplRow> run_rapl_comparison(
    ReqRate fleet_rate = 4.0 * 1331.0, int points = 21);

/// Boot fault injection: jittered/retried boots vs the clean simulator.
[[nodiscard]] std::vector<AblationRow> run_fault_injection_sweep(
    const std::vector<double>& jitter_sigmas,
    const AblationOptions& options = {});

}  // namespace bml
