// CSV export of experiment results — one file per figure/table series so
// the paper's plots can be regenerated with any plotting tool.
//
//   bml::export_all("out/");   // writes fig1..fig5, table1, metrics CSVs
//
// Each bench binary prints human-readable tables; these exports carry the
// same data in machine-readable form.
#pragma once

#include <filesystem>

#include "experiments/experiments.hpp"

namespace bml {

/// Writes table1.csv: measured vs truth per machine.
void export_table1(const Table1Result& result,
                   const std::filesystem::path& directory);

/// Writes fig1_profiles.csv: rate + one homogeneous power column per arch.
void export_fig1(const Fig1Result& result,
                 const std::filesystem::path& directory);

/// Writes fig2_thresholds.csv: name, step3, step4.
void export_fig2(const Fig2Result& result,
                 const std::filesystem::path& directory);

/// Writes fig3_profiles.csv: long-format name, rate, power.
void export_fig3(const Fig3Result& result,
                 const std::filesystem::path& directory);

/// Writes fig4_curves.csv: rate, bml, big_only, linear.
void export_fig4(const Fig4Result& result,
                 const std::filesystem::path& directory);

/// Writes fig5_per_day.csv: day, lower_bound, bml, per_day, global,
/// bml_overhead_pct.
void export_fig5(const Fig5Result& result,
                 const std::filesystem::path& directory);

/// Runs every experiment at paper scale and writes every CSV into
/// `directory` (created if missing). Returns the number of files written.
int export_all(const std::filesystem::path& directory);

}  // namespace bml
