// Experiment runners — one per table/figure of the paper's evaluation.
//
// Each runner returns a structured result; the bench binaries render the
// rows/series the paper reports and optionally dump CSVs. Keeping the
// logic here (a library) lets the test suite assert on the reproduced
// numbers without re-parsing bench output.
//
//   Table I  — run_table1   simulated Step 1 profiling of all 5 machines
//   Fig. 1   — run_fig1     illustrative profiles + Step 2 filtering
//   Fig. 2   — run_fig2     Step 3 vs Step 4 crossing points
//   Fig. 3   — run_fig3     measured power/perf curves (real catalog)
//   Fig. 4   — run_fig4     ideal BML combination curve vs Big / BML-linear
//   Fig. 5   — run_fig5     World-Cup evaluation vs lower & upper bounds
//
// Beyond the paper: run_colocation compares two applications sharing one
// BML pool (the multi-tenant workload layer) against each running on its
// own dedicated cluster.
#pragma once

#include <string>
#include <vector>

#include "arch/catalog.hpp"
#include "core/bml_design.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/units.hpp"

namespace bml {

// ---------------------------------------------------------------- Table I

/// One profiled machine: measured profile next to the ground truth.
struct ProfiledArch {
  ArchitectureProfile measured;
  ArchitectureProfile truth;

  /// Largest relative error across max perf / idle / max power.
  [[nodiscard]] double worst_relative_error() const;
};

struct Table1Result {
  std::vector<ProfiledArch> rows;
};

/// Profiles every machine of the real catalog on the simulated testbed.
[[nodiscard]] Table1Result run_table1(std::uint64_t seed = 42);

// ----------------------------------------------------------------- Fig. 1

struct Fig1Result {
  Catalog input;                      // A, B, C, D
  Catalog kept;                       // sorted candidates after Step 2
  std::vector<RemovedArch> removed;   // D, with the dominance reason
  /// Power of the repeated (homogeneous) profile of each input arch over
  /// rates 0..max, step `rate_step` — the Fig. 1 series.
  std::vector<std::vector<Watts>> homogeneous_series;
  ReqRate rate_step = 10.0;
  ReqRate max_rate = 700.0;
};

[[nodiscard]] Fig1Result run_fig1();

// ----------------------------------------------------------------- Fig. 2

struct Fig2Result {
  BmlDesign design;                   // on the illustrative catalog
  /// Candidate names, Step 3 and Step 4 thresholds (parallel vectors).
  std::vector<std::string> names;
  std::vector<ReqRate> step3;
  std::vector<ReqRate> step4;
};

[[nodiscard]] Fig2Result run_fig2();

// ----------------------------------------------------------------- Fig. 3

struct Fig3Series {
  std::string name;
  std::vector<ReqRate> rates;
  std::vector<Watts> powers;
};

struct Fig3Result {
  std::vector<Fig3Series> series;  // one per real machine
};

/// Power/performance curves of the five Table I machines, sampled at
/// `points` evenly spaced rates each.
[[nodiscard]] Fig3Result run_fig3(int points = 25);

// ----------------------------------------------------------------- Fig. 4

struct Fig4Result {
  BmlDesign design;             // real catalog
  std::vector<ReqRate> rates;   // 0..maxPerf(Big)
  std::vector<Watts> bml;       // ideal BML combination power
  std::vector<Watts> big_only;  // homogeneous Big power (1 machine)
  std::vector<Watts> linear;    // BML-linear reference
};

[[nodiscard]] Fig4Result run_fig4(ReqRate rate_step = 1.0);

// ----------------------------------------------------------------- Fig. 5

struct Fig5Options {
  WorldCupOptions trace;
  /// Skip the first `skip_days` when reporting (the paper replays days
  /// 6-92, i.e. drops the rampless first days; our synthetic trace starts
  /// at day 6's character already, so this defaults to 0).
  std::size_t skip_days = 0;
};

struct Fig5Result {
  /// Per-day energies (J), one entry per replayed day.
  std::vector<Joules> lower_bound;
  std::vector<Joules> bml;
  std::vector<Joules> per_day_bound;
  std::vector<Joules> global_bound;
  /// Full simulation records for the three simulated scenarios.
  SimulationResult bml_sim;
  SimulationResult per_day_sim;
  SimulationResult global_sim;
  /// Per-day percentage of BML energy over the theoretical lower bound.
  std::vector<double> bml_overhead_pct;

  [[nodiscard]] double mean_overhead_pct() const;
  [[nodiscard]] double min_overhead_pct() const;
  [[nodiscard]] double max_overhead_pct() const;
};

[[nodiscard]] Fig5Result run_fig5(const Fig5Options& options = {});

// ------------------------------------------------------------- Colocation

/// Multi-tenant demonstration: a diurnal web frontend and a steady batch
/// service, (a) colocated on one shared cluster through the workload
/// layer (sum coordinator) and (b) each on its own dedicated cluster.
/// Colocation pools the On machines, so the dispatcher fills the shared
/// fleet's cheapest slopes with both apps' traffic.
struct ColocationResult {
  /// Shared-cluster run with per-app attribution.
  MultiSimulationResult colocated;
  /// One dedicated-cluster run per application (same order as
  /// colocated.apps).
  std::vector<SimulationResult> isolated;

  [[nodiscard]] Joules colocated_total() const {
    return colocated.total.total_energy();
  }
  [[nodiscard]] Joules isolated_total() const;
};

[[nodiscard]] ColocationResult run_colocation(std::size_t days = 1,
                                              std::uint64_t seed = 7);

// --------------------------------------------------------- SLO resilience

/// Availability-SLO feedback under correlated rack strikes: a diurnal web
/// frontend (carrying an availability SLO) and a steady batch service
/// share one fault domain that rack-level strikes keep knocking over,
/// with a single repair crew serialising recovery. The same scenario —
/// identical fault seed, hence identical strike timeline — runs twice:
/// once with the SLO feedback loop provisioning spare capacity while the
/// trailing-window availability is below target, and once without. The
/// delta quantifies what the feedback buys (QoS violation seconds
/// recovered, served-fraction gain for the SLO app) and what it costs
/// (total energy, with the spares' idle-power share reported separately).
struct SloRackStrikeResult {
  /// SLO-aware run (web carries `target`).
  MultiSimulationResult aware;
  /// Baseline with the identical fault timeline and no SLO feedback.
  MultiSimulationResult baseline;
  /// The web app's availability target.
  double target = 0.0;

  /// QoS violation seconds the feedback loop recovered for the SLO app
  /// (baseline minus aware; positive = the spares helped).
  [[nodiscard]] std::int64_t violation_recovered_s() const {
    return baseline.apps.front().qos_stats.violation_seconds -
           aware.apps.front().qos_stats.violation_seconds;
  }
  /// Extra energy the feedback loop spent (aware minus baseline, J).
  [[nodiscard]] Joules energy_cost() const {
    return aware.total.total_energy() - baseline.total.total_energy();
  }
};

[[nodiscard]] SloRackStrikeResult run_slo_rackstrikes(std::size_t days = 1,
                                                      std::uint64_t seed = 7);

// ----------------------------------------------- Graceful degradation

/// Degraded-mode serving + priority classes under correlated rack
/// strikes: a diurnal web frontend (priority 2) and a steady batch
/// service (priority 0) share one rack-struck fault domain with a single
/// repair crew. The same scenario — identical fault seed, hence identical
/// strike timeline — runs twice: once with the control plane degrading
/// gracefully (strikes preempt batch capacity for the pool instead of
/// booting replacements, and the surviving machines absorb the resulting
/// spill-over at a contention penalty) and once with the classic brittle
/// behaviour (replacement boot-storms, spill-over dropped, no
/// priorities). The delta quantifies the frugal direction of the
/// robustness trade — the opposite of the SLO spare loop, which spends
/// energy to buy service: graceful degradation skips the replacement
/// churn (energy saved) and holds the web app's served fraction nearly
/// flat through the outages via spill-over absorption, while the batch
/// service bears the preempted seconds and every tenant logs
/// contention-degraded overload seconds.
struct DegradedPriorityResult {
  /// Degrade model + priority classes active (web = 2, batch = 0).
  MultiSimulationResult aware;
  /// Identical fault timeline, spill-over dropped, every priority 0.
  MultiSimulationResult baseline;
  /// The aware run's degrade knobs.
  double overload_factor = 0.0;
  double penalty = 0.0;

  /// Energy graceful degradation saved (baseline minus aware, J;
  /// positive = the lean fleet was cheaper): preemption sheds
  /// low-priority capacity instead of booting replacements.
  [[nodiscard]] Joules energy_saved() const {
    return baseline.total.total_energy() - aware.total.total_energy();
  }
  /// Served-fraction delta of the high-priority web app (aware minus
  /// baseline). Spill-over absorption claws back most of the capacity
  /// the preemption path declines to re-boot, so this hovers near zero
  /// while the energy saving is real.
  [[nodiscard]] double served_delta() const {
    return aware.apps.front().qos_stats.served_fraction() -
           baseline.apps.front().qos_stats.served_fraction();
  }
};

[[nodiscard]] DegradedPriorityResult run_degraded_priority(
    std::size_t days = 1, std::uint64_t seed = 7);

// ----------------------------------------------- Tenant lifecycle

/// Tenant churn vs static over-provisioning: a diurnal web frontend runs
/// all day while a batch tenant is only resident for the middle half of
/// the horizon. The same pool — designed for the combined peak — runs
/// twice: once lifecycle-aware (the visitor arrives and departs mid-run,
/// the coordinator re-partitions capacity shares at each churn event and
/// the departed tenant's machines drain through the normal transition
/// path) and once statically over-provisioned (the visitor is treated as
/// permanent, holding its capacity for the full horizon). The delta
/// quantifies what tenancy-awareness buys: the energy of the absent
/// tenant's idle window, at an unchanged served fraction for the
/// always-on frontend.
struct TenantChurnResult {
  /// Lifecycle-aware run: the visitor is active on [arrive, depart).
  MultiSimulationResult aware;
  /// Static over-provisioning: identical workloads, visitor always on.
  MultiSimulationResult baseline;
  /// The visitor's residency window (s since trace start).
  TimePoint arrive = 0;
  TimePoint depart = 0;

  /// Energy tenancy-awareness saved (baseline minus aware, J; positive =
  /// draining the absent tenant's machines was cheaper).
  [[nodiscard]] Joules energy_saved() const {
    return baseline.total.total_energy() - aware.total.total_energy();
  }
  /// Served-fraction delta of the always-on frontend (aware minus
  /// baseline) — near zero: churn must not degrade resident tenants.
  [[nodiscard]] double frontend_served_delta() const {
    return aware.apps.front().qos_stats.served_fraction() -
           baseline.apps.front().qos_stats.served_fraction();
  }
};

[[nodiscard]] TenantChurnResult run_tenant_churn(std::size_t days = 1,
                                                 std::uint64_t seed = 7);

}  // namespace bml
