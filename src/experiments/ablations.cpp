#include "experiments/ablations.hpp"
#include <cmath>
#include <stdexcept>

#include <memory>

#include "power/proportionality.hpp"
#include "power/rapl.hpp"
#include "predict/predictor.hpp"
#include "sched/baselines.hpp"
#include "sched/bml_scheduler.hpp"
#include "sched/cost_aware.hpp"
#include "sched/lower_bound.hpp"
#include "util/parallel.hpp"

namespace bml {

namespace {

struct AblationContext {
  LoadTrace trace;
  std::shared_ptr<BmlDesign> design;
  Joules lower_bound = 0.0;
};

AblationContext make_context(const AblationOptions& options) {
  WorldCupOptions trace_options;
  trace_options.days = options.days;
  trace_options.peak = options.peak;
  trace_options.seed = options.seed;
  // Compress the tournament profile into the shortened replay window so a
  // week-long ablation still sees ramp + match days.
  trace_options.tournament_start_day = options.days / 3;
  trace_options.tournament_end_day = options.days - 1;

  AblationContext ctx{worldcup_like_trace(trace_options), nullptr, 0.0};
  BmlDesignOptions design_options;
  design_options.max_rate = std::max(ctx.trace.peak(), 1.0);
  ctx.design = std::make_shared<BmlDesign>(
      BmlDesign::build(real_catalog(), design_options));
  ctx.lower_bound = theoretical_lower_bound_total(*ctx.design, ctx.trace);
  return ctx;
}

AblationRow row_from(const std::string& label, const SimulationResult& sim,
                  Joules lower_bound) {
  AblationRow row;
  row.label = label;
  row.total_energy = sim.total_energy();
  row.overhead_vs_lower_bound_pct =
      percent_over(sim.total_energy(), lower_bound);
  row.served_fraction = sim.qos.served_fraction();
  row.reconfigurations = sim.reconfigurations;
  return row;
}

}  // namespace

std::vector<AblationRow> run_prediction_error_sweep(
    const std::vector<double>& sigmas, const AblationOptions& options) {
  const AblationContext ctx = make_context(options);
  const Simulator simulator(ctx.design->candidates());
  std::vector<AblationRow> rows(sigmas.size());
  // Sweep points are independent simulations: run them in parallel.
  parallel_for(sigmas.size(), [&](std::size_t i) {
    auto predictor = std::make_shared<ErrorInjectingPredictor>(
        std::make_unique<OracleMaxPredictor>(), sigmas[i], /*bias=*/0.0,
        /*seed=*/options.seed + 1);
    BmlScheduler scheduler(ctx.design, predictor);
    const SimulationResult sim = simulator.run(scheduler, ctx.trace);
    rows[i] = row_from("sigma=" + std::to_string(sigmas[i]), sim,
                       ctx.lower_bound);
  });
  return rows;
}

std::vector<AblationRow> run_window_sweep(
    const std::vector<double>& window_factors,
    const AblationOptions& options) {
  const AblationContext ctx = make_context(options);
  const Simulator simulator(ctx.design->candidates());
  const Seconds base = BmlScheduler::default_window(*ctx.design) / 2.0;
  std::vector<AblationRow> rows(window_factors.size());
  parallel_for(window_factors.size(), [&](std::size_t i) {
    BmlScheduler scheduler(ctx.design, std::make_shared<OracleMaxPredictor>(),
                           window_factors[i] * base);
    const SimulationResult sim = simulator.run(scheduler, ctx.trace);
    rows[i] = row_from("window=" + std::to_string(window_factors[i]) + "xOn",
                       sim, ctx.lower_bound);
  });
  return rows;
}

std::vector<AblationRow> run_policy_comparison(const AblationOptions& options) {
  const AblationContext ctx = make_context(options);
  Simulator simulator(ctx.design->candidates());
  std::vector<AblationRow> rows;

  {
    BmlScheduler scheduler(ctx.design, std::make_shared<OracleMaxPredictor>());
    rows.push_back(row_from("pro-active oracle (paper)",
                            simulator.run(scheduler, ctx.trace),
                            ctx.lower_bound));
  }
  {
    BmlScheduler scheduler(
        ctx.design,
        std::make_shared<MovingMaxPredictor>(
            BmlScheduler::default_window(*ctx.design)));
    rows.push_back(row_from("pro-active moving-max",
                            simulator.run(scheduler, ctx.trace),
                            ctx.lower_bound));
  }
  {
    BmlScheduler scheduler(ctx.design, std::make_shared<SeasonalPredictor>());
    rows.push_back(row_from("pro-active seasonal (same time yesterday)",
                            simulator.run(scheduler, ctx.trace),
                            ctx.lower_bound));
  }
  {
    ReactiveScheduler scheduler(ctx.design, /*headroom=*/1.0);
    rows.push_back(row_from("reactive", simulator.run(scheduler, ctx.trace),
                            ctx.lower_bound));
  }
  {
    auto inner = std::make_shared<ReactiveScheduler>(ctx.design, 1.0);
    HysteresisScheduler scheduler(inner, ctx.design, /*hold=*/600.0);
    rows.push_back(row_from("reactive + 600s hysteresis",
                            simulator.run(scheduler, ctx.trace),
                            ctx.lower_bound));
  }
  return rows;
}

std::vector<ProportionalityRow> run_proportionality_metrics() {
  std::vector<ProportionalityRow> rows;
  auto add = [&rows](const std::string& name, Watts idle, Watts peak,
                     const PowerCurve& curve) {
    ProportionalityRow row;
    row.name = name;
    row.ipr = ideal_to_peak_ratio(idle, peak);
    row.ldr = linear_deviation_ratio(curve);
    row.score = proportionality_score(curve);
    rows.push_back(row);
  };

  for (const ArchitectureProfile& arch : real_catalog()) {
    add(arch.name(), arch.idle_power(), arch.max_power(),
        [&arch](double u) { return arch.power_at(u * arch.max_perf()); });
  }

  const BmlDesign design = BmlDesign::build(real_catalog());
  const ReqRate big_perf = design.big().max_perf();
  add("BML combination", design.ideal_power(0.0), design.ideal_power(big_perf),
      [&design, big_perf](double u) {
        return design.ideal_power(u * big_perf);
      });
  const BmlLinearReference linear = design.linear_reference();
  add("BML linear (ref)", linear.power(0.0), linear.power(big_perf),
      [&linear, big_perf](double u) { return linear.power(u * big_perf); });
  return rows;
}

std::vector<AblationRow> run_cost_aware_comparison(
    const AblationOptions& options) {
  const AblationContext ctx = make_context(options);
  const Simulator simulator(ctx.design->candidates());
  std::vector<AblationRow> rows(4);

  parallel_invoke({
      [&] {
        BmlScheduler scheduler(ctx.design,
                               std::make_shared<OracleMaxPredictor>());
        rows[0] = row_from("plain pro-active (paper)",
                           simulator.run(scheduler, ctx.trace),
                           ctx.lower_bound);
      },
      [&] {
        CostAwareScheduler scheduler(ctx.design,
                                     std::make_shared<OracleMaxPredictor>());
        rows[1] = row_from("cost-aware, payback = window",
                           simulator.run(scheduler, ctx.trace),
                           ctx.lower_bound);
      },
      [&] {
        CostAwareScheduler scheduler(ctx.design,
                                     std::make_shared<OracleMaxPredictor>(),
                                     ApplicationModel{}, MigrationModel{},
                                     /*window=*/0.0,
                                     /*payback_window=*/1800.0);
        rows[2] = row_from("cost-aware, payback = 30 min",
                           simulator.run(scheduler, ctx.trace),
                           ctx.lower_bound);
      },
      [&] {
        CostAwareScheduler scheduler(ctx.design,
                                     std::make_shared<OracleMaxPredictor>(),
                                     ApplicationModel{}, MigrationModel{},
                                     /*window=*/0.0,
                                     /*payback_window=*/30.0);
        rows[3] = row_from("cost-aware, payback = 30 s",
                           simulator.run(scheduler, ctx.trace),
                           ctx.lower_bound);
      },
  });
  return rows;
}

std::vector<RaplRow> run_rapl_comparison(ReqRate fleet_rate, int points) {
  if (points < 2)
    throw std::invalid_argument("run_rapl_comparison: points must be >= 2");
  const BmlDesign design =
      BmlDesign::build(real_catalog(), {.max_rate = fleet_rate});
  const ArchitectureProfile& big = design.big();
  const int fleet = std::max(
      1, static_cast<int>(std::ceil(fleet_rate / big.max_perf())));

  std::vector<RaplRow> rows;
  for (int i = 0; i < points; ++i) {
    RaplRow row;
    row.rate = fleet_rate * static_cast<double>(i) / (points - 1);
    row.bml = design.ideal_power(row.rate);
    row.rapl_big = rapl_homogeneous_power(big, fleet, row.rate);
    // Without capping the fleet still spreads load evenly; with linear
    // curves the draw equals the capped value — the distinction shows up
    // for non-linear profiles, kept here as the reference column.
    row.uncapped_big = rapl_homogeneous_power(big, fleet, row.rate);
    rows.push_back(row);
  }
  return rows;
}

std::vector<AblationRow> run_fault_injection_sweep(
    const std::vector<double>& jitter_sigmas, const AblationOptions& options) {
  const AblationContext ctx = make_context(options);
  std::vector<AblationRow> rows(jitter_sigmas.size());
  // One immutable dispatch plan shared by every worker; each worker's
  // simulator differs only in its fault model.
  const auto plan =
      std::make_shared<const DispatchPlan>(ctx.design->candidates());
  parallel_for(jitter_sigmas.size(), [&](std::size_t i) {
    SimulatorOptions sim_options;
    sim_options.faults.boot_time_jitter = jitter_sigmas[i];
    sim_options.faults.boot_failure_prob =
        jitter_sigmas[i] > 0.0 ? 0.02 : 0.0;
    sim_options.faults.seed = options.seed + 13;
    const Simulator simulator(ctx.design->candidates(), plan, sim_options);
    BmlScheduler scheduler(ctx.design,
                           std::make_shared<OracleMaxPredictor>());
    rows[i] = row_from("boot jitter sigma=" + std::to_string(jitter_sigmas[i]),
                       simulator.run(scheduler, ctx.trace), ctx.lower_bound);
  });
  return rows;
}

}  // namespace bml
